/**
 * @file
 * Figure 8: kernel-side CPU utilization of simple direct SSD->NIC
 * communication — vanilla Linux vs DCS-ctrl (plus the optimized
 * software stack for context).
 *
 * Paper reference: DCS-ctrl bypasses page-cache/buffer management and
 * socket-buffer management, reducing kernel-side CPU utilization "as
 * much as other existing software optimization approaches do" — and
 * further, because its control path leaves the host entirely.
 */

#include <cstdio>
#include <string>

#include "bench/report.hh"
#include "baselines/sw_paths.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workload/experiment.hh"

using namespace dcs;
using workload::Design;

namespace {

/** Kernel-side CPU utilization while streaming SSD->NIC transfers. */
workload::CpuRow
run(const std::string &label, Design design, bool vanilla,
    bench::Report &report)
{
    workload::Testbed tb(design);
    auto [ca, cb] = tb.connect();
    cb->onPayload = [](std::uint32_t, BufChain) {};

    std::unique_ptr<baselines::DataPath> vpath;
    baselines::DataPath *path = &tb.pathA();
    if (vanilla) {
        vpath = std::make_unique<baselines::LinuxVanillaPath>(tb.nodeA());
        path = vpath.get();
    }

    const std::uint64_t size = 64 * 1024;
    const int iters = 64;
    Rng rng(6);
    std::vector<int> fds;
    for (int i = 0; i < iters; ++i) {
        std::vector<std::uint8_t> content(size);
        rng.fill(content.data(), size);
        fds.push_back(
            tb.nodeA().fs().create("f" + std::to_string(i), content));
    }

    tb.nodeA().host().cpu().beginWindow();
    const Tick start = tb.eq().now();
    int done = 0;
    // Keep four transfers in flight to emulate streaming load.
    int next = 0;
    std::function<void()> pump = [&]() {
        if (next >= iters)
            return;
        const int i = next++;
        path->sendFile(fds[static_cast<std::size_t>(i)], ca->fd, 0, size,
                       ndp::Function::None, {}, nullptr,
                       [&](const baselines::PathResult &) {
                           ++done;
                           pump();
                       });
    };
    for (int i = 0; i < 4; ++i)
        pump();
    tb.eq().run();
    if (done != iters)
        fatal("fig08: %d/%d transfers completed", done, iters);

    workload::CpuRow row;
    row.label = label;
    row.busy = tb.nodeA().host().cpu().busy();
    row.window = static_cast<double>(tb.eq().now() - start) *
                 tb.nodeA().host().cpu().cores();
    report.captureStats(label, tb.eq());
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::Report report(argc, argv, "fig08_kernel_cpu", "Fig. 8");

    std::vector<workload::CpuRow> rows;
    rows.push_back(run("linux", Design::SwOptimized, true, report));
    rows.push_back(run("sw-opt", Design::SwOptimized, false, report));
    rows.push_back(run("dcs-ctrl", Design::DcsCtrl, false, report));

    workload::printCpuTable(
        "Fig. 8 — kernel-side CPU utilization, direct SSD->NIC "
        "streaming (percent of 6 cores)",
        rows);

    auto kernel_share = [](const workload::CpuRow &r) {
        using host::CpuCat;
        return (r.busy.total() - r.busy.get(CpuCat::User)) / r.window;
    };
    std::printf("\nkernel CPU, linux    : %5.2f%%\n",
                100 * kernel_share(rows[0]));
    std::printf("kernel CPU, sw-opt   : %5.2f%%\n",
                100 * kernel_share(rows[1]));
    std::printf("kernel CPU, dcs-ctrl : %5.2f%%  (paper: DCS-ctrl <= "
                "optimized software)\n",
                100 * kernel_share(rows[2]));

    for (const auto &r : rows)
        report.headline(r.label + "/kernel_cpu",
                        100 * kernel_share(r), "%", std::nan(""),
                        "share of 6 cores spent in kernel-side work");
    report.headline("dcs_vs_sw_opt_kernel_cpu",
                    kernel_share(rows[2]) / kernel_share(rows[1]), "x",
                    std::nan(""),
                    "paper: DCS-ctrl <= optimized software");
    return report.finish();
}
