/**
 * @file
 * Sim-core fast-path benchmark: the event queue itself.
 *
 * Compares the shipping EventQueue (InlineCallback storage + two-level
 * calendar queue, src/sim/event_queue.*) against an in-file replica of
 * the queue it replaced (std::function callbacks in a binary-heap
 * std::priority_queue with an unordered_set of cancelled ids — the
 * exact structure from the previous revision of src/sim/event_queue).
 *
 * Three workloads, one per pattern the simulator actually exercises:
 *  - churn: a self-rescheduling actor population, the classic DES
 *    steady state. Each firing schedules one successor at a
 *    pseudorandom future tick; the capture is `this` plus 32 bytes of
 *    payload — the typical model continuation, which fits
 *    InlineCallback's inline buffer but overflows std::function's
 *    small-object optimization.
 *  - timeout: the TCP retransmission pattern (net/tcp.cc): waves of
 *    timer events that are almost all descheduled before firing, so
 *    cancellation cost and tombstone handling dominate.
 *  - burst: same-tick fan-out (command completion cascades): large
 *    groups of events at one tick, fired in FIFO order.
 *  - plus per-op latency: isolated schedule / fire / cancel loops.
 *
 * Reports events/sec for both queues per workload, the geometric-mean
 * speedup across workloads, and per-op latencies through the standard
 * --json report (tools/check_bench_schema.py validates the output).
 *
 * Timing uses wall-clock (std::chrono::steady_clock); bench/ is
 * measurement code, outside simlint's no-wall-clock rule for src/.
 */
// dcslint: allow-file(ambient-time-randomness): host wall-clock timing is
// the measurement this bench exists to take; it never feeds simulated state.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <queue>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "bench/report.hh"
#include "sim/event_queue.hh"
#include "sim/ticks.hh"

using namespace dcs;

namespace {

/**
 * The pre-fast-path event queue, reproduced verbatim minus stats
 * plumbing: heap-ordered (tick, id) entries owning std::function
 * callbacks, lazy cancellation through an id set consulted at pop.
 */
class LegacyEventQueue
{
  public:
    using Id = std::uint64_t;

    Id
    schedule(Tick delay, std::function<void()> fn,
             std::string_view label = {})
    {
        const Id id = nextId++;
        pq.push(Entry{_now + delay, id, std::move(fn), label});
        return id;
    }

    void deschedule(Id id) { cancelled.insert(id); }

    bool
    step()
    {
        while (!pq.empty()) {
            Entry e = pq.top(); // copies the std::function, as shipped
            pq.pop();
            if (cancelled.erase(e.id) != 0) {
                ++skipped;
                continue;
            }
            _now = e.when;
            ++fired;
            e.fn();
            return true;
        }
        return false;
    }

    Tick
    run()
    {
        while (step()) {
        }
        return _now;
    }

    std::uint64_t executed() const { return fired; }

  private:
    struct Entry
    {
        Tick when;
        Id id;
        std::function<void()> fn;
        std::string_view label;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : id > o.id;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        pq;
    std::unordered_set<Id> cancelled;
    Tick _now = 0;
    Id nextId = 1;
    std::uint64_t fired = 0;
    std::uint64_t skipped = 0;
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * Self-rescheduling actor population: `pending` events in flight,
 * each firing schedules its successor until `total` events fired.
 */
template <typename Queue>
struct ChurnDriver
{
    Queue q;
    std::uint64_t remaining = 0;
    std::uint32_t lcg = 12345;

    Tick
    nextDelay()
    {
        lcg = lcg * 1664525u + 1013904223u;
        return Tick(lcg % 997 + 1);
    }

    void
    arm()
    {
        if (remaining == 0)
            return;
        --remaining;
        // 8 (this) + 32 payload bytes: a typical model continuation.
        std::uint64_t payload[4] = {remaining, lcg, 0, 0};
        q.schedule(nextDelay(), [this, payload] {
            (void)payload;
            arm();
        });
    }
};

template <typename Queue>
double
churnEventsPerSec(std::uint64_t total, int pending)
{
    ChurnDriver<Queue> d;
    d.remaining = total;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < pending && d.remaining > 0; ++i)
        d.arm();
    d.q.run();
    const double dt = secondsSince(t0);
    if (d.q.executed() != total)
        fatal("churn fired %llu of %llu events",
              (unsigned long long)d.q.executed(),
              (unsigned long long)total);
    return double(total) / dt;
}

/**
 * TCP-retransmit pattern: every wave schedules `width` timeout events
 * ~1000-2000 ticks out, immediately cancels them all (the "ack"
 * arrived), and advances via one short progress event. Tombstones
 * accumulate in the calendar/heap until simulated time passes them.
 * Throughput counts scheduled events (the cancelled ones do enter and
 * leave the queue).
 */
template <typename Queue>
struct TimeoutDriver
{
    Queue q;
    int wavesLeft = 0;
    int width = 0;
    std::uint32_t lcg = 777;
    std::uint64_t scheduled = 0;

    void
    wave()
    {
        if (wavesLeft-- == 0)
            return;
        using Id = decltype(q.schedule(0, [] {}));
        std::vector<Id> ids;
        ids.reserve(width);
        for (int i = 0; i < width; ++i) {
            lcg = lcg * 1664525u + 1013904223u;
            // Timer state a retransmit continuation would carry.
            std::uint64_t payload[4] = {scheduled, lcg, 0, 0};
            ids.push_back(q.schedule(Tick(1000 + lcg % 1000),
                                     [payload] { (void)payload; }));
            ++scheduled;
        }
        for (const auto id : ids)
            q.deschedule(id);
        q.schedule(10, [this] { wave(); });
        ++scheduled;
    }
};

template <typename Queue>
double
timeoutEventsPerSec(int waves, int width)
{
    TimeoutDriver<Queue> d;
    d.wavesLeft = waves;
    d.width = width;
    const auto t0 = std::chrono::steady_clock::now();
    d.wave();
    d.q.run();
    return double(d.scheduled) / secondsSince(t0);
}

/**
 * Same-tick fan-out: each burst schedules `width` events for one
 * future tick; they fire as one FIFO group, and the last one launches
 * the next burst.
 */
template <typename Queue>
struct BurstDriver
{
    Queue q;
    int burstsLeft = 0;
    int width = 0;
    std::uint64_t scheduled = 0;

    void
    burst()
    {
        if (burstsLeft-- == 0)
            return;
        for (int i = 0; i < width; ++i) {
            std::uint64_t payload[4] = {scheduled, 0, 0, 0};
            q.schedule(100, [payload] { (void)payload; });
            ++scheduled;
        }
        q.schedule(100, [this] { burst(); });
        ++scheduled;
    }
};

template <typename Queue>
double
burstEventsPerSec(int bursts, int width)
{
    BurstDriver<Queue> d;
    d.burstsLeft = bursts;
    d.width = width;
    const auto t0 = std::chrono::steady_clock::now();
    d.burst();
    d.q.run();
    return double(d.scheduled) / secondsSince(t0);
}

struct OpLatencies
{
    double scheduleNs = 0.0;
    double fireNs = 0.0;
    double cancelNs = 0.0;
};

template <typename Queue>
OpLatencies
opLatencies(std::uint64_t n)
{
    OpLatencies out;
    {
        Queue q;
        std::uint32_t lcg = 99;
        auto t0 = std::chrono::steady_clock::now();
        for (std::uint64_t i = 0; i < n; ++i) {
            lcg = lcg * 1664525u + 1013904223u;
            std::uint64_t payload[4] = {i, lcg, 0, 0};
            q.schedule(Tick(lcg % 4096 + 1),
                       [payload] { (void)payload; });
        }
        out.scheduleNs = secondsSince(t0) * 1e9 / double(n);
        t0 = std::chrono::steady_clock::now();
        q.run();
        out.fireNs = secondsSince(t0) * 1e9 / double(n);
    }
    {
        Queue q;
        std::uint32_t lcg = 99;
        std::vector<decltype(std::declval<Queue &>().schedule(
            0, std::function<void()>{}))>
            ids;
        ids.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            lcg = lcg * 1664525u + 1013904223u;
            std::uint64_t payload[4] = {i, lcg, 0, 0};
            ids.push_back(q.schedule(Tick(lcg % 4096 + 1),
                                     [payload] { (void)payload; }));
        }
        const auto t0 = std::chrono::steady_clock::now();
        for (const auto id : ids)
            q.deschedule(id);
        out.cancelNs = secondsSince(t0) * 1e9 / double(n);
        q.run(); // drain the tombstones
    }
    return out;
}

template <typename Fn>
double
bestOf(int reps, Fn fn)
{
    double best = 0.0;
    for (int i = 0; i < reps; ++i)
        best = std::max(best, fn());
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Report report(argc, argv, "sim_core_bench", "perf");

    constexpr std::uint64_t kChurnEvents = 2'000'000;
    constexpr int kPending = 4096;
    constexpr int kTimeoutWaves = 4000;
    constexpr int kTimeoutWidth = 256;
    constexpr int kBursts = 2000;
    constexpr int kBurstWidth = 1000;
    constexpr std::uint64_t kOpEvents = 1'000'000;
    constexpr int kReps = 3;

    struct Workload
    {
        const char *name;
        double legacy;
        double fast;
    };
    Workload workloads[] = {
        {"churn", 0.0, 0.0},
        {"timeout", 0.0, 0.0},
        {"burst", 0.0, 0.0},
    };

    std::printf("sim-core fast path (best of %d per point)\n", kReps);
    std::printf("  churn:   %llu events, %d pending, random delays\n",
                (unsigned long long)kChurnEvents, kPending);
    std::printf("  timeout: %d waves x %d timers, all cancelled\n",
                kTimeoutWaves, kTimeoutWidth);
    std::printf("  burst:   %d bursts x %d same-tick events\n\n",
                kBursts, kBurstWidth);

    workloads[0].legacy = bestOf(kReps, [] {
        return churnEventsPerSec<LegacyEventQueue>(kChurnEvents,
                                                   kPending);
    });
    workloads[0].fast = bestOf(kReps, [] {
        return churnEventsPerSec<EventQueue>(kChurnEvents, kPending);
    });
    workloads[1].legacy = bestOf(kReps, [] {
        return timeoutEventsPerSec<LegacyEventQueue>(kTimeoutWaves,
                                                     kTimeoutWidth);
    });
    workloads[1].fast = bestOf(kReps, [] {
        return timeoutEventsPerSec<EventQueue>(kTimeoutWaves,
                                               kTimeoutWidth);
    });
    workloads[2].legacy = bestOf(kReps, [] {
        return burstEventsPerSec<LegacyEventQueue>(kBursts,
                                                   kBurstWidth);
    });
    workloads[2].fast = bestOf(kReps, [] {
        return burstEventsPerSec<EventQueue>(kBursts, kBurstWidth);
    });

    std::printf("%-10s %12s %12s %9s\n", "workload", "legacy_Mev/s",
                "fast_Mev/s", "speedup");
    double logSum = 0.0;
    for (const Workload &w : workloads) {
        const double s = w.fast / w.legacy;
        logSum += std::log(s);
        std::printf("%-10s %12.2f %12.2f %8.2fx\n", w.name,
                    w.legacy / 1e6, w.fast / 1e6, s);
    }
    const double speedup =
        std::exp(logSum / double(std::size(workloads)));
    std::printf("%-10s %12s %12s %8.2fx (geomean)\n", "overall", "",
                "", speedup);

    const OpLatencies legacyOps = opLatencies<LegacyEventQueue>(
        kOpEvents);
    const OpLatencies fastOps = opLatencies<EventQueue>(kOpEvents);
    std::printf("\nper-op latency (%llu events)\n",
                (unsigned long long)kOpEvents);
    std::printf("%-12s %12s %12s\n", "op", "legacy_ns", "fastpath_ns");
    std::printf("%-12s %12.1f %12.1f\n", "schedule",
                legacyOps.scheduleNs, fastOps.scheduleNs);
    std::printf("%-12s %12.1f %12.1f\n", "fire", legacyOps.fireNs,
                fastOps.fireNs);
    std::printf("%-12s %12.1f %12.1f\n", "cancel", legacyOps.cancelNs,
                fastOps.cancelNs);

    for (const Workload &w : workloads) {
        const std::string n = w.name;
        report.headline(n + "/legacy_events_per_sec", w.legacy,
                        "events/s");
        report.headline(n + "/fastpath_events_per_sec", w.fast,
                        "events/s");
        report.headline(n + "/speedup", w.fast / w.legacy, "x");
    }
    report.headline("speedup_events_per_sec", speedup, "x",
                    std::nan(""),
                    "geomean across churn/timeout/burst, fast path vs "
                    "pre-change binary-heap queue; acceptance floor "
                    "is 3x");
    report.headline("legacy/schedule_ns", legacyOps.scheduleNs, "ns");
    report.headline("legacy/fire_ns", legacyOps.fireNs, "ns");
    report.headline("legacy/cancel_ns", legacyOps.cancelNs, "ns");
    report.headline("fastpath/schedule_ns", fastOps.scheduleNs, "ns");
    report.headline("fastpath/fire_ns", fastOps.fireNs, "ns");
    report.headline("fastpath/cancel_ns", fastOps.cancelNs, "ns");

    if (report.enabled()) {
        // One registry snapshot so the report carries the queue's own
        // counters alongside the wall-clock numbers.
        EventQueue q;
        std::uint32_t lcg = 7;
        for (int i = 0; i < 1000; ++i) {
            lcg = lcg * 1664525u + 1013904223u;
            q.schedule(Tick(lcg % 512 + 1), [] {});
        }
        q.run();
        report.captureStats("fastpath_sample", q);
    }
    return report.finish();
}
