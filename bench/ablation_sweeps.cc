/**
 * @file
 * Ablations over the design choices DESIGN.md calls out:
 *
 *  1. intermediate-buffer chunk size (the paper fixes 64 KiB, §IV-C);
 *  2. PCIe generation of the switch fabric (the prototype is Gen2);
 *  3. NDP aggregate throughput target (the paper sizes for 10 Gbps);
 *  4. HDC command-queue/control-path cycle costs (sensitivity of the
 *     headline latency reduction to the FPGA cost model).
 *
 * Every sweep point is an independent testbed, so all 19 points run as
 * one batch on the ParallelRunner; printing and report emission happen
 * afterward in the fixed serial order (byte-identical to a serial run).
 */

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/parallel_runner.hh"
#include "bench/report.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workload/experiment.hh"
#include "workload/swift.hh"

using namespace dcs;
using workload::Design;

namespace {

/** One DCS sendFile latency + throughput probe under params. */
struct ProbeResult
{
    double latencyUs = 0.0;   //!< 64 KiB MD5 send, cold
    double streamGbps = 0.0;  //!< 8 MiB plain send, saturated
    std::string latencyBlob;  //!< stats snapshot (when captured)
    std::string streamBlob;
};

ProbeResult
probe(sys::NodeParams pa, sys::NodeParams pb, bool capture_stats)
{
    ProbeResult out;
    {
        workload::Testbed tb(Design::DcsCtrl, false, pa, pb);
        auto [ca, cb] = tb.connect();
        cb->onPayload = [](std::uint32_t, BufChain) {};
        Rng rng(3);
        std::vector<std::uint8_t> content(64 * 1024);
        rng.fill(content.data(), content.size());
        const int fd = tb.nodeA().fs().create("probe", content);
        const Tick t0 = tb.eq().now();
        Tick t1 = 0;
        tb.pathA().sendFile(fd, ca->fd, 0, content.size(),
                            ndp::Function::Md5, {}, nullptr,
                            [&](const baselines::PathResult &) {
                                t1 = tb.eq().now();
                            });
        tb.eq().run();
        out.latencyUs = toMicroseconds(t1 - t0);
        if (capture_stats)
            out.latencyBlob = tb.eq().stats().dumpJsonString();
    }
    {
        workload::Testbed tb(Design::DcsCtrl, false, pa, pb);
        auto [ca, cb] = tb.connect();
        cb->onPayload = [](std::uint32_t, BufChain) {};
        Rng rng(4);
        std::vector<std::uint8_t> content(8 << 20);
        rng.fill(content.data(), content.size());
        const int fd = tb.nodeA().fs().create("stream", content);
        const Tick t0 = tb.eq().now();
        Tick t1 = 0;
        tb.pathA().sendFile(fd, ca->fd, 0, content.size(),
                            ndp::Function::None, {}, nullptr,
                            [&](const baselines::PathResult &) {
                                t1 = tb.eq().now();
                            });
        tb.eq().run();
        out.streamGbps = double(content.size()) * 8.0 /
                         toSeconds(t1 - t0) / 1e9;
        if (capture_stats)
            out.streamBlob = tb.eq().stats().dumpJsonString();
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::Report report(argc, argv, "ablation_sweeps", "Ablations");

    constexpr std::uint64_t kChunks[] = {16u << 10, 32u << 10,
                                         64u << 10, 128u << 10,
                                         256u << 10};
    constexpr std::pair<pcie::Gen, const char *> kGens[] = {
        {pcie::Gen::Gen1, "gen1"},
        {pcie::Gen::Gen2, "gen2"},
        {pcie::Gen::Gen3, "gen3"}};
    constexpr double kTargets[] = {5.0, 10.0, 20.0, 40.0};
    constexpr double kScales[] = {0.5, 1.0, 2.0, 4.0, 8.0};
    constexpr bool kModes[] = {true, false};

    std::vector<ProbeResult> chunkRes(std::size(kChunks));
    std::vector<ProbeResult> genRes(std::size(kGens));
    std::vector<ProbeResult> targetRes(std::size(kTargets));
    std::vector<ProbeResult> scaleRes(std::size(kScales));
    std::vector<workload::SwiftStats> modeRes(std::size(kModes));

    const bool capture = report.enabled();
    std::vector<std::function<void()>> tasks;

    for (std::size_t i = 0; i < std::size(kChunks); ++i)
        tasks.push_back([&chunkRes, &kChunks, capture, i] {
            sys::NodeParams pa, pb;
            pa.hdc.chunkSize = kChunks[i];
            pb.hdc.chunkSize = kChunks[i];
            // Snapshot the paper's configuration point only.
            const bool paper_point = kChunks[i] == 64u << 10;
            chunkRes[i] = probe(pa, pb, capture && paper_point);
        });
    for (std::size_t i = 0; i < std::size(kGens); ++i)
        tasks.push_back([&genRes, &kGens, i] {
            sys::NodeParams pa, pb;
            pa.fabric.defaultLink.gen = kGens[i].first;
            pb.fabric.defaultLink.gen = kGens[i].first;
            genRes[i] = probe(pa, pb, false);
        });
    for (std::size_t i = 0; i < std::size(kTargets); ++i)
        tasks.push_back([&targetRes, &kTargets, i] {
            sys::NodeParams pa, pb;
            pa.hdc.ndpTargetGbps = kTargets[i];
            pb.hdc.ndpTargetGbps = kTargets[i];
            targetRes[i] = probe(pa, pb, false);
        });
    for (std::size_t i = 0; i < std::size(kScales); ++i)
        tasks.push_back([&scaleRes, &kScales, i] {
            const double scale = kScales[i];
            sys::NodeParams pa, pb;
            auto scale_timing = [scale](hdc::HdcTiming &t) {
                t.cmdParseCycles = static_cast<std::uint64_t>(
                    t.cmdParseCycles * scale);
                t.scoreboardIssueCycles = static_cast<std::uint64_t>(
                    t.scoreboardIssueCycles * scale);
                t.scoreboardCompleteCycles = static_cast<std::uint64_t>(
                    t.scoreboardCompleteCycles * scale);
                t.nvmeCmdBuildCycles = static_cast<std::uint64_t>(
                    t.nvmeCmdBuildCycles * scale);
                t.nicCmdBuildCycles = static_cast<std::uint64_t>(
                    t.nicCmdBuildCycles * scale);
            };
            scale_timing(pa.hdc.timing);
            scale_timing(pb.hdc.timing);
            scaleRes[i] = probe(pa, pb, false);
        });
    for (std::size_t i = 0; i < std::size(kModes); ++i)
        tasks.push_back([&modeRes, &kModes, i] {
            const bool in_order = kModes[i];
            workload::Testbed tb(Design::DcsCtrl);
            if (!in_order)
                tb.nodeA().engine().setInOrderCompletion(false);
            workload::SwiftParams p;
            p.offeredGbps = 5.0;
            p.warmup = milliseconds(10);
            p.measure = milliseconds(150);
            p.connections = 32;
            p.appPerMbUs = 700.0;
            workload::SwiftWorkload wl(tb.eq(), tb.nodeA(), tb.nodeB(),
                                       tb.pathA(), p);
            bool fin = false;
            wl.run([&modeRes, &fin, i](const workload::SwiftStats &s) {
                modeRes[i] = s;
                fin = true;
            });
            tb.eq().run();
            if (!fin)
                fatal("ablation 5 did not drain");
        });

    const bench::ParallelRunner runner;
    runner.run(tasks);

    std::printf("Ablation 1 — intermediate-buffer chunk size (paper "
                "fixes 64 KiB)\n");
    std::printf("%-10s %12s %12s\n", "chunk", "md5_64k_us",
                "stream_gbps");
    for (std::size_t i = 0; i < std::size(kChunks); ++i) {
        const std::uint64_t chunk = kChunks[i];
        ProbeResult &r = chunkRes[i];
        report.captureStatsBlob("chunk_64KiB/latency",
                                std::move(r.latencyBlob));
        report.captureStatsBlob("chunk_64KiB/stream",
                                std::move(r.streamBlob));
        std::printf("%7lluKiB %12.1f %12.2f\n",
                    (unsigned long long)(chunk >> 10), r.latencyUs,
                    r.streamGbps);
        const std::string prefix =
            "chunk/" + std::to_string(chunk >> 10) + "KiB";
        report.headline(prefix + "/md5_64k", r.latencyUs, "us");
        report.headline(prefix + "/stream", r.streamGbps, "Gbps");
    }

    std::printf("\nAblation 2 — PCIe generation of the switch fabric "
                "(prototype: Gen2 x8)\n");
    std::printf("%-10s %12s %12s\n", "gen", "md5_64k_us",
                "stream_gbps");
    for (std::size_t i = 0; i < std::size(kGens); ++i) {
        const char *label = kGens[i].second;
        const ProbeResult &r = genRes[i];
        std::printf("%-10s %12.1f %12.2f\n", label, r.latencyUs,
                    r.streamGbps);
        report.headline(std::string("pcie/") + label + "/md5_64k",
                        r.latencyUs, "us");
        report.headline(std::string("pcie/") + label + "/stream",
                        r.streamGbps, "Gbps");
    }

    std::printf("\nAblation 3 — NDP aggregate throughput target "
                "(paper sizes for 10 Gbps)\n");
    std::printf("%-10s %12s %10s\n", "target", "md5_64k_us",
                "md5 units");
    for (std::size_t i = 0; i < std::size(kTargets); ++i) {
        const double target = kTargets[i];
        std::printf("%7.0fGbps %12.1f %10d\n", target,
                    targetRes[i].latencyUs,
                    hdc::ndpUnitsFor(ndp::Function::Md5, target));
        report.headline("ndp_target/" +
                            std::to_string(static_cast<int>(target)) +
                            "Gbps/md5_64k",
                        targetRes[i].latencyUs, "us");
    }

    std::printf("\nAblation 4 — FPGA control-path cost scaling "
                "(x1 = calibrated model)\n");
    std::printf("%-10s %12s\n", "scale", "md5_64k_us");
    for (std::size_t i = 0; i < std::size(kScales); ++i) {
        const double scale = kScales[i];
        std::printf("%9.1fx %12.1f\n", scale, scaleRes[i].latencyUs);
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1fx", scale);
        report.headline(std::string("ctrl_cost/") + buf + "/md5_64k",
                        scaleRes[i].latencyUs, "us");
    }

    std::printf("\nAblation 5 — in-order completion notification "
                "(paper §IV-C 'simple implementation')\n");
    std::printf("%-10s %12s %12s %12s\n", "mode", "tput_gbps",
                "lat_p50_us", "lat_p99_us");
    for (std::size_t i = 0; i < std::size(kModes); ++i) {
        const bool in_order = kModes[i];
        const workload::SwiftStats &st = modeRes[i];
        std::printf("%-10s %12.2f %12.0f %12.0f\n",
                    in_order ? "in-order" : "relaxed",
                    st.throughputGbps, st.latencyUs.quantile(0.5),
                    st.latencyUs.quantile(0.99));
        const std::string prefix =
            std::string("completion/") +
            (in_order ? "in-order" : "relaxed");
        report.headline(prefix + "/tput", st.throughputGbps, "Gbps");
        report.headline(prefix + "/lat_p99",
                        st.latencyUs.quantile(0.99), "us");
    }

    std::printf("\ntakeaway: the headline behaviour is insensitive to "
                "the FPGA cycle model (control work is\nhundreds of "
                "nanoseconds against ~100 us device operations) and "
                "mildly sensitive to chunking,\nwhich trades pipeline "
                "granularity against per-command overhead — 64 KiB "
                "sits on the flat part.\n");
    return report.finish();
}
