/**
 * @file
 * Zero-copy data-plane benchmark: payload movement and NDP kernels.
 *
 * Compares the shipping data plane (ref-counted Buffer/BufChain pages
 * with Memory::borrow/adopt, slice-by-8 CRC32, T-table AES-256 —
 * src/mem/buffer, src/mem/memory and src/ndp) against in-file
 * replicas of what each replaced (the exact structures from the
 * previous revision of this repo):
 *  - LegacyMemory: raw byte pages in unique_ptr arrays, memcpy on
 *    every read and write — so a payload crossing N simulated hops
 *    is copied 2N times.
 *  - LegacyCrc32: single-table byte-at-a-time CRC-32.
 *  - LegacyAes256Ctr: byte-wise S-box/xtime AES-256 rounds and a
 *    per-byte keystream XOR.
 *
 * Three workloads, one per data-plane cost the simulator pays:
 *  - dma_pipeline: a payload traversing flash -> engine DRAM -> NIC
 *    staging, the SSD->NDP->NIC shape of every D2D request. Legacy
 *    read/write round-trips vs borrow/adopt page adoption.
 *  - crc32: the HDFS receiver-side integrity check over block-sized
 *    payloads.
 *  - aes256_ctr: the secure-sendfile encryption kernel, in-place
 *    over a block-sized payload.
 *
 * On top of the wall-clock comparison, the bench runs one real D2D
 * sendFile through a DCS-ctrl testbed at 64 KiB and at 1 MiB and
 * reports the copy accounting per request. Scoped to the sending
 * node's data-plane memories (SSD flash, engine DRAM, host DRAM),
 * copied bytes must stay constant while the payload grows 16x — the
 * O(1)-copies-per-request property the vector plumbing lacked. (The
 * receiving node landing each MSS frame in its socket buffer still
 * memcpys; a sub-page write cannot be page-adopted and is common to
 * every design.)
 *
 * Reports MB/s per workload, the geometric-mean speedup, and the D2D
 * copy accounting through the standard --json report
 * (tools/check_bench_schema.py validates the output).
 *
 * Timing uses wall-clock (std::chrono::steady_clock); bench/ is
 * measurement code, outside simlint's no-wall-clock rule for src/.
 */
// dcslint: allow-file(ambient-time-randomness): host wall-clock timing is
// the measurement this bench exists to take; it never feeds simulated state.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/sw_paths.hh"
#include "bench/report.hh"
#include "mem/buffer.hh"
#include "mem/memory.hh"
#include "ndp/aes256.hh"
#include "ndp/crc32.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workload/experiment.hh"

using namespace dcs;
using workload::Design;

namespace {

/** Folds results so the optimizer cannot discard a measured loop. */
// Optimization sink; thread_local so parallel sweep workers never race.
thread_local volatile std::uint32_t g_sink = 0;

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

template <typename Fn>
double
bestOf(int reps, Fn fn)
{
    double best = 0.0;
    for (int i = 0; i < reps; ++i)
        best = std::max(best, fn());
    return best;
}

// ---------------------------------------------------------------------
// Legacy replicas (the pre-change implementations, minus stats
// plumbing).
// ---------------------------------------------------------------------

/**
 * The pre-zero-copy Memory: demand-allocated raw byte pages, memcpy
 * on every access, memset for reads of absent pages. Reproduced from
 * the previous revision of src/mem/memory.cc.
 */
class LegacyMemory
{
  public:
    explicit LegacyMemory(std::uint64_t size) : size(size) {}

    void
    read(std::uint64_t addr, void *dst, std::uint64_t n) const
    {
        auto *out = static_cast<std::uint8_t *>(dst);
        while (n) {
            const std::uint64_t off = addr & (pageSize - 1);
            const std::uint64_t take = std::min(n, pageSize - off);
            if (const std::uint8_t *p = pageIfPresent(addr))
                std::memcpy(out, p + off, take);
            else
                std::memset(out, 0, take);
            addr += take;
            out += take;
            n -= take;
        }
    }

    void
    write(std::uint64_t addr, const void *src, std::uint64_t n)
    {
        const auto *in = static_cast<const std::uint8_t *>(src);
        while (n) {
            const std::uint64_t off = addr & (pageSize - 1);
            const std::uint64_t take = std::min(n, pageSize - off);
            std::memcpy(pageFor(addr) + off, in, take);
            addr += take;
            in += take;
            n -= take;
        }
    }

  private:
    static constexpr std::uint32_t pageBits = 12;
    static constexpr std::uint64_t pageSize = 1ull << pageBits;

    std::uint8_t *
    pageFor(std::uint64_t addr)
    {
        auto &p = pages[addr >> pageBits];
        if (!p) {
            p = std::make_unique<std::uint8_t[]>(pageSize);
            std::memset(p.get(), 0, pageSize);
        }
        return p.get();
    }

    const std::uint8_t *
    pageIfPresent(std::uint64_t addr) const
    {
        const auto it = pages.find(addr >> pageBits);
        return it == pages.end() ? nullptr : it->second.get();
    }

    std::uint64_t size;
    std::unordered_map<std::uint64_t, std::unique_ptr<std::uint8_t[]>>
        pages;
};

/** Single-table byte-at-a-time CRC-32 (the pre-slice-by-8 kernel). */
std::uint32_t
legacyCrc32(std::span<const std::uint8_t> data)
{
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t c = 0xffffffffu;
    for (std::uint8_t b : data)
        c = table[(c ^ b) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67,
    0x2b, 0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59,
    0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7,
    0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1,
    0x71, 0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05,
    0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83,
    0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29,
    0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b,
    0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa,
    0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c,
    0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc,
    0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19,
    0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee,
    0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4,
    0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6,
    0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70,
    0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9,
    0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e,
    0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf, 0x8c, 0xa1,
    0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0,
    0x54, 0xbb, 0x16,
};

std::uint8_t
xtime(std::uint8_t x)
{
    return static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0));
}

/**
 * The pre-T-table AES-256: byte-array round keys and per-byte
 * sub_bytes / shift_rows / mix_columns rounds. Reproduced from the
 * previous revision of src/ndp/aes256.cc.
 */
class LegacyAes256
{
  public:
    explicit LegacyAes256(std::span<const std::uint8_t> key)
    {
        std::uint8_t w[60][4];
        std::memcpy(w, key.data(), 32);
        std::uint8_t rcon = 1;
        for (int i = 8; i < 60; ++i) {
            std::uint8_t t[4];
            std::memcpy(t, w[i - 1], 4);
            if (i % 8 == 0) {
                const std::uint8_t tmp = t[0];
                t[0] = static_cast<std::uint8_t>(kSbox[t[1]] ^ rcon);
                t[1] = kSbox[t[2]];
                t[2] = kSbox[t[3]];
                t[3] = kSbox[tmp];
                rcon = xtime(rcon);
            } else if (i % 8 == 4) {
                for (auto &b : t)
                    b = kSbox[b];
            }
            for (int j = 0; j < 4; ++j)
                w[i][j] = w[i - 8][j] ^ t[j];
        }
        std::memcpy(roundKeys, w, sizeof(w));
    }

    void
    encryptBlock(std::uint8_t s[16]) const
    {
        const std::uint8_t *rk = roundKeys;

        auto add_round_key = [&](int round) {
            for (int i = 0; i < 16; ++i)
                s[i] ^= rk[16 * round + i];
        };
        auto sub_bytes = [&] {
            for (int i = 0; i < 16; ++i)
                s[i] = kSbox[s[i]];
        };
        auto shift_rows = [&] {
            std::uint8_t t;
            t = s[1];
            s[1] = s[5];
            s[5] = s[9];
            s[9] = s[13];
            s[13] = t;
            std::swap(s[2], s[10]);
            std::swap(s[6], s[14]);
            t = s[15];
            s[15] = s[11];
            s[11] = s[7];
            s[7] = s[3];
            s[3] = t;
        };
        auto mix_columns = [&] {
            for (int c = 0; c < 4; ++c) {
                std::uint8_t *col = s + 4 * c;
                const std::uint8_t a0 = col[0], a1 = col[1],
                                   a2 = col[2], a3 = col[3];
                const std::uint8_t all = a0 ^ a1 ^ a2 ^ a3;
                col[0] = static_cast<std::uint8_t>(a0 ^ all ^
                                                   xtime(a0 ^ a1));
                col[1] = static_cast<std::uint8_t>(a1 ^ all ^
                                                   xtime(a1 ^ a2));
                col[2] = static_cast<std::uint8_t>(a2 ^ all ^
                                                   xtime(a2 ^ a3));
                col[3] = static_cast<std::uint8_t>(a3 ^ all ^
                                                   xtime(a3 ^ a0));
            }
        };

        add_round_key(0);
        for (int round = 1; round < 14; ++round) {
            sub_bytes();
            shift_rows();
            mix_columns();
            add_round_key(round);
        }
        sub_bytes();
        shift_rows();
        add_round_key(14);
    }

  private:
    std::uint8_t roundKeys[16 * 15];
};

/** The pre-change CTR mode: one keystream byte XOR'd at a time. */
class LegacyAes256Ctr
{
  public:
    LegacyAes256Ctr(std::span<const std::uint8_t> key,
                    std::uint64_t nonce)
        : cipher(key), nonce(nonce)
    {
    }

    void
    transformInPlace(std::span<std::uint8_t> buf)
    {
        for (auto &b : buf) {
            if (ksUsed == 16)
                refill();
            b ^= keystream[ksUsed++];
        }
    }

  private:
    void
    refill()
    {
        for (int i = 0; i < 8; ++i)
            keystream[i] =
                static_cast<std::uint8_t>(nonce >> (56 - 8 * i));
        for (int i = 0; i < 8; ++i)
            keystream[8 + i] =
                static_cast<std::uint8_t>(counter >> (56 - 8 * i));
        cipher.encryptBlock(keystream);
        ++counter;
        ksUsed = 0;
    }

    LegacyAes256 cipher;
    std::uint64_t nonce;
    std::uint64_t counter = 0;
    std::uint8_t keystream[16]{};
    std::size_t ksUsed = 16;
};

// ---------------------------------------------------------------------
// Workloads.
// ---------------------------------------------------------------------

constexpr int kReps = 3;

constexpr std::uint64_t kPipePayload = 256 * 1024;
constexpr int kPipeReqs = 64;
constexpr int kPipePasses = 4;
constexpr std::uint64_t kPipeRegion = kPipePayload * kPipeReqs;

/**
 * flash -> engine DRAM -> NIC staging, read/write round-trips: every
 * hop costs a read into a staging vector plus a write out of it.
 */
double
legacyPipelineMBps()
{
    LegacyMemory flash(kPipeRegion), engine(kPipeRegion),
        nic(kPipeRegion);
    Rng rng(11);
    std::vector<std::uint8_t> seed(kPipeRegion);
    rng.fill(seed.data(), seed.size());
    flash.write(0, seed.data(), seed.size());

    std::vector<std::uint8_t> staging(kPipePayload);
    const auto t0 = std::chrono::steady_clock::now();
    for (int pass = 0; pass < kPipePasses; ++pass) {
        for (int i = 0; i < kPipeReqs; ++i) {
            const std::uint64_t a = std::uint64_t(i) * kPipePayload;
            flash.read(a, staging.data(), kPipePayload);
            engine.write(a, staging.data(), kPipePayload);
            engine.read(a, staging.data(), kPipePayload);
            nic.write(a, staging.data(), kPipePayload);
        }
    }
    const double secs = secondsSince(t0);
    std::uint8_t probe = 0;
    nic.read(kPipeRegion - 1, &probe, 1);
    g_sink = g_sink + probe;
    // Payload bytes delivered end-to-end (not bytes memcpy'd).
    return double(kPipeRegion) * kPipePasses / secs / 1e6;
}

/** The same traversal as page adoption: no payload bytes move. */
double
zerocopyPipelineMBps()
{
    Memory flash(kPipeRegion, "flash", 12);
    Memory engine(kPipeRegion, "engine", 12);
    Memory nic(kPipeRegion, "nic", 12);
    Rng rng(11);
    std::vector<std::uint8_t> seed(kPipeRegion);
    rng.fill(seed.data(), seed.size());
    flash.writeBytes(0, seed);

    const auto t0 = std::chrono::steady_clock::now();
    for (int pass = 0; pass < kPipePasses; ++pass) {
        for (int i = 0; i < kPipeReqs; ++i) {
            const std::uint64_t a = std::uint64_t(i) * kPipePayload;
            engine.adopt(a, flash.borrow(a, kPipePayload));
            nic.adopt(a, engine.borrow(a, kPipePayload));
        }
    }
    const double secs = secondsSince(t0);
    g_sink = g_sink + nic.readLe<std::uint8_t>(kPipeRegion - 1);
    return double(kPipeRegion) * kPipePasses / secs / 1e6;
}

constexpr std::uint64_t kCrcBytes = 8 * 1024 * 1024;
constexpr int kCrcPasses = 2;

template <typename Fn>
double
crcMBps(const std::vector<std::uint8_t> &data, Fn crc)
{
    const auto t0 = std::chrono::steady_clock::now();
    std::uint32_t acc = 0;
    for (int pass = 0; pass < kCrcPasses; ++pass)
        acc ^= crc(std::span<const std::uint8_t>(data));
    const double secs = secondsSince(t0);
    g_sink = g_sink + acc;
    return double(data.size()) * kCrcPasses / secs / 1e6;
}

constexpr std::uint64_t kAesBytes = 2 * 1024 * 1024;
constexpr int kAesPasses = 2;

template <typename Ctr>
double
aesMBps(const std::vector<std::uint8_t> &key)
{
    std::vector<std::uint8_t> buf(kAesBytes, 0x5a);
    const auto t0 = std::chrono::steady_clock::now();
    for (int pass = 0; pass < kAesPasses; ++pass) {
        Ctr ctr(key, 0x0123456789abcdefull);
        ctr.transformInPlace(buf);
    }
    const double secs = secondsSince(t0);
    g_sink = g_sink + buf[0];
    return double(kAesBytes) * kAesPasses / secs / 1e6;
}

// ---------------------------------------------------------------------
// End-to-end D2D copy accounting.
// ---------------------------------------------------------------------

struct D2dCost
{
    /** Whole-process payload copies (both nodes, bufstat). */
    std::uint64_t bytesCopied = 0;
    std::uint64_t copyOps = 0;
    /** Sender-side data-plane memories only: the D2D path proper
     *  (SSD flash -> engine DRAM -> NIC, plus host DRAM). */
    std::uint64_t senderBytesCopied = 0;
    std::uint64_t senderBytesBorrowed = 0;
    std::uint64_t senderBytesAdopted = 0;
};

/**
 * One sendFile through a testbed; returns the copy-accounting delta
 * the request cost. The sender-side counters isolate the D2D path:
 * the receiver landing frames in its socket buffer (a sub-page write
 * per MSS segment, common to every design) still memcpys, but the
 * payload's traversal of the sending node must be pure borrow/adopt.
 */
D2dCost
d2dCopyCost(Design design, std::uint64_t size, bench::Report &report,
            const std::string &label)
{
    workload::Testbed tb(design);
    auto [ca, cb] = tb.connect();
    cb->onPayload = [](std::uint32_t, BufChain) {};

    Rng rng(21);
    std::vector<std::uint8_t> content(size);
    rng.fill(content.data(), content.size());
    const int fd = tb.nodeA().fs().create("d2d", content);

    const Memory *senderMems[] = {&tb.nodeA().ssd().flash(),
                                  &tb.nodeA().engine().dram(),
                                  &tb.nodeA().host().dram()};
    Memory::Transfers sbefore{};
    for (const Memory *m : senderMems) {
        sbefore.bytesCopied += m->transfers().bytesCopied;
        sbefore.bytesBorrowed += m->transfers().bytesBorrowed;
        sbefore.bytesAdopted += m->transfers().bytesAdopted;
    }

    const auto before = bufstat::local();
    bool done = false;
    tb.pathA().sendFile(fd, ca->fd, 0, size, ndp::Function::None, {},
                        nullptr,
                        [&](const baselines::PathResult &) {
                            done = true;
                        });
    tb.eq().run();
    if (!done)
        fatal("data_path_bench: D2D transfer did not complete");
    const auto after = bufstat::local();

    D2dCost cost;
    cost.bytesCopied = after.bytesCopied - before.bytesCopied;
    cost.copyOps = after.copyOps - before.copyOps;
    for (const Memory *m : senderMems) {
        cost.senderBytesCopied += m->transfers().bytesCopied;
        cost.senderBytesBorrowed += m->transfers().bytesBorrowed;
        cost.senderBytesAdopted += m->transfers().bytesAdopted;
    }
    cost.senderBytesCopied -= sbefore.bytesCopied;
    cost.senderBytesBorrowed -= sbefore.bytesBorrowed;
    cost.senderBytesAdopted -= sbefore.bytesAdopted;
    report.captureStats(label, tb.eq());
    return cost;
}

struct Workload
{
    const char *name;
    double legacy;
    double fast;
};

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::Report report(argc, argv, "data_path_bench", "perf");

    Workload workloads[] = {
        {"dma_pipeline", 0.0, 0.0},
        {"crc32", 0.0, 0.0},
        {"aes256_ctr", 0.0, 0.0},
    };

    std::printf("zero-copy data plane (best of %d per point)\n", kReps);
    std::printf("  dma_pipeline: %d reqs x %llu KiB x %d passes, "
                "flash -> engine -> nic\n",
                kPipeReqs, (unsigned long long)(kPipePayload / 1024),
                kPipePasses);
    std::printf("  crc32:        %llu MiB x %d passes\n",
                (unsigned long long)(kCrcBytes >> 20), kCrcPasses);
    std::printf("  aes256_ctr:   %llu MiB x %d passes\n\n",
                (unsigned long long)(kAesBytes >> 20), kAesPasses);

    workloads[0].legacy = bestOf(kReps, legacyPipelineMBps);
    workloads[0].fast = bestOf(kReps, zerocopyPipelineMBps);

    Rng rng(12);
    std::vector<std::uint8_t> crcData(kCrcBytes);
    rng.fill(crcData.data(), crcData.size());
    workloads[1].legacy = bestOf(kReps, [&] {
        return crcMBps(crcData, legacyCrc32);
    });
    workloads[1].fast = bestOf(kReps, [&] {
        return crcMBps(crcData, [](std::span<const std::uint8_t> d) {
            return ndp::Crc32::compute(d);
        });
    });

    std::vector<std::uint8_t> key(32);
    rng.fill(key.data(), key.size());
    workloads[2].legacy = bestOf(kReps, [&] {
        return aesMBps<LegacyAes256Ctr>(key);
    });
    workloads[2].fast = bestOf(kReps, [&] {
        return aesMBps<ndp::Aes256Ctr>(key);
    });

    std::printf("%-14s %12s %12s %9s\n", "workload", "legacy_MB/s",
                "zerocopy_MB/s", "speedup");
    double logSum = 0.0;
    for (const Workload &w : workloads) {
        const double s = w.fast / w.legacy;
        logSum += std::log(s);
        std::printf("%-14s %12.1f %12.1f %8.2fx\n", w.name, w.legacy,
                    w.fast, s);
    }
    const double speedup =
        std::exp(logSum / double(std::size(workloads)));
    std::printf("%-14s %12s %12s %8.2fx (geomean)\n", "overall", "",
                "", speedup);

    // O(1)-copies evidence: a real D2D request at two payload sizes.
    // The receiver landing each MSS frame in its socket buffer (a
    // sub-page write, common to every design) still memcpys, so the
    // claim is scoped to the sending node's data-plane memories.
    const D2dCost c64k =
        d2dCopyCost(Design::DcsCtrl, 64 * 1024, report, "dcs_d2d_64k");
    const D2dCost c1m =
        d2dCopyCost(Design::DcsCtrl, 1024 * 1024, report, "dcs_d2d_1m");
    std::printf("\nD2D sendFile copy accounting (1 request, DCS-ctrl "
                "testbed)\n");
    std::printf("  %-18s %14s %14s %14s\n", "", "sender_copied",
                "sender_views", "process_copied");
    auto line = [](const char *name, const D2dCost &c) {
        std::printf("  %-18s %12llu B %12llu B %12llu B\n", name,
                    (unsigned long long)c.senderBytesCopied,
                    (unsigned long long)(c.senderBytesBorrowed +
                                         c.senderBytesAdopted),
                    (unsigned long long)c.bytesCopied);
    };
    line("64 KiB request", c64k);
    line("1 MiB request", c1m);
    std::printf("  sender-side copies stay flat for a 16x payload: "
                "the D2D path is\n  O(1) copies per request, the "
                "payload crosses the node as views\n");

    for (const Workload &w : workloads) {
        const std::string n = w.name;
        report.headline(n + "/legacy_mb_per_sec", w.legacy, "MB/s");
        report.headline(n + "/zerocopy_mb_per_sec", w.fast, "MB/s");
        report.headline(n + "/speedup", w.fast / w.legacy, "x");
    }
    report.headline("speedup_data_path", speedup, "x", std::nan(""),
                    "geomean across dma_pipeline/crc32/aes256_ctr, "
                    "zero-copy plane vs pre-change copy plumbing; "
                    "acceptance floor is 3x");
    report.headline("d2d/sender_bytes_copied_64k",
                    double(c64k.senderBytesCopied), "B", std::nan(""),
                    "bytes memcpy'd in the sending node's data-plane "
                    "memories for one 64 KiB D2D sendFile");
    report.headline("d2d/sender_bytes_copied_1m",
                    double(c1m.senderBytesCopied), "B", std::nan(""),
                    "must not grow with the 16x payload: the D2D "
                    "path moves payload as borrow/adopt views, so "
                    "copies per request are O(1)");
    report.headline("d2d/sender_bytes_as_views_1m",
                    double(c1m.senderBytesBorrowed +
                           c1m.senderBytesAdopted),
                    "B", std::nan(""),
                    "payload bytes that crossed the sender as "
                    "zero-copy views instead");
    report.headline("d2d/process_bytes_copied_1m",
                    double(c1m.bytesCopied), "B", std::nan(""),
                    "whole-process copies incl. the receiver landing "
                    "frames in its socket buffer");
    return report.finish();
}
