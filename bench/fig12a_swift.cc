/**
 * @file
 * Figure 12a: CPU-utilization breakdown of the Swift object store at
 * the same served throughput under each design.
 *
 * Paper reference: sw-ctrl P2P trims the GPU data-copy share of GETs
 * but cannot remove GPU control work for PUTs (the data-gathering
 * problem); DCS-ctrl removes the accelerator control entirely and
 * shrinks the kernel share, cutting total CPU utilization by ~52%
 * at iso-throughput.
 */

#include <cstdio>
#include <string>

#include "bench/parallel_runner.hh"
#include "bench/report.hh"
#include "sim/logging.hh"
#include "workload/experiment.hh"
#include "workload/swift.hh"

using namespace dcs;
using workload::Design;

namespace {

struct Row
{
    std::string label;
    workload::SwiftStats stats;
    std::string statsBlob;
};

Row
run(Design d, double offered_gbps, bool capture_stats)
{
    workload::Testbed tb(d);
    workload::SwiftParams p;
    p.offeredGbps = offered_gbps;
    p.warmup = milliseconds(10);
    p.measure = milliseconds(300);
    p.connections = 32;
    // Cap the tail at 2 MiB: per-object MD5 streams at one NDP
    // unit's rate, so very large objects inflate latency without
    // changing the CPU story.
    p.mix.sizeBuckets = {{4 * 1024, 0.18},   {16 * 1024, 0.17},
                         {64 * 1024, 0.20},  {256 * 1024, 0.20},
                         {1024 * 1024, 0.15}, {2048 * 1024, 0.10}};
    // Application-level (Python proxy + object server) CPU: the
    // data-plane offload removes the object server's byte shuffling
    // but the proxy tier and request handling remain (DESIGN.md).
    p.appFixedUs = 200.0;
    p.appPerMbUs = (d == Design::DcsCtrl) ? 700.0 : 1500.0;
    workload::SwiftWorkload wl(tb.eq(), tb.nodeA(), tb.nodeB(),
                               tb.pathA(), p);
    Row row;
    row.label = workload::designName(d);
    bool fin = false;
    wl.run([&](const workload::SwiftStats &s) {
        row.stats = s;
        fin = true;
    });
    tb.eq().run();
    if (!fin)
        fatal("fig12a: %s did not drain", row.label.c_str());
    if (capture_stats)
        row.statsBlob = tb.eq().stats().dumpJsonString();
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::Report report(argc, argv, "fig12a_swift", "Fig. 12a");
    const double offered = 5.0; // below every design's saturation

    const Design designs[] = {Design::SwOptimized, Design::SwP2p,
                              Design::DcsCtrl};
    // Independent testbeds run concurrently; blobs captured inside
    // each task keep --json byte-identical to a serial run.
    const bench::ParallelRunner runner;
    auto rows = runner.map<Row>(3, [&](std::size_t i) {
        return run(designs[i], offered, report.enabled());
    });
    for (auto &r : rows)
        report.captureStatsBlob(r.label, std::move(r.statsBlob));

    std::printf("Fig. 12a — Swift (PUT/GET mix, MD5 etags) at the same "
                "offered load (%.1f Gbps)\n",
                offered);
    std::vector<workload::CpuRow> cpu_rows;
    for (const auto &r : rows) {
        std::printf("%-10s tput=%.2f Gbps gets=%llu puts=%llu "
                    "cpu=%.2f%% lat_mean=%.0f us\n",
                    r.label.c_str(), r.stats.throughputGbps,
                    (unsigned long long)r.stats.getsDone,
                    (unsigned long long)r.stats.putsDone,
                    100 * r.stats.cpuUtilization,
                    r.stats.latencyUs.mean());
        std::printf("%10s p50=%.0f us p99=%.0f us\n", "",
                    r.stats.latencyUs.quantile(0.5),
                    r.stats.latencyUs.quantile(0.99));
        workload::CpuRow c;
        c.label = r.label;
        c.busy = r.stats.cpuBusy;
        c.window = static_cast<double>(r.stats.window) * 6;
        cpu_rows.push_back(c);
    }
    workload::printCpuTable(
        "CPU-utilization breakdown (percent of 6 cores)", cpu_rows);

    const double swo = rows[0].stats.cpuUtilization;
    const double dcs = rows[2].stats.cpuUtilization;
    std::printf("\nCPU-utilization reduction, dcs-ctrl vs sw-opt: "
                "%.0f%%  (paper: ~52%% vs software designs)\n",
                100.0 * (1.0 - dcs / swo));

    for (const auto &r : rows) {
        report.headline(r.label + "/throughput",
                        r.stats.throughputGbps, "Gbps");
        report.headline(r.label + "/cpu",
                        100 * r.stats.cpuUtilization, "%");
        report.headline(r.label + "/latency_p50",
                        r.stats.latencyUs.quantile(0.5), "us");
        report.headline(r.label + "/latency_p99",
                        r.stats.latencyUs.quantile(0.99), "us");
    }
    report.headline("cpu_reduction_vs_sw_opt",
                    100.0 * (1.0 - dcs / swo), "%", 52.0,
                    "§V-C: ~52% CPU reduction at iso-throughput");
    return report.finish();
}
