/**
 * @file
 * Table IV: HDC Engine resource utilization on the Virtex-7 VC707.
 *
 * Reproduces the paper's accounting: the base engine (PCIe/host
 * interface, scoreboard, NVMe + NIC controllers, queue BRAMs) and
 * the headroom left for NDP units.
 */

#include <cstdio>

#include "bench/report.hh"
#include "hdc/timing.hh"
#include "ndp/transform.hh"

using namespace dcs;
using namespace dcs::hdc;

int
main(int argc, char **argv)
{
    bench::Report report(argc, argv, "table4_resources", "Table IV");
    const auto base = baseEngineResources();

    std::printf("Table IV — HDC Engine device controllers on "
                "Virtex-7 (XC7VX485T)\n");
    std::printf("%-12s %16s %10s   (paper)\n", "resource", "used",
                "share");
    std::printf("%-12s %9llu/%6llu %9.0f%%   (38%%)\n", "LUTs",
                (unsigned long long)base.luts,
                (unsigned long long)virtex7Luts,
                100.0 * base.luts / virtex7Luts);
    std::printf("%-12s %9llu/%6llu %9.0f%%   (15%%)\n", "Registers",
                (unsigned long long)base.regs,
                (unsigned long long)virtex7Regs,
                100.0 * base.regs / virtex7Regs);
    std::printf("%-12s %9llu/%6llu %9.0f%%   (43%%)\n", "BRAMs",
                (unsigned long long)base.brams,
                (unsigned long long)virtex7Brams,
                100.0 * base.brams / virtex7Brams);
    std::printf("%-12s %16.2f %10s   (5.57 W)\n", "Power (W)",
                base.watts, "");

    std::printf("\nHeadroom check — adding the full NDP complement at "
                "10 Gbps each:\n");
    std::printf("%-8s %12s %12s %8s\n", "unit", "LUTs", "registers",
                "BRAMs");
    auto total = base;
    for (auto fn : {ndp::Function::Md5, ndp::Function::Sha1,
                    ndp::Function::Sha256, ndp::Function::Aes256,
                    ndp::Function::Crc32, ndp::Function::Gzip}) {
        const auto r = ndpResources(fn);
        std::printf("%-8s %12llu %12llu %8llu\n",
                    ndp::functionName(fn).c_str(),
                    (unsigned long long)r.luts,
                    (unsigned long long)r.regs,
                    (unsigned long long)r.brams);
        total.luts += r.luts;
        total.regs += r.regs;
        total.brams += r.brams;
    }
    std::printf("engine + all NDP units: %.0f%% LUTs, %.0f%% "
                "registers, %.0f%% BRAMs -> %s\n",
                100.0 * total.luts / virtex7Luts,
                100.0 * total.regs / virtex7Regs,
                100.0 * total.brams / virtex7Brams,
                (total.luts < virtex7Luts && total.regs < virtex7Regs &&
                 total.brams < virtex7Brams)
                    ? "fits (matches the paper's headroom claim)"
                    : "DOES NOT FIT");

    report.headline("base/lut_share", 100.0 * base.luts / virtex7Luts,
                    "%", 38.0, "Table IV: device controllers");
    report.headline("base/reg_share", 100.0 * base.regs / virtex7Regs,
                    "%", 15.0, "Table IV: device controllers");
    report.headline("base/bram_share",
                    100.0 * base.brams / virtex7Brams, "%", 43.0,
                    "Table IV: device controllers");
    report.headline("base/power", base.watts, "W", 5.57,
                    "Table IV: device controllers");
    report.headline("with_all_ndp/lut_share",
                    100.0 * total.luts / virtex7Luts, "%");
    report.headline("with_all_ndp/fits",
                    (total.luts < virtex7Luts &&
                     total.regs < virtex7Regs &&
                     total.brams < virtex7Brams)
                        ? 1.0
                        : 0.0,
                    "bool", 1.0, "paper's headroom claim");
    return report.finish();
}
