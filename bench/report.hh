/**
 * @file
 * Shared `--json <path>` report emission for the bench binaries.
 *
 * Every bench keeps printing its human-readable tables; on top of
 * that it feeds the same headline numbers (and, where a testbed is
 * reachable, a full stats-registry snapshot) into a Report, which
 * writes one machine-readable document per run:
 *
 *   {
 *     "schema_version": 2,
 *     "bench": "fig11a_ssd_nic",
 *     "figure": "Fig. 11a",
 *     "headlines": [
 *       {"name": "...", "value": 42.0, "unit": "%",
 *        "paper": 42.0, "note": "..."},   // paper: null if N/A
 *       ...
 *     ],
 *     "timeline": [ { "name": "...", "period_us": 500.0,
 *        "columns": [...], "samples": [[t_us, v0, ...], ...] } ],
 *     "stats": { "<label>": { "<group>": { "<stat>": ... } } }
 *   }
 *
 * (schema v2 = v1 plus the optional `timeline[]` section fed by
 * captureTimeline(); see sim/timeline.hh.)
 *
 * The schema is documented in docs/OBSERVABILITY.md and validated by
 * tools/check_bench_schema.py. Constructing a Report strips
 * `--json <path>` from argc/argv so benches that forward their
 * arguments elsewhere (table3's google-benchmark Initialize) never
 * see the flag.
 *
 * The Report also owns the bench-side span-tracing switches
 * (docs/OBSERVABILITY.md):
 *
 *   --trace <path>     write a Chrome trace_event JSON file
 *   --trace-sample N   sample counter tracks every N records
 *   --trace-buf N      per-tracer record-ring capacity
 *
 * Benches configure each testbed's tracer from traceConfig(), capture
 * trace::Dump snapshots while the testbed is alive (in index order
 * for parallel sweeps), and finish() serializes the merged dumps.
 */

#ifndef DCS_BENCH_REPORT_HH
#define DCS_BENCH_REPORT_HH

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/timeline.hh"
#include "sim/tracing.hh"

namespace dcs {
namespace bench {

class Report
{
  public:
    /**
     * Parse and remove `--json <path>` (or `--json=<path>`) from the
     * argument vector. Without the flag the Report is inert: all
     * recording calls are cheap no-ops and finish() writes nothing.
     */
    Report(int &argc, char **argv, std::string bench_name,
           std::string figure)
        : benchName(std::move(bench_name)), figure(std::move(figure))
    {
        int w = 1;
        for (int r = 1; r < argc; ++r) {
            const std::string arg = argv[r];
            if (arg == "--json") {
                if (r + 1 >= argc)
                    fatal("--json requires a path argument");
                outPath = argv[++r];
            } else if (arg.rfind("--json=", 0) == 0) {
                outPath = arg.substr(7);
                if (outPath.empty())
                    fatal("--json= requires a non-empty path");
            } else if (arg == "--trace") {
                if (r + 1 >= argc)
                    fatal("--trace requires a path argument");
                tracePath = argv[++r];
            } else if (arg.rfind("--trace=", 0) == 0) {
                tracePath = arg.substr(8);
                if (tracePath.empty())
                    fatal("--trace= requires a non-empty path");
            } else if (arg == "--trace-sample") {
                if (r + 1 >= argc)
                    fatal("--trace-sample requires a count");
                traceCfg.counterPeriod = static_cast<std::uint32_t>(
                    std::strtoul(argv[++r], nullptr, 10));
            } else if (arg == "--trace-buf") {
                if (r + 1 >= argc)
                    fatal("--trace-buf requires a record count");
                traceCfg.maxRecords = static_cast<std::size_t>(
                    std::strtoull(argv[++r], nullptr, 10));
            } else {
                argv[w++] = argv[r];
            }
        }
        argc = w;
        argv[argc] = nullptr;
        if (!tracePath.empty())
            traceCfg.enabled = true;
        if (traceCfg.enabled && traceCfg.counterPeriod == 0)
            fatal("--trace-sample must be positive");
        if (traceCfg.enabled && traceCfg.maxRecords == 0)
            fatal("--trace-buf must be positive");
    }

    /**
     * Record one headline metric. @p paper is the number the source
     * paper reports for the same quantity (NaN — the default — when
     * the paper has no directly comparable figure; it serializes as
     * null). @p note carries free-form context, e.g. the paper
     * section.
     */
    void
    headline(std::string name, double value, std::string unit,
             double paper = std::nan(""), std::string note = "")
    {
        headlines.push_back(Headline{std::move(name), value,
                                     std::move(unit), paper,
                                     std::move(note)});
    }

    /**
     * Append one point to the named curve (created on first use;
     * points serialize in call order). Curves carry x/y sweeps that
     * don't fit the flat headline list — e.g. latency-vs-offered-load
     * knee curves. Each point is the sweep coordinate @p x plus one
     * or more named numeric fields:
     *
     *   "curves": [{"name": "...", "points":
     *       [{"x": 1000.0, "p99_us": 52.0, ...}, ...]}, ...]
     *
     * Field names must be consistent within a curve; NaN serializes
     * as null (missing measurement, e.g. an empty quantile).
     */
    void
    curvePoint(const std::string &curve, double x,
               std::vector<std::pair<std::string, double>> fields)
    {
        for (auto &c : curves) {
            if (c.name == curve) {
                c.points.push_back({x, std::move(fields)});
                return;
            }
        }
        curves.push_back(Curve{curve, {{x, std::move(fields)}}});
    }

    /**
     * Snapshot @p eq's stats registry under @p label. Labels must be
     * unique within a report; capturing must happen while the models
     * are still alive (i.e. before their Testbed is destroyed).
     */
    void
    captureStats(std::string label, const EventQueue &eq)
    {
        if (outPath.empty())
            return;
        captureStatsBlob(std::move(label), eq.stats().dumpJsonString());
    }

    /**
     * Record a pre-serialized registry snapshot (the string returned
     * by stats::Registry::dumpJsonString). This is the thread-safe
     * path for parallel sweeps: a worker task captures the blob while
     * its testbed is alive, and the main thread hands the blobs to
     * the report in index order after the ParallelRunner joins.
     * Empty blobs are ignored (the task saw a disabled report).
     */
    void
    captureStatsBlob(std::string label, std::string blob)
    {
        if (outPath.empty() || blob.empty())
            return;
        for (const auto &[l, b] : snapshots)
            if (l == label)
                fatal("duplicate stats label '%s'", label.c_str());
        snapshots.emplace_back(std::move(label), std::move(blob));
    }

    /**
     * Record one captured time series (sim/timeline.hh) for the
     * `timeline[]` report section. Like stats blobs: workers dump
     * while their testbed is alive, the main thread captures in index
     * order so the report is byte-identical at any thread count.
     */
    void
    captureTimeline(stats::Timeline::Dump d)
    {
        if (outPath.empty())
            return;
        timelines.push_back(std::move(d));
    }

    /** True when `--trace <path>` was given. */
    bool tracing() const { return !tracePath.empty(); }

    /**
     * The tracer configuration to install on each testbed's event
     * queue (enabled only when --trace was given).
     */
    trace::Config traceConfig() const { return traceCfg; }

    /**
     * Record one tracer snapshot under @p label (one Chrome "process"
     * in the output). Like stats blobs: workers snapshot while their
     * testbed is alive, the main thread captures in index order so
     * the merged file is byte-identical at any thread count.
     */
    void
    captureTrace(std::string label, trace::Dump dump)
    {
        if (tracePath.empty())
            return;
        traceDumps.emplace_back(std::move(label), std::move(dump));
    }

    /**
     * Write the report if `--json` was given, and the Chrome trace if
     * `--trace` was given. Returns 0 so benches can end with
     * `return report.finish();`.
     */
    int
    finish() const
    {
        writeTrace();
        if (outPath.empty())
            return 0;

        json::JsonWriter w;
        w.beginObject();
        w.key("schema_version");
        w.value(2); // v2: adds the optional timeline[] section
        w.key("bench");
        w.value(benchName);
        w.key("figure");
        w.value(figure);
        w.key("headlines");
        w.beginArray();
        for (const auto &h : headlines) {
            w.beginObject();
            w.key("name");
            w.value(h.name);
            w.key("value");
            w.value(h.value);
            w.key("unit");
            w.value(h.unit);
            w.key("paper");
            w.value(h.paper); // NaN -> null
            w.key("note");
            w.value(h.note);
            w.endObject();
        }
        w.endArray();
        if (!curves.empty()) {
            w.key("curves");
            w.beginArray();
            for (const auto &c : curves) {
                w.beginObject();
                w.key("name");
                w.value(c.name);
                w.key("points");
                w.beginArray();
                for (const auto &pt : c.points) {
                    w.beginObject();
                    w.key("x");
                    w.value(pt.x);
                    for (const auto &[k, v] : pt.fields) {
                        w.key(k);
                        w.value(v); // NaN -> null
                    }
                    w.endObject();
                }
                w.endArray();
                w.endObject();
            }
            w.endArray();
        }
        if (!timelines.empty()) {
            w.key("timeline");
            w.beginArray();
            for (const auto &t : timelines) {
                w.beginObject();
                w.key("name");
                w.value(t.name);
                w.key("period_us");
                w.value(static_cast<double>(t.period) / 1e6);
                w.key("dropped_rows");
                w.value(static_cast<double>(t.droppedRows));
                w.key("columns");
                w.beginArray();
                for (const auto &c : t.columns)
                    w.value(c);
                w.endArray();
                // One row per sample: [t_us, col0, col1, ...].
                w.key("samples");
                w.beginArray();
                const std::size_t nc = t.columns.size();
                for (std::size_t r = 0; r < t.ticks.size(); ++r) {
                    w.beginArray();
                    w.value(static_cast<double>(t.ticks[r]) / 1e6);
                    for (std::size_t c = 0; c < nc; ++c)
                        w.value(t.values[r * nc + c]);
                    w.endArray();
                }
                w.endArray();
                w.endObject();
            }
            w.endArray();
        }
        w.key("stats");
        w.beginObject();
        for (const auto &[label, blob] : snapshots) {
            w.key(label);
            w.rawValue(blob);
        }
        w.endObject();
        w.endObject();

        const std::string doc = w.str();
        std::FILE *f = std::fopen(outPath.c_str(), "w");
        if (!f)
            fatal("cannot open %s for writing", outPath.c_str());
        std::fwrite(doc.data(), 1, doc.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("\n[json report written to %s]\n", outPath.c_str());
        return 0;
    }

    bool enabled() const { return !outPath.empty(); }

  private:
    void
    writeTrace() const
    {
        if (tracePath.empty())
            return;
        const std::string doc = trace::writeChromeJson(traceDumps);
        std::FILE *f = std::fopen(tracePath.c_str(), "w");
        if (!f)
            fatal("cannot open %s for writing", tracePath.c_str());
        std::fwrite(doc.data(), 1, doc.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("\n[trace written to %s]\n", tracePath.c_str());
    }

    struct Headline
    {
        std::string name;
        double value;
        std::string unit;
        double paper;
        std::string note;
    };

    struct CurvePointRec
    {
        double x;
        std::vector<std::pair<std::string, double>> fields;
    };

    struct Curve
    {
        std::string name;
        std::vector<CurvePointRec> points;
    };

    std::string benchName;
    std::string figure;
    std::string outPath;
    std::string tracePath;
    trace::Config traceCfg;
    std::vector<Headline> headlines;
    std::vector<Curve> curves;
    std::vector<std::pair<std::string, std::string>> snapshots;
    std::vector<std::pair<std::string, trace::Dump>> traceDumps;
    std::vector<stats::Timeline::Dump> timelines;
};

} // namespace bench
} // namespace dcs

#endif // DCS_BENCH_REPORT_HH
