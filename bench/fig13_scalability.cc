/**
 * @file
 * Figure 13: estimated CPU utilization with high-performance devices.
 *
 * Following the paper's method: measure throughput and CPU
 * utilization on the 10-Gbps testbed, derive each design's
 * cores-per-Gbps cost, then project to a server with a 40-Gbps NIC,
 * six NVMe SSDs and a single 6-core Xeon.
 *
 * Paper reference: the baselines cannot serve 40 Gbps within one CPU;
 * DCS-ctrl needs <= 3 cores and therefore delivers 1.95x (Swift) /
 * 2.06x (HDFS) the throughput of software-controlled P2P when CPU
 * is the binding resource.
 */

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>

#include "bench/parallel_runner.hh"
#include "bench/report.hh"
#include "sim/logging.hh"
#include "workload/experiment.hh"
#include "workload/hdfs.hh"
#include "workload/swift.hh"

using namespace dcs;
using workload::Design;

namespace {

struct Slope
{
    std::string label;
    double coresPerGbps = 0.0;
    double measuredGbps = 0.0;
    std::string statsBlob;
};

Slope
measureSwift(Design d, bool capture_stats)
{
    workload::Testbed tb(d);
    workload::SwiftParams p;
    p.offeredGbps = 5.0;
    p.warmup = milliseconds(10);
    p.measure = milliseconds(300);
    p.connections = 32;
    p.mix.sizeBuckets = {{4 * 1024, 0.18},   {16 * 1024, 0.17},
                         {64 * 1024, 0.20},  {256 * 1024, 0.20},
                         {1024 * 1024, 0.15}, {2048 * 1024, 0.10}};
    p.appFixedUs = 200.0;
    p.appPerMbUs = (d == Design::DcsCtrl) ? 700.0 : 1500.0;
    workload::SwiftWorkload wl(tb.eq(), tb.nodeA(), tb.nodeB(),
                               tb.pathA(), p);
    Slope s;
    s.label = workload::designName(d);
    bool fin = false;
    wl.run([&](const workload::SwiftStats &st) {
        s.measuredGbps = st.throughputGbps;
        s.coresPerGbps =
            st.cpuUtilization * 6.0 / std::max(st.throughputGbps, 1e-9);
        fin = true;
    });
    tb.eq().run();
    if (!fin)
        fatal("fig13: swift %s did not drain", s.label.c_str());
    if (capture_stats)
        s.statsBlob = tb.eq().stats().dumpJsonString();
    return s;
}

Slope
measureHdfs(Design d, bool capture_stats)
{
    workload::Testbed tb(d, /*receiver_dcs=*/true);
    workload::HdfsParams p;
    p.blocks = 24;
    p.streams = 6;
    p.senderAppUsPerBlock = (d == Design::DcsCtrl) ? 1000.0 : 2000.0;
    p.receiverAppUsPerBlock = (d == Design::DcsCtrl) ? 5500.0 : 12000.0;
    workload::HdfsBalancer wl(tb.eq(), tb.nodeA(), tb.nodeB(),
                              tb.pathA(), tb.pathB(), p);
    Slope s;
    s.label = workload::designName(d);
    bool fin = false;
    wl.run([&](const workload::HdfsStats &st) {
        s.measuredGbps = st.bandwidthGbps;
        // Receiver is the CPU-heavy side in the balancer.
        const double cores =
            std::max(st.senderCpuUtil, st.receiverCpuUtil) * 6.0;
        s.coresPerGbps = cores / std::max(st.bandwidthGbps, 1e-9);
        fin = true;
    });
    tb.eq().run();
    if (!fin)
        fatal("fig13: hdfs %s did not drain", s.label.c_str());
    if (capture_stats)
        s.statsBlob = tb.eq().stats().dumpJsonString();
    return s;
}

void
project(const char *title, const std::vector<Slope> &slopes,
        double paper_ratio, const std::string &tag,
        bench::Report &report)
{
    std::printf("\n%s\n", title);
    std::printf("(projection: 40-Gbps NIC, 6 NVMe SSDs, one 6-core "
                "CPU)\n");
    std::printf("%-10s %14s | cores needed at Gbps:", "design",
                "cores/Gbps");
    for (int g = 10; g <= 40; g += 10)
        std::printf(" %6d", g);
    std::printf(" | max Gbps @6 cores\n");
    for (const auto &s : slopes) {
        std::printf("%-10s %14.3f |                      ",
                    s.label.c_str(), s.coresPerGbps);
        for (int g = 10; g <= 40; g += 10)
            std::printf(" %6.2f", s.coresPerGbps * g);
        const double max_gbps =
            std::min(40.0, 6.0 / std::max(s.coresPerGbps, 1e-9));
        std::printf(" | %8.1f\n", max_gbps);
    }
    const double swp_max =
        std::min(40.0, 6.0 / std::max(slopes[1].coresPerGbps, 1e-9));
    const double dcs_max =
        std::min(40.0, 6.0 / std::max(slopes[2].coresPerGbps, 1e-9));
    std::printf("throughput ratio dcs-ctrl / sw-p2p at the CPU limit: "
                "%.2fx (paper: %.2fx)\n",
                dcs_max / swp_max, paper_ratio);

    for (const auto &s : slopes) {
        report.headline(tag + "/" + s.label + "/cores_per_gbps",
                        s.coresPerGbps, "cores/Gbps");
        report.headline(tag + "/" + s.label + "/max_gbps_6_cores",
                        std::min(40.0,
                                 6.0 / std::max(s.coresPerGbps, 1e-9)),
                        "Gbps");
    }
    report.headline(tag + "/dcs_vs_sw_p2p_at_cpu_limit",
                    dcs_max / swp_max, "x", paper_ratio,
                    "§V-D projection: 40-Gbps NIC, one 6-core CPU");
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::Report report(argc, argv, "fig13_scalability", "Fig. 13");

    const Design designs[] = {Design::SwOptimized, Design::SwP2p,
                              Design::DcsCtrl};
    // All six measurement points (3 Swift + 3 HDFS testbeds) are
    // independent, so they run as one parallel batch; printing and
    // report emission happen afterward in the original serial order.
    std::vector<Slope> swift(3);
    std::vector<Slope> hdfs(3);
    std::vector<std::function<void()>> tasks;
    const bool capture = report.enabled();
    for (std::size_t i = 0; i < 3; ++i)
        tasks.push_back([&swift, &designs, capture, i] {
            swift[i] = measureSwift(designs[i], capture);
        });
    for (std::size_t i = 0; i < 3; ++i)
        tasks.push_back([&hdfs, &designs, capture, i] {
            hdfs[i] = measureHdfs(designs[i], capture);
        });
    const bench::ParallelRunner runner;
    runner.run(tasks);

    for (auto &s : swift)
        report.captureStatsBlob("swift/" + s.label,
                                std::move(s.statsBlob));
    project("Fig. 13a — Swift scalability estimate", swift, 1.95,
            "swift", report);

    for (auto &s : hdfs)
        report.captureStatsBlob("hdfs/" + s.label,
                                std::move(s.statsBlob));
    project("Fig. 13b — HDFS scalability estimate", hdfs, 2.06, "hdfs",
            report);

    return report.finish();
}
