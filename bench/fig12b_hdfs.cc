/**
 * @file
 * Figure 12b: CPU-utilization breakdown of the HDFS balancer at the
 * same achieved bandwidth under each design.
 *
 * Paper reference: software-controlled P2P barely helps HDFS (the
 * sender uses no GPU; the receiver hits the NIC->GPU data-gathering
 * problem), while DCS-ctrl reduces sender CPU and enables direct
 * inter-device receiving.
 */

#include <cstdio>
#include <string>

#include "bench/parallel_runner.hh"
#include "bench/report.hh"
#include "sim/logging.hh"
#include "workload/experiment.hh"
#include "workload/hdfs.hh"

using namespace dcs;
using workload::Design;

namespace {

struct Row
{
    std::string label;
    workload::HdfsStats stats;
    std::string statsBlob;
};

Row
run(Design d, bool capture_stats)
{
    workload::Testbed tb(d, /*receiver_dcs=*/true);
    workload::HdfsParams p;
    p.blocks = 24;
    p.streams = 6;
    p.blockBytes = 8ull << 20;
    // Java datanode/balancer bookkeeping per block; DCS-ctrl removes
    // the user-space byte handling but not the block management.
    p.senderAppUsPerBlock = (d == Design::DcsCtrl) ? 1000.0 : 2000.0;
    p.receiverAppUsPerBlock = (d == Design::DcsCtrl) ? 5500.0 : 12000.0;
    workload::HdfsBalancer wl(tb.eq(), tb.nodeA(), tb.nodeB(),
                              tb.pathA(), tb.pathB(), p);
    Row row;
    row.label = workload::designName(d);
    bool fin = false;
    wl.run([&](const workload::HdfsStats &s) {
        row.stats = s;
        fin = true;
    });
    tb.eq().run();
    if (!fin)
        fatal("fig12b: %s did not drain", row.label.c_str());
    if (capture_stats)
        row.statsBlob = tb.eq().stats().dumpJsonString();
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::Report report(argc, argv, "fig12b_hdfs", "Fig. 12b");

    const Design designs[] = {Design::SwOptimized, Design::SwP2p,
                              Design::DcsCtrl};
    // Independent testbeds run concurrently; blobs captured inside
    // each task keep --json byte-identical to a serial run.
    const bench::ParallelRunner runner;
    auto rows = runner.map<Row>(3, [&](std::size_t i) {
        return run(designs[i], report.enabled());
    });
    for (auto &r : rows)
        report.captureStatsBlob(r.label, std::move(r.statsBlob));

    std::printf("Fig. 12b — HDFS balancer (8 MiB blocks, CRC32 at the "
                "receiver)\n");
    std::vector<workload::CpuRow> cpu_rows;
    for (const auto &r : rows) {
        std::printf("%-10s bw=%.2f Gbps sender_cpu=%.2f%% "
                    "receiver_cpu=%.2f%%\n",
                    r.label.c_str(), r.stats.bandwidthGbps,
                    100 * r.stats.senderCpuUtil,
                    100 * r.stats.receiverCpuUtil);
        workload::CpuRow s;
        s.label = r.label + "/sender";
        s.busy = r.stats.senderBusy;
        s.window = static_cast<double>(r.stats.elapsed) * 6;
        cpu_rows.push_back(s);
        workload::CpuRow c;
        c.label = r.label + "/receiver";
        c.busy = r.stats.receiverBusy;
        c.window = static_cast<double>(r.stats.elapsed) * 6;
        cpu_rows.push_back(c);
    }
    workload::printCpuTable(
        "CPU-utilization breakdown (percent of 6 cores)", cpu_rows);

    const auto &swo = rows[0].stats;
    const auto &swp = rows[1].stats;
    const auto &dcs = rows[2].stats;
    std::printf("\nsw-p2p vs sw-opt receiver CPU: %.2fx (paper: ~1x, "
                "no opportunity)\n",
                swp.receiverCpuUtil / swo.receiverCpuUtil);
    std::printf("dcs-ctrl vs sw-opt total CPU:  %.2fx (paper: large "
                "reduction on both sides)\n",
                (dcs.senderCpuUtil + dcs.receiverCpuUtil) /
                    (swo.senderCpuUtil + swo.receiverCpuUtil));

    for (const auto &r : rows) {
        report.headline(r.label + "/bandwidth", r.stats.bandwidthGbps,
                        "Gbps");
        report.headline(r.label + "/sender_cpu",
                        100 * r.stats.senderCpuUtil, "%");
        report.headline(r.label + "/receiver_cpu",
                        100 * r.stats.receiverCpuUtil, "%");
    }
    report.headline("sw_p2p_vs_sw_opt_receiver_cpu",
                    swp.receiverCpuUtil / swo.receiverCpuUtil, "x", 1.0,
                    "paper: ~1x, P2P has no opportunity in HDFS");
    report.headline("dcs_vs_sw_opt_total_cpu",
                    (dcs.senderCpuUtil + dcs.receiverCpuUtil) /
                        (swo.senderCpuUtil + swo.receiverCpuUtil),
                    "x", std::nan(""),
                    "paper: large reduction on both sides");
    return report.finish();
}
