/**
 * @file
 * Control-plane model fast-path benchmark: the scoreboard, command
 * bookkeeping, and receive-demux structures themselves.
 *
 * Compares the shipping control-plane model (flat slot-slab scoreboard
 * with intrusive ready lists, src/hdc/scoreboard.*, plus the
 * open-addressing FlowIndex demux, src/host/flow_index.hh) against
 * in-file replicas of the structures they replaced: the
 * std::unordered_map<id, Entry>-with-dependents-vector scoreboard and
 * the std::map<FlowKey, int> receive demux, both reproduced verbatim
 * from the previous revision minus stats/trace plumbing.
 *
 * Five workloads, shaped like what the loadgen actually generates:
 *  - single_shot: one 2-entry command (SSD read -> NIC send) per
 *    request, a closed-loop population in flight. The keep-alive
 *    request steady state.
 *  - ndp_pipeline: 8-chunk commands, each chunk SSD -> NDP -> NIC with
 *    cross-chunk in-order send chaining — the multi-chunk D2D pipeline
 *    the engine builds for large transfers.
 *  - churn_100k: 10^5 established clients; every request demuxes its
 *    flow key, then runs a 2-entry command. The million-client
 *    frontier's per-request path (and the allocation-audit point).
 *  - flow_demux: pure receive-demux point lookups over 10^5 flows.
 *  - overload_429: open-loop arrivals against a live-entry admission
 *    bound; rejected commands take the 429 path (hasCapacity +
 *    noteReject), admitted ones execute. Decision throughput.
 *
 * Both models run on the same (shipping) EventQueue with identical
 * timing, slots, and latencies, so the measured delta is the model
 * layer alone. `--verify` runs both sides at reduced scale and
 * requires bit-equal behavior digests (completion order, admission
 * decisions, final simulated time) — its stdout is fully
 * deterministic, so CI byte-compares it across DCS_BENCH_THREADS.
 * `--alloc-audit` proves the steady-state claim: global operator
 * new/delete hooks in this TU count every heap allocation, and after
 * warmup the fast path must complete requests at the 10^5-client point
 * with exactly zero allocations.
 *
 * Timing uses wall-clock (std::chrono::steady_clock); bench/ is
 * measurement code, outside simlint's no-wall-clock rule for src/.
 */
// dcslint: allow-file(ambient-time-randomness): host wall-clock timing is
// the measurement this bench exists to take; it never feeds simulated state.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <new>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/report.hh"
#include "hdc/scoreboard.hh"
#include "hdc/timing.hh"
#include "host/flow_index.hh"
#include "sim/event_queue.hh"
#include "sim/ticks.hh"

using namespace dcs;
using hdc::DevClass;
using hdc::Entry;
using hdc::HdcTiming;

// ---------------------------------------------------------------------
// Allocation audit: count every global heap allocation in the process.
// The fast path's contract is zero steady-state allocations per
// completed request; the hooks make that directly measurable.
// ---------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocCount{0};

std::uint64_t
allocsNow()
{
    return g_allocCount.load(std::memory_order_relaxed);
}

void *
countedAlloc(std::size_t n, std::size_t align)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    void *p = align > alignof(std::max_align_t)
                  ? std::aligned_alloc(align, (n + align - 1) / align * align)
                  : std::malloc(n);
    if (!p)
        throw std::bad_alloc();
    return p;
}
} // namespace

void *
operator new(std::size_t n)
{
    return countedAlloc(n, 0);
}
void *
operator new[](std::size_t n)
{
    return countedAlloc(n, 0);
}
void *
operator new(std::size_t n, std::align_val_t a)
{
    return countedAlloc(n, static_cast<std::size_t>(a));
}
void *
operator new[](std::size_t n, std::align_val_t a)
{
    return countedAlloc(n, static_cast<std::size_t>(a));
}
void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

namespace {

// ---------------------------------------------------------------------
// Legacy replicas.
// ---------------------------------------------------------------------

/**
 * The pre-fast-path scoreboard, reproduced verbatim minus stats and
 * trace plumbing: sequential ids into an unordered_map whose values
 * carry a per-entry dependents vector, per-class std::deque ready
 * queues, and an unordered_map of remaining-entry counts per command.
 * (The shipped Entry embedded its dependents vector; here it sits
 * beside the shared POD Entry in the map node — same field set, same
 * per-entry allocation profile — so both models speak one Entry type.)
 */
class LegacyScoreboard
{
  public:
    using IssueFn = std::function<void(const Entry &)>;

    LegacyScoreboard(EventQueue &eq, std::string name,
                     const HdcTiming &timing)
        : eq(eq), _name(std::move(name)), timing(timing)
    {
    }

    void
    registerController(DevClass dev, IssueFn issue, int slots)
    {
        Controller &c = controllers[static_cast<int>(dev)];
        c.issue = std::move(issue);
        c.slots = slots;
    }

    void
    setCommandDone(std::function<void(std::uint32_t)> fn)
    {
        onCommandDone = std::move(fn);
    }

    void
    declareCommand(std::uint32_t cmd_id, std::uint32_t n_entries)
    {
        remainingPerCmd[cmd_id] = n_entries;
    }

    std::uint32_t
    addEntry(Entry e)
    {
        e.id = nextId++;
        e.state = hdc::EntryState::Wait;
        const std::uint32_t id = e.id;
        Node node;
        node.e = e;
        entries.emplace(id, std::move(node));
        armQueue.push_back(id);
        if (entries.size() > _peakLive)
            _peakLive = entries.size();
        return id;
    }

    void
    addDependency(std::uint32_t before, std::uint32_t after)
    {
        auto bit = entries.find(before);
        auto ait = entries.find(after);
        if (bit == entries.end() || ait == entries.end())
            panic("%s: dependency on unknown entry", _name.c_str());
        bit->second.dependents.push_back(after);
        ++ait->second.e.pendingDeps;
    }

    void
    arm()
    {
        std::vector<std::uint32_t> pending;
        pending.swap(armQueue);
        for (std::uint32_t id : pending) {
            auto it = entries.find(id);
            if (it == entries.end())
                continue;
            if (it->second.e.pendingDeps == 0 &&
                it->second.e.state == hdc::EntryState::Wait)
                makeReady(id);
        }
    }

    void
    complete(std::uint32_t id)
    {
        auto it = entries.find(id);
        if (it == entries.end())
            panic("%s: completion for unknown entry %u", _name.c_str(),
                  id);
        Entry &e = it->second.e;
        if (e.state != hdc::EntryState::Issued)
            panic("%s: completing entry %u in state %d", _name.c_str(),
                  id, static_cast<int>(e.state));
        e.state = hdc::EntryState::Done;

        Controller &c = controllers[static_cast<int>(e.dev)];
        --c.inUse;
        tryIssue(e.dev);

        eq.schedule(timing.cycles(timing.scoreboardCompleteCycles),
                    [this, id] {
                        auto it2 = entries.find(id);
                        if (it2 == entries.end())
                            return;
                        Node done = std::move(it2->second);
                        entries.erase(it2);

                        for (std::uint32_t dep_id : done.dependents) {
                            auto dit = entries.find(dep_id);
                            if (dit == entries.end())
                                continue;
                            if (--dit->second.e.pendingDeps == 0 &&
                                dit->second.e.state ==
                                    hdc::EntryState::Wait)
                                makeReady(dep_id);
                        }

                        auto rit = remainingPerCmd.find(done.e.cmdId);
                        if (rit == remainingPerCmd.end())
                            panic("%s: entry for undeclared command %u",
                                  _name.c_str(), done.e.cmdId);
                        if (--rit->second == 0) {
                            remainingPerCmd.erase(rit);
                            if (onCommandDone)
                                onCommandDone(done.e.cmdId);
                        }
                    });
    }

    void setLiveBound(std::size_t max_live) { liveBound = max_live; }

    bool
    hasCapacity(std::size_t n) const
    {
        return liveBound == 0 || entries.size() + n <= liveBound;
    }

    void noteReject() { ++_rejects; }
    std::uint64_t rejects() const { return _rejects; }
    std::size_t entriesLive() const { return entries.size(); }
    std::uint64_t entriesIssued() const { return issuedCount; }
    std::uint64_t peakLive() const { return _peakLive; }

  private:
    struct Node
    {
        Entry e;
        std::vector<std::uint32_t> dependents;
    };

    struct Controller
    {
        IssueFn issue;
        int slots = 0;
        int inUse = 0;
        std::deque<std::uint32_t> readyQueue;
    };

    void
    makeReady(std::uint32_t id)
    {
        Entry &e = entries.at(id).e;
        e.state = hdc::EntryState::Ready;
        Controller &c = controllers[static_cast<int>(e.dev)];
        c.readyQueue.push_back(id);
        tryIssue(e.dev);
    }

    void
    tryIssue(DevClass dev)
    {
        Controller &c = controllers[static_cast<int>(dev)];
        if (!c.issue)
            panic("%s: no controller registered for class %d",
                  _name.c_str(), static_cast<int>(dev));
        while (c.inUse < c.slots && !c.readyQueue.empty()) {
            const std::uint32_t id = c.readyQueue.front();
            c.readyQueue.pop_front();
            Entry &e = entries.at(id).e;
            e.state = hdc::EntryState::Issued;
            ++c.inUse;
            ++issuedCount;
            eq.schedule(timing.cycles(timing.scoreboardIssueCycles),
                        [this, id, dev] {
                            auto it = entries.find(id);
                            if (it == entries.end())
                                panic("%s: issued entry vanished",
                                      _name.c_str());
                            controllers[static_cast<int>(dev)].issue(
                                it->second.e);
                        });
        }
    }

    EventQueue &eq;
    std::string _name;
    const HdcTiming &timing;
    std::unordered_map<std::uint32_t, Node> entries;
    std::unordered_map<std::uint32_t, std::uint32_t> remainingPerCmd;
    Controller controllers[4];
    std::function<void(std::uint32_t)> onCommandDone;
    std::uint32_t nextId = 1;
    std::uint64_t issuedCount = 0;
    std::uint64_t _peakLive = 0;
    std::uint64_t _rejects = 0;
    std::size_t liveBound = 0;
    std::vector<std::uint32_t> armQueue;
};

/** The pre-fast-path receive demux: an ordered map keyed by flow. */
using LegacyDemux = std::map<host::FlowKey, int>;

int
demuxFind(const LegacyDemux &d, const host::FlowKey &k)
{
    auto it = d.find(k);
    return it == d.end() ? -1 : it->second;
}

int
demuxFind(const host::FlowIndex &d, const host::FlowKey &k)
{
    const int *fd = d.find(k);
    return fd ? *fd : -1;
}

void
demuxInsert(LegacyDemux &d, const host::FlowKey &k, int fd)
{
    d.emplace(k, fd);
}

void
demuxInsert(host::FlowIndex &d, const host::FlowKey &k, int fd)
{
    d.emplaceIfAbsent(k, fd);
}

/** Quiesce audit: the fast side proves exact occupancy, the legacy
 *  side can only assert emptiness of its map. */
void
auditQuiesce(hdc::Scoreboard &sb)
{
    sb.checkQuiesce();
    if (!sb.quiescent())
        fatal("scoreboard not quiescent after drain");
}

void
auditQuiesce(LegacyScoreboard &sb)
{
    if (sb.entriesLive() != 0)
        fatal("legacy scoreboard not drained (%zu live)",
              sb.entriesLive());
}

struct FastModel
{
    using Sb = hdc::Scoreboard;
    using Demux = host::FlowIndex;
    static constexpr const char *tag = "fastpath";
};

struct LegacyModel
{
    using Sb = LegacyScoreboard;
    using Demux = LegacyDemux;
    static constexpr const char *tag = "legacy";
};

// ---------------------------------------------------------------------
// Behavior digest: both models must produce bit-equal sequences of
// command completions, admission decisions, and simulated time.
// ---------------------------------------------------------------------

struct Digest
{
    std::uint64_t h = 1469598103934665603ull;

    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= static_cast<std::uint8_t>(v >> (8 * i));
            h *= 1099511628211ull;
        }
    }
};

// ---------------------------------------------------------------------
// The shared rig: one EventQueue, one scoreboard, one demux table,
// controllers whose issue callbacks model fixed device latencies.
// ---------------------------------------------------------------------

constexpr Tick kSsdLat = 8'000'000;  // 8 us flash read
constexpr Tick kNicLat = 2'000'000;  // 2 us wire + completion
constexpr Tick kNdpLat = 1'000'000;  // 1 us transform chunk
constexpr int kSsdSlots = 62;        // shipping queue depths
constexpr int kNicSlots = 254;
constexpr int kNdpSlots = 64;

template <typename Model>
struct Rig
{
    EventQueue eq;
    HdcTiming timing;
    typename Model::Sb sb;
    typename Model::Demux demux;
    Digest dg;

    std::uint32_t nextCmd = 0;
    std::uint64_t launched = 0;
    std::uint64_t completed = 0;
    std::uint64_t targetCmds = 0;
    std::uint32_t nClients = 0;
    std::uint32_t lcg = 0x5eed;
    std::uint64_t arrivalsLeft = 0;
    std::uint64_t decisions = 0;
    int chunks = 1;

    Rig() : sb(eq, "hdc.scoreboard", timing)
    {
        sb.registerController(
            DevClass::SsdCtrl,
            [this](const Entry &e) {
                eq.schedule(kSsdLat,
                            [this, id = e.id] { sb.complete(id); });
            },
            kSsdSlots);
        sb.registerController(
            DevClass::NicCtrl,
            [this](const Entry &e) {
                eq.schedule(kNicLat,
                            [this, id = e.id] { sb.complete(id); });
            },
            kNicSlots);
        sb.registerController(
            DevClass::NdpUnit,
            [this](const Entry &e) {
                eq.schedule(kNdpLat,
                            [this, id = e.id] { sb.complete(id); });
            },
            kNdpSlots);
    }

    static host::FlowKey
    clientKey(std::uint32_t client)
    {
        host::FlowKey k;
        k.localIp = 0x0a000001;
        k.remoteIp = 0x0b000000 | client;
        k.localPort = 8080;
        k.remotePort = static_cast<std::uint16_t>(40000 + client % 20000);
        return k;
    }

    void
    populateClients(std::uint32_t n)
    {
        nClients = n;
        for (std::uint32_t i = 0; i < n; ++i)
            demuxInsert(demux, clientKey(i), static_cast<int>(i));
    }

    /** One keep-alive request: SSD read feeding a NIC send. */
    void
    launchSingle(std::uint64_t aux)
    {
        const std::uint32_t cmd = ++nextCmd;
        ++launched;
        sb.declareCommand(cmd, 2);
        Entry rd;
        rd.cmdId = cmd;
        rd.dev = DevClass::SsdCtrl;
        rd.len = 4096;
        rd.flow = cmd;
        const std::uint32_t rd_id = sb.addEntry(rd);
        Entry tx;
        tx.cmdId = cmd;
        tx.dev = DevClass::NicCtrl;
        tx.write = true;
        tx.len = 4096;
        tx.aux = aux;
        tx.flow = cmd;
        const std::uint32_t tx_id = sb.addEntry(tx);
        sb.addDependency(rd_id, tx_id);
        sb.arm();
    }

    /** One multi-chunk D2D command: per chunk SSD -> NDP -> NIC, with
     *  cross-chunk in-order send chaining (the engine's per-connection
     *  wire ordering). */
    void
    launchPipeline()
    {
        const std::uint32_t cmd = ++nextCmd;
        ++launched;
        sb.declareCommand(cmd,
                          static_cast<std::uint32_t>(3 * chunks));
        std::uint32_t prev_send = 0;
        for (int c = 0; c < chunks; ++c) {
            Entry rd;
            rd.cmdId = cmd;
            rd.dev = DevClass::SsdCtrl;
            rd.len = 64 * 1024;
            rd.aux = static_cast<std::uint64_t>(c);
            rd.flow = cmd;
            const std::uint32_t rd_id = sb.addEntry(rd);
            Entry xf;
            xf.cmdId = cmd;
            xf.dev = DevClass::NdpUnit;
            xf.len = 64 * 1024;
            xf.flow = cmd;
            const std::uint32_t xf_id = sb.addEntry(xf);
            sb.addDependency(rd_id, xf_id);
            Entry tx;
            tx.cmdId = cmd;
            tx.dev = DevClass::NicCtrl;
            tx.write = true;
            tx.len = 64 * 1024;
            tx.flow = cmd;
            const std::uint32_t tx_id = sb.addEntry(tx);
            sb.addDependency(xf_id, tx_id);
            if (prev_send != 0)
                sb.addDependency(prev_send, tx_id);
            prev_send = tx_id;
        }
        sb.arm();
    }

    /** One churn request: demux the client's flow, then launchSingle
     *  on the resolved fd. */
    void
    launchChurn()
    {
        lcg = lcg * 1664525u + 1013904223u;
        const std::uint32_t client = lcg % nClients;
        const int fd = demuxFind(demux, clientKey(client));
        if (fd < 0)
            fatal("churn demux miss for client %u", client);
        dg.mix(static_cast<std::uint64_t>(fd));
        launchSingle(static_cast<std::uint64_t>(fd));
    }

    /** Open-loop arrival: admit under the live bound or take the 429
     *  path. The next arrival is scheduled either way. */
    void
    overloadArrival(Tick gap)
    {
        if (arrivalsLeft == 0)
            return;
        --arrivalsLeft;
        ++decisions;
        if (!sb.hasCapacity(2)) {
            sb.noteReject();
            dg.mix(0);
        } else {
            dg.mix(1);
            launchSingle(0);
        }
        if (arrivalsLeft > 0)
            eq.schedule(gap, [this, gap] { overloadArrival(gap); });
    }
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

// ---------------------------------------------------------------------
// Workload drivers. Each returns ops/sec and folds its behavior into
// the digest (if one is requested) — the same code path serves the
// timing, verify, and audit modes.
// ---------------------------------------------------------------------

template <typename Model>
double
singleShotPerSec(std::uint64_t total, int pending, Digest *dg)
{
    Rig<Model> r;
    r.targetCmds = total;
    r.sb.setCommandDone([&r](std::uint32_t cmd) {
        ++r.completed;
        r.dg.mix(cmd);
        if (r.launched < r.targetCmds)
            r.launchSingle(0);
    });
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < pending && r.launched < total; ++i)
        r.launchSingle(0);
    r.eq.run();
    const double dt = secondsSince(t0);
    if (r.completed != total)
        fatal("single_shot completed %llu of %llu commands",
              (unsigned long long)r.completed, (unsigned long long)total);
    auditQuiesce(r.sb);
    if (dg) {
        r.dg.mix(r.sb.entriesIssued());
        r.dg.mix(static_cast<std::uint64_t>(r.eq.now()));
        dg->mix(r.dg.h);
    }
    return double(total) / dt;
}

template <typename Model>
double
pipelinePerSec(std::uint64_t total, int chunks, int pending, Digest *dg)
{
    Rig<Model> r;
    r.targetCmds = total;
    r.chunks = chunks;
    r.sb.setCommandDone([&r](std::uint32_t cmd) {
        ++r.completed;
        r.dg.mix(cmd);
        if (r.launched < r.targetCmds)
            r.launchPipeline();
    });
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < pending && r.launched < total; ++i)
        r.launchPipeline();
    r.eq.run();
    const double dt = secondsSince(t0);
    if (r.completed != total)
        fatal("ndp_pipeline completed %llu of %llu commands",
              (unsigned long long)r.completed, (unsigned long long)total);
    auditQuiesce(r.sb);
    if (dg) {
        r.dg.mix(r.sb.entriesIssued());
        r.dg.mix(static_cast<std::uint64_t>(r.eq.now()));
        dg->mix(r.dg.h);
    }
    // Entries are the unit of scoreboard work here.
    return double(total) * 3.0 * double(chunks) / dt;
}

template <typename Model>
double
churnPerSec(std::uint32_t clients, std::uint64_t total, int pending,
            Digest *dg)
{
    Rig<Model> r;
    r.targetCmds = total;
    r.populateClients(clients);
    r.sb.setCommandDone([&r](std::uint32_t cmd) {
        ++r.completed;
        r.dg.mix(cmd);
        if (r.launched < r.targetCmds)
            r.launchChurn();
    });
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < pending && r.launched < total; ++i)
        r.launchChurn();
    r.eq.run();
    const double dt = secondsSince(t0);
    if (r.completed != total)
        fatal("churn completed %llu of %llu commands",
              (unsigned long long)r.completed, (unsigned long long)total);
    auditQuiesce(r.sb);
    if (dg) {
        r.dg.mix(r.sb.entriesIssued());
        r.dg.mix(static_cast<std::uint64_t>(r.eq.now()));
        dg->mix(r.dg.h);
    }
    return double(total) / dt;
}

template <typename Demux>
double
demuxLookupsPerSec(std::uint32_t conns, std::uint64_t lookups,
                   Digest *dg)
{
    Demux d;
    for (std::uint32_t i = 0; i < conns; ++i)
        demuxInsert(d, Rig<FastModel>::clientKey(i),
                    static_cast<int>(i));
    std::uint32_t lcg = 0xd311;
    std::uint64_t sum = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < lookups; ++i) {
        lcg = lcg * 1664525u + 1013904223u;
        const int fd = demuxFind(d, Rig<FastModel>::clientKey(lcg % conns));
        if (fd < 0)
            fatal("flow_demux miss");
        sum += static_cast<std::uint64_t>(fd);
    }
    const double dt = secondsSince(t0);
    if (dg)
        dg->mix(sum);
    return double(lookups) / dt;
}

template <typename Model>
double
overloadPerSec(std::uint64_t arrivals, Tick gap, std::size_t bound,
               Digest *dg, std::uint64_t *rejects_out)
{
    Rig<Model> r;
    r.sb.setLiveBound(bound);
    r.targetCmds = ~0ull; // admits are bounded by the arrival stream
    r.arrivalsLeft = arrivals;
    r.sb.setCommandDone([&r](std::uint32_t cmd) {
        ++r.completed;
        r.dg.mix(cmd);
    });
    const auto t0 = std::chrono::steady_clock::now();
    r.overloadArrival(gap);
    r.eq.run();
    const double dt = secondsSince(t0);
    if (r.decisions != arrivals)
        fatal("overload made %llu of %llu decisions",
              (unsigned long long)r.decisions,
              (unsigned long long)arrivals);
    if (r.completed + r.sb.rejects() != arrivals)
        fatal("overload lost commands: %llu done + %llu rejected "
              "of %llu offered",
              (unsigned long long)r.completed,
              (unsigned long long)r.sb.rejects(),
              (unsigned long long)arrivals);
    auditQuiesce(r.sb);
    if (dg) {
        r.dg.mix(r.sb.rejects());
        r.dg.mix(static_cast<std::uint64_t>(r.eq.now()));
        dg->mix(r.dg.h);
    }
    if (rejects_out)
        *rejects_out = r.sb.rejects();
    return double(arrivals) / dt;
}

/**
 * Steady-state allocation audit at the churn point: drain a warmup
 * population (slab, probe tables, and event calendar grow to their
 * working set), snapshot the global allocation counter, then complete
 * @p measured more requests. Returns allocations per request over the
 * measured window.
 */
template <typename Model>
double
churnAllocsPerRequest(std::uint32_t clients, std::uint64_t warmup,
                      std::uint64_t measured, int pending)
{
    Rig<Model> r;
    r.targetCmds = warmup;
    r.populateClients(clients);
    r.sb.setCommandDone([&r](std::uint32_t) {
        ++r.completed;
        if (r.launched < r.targetCmds)
            r.launchChurn();
    });
    for (int i = 0; i < pending; ++i)
        r.launchChurn();
    r.eq.run();
    if (r.completed != warmup)
        fatal("alloc-audit warmup incomplete");

    const std::uint64_t snap = allocsNow();
    r.targetCmds = warmup + measured;
    for (int i = 0; i < pending; ++i)
        r.launchChurn();
    r.eq.run();
    const std::uint64_t delta = allocsNow() - snap;
    if (r.completed != warmup + measured)
        fatal("alloc-audit measured window incomplete");
    auditQuiesce(r.sb);
    return double(delta) / double(measured);
}

template <typename Fn>
double
bestOf(int reps, Fn fn)
{
    double best = 0.0;
    for (int i = 0; i < reps; ++i)
        best = std::max(best, fn());
    return best;
}

// Timing-mode scales.
constexpr std::uint64_t kSingleCmds = 200'000;
constexpr int kSinglePending = 64;
constexpr std::uint64_t kPipeCmds = 12'000;
constexpr int kPipeChunks = 8;
constexpr int kPipePending = 8;
constexpr std::uint32_t kChurnClients = 100'000;
constexpr std::uint64_t kChurnCmds = 300'000;
constexpr int kChurnPending = 128;
constexpr std::uint32_t kDemuxConns = 100'000;
constexpr std::uint64_t kDemuxLookups = 4'000'000;
constexpr std::uint64_t kOverloadArrivals = 300'000;
constexpr Tick kOverloadGap = 100'000; // 100 ns offered interarrival
constexpr std::size_t kOverloadBound = 128;
constexpr int kReps = 3;

// Audit scales (also used by the --alloc-audit ctest gate).
constexpr std::uint64_t kAuditWarmup = 150'000;
constexpr std::uint64_t kAuditMeasured = 250'000;

int
runVerify()
{
    // Reduced-scale run of every workload on both models; all output
    // is deterministic (no wall-clock numbers), so CI byte-compares
    // this mode's stdout across DCS_BENCH_THREADS values.
    struct Line
    {
        const char *name;
        std::uint64_t legacy;
        std::uint64_t fast;
    };
    Line lines[5];

    {
        Digest l, f;
        singleShotPerSec<LegacyModel>(20'000, kSinglePending, &l);
        singleShotPerSec<FastModel>(20'000, kSinglePending, &f);
        lines[0] = {"single_shot", l.h, f.h};
    }
    {
        Digest l, f;
        pipelinePerSec<LegacyModel>(2'000, kPipeChunks, kPipePending, &l);
        pipelinePerSec<FastModel>(2'000, kPipeChunks, kPipePending, &f);
        lines[1] = {"ndp_pipeline", l.h, f.h};
    }
    {
        Digest l, f;
        churnPerSec<LegacyModel>(20'000, 50'000, kChurnPending, &l);
        churnPerSec<FastModel>(20'000, 50'000, kChurnPending, &f);
        lines[2] = {"churn_100k", l.h, f.h};
    }
    {
        Digest l, f;
        demuxLookupsPerSec<LegacyDemux>(20'000, 200'000, &l);
        demuxLookupsPerSec<host::FlowIndex>(20'000, 200'000, &f);
        lines[3] = {"flow_demux", l.h, f.h};
    }
    {
        Digest l, f;
        std::uint64_t lr = 0, fr = 0;
        overloadPerSec<LegacyModel>(30'000, kOverloadGap, kOverloadBound,
                                    &l, &lr);
        overloadPerSec<FastModel>(30'000, kOverloadGap, kOverloadBound,
                                  &f, &fr);
        if (lr != fr)
            fatal("overload reject count diverged: legacy %llu, "
                  "fastpath %llu",
                  (unsigned long long)lr, (unsigned long long)fr);
        std::printf("overload_429 rejects: %llu of 30000 offered\n",
                    (unsigned long long)lr);
        lines[4] = {"overload_429", l.h, f.h};
    }

    bool ok = true;
    std::printf("%-14s %18s %18s\n", "workload", "legacy_digest",
                "fastpath_digest");
    for (const Line &ln : lines) {
        std::printf("%-14s %018llx %018llx\n", ln.name,
                    (unsigned long long)ln.legacy,
                    (unsigned long long)ln.fast);
        ok = ok && ln.legacy == ln.fast;
    }
    if (!ok)
        fatal("behavior digest mismatch between legacy and fastpath "
              "models");
    std::printf("VERIFY_OK\n");
    return 0;
}

int
runAllocAudit()
{
    // The acceptance gate: at the 10^5-client point, the fast path
    // must complete requests with zero steady-state allocations.
    const double fast = churnAllocsPerRequest<FastModel>(
        kChurnClients, kAuditWarmup, kAuditMeasured, kChurnPending);
    const double legacy = churnAllocsPerRequest<LegacyModel>(
        kChurnClients, kAuditWarmup, kAuditMeasured, kChurnPending);
    std::printf("alloc audit (%u clients, %llu warmup + %llu measured "
                "requests)\n",
                kChurnClients, (unsigned long long)kAuditWarmup,
                (unsigned long long)kAuditMeasured);
    std::printf("%-10s %24.3f allocs/request\n", "legacy", legacy);
    std::printf("%-10s %24.3f allocs/request\n", "fastpath", fast);
    if (fast != 0.0)
        fatal("fast path allocated in steady state: %.6f per request",
              fast);
    std::printf("ALLOC_AUDIT_OK\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Report report(argc, argv, "control_path_bench", "perf");

    bool verify = false;
    bool audit = false;
    int w = 1;
    for (int r = 1; r < argc; ++r) {
        if (std::strcmp(argv[r], "--verify") == 0)
            verify = true;
        else if (std::strcmp(argv[r], "--alloc-audit") == 0)
            audit = true;
        else
            argv[w++] = argv[r];
    }
    argc = w;

    if (verify)
        return runVerify();
    if (audit)
        return runAllocAudit();

    struct Workload
    {
        const char *name;
        const char *unit;
        double legacy;
        double fast;
    };
    Workload workloads[] = {
        {"single_shot", "cmds/s", 0.0, 0.0},
        {"ndp_pipeline", "entries/s", 0.0, 0.0},
        {"churn_100k", "reqs/s", 0.0, 0.0},
        {"flow_demux", "lookups/s", 0.0, 0.0},
        {"overload_429", "decisions/s", 0.0, 0.0},
    };

    std::printf("control-plane model fast path (best of %d per point)\n",
                kReps);
    std::printf("  single_shot:  %llu 2-entry commands, %d in flight\n",
                (unsigned long long)kSingleCmds, kSinglePending);
    std::printf("  ndp_pipeline: %llu commands x %d chunks "
                "(SSD->NDP->NIC)\n",
                (unsigned long long)kPipeCmds, kPipeChunks);
    std::printf("  churn_100k:   %llu requests over %u clients\n",
                (unsigned long long)kChurnCmds, kChurnClients);
    std::printf("  flow_demux:   %llu lookups over %u flows\n",
                (unsigned long long)kDemuxLookups, kDemuxConns);
    std::printf("  overload_429: %llu arrivals, live bound %zu\n\n",
                (unsigned long long)kOverloadArrivals, kOverloadBound);

    workloads[0].legacy = bestOf(kReps, [] {
        return singleShotPerSec<LegacyModel>(kSingleCmds, kSinglePending,
                                             nullptr);
    });
    workloads[0].fast = bestOf(kReps, [] {
        return singleShotPerSec<FastModel>(kSingleCmds, kSinglePending,
                                           nullptr);
    });
    workloads[1].legacy = bestOf(kReps, [] {
        return pipelinePerSec<LegacyModel>(kPipeCmds, kPipeChunks,
                                           kPipePending, nullptr);
    });
    workloads[1].fast = bestOf(kReps, [] {
        return pipelinePerSec<FastModel>(kPipeCmds, kPipeChunks,
                                         kPipePending, nullptr);
    });
    workloads[2].legacy = bestOf(kReps, [] {
        return churnPerSec<LegacyModel>(kChurnClients, kChurnCmds,
                                        kChurnPending, nullptr);
    });
    workloads[2].fast = bestOf(kReps, [] {
        return churnPerSec<FastModel>(kChurnClients, kChurnCmds,
                                      kChurnPending, nullptr);
    });
    workloads[3].legacy = bestOf(kReps, [] {
        return demuxLookupsPerSec<LegacyDemux>(kDemuxConns,
                                               kDemuxLookups, nullptr);
    });
    workloads[3].fast = bestOf(kReps, [] {
        return demuxLookupsPerSec<host::FlowIndex>(
            kDemuxConns, kDemuxLookups, nullptr);
    });
    std::uint64_t rejects = 0;
    workloads[4].legacy = bestOf(kReps, [&rejects] {
        return overloadPerSec<LegacyModel>(kOverloadArrivals,
                                           kOverloadGap, kOverloadBound,
                                           nullptr, &rejects);
    });
    workloads[4].fast = bestOf(kReps, [&rejects] {
        return overloadPerSec<FastModel>(kOverloadArrivals, kOverloadGap,
                                         kOverloadBound, nullptr,
                                         &rejects);
    });

    std::printf("%-14s %12s %12s %9s\n", "workload", "legacy_Mops/s",
                "fast_Mops/s", "speedup");
    double logSum = 0.0;
    for (const Workload &wl : workloads) {
        const double s = wl.fast / wl.legacy;
        logSum += std::log(s);
        std::printf("%-14s %12.2f %12.2f %8.2fx\n", wl.name,
                    wl.legacy / 1e6, wl.fast / 1e6, s);
    }
    const double speedup =
        std::exp(logSum / double(std::size(workloads)));
    std::printf("%-14s %12s %12s %8.2fx (geomean)\n", "overall", "", "",
                speedup);

    // Steady-state allocation rate at the churn point, both models.
    const double fastAllocs = churnAllocsPerRequest<FastModel>(
        kChurnClients, kAuditWarmup, kAuditMeasured, kChurnPending);
    const double legacyAllocs = churnAllocsPerRequest<LegacyModel>(
        kChurnClients, kAuditWarmup, kAuditMeasured, kChurnPending);
    std::printf("\nsteady-state heap allocations per request "
                "(%u clients)\n",
                kChurnClients);
    std::printf("%-14s %12.3f\n", "legacy", legacyAllocs);
    std::printf("%-14s %12.3f\n", "fastpath", fastAllocs);
    if (fastAllocs != 0.0)
        fatal("fast path allocated in steady state: %.6f per request",
              fastAllocs);

    for (const Workload &wl : workloads) {
        const std::string n = wl.name;
        report.headline(n + "/legacy_ops_per_sec", wl.legacy, wl.unit);
        report.headline(n + "/fastpath_ops_per_sec", wl.fast, wl.unit);
        report.headline(n + "/speedup", wl.fast / wl.legacy, "x");
    }
    report.headline("speedup_control_path", speedup, "x", std::nan(""),
                    "geomean across single_shot/ndp_pipeline/churn_100k/"
                    "flow_demux/overload_429, slab+pool model vs "
                    "pre-change hash-map model; acceptance floor is 2x");
    report.headline("churn_100k/legacy_allocs_per_req", legacyAllocs,
                    "allocs");
    report.headline("churn_100k/fastpath_allocs_per_req", fastAllocs,
                    "allocs",
                    std::nan(""),
                    "steady-state heap allocations per completed "
                    "request at the 100k-client point; must be 0");
    report.headline("overload_429/rejects", double(rejects), "cmds");

    if (report.enabled()) {
        // One registry snapshot so the report carries the scoreboard's
        // own occupancy gauges alongside the wall-clock numbers.
        Rig<FastModel> r;
        r.targetCmds = 1'000;
        r.sb.setCommandDone([&r](std::uint32_t) {
            ++r.completed;
            if (r.launched < r.targetCmds)
                r.launchSingle(0);
        });
        for (int i = 0; i < 16; ++i)
            r.launchSingle(0);
        r.eq.run();
        report.captureStats("fastpath_sample", r.eq);
    }
    return report.finish();
}
