/**
 * @file
 * Transfer-size sweep (supplementary to Fig. 11): SSD->NIC latency
 * and the software share under each design from 4 KiB to 1 MiB, with
 * and without MD5 processing.
 *
 * Shows where each design's crossover lies: the software designs'
 * fixed per-operation control cost amortizes with size, while the
 * single-stream MD5 NDP unit (0.97 Gbps, Table III) grows linearly —
 * the trade the test suite pins in
 * OrderingTest.NdpStreamingTradeoffAtLargeSizes.
 */

#include <cstdio>
#include <string>

#include "bench/parallel_runner.hh"
#include "bench/report.hh"
#include "sim/logging.hh"
#include "workload/experiment.hh"

using namespace dcs;
using workload::Design;

namespace {

constexpr std::uint64_t kSizes[] = {4ull << 10, 16ull << 10,
                                    64ull << 10, 256ull << 10,
                                    1ull << 20};
constexpr Design kDesigns[] = {Design::SwOptimized, Design::SwP2p,
                               Design::DcsCtrl};
constexpr std::size_t kNumSizes = 5;
constexpr std::size_t kNumDesigns = 3;

struct Point
{
    workload::LatencyResult lat;
    std::string statsBlob;
};

void
sweep(ndp::Function fn, const char *title, const std::string &tag,
      bench::Report &report)
{
    // All 15 (size, design) points are independent testbeds: run them
    // as one parallel batch, then print/report in the serial order.
    const bench::ParallelRunner runner;
    auto points = runner.map<Point>(
        kNumSizes * kNumDesigns, [&](std::size_t i) {
            const std::uint64_t size = kSizes[i / kNumDesigns];
            const Design d = kDesigns[i % kNumDesigns];
            Point pt;
            std::function<void(workload::Testbed &)> inspect;
            // Snapshot one representative point per design: the
            // 64 KiB transfer (one HDC chunk).
            if (size == (64ull << 10) && report.enabled())
                inspect = [&pt](workload::Testbed &tb) {
                    pt.statsBlob = tb.eq().stats().dumpJsonString();
                };
            pt.lat = workload::measureSendLatency(d, fn, size, 6,
                                                  inspect);
            return pt;
        });

    std::printf("\n%s\n", title);
    std::printf("%10s |", "size");
    for (Design d : kDesigns)
        std::printf(" %10s_us %8s_sw", workload::designName(d), "");
    std::printf("\n");

    for (std::size_t si = 0; si < kNumSizes; ++si) {
        const std::uint64_t size = kSizes[si];
        std::printf("%7lluKiB |", (unsigned long long)(size >> 10));
        for (std::size_t di = 0; di < kNumDesigns; ++di) {
            const Design d = kDesigns[di];
            Point &pt = points[si * kNumDesigns + di];
            report.captureStatsBlob(
                tag + "/" + workload::designName(d) + "/64KiB",
                std::move(pt.statsBlob));
            std::printf(" %13.1f %11.1f", pt.lat.totalUs,
                        pt.lat.softwareUs);
            const std::string prefix =
                tag + "/" + workload::designName(d) + "/" +
                std::to_string(size >> 10) + "KiB";
            report.headline(prefix + "/total", pt.lat.totalUs, "us");
            report.headline(prefix + "/software", pt.lat.softwareUs,
                            "us");
        }
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::Report report(argc, argv, "micro_size_sweep",
                         "Fig. 11 (size sweep)");
    sweep(ndp::Function::None,
          "SSD->NIC total latency / software share vs size", "raw",
          report);
    sweep(ndp::Function::Md5,
          "SSD->MD5->NIC total latency / software share vs size", "md5",
          report);
    std::printf("\nsoftware share is near-constant per operation, so "
                "the software designs amortize with size;\nDCS-ctrl's "
                "software share stays ~14 us at every size.\n");
    return report.finish();
}
