/**
 * @file
 * Transfer-size sweep (supplementary to Fig. 11): SSD->NIC latency
 * and the software share under each design from 4 KiB to 1 MiB, with
 * and without MD5 processing.
 *
 * Shows where each design's crossover lies: the software designs'
 * fixed per-operation control cost amortizes with size, while the
 * single-stream MD5 NDP unit (0.97 Gbps, Table III) grows linearly —
 * the trade the test suite pins in
 * OrderingTest.NdpStreamingTradeoffAtLargeSizes.
 */

#include <cstdio>
#include <string>

#include "bench/report.hh"
#include "sim/logging.hh"
#include "workload/experiment.hh"

using namespace dcs;
using workload::Design;

namespace {

void
sweep(ndp::Function fn, const char *title, const std::string &tag,
      bench::Report &report)
{
    std::printf("\n%s\n", title);
    std::printf("%10s |", "size");
    for (Design d :
         {Design::SwOptimized, Design::SwP2p, Design::DcsCtrl})
        std::printf(" %10s_us %8s_sw", workload::designName(d), "");
    std::printf("\n");

    for (std::uint64_t size : {4ull << 10, 16ull << 10, 64ull << 10,
                               256ull << 10, 1ull << 20}) {
        std::printf("%7lluKiB |", (unsigned long long)(size >> 10));
        for (Design d :
             {Design::SwOptimized, Design::SwP2p, Design::DcsCtrl}) {
            // Snapshot one representative point per design: the
            // 64 KiB transfer (one HDC chunk).
            std::function<void(workload::Testbed &)> inspect;
            if (size == (64ull << 10))
                inspect = [&](workload::Testbed &tb) {
                    report.captureStats(
                        tag + "/" + workload::designName(d) + "/64KiB",
                        tb.eq());
                };
            const auto r =
                workload::measureSendLatency(d, fn, size, 6, inspect);
            std::printf(" %13.1f %11.1f", r.totalUs, r.softwareUs);
            const std::string prefix =
                tag + "/" + workload::designName(d) + "/" +
                std::to_string(size >> 10) + "KiB";
            report.headline(prefix + "/total", r.totalUs, "us");
            report.headline(prefix + "/software", r.softwareUs, "us");
        }
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::Report report(argc, argv, "micro_size_sweep",
                         "Fig. 11 (size sweep)");
    sweep(ndp::Function::None,
          "SSD->NIC total latency / software share vs size", "raw",
          report);
    sweep(ndp::Function::Md5,
          "SSD->MD5->NIC total latency / software share vs size", "md5",
          report);
    std::printf("\nsoftware share is near-constant per operation, so "
                "the software designs amortize with size;\nDCS-ctrl's "
                "software share stays ~14 us at every size.\n");
    return report.finish();
}
