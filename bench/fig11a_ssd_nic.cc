/**
 * @file
 * Figure 11a: latency breakdown of the SSD->NIC microbenchmark.
 *
 * Reads data from the NVMe SSD and sends it to the NIC under each
 * design at the paper's 4 KiB per-command transfer size. Note that
 * SSD->NIC cannot be peer-to-peer without an intermediate device
 * (neither device exposes its memory, §V-A), so sw-p2p degenerates to
 * the sw-opt data path here — exactly as in the paper.
 *
 * Paper reference: DCS-ctrl reduces the software-side latency of
 * software-based D2D operations by 42% (abstract / §V-B), and its
 * control-path components (request completion, device control) nearly
 * vanish, leaving only the small scoreboard overhead.
 */

#include <cstdio>
#include <string>

#include "bench/parallel_runner.hh"
#include "bench/report.hh"
#include "sim/logging.hh"
#include "workload/experiment.hh"

using namespace dcs;
using workload::Design;

namespace {

struct Point
{
    workload::LatencyResult lat;
    std::string statsBlob;
    trace::Dump traceDump;
};

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::Report report(argc, argv, "fig11a_ssd_nic", "Fig. 11a");

    const Design designs[] = {Design::SwOptimized, Design::SwP2p,
                              Design::DcsCtrl};
    // Each design runs in its own task on its own testbed; results
    // land in index-ordered slots and all printing/reporting happens
    // afterward on this thread, so output matches a serial run.
    const bench::ParallelRunner runner;
    auto points = runner.map<Point>(3, [&](std::size_t i) {
        Point pt;
        pt.lat = workload::measureSendLatency(
            designs[i], ndp::Function::None, 4096, 16,
            [&](workload::Testbed &tb) {
                if (report.enabled())
                    pt.statsBlob = tb.eq().stats().dumpJsonString();
                if (report.tracing())
                    pt.traceDump = tb.eq().tracer().snapshot(tb.eq().now());
            },
            [&](workload::Testbed &tb) {
                tb.eq().tracer().configure(report.traceConfig());
            });
        return pt;
    });

    std::vector<workload::LatencyResult> rows;
    for (std::size_t i = 0; i < points.size(); ++i) {
        report.captureStatsBlob(workload::designName(designs[i]),
                                std::move(points[i].statsBlob));
        report.captureTrace(workload::designName(designs[i]),
                            std::move(points[i].traceDump));
        rows.push_back(points[i].lat);
    }

    workload::printLatencyTable(
        "Fig. 11a — SSD->NIC latency breakdown (4 KiB commands, us)",
        rows);

    std::printf("\nFig. 2's boundary crossings, measured per operation:\n");
    for (const auto &r : rows)
        std::printf("  %-10s %4.1f host MMIO writes (SW->HW), %4.1f "
                    "MSIs (HW->SW)\n",
                    workload::designName(r.design), r.hostMmioPerOp,
                    r.msiPerOp);

    const auto &swp = rows[1];
    const auto &dcs = rows[2];
    const double reduction = 1.0 - dcs.softwareUs / swp.softwareUs;
    std::printf("\nsoftware-latency reduction vs sw-ctrl P2P: %.0f%% "
                "(paper: 42%%)\n",
                100.0 * reduction);
    std::printf("total-latency reduction vs sw-ctrl P2P:    %.0f%%\n",
                100.0 * (1.0 - dcs.totalUs / swp.totalUs));

    for (const auto &r : rows) {
        const std::string n = workload::designName(r.design);
        report.headline(n + "/total", r.totalUs, "us");
        report.headline(n + "/software", r.softwareUs, "us");
        report.headline(n + "/host_mmio_per_op", r.hostMmioPerOp, "writes");
        report.headline(n + "/msi_per_op", r.msiPerOp, "msis");
    }
    report.headline("software_latency_reduction_vs_sw_p2p",
                    100.0 * reduction, "%", 42.0,
                    "abstract / §V-B: 42% software-latency reduction");
    report.headline("total_latency_reduction_vs_sw_p2p",
                    100.0 * (1.0 - dcs.totalUs / swp.totalUs), "%");
    return report.finish();
}
