/**
 * @file
 * Figure 11a: latency breakdown of the SSD->NIC microbenchmark.
 *
 * Reads data from the NVMe SSD and sends it to the NIC under each
 * design at the paper's 4 KiB per-command transfer size. Note that
 * SSD->NIC cannot be peer-to-peer without an intermediate device
 * (neither device exposes its memory, §V-A), so sw-p2p degenerates to
 * the sw-opt data path here — exactly as in the paper.
 *
 * Paper reference: DCS-ctrl reduces the software-side latency of
 * software-based D2D operations by 42% (abstract / §V-B), and its
 * control-path components (request completion, device control) nearly
 * vanish, leaving only the small scoreboard overhead.
 */

#include <cstdio>

#include "sim/logging.hh"
#include "workload/experiment.hh"

using namespace dcs;
using workload::Design;

int
main()
{
    setVerbose(false);

    std::vector<workload::LatencyResult> rows;
    for (Design d :
         {Design::SwOptimized, Design::SwP2p, Design::DcsCtrl})
        rows.push_back(workload::measureSendLatency(
            d, ndp::Function::None, 4096, 16));

    workload::printLatencyTable(
        "Fig. 11a — SSD->NIC latency breakdown (4 KiB commands, us)",
        rows);

    std::printf("\nFig. 2's boundary crossings, measured per operation:\n");
    for (const auto &r : rows)
        std::printf("  %-10s %4.1f host MMIO writes (SW->HW), %4.1f "
                    "MSIs (HW->SW)\n",
                    workload::designName(r.design), r.hostMmioPerOp,
                    r.msiPerOp);

    const auto &swp = rows[1];
    const auto &dcs = rows[2];
    const double reduction = 1.0 - dcs.softwareUs / swp.softwareUs;
    std::printf("\nsoftware-latency reduction vs sw-ctrl P2P: %.0f%% "
                "(paper: 42%%)\n",
                100.0 * reduction);
    std::printf("total-latency reduction vs sw-ctrl P2P:    %.0f%%\n",
                100.0 * (1.0 - dcs.totalUs / swp.totalUs));
    return 0;
}
