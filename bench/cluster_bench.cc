/**
 * @file
 * Rack-scale cluster benchmark: an N-node ring of DCS-ctrl transfers
 * through the ToR switch, on the sharded simulation core.
 *
 * Workload: every node ships `--files` objects of `--kib` KiB to its
 * right-hand neighbour over its own TCP connections, with SHA-256
 * computed in flight by the HDC Engine on both ends; every node is
 * therefore simultaneously a sender, a receiver, and a switch
 * neighbour, and all N+1 shards stay busy.
 *
 * The default output prints *simulated* quantities only — per-node
 * completion times, goodput, the merged trace digest, and the
 * barrier-round counts — so it is byte-identical between the serial
 * (--serial, one shared queue) and sharded configurations at any
 * DCS_SIM_THREADS value. That invariance is what the CI TSan leg
 * byte-compares; see docs/PERFORMANCE.md §5.
 *
 * --speedup switches to the wall-clock experiment: the same workload
 * is run sharded at 1 thread and at --threads (default: one per
 * shard), and the ratio is reported. Wall-clock numbers are only
 * printed in this mode, keeping the default output deterministic.
 */
// dcslint: allow-file(ambient-time-randomness): host wall-clock timing is
// the measurement --speedup exists to take; it never feeds simulated state.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "baselines/dcs_path.hh"
#include "bench/report.hh"
#include "sim/rng.hh"
#include "sys/cluster.hh"

using namespace dcs;

namespace {

struct Options
{
    std::size_t nodes = 8;
    int files = 4;          //!< objects per ring edge
    std::size_t kib = 1024; //!< object size
    std::uint64_t wireUs = 2; //!< cable latency = lookahead window
    bool serial = false;
    unsigned threads = 0; //!< 0 = $DCS_SIM_THREADS (default mode)
    bool speedup = false;
    bool timeline = false; //!< per-node time series, merged
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** One transfer's bookkeeping; stable address while the sim runs. */
struct Slot
{
    std::vector<std::uint8_t> txDigest;
    std::vector<std::uint8_t> rxDigest;
    Tick rxDone = 0;
};

struct Outcome
{
    std::uint64_t digest = 0;
    std::uint64_t events = 0;
    Tick start = 0; //!< workload kick-off (after bring-up)
    Tick end = 0;
    std::uint64_t windows = 0;
    std::uint64_t meshMsgs = 0;
    std::vector<Tick> nodeDone; //!< last receive completion per node
    double wallSeconds = 0.0;
    stats::Timeline::Dump timeline; //!< merged (--timeline only)
};

Outcome
runRing(const Options &opt, bool sharded, unsigned threads)
{
    sys::ClusterParams p;
    p.nodes = opt.nodes;
    p.wireLatency = microseconds(opt.wireUs);
    p.sharded = sharded;
    p.threads = threads;
    sys::Cluster cl(p);
    cl.attachHasher();
    cl.bringUpDcs();

    const std::size_t n = cl.size();
    const std::size_t files = static_cast<std::size_t>(opt.files);
    const std::uint64_t bytes = opt.kib * 1024;

    // One connection per (edge, file): all transfers are concurrent.
    std::vector<sys::Cluster::ConnFds> conns(n * files);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t f = 0; f < files; ++f)
            conns[i * files + f] = cl.connect(i, (i + 1) % n);

    // Opt-in per-node time series (sim/timeline.hh). Sampling events
    // join the hashed stream, so --timeline changes the trace digest;
    // the determinism contract in this mode is that the merged dump
    // itself is byte-identical serial vs sharded at any thread count.
    std::vector<stats::Timeline> tls(opt.timeline ? n : 0);
    if (opt.timeline) {
        stats::Timeline::Params tp;
        tp.period = microseconds(100);
        tp.samples = 96;
        // Node clocks can differ slightly after bring-up (each shard
        // stops at its own last event). Start every sampler on the
        // same period-aligned tick past the latest of them so the
        // merged rows line up exactly.
        Tick base = cl.switchQueue().now();
        for (std::size_t i = 0; i < n; ++i)
            base = std::max(base, cl.nodeQueue(i).now());
        tp.start = (base / tp.period + 2) * tp.period;
        for (std::size_t i = 0; i < n; ++i) {
            stats::Timeline *tl = &tls[i];
            cl.onNode(i, [tl, tp](sys::Node &nd) {
                sys::Node *np = &nd;
                tl->addColumn("active_cmds", [np] {
                    return static_cast<double>(
                        np->engine().activeCommands());
                });
                tl->addColumn("cpl_ring", [np] {
                    return static_cast<double>(
                        np->engine().cplRingOccupancy());
                });
                tl->arm(np->host().eventq(), tp);
            });
        }
    }

    // Receivers arm first (the DCS recipe), then senders ship.
    std::vector<Slot> slots(n * files);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t dst = (i + 1) % n;
        for (std::size_t f = 0; f < files; ++f) {
            const std::size_t s = i * files + f;
            const int conn_fd = conns[s].dst;
            Slot *slot = &slots[s];
            cl.onNode(dst, [conn_fd, slot, bytes, i, f](sys::Node &nd) {
                const int fd = nd.fs().createEmpty(
                    "in_e" + std::to_string(i) + "_f" +
                        std::to_string(f),
                    bytes);
                EventQueue *eq = &nd.host().eventq();
                baselines::DcsCtrlPath(nd).receiveToFile(
                    conn_fd, fd, 0, bytes, ndp::Function::Sha256, {},
                    nullptr,
                    [slot, eq](const baselines::PathResult &r) {
                        slot->rxDigest = r.digest;
                        slot->rxDone = eq->now();
                    });
            });
        }
    }
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t f = 0; f < files; ++f) {
            const std::size_t s = i * files + f;
            const int conn_fd = conns[s].src;
            Slot *slot = &slots[s];
            cl.onNode(i, [conn_fd, slot, bytes, f](sys::Node &nd) {
                Rng rng(1000 * f + 7);
                std::vector<std::uint8_t> content(bytes);
                rng.fill(content.data(), content.size());
                const int fd = nd.fs().create(
                    "out_f" + std::to_string(f), content);
                baselines::DcsCtrlPath(nd).sendFile(
                    fd, conn_fd, 0, bytes, ndp::Function::Sha256, {},
                    nullptr, [slot](const baselines::PathResult &r) {
                        slot->txDigest = r.digest;
                    });
            });
        }
    }

    Outcome out;
    out.start = cl.switchQueue().now();
    const auto t0 = std::chrono::steady_clock::now();
    out.end = cl.run();
    out.wallSeconds = secondsSince(t0);

    for (std::size_t s = 0; s < slots.size(); ++s) {
        if (slots[s].txDigest.empty() || slots[s].rxDigest.empty())
            fatal("transfer %zu never completed", s);
        if (slots[s].txDigest != slots[s].rxDigest)
            fatal("transfer %zu: sender/receiver SHA-256 mismatch", s);
    }
    out.nodeDone.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t dst = (i + 1) % n;
        for (std::size_t f = 0; f < files; ++f)
            out.nodeDone[dst] = std::max(
                out.nodeDone[dst], slots[i * files + f].rxDone);
    }
    out.digest = cl.digest();
    out.events = cl.traceEvents();
    out.windows = cl.windows();
    out.meshMsgs = cl.meshMessages();
    if (opt.timeline) {
        std::vector<stats::Timeline::Dump> parts;
        parts.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            parts.push_back(tls[i].dump("node" + std::to_string(i)));
        out.timeline = stats::Timeline::merge("cluster", parts);
    }
    return out;
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--nodes N] [--files F] [--kib K] [--wire-us L]\n"
        "          [--serial] [--threads T] [--speedup] [--timeline]\n"
        "          [--json <path>]\n",
        argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Report report(argc, argv, "cluster_bench", "rack");

    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--nodes")
            opt.nodes = std::strtoull(next(), nullptr, 10);
        else if (arg == "--files")
            opt.files = std::atoi(next());
        else if (arg == "--kib")
            opt.kib = std::strtoull(next(), nullptr, 10);
        else if (arg == "--wire-us")
            opt.wireUs = std::strtoull(next(), nullptr, 10);
        else if (arg == "--serial")
            opt.serial = true;
        else if (arg == "--threads")
            opt.threads = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--speedup")
            opt.speedup = true;
        else if (arg == "--timeline")
            opt.timeline = true;
        else
            usage(argv[0]);
    }
    if (opt.nodes < 2 || opt.files < 1 || opt.kib < 1 ||
        opt.wireUs < 1)
        usage(argv[0]);

    const double totalMib = double(opt.nodes) * opt.files *
                            double(opt.kib) / 1024.0;
    std::printf("cluster_bench: %zu-node ring through one ToR switch\n",
                opt.nodes);
    std::printf("workload: %d x %zu KiB per edge, sha256 in flight, "
                "%.2f MiB total, %llu us wires\n",
                opt.files, opt.kib, totalMib,
                (unsigned long long)opt.wireUs);

    if (opt.speedup) {
        // Wall-clock experiment: same sharded workload, 1 thread vs T.
        const unsigned wide =
            opt.threads != 0 ? opt.threads
                             : static_cast<unsigned>(opt.nodes + 1);
        const Outcome one = runRing(opt, /*sharded=*/true, 1);
        const Outcome many = runRing(opt, /*sharded=*/true, wide);
        if (one.digest != many.digest || one.end != many.end)
            fatal("speedup runs diverged: digest %016llx vs %016llx",
                  (unsigned long long)one.digest,
                  (unsigned long long)many.digest);
        const double speedup = one.wallSeconds / many.wallSeconds;
        std::printf("\n%-12s %10s %12s\n", "threads", "wall_s",
                    "events/s");
        std::printf("%-12u %10.3f %12.0f\n", 1u, one.wallSeconds,
                    double(one.events) / one.wallSeconds);
        std::printf("%-12u %10.3f %12.0f\n", wide, many.wallSeconds,
                    double(many.events) / many.wallSeconds);
        std::printf("speedup: %.2fx at %u threads "
                    "(%llu windows, %llu mesh msgs)\n",
                    speedup, wide, (unsigned long long)many.windows,
                    (unsigned long long)many.meshMsgs);
        if (std::thread::hardware_concurrency() <= 1)
            std::printf("note: single-core host — this measures "
                        "synchronization overhead, not parallel "
                        "speedup; expect >1x only with real cores\n");
        report.headline("speedup_wall_clock", speedup, "x",
                        std::nan(""),
                        "sharded run, 1 thread vs one per shard; "
                        "acceptance floor is 3x at 8 nodes");
        report.headline("threads", wide, "count");
        report.headline("trace_events", double(one.events), "count");
        return report.finish();
    }

    Outcome out = runRing(opt, /*sharded=*/!opt.serial, opt.threads);

    std::printf("\n%-8s %12s\n", "node", "done_at_us");
    for (std::size_t i = 0; i < out.nodeDone.size(); ++i)
        std::printf("node%-4zu %12.2f\n", i,
                    double(out.nodeDone[i] - out.start) / 1e6);

    // With --timeline the very last events are sampler ticks, not
    // workload; elapsed/goodput then end at the last node completion.
    Tick endTick = out.end;
    if (opt.timeline) {
        endTick = out.start;
        for (const Tick t : out.nodeDone)
            endTick = std::max(endTick, t);
    }

    const double simSec = toSeconds(endTick - out.start);
    const double goodputGbps =
        totalMib * 1024.0 * 1024.0 * 8.0 / simSec / 1e9;
    std::printf("\nsim elapsed: %.2f us   goodput: %.2f Gb/s\n",
                double(endTick - out.start) / 1e6, goodputGbps);
    std::printf("trace: digest=%016llx events=%llu end=%llu\n",
                (unsigned long long)out.digest,
                (unsigned long long)out.events,
                (unsigned long long)out.end);
    std::printf("sync: windows=%llu mesh_msgs=%llu\n",
                (unsigned long long)out.windows,
                (unsigned long long)out.meshMsgs);

    report.headline("goodput_gbps", goodputGbps, "Gb/s");
    report.headline("sim_elapsed_us",
                    double(endTick - out.start) / 1e6, "us");
    report.headline("trace_events", double(out.events), "count");
    report.headline("sync_windows", double(out.windows), "count");
    report.headline("mesh_messages", double(out.meshMsgs), "count");
    if (opt.timeline)
        report.captureTimeline(std::move(out.timeline));
    return report.finish();
}
