/**
 * @file
 * Figure 11b: latency breakdown of SSD->Processing->NIC.
 *
 * The payload is MD5-checksummed in flight: the baselines stage it
 * through the GPU (sw-opt copies CPU<->GPU; sw-p2p uses P2P DMA into
 * GPU memory), DCS-ctrl uses an NDP unit in the HDC Engine.
 *
 * Paper reference: software-controlled P2P shortens the CPU<->GPU
 * copies but keeps the long software control path; DCS-ctrl removes
 * both, reducing software latency by 72% vs sw-ctrl P2P (§V-B).
 */

#include <cstdio>
#include <string>

#include "bench/parallel_runner.hh"
#include "bench/report.hh"
#include "sim/logging.hh"
#include "workload/experiment.hh"

using namespace dcs;
using workload::Design;

namespace {

struct Point
{
    workload::LatencyResult lat;
    std::string statsBlob;
};

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::Report report(argc, argv, "fig11b_ssd_proc_nic", "Fig. 11b");

    const Design designs[] = {Design::SwOptimized, Design::SwP2p,
                              Design::DcsCtrl};
    // One isolated testbed per design, run concurrently; stats blobs
    // are captured inside each task and handed to the report in index
    // order so --json output is byte-identical to a serial run.
    const bench::ParallelRunner runner;
    auto points = runner.map<Point>(3, [&](std::size_t i) {
        Point pt;
        pt.lat = workload::measureSendLatency(
            designs[i], ndp::Function::Md5, 4096, 16,
            [&](workload::Testbed &tb) {
                if (report.enabled())
                    pt.statsBlob = tb.eq().stats().dumpJsonString();
            });
        return pt;
    });

    std::vector<workload::LatencyResult> rows;
    for (std::size_t i = 0; i < points.size(); ++i) {
        report.captureStatsBlob(workload::designName(designs[i]),
                                std::move(points[i].statsBlob));
        rows.push_back(points[i].lat);
    }

    workload::printLatencyTable(
        "Fig. 11b — SSD->MD5->NIC latency breakdown (4 KiB commands, "
        "us)",
        rows);

    const auto &swo = rows[0];
    const auto &swp = rows[1];
    const auto &dcs = rows[2];
    const double sw_reduction = 1.0 - dcs.softwareUs / swp.softwareUs;
    std::printf("\nsoftware-latency reduction vs sw-ctrl P2P: %.0f%% "
                "(paper: 72%%)\n",
                100.0 * sw_reduction);
    std::printf("sw-p2p total vs sw-opt total:              %.2fx "
                "(P2P removes the staging copies)\n",
                swp.totalUs / swo.totalUs);
    std::printf("dcs-ctrl total vs sw-p2p total:            %.2fx\n",
                dcs.totalUs / swp.totalUs);

    for (const auto &r : rows) {
        const std::string n = workload::designName(r.design);
        report.headline(n + "/total", r.totalUs, "us");
        report.headline(n + "/software", r.softwareUs, "us");
    }
    report.headline("software_latency_reduction_vs_sw_p2p",
                    100.0 * sw_reduction, "%", 72.0,
                    "§V-B: 72% software-latency reduction with NDP");
    report.headline("sw_p2p_total_vs_sw_opt", swp.totalUs / swo.totalUs,
                    "x");
    report.headline("dcs_total_vs_sw_p2p", dcs.totalUs / swp.totalUs,
                    "x");
    return report.finish();
}
