/**
 * @file
 * Figure 3: software overheads of multi-device communication.
 *
 * The motivating microbenchmark (SSD->GPU(hash)->NIC) is run under
 * each scheme and its software-side latency is decomposed into the
 * paper's three components — user, kernel, device driver — plus (b)
 * the normalized CPU utilization of the same operation.
 *
 * "Device integration" (QuickSAN/BlueDBM-style) is modelled as the
 * hardware-control path with a single integrated controller: it
 * shares DCS-ctrl's thin software profile (a submit ioctl + one
 * interrupt); the difference between the two schemes is flexibility,
 * not this datapath (paper Table I).
 *
 * Paper reference (qualitative): both software schemes spend most of
 * their software latency in kernel + device-driver work; hardware
 * control removes nearly all of it. P2P reduces data-copy work but
 * not control work.
 */

#include <cstdio>
#include <string>

#include "bench/report.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workload/experiment.hh"

using namespace dcs;
using workload::Design;

namespace {

struct Fig3Row
{
    std::string label;
    double userUs;
    double kernelUs;
    double driverUs;
    double cpuPerMb; //!< CPU busy-us per MiB moved (for (b))
};

/** Map latency components onto Fig. 3a's user/kernel/driver split. */
Fig3Row
splitComponents(const std::string &label,
                const workload::LatencyResult &r, double cpu_per_mb)
{
    using host::LatComp;
    Fig3Row row;
    row.label = label;
    // User: application-side staging copies.
    row.userUs = r.componentsUs.get(LatComp::DataCopy);
    // Kernel: VFS/network/protocol work + GPU staging management.
    row.kernelUs = r.componentsUs.get(LatComp::FileSystem) +
                   r.componentsUs.get(LatComp::NetworkStack) +
                   r.componentsUs.get(LatComp::GpuCopy);
    // Device driver: submit/complete paths + accelerator control.
    row.driverUs = r.componentsUs.get(LatComp::DeviceControl) +
                   r.componentsUs.get(LatComp::RequestCompletion) +
                   r.componentsUs.get(LatComp::GpuControl);
    row.cpuPerMb = cpu_per_mb;
    return row;
}

/** CPU busy time per MiB for repeated hashed sends. */
double
measureCpuPerMb(Design d, bench::Report &report)
{
    workload::Testbed tb(d);
    auto [ca, cb] = tb.connect();
    cb->onPayload = [](std::uint32_t, BufChain) {};

    const std::uint64_t size = 256 * 1024;
    const int iters = 12;
    Rng rng(5);
    std::vector<int> fds;
    for (int i = 0; i < iters; ++i) {
        std::vector<std::uint8_t> content(size);
        rng.fill(content.data(), size);
        fds.push_back(
            tb.nodeA().fs().create("o" + std::to_string(i), content));
    }
    tb.nodeA().host().cpu().beginWindow();
    int done = 0;
    for (int i = 0; i < iters; ++i)
        tb.pathA().sendFile(fds[static_cast<std::size_t>(i)], ca->fd, 0,
                            size, ndp::Function::Md5, {}, nullptr,
                            [&](const baselines::PathResult &) {
                                ++done;
                            });
    tb.eq().run();
    if (done != iters)
        fatal("fig03: runs did not complete");
    const double busy_us = tb.nodeA().host().cpu().busy().total() / 1e6;
    const double mib = double(size) * iters / (1 << 20);
    report.captureStats(std::string("cpu/") + workload::designName(d),
                        tb.eq());
    return busy_us / mib;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::Report report(argc, argv, "fig03_sw_overhead", "Fig. 3");

    std::vector<Fig3Row> rows;
    for (auto [d, label] :
         {std::pair{Design::SwOptimized, "sw-opt"},
          std::pair{Design::SwP2p, "sw-ctrl-p2p"}}) {
        const auto r = workload::measureSendLatency(
            d, ndp::Function::Md5, 4096, 16);
        rows.push_back(
            splitComponents(label, r, measureCpuPerMb(d, report)));
    }
    {
        const auto r = workload::measureSendLatency(
            Design::DcsCtrl, ndp::Function::Md5, 4096, 16);
        const double cpu = measureCpuPerMb(Design::DcsCtrl, report);
        rows.push_back(splitComponents("device-integr.", r, cpu));
        rows.push_back(splitComponents("dcs-ctrl", r, cpu));
    }

    std::printf("Fig. 3a — software-side latency of SSD->hash->NIC "
                "(4 KiB, us)\n");
    std::printf("%-14s %9s %9s %9s %9s\n", "scheme", "user", "kernel",
                "driver", "total_sw");
    for (const auto &r : rows)
        std::printf("%-14s %9.1f %9.1f %9.1f %9.1f\n", r.label.c_str(),
                    r.userUs, r.kernelUs, r.driverUs,
                    r.userUs + r.kernelUs + r.driverUs);

    std::printf("\nFig. 3b — normalized CPU utilization (sw-opt = 1.0)\n");
    const double base = rows[0].cpuPerMb;
    for (const auto &r : rows)
        std::printf("%-14s %9.2f\n", r.label.c_str(), r.cpuPerMb / base);

    std::printf("\npaper shape: SW schemes dominated by kernel+driver "
                "work; P2P trims copies only;\nhardware-based control "
                "(integration / DCS-ctrl) removes nearly all software "
                "overhead.\n");

    for (const auto &r : rows) {
        report.headline(r.label + "/total_sw",
                        r.userUs + r.kernelUs + r.driverUs, "us");
        report.headline(r.label + "/kernel", r.kernelUs, "us");
        report.headline(r.label + "/driver", r.driverUs, "us");
        report.headline(r.label + "/cpu_normalized", r.cpuPerMb / base,
                        "x sw-opt",
                        std::nan(""),
                        "Fig. 3b — normalized CPU utilization");
    }
    return report.finish();
}
