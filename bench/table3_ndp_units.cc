/**
 * @file
 * Table III: NDP processing units.
 *
 * Two parts:
 *  1. The paper's synthesis figures (Virtex-7 LUT/FF shares, maximum
 *     clock, per-unit throughput), reproduced from the resource model
 *     that drives the NDP timing.
 *  2. google-benchmark throughput of this repository's *functional*
 *     implementations of the same algorithms — validating that the
 *     relative ordering (AES/CRC/GZIP fast, hashes slow) matches the
 *     hardware table's.
 */

#include <benchmark/benchmark.h>
#include <cstdio>
#include <string>

#include "bench/report.hh"
#include "hdc/timing.hh"
#include "ndp/aes256.hh"
#include "ndp/deflate.hh"
#include "ndp/hash.hh"
#include "ndp/transform.hh"
#include "sim/rng.hh"

using namespace dcs;

namespace {

std::vector<std::uint8_t>
payload(std::size_t n = 1 << 20)
{
    Rng rng(7);
    std::vector<std::uint8_t> v(n);
    rng.fill(v.data(), n);
    return v;
}

void
BM_Hash(benchmark::State &state, const char *algo)
{
    const auto data = payload();
    auto h = ndp::makeHash(algo);
    for (auto _ : state) {
        h->reset();
        h->update(data);
        benchmark::DoNotOptimize(h->finish());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * data.size()));
}

void
BM_Aes256Ctr(benchmark::State &state)
{
    const auto data = payload();
    std::vector<std::uint8_t> key(32, 0x42);
    for (auto _ : state) {
        ndp::Aes256Ctr ctr(key, 7);
        benchmark::DoNotOptimize(ctr.transform(data));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * data.size()));
}

void
BM_GzipCompress(benchmark::State &state)
{
    // Text-like compressible payload (the storage-workload case).
    std::vector<std::uint8_t> data(1 << 20);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(
            "all work and no play makes jack a dull boy "[i % 43]);
    for (auto _ : state)
        benchmark::DoNotOptimize(ndp::gzipCompress(data));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * data.size()));
}

void
printStaticTable()
{
    std::printf("Table III — NDP units on Virtex-7 (paper synthesis "
                "figures, reproduced by the resource model)\n");
    std::printf("%-8s %8s %8s %10s %14s %10s\n", "unit", "LUT%%",
                "REG%%", "max clock", "Gbps per unit",
                "units@10G");
    for (auto fn : {ndp::Function::Md5, ndp::Function::Sha1,
                    ndp::Function::Sha256, ndp::Function::Aes256,
                    ndp::Function::Crc32, ndp::Function::Gzip}) {
        const auto &s = hdc::ndpSpec(fn);
        std::printf("%-8s %8.2f %8.2f %7.0fMHz %14.2f %10d\n",
                    ndp::functionName(fn).c_str(), s.lutPct, s.regPct,
                    s.maxClockMhz, s.perUnitGbps, hdc::ndpUnitsFor(fn));
    }
    std::printf("\npaper row check: MD5 3.0%%/0.69%%/130MHz/0.97Gbps, "
                "AES256 3.52%%/0.99%%/>250MHz/40.9Gbps,\n"
                "CRC32 0.03%%/0.01%%/>250MHz/10Gbps, GZIP "
                "5.36%%/2.09%%/178MHz/100Gbps\n\n");
    std::printf("functional software implementations "
                "(google-benchmark):\n");
}

} // namespace

BENCHMARK_CAPTURE(BM_Hash, md5, "md5");
BENCHMARK_CAPTURE(BM_Hash, sha1, "sha1");
BENCHMARK_CAPTURE(BM_Hash, sha256, "sha256");
BENCHMARK_CAPTURE(BM_Hash, crc32, "crc32");
BENCHMARK(BM_Aes256Ctr);
BENCHMARK(BM_GzipCompress);

int
main(int argc, char **argv)
{
    // Strips --json before google-benchmark sees (and rejects) it.
    bench::Report report(argc, argv, "table3_ndp_units", "Table III");
    printStaticTable();

    // Paper Table III per-unit throughputs for the timing model.
    const struct
    {
        ndp::Function fn;
        double paperGbps;
    } paper_rows[] = {
        {ndp::Function::Md5, 0.97},    {ndp::Function::Sha1, 1.10},
        {ndp::Function::Sha256, 0.80}, {ndp::Function::Aes256, 40.9},
        {ndp::Function::Crc32, 10.0},  {ndp::Function::Gzip, 100.0},
    };
    for (const auto &row : paper_rows) {
        const auto &s = hdc::ndpSpec(row.fn);
        const std::string n = ndp::functionName(row.fn);
        report.headline(n + "/per_unit_gbps", s.perUnitGbps, "Gbps",
                        row.paperGbps, "Table III synthesis figure");
        report.headline(n + "/units_at_10g",
                        hdc::ndpUnitsFor(row.fn), "units");
    }

    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return report.finish();
}
