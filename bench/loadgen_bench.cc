/**
 * @file
 * Control-path batching under production load: latency-vs-offered-load
 * knee curves from the open-loop generator.
 *
 * An open-loop client population (10^5 simulated clients at the top
 * points) drives each design past saturation. Below the knee every
 * design serves the offered rate; past it the bounded client backlog
 * drops requests and — on DCS-ctrl — engine admission control sheds
 * load with 429s instead of letting queues grow without bound. The
 * DCS design runs twice, with control-path batching (doorbell write
 * batching + MSI coalescing) on and off; the top-load pair yields the
 * doorbells-per-request and MSIs-per-request ablation headlines.
 *
 * Scale knob: DCS_LOADGEN_CLIENTS overrides the per-point client
 * population (CI default tops out at 100k clients).
 */

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/parallel_runner.hh"
#include "bench/report.hh"
#include "sim/attribution.hh"
#include "sim/logging.hh"
#include "workload/experiment.hh"
#include "workload/loadgen.hh"

using namespace dcs;
using workload::Design;

namespace {

struct Cfg
{
    Design design{};
    std::string label;   //!< curve name ("dcs-ctrl", "dcs-ctrl/nobatch")
    double offeredRps = 0;
    bool batch = false;  //!< doorbell batching + MSI coalescing
    bool bursty = false; //!< on/off arrivals instead of Poisson
    std::uint64_t clients = 0;
    bool capture = false; //!< snapshot the stats registry
};

struct Row
{
    Cfg cfg;
    workload::LoadGenStats stats;
    // Whole-run control-path counters on the server node.
    std::uint64_t doorbells = 0; //!< actual doorbell MMIO writes
    std::uint64_t msis = 0;      //!< completion interrupts
    std::uint64_t served = 0;    //!< commands the server processed
    // Latency attribution (sim/attribution.hh): per-stage p999/mean
    // over the same completions as stats.latencyUs.
    std::array<double, trace::kNumStages> stageP999{};
    std::array<double, trace::kNumStages> stageMeanUs{};
    double e2eP999 = 0.0;
    double e2eMeanUs = 0.0;
    std::uint64_t attributed = 0;
    stats::Timeline::Dump timeline;
    trace::Dump traceDump;
    std::string statsBlob;
};

// Batching knobs for the "on" configurations: ring at most once per
// 8 updates, sweep stragglers after a holdoff long enough that
// threshold flushes dominate at saturation.
constexpr std::uint32_t kBatch = 8;
constexpr Tick kDbHoldoff = microseconds(50);
constexpr Tick kMsiHoldoff = microseconds(50);

/** Deterministic per-point name for timeline/trace captures. */
std::string
pointName(const Cfg &cfg)
{
    char buf[96];
    std::snprintf(buf, sizeof buf, "%s@%.0f", cfg.label.c_str(),
                  cfg.offeredRps);
    return buf;
}

Row
runPoint(const Cfg &cfg, const trace::Config &tcfg)
{
    sys::NodeParams pa;
    if (cfg.design == Design::DcsCtrl) {
        // Admission control: bound concurrent commands and scoreboard
        // entries; overload completes as 429 instead of queueing.
        pa.hdc.maxActiveCmds = 40;
        pa.hdc.maxLiveEntries = 512;
        if (cfg.batch) {
            pa.hdc.doorbellBatch = kBatch;
            pa.hdc.doorbellHoldoff = kDbHoldoff;
            pa.hdc.msiCoalesce = kBatch;
            pa.hdc.msiHoldoff = kMsiHoldoff;
        }
    } else if (cfg.batch) {
        pa.ssd.msiCoalesce = kBatch;
        pa.ssd.msiHoldoff = kMsiHoldoff;
    }

    workload::Testbed tb(cfg.design, false, pa);
    // Attribution is a pure observer: same event stream, same digest.
    tb.eq().attribution().enable(tb.eq().stats());
    if (tcfg.enabled && cfg.capture)
        tb.eq().tracer().configure(tcfg);
    if (cfg.design == Design::DcsCtrl) {
        tb.nodeA().hdcDriver().setRejectOnFull(true);
        if (cfg.batch)
            tb.nodeA().hdcDriver().setDoorbellBatch(kBatch, kDbHoldoff);
    } else if (cfg.batch) {
        tb.nodeA().nvmeDriver().setDoorbellBatch(kBatch, kDbHoldoff);
        tb.nodeA().nicDriver().setDoorbellBatch(kBatch, kDbHoldoff);
    }

    workload::LoadGenParams p;
    p.clients = cfg.clients;
    p.offeredRps = cfg.offeredRps;
    p.bursty = cfg.bursty;
    p.requestBytes = 16 * 1024;
    p.connections = 48;
    p.maxBacklog = 256;
    p.requestsPerConn = 64; // keep-alive with churn
    p.rejectBackoff = microseconds(100);
    p.slo = microseconds(1000);
    p.warmup = milliseconds(4);
    p.measure = milliseconds(20);

    workload::LoadGen gen(tb.eq(), tb.nodeA(), tb.nodeB(), tb.pathA(), p);

    // Time-series telemetry: sample the generator's gauges every
    // 500 us across warmup + measure + drain. All samples are
    // scheduled up front (sim/timeline.hh) so the series is identical
    // at any thread count.
    stats::Timeline tl;
    gen.exportTimeline(tl);
    stats::Timeline::Params tp;
    tp.period = microseconds(500);
    tp.samples = 56; // 28 ms: warmup (4) + measure (20) + drain slack

    Row row;
    row.cfg = cfg;
    bool fin = false;
    tl.arm(tb.eq(), tp);
    gen.run([&](const workload::LoadGenStats &s) {
        row.stats = s;
        fin = true;
    });
    tb.eq().run();
    if (!fin)
        fatal("loadgen_bench: %s @%.0f rps did not drain",
              cfg.label.c_str(), cfg.offeredRps);

    if (cfg.design == Design::DcsCtrl) {
        row.doorbells = tb.nodeA().hdcDriver().doorbellWrites() +
                        tb.nodeA().engine().doorbellWrites();
        row.msis = tb.nodeA().engine().interruptsRaised();
        // Per-request denominators use successfully served commands;
        // rejected commands' doorbells still count in the numerator,
        // so the batching ratio is conservative.
        row.served = tb.nodeA().hdcDriver().commandsSubmitted() -
                     tb.nodeA().engine().commandsRejected();
    } else {
        row.doorbells = tb.nodeA().nvmeDriver().doorbellWrites() +
                        tb.nodeA().nicDriver().doorbellWrites();
        row.msis = tb.nodeA().ssd().msisRaised();
        row.served = tb.nodeA().ssd().commandsCompleted();
    }
    const auto &attr = tb.eq().attribution();
    for (std::size_t i = 0; i < trace::kNumStages; ++i) {
        const auto &d = attr.stage(static_cast<trace::Stage>(i));
        row.stageP999[i] = d.quantile(0.999);
        row.stageMeanUs[i] = d.mean();
    }
    row.e2eP999 = attr.endToEnd().quantile(0.999);
    row.e2eMeanUs = attr.endToEnd().mean();
    row.attributed = attr.finalized();
    row.timeline = tl.dump(pointName(cfg));
    // Only the stats-captured point keeps its trace: one process is
    // what the attribution cross-check needs, and a full-sweep dump
    // would be tens of processes of mostly-dropped rings.
    if (tcfg.enabled && cfg.capture)
        row.traceDump = tb.eq().tracer().snapshot(tb.eq().now());
    if (cfg.capture)
        row.statsBlob = tb.eq().stats().dumpJsonString();
    return row;
}

std::uint64_t
clientsFor(double rps)
{
    if (const char *env = std::getenv("DCS_LOADGEN_CLIENTS")) {
        const long long n = std::atoll(env);
        if (n >= 1)
            return static_cast<std::uint64_t>(n);
    }
    const auto r = static_cast<std::uint64_t>(rps);
    return std::min<std::uint64_t>(100'000,
                                   std::max<std::uint64_t>(10'000, r));
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    bench::Report report(argc, argv, "loadgen_bench",
                         "control-path knee");

    const double ladder[] = {20'000, 60'000, 160'000, 320'000};
    const double top = ladder[3];

    std::vector<Cfg> cfgs;
    auto add_curve = [&](Design d, const std::string &label, bool batch,
                         bool bursty) {
        for (const double rps : ladder)
            cfgs.push_back(Cfg{d, label, rps, batch, bursty,
                               clientsFor(rps),
                               /*capture=*/rps == top &&
                                   label == "dcs-ctrl"});
    };
    add_curve(Design::DcsCtrl, "dcs-ctrl", true, false);
    add_curve(Design::DcsCtrl, "dcs-ctrl/nobatch", false, false);
    add_curve(Design::SwOptimized, "sw-opt", false, false);
    add_curve(Design::SwP2p, "sw-p2p", false, false);
    // Bursty (on/off) arrivals: same mean rate, concentrated into ON
    // phases — stresses the batching windows and admission control.
    cfgs.push_back(Cfg{Design::DcsCtrl, "dcs-ctrl/bursty", 60'000, true,
                       true, clientsFor(60'000), false});
    cfgs.push_back(Cfg{Design::DcsCtrl, "dcs-ctrl/bursty", 160'000, true,
                       true, clientsFor(160'000), false});
    // Host-driver batching on the software baseline (NVMe SQ + NIC
    // doorbells, SSD-side MSI coalescing).
    cfgs.push_back(Cfg{Design::SwOptimized, "sw-opt/batch", top, true,
                       false, clientsFor(top), false});

    const bench::ParallelRunner runner;
    const trace::Config tcfg = report.traceConfig();
    auto rows = runner.map<Row>(cfgs.size(), [&](std::size_t i) {
        return runPoint(cfgs[i], tcfg);
    });

    std::printf("Control-path batching under open-loop load "
                "(16 KiB GETs, %d-conn keep-alive pool)\n\n",
                48);
    std::printf("%-18s %9s %9s %8s %8s %8s %7s %7s\n", "design",
                "offered", "goodput", "p50us", "p99us", "p999us",
                "drop", "rej");
    for (const auto &r : rows) {
        std::printf("%-18s %9.0f %9.0f %8.0f %8.0f %8.0f %7llu %7llu\n",
                    r.cfg.label.c_str(), r.cfg.offeredRps,
                    r.stats.goodputRps, r.stats.latencyUs.quantile(0.5),
                    r.stats.latencyUs.quantile(0.99),
                    r.stats.latencyUs.quantile(0.999),
                    (unsigned long long)r.stats.droppedClient,
                    (unsigned long long)r.stats.rejectedServer);
        std::vector<std::pair<std::string, double>> fields{
            {"goodput_rps", r.stats.goodputRps},
            {"goodput_gbps", r.stats.goodputGbps},
            {"p50_us", r.stats.latencyUs.quantile(0.5)},
            {"p99_us", r.stats.latencyUs.quantile(0.99)},
            {"p999_us", r.stats.latencyUs.quantile(0.999)},
            {"dropped", static_cast<double>(r.stats.droppedClient)},
            {"rejected", static_cast<double>(r.stats.rejectedServer)},
            {"slo_violations",
             static_cast<double>(r.stats.sloViolations)},
            {"client_drop_rate", r.stats.clientDropRate},
            {"reject_429_rate", r.stats.rejectRate},
            {"slo_violation_rate", r.stats.sloViolationRate},
            {"churns", static_cast<double>(r.stats.churns)},
            {"attr_e2e_p999_us", r.e2eP999}};
        for (std::size_t i = 0; i < trace::kNumStages; ++i)
            fields.emplace_back(
                std::string("stage_") +
                    trace::stageName(static_cast<trace::Stage>(i)) +
                    "_p999_us",
                r.stageP999[i]);
        report.curvePoint(r.cfg.label + "/knee", r.cfg.offeredRps,
                          std::move(fields));
    }

    // p999 breakdown by stage: where the tail goes as the DCS curve
    // climbs the ladder toward the knee.
    std::printf("\np999 breakdown by stage, dcs-ctrl (us):\n");
    std::printf("%-18s", "stage");
    for (const double rps : ladder)
        std::printf(" %9.0f", rps);
    std::printf("\n");
    for (std::size_t i = 0; i < trace::kNumStages; ++i) {
        std::printf("%-18s",
                    trace::stageName(static_cast<trace::Stage>(i)));
        for (const auto &r : rows)
            if (r.cfg.label == "dcs-ctrl")
                std::printf(" %9.1f", r.stageP999[i]);
        std::printf("\n");
    }
    std::printf("%-18s", "e2e");
    for (const auto &r : rows)
        if (r.cfg.label == "dcs-ctrl")
            std::printf(" %9.1f", r.e2eP999);
    std::printf("\n");

    // Ablation at the highest load: control-path MMIO writes and MSIs
    // per served request, batching on vs off.
    auto find = [&](const std::string &label, double rps) -> const Row & {
        for (const auto &r : rows)
            if (r.cfg.label == label && r.cfg.offeredRps == rps)
                return r;
        fatal("loadgen_bench: missing row %s", label.c_str());
    };
    const Row &on = find("dcs-ctrl", top);
    const Row &off = find("dcs-ctrl/nobatch", top);
    auto per_req = [](std::uint64_t n, std::uint64_t served) {
        return served ? static_cast<double>(n) /
                            static_cast<double>(served)
                      : 0.0;
    };
    const double db_off = per_req(off.doorbells, off.served);
    const double db_on = per_req(on.doorbells, on.served);
    const double msi_off = per_req(off.msis, off.served);
    const double msi_on = per_req(on.msis, on.served);
    std::printf("\nDCS ablation at %.0f rps offered:\n", top);
    std::printf("  doorbell MMIO/req: %.2f (off) -> %.2f (on), %.1fx "
                "fewer\n",
                db_off, db_on, db_off / db_on);
    std::printf("  MSIs/req:          %.2f (off) -> %.2f (on), %.1fx "
                "fewer\n",
                msi_off, msi_on, msi_off / msi_on);
    const Row &swb = find("sw-opt/batch", top);
    const Row &swo = find("sw-opt", top);
    std::printf("  sw-opt doorbell MMIO/req: %.2f -> %.2f; SSD "
                "MSIs/req: %.2f -> %.2f\n",
                per_req(swo.doorbells, swo.served),
                per_req(swb.doorbells, swb.served),
                per_req(swo.msis, swo.served),
                per_req(swb.msis, swb.served));

    for (const char *label : {"dcs-ctrl", "sw-opt", "sw-p2p"}) {
        double peak = 0;
        for (const auto &r : rows)
            if (r.cfg.label == label)
                peak = std::max(peak, r.stats.goodputRps);
        report.headline(std::string(label) + "/peak_goodput", peak,
                        "req/s");
    }
    report.headline("clients_at_top_load",
                    static_cast<double>(find("dcs-ctrl", top).cfg.clients),
                    "clients");
    report.headline("doorbell_mmio_per_req_nobatch", db_off, "writes");
    report.headline("doorbell_mmio_per_req_batch", db_on, "writes");
    report.headline("doorbell_reduction", db_off / db_on, "x",
                    std::nan(""), "acceptance: >= 5x at top load");
    report.headline("msi_per_req_nobatch", msi_off, "irqs");
    report.headline("msi_per_req_batch", msi_on, "irqs");
    report.headline("msi_reduction", msi_off / msi_on, "x",
                    std::nan(""), "acceptance: >= 5x at top load");

    // Dominant stage at the knee: which stage carries the largest
    // mean share of dcs-ctrl latency at top offered load, and how
    // exactly the stage decomposition reconciles with measured e2e.
    const Row &knee = on;
    std::size_t dom = 0;
    double stage_sum = 0.0;
    for (std::size_t i = 0; i < trace::kNumStages; ++i) {
        stage_sum += knee.stageMeanUs[i];
        if (knee.stageMeanUs[i] > knee.stageMeanUs[dom])
            dom = i;
    }
    const char *dom_name =
        trace::stageName(static_cast<trace::Stage>(dom));
    const double dom_share =
        knee.e2eMeanUs > 0.0
            ? knee.stageMeanUs[dom] / knee.e2eMeanUs * 100.0
            : 0.0;
    const double recon_err =
        knee.e2eMeanUs > 0.0
            ? std::abs(stage_sum - knee.e2eMeanUs) /
                  knee.e2eMeanUs * 100.0
            : 0.0;
    std::printf("\nDominant stage at the knee (%.0f rps): %s "
                "(%.1f%% of mean latency, p999 %.1f us over %llu "
                "attributed requests)\n",
                top, dom_name, dom_share, knee.stageP999[dom],
                (unsigned long long)knee.attributed);
    report.headline("dominant_stage_at_knee_share", dom_share, "%",
                    std::nan(""),
                    std::string("stage: ") + dom_name +
                        " (largest mean share, dcs-ctrl at top load)");
    report.headline("dominant_stage_at_knee_p999", knee.stageP999[dom],
                    "us", std::nan(""),
                    std::string("stage: ") + dom_name);
    report.headline("attr_reconciliation_error", recon_err, "%",
                    std::nan(""),
                    "|sum(stage means) - e2e mean| / e2e mean; "
                    "acceptance: <= 1%");

    for (auto &r : rows)
        report.captureTimeline(std::move(r.timeline));
    if (report.tracing())
        for (auto &r : rows)
            if (r.cfg.capture)
                report.captureTrace(pointName(r.cfg),
                                    std::move(r.traceDump));
    for (auto &r : rows)
        if (!r.statsBlob.empty())
            report.captureStatsBlob(r.cfg.label, std::move(r.statsBlob));
    return report.finish();
}
