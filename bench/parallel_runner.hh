/**
 * @file
 * Fixed-partition thread pool for independent testbeds.
 *
 * The benches run dozens of fully independent sweep points — each a
 * `workload::Testbed` owning its own EventQueue and stats::Registry,
 * with no shared mutable state between points. This runner executes
 * them concurrently with a deliberately boring scheduling policy:
 * thread t of T runs task indices congruent to t (mod T). No work
 * stealing, no shared queue, no ordering dependence — which task ran
 * on which thread can never influence results, so a sweep's output
 * (collected into index-ordered slots and emitted serially afterward)
 * is byte-identical to a serial run.
 *
 * Isolation model (docs/PERFORMANCE.md):
 *  - a task must confine itself to objects it created: its Testbed,
 *    its EventQueue, its Rng, its result slot;
 *  - tasks must not print or touch the bench::Report; capture stats
 *    as strings (eq.stats().dumpJsonString()) and let the main thread
 *    emit everything in index order after run() returns;
 *  - spilled event callbacks use the thread-local EventPool, so a
 *    testbed must be created, run, and destroyed within one task —
 *    which the map()/run() contract guarantees.
 *
 * Thread count: DCS_BENCH_THREADS if set (1 forces serial execution),
 * else std::thread::hardware_concurrency().
 */

#ifndef DCS_BENCH_PARALLEL_RUNNER_HH
#define DCS_BENCH_PARALLEL_RUNNER_HH

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <thread>
#include <vector>

namespace dcs {
namespace bench {

class ParallelRunner
{
  public:
    /** DCS_BENCH_THREADS override, else hardware concurrency. */
    static int
    autoThreads()
    {
        if (const char *env = std::getenv("DCS_BENCH_THREADS")) {
            const int n = std::atoi(env);
            if (n >= 1)
                return n;
        }
        const unsigned hw = std::thread::hardware_concurrency();
        return hw ? static_cast<int>(hw) : 1;
    }

    explicit ParallelRunner(int threads = autoThreads())
        : nThreads(std::max(1, threads))
    {
    }

    int threads() const { return nThreads; }

    /**
     * Execute every task. Thread t runs indices {t, t+T, t+2T, ...};
     * with one thread (or one task) everything runs inline on the
     * caller. Returns after all tasks completed.
     */
    void
    run(const std::vector<std::function<void()>> &tasks) const
    {
        const std::size_t n = tasks.size();
        const auto T = static_cast<std::size_t>(
            std::min<std::size_t>(static_cast<std::size_t>(nThreads), n));
        if (T <= 1) {
            for (const auto &task : tasks)
                task();
            return;
        }
        std::vector<std::thread> pool;
        pool.reserve(T);
        for (std::size_t t = 0; t < T; ++t)
            pool.emplace_back([&tasks, t, T, n] {
                for (std::size_t i = t; i < n; i += T)
                    tasks[i]();
            });
        for (auto &th : pool)
            th.join();
    }

    /**
     * Run fn(0..n-1) and collect the results into index-ordered
     * slots. R must be default-constructible and move-assignable.
     */
    template <typename R, typename Fn>
    std::vector<R>
    map(std::size_t n, Fn fn) const
    {
        std::vector<R> out(n);
        std::vector<std::function<void()>> tasks;
        tasks.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            tasks.push_back([&out, fn, i] { out[i] = fn(i); });
        run(tasks);
        return out;
    }

  private:
    int nThreads;
};

} // namespace bench
} // namespace dcs

#endif // DCS_BENCH_PARALLEL_RUNNER_HH
