/**
 * @file
 * A miniature Swift-like object server on DCS-ctrl, compared with the
 * software baseline.
 *
 * Runs the paper's object-store workload (PUT/GET mix with MD5 etags,
 * Poisson arrivals, Dropbox-style size distribution) first on the
 * optimized software stack, then on DCS-ctrl, and prints the
 * side-by-side server CPU cost — the paper's headline server-consolidation
 * argument in miniature.
 *
 *   ./example_swift_node [offered_gbps]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/logging.hh"
#include "workload/experiment.hh"
#include "workload/swift.hh"

using namespace dcs;
using workload::Design;

namespace {

workload::SwiftStats
serve(Design design, double offered)
{
    workload::Testbed tb(design);
    workload::SwiftParams p;
    p.offeredGbps = offered;
    p.warmup = milliseconds(10);
    p.measure = milliseconds(200);
    p.connections = 24;
    p.mix.sizeBuckets = {{16 * 1024, 0.3},
                         {128 * 1024, 0.35},
                         {512 * 1024, 0.25},
                         {2048 * 1024, 0.10}};
    p.appFixedUs = 200.0;
    p.appPerMbUs = design == Design::DcsCtrl ? 700.0 : 1500.0;

    workload::SwiftWorkload wl(tb.eq(), tb.nodeA(), tb.nodeB(),
                               tb.pathA(), p);
    workload::SwiftStats out;
    bool fin = false;
    wl.run([&](const workload::SwiftStats &s) {
        out = s;
        fin = true;
    });
    tb.eq().run();
    if (!fin)
        fatal("swift run did not drain");
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const double offered =
        argc > 1 ? std::strtod(argv[1], nullptr) : 4.0;

    std::printf("mini-Swift object server, offered load %.1f Gbps\n\n",
                offered);
    std::printf("%-10s %10s %8s %8s %10s %12s\n", "design", "tput", "GETs",
                "PUTs", "cpu", "mean lat");
    for (Design d : {Design::SwOptimized, Design::DcsCtrl}) {
        const auto s = serve(d, offered);
        std::printf("%-10s %7.2f Gb %8llu %8llu %9.2f%% %9.0f us\n",
                    workload::designName(d), s.throughputGbps,
                    (unsigned long long)s.getsDone,
                    (unsigned long long)s.putsDone,
                    100 * s.cpuUtilization, s.latencyUs.mean());
    }
    std::printf("\nSame request stream, same storage, same wire — the "
                "DCS-ctrl server spends its cores\non requests instead "
                "of moving bytes.\n");
    return 0;
}
