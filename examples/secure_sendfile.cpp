/**
 * @file
 * Secure sendfile: SSD -> AES-256 -> NIC with no plaintext on the
 * host and no key material in the data path software.
 *
 * The scale-out storage applications in paper Table II (Swift, HDFS,
 * S3, Azure Blob) apply AES-256 between storage and network. This
 * example ships a "database backup" off-node, encrypting in flight on
 * an NDP unit, then shows the receiver decrypting it with the shared
 * key — and that the wire never carried plaintext.
 *
 *   ./example_secure_sendfile
 */

#include <cstdio>

#include "ndp/aes256.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sys/node.hh"

using namespace dcs;

int
main()
{
    setVerbose(false);

    EventQueue eq;
    sys::TwoNodeSystem system(eq);
    sys::Node &a = system.nodeA();
    sys::Node &b = system.nodeB();
    a.bringUpDcs([] {});
    b.bringUpHostStack([] {});
    eq.run();

    // A recognizable plaintext so leakage would be obvious.
    const std::uint64_t size = 512 * 1024;
    std::vector<std::uint8_t> backup(size);
    for (std::uint64_t i = 0; i < size; ++i)
        backup[i] = static_cast<std::uint8_t>(
            "CUSTOMER-RECORDS-TABLE-V2|"[i % 26]);
    const int fd = a.fs().create("backup.db", backup);

    // Key + nonce; in a real deployment these come from the KMS and
    // are handed to the driver once per session.
    Rng rng(41);
    std::vector<std::uint8_t> key_nonce(40);
    rng.fill(key_nonce.data(), key_nonce.size());

    auto [conn_a, conn_b] = host::establishPair(a.tcp(), b.tcp());
    std::vector<std::uint8_t> wire_bytes;
    conn_b->onPayload = [&](std::uint32_t, dcs::BufChain p) {
        const auto bytes = p.toVector();
        wire_bytes.insert(wire_bytes.end(), bytes.begin(), bytes.end());
    };

    bool done = false;
    a.hdcLib().sendFile(fd, conn_a->fd, 0, size, ndp::Function::Aes256,
                        key_nonce, false, nullptr,
                        [&](const hdclib::D2dResult &) { done = true; });
    eq.run();
    if (!done)
        fatal("transfer did not complete");

    // The receiver decrypts with the same key/nonce (CTR mode).
    std::uint64_t nonce = 0;
    for (int i = 0; i < 8; ++i)
        nonce |= std::uint64_t(key_nonce[32 + i]) << (8 * i);
    ndp::Aes256Ctr ctr({key_nonce.data(), 32}, nonce);
    const auto decrypted = ctr.transform(wire_bytes);

    // Plaintext-on-the-wire check: the marker string must not appear.
    const std::string marker = "CUSTOMER-RECORDS";
    const bool leaked =
        std::search(wire_bytes.begin(), wire_bytes.end(), marker.begin(),
                    marker.end()) != wire_bytes.end();

    std::printf("shipped %llu encrypted bytes\n",
                (unsigned long long)wire_bytes.size());
    std::printf("plaintext visible on the wire : %s\n",
                leaked ? "YES (bug!)" : "no");
    std::printf("receiver-side decryption      : %s\n",
                decrypted == backup ? "restores the backup" : "FAILED");
    return (!leaked && decrypted == backup) ? 0 : 1;
}
