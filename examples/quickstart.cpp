/**
 * @file
 * Quickstart: one D2D call replaces a read/process/send pipeline.
 *
 * Builds the paper's two-node testbed, brings node A up in DCS-ctrl
 * mode, writes a file, and ships it to node B with an in-flight MD5
 * through a single hdc_send_file-style call. Prints the latency
 * attribution and verifies the bytes and the digest at the receiver.
 *
 *   ./example_quickstart [size_bytes]
 */

#include <cstdio>
#include <cstdlib>

#include "ndp/hash.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sys/node.hh"

using namespace dcs;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const std::uint64_t size =
        argc > 1 ? std::strtoull(argv[1], nullptr, 0) : (1u << 20);

    // 1. Assemble two nodes joined by a 10-GbE wire. Each node is the
    //    paper's prototype: host + SSD + NIC + GPU + HDC Engine on a
    //    5-slot PCIe Gen2 switch.
    EventQueue eq;
    sys::TwoNodeSystem system(eq);
    sys::Node &a = system.nodeA();
    sys::Node &b = system.nodeB();

    // 2. Bring node A up in DCS-ctrl mode (the HDC Engine takes over
    //    the NIC and a dedicated NVMe queue pair); node B runs a
    //    normal kernel stack and will receive over TCP.
    a.bringUpDcs([] { inform("node A: DCS-ctrl ready"); });
    b.bringUpHostStack([] { inform("node B: host stack ready"); });
    eq.run();

    // 3. A file on A's SSD and an established connection to B.
    Rng rng(2024);
    std::vector<std::uint8_t> payload(size);
    rng.fill(payload.data(), payload.size());
    const int fd = a.fs().create("demo.bin", payload);

    auto [conn_a, conn_b] = host::establishPair(a.tcp(), b.tcp());
    std::vector<std::uint8_t> received;
    conn_b->onPayload = [&](std::uint32_t, dcs::BufChain p) {
        const auto bytes = p.toVector();
        received.insert(received.end(), bytes.begin(), bytes.end());
    };

    // 4. One call: SSD -> MD5 (NDP unit) -> NIC, no host data path.
    auto trace = host::makeTrace();
    hdclib::D2dResult result;
    bool done = false;
    const Tick start = eq.now();
    a.hdcLib().sendFile(fd, conn_a->fd, 0, size, ndp::Function::Md5,
                        {}, /*want_digest=*/true, trace,
                        [&](const hdclib::D2dResult &r) {
                            result = r;
                            done = true;
                        });
    eq.run();

    // 5. Report.
    if (!done)
        fatal("transfer did not complete");
    const double total_us = toMicroseconds(eq.now() - start);
    const auto want = ndp::makeHash("md5")->oneShot(payload);

    std::printf("sent %llu bytes SSD->MD5->NIC in %.1f us "
                "(%.2f Gbps effective)\n",
                (unsigned long long)size, total_us,
                double(size) * 8 / (total_us * 1000));
    std::printf("receiver got %zu bytes: %s\n", received.size(),
                received == payload ? "MATCH" : "MISMATCH");
    std::printf("etag (NDP)      : %s\n",
                ndp::toHex(result.digest).c_str());
    std::printf("etag (reference): %s\n", ndp::toHex(want).c_str());
    std::printf("\nhost-side latency contribution:\n");
    std::printf("  file system       %6.1f us\n",
                trace->get(host::LatComp::FileSystem) / 1e6);
    std::printf("  device control    %6.1f us\n",
                trace->get(host::LatComp::DeviceControl) / 1e6);
    std::printf("  completion+IRQ    %6.1f us\n",
                trace->get(host::LatComp::RequestCompletion) / 1e6);
    std::printf("  (everything else ran on the HDC Engine)\n");

    return received == payload && result.digest == want ? 0 : 1;
}
