/**
 * @file
 * The flexibility argument, live: three off-the-shelf SSDs behind one
 * HDC Engine.
 *
 * The paper's case against integrated devices (QuickSAN, BlueDBM) is
 * that adding a commodity device should cost one more disaggregate
 * controller, not a board respin (§III-C). This example binds three
 * NVMe SSDs to the engine, then runs a local "maintenance job":
 * rebuild SSD0's objects onto SSD1 (verbatim) and SSD2 (AES-256
 * encrypted at rest), all as storage-to-storage D2D with SHA-256
 * audit digests — host CPU untouched by the data.
 *
 *   ./example_flexible_storage
 */

#include <cstdio>

#include "ndp/aes256.hh"
#include "ndp/hash.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sys/node.hh"

using namespace dcs;

int
main()
{
    setVerbose(false);

    EventQueue eq;
    sys::NodeParams params;
    params.extraSsds = 2; // three SSDs total, one engine
    sys::TwoNodeSystem system(eq, params, sys::NodeParams{});
    sys::Node &node = system.nodeA();
    node.bringUpDcs([] {});
    system.nodeB().bringUpHostStack([] {});
    eq.run();

    std::printf("engine bound to %zu SSDs through %zu standard "
                "controllers\n\n",
                node.ssdCount(), node.engine().ssdCount());

    // Objects on SSD0.
    Rng rng(77);
    const int objects = 6;
    std::vector<std::vector<std::uint8_t>> contents;
    std::vector<int> src_fds;
    for (int i = 0; i < objects; ++i) {
        std::vector<std::uint8_t> c(200000 + 37000 * i);
        rng.fill(c.data(), c.size());
        contents.push_back(c);
        src_fds.push_back(
            node.fs(0).create("obj" + std::to_string(i), c));
    }

    std::vector<std::uint8_t> key_nonce(40);
    rng.fill(key_nonce.data(), key_nonce.size());

    const std::uint64_t host_before =
        node.host().bridge().hostDmaBytes();
    const Tick start = eq.now();

    // Fan out: plain replica to SSD1, encrypted replica to SSD2.
    int done = 0;
    std::vector<std::vector<std::uint8_t>> audit(objects);
    for (int i = 0; i < objects; ++i) {
        const auto size = contents[static_cast<std::size_t>(i)].size();
        const int plain = node.fs(1).createEmpty(
            "replica" + std::to_string(i), size);
        const int enc = node.fs(2).createEmpty(
            "vault" + std::to_string(i), size);
        node.hdcLib().copyFile(src_fds[static_cast<std::size_t>(i)],
                               plain, 0, 0, size, ndp::Function::Sha256,
                               {}, true, 0, 1, nullptr,
                               [&, i](const hdclib::D2dResult &r) {
                                   audit[static_cast<std::size_t>(i)] =
                                       r.digest;
                                   ++done;
                               });
        node.hdcLib().copyFile(src_fds[static_cast<std::size_t>(i)],
                               enc, 0, 0, size, ndp::Function::Aes256,
                               key_nonce, false, 0, 2, nullptr,
                               [&](const hdclib::D2dResult &) {
                                   ++done;
                               });
    }
    eq.run();
    if (done != 2 * objects)
        fatal("maintenance job incomplete (%d/%d)", done, 2 * objects);

    // Verify everything.
    std::uint64_t nonce = 0;
    for (int i = 0; i < 8; ++i)
        nonce |= std::uint64_t(key_nonce[32 + i]) << (8 * i);
    int ok = 0;
    for (int i = 0; i < objects; ++i) {
        const auto &src = contents[static_cast<std::size_t>(i)];
        const int rfd = node.fs(1).open("replica" + std::to_string(i));
        const int vfd = node.fs(2).open("vault" + std::to_string(i));
        const auto replica = node.fs(1).readContents(rfd);
        auto vault = node.fs(2).readContents(vfd);
        ndp::Aes256Ctr ctr({key_nonce.data(), 32}, nonce);
        const bool good =
            replica == src && vault != src &&
            ctr.transform(vault) == src &&
            audit[static_cast<std::size_t>(i)] ==
                ndp::makeHash("sha256")->oneShot(src);
        ok += good;
    }

    const double ms = toMilliseconds(eq.now() - start);
    std::printf("rebuilt %d objects twice (plain + encrypted) in "
                "%.2f ms\n",
                objects, ms);
    std::printf("verified: %d/%d (bytes, digests, at-rest "
                "encryption)\n",
                ok, objects);
    std::printf("host DRAM bytes touched by object data: %llu\n",
                (unsigned long long)(node.host().bridge().hostDmaBytes() -
                                     host_before));
    std::printf("per-controller NVMe commands: ssd0=%llu ssd1=%llu "
                "ssd2=%llu\n",
                (unsigned long long)
                    node.engine().nvmeCtrl(0).commandsIssued(),
                (unsigned long long)
                    node.engine().nvmeCtrl(1).commandsIssued(),
                (unsigned long long)
                    node.engine().nvmeCtrl(2).commandsIssued());
    return ok == objects ? 0 : 1;
}
