/**
 * @file
 * Two-node HDFS block rebalance over DCS-ctrl.
 *
 * The sender node reads blocks from its SSD and ships them; the
 * receiver gathers the packets in the HDC Engine, CRC32-checks them
 * in an NDP unit, and writes them to its own SSD — no host memory on
 * either side touches the block data. Afterwards the example audits
 * the receiver's filesystem contents against the sender's.
 *
 *   ./example_hdfs_balancer [blocks] [block_mib]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/logging.hh"
#include "workload/experiment.hh"
#include "workload/hdfs.hh"

using namespace dcs;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const int blocks = argc > 1 ? std::atoi(argv[1]) : 8;
    const std::uint64_t block_bytes =
        (argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 8) << 20;

    workload::Testbed tb(workload::Design::DcsCtrl,
                         /*receiver_dcs=*/true);
    workload::HdfsParams p;
    p.blocks = blocks;
    p.blockBytes = block_bytes;
    p.streams = std::min(blocks, 4);
    workload::HdfsBalancer balancer(tb.eq(), tb.nodeA(), tb.nodeB(),
                                    tb.pathA(), tb.pathB(), p);

    const std::uint64_t host_bytes_before =
        tb.nodeA().host().bridge().hostDmaBytes() +
        tb.nodeB().host().bridge().hostDmaBytes();

    bool fin = false;
    workload::HdfsStats stats;
    balancer.run([&](const workload::HdfsStats &s) {
        stats = s;
        fin = true;
    });
    tb.eq().run();
    if (!fin)
        fatal("balancer did not finish");

    std::printf("moved %llu blocks (%.1f MiB) in %.2f ms -> %.2f Gbps\n",
                (unsigned long long)stats.blocksMoved,
                double(stats.bytesMoved) / (1 << 20),
                toMilliseconds(stats.elapsed), stats.bandwidthGbps);
    std::printf("sender CPU %.2f%%, receiver CPU %.2f%%\n",
                100 * stats.senderCpuUtil, 100 * stats.receiverCpuUtil);

    // Audit: every stored block must equal its source block.
    int mismatches = 0;
    for (int i = 0; i < blocks; ++i) {
        const int src =
            tb.nodeA().fs().open("blk_" + std::to_string(i));
        const int dst =
            tb.nodeB().fs().open("stored_" + std::to_string(i));
        if (src < 0 || dst < 0 ||
            tb.nodeA().fs().readContents(src) !=
                tb.nodeB().fs().readContents(dst))
            ++mismatches;
    }
    const std::uint64_t host_bytes =
        tb.nodeA().host().bridge().hostDmaBytes() +
        tb.nodeB().host().bridge().hostDmaBytes() - host_bytes_before;
    std::printf("block audit: %d/%d verified, %d mismatches\n",
                blocks - mismatches, blocks, mismatches);
    std::printf("host DRAM bytes touched by the block data: %llu "
                "(command/metadata traffic only)\n",
                (unsigned long long)host_bytes);
    return mismatches == 0 ? 0 : 1;
}
