/**
 * @file
 * End-to-end two-node DCS-ctrl tests: every D2D scenario moves real
 * bytes through SSD flash, HDC Engine buffers, NIC frames and the
 * wire, and the results are checked byte-for-byte.
 */

#include <cstring>
#include <gtest/gtest.h>

#include "fixtures.hh"
#include "ndp/aes256.hh"
#include "ndp/crc32.hh"
#include "ndp/deflate.hh"

namespace dcs {
namespace {

class DcsE2eTest : public test::TwoNodeFixture
{
};

TEST_F(DcsE2eTest, SendFilePlain)
{
    bringUp(true);
    auto content = test::randomBytes(777777, 21);
    const int fd = nodeA().fs().create("f", content);
    sinkAtB();

    bool done = false;
    nodeA().hdcLib().sendFile(fd, connA->fd, 0, content.size(),
                              ndp::Function::None, {}, false, nullptr,
                              [&](const hdclib::D2dResult &) {
                                  done = true;
                              });
    eq.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(received, content);
}

class DcsHashSendTest
    : public test::TwoNodeFixture,
      public ::testing::WithParamInterface<
          std::tuple<const char *, std::size_t>>
{
};

TEST_P(DcsHashSendTest, DigestMatchesReference)
{
    const auto [algo, size] = GetParam();
    bringUp(true);
    auto content = test::randomBytes(size, 22);
    const int fd = nodeA().fs().create("f", content);
    sinkAtB();

    bool done = false;
    hdclib::D2dResult res;
    nodeA().hdcLib().sendFile(
        fd, connA->fd, 0, content.size(),
        ndp::functionFromName(algo), {}, true, nullptr,
        [&](const hdclib::D2dResult &r) {
            res = r;
            done = true;
        });
    eq.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(received, content);
    EXPECT_EQ(res.digest, ndp::makeHash(algo)->oneShot(content))
        << algo << " over " << size << " bytes";
}

INSTANTIATE_TEST_SUITE_P(
    AlgosAndSizes, DcsHashSendTest,
    ::testing::Combine(::testing::Values("md5", "sha1", "sha256", "crc32"),
                       // 1 chunk, chunk-1, chunk+1, many chunks
                       ::testing::Values(std::size_t(4096), 65535, 65537,
                                         500000)));

TEST_F(DcsE2eTest, RecvFileStoresToFlash)
{
    // B runs DCS; A's host stack sends. NIC -> gather -> CRC32 -> SSD.
    bringUp(false, true);
    auto content = test::randomBytes(300000, 23);
    const int fd_b = nodeB().fs().createEmpty("in.bin", content.size());

    bool stored = false;
    hdclib::D2dResult res;
    nodeB().hdcLib().recvFile(connB->fd, fd_b, 0, content.size(),
                              ndp::Function::Crc32, {}, true, nullptr,
                              [&](const hdclib::D2dResult &r) {
                                  res = r;
                                  stored = true;
                              });
    eq.run(); // let the gather ops arm before data flies

    // Sender: stage bytes in host DRAM and send via the kernel path.
    const Addr buf = nodeA().host().allocDma(content.size());
    nodeA().host().dram().write(nodeA().host().dramOffset(buf),
                                content.data(), content.size());
    nodeA().tcp().send(*connA, buf,
                       static_cast<std::uint32_t>(content.size()), 8192,
                       nullptr, {});
    eq.run();

    ASSERT_TRUE(stored);
    EXPECT_EQ(nodeB().fs().readContents(fd_b), content);
    const std::uint32_t want = ndp::Crc32::compute(content);
    ASSERT_EQ(res.digest.size(), 4u);
    std::uint32_t got = 0;
    std::memcpy(&got, res.digest.data(), 4);
    // Digest bytes are little-endian CRC (Crc32::finish layout).
    EXPECT_EQ(got, want);
}

TEST_F(DcsE2eTest, DcsToDcsTransfer)
{
    // Both nodes in DCS mode: A sends from file, B receives to file.
    bringUp(true, true);
    auto content = test::randomBytes(1 << 20, 24);
    const int fd_a = nodeA().fs().create("src.bin", content);
    const int fd_b = nodeB().fs().createEmpty("dst.bin", content.size());

    bool stored = false;
    nodeB().hdcLib().recvFile(connB->fd, fd_b, 0, content.size(),
                              ndp::Function::None, {}, false, nullptr,
                              [&](const hdclib::D2dResult &) {
                                  stored = true;
                              });
    eq.run();

    bool sent = false;
    nodeA().hdcLib().sendFile(fd_a, connA->fd, 0, content.size(),
                              ndp::Function::None, {}, false, nullptr,
                              [&](const hdclib::D2dResult &) {
                                  sent = true;
                              });
    eq.run();

    ASSERT_TRUE(sent);
    ASSERT_TRUE(stored);
    EXPECT_EQ(nodeB().fs().readContents(fd_b), content);
}

TEST_F(DcsE2eTest, AesEncryptedTransferDecryptsAtReceiver)
{
    bringUp(true);
    auto content = test::randomBytes(200000, 25);
    const int fd = nodeA().fs().create("secret", content);
    sinkAtB();

    std::vector<std::uint8_t> aux(40);
    test::randomBytes(40, 26).swap(aux); // 32B key + 8B nonce

    bool done = false;
    nodeA().hdcLib().sendFile(fd, connA->fd, 0, content.size(),
                              ndp::Function::Aes256, aux, false, nullptr,
                              [&](const hdclib::D2dResult &) {
                                  done = true;
                              });
    eq.run();
    ASSERT_TRUE(done);
    ASSERT_EQ(received.size(), content.size());
    EXPECT_NE(received, content) << "ciphertext on the wire";

    // Decrypt with the same key/nonce: CTR is an involution.
    std::uint64_t nonce = 0;
    for (int i = 0; i < 8; ++i)
        nonce |= std::uint64_t(aux[32 + i]) << (8 * i);
    ndp::Aes256Ctr ctr({aux.data(), 32}, nonce);
    EXPECT_EQ(ctr.transform(received), content);
}

TEST_F(DcsE2eTest, GzipCompressedTransferInflates)
{
    bringUp(true);
    // Compressible content (text-like repetition).
    std::vector<std::uint8_t> content(120000);
    for (std::size_t i = 0; i < content.size(); ++i)
        content[i] = static_cast<std::uint8_t>(
            "the quick brown fox jumps over the lazy dog "[i % 44]);
    const int fd = nodeA().fs().create("log.txt", content);
    sinkAtB();

    bool done = false;
    nodeA().hdcLib().sendFile(fd, connA->fd, 0, content.size(),
                              ndp::Function::Gzip, {}, false, nullptr,
                              [&](const hdclib::D2dResult &) {
                                  done = true;
                              });
    eq.run();
    ASSERT_TRUE(done);
    EXPECT_LT(received.size(), content.size() / 3)
        << "payload must be compressed on the wire";

    // The stream is per-chunk gzip members (64 KiB chunks): inflate
    // each member in sequence.
    std::vector<std::uint8_t> inflated;
    std::size_t pos = 0;
    while (pos < received.size()) {
        // Find the end of this member by inflating greedily: our
        // chunks are independent gzip files, so scan for next magic.
        std::size_t next = pos + 2;
        while (next + 1 < received.size() &&
               !(received[next] == 0x1f && received[next + 1] == 0x8b))
            ++next;
        if (next + 1 >= received.size())
            next = received.size();
        auto piece = ndp::gzipDecompress(
            {received.data() + pos, next - pos});
        inflated.insert(inflated.end(), piece.begin(), piece.end());
        pos = next;
    }
    EXPECT_EQ(inflated, content);
}

TEST_F(DcsE2eTest, FragmentedFileSpansExtents)
{
    bringUp(true);
    // Force fragmentation by interleaving small allocations.
    auto &fs = nodeA().fs();
    std::vector<std::uint8_t> part = test::randomBytes(9000, 27);
    std::vector<std::uint8_t> all;
    fs.createEmpty("frag", 0); // placeholder name reservation
    std::vector<int> fds;
    for (int i = 0; i < 6; ++i) {
        auto piece = test::randomBytes(150000 + i * 1000, 30 + i);
        fds.push_back(
            fs.create("piece" + std::to_string(i), piece));
        fs.createEmpty("hole" + std::to_string(i), 8192);
    }
    // Send one of the middle pieces.
    const int fd = fds[3];
    auto content = fs.readContents(fd);
    sinkAtB();

    bool done = false;
    nodeA().hdcLib().sendFile(fd, connA->fd, 0, content.size(),
                              ndp::Function::Md5, {}, false, nullptr,
                              [&](const hdclib::D2dResult &) {
                                  done = true;
                              });
    eq.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(received, content);
}

TEST_F(DcsE2eTest, ManyConcurrentCommands)
{
    bringUp(true);
    const int n = 24;
    std::vector<int> fds;
    std::vector<std::vector<std::uint8_t>> contents;
    std::vector<std::uint8_t> all;
    for (int i = 0; i < n; ++i) {
        contents.push_back(test::randomBytes(30000 + i * 777, 40 + i));
        fds.push_back(nodeA().fs().create("f" + std::to_string(i),
                                          contents.back()));
        all.insert(all.end(), contents.back().begin(),
                   contents.back().end());
    }
    sinkAtB();

    int done = 0;
    for (int i = 0; i < n; ++i)
        nodeA().hdcLib().sendFile(fds[i], connA->fd, 0,
                                  contents[i].size(),
                                  ndp::Function::Crc32, {}, true, nullptr,
                                  [&](const hdclib::D2dResult &) {
                                      ++done;
                                  });
    eq.run();
    EXPECT_EQ(done, n);
    EXPECT_EQ(received, all) << "stream order must follow command order";
}

TEST_F(DcsE2eTest, HostCpuBarelyTouchedByD2d)
{
    bringUp(true);
    auto content = test::randomBytes(4 << 20, 50);
    const int fd = nodeA().fs().create("big", content);
    sinkAtB();

    nodeA().host().cpu().beginWindow();
    bool done = false;
    nodeA().hdcLib().sendFile(fd, connA->fd, 0, content.size(),
                              ndp::Function::None, {}, false, nullptr,
                              [&](const hdclib::D2dResult &) {
                                  done = true;
                              });
    eq.run();
    ASSERT_TRUE(done);
    // 4 MiB moved with a handful of microseconds of CPU time.
    const double busy_us =
        nodeA().host().cpu().busy().total() / 1e6;
    EXPECT_LT(busy_us, 20.0);
    EXPECT_EQ(received, content);
}

} // namespace
} // namespace dcs
