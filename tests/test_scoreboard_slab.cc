/**
 * @file
 * Slot-slab mechanics of the scoreboard storage model: freelist reuse
 * and generation wraparound, stale-handle rejection, intrusive
 * ready-list unlinking under cancel interleavings, and the
 * exact-occupancy quiesce audit after admission-control overload.
 */
// dcslint: allow-file(callback-lifetime): the tests drain the queue in the
// same stack frame, so by-reference captures of locals cannot dangle.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "hdc/scoreboard.hh"

namespace dcs {
namespace hdc {
namespace {

/** Minimal rig: one class, immediate-ish completions. */
struct SlabRig
{
    EventQueue eq;
    HdcTiming timing;
    Scoreboard sb;
    std::uint64_t completedCmds = 0;

    explicit SlabRig(int slots = 4)
        : sb(eq, "sb", timing)
    {
        sb.registerController(
            DevClass::SsdCtrl,
            [this](const Entry &e) {
                eq.schedule(1000, [this, id = e.id] { sb.complete(id); });
            },
            slots);
        sb.setCommandDone(
            [this](std::uint32_t) { ++completedCmds; });
    }

    std::uint32_t
    oneEntryCommand(std::uint32_t cmd)
    {
        sb.declareCommand(cmd, 1);
        Entry e;
        e.cmdId = cmd;
        e.dev = DevClass::SsdCtrl;
        const std::uint32_t id = sb.addEntry(e);
        sb.arm();
        return id;
    }
};

TEST(ScoreboardSlab, FreelistRecyclesSlotsAcrossGenerations)
{
    SlabRig r;

    // Sequential single-entry commands: each retires before the next
    // is created, so the freelist hands back the same slot with a
    // bumped generation every time.
    std::set<std::uint32_t> slots_used;
    std::uint32_t prev_id = 0;
    for (std::uint32_t c = 1; c <= 200; ++c) {
        const std::uint32_t id = r.oneEntryCommand(c);
        if (prev_id != 0) {
            EXPECT_NE(id, prev_id)
                << "recycled slot must carry a fresh generation";
            EXPECT_FALSE(r.sb.hasEntry(prev_id))
                << "retired id must read as gone";
        }
        slots_used.insert(id & Scoreboard::kSlotMask);
        prev_id = id;
        r.eq.run();
    }
    EXPECT_EQ(r.completedCmds, 200u);
    // Bounded working set: peak concurrency was 1, so the slab never
    // grew past a single slot.
    EXPECT_EQ(r.sb.slabSlots(), 1u);
    EXPECT_EQ(slots_used.size(), 1u);
    EXPECT_TRUE(r.sb.checkQuiesce());
}

TEST(ScoreboardSlab, GenerationWrapsWithoutAliasing)
{
    SlabRig r;

    // Drive one slot through more lifetimes than the generation field
    // has states (kGenMask + 1): the generation wraps and ids repeat
    // across epochs, but each id is only ever valid for its own
    // lifetime — the slot keeps recycling cleanly throughout.
    const std::uint32_t lifetimes = Scoreboard::kGenMask + 10;
    std::uint32_t first_id = 0;
    bool id_repeated = false;
    for (std::uint32_t c = 1; c <= lifetimes; ++c) {
        const std::uint32_t id = r.oneEntryCommand(c);
        if (c == 1)
            first_id = id;
        else if (id == first_id)
            id_repeated = true;
        r.eq.run();
        EXPECT_FALSE(r.sb.hasEntry(id));
    }
    EXPECT_TRUE(id_repeated)
        << "generation field must wrap within kGenMask+10 lifetimes";
    EXPECT_EQ(r.completedCmds, lifetimes);
    EXPECT_EQ(r.sb.slabSlots(), 1u);
    EXPECT_TRUE(r.sb.checkQuiesce());
}

TEST(ScoreboardSlabDeath, StaleGenerationHandleIsRejected)
{
    SlabRig r;
    r.sb.declareCommand(1, 1);
    Entry e;
    e.cmdId = 1;
    e.dev = DevClass::SsdCtrl;
    const std::uint32_t id = r.sb.addEntry(e);

    // Same slot, wrong generation: the slot is live, the handle is
    // not. Must read as absent and panic on every keyed operation.
    const std::uint32_t stale = id + (1u << Scoreboard::kSlotBits);
    EXPECT_TRUE(r.sb.hasEntry(id));
    EXPECT_FALSE(r.sb.hasEntry(stale));
    EXPECT_DEATH(r.sb.cmdOf(stale), "cmdOf on unknown entry");
    EXPECT_DEATH(r.sb.complete(stale), "completion for unknown entry");
    EXPECT_DEATH(r.sb.setEntryLen(stale, 1), "setEntryLen on unknown");
    EXPECT_DEATH(r.sb.cancel(stale), "cancel of unknown entry");

    r.sb.arm();
    r.eq.run();
    EXPECT_TRUE(r.sb.checkQuiesce());
}

TEST(ScoreboardSlabDeath, RetiredHandleIsRejected)
{
    SlabRig r;
    const std::uint32_t id = r.oneEntryCommand(1);
    r.eq.run();
    ASSERT_EQ(r.completedCmds, 1u);

    // The slot was recycled; the old id's generation no longer
    // matches, in release and checked builds alike.
    EXPECT_FALSE(r.sb.hasEntry(id));
    EXPECT_DEATH(r.sb.complete(id), "completion for unknown entry");
    EXPECT_DEATH(r.sb.cancel(id), "cancel of unknown entry");
}

TEST(ScoreboardSlab, CancelUnlinksHeadMiddleAndTailOfReadyList)
{
    EventQueue eq;
    HdcTiming timing;
    Scoreboard sb(eq, "sb", timing);
    std::vector<std::uint32_t> issued;
    std::uint32_t done_cmds = 0;

    // Zero slots: entries become Ready and stay queued, so the
    // intrusive FIFO can be unlinked at every position.
    sb.registerController(
        DevClass::SsdCtrl, [](const Entry &) {}, 0);
    sb.setCommandDone([&](std::uint32_t) { ++done_cmds; });

    sb.declareCommand(1, 5);
    std::vector<std::uint32_t> ids;
    for (int i = 0; i < 5; ++i) {
        Entry e;
        e.cmdId = 1;
        e.dev = DevClass::SsdCtrl;
        e.aux = static_cast<std::uint64_t>(i);
        ids.push_back(sb.addEntry(e));
    }
    sb.arm();
    ASSERT_EQ(sb.classState(DevClass::SsdCtrl).ready, 5u);

    // Middle, head, tail: every unlink shape of the doubly-linked
    // ready list.
    sb.cancel(ids[2]);
    sb.cancel(ids[0]);
    sb.cancel(ids[4]);
    EXPECT_EQ(sb.classState(DevClass::SsdCtrl).ready, 2u);
    EXPECT_EQ(sb.entriesLive(), 2u);
    EXPECT_EQ(done_cmds, 0u);

    // Open the gate: re-register with capacity and let a fresh
    // command's arm() kick the issue loop. The two survivors must
    // drain in FIFO order ahead of the newcomer.
    sb.registerController(
        DevClass::SsdCtrl,
        [&](const Entry &e) {
            issued.push_back(e.id);
            eq.schedule(1000, [&sb, id = e.id] { sb.complete(id); });
        },
        4);
    sb.declareCommand(2, 1);
    Entry late;
    late.cmdId = 2;
    late.dev = DevClass::SsdCtrl;
    const std::uint32_t late_id = sb.addEntry(late);
    sb.arm();
    eq.run();

    ASSERT_EQ(issued.size(), 3u);
    EXPECT_EQ(issued[0], ids[1]);
    EXPECT_EQ(issued[1], ids[3]);
    EXPECT_EQ(issued[2], late_id);
    EXPECT_EQ(done_cmds, 2u);
    EXPECT_TRUE(sb.checkQuiesce());
}

TEST(ScoreboardSlab, CancelOfPredecessorWakesDependent)
{
    SlabRig r(4);
    r.sb.declareCommand(1, 2);
    Entry a;
    a.cmdId = 1;
    a.dev = DevClass::SsdCtrl;
    const std::uint32_t a_id = r.sb.addEntry(a);
    Entry b;
    b.cmdId = 1;
    b.dev = DevClass::SsdCtrl;
    const std::uint32_t b_id = r.sb.addEntry(b);
    r.sb.addDependency(a_id, b_id);

    // Cancel the predecessor before arming: the dependent's pending
    // count drops at cancel time, so arm() finds it ready.
    r.sb.cancel(a_id);
    EXPECT_EQ(r.sb.edgesLive(), 0u);
    r.sb.arm();
    r.eq.run();

    EXPECT_EQ(r.completedCmds, 1u);
    EXPECT_FALSE(r.sb.hasEntry(b_id));
    EXPECT_TRUE(r.sb.checkQuiesce());
}

TEST(ScoreboardSlab, OverloadThenDrainLeavesExactOccupancy)
{
    // The 429 shape: an open-loop arrival stream against a live-entry
    // bound. Admitted commands execute; rejected ones must leave no
    // residue. After the drain, the slab freelist makes any leak
    // countable — checkQuiesce() audits slots, edges, ready lists,
    // controller occupancy, and open-command counters exactly.
    EventQueue eq;
    HdcTiming timing;
    Scoreboard sb(eq, "sb", timing);
    std::uint64_t done_cmds = 0;

    sb.registerController(
        DevClass::SsdCtrl,
        [&](const Entry &e) {
            eq.schedule(400'000, [&sb, id = e.id] { sb.complete(id); });
        },
        4);
    sb.registerController(
        DevClass::NicCtrl,
        [&](const Entry &e) {
            eq.schedule(100'000, [&sb, id = e.id] { sb.complete(id); });
        },
        4);
    sb.setCommandDone([&](std::uint32_t) { ++done_cmds; });
    sb.setLiveBound(16);

    const std::uint64_t offered = 400;
    std::uint64_t arrivals_left = offered;
    std::uint32_t next_cmd = 0;
    std::function<void()> arrival = [&] {
        if (arrivals_left == 0)
            return;
        --arrivals_left;
        if (!sb.hasCapacity(2)) {
            sb.noteReject();
        } else {
            const std::uint32_t cmd = ++next_cmd;
            sb.declareCommand(cmd, 2);
            Entry rd;
            rd.cmdId = cmd;
            rd.dev = DevClass::SsdCtrl;
            const std::uint32_t rd_id = sb.addEntry(rd);
            Entry tx;
            tx.cmdId = cmd;
            tx.dev = DevClass::NicCtrl;
            const std::uint32_t tx_id = sb.addEntry(tx);
            sb.addDependency(rd_id, tx_id);
            sb.arm();
        }
        if (arrivals_left > 0)
            eq.schedule(50'000, [&] { arrival(); });
    };
    arrival();
    eq.run();

    // Under these rates the bound must actually bite, and every
    // offered command must account as exactly one admit or reject.
    EXPECT_GT(sb.rejects(), 0u);
    EXPECT_EQ(done_cmds + sb.rejects(), offered);

    // Exact occupancy at quiesce: no leaked slots, edges, ready-list
    // links, controller slots, or open-command counters.
    EXPECT_TRUE(sb.checkQuiesce());
    EXPECT_EQ(sb.entriesLive(), 0u);
    EXPECT_EQ(sb.openCommands(), 0u);
    EXPECT_EQ(sb.edgesLive(), 0u);
}

} // namespace
} // namespace hdc
} // namespace dcs
