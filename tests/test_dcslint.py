#!/usr/bin/env python3
"""Behavior tests for tools/dcslint, driven by the fixture corpus in
tests/lint_fixtures/.

Default mode runs the zero-dependency syntax engine and compares the
full --json report against the checked-in golden. Set
DCSLINT_TEST_ENGINE=clang (CI's static-analysis job, where libclang is
installed) to run the libclang engine instead; that mode compares
per-file rule sets rather than exact lines, since the two engines may
anchor a finding on different tokens of the same construct.

Run from the repository root (the ctest gate sets the working
directory).
"""

import io
import json
import os
import pathlib
import re
import sys
import tempfile
import unittest
from contextlib import redirect_stdout

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

from dcslint import cli, rules  # noqa: E402

FIXTURES = "tests/lint_fixtures"
ENGINE = os.environ.get("DCSLINT_TEST_ENGINE", "syntax")

FIRE_RE = re.compile(r"//.*\bFIRE\(([a-z-]+)\)")
CLEAN_RE = re.compile(r"//.*\bCLEAN\b")


def run_dcslint(extra):
    """Run the CLI, returning (exit_code, report_dict)."""
    with tempfile.NamedTemporaryFile(mode="r", suffix=".json") as tmp:
        argv = ["--engine", ENGINE, "--exclude", "__none__",
                "--baseline", FIXTURES + "/baseline.json",
                "--json", tmp.name, "--quiet"] + extra
        with redirect_stdout(io.StringIO()):
            code = cli.run(argv)
        report = json.load(open(tmp.name))
    return code, report


class DcslintFixtureTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        os.chdir(REPO)
        cls.code, cls.report = run_dcslint([FIXTURES])
        cls.findings = cls.report["findings"]
        cls.golden = json.load(open(FIXTURES + "/golden.json"))

    def lines_with(self, path):
        return pathlib.Path(path).read_text().splitlines()

    def test_exit_status_signals_findings(self):
        self.assertEqual(self.code, 1)

    def test_every_rule_fires_on_its_fixture(self):
        fired = {f["rule"] for f in self.findings}
        self.assertEqual(fired, set(rules.RULE_IDS))

    def test_fire_markers_all_hit(self):
        """Every // FIRE(rule) line produced a finding of that rule."""
        by_line = {(f["file"], f["line"]): set() for f in self.findings}
        for f in self.findings:
            by_line[(f["file"], f["line"])].add(f["rule"])
        for path in sorted(pathlib.Path(FIXTURES).glob("*.cc")):
            for lineno, text in enumerate(self.lines_with(path), 1):
                m = FIRE_RE.search(text)
                if not m:
                    continue
                got = by_line.get((str(path), lineno), set())
                self.assertIn(
                    m.group(1), got,
                    "%s:%d: expected %s, engine reported %s"
                    % (path, lineno, m.group(1), sorted(got) or "nothing"))

    def test_clean_markers_stay_silent(self):
        """No finding lands on a // CLEAN line (false-positive pins,
        including identifiers that merely contain 'time')."""
        flagged = {(f["file"], f["line"]) for f in self.findings}
        for path in sorted(pathlib.Path(FIXTURES).glob("*.cc")):
            for lineno, text in enumerate(self.lines_with(path), 1):
                if CLEAN_RE.search(text) and not FIRE_RE.search(text):
                    self.assertNotIn(
                        (str(path), lineno), flagged,
                        "%s:%d marked CLEAN but was flagged"
                        % (path, lineno))

    def test_waiver_suppresses_and_is_counted(self):
        self.assertGreaterEqual(self.report["waived"], 1)
        waived_new_line = next(
            i for i, t in enumerate(
                self.lines_with(FIXTURES + "/waivers.cc"), 1)
            if "WAIVED" in t)
        self.assertNotIn(
            (FIXTURES + "/waivers.cc", waived_new_line),
            {(f["file"], f["line"]) for f in self.findings})

    def test_bad_waivers_are_findings(self):
        bad = [f for f in self.findings if f["rule"] == "bad-waiver"]
        files = {f["file"] for f in bad}
        self.assertIn(FIXTURES + "/waivers.cc", files)
        self.assertIn(FIXTURES + "/unsafe_shared_static.cc", files)

    def test_baseline_suppresses_legacy_finding(self):
        self.assertEqual(self.report["baselined"], 1)
        self.assertNotIn(FIXTURES + "/baselined.cc",
                         {f["file"] for f in self.findings})

    def test_clean_file_produces_nothing(self):
        self.assertNotIn(FIXTURES + "/clean.cc",
                         {f["file"] for f in self.findings})

    def test_report_matches_golden(self):
        if ENGINE == "syntax":
            self.assertEqual(self.report, self.golden)
        else:
            # Engines may anchor the same defect on different lines;
            # the per-file rule sets must still agree.
            def rule_sets(findings):
                out = {}
                for f in findings:
                    out.setdefault(f["file"], set()).add(f["rule"])
                return out
            self.assertEqual(rule_sets(self.findings),
                             rule_sets(self.golden["findings"]))

    def test_rule_catalog_lists_every_rule(self):
        buf = io.StringIO()
        with redirect_stdout(buf):
            code = cli.run(["--list-rules"])
        self.assertEqual(code, 0)
        for rid in rules.RULE_IDS:
            self.assertIn(rid, buf.getvalue())


class LintGateTest(unittest.TestCase):
    def test_gate_prefers_dcslint(self):
        os.chdir(REPO)
        import lint_gate
        with redirect_stdout(io.StringIO()):
            code = lint_gate.main(["--quiet", "src"])
        self.assertEqual(code, 0)


if __name__ == "__main__":
    unittest.main(verbosity=2)
