/**
 * @file
 * Unit and property tests for the functional NDP codecs, against
 * published reference vectors.
 */

#include <cstring>
#include <gtest/gtest.h>

#include "sim/check.hh"

#include "ndp/aes256.hh"
#include "ndp/crc32.hh"
#include "ndp/deflate.hh"
#include "ndp/hash.hh"
#include "ndp/md5.hh"
#include "ndp/sha1.hh"
#include "ndp/sha256.hh"
#include "ndp/transform.hh"
#include "sim/rng.hh"

namespace dcs {
namespace ndp {
namespace {

std::span<const std::uint8_t>
bytes(const char *s)
{
    return {reinterpret_cast<const std::uint8_t *>(s), std::strlen(s)};
}

// ---------------------------------------------------------------------
// Reference vectors.
// ---------------------------------------------------------------------

TEST(Md5, Rfc1321Vectors)
{
    Md5 h;
    EXPECT_EQ(toHex(h.oneShot(bytes(""))),
              "d41d8cd98f00b204e9800998ecf8427e");
    EXPECT_EQ(toHex(h.oneShot(bytes("a"))),
              "0cc175b9c0f1b6a831c399e269772661");
    EXPECT_EQ(toHex(h.oneShot(bytes("abc"))),
              "900150983cd24fb0d6963f7d28e17f72");
    EXPECT_EQ(toHex(h.oneShot(bytes("message digest"))),
              "f96b697d7cb7938d525a2f31aaf161d0");
    EXPECT_EQ(toHex(h.oneShot(bytes(
                  "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz01"
                  "23456789"))),
              "d174ab98d277d9f5a5611c2c9f419d9f");
}

TEST(Sha1, Fips180Vectors)
{
    Sha1 h;
    EXPECT_EQ(toHex(h.oneShot(bytes("abc"))),
              "a9993e364706816aba3e25717850c26c9cd0d89d");
    EXPECT_EQ(toHex(h.oneShot(bytes(""))),
              "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    EXPECT_EQ(
        toHex(h.oneShot(bytes(
            "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
        "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha256, Fips180Vectors)
{
    Sha256 h;
    EXPECT_EQ(toHex(h.oneShot(bytes("abc"))),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f2"
              "0015ad");
    EXPECT_EQ(toHex(h.oneShot(bytes(""))),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b78"
              "52b855");
    EXPECT_EQ(
        toHex(h.oneShot(bytes(
            "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db"
        "06c1");
}

TEST(Crc32, KnownValues)
{
    EXPECT_EQ(Crc32::compute(bytes("123456789")), 0xcbf43926u);
    EXPECT_EQ(Crc32::compute(bytes("")), 0x0u);
    EXPECT_EQ(Crc32::compute(bytes("The quick brown fox jumps over the "
                                   "lazy dog")),
              0x414fa339u);
}

TEST(Aes256, Fips197Vector)
{
    // FIPS-197 C.3: key 00..1f, plaintext 00112233445566778899aabbccddeeff.
    std::uint8_t key[32];
    for (int i = 0; i < 32; ++i)
        key[i] = static_cast<std::uint8_t>(i);
    std::uint8_t block[16];
    for (int i = 0; i < 16; ++i)
        block[i] = static_cast<std::uint8_t>(i * 0x11);
    Aes256 aes({key, 32});
    aes.encryptBlock(block);
    EXPECT_EQ(toHex({block, 16}), "8ea2b7ca516745bfeafc49904b496089");
}

// ---------------------------------------------------------------------
// Incremental / streaming properties.
// ---------------------------------------------------------------------

const std::vector<std::uint8_t> &
test_data()
{
    DCS_THREAD_SAFE("magic static: initialized once under the compiler's "
                    "init lock, read-only afterwards")
    static const auto data = [] {
        Rng rng(77);
        std::vector<std::uint8_t> v(10000);
        rng.fill(v.data(), v.size());
        return v;
    }();
    return data;
}

class SplitHashTest
    : public ::testing::TestWithParam<std::tuple<const char *, std::size_t>>
{
};

TEST_P(SplitHashTest, SplitUpdatesMatchOneShot)
{
    const auto [algo, split] = GetParam();
    auto data = test_data();
    auto h1 = makeHash(algo);
    auto one = h1->oneShot(data);

    auto h2 = makeHash(algo);
    std::size_t pos = 0;
    while (pos < data.size()) {
        const std::size_t take = std::min(split, data.size() - pos);
        h2->update({data.data() + pos, take});
        pos += take;
    }
    EXPECT_EQ(h2->finish(), one) << algo << " split=" << split;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgos, SplitHashTest,
    ::testing::Combine(::testing::Values("md5", "sha1", "sha256", "crc32"),
                       ::testing::Values(std::size_t(1), 7, 63, 64, 65,
                                         1000, 4096)));

TEST(Aes256Ctr, RoundTripRestoresPlaintext)
{
    Rng rng(5);
    std::vector<std::uint8_t> key(32), data(5000);
    rng.fill(key.data(), key.size());
    rng.fill(data.data(), data.size());

    Aes256Ctr enc(key, 42);
    auto ct = enc.transform(data);
    EXPECT_NE(ct, data);
    Aes256Ctr dec(key, 42);
    EXPECT_EQ(dec.transform(ct), data);
}

TEST(Aes256Ctr, WrongNonceOrKeyFails)
{
    auto key = test_data();
    key.resize(32);
    std::vector<std::uint8_t> data(100, 0x5a);
    Aes256Ctr enc(key, 1);
    auto ct = enc.transform(data);
    Aes256Ctr bad_nonce(key, 2);
    EXPECT_NE(bad_nonce.transform(ct), data);
    auto key2 = key;
    key2[0] ^= 1;
    Aes256Ctr bad_key(key2, 1);
    EXPECT_NE(bad_key.transform(ct), data);
}

TEST(Aes256Ctr, SeekMatchesContiguousStream)
{
    Rng rng(6);
    std::vector<std::uint8_t> key(32), data(4096);
    rng.fill(key.data(), key.size());
    rng.fill(data.data(), data.size());

    Aes256Ctr whole(key, 9);
    const auto ct = whole.transform(data);

    // Chunked transforms with seeks must match.
    for (std::size_t chunk : {16u, 100u, 1000u, 4095u}) {
        std::vector<std::uint8_t> out;
        std::size_t pos = 0;
        while (pos < data.size()) {
            const std::size_t take = std::min(chunk, data.size() - pos);
            Aes256Ctr c(key, 9);
            c.seek(pos);
            auto piece = c.transform({data.data() + pos, take});
            out.insert(out.end(), piece.begin(), piece.end());
            pos += take;
        }
        EXPECT_EQ(out, ct) << "chunk=" << chunk;
    }
}

// ---------------------------------------------------------------------
// DEFLATE / gzip.
// ---------------------------------------------------------------------

class DeflateRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>>
{
};

TEST_P(DeflateRoundTrip, RandomAndCompressible)
{
    const auto [level, size] = GetParam();
    // Random (incompressible) payload.
    auto random = test_data();
    random.resize(std::min(size, random.size()));
    auto z1 = deflateCompress(random, level);
    EXPECT_EQ(deflateDecompress(z1), random);

    // Highly compressible payload.
    std::vector<std::uint8_t> rep(size);
    for (std::size_t i = 0; i < size; ++i)
        rep[i] = static_cast<std::uint8_t>("abcabcabd"[i % 9]);
    auto z2 = deflateCompress(rep, level);
    EXPECT_EQ(deflateDecompress(z2), rep);
    if (level > 0 && size > 500) {
        EXPECT_LT(z2.size(), rep.size() / 2) << "repetitive data should "
                                                "compress well";
    }
}

INSTANTIATE_TEST_SUITE_P(
    LevelsAndSizes, DeflateRoundTrip,
    ::testing::Combine(::testing::Values(0, 1, 6, 9),
                       ::testing::Values(std::size_t(0), 1, 100, 5000,
                                         70000)));

TEST(Deflate, EmptyInput)
{
    const std::vector<std::uint8_t> empty;
    EXPECT_EQ(deflateDecompress(deflateCompress(empty, 6)), empty);
    EXPECT_EQ(deflateDecompress(deflateCompress(empty, 0)), empty);
}

TEST(Deflate, RejectsCorruptStream)
{
    auto z = deflateCompress(test_data(), 6);
    // Reserved block type.
    std::vector<std::uint8_t> bad = {0x07};
    EXPECT_THROW(deflateDecompress(bad), std::runtime_error);
    // Truncation.
    z.resize(z.size() / 2);
    EXPECT_THROW(deflateDecompress(z), std::runtime_error);
}

TEST(Gzip, RoundTripAndIntegrity)
{
    auto data = test_data();
    auto gz = gzipCompress(data);
    EXPECT_EQ(gz[0], 0x1f);
    EXPECT_EQ(gz[1], 0x8b);
    EXPECT_EQ(gzipDecompress(gz), data);

    // Corrupt the stored CRC: decompression must fail.
    gz[gz.size() - 6] ^= 0xff;
    EXPECT_THROW(gzipDecompress(gz), std::runtime_error);
}

TEST(Gzip, RejectsBadHeader)
{
    std::vector<std::uint8_t> junk(32, 0);
    EXPECT_THROW(gzipDecompress(junk), std::runtime_error);
}

// ---------------------------------------------------------------------
// Transform dispatcher.
// ---------------------------------------------------------------------

TEST(Transform, NamesRoundTrip)
{
    for (Function fn : {Function::None, Function::Md5, Function::Sha1,
                        Function::Sha256, Function::Crc32,
                        Function::Aes256, Function::Gzip,
                        Function::Gunzip})
        EXPECT_EQ(functionFromName(functionName(fn)), fn);
}

TEST(Transform, HashPassThroughKeepsPayload)
{
    auto data = test_data();
    auto r = applyTransform(Function::Md5, data);
    EXPECT_EQ(r.data, data);
    EXPECT_EQ(r.digest.size(), 16u);
    EXPECT_TRUE(isPassThrough(Function::Md5));
    EXPECT_FALSE(isPassThrough(Function::Aes256));
}

TEST(Transform, AesRoundTripViaDispatcher)
{
    auto data = test_data();
    std::vector<std::uint8_t> aux(40, 0x11); // 32B key + 8B nonce
    auto enc = applyTransform(Function::Aes256, data, aux);
    EXPECT_NE(enc.data, data);
    auto dec = applyTransform(Function::Aes256, enc.data, aux);
    EXPECT_EQ(dec.data, data);
}

TEST(Transform, GzipGunzipInverse)
{
    auto data = test_data();
    auto z = applyTransform(Function::Gzip, data);
    auto back = applyTransform(Function::Gunzip, z.data);
    EXPECT_EQ(back.data, data);
}

} // namespace
} // namespace ndp
} // namespace dcs
