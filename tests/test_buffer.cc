/**
 * @file
 * Unit tests for the zero-copy buffer layer: Buffer slicing and
 * copy-on-write, BufChain coalescing, and Memory's borrow/adopt
 * snapshot semantics and sparse zero-fill.
 */

#include <cstring>
#include <gtest/gtest.h>

#include "mem/buffer.hh"
#include "mem/memory.hh"
#include "sim/rng.hh"

namespace dcs {
namespace {

std::vector<std::uint8_t>
randomPayload(std::size_t n, std::uint64_t seed)
{
    std::vector<std::uint8_t> v(n);
    Rng rng(seed);
    rng.fill(v.data(), v.size());
    return v;
}

// ---------------------------------------------------------------------
// Buffer
// ---------------------------------------------------------------------

TEST(Buffer, SliceSharesSlabWithoutCopying)
{
    const auto src = randomPayload(4096, 1);
    Buffer b = Buffer::copyOf(src);
    EXPECT_EQ(b.refCount(), 1u);

    const auto before = bufstat::local();
    Buffer s = b.slice(100, 200);
    EXPECT_EQ(bufstat::local().copyOps, before.copyOps);
    EXPECT_EQ(b.refCount(), 2u);
    EXPECT_EQ(s.data(), b.data() + 100);
    EXPECT_EQ(s.size(), 200u);

    s = {};
    EXPECT_EQ(b.refCount(), 1u);
}

TEST(Buffer, MutableDataIsInPlaceWhenUnshared)
{
    Buffer b = Buffer::copyOf(randomPayload(64, 2));
    const std::uint8_t *before = b.data();
    EXPECT_EQ(b.mutableData(), before); // refs == 1: no copy
}

TEST(Buffer, CopyOnWriteProtectsOtherViews)
{
    Buffer b = Buffer::fromVector(std::vector<std::uint8_t>(64, 0xaa));
    Buffer view = b.slice(0, 64);
    ASSERT_TRUE(b.shared());

    b.mutableData()[0] = 0x55; // must copy first
    EXPECT_EQ(view.data()[0], 0xaa);
    EXPECT_EQ(b.data()[0], 0x55);
    EXPECT_EQ(view.refCount(), 1u); // b detached onto a private slab
}

TEST(Buffer, ZeroViewsReadZeroAndCopyOnWrite)
{
    Buffer z = Buffer::zeros(512);
    for (std::size_t i = 0; i < z.size(); ++i)
        ASSERT_EQ(z.data()[i], 0);
    EXPECT_EQ(z.refCount(), 0u); // non-owning
    z.mutableData()[3] = 7;      // copies off the shared zero slab
    EXPECT_EQ(z.data()[3], 7);
    EXPECT_EQ(Buffer::zeros(512).data()[3], 0);
}

TEST(BufChain, AppendCoalescesAdjacentViews)
{
    Buffer b = Buffer::copyOf(randomPayload(4096, 3));
    BufChain c;
    c.append(b.slice(0, 1000));
    c.append(b.slice(1000, 3096)); // contiguous: merges into one seg
    EXPECT_EQ(c.segments().size(), 1u);
    EXPECT_EQ(c.size(), 4096u);

    c.append(b.slice(0, 10)); // not contiguous: new segment
    EXPECT_EQ(c.segments().size(), 2u);
}

TEST(BufChain, SliceAndCopyOutAgreeWithToVector)
{
    const auto src = randomPayload(10000, 4);
    BufChain c;
    for (std::size_t off = 0; off < src.size(); off += 1237)
        c.append(Buffer::copyOf(
            {src.data() + off, std::min<std::size_t>(1237, src.size() - off)}));
    ASSERT_EQ(c.size(), src.size());
    EXPECT_EQ(c.toVector(), src);

    BufChain mid = c.slice(1111, 4567);
    std::vector<std::uint8_t> got(4567);
    mid.copyOut(got.data());
    EXPECT_EQ(0, std::memcmp(got.data(), src.data() + 1111, 4567));

    std::uint8_t probe[97];
    c.copyOut(8888, probe, sizeof(probe));
    EXPECT_EQ(0, std::memcmp(probe, src.data() + 8888, sizeof(probe)));
}

TEST(BufChain, FlattenIsZeroCopyForSingleSegment)
{
    Buffer b = Buffer::copyOf(randomPayload(100, 5));
    BufChain one(b);
    const auto before = bufstat::local();
    Buffer flat = one.flatten();
    EXPECT_EQ(bufstat::local().copyOps, before.copyOps);
    EXPECT_EQ(flat.data(), b.data());
}

// ---------------------------------------------------------------------
// Memory: borrow / adopt / sparse fill
// ---------------------------------------------------------------------

TEST(MemoryZeroCopy, BorrowReturnsViewsAndSnapshots)
{
    Memory m(1 << 20, "m", 12);
    const auto src = randomPayload(8192, 6);
    m.writeBytes(0x1000, src);

    const auto before = bufstat::local();
    BufChain view = m.borrow(0x1000, 8192);
    EXPECT_EQ(bufstat::local().copyOps, before.copyOps); // no copy
    EXPECT_EQ(view.toVector(), src);

    // A later write must not disturb the outstanding snapshot.
    m.writeBytes(0x1000, randomPayload(8192, 7));
    EXPECT_EQ(view.toVector(), src);
}

TEST(MemoryZeroCopy, BorrowOfUntouchedRangeReadsZeroWithoutPages)
{
    Memory m(1 << 20, "m", 12);
    BufChain view = m.borrow(0x4000, 4096);
    EXPECT_EQ(m.pagesAllocated(), 0u);
    const auto v = view.toVector();
    EXPECT_TRUE(std::all_of(v.begin(), v.end(),
                            [](std::uint8_t b) { return b == 0; }));
}

TEST(MemoryZeroCopy, AdoptInstallsAlignedPagesWithoutCopying)
{
    Memory src_mem(1 << 20, "src", 12);
    Memory dst_mem(1 << 20, "dst", 12);
    const auto payload = randomPayload(16384, 8);
    src_mem.writeBytes(0, payload);

    BufChain chain = src_mem.borrow(0, 16384);
    const auto before = bufstat::local();
    dst_mem.adopt(0x8000, chain); // page-aligned: pure adoption
    EXPECT_EQ(bufstat::local().copyOps, before.copyOps);
    EXPECT_EQ(dst_mem.readBytes(0x8000, 16384), payload);
    EXPECT_GE(dst_mem.transfers().bytesAdopted, 16384u);
}

TEST(MemoryZeroCopy, MisalignedAdoptStillWritesCorrectBytes)
{
    Memory m(1 << 20, "m", 12);
    const auto payload = randomPayload(5000, 9);
    m.adopt(0x123, BufChain(Buffer::copyOf(payload)));
    EXPECT_EQ(m.readBytes(0x123, 5000), payload);
}

TEST(MemorySparseFill, ZeroFillOfUntouchedRangeMaterializesNothing)
{
    Memory m(16 << 20, "m", 12);
    ASSERT_EQ(m.pagesAllocated(), 0u);
    m.fill(0, 0, 16 << 20); // whole-memory zero of an untouched range
    EXPECT_EQ(m.pagesAllocated(), 0u);

    std::uint8_t probe[16] = {0xff};
    m.read(1 << 20, probe, sizeof(probe));
    for (std::uint8_t b : probe)
        EXPECT_EQ(b, 0);
}

TEST(MemorySparseFill, ZeroFillStillClearsResidentPages)
{
    Memory m(1 << 20, "m", 12);
    m.writeLe<std::uint64_t>(0x2000, 0xdeadbeefcafef00dull);
    ASSERT_EQ(m.pagesAllocated(), 1u);
    m.fill(0, 0, 1 << 20); // resident page must really be cleared
    EXPECT_EQ(m.readLe<std::uint64_t>(0x2000), 0u);
    // Untouched pages still were not materialized by the fill.
    EXPECT_EQ(m.pagesAllocated(), 1u);
}

TEST(MemorySparseFill, NonZeroFillMaterializes)
{
    Memory m(1 << 20, "m", 12);
    m.fill(0x1000, 0xab, 100);
    EXPECT_EQ(m.pagesAllocated(), 1u);
    EXPECT_EQ(m.readBytes(0x1000, 100),
              std::vector<std::uint8_t>(100, 0xab));
}

} // namespace
} // namespace dcs
