/**
 * @file
 * Baseline datapath tests: functional correctness of the software
 * designs plus the cross-design performance orderings the paper's
 * evaluation rests on.
 */

#include <gtest/gtest.h>

#include "fixtures.hh"

namespace dcs {
namespace {

class BaselineTest : public test::TwoNodeFixture
{
  protected:
    std::unique_ptr<baselines::DataPath>
    makePath(const std::string &design, sys::Node &node)
    {
        if (design == "sw-opt")
            return std::make_unique<baselines::SwOptimizedPath>(node);
        if (design == "sw-p2p")
            return std::make_unique<baselines::SwP2pPath>(node);
        if (design == "dcs-ctrl")
            return std::make_unique<baselines::DcsCtrlPath>(node);
        ADD_FAILURE() << "unknown design " << design;
        return nullptr;
    }
};

class DesignSendTest
    : public BaselineTest,
      public ::testing::WithParamInterface<
          std::tuple<const char *, const char *>>
{
};

TEST_P(DesignSendTest, SendFileDeliversBytesAndDigest)
{
    const auto [design, algo] = GetParam();
    const bool dcs = std::string(design) == "dcs-ctrl";
    bringUp(dcs);
    auto path = makePath(design, nodeA());

    auto content = test::randomBytes(250000, 31);
    const int fd = nodeA().fs().create("obj", content);
    sinkAtB();

    bool done = false;
    baselines::PathResult res;
    path->sendFile(fd, connA->fd, 0, content.size(),
                   ndp::functionFromName(algo), {}, nullptr,
                   [&](const baselines::PathResult &r) {
                       res = r;
                       done = true;
                   });
    eq.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(received, content);
    EXPECT_EQ(res.digest, ndp::makeHash(algo)->oneShot(content));
}

INSTANTIATE_TEST_SUITE_P(
    DesignsAndAlgos, DesignSendTest,
    ::testing::Combine(::testing::Values("sw-opt", "sw-p2p", "dcs-ctrl"),
                       ::testing::Values("md5", "crc32")));

class DesignRecvTest : public BaselineTest,
                       public ::testing::WithParamInterface<const char *>
{
};

TEST_P(DesignRecvTest, ReceiveToFileStoresBytes)
{
    const std::string design = GetParam();
    const bool dcs = design == "dcs-ctrl";
    bringUp(false, dcs);
    auto path = makePath(design, nodeB());

    auto content = test::randomBytes(180000, 32);
    const int fd = nodeB().fs().createEmpty("in", content.size());

    bool stored = false;
    baselines::PathResult res;
    path->receiveToFile(connB->fd, fd, 0, content.size(),
                        ndp::Function::Crc32, {}, nullptr,
                        [&](const baselines::PathResult &r) {
                            res = r;
                            stored = true;
                        });
    eq.run();

    const Addr buf = nodeA().host().allocDma(content.size());
    nodeA().host().dram().write(nodeA().host().dramOffset(buf),
                                content.data(), content.size());
    nodeA().tcp().send(*connA, buf,
                       static_cast<std::uint32_t>(content.size()), 8192,
                       nullptr, {});
    eq.run();

    ASSERT_TRUE(stored);
    EXPECT_EQ(nodeB().fs().readContents(fd), content);
    EXPECT_EQ(res.digest,
              ndp::makeHash("crc32")->oneShot(content));
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, DesignRecvTest,
                         ::testing::Values("sw-opt", "sw-p2p",
                                           "dcs-ctrl"));

/** The orderings the paper's Fig. 11 relies on. */
class OrderingTest : public BaselineTest
{
  protected:
    /** Latency of one sendFile under the given design. */
    Tick
    measure(const std::string &design, ndp::Function fn,
            std::size_t size, host::TracePtr *trace_out = nullptr)
    {
        bringUp(design == "dcs-ctrl");
        received.clear();
        auto path = makePath(design, nodeA());
        auto content = test::randomBytes(size, 33);
        const int fd = nodeA().fs().create("obj", content);
        sinkAtB();
        auto trace = host::makeTrace();
        const Tick start = eq.now();
        Tick end = 0;
        path->sendFile(fd, connA->fd, 0, content.size(), fn, {}, trace,
                       [&](const baselines::PathResult &) {
                           end = eq.now();
                       });
        eq.run();
        EXPECT_EQ(received, content);
        if (trace_out)
            *trace_out = trace;
        return end - start;
    }
};

TEST_F(OrderingTest, DcsBeatsSoftwareOnPlainSend)
{
    for (std::size_t size : {std::size_t(4096), std::size_t(65536)}) {
        const Tick dcs = measure("dcs-ctrl", ndp::Function::None, size);
        const Tick swo = measure("sw-opt", ndp::Function::None, size);
        EXPECT_LT(dcs, swo) << "size " << size;
    }
}

TEST_F(OrderingTest, HashedSendOrderingMatchesPaper)
{
    // SSD->Processing->NIC at the paper's 4 KiB per-command transfer
    // size (§IV-C): sw-opt > sw-p2p > dcs (Fig. 11b shape).
    const Tick dcs = measure("dcs-ctrl", ndp::Function::Md5, 4096);
    const Tick swp = measure("sw-p2p", ndp::Function::Md5, 4096);
    const Tick swo = measure("sw-opt", ndp::Function::Md5, 4096);
    EXPECT_LT(swp, swo) << "P2P removes staging copies";
    EXPECT_LT(dcs, swp) << "HW control path removes software latency";
}

TEST_F(OrderingTest, NdpStreamingTradeoffAtLargeSizes)
{
    // A single 64 KiB stream is MD5-throughput-bound on one NDP unit
    // (0.97 Gbps, Table III), so DCS-ctrl's *total* latency can trail
    // the GPU's — but its software latency stays near zero. This is
    // a faithful consequence of the paper's per-unit figures; the
    // throughput experiments recover the win through unit-level
    // parallelism across streams.
    host::TracePtr dcs_trace, swp_trace;
    const Tick dcs = measure("dcs-ctrl", ndp::Function::Md5, 65536,
                             &dcs_trace);
    (void)dcs;
    measure("sw-p2p", ndp::Function::Md5, 65536, &swp_trace);
    const double dcs_sw = dcs_trace->get(host::LatComp::FileSystem) +
                          dcs_trace->get(host::LatComp::DeviceControl) +
                          dcs_trace->get(host::LatComp::RequestCompletion);
    const double swp_sw = swp_trace->get(host::LatComp::FileSystem) +
                          swp_trace->get(host::LatComp::DeviceControl) +
                          swp_trace->get(host::LatComp::NetworkStack) +
                          swp_trace->get(host::LatComp::GpuControl) +
                          swp_trace->get(host::LatComp::RequestCompletion);
    EXPECT_LT(dcs_sw, 0.5 * swp_sw);
}

TEST_F(OrderingTest, DcsSoftwareComponentsNearZero)
{
    host::TracePtr dcs_trace, swp_trace;
    measure("dcs-ctrl", ndp::Function::Md5, 4096, &dcs_trace);
    measure("sw-p2p", ndp::Function::Md5, 4096, &swp_trace);

    auto software = [](const host::TracePtr &t) {
        using host::LatComp;
        return t->get(LatComp::FileSystem) +
               t->get(LatComp::DeviceControl) +
               t->get(LatComp::NetworkStack) +
               t->get(LatComp::RequestCompletion) +
               t->get(LatComp::GpuControl) + t->get(LatComp::GpuCopy) +
               t->get(LatComp::DataCopy);
    };
    // Paper: DCS-ctrl reduces software latency by 72% (with NDP).
    EXPECT_LT(software(dcs_trace), 0.45 * software(swp_trace));
}

TEST_F(OrderingTest, P2pMovesFewerHostBytes)
{
    bringUp(false);
    auto content = test::randomBytes(1 << 20, 34);
    const int fd = nodeA().fs().create("obj", content);
    sinkAtB();

    auto run_one = [&](baselines::DataPath &p) {
        const std::uint64_t before =
            nodeA().host().bridge().hostDmaBytes();
        bool done = false;
        p.sendFile(fd, connA->fd, 0, content.size(), ndp::Function::Md5,
                   {}, nullptr,
                   [&](const baselines::PathResult &) { done = true; });
        eq.run();
        EXPECT_TRUE(done);
        return nodeA().host().bridge().hostDmaBytes() - before;
    };

    baselines::SwOptimizedPath swo(nodeA());
    baselines::SwP2pPath swp(nodeA());
    const std::uint64_t host_bytes_swo = run_one(swo);
    const std::uint64_t host_bytes_swp = run_one(swp);
    // sw-opt stages through host DRAM at least twice (SSD->host,
    // host->GPU); sw-p2p keeps the payload off the host entirely.
    EXPECT_GT(host_bytes_swo, 2 * content.size());
    EXPECT_LT(host_bytes_swp, content.size() / 4);
}

} // namespace
} // namespace dcs
