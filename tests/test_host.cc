/**
 * @file
 * Host model tests: CPU occupancy accounting and the extent FS.
 */

#include <gtest/gtest.h>

#include "host/cpu.hh"
#include "host/extent_fs.hh"
#include "host/host.hh"
#include "sim/rng.hh"

namespace dcs {
namespace host {
namespace {

TEST(CpuSet, SerializesWorkOnOneCore)
{
    EventQueue eq;
    CpuSet cpu(eq, "cpu", 1);
    Tick t1 = 0, t2 = 0;
    cpu.run(CpuCat::User, microseconds(10), [&] { t1 = eq.now(); });
    cpu.run(CpuCat::User, microseconds(10), [&] { t2 = eq.now(); });
    eq.run();
    EXPECT_EQ(t1, microseconds(10));
    EXPECT_EQ(t2, microseconds(20));
}

TEST(CpuSet, ParallelAcrossCores)
{
    EventQueue eq;
    CpuSet cpu(eq, "cpu", 4);
    int at_10us = 0;
    for (int i = 0; i < 4; ++i)
        cpu.run(CpuCat::User, microseconds(10), [&] {
            if (eq.now() == microseconds(10))
                ++at_10us;
        });
    eq.run();
    EXPECT_EQ(at_10us, 4);
}

TEST(CpuSet, UtilizationAccounting)
{
    EventQueue eq;
    CpuSet cpu(eq, "cpu", 2);
    cpu.beginWindow();
    cpu.run(CpuCat::User, microseconds(10));
    cpu.run(CpuCat::FileSystem, microseconds(30));
    eq.schedule(microseconds(100), [] {});
    eq.run();
    // 40 us busy over 2 cores * 100 us = 20%.
    EXPECT_NEAR(cpu.utilization(), 0.20, 1e-9);
    EXPECT_NEAR(cpu.utilization(CpuCat::User), 0.05, 1e-9);
    EXPECT_NEAR(cpu.busyCores(CpuCat::FileSystem), 0.3, 1e-9);
}

TEST(CpuSet, ContentionDelaysExcessWork)
{
    EventQueue eq;
    CpuSet cpu(eq, "cpu", 2);
    Tick last = 0;
    for (int i = 0; i < 6; ++i)
        cpu.run(CpuCat::User, microseconds(10), [&] { last = eq.now(); });
    eq.run();
    // 6 jobs on 2 cores: 3 waves of 10 us.
    EXPECT_EQ(last, microseconds(30));
}

class FsTest : public ::testing::Test
{
  protected:
    FsTest()
        : fabric(eq, "pcie"), h(eq, "host", fabric),
          ssd(eq, "ssd", 0x20000000), fs(h, ssd)
    {
        fabric.attach(ssd);
    }

    EventQueue eq;
    pcie::Fabric fabric;
    Host h;
    nvme::NvmeSsd ssd;
    ExtentFs fs;
};

TEST_F(FsTest, CreateAndReadBack)
{
    Rng rng(9);
    std::vector<std::uint8_t> content(50000);
    rng.fill(content.data(), content.size());
    const int fd = fs.create("a/b/file.bin", content);
    ASSERT_GE(fd, 0);
    EXPECT_EQ(fs.inode(fd).size, content.size());
    EXPECT_EQ(fs.readContents(fd), content);
}

TEST_F(FsTest, OpenReturnsDistinctFds)
{
    fs.create("x", {});
    const int fd1 = fs.open("x");
    const int fd2 = fs.open("x");
    EXPECT_NE(fd1, fd2);
    EXPECT_TRUE(fs.isOpen(fd1));
    EXPECT_FALSE(fs.isOpen(9999));
    EXPECT_EQ(fs.open("nonexistent"), -1);
}

TEST_F(FsTest, ResolveWalksExtents)
{
    // 20 MiB file: with 8 MiB max runs -> 3 extents.
    const int fd = fs.createEmpty("big", 20ull << 20);
    const auto &ino = fs.inode(fd);
    ASSERT_EQ(ino.extents.size(), 3u);

    // Resolve a range spanning the first extent boundary.
    const std::uint64_t off = (8ull << 20) - 4096;
    auto runs = fs.resolve(fd, off, 8192);
    ASSERT_EQ(runs.size(), 2u);
    EXPECT_EQ(runs[0].blocks, 1u);
    EXPECT_EQ(runs[1].blocks, 1u);
    EXPECT_EQ(runs[0].lba + 1, ino.extents[0].lba + ino.extents[0].blocks);
    EXPECT_EQ(runs[1].lba, ino.extents[1].lba);
}

TEST_F(FsTest, ResolveWholeFileCoversSize)
{
    const int fd = fs.createEmpty("f", 1000000);
    auto runs = fs.resolve(fd, 0, 1000000);
    std::uint64_t blocks = 0;
    for (const auto &r : runs)
        blocks += r.blocks;
    EXPECT_EQ(blocks, (1000000 + 4095) / 4096);
}

TEST_F(FsTest, FilesDoNotOverlap)
{
    const int f1 = fs.createEmpty("one", 1 << 20);
    const int f2 = fs.createEmpty("two", 1 << 20);
    auto r1 = fs.resolve(f1, 0, 1 << 20);
    auto r2 = fs.resolve(f2, 0, 1 << 20);
    for (const auto &a : r1)
        for (const auto &b : r2) {
            const bool disjoint = a.lba + a.blocks <= b.lba ||
                                  b.lba + b.blocks <= a.lba;
            EXPECT_TRUE(disjoint);
        }
}

TEST_F(FsTest, ResolveBeyondEofDies)
{
    const int fd = fs.createEmpty("small", 4096);
    EXPECT_DEATH(fs.resolve(fd, 0, 8192), "beyond eof");
    const int fd2 = fs.createEmpty("small2", 8192);
    EXPECT_DEATH(fs.resolve(fd2, 100, 4096), "unaligned");
}

TEST(Host, DmaAllocatorAlignsAndAdvances)
{
    EventQueue eq;
    pcie::Fabric fabric(eq, "pcie");
    Host h(eq, "host", fabric);
    const Addr a = h.allocDma(100);
    const Addr b = h.allocDma(100, 65536);
    EXPECT_EQ(a % 4096, 0u);
    EXPECT_EQ(b % 65536, 0u);
    EXPECT_GT(b, a);
}

TEST(Host, FdAndMsiVectorsUnique)
{
    EventQueue eq;
    pcie::Fabric fabric(eq, "pcie");
    Host h(eq, "host", fabric);
    EXPECT_NE(h.allocFd(), h.allocFd());
    EXPECT_NE(h.allocMsiVector(), h.allocMsiVector());
}

} // namespace
} // namespace host
} // namespace dcs
