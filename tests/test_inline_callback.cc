/**
 * @file
 * InlineCallback + EventPool: the allocation-free event fast path.
 *
 * Pins the storage contract the event queue relies on: small captures
 * live inline in the event record, oversize captures spill to the
 * thread-local slab pool (never the system heap), move-only captures
 * work, and targets are destroyed exactly once whatever path the
 * callback takes (invoke, reset, move, or plain destruction).
 */
// dcslint: allow-file(callback-lifetime): the test drains the queue in the
// same stack frame, so by-reference captures of locals cannot dangle.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <thread>
#include <utility>

#include "sim/event_pool.hh"
#include "sim/inline_callback.hh"

namespace dcs {
namespace {

/** Counts destructor runs; moved-from instances stop counting. */
struct DtorCounter
{
    int *count;

    explicit DtorCounter(int *c) : count(c) {}
    DtorCounter(DtorCounter &&o) noexcept : count(o.count)
    {
        o.count = nullptr;
    }
    DtorCounter(const DtorCounter &) = delete;
    DtorCounter &operator=(const DtorCounter &) = delete;
    DtorCounter &operator=(DtorCounter &&) = delete;

    ~DtorCounter()
    {
        if (count)
            ++*count;
    }
};

TEST(InlineCallback, SmallCaptureRunsInline)
{
    int fired = 0;
    InlineCallback cb([&fired] { ++fired; });
    ASSERT_TRUE(static_cast<bool>(cb));
    EXPECT_FALSE(cb.spilled());
    cb();
    cb();
    EXPECT_EQ(fired, 2);
}

TEST(InlineCallback, DefaultConstructedIsEmpty)
{
    InlineCallback cb;
    EXPECT_FALSE(static_cast<bool>(cb));
    cb.reset(); // reset of empty is a no-op
    EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(InlineCallback, MoveOnlyCaptureWorks)
{
    auto owned = std::make_unique<int>(41);
    int seen = 0;
    InlineCallback cb([p = std::move(owned), &seen] { seen = *p + 1; });
    EXPECT_FALSE(cb.spilled());
    cb();
    EXPECT_EQ(seen, 42);
}

TEST(InlineCallback, OverInlineCaptureSpillsToPool)
{
    const auto &pool = EventPool::local();
    const std::uint64_t before = pool.outstanding();

    unsigned char big[InlineCallback::kInlineSize + 16];
    std::memset(big, 0xab, sizeof(big));
    int sum = 0;
    {
        InlineCallback cb([big, &sum] { sum = big[0] + big[63]; });
        EXPECT_TRUE(cb.spilled());
        EXPECT_EQ(pool.outstanding(), before + 1);
        cb();
        EXPECT_EQ(sum, 2 * 0xab);
    }
    // Destruction returned the block to the pool's free list.
    EXPECT_EQ(pool.outstanding(), before);
}

TEST(InlineCallback, FitsInlinePredicateMatchesStorage)
{
    struct Small { unsigned char b[InlineCallback::kInlineSize]; };
    struct Big { unsigned char b[InlineCallback::kInlineSize + 1]; };
    static_assert(InlineCallback::fitsInline<Small>);
    static_assert(!InlineCallback::fitsInline<Big>);

    InlineCallback small{[s = Small{}] { (void)s; }};
    InlineCallback big{[s = Big{}] { (void)s; }};
    EXPECT_FALSE(small.spilled());
    EXPECT_TRUE(big.spilled());
}

TEST(InlineCallback, InlineTargetDestroyedExactlyOnce)
{
    int dtors = 0;
    {
        InlineCallback cb([c = DtorCounter(&dtors)] { (void)c; });
        EXPECT_FALSE(cb.spilled());
        EXPECT_EQ(dtors, 0);
    }
    EXPECT_EQ(dtors, 1);
}

TEST(InlineCallback, SpilledTargetDestroyedExactlyOnce)
{
    int dtors = 0;
    unsigned char pad[InlineCallback::kInlineSize];
    std::memset(pad, 0, sizeof(pad));
    {
        InlineCallback cb(
            [c = DtorCounter(&dtors), pad] { (void)c; (void)pad; });
        EXPECT_TRUE(cb.spilled());
        EXPECT_EQ(dtors, 0);
    }
    EXPECT_EQ(dtors, 1);
}

TEST(InlineCallback, MoveTransfersInlineTargetWithoutDoubleDestroy)
{
    int dtors = 0;
    int fired = 0;
    {
        InlineCallback a([c = DtorCounter(&dtors), &fired] {
            (void)c;
            ++fired;
        });
        InlineCallback b(std::move(a));
        EXPECT_FALSE(static_cast<bool>(a));
        ASSERT_TRUE(static_cast<bool>(b));
        b();
        EXPECT_EQ(fired, 1);
        // Relocation destroys only the moved-from shell.
        EXPECT_EQ(dtors, 0);
    }
    EXPECT_EQ(dtors, 1);
}

TEST(InlineCallback, MoveTransfersSpilledBlockWithoutPoolTraffic)
{
    const auto &pool = EventPool::local();
    unsigned char pad[InlineCallback::kInlineSize];
    std::memset(pad, 0, sizeof(pad));
    int fired = 0;

    InlineCallback a([pad, &fired] { (void)pad; ++fired; });
    ASSERT_TRUE(a.spilled());
    const std::uint64_t outstanding = pool.outstanding();

    InlineCallback b(std::move(a));
    // The pool block just changes owners: no allocate, no free.
    EXPECT_EQ(pool.outstanding(), outstanding);
    EXPECT_FALSE(static_cast<bool>(a));
    b();
    EXPECT_EQ(fired, 1);
    b.reset();
    EXPECT_EQ(pool.outstanding(), outstanding - 1);
}

TEST(InlineCallback, MoveAssignDestroysPreviousTarget)
{
    int first = 0, second = 0;
    InlineCallback cb([c = DtorCounter(&first)] { (void)c; });
    cb = InlineCallback([c = DtorCounter(&second)] { (void)c; });
    EXPECT_EQ(first, 1);
    EXPECT_EQ(second, 0);
    cb.reset();
    EXPECT_EQ(second, 1);
}

TEST(EventPool, FreedBlockIsReusedLifo)
{
    EventPool &pool = EventPool::local();
    void *a = pool.allocate(64);
    pool.deallocate(a, 64);
    void *b = pool.allocate(64);
    // Size-class free lists are LIFO: the freshest free block comes
    // back first, keeping the schedule->fire path cache-hot.
    EXPECT_EQ(a, b);
    pool.deallocate(b, 64);
}

TEST(EventPool, DistinctSizeClassesDoNotAlias)
{
    EventPool &pool = EventPool::local();
    void *a = pool.allocate(64);
    void *b = pool.allocate(128);
    EXPECT_NE(a, b);
    pool.deallocate(a, 64);
    pool.deallocate(b, 128);
}

TEST(EventPool, OversizeFallsBackAndIsTracked)
{
    EventPool &pool = EventPool::local();
    const std::uint64_t before = pool.oversizeAllocs();
    void *p = pool.allocate(EventPool::kLargestClass + 1);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(pool.oversizeAllocs(), before + 1);
    pool.deallocate(p, EventPool::kLargestClass + 1);
    EXPECT_EQ(pool.allocated(), pool.freed() + pool.outstanding());
}

TEST(EventPool, AccountingBalancesAcrossChurn)
{
    EventPool &pool = EventPool::local();
    const std::uint64_t outstanding = pool.outstanding();
    std::vector<void *> blocks;
    for (int i = 0; i < 1000; ++i)
        blocks.push_back(pool.allocate(256));
    EXPECT_EQ(pool.outstanding(), outstanding + 1000);
    for (void *p : blocks)
        pool.deallocate(p, 256);
    EXPECT_EQ(pool.outstanding(), outstanding);
}

TEST(EventPool, CrossThreadUseFailsFastWhenChecked)
{
    // The pool is strictly thread-local; a cross-thread deallocate
    // would splice a block from one thread's slab into another's
    // free list. DCS_CHECKED builds must catch it at the call, not
    // as a leak report at thread exit.
    if (!kCheckedBuild)
        GTEST_SKIP() << "owner enforcement is DCS_CHECKED-only";
    EventPool &pool = EventPool::local();
    void *p = pool.allocate(64);
    EXPECT_DEATH(std::thread([&] { pool.deallocate(p, 64); }).join(),
                 "owner");
    pool.deallocate(p, 64);
}

} // namespace
} // namespace dcs
