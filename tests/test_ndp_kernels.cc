/**
 * @file
 * Golden-vector gate for the optimized NDP kernels.
 *
 * The slice-by-8 CRC32, T-table AES-256 and single-padded-block hash
 * finalizers must stay bit-identical to the published reference
 * vectors (RFC 1321, FIPS 180, FIPS 197, SP 800-38A, IEEE 802.3,
 * RFC 1952) and to their own output under arbitrary segmentation —
 * the zero-copy data plane feeds them scatter-gather chains, never a
 * single contiguous span.
 */

#include <cstring>
#include <gtest/gtest.h>

#include "mem/buffer.hh"
#include "ndp/aes256.hh"
#include "ndp/crc32.hh"
#include "ndp/deflate.hh"
#include "ndp/hash.hh"
#include "ndp/md5.hh"
#include "ndp/sha1.hh"
#include "ndp/sha256.hh"
#include "net/packet.hh"
#include "sim/rng.hh"

namespace dcs {
namespace ndp {
namespace {

std::span<const std::uint8_t>
bytes(const char *s)
{
    return {reinterpret_cast<const std::uint8_t *>(s), std::strlen(s)};
}

std::vector<std::uint8_t>
randomPayload(std::size_t n, std::uint64_t seed)
{
    std::vector<std::uint8_t> v(n);
    Rng rng(seed);
    rng.fill(v.data(), v.size());
    return v;
}

// ---------------------------------------------------------------------
// Hash reference vectors (gate the block-wise finish() rewrite).
// ---------------------------------------------------------------------

TEST(NdpKernels, Md5Rfc1321)
{
    Md5 h;
    EXPECT_EQ(toHex(h.oneShot(bytes(""))),
              "d41d8cd98f00b204e9800998ecf8427e");
    EXPECT_EQ(toHex(h.oneShot(bytes("abc"))),
              "900150983cd24fb0d6963f7d28e17f72");
    EXPECT_EQ(toHex(h.oneShot(bytes(
                  "12345678901234567890123456789012345678901234567890"
                  "123456789012345678901234567890"))),
              "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(NdpKernels, Sha1Fips180)
{
    Sha1 h;
    EXPECT_EQ(toHex(h.oneShot(bytes("abc"))),
              "a9993e364706816aba3e25717850c26c9cd0d89d");
    EXPECT_EQ(toHex(h.oneShot(bytes(""))),
              "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    EXPECT_EQ(toHex(h.oneShot(bytes(
                  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnop"
                  "nopq"))),
              "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(NdpKernels, Sha256Fips180)
{
    Sha256 h;
    EXPECT_EQ(toHex(h.oneShot(bytes("abc"))),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff"
              "61f20015ad");
    EXPECT_EQ(toHex(h.oneShot(bytes(""))),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca49599"
              "1b7852b855");
    EXPECT_EQ(toHex(h.oneShot(bytes(
                  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnop"
                  "nopq"))),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd"
              "419db06c1");
}

// One million 'a's (FIPS 180-2 long-message vector): exercises the
// pure block loop plus the fill == 0 padding branch (120 - 0 is
// wrong there; 56 - 0 is right).
TEST(NdpKernels, MillionAsLongVector)
{
    const std::vector<std::uint8_t> as(1000000, 'a');
    Sha256 sha256;
    EXPECT_EQ(toHex(sha256.oneShot(as)),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39"
              "ccc7112cd0");
    Sha1 sha1;
    EXPECT_EQ(toHex(sha1.oneShot(as)),
              "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    Md5 md5;
    EXPECT_EQ(toHex(md5.oneShot(as)),
              "7707d6ae4e027c70eea2a935c2296f21");
}

// Every message length around the padding boundaries (55, 56, 57, 63,
// 64, 65, 119, 120) must finish identically whether fed whole or in
// awkward fragments.
TEST(NdpKernels, PaddingBoundariesAndSegmentation)
{
    const auto msg = randomPayload(130, 41);
    for (const char *alg : {"md5", "sha1", "sha256", "crc32"}) {
        auto whole = makeHash(alg);
        auto pieces = makeHash(alg);
        for (std::size_t n :
             {0ul, 1ul, 55ul, 56ul, 57ul, 63ul, 64ul, 65ul, 119ul,
              120ul, 130ul}) {
            const std::span<const std::uint8_t> m{msg.data(), n};
            whole->reset();
            whole->update(m);
            const auto d_whole = whole->finish();

            pieces->reset();
            std::size_t off = 0, step = 1;
            while (off < n) {
                const std::size_t take = std::min(step, n - off);
                pieces->update(m.subspan(off, take));
                off += take;
                step = step * 3 + 1; // 1, 4, 13, 40, ... fragments
            }
            EXPECT_EQ(pieces->finish(), d_whole)
                << alg << " len " << n;
        }
    }
}

// ---------------------------------------------------------------------
// CRC32 (gate the slice-by-8 rewrite).
// ---------------------------------------------------------------------

TEST(NdpKernels, Crc32KnownValues)
{
    // The IEEE 802.3 check value.
    EXPECT_EQ(Crc32::compute(bytes("123456789")), 0xCBF43926u);
    EXPECT_EQ(Crc32::compute(bytes("")), 0x00000000u);
    EXPECT_EQ(Crc32::compute(bytes("a")), 0xE8B7BE43u);
    EXPECT_EQ(Crc32::compute(bytes("abc")), 0x352441C2u);
    EXPECT_EQ(Crc32::compute(bytes(
                  "The quick brown fox jumps over the lazy dog")),
              0x414FA339u);
}

// Slice-by-8 must agree with the bit-serial definition for all
// lengths 0..64 (covers head/8-byte/tail path combinations).
TEST(NdpKernels, Crc32MatchesBitSerial)
{
    auto bitSerial = [](std::span<const std::uint8_t> d) {
        std::uint32_t c = 0xffffffffu;
        for (std::uint8_t byte : d) {
            c ^= byte;
            for (int k = 0; k < 8; ++k)
                c = (c >> 1) ^ (0xEDB88320u & (0u - (c & 1)));
        }
        return c ^ 0xffffffffu;
    };
    const auto msg = randomPayload(64, 42);
    for (std::size_t n = 0; n <= msg.size(); ++n) {
        const std::span<const std::uint8_t> m{msg.data(), n};
        EXPECT_EQ(Crc32::compute(m), bitSerial(m)) << "len " << n;
    }
    // Misaligned starts hit the byte-at-a-time head path.
    for (std::size_t off = 1; off < 8; ++off) {
        const std::span<const std::uint8_t> m{msg.data() + off,
                                              msg.size() - off};
        EXPECT_EQ(Crc32::compute(m), bitSerial(m)) << "off " << off;
    }
}

// ---------------------------------------------------------------------
// AES-256 (gate the T-table rewrite).
// ---------------------------------------------------------------------

TEST(NdpKernels, Aes256Fips197Block)
{
    // FIPS 197 Appendix C.3.
    std::uint8_t key[32], block[16];
    for (int i = 0; i < 32; ++i)
        key[i] = static_cast<std::uint8_t>(i);
    for (int i = 0; i < 16; ++i)
        block[i] = static_cast<std::uint8_t>(i * 0x11);
    const std::uint8_t want[16] = {0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67,
                                   0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90,
                                   0x4b, 0x49, 0x60, 0x89};
    Aes256 aes({key, 32});
    aes.encryptBlock(block);
    EXPECT_EQ(std::memcmp(block, want, 16), 0);
}

TEST(NdpKernels, Aes256CtrRoundTripAndSegmentation)
{
    const auto key = randomPayload(32, 7);
    const auto plain = randomPayload(100000, 8);

    Aes256Ctr enc(key, 0x1122334455667788ull);
    const auto cipher = enc.transform(plain);
    ASSERT_EQ(cipher.size(), plain.size());
    EXPECT_NE(cipher, plain);

    // CTR is an involution under the same key/nonce.
    Aes256Ctr dec(key, 0x1122334455667788ull);
    EXPECT_EQ(dec.transform(cipher), plain);

    // transformInto across ragged segments must carry the keystream
    // and match the contiguous transform bit-for-bit.
    Aes256Ctr seg(key, 0x1122334455667788ull);
    std::vector<std::uint8_t> out(plain.size());
    std::size_t off = 0, step = 3;
    while (off < plain.size()) {
        const std::size_t take = std::min(step, plain.size() - off);
        seg.transformInto({plain.data() + off, take}, out.data() + off);
        off += take;
        step = step * 2 + 5; // 3, 11, 27, 59, ... fragments
    }
    EXPECT_EQ(out, cipher);

    // seek() positions the keystream mid-stream.
    Aes256Ctr sought(key, 0x1122334455667788ull);
    sought.seek(4321);
    std::vector<std::uint8_t> tail(plain.size() - 4321);
    sought.transformInto({plain.data() + 4321, tail.size()},
                         tail.data());
    EXPECT_TRUE(std::equal(tail.begin(), tail.end(),
                           cipher.begin() + 4321));
}

// ---------------------------------------------------------------------
// gzip (rides on CRC32; round-trips must keep working).
// ---------------------------------------------------------------------

TEST(NdpKernels, GzipRoundTrip)
{
    // Compressible input.
    std::vector<std::uint8_t> text;
    for (int i = 0; i < 2000; ++i) {
        const auto s = bytes("the same phrase repeats endlessly; ");
        text.insert(text.end(), s.begin(), s.end());
    }
    const auto packed = gzipCompress(text);
    EXPECT_LT(packed.size(), text.size() / 2);
    EXPECT_EQ(gzipDecompress(packed), text);

    // Incompressible input (random bytes) must still round-trip.
    const auto noise = randomPayload(65536, 99);
    const auto stored = gzipCompress(noise);
    EXPECT_EQ(gzipDecompress(stored), noise);

    // Empty input.
    const auto empty = gzipCompress({});
    EXPECT_TRUE(gzipDecompress(empty).empty());
}

// ---------------------------------------------------------------------
// Chain-fed checksums: the zero-copy frame path feeds the TCP
// checksum a scatter-gather chain; it must equal the contiguous sum.
// ---------------------------------------------------------------------

TEST(NdpKernels, InetChecksumChainMatchesContiguous)
{
    const auto msg = randomPayload(9001, 4);
    for (std::size_t n : {0ul, 1ul, 2ul, 3ul, 1499ul, 9000ul, 9001ul}) {
        const std::span<const std::uint8_t> m{msg.data(), n};
        const std::uint16_t want = net::inetChecksum(m);

        // Ragged odd-length segments exercise the parity carry.
        BufChain chain;
        std::size_t off = 0, step = 1;
        while (off < n) {
            const std::size_t take = std::min(step, n - off);
            chain.append(Buffer::copyOf(m.subspan(off, take)));
            off += take;
            step = (step * 2 + 1) % 613 + 1;
        }
        EXPECT_EQ(net::inetChecksum(chain), want) << "len " << n;
    }
}

} // namespace
} // namespace ndp
} // namespace dcs
