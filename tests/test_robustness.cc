/**
 * @file
 * Robustness and failure-injection tests: malformed inputs must be
 * rejected loudly (never silently corrupted), permission checks must
 * hold, and fuzz-style corrupted wire/compressed data must be caught
 * by the integrity machinery rather than crash anything.
 */

#include <gtest/gtest.h>

#include "fixtures.hh"
#include "ndp/deflate.hh"
#include "net/packet.hh"

namespace dcs {
namespace {

// ---------------------------------------------------------------------
// Codec robustness under random corruption.
// ---------------------------------------------------------------------

TEST(Fuzz, DeflateNeverCrashesOnCorruptedStreams)
{
    Rng rng(101);
    auto data = test::randomBytes(20000, 102);
    auto z = ndp::deflateCompress(data, 6);
    int rejected = 0, survived = 0;
    for (int trial = 0; trial < 200; ++trial) {
        auto bad = z;
        // Flip 1-4 random bytes.
        const int flips = 1 + static_cast<int>(rng.uniformInt(0, 3));
        for (int f = 0; f < flips; ++f)
            bad[rng.uniformInt(0, bad.size() - 1)] ^=
                static_cast<std::uint8_t>(1 + rng.uniformInt(0, 254));
        try {
            auto out = ndp::deflateDecompress(bad);
            // Decoding may succeed with wrong output — that is what
            // the gzip CRC layer is for. It must not crash or hang.
            ++survived;
        } catch (const std::runtime_error &) {
            ++rejected;
        }
    }
    EXPECT_EQ(rejected + survived, 200);
    EXPECT_GT(rejected, 0) << "some corruptions must be structural";
}

TEST(Fuzz, GzipCrcCatchesPayloadCorruption)
{
    Rng rng(103);
    auto data = test::randomBytes(30000, 104);
    auto gz = ndp::gzipCompress(data);
    int caught = 0;
    const int trials = 100;
    for (int trial = 0; trial < trials; ++trial) {
        auto bad = gz;
        bad[10 + rng.uniformInt(0, bad.size() - 19)] ^= 0x01;
        try {
            auto out = ndp::gzipDecompress(bad);
            if (out != data)
                ADD_FAILURE() << "corrupted stream decoded to wrong "
                                 "bytes without an error";
        } catch (const std::runtime_error &) {
            ++caught;
        }
    }
    EXPECT_EQ(caught, trials);
}

TEST(Fuzz, FrameParserRejectsRandomGarbage)
{
    Rng rng(105);
    for (int trial = 0; trial < 300; ++trial) {
        std::vector<std::uint8_t> junk(
            rng.uniformInt(0, 2000));
        rng.fill(junk.data(), junk.size());
        // Must never crash; almost surely rejects (checksums).
        auto parsed = net::parseFrame(junk);
        if (parsed) {
            EXPECT_LE(parsed->payloadOffset + parsed->payloadLen,
                      junk.size());
        }
    }
}

TEST(Fuzz, FrameParserRejectsTruncation)
{
    auto payload = test::randomBytes(1000, 106);
    net::FlowInfo flow;
    flow.srcPort = 1;
    flow.dstPort = 2;
    auto frame = net::buildFrame(flow, payload, 3);
    for (std::size_t cut : {std::size_t(0), std::size_t(13),
                            std::size_t(53), frame.size() - 1}) {
        std::vector<std::uint8_t> t(frame.begin(),
                                    frame.begin() +
                                        static_cast<long>(cut));
        EXPECT_FALSE(net::parseFrame(t).has_value()) << "cut=" << cut;
    }
}

// ---------------------------------------------------------------------
// Driver-level failure injection.
// ---------------------------------------------------------------------

class DriverFailureTest : public test::TwoNodeFixture
{
};

TEST_F(DriverFailureTest, UnreadableSourceRejected)
{
    bringUp(true);
    auto content = test::randomBytes(4096, 107);
    const int fd = nodeA().fs().create("protected", content);
    nodeA().fs().inode(fd).readable = false;

    EXPECT_EXIT(
        {
            nodeA().hdcLib().sendFile(fd, connA->fd, 0, 4096,
                                      ndp::Function::None, {}, false,
                                      nullptr,
                                      [](const hdclib::D2dResult &) {});
            eq.run();
        },
        ::testing::ExitedWithCode(1), "not readable");
}

TEST_F(DriverFailureTest, UnwritableDestinationRejected)
{
    bringUp(false, true);
    const int fd = nodeB().fs().createEmpty("readonly", 4096);
    nodeB().fs().inode(fd).writable = false;
    EXPECT_EXIT(
        {
            nodeB().hdcLib().recvFile(connB->fd, fd, 0, 4096,
                                      ndp::Function::None, {}, false,
                                      nullptr,
                                      [](const hdclib::D2dResult &) {});
            eq.run();
        },
        ::testing::ExitedWithCode(1), "not writable");
}

TEST_F(DriverFailureTest, UnknownSocketRejected)
{
    bringUp(true);
    auto content = test::randomBytes(4096, 108);
    const int fd = nodeA().fs().create("f", content);
    EXPECT_EXIT(
        {
            nodeA().hdcLib().sendFile(fd, /*bogus sock*/ 424242, 0, 4096,
                                      ndp::Function::None, {}, false,
                                      nullptr,
                                      [](const hdclib::D2dResult &) {});
            eq.run();
        },
        ::testing::ExitedWithCode(1), "not attachable");
}

TEST_F(DriverFailureTest, UnpermittedConnectionRejected)
{
    bringUp(true);
    auto content = test::randomBytes(4096, 109);
    const int fd = nodeA().fs().create("f", content);
    connA->permitted = false; // security model: descriptor check
    EXPECT_EXIT(
        {
            nodeA().hdcLib().sendFile(fd, connA->fd, 0, 4096,
                                      ndp::Function::None, {}, false,
                                      nullptr,
                                      [](const hdclib::D2dResult &) {});
            eq.run();
        },
        ::testing::ExitedWithCode(1), "not attachable");
}

TEST_F(DriverFailureTest, GzipToSsdRejectedByEngine)
{
    // Variable-length output cannot target block storage (DESIGN.md).
    bringUp(true);
    auto content = test::randomBytes(8192, 110);
    const int src = nodeA().fs().create("src", content);
    const int dst = nodeA().fs().createEmpty("dst", content.size());
    EXPECT_DEATH(
        {
            nodeA().hdcLib().copyFile(src, dst, 0, 0, content.size(),
                                      ndp::Function::Gzip, {}, false, 0,
                                      0, nullptr,
                                      [](const hdclib::D2dResult &) {});
            eq.run();
        },
        "not supported");
}

TEST_F(DriverFailureTest, AesWithoutKeyMaterialDies)
{
    bringUp(true);
    auto content = test::randomBytes(4096, 111);
    const int fd = nodeA().fs().create("f", content);
    sinkAtB();
    EXPECT_DEATH(
        {
            nodeA().hdcLib().sendFile(fd, connA->fd, 0, 4096,
                                      ndp::Function::Aes256,
                                      /*aux=*/{}, false, nullptr,
                                      [](const hdclib::D2dResult &) {});
            eq.run();
        },
        "key material");
}

// ---------------------------------------------------------------------
// Wire-level integrity: corrupted frames never reach applications.
// ---------------------------------------------------------------------

TEST_F(DriverFailureTest, CorruptedFrameIsDroppedNotDelivered)
{
    bringUp(false);
    // Build a frame towards B, corrupt the payload, inject directly.
    auto payload = test::randomBytes(1000, 112);
    auto frame = net::buildFrame(connA->out, payload, 9);
    frame[frame.size() - 2] ^= 0xff;

    std::size_t delivered = 0;
    connB->onPayload = [&](std::uint32_t, BufChain p) {
        delivered += p.size();
    };
    nodeB().nic().receiveFrame(frame);
    eq.run();
    EXPECT_EQ(delivered, 0u) << "TCP checksum must reject the frame";
}

} // namespace
} // namespace dcs
