/**
 * @file
 * Property-style sweeps across the stack: randomized sizes, offsets
 * and functions must always preserve bytes and digests end-to-end;
 * conservation laws (bytes in == bytes out, buffers returned) must
 * hold after arbitrary workloads.
 */

#include <gtest/gtest.h>

#include "fixtures.hh"

namespace dcs {
namespace {

/** Randomized end-to-end transfers, seeded per test-case index. */
class RandomizedE2e : public test::TwoNodeFixture,
                      public ::testing::WithParamInterface<int>
{
};

TEST_P(RandomizedE2e, RandomSizesAndFunctionsPreserveBytes)
{
    const int case_idx = GetParam();
    Rng rng(9000 + static_cast<std::uint64_t>(case_idx));
    bringUp(true);
    sinkAtB();

    // 3 transfers per case with random sizes (1 B .. 600 KiB) and a
    // random integrity function.
    const char *algos[] = {"md5", "sha1", "sha256", "crc32"};
    std::vector<std::vector<std::uint8_t>> sent;
    int done = 0;
    for (int i = 0; i < 3; ++i) {
        const std::uint64_t size = 1 + rng.uniformInt(0, 600 * 1024);
        std::vector<std::uint8_t> content(size);
        rng.fill(content.data(), size);
        const int fd = nodeA().fs().create(
            "r" + std::to_string(case_idx) + "_" + std::to_string(i),
            content);
        const char *algo = algos[rng.uniformInt(0, 3)];
        auto want = ndp::makeHash(algo)->oneShot(content);
        sent.push_back(content);
        nodeA().hdcLib().sendFile(
            fd, connA->fd, 0, size, ndp::functionFromName(algo), {},
            true, nullptr,
            [&, want](const hdclib::D2dResult &r) {
                EXPECT_EQ(r.digest, want);
                ++done;
            });
    }
    eq.run();
    EXPECT_EQ(done, 3);

    std::vector<std::uint8_t> all;
    for (const auto &c : sent)
        all.insert(all.end(), c.begin(), c.end());
    EXPECT_EQ(received, all);

    // Conservation: every intermediate buffer returned.
    EXPECT_EQ(nodeA().engine().bufferAllocator().usedChunks(), 0u);
    EXPECT_EQ(nodeA().engine().scoreboard().entriesLive(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Cases, RandomizedE2e, ::testing::Range(0, 8));

/** Offsets: partial-file sends must extract exactly the window. */
class OffsetSweep : public test::TwoNodeFixture,
                    public ::testing::WithParamInterface<
                        std::pair<std::uint64_t, std::uint64_t>>
{
};

TEST_P(OffsetSweep, PartialSendsExtractTheWindow)
{
    const auto [offset, len] = GetParam();
    bringUp(true);
    sinkAtB();
    auto content = test::randomBytes(512 * 1024, 91);
    const int fd = nodeA().fs().create("windowed", content);

    bool done = false;
    nodeA().hdcLib().sendFile(fd, connA->fd, offset, len,
                              ndp::Function::None, {}, false, nullptr,
                              [&](const hdclib::D2dResult &) {
                                  done = true;
                              });
    eq.run();
    ASSERT_TRUE(done);
    const std::vector<std::uint8_t> want(
        content.begin() + static_cast<long>(offset),
        content.begin() + static_cast<long>(offset + len));
    EXPECT_EQ(received, want);
}

INSTANTIATE_TEST_SUITE_P(
    Windows, OffsetSweep,
    ::testing::Values(std::pair<std::uint64_t, std::uint64_t>{0, 4096},
                      std::pair<std::uint64_t, std::uint64_t>{4096,
                                                              65536},
                      std::pair<std::uint64_t, std::uint64_t>{65536,
                                                              131072},
                      std::pair<std::uint64_t, std::uint64_t>{258048,
                                                              200000}));

/** Fabric conservation: P2P bytes >= payload for DCS transfers. */
TEST(Conservation, DcsPayloadNeverTransitsHost)
{
    EventQueue eq;
    sys::TwoNodeSystem sysm(eq);
    bool a = false, b = false;
    sysm.nodeA().bringUpDcs([&] { a = true; });
    sysm.nodeB().bringUpHostStack([&] { b = true; });
    eq.run();
    ASSERT_TRUE(a && b);

    auto [ca, cb] = host::establishPair(sysm.nodeA().tcp(),
                                        sysm.nodeB().tcp());
    cb->onPayload = [](std::uint32_t, BufChain) {};

    Rng rng(92);
    const std::uint64_t total = 3 << 20;
    std::vector<std::uint8_t> content(total);
    rng.fill(content.data(), total);
    const int fd = sysm.nodeA().fs().create("f", content);

    const std::uint64_t host_before =
        sysm.nodeA().host().bridge().hostDmaBytes();
    bool done = false;
    sysm.nodeA().hdcLib().sendFile(fd, ca->fd, 0, total,
                                   ndp::Function::None, {}, false,
                                   nullptr,
                                   [&](const hdclib::D2dResult &) {
                                       done = true;
                                   });
    eq.run();
    ASSERT_TRUE(done);
    // SSD->HDC and HDC->NIC both count: at least 2x payload P2P.
    EXPECT_GE(sysm.nodeA().fabric().p2pBytes(), 2 * total);
    EXPECT_LT(sysm.nodeA().host().bridge().hostDmaBytes() - host_before,
              16384u);
    // And the NIC really carried the payload.
    EXPECT_GE(sysm.nodeA().nic().payloadBytesSent(), total);
}

/** Determinism: identical seeds give identical simulated schedules. */
TEST(Determinism, RepeatRunsProduceIdenticalTiming)
{
    auto run_once = [] {
        EventQueue eq;
        sys::TwoNodeSystem sysm(eq);
        sysm.nodeA().bringUpDcs([] {});
        sysm.nodeB().bringUpHostStack([] {});
        eq.run();
        auto [ca, cb] = host::establishPair(sysm.nodeA().tcp(),
                                            sysm.nodeB().tcp());
        cb->onPayload = [](std::uint32_t, BufChain) {};
        auto content = test::randomBytes(333333, 93);
        const int fd = sysm.nodeA().fs().create("f", content);
        Tick end = 0;
        sysm.nodeA().hdcLib().sendFile(fd, ca->fd, 0, content.size(),
                                       ndp::Function::Sha1, {}, true,
                                       nullptr,
                                       [&](const hdclib::D2dResult &) {
                                           end = eq.now();
                                       });
        eq.run();
        return std::pair<Tick, std::uint64_t>{end, eq.executed()};
    };
    const auto first = run_once();
    const auto second = run_once();
    EXPECT_EQ(first.first, second.first);
    EXPECT_EQ(first.second, second.second);
}

} // namespace
} // namespace dcs
