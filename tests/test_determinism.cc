/**
 * @file
 * Determinism auditor: every audited workload must produce a
 * bit-identical (tick, event-id, label) firing stream across repeated
 * runs. This is the property all simulator results rest on — identical
 * command flows, boundary-crossing counts, and latencies between runs.
 */

#include <gtest/gtest.h>

#include "fixtures.hh"
#include "workload/dropbox_mix.hh"
#include "workload/experiment.hh"
#include "workload/hdfs.hh"
#include "workload/swift.hh"

namespace dcs {
namespace {

/** One run's event-trace fingerprint. */
struct RunDigest
{
    std::uint64_t digest = 0;
    std::uint64_t events = 0;
    Tick end = 0;

    bool
    operator==(const RunDigest &o) const
    {
        return digest == o.digest && events == o.events && end == o.end;
    }
};

/** Fig. 11 pipeline: one sendFile with @p fn under @p design. */
RunDigest
pipelineDigest(workload::Design design, ndp::Function fn)
{
    workload::Testbed tb(design);
    TraceHasher th;
    th.attach(tb.eq());

    auto [ca, cb] = tb.connect();
    cb->onPayload = [](std::uint32_t, BufChain) {};

    const auto content = test::randomBytes(256 * 1024, 7);
    const int fd = tb.nodeA().fs().create("obj", content);
    std::vector<std::uint8_t> aux;
    if (fn == ndp::Function::Aes256)
        aux.assign(40, 0x5c);

    auto trace = host::makeTrace();
    bool done = false;
    tb.pathA().sendFile(fd, ca->fd, 0, content.size(), fn, aux, trace,
                        [&](const baselines::PathResult &) {
                            done = true;
                        });
    tb.eq().run();
    EXPECT_TRUE(done);
    return {th.digest(), th.events(), tb.eq().now()};
}

/** Swift object-store run under sw-opt or dcs-ctrl. */
RunDigest
swiftDigest(bool dcs, std::uint64_t seed)
{
    EventQueue eq;
    TraceHasher th;
    th.attach(eq);

    sys::TwoNodeSystem sys(eq);
    bool a_up = false, b_up = false;
    if (dcs)
        sys.nodeA().bringUpDcs([&] { a_up = true; });
    else
        sys.nodeA().bringUpHostStack([&] { a_up = true; });
    sys.nodeB().bringUpHostStack([&] { b_up = true; });
    eq.run();
    EXPECT_TRUE(a_up && b_up);

    std::unique_ptr<baselines::DataPath> path;
    if (dcs)
        path = std::make_unique<baselines::DcsCtrlPath>(sys.nodeA());
    else
        path = std::make_unique<baselines::SwOptimizedPath>(sys.nodeA());

    workload::SwiftParams p;
    p.seed = seed;
    p.connections = 6;
    p.preloadObjects = 12;
    p.offeredGbps = 1.5;
    p.warmup = milliseconds(2);
    p.measure = milliseconds(10);
    p.mix.sizeBuckets = {{16 * 1024, 0.5}, {128 * 1024, 0.5}};

    workload::SwiftWorkload wl(eq, sys.nodeA(), sys.nodeB(), *path, p);
    bool fin = false;
    wl.run([&](const workload::SwiftStats &) { fin = true; });
    eq.run();
    EXPECT_TRUE(fin);
    return {th.digest(), th.events(), eq.now()};
}

/** HDFS balancer run, both sides under the chosen design. */
RunDigest
hdfsDigest(bool dcs)
{
    EventQueue eq;
    TraceHasher th;
    th.attach(eq);

    sys::TwoNodeSystem sys(eq);
    bool a_up = false, b_up = false;
    if (dcs) {
        sys.nodeA().bringUpDcs([&] { a_up = true; });
        sys.nodeB().bringUpDcs([&] { b_up = true; });
    } else {
        sys.nodeA().bringUpHostStack([&] { a_up = true; });
        sys.nodeB().bringUpHostStack([&] { b_up = true; });
    }
    eq.run();
    EXPECT_TRUE(a_up && b_up);

    auto make = [dcs](sys::Node &n) -> std::unique_ptr<baselines::DataPath> {
        if (dcs)
            return std::make_unique<baselines::DcsCtrlPath>(n);
        return std::make_unique<baselines::SwOptimizedPath>(n);
    };
    auto pa = make(sys.nodeA());
    auto pb = make(sys.nodeB());

    workload::HdfsParams p;
    p.blocks = 4;
    p.streams = 2;
    p.blockBytes = 1ull << 20;

    workload::HdfsBalancer wl(eq, sys.nodeA(), sys.nodeB(), *pa, *pb, p);
    bool fin = false;
    wl.run([&](const workload::HdfsStats &) { fin = true; });
    eq.run();
    EXPECT_TRUE(fin);
    return {th.digest(), th.events(), eq.now()};
}

/** Request-mix sampling stream (sizes and GET/PUT decisions). */
RunDigest
mixDigest(std::uint64_t seed)
{
    Rng rng(seed);
    workload::MixParams p;
    TraceHasher th;
    for (std::uint64_t i = 0; i < 5000; ++i) {
        const std::uint64_t size = workload::sampleSize(rng, p);
        const bool get = workload::sampleIsGet(rng, p);
        th.observe(i, size, get ? "get" : "put");
    }
    return {th.digest(), th.events(), 0};
}

TEST(Determinism, Fig11aSsdToNicPipeline)
{
    const auto first = pipelineDigest(workload::Design::DcsCtrl,
                                      ndp::Function::None);
    const auto second = pipelineDigest(workload::Design::DcsCtrl,
                                       ndp::Function::None);
    EXPECT_GT(first.events, 0u);
    EXPECT_TRUE(first == second)
        << "fig11a event traces diverged between runs";
}

TEST(Determinism, Fig11bSsdProcNicPipeline)
{
    const auto first = pipelineDigest(workload::Design::DcsCtrl,
                                      ndp::Function::Crc32);
    const auto second = pipelineDigest(workload::Design::DcsCtrl,
                                       ndp::Function::Crc32);
    EXPECT_TRUE(first == second)
        << "fig11b event traces diverged between runs";
}

TEST(Determinism, PipelineSwBaseline)
{
    const auto first = pipelineDigest(workload::Design::SwOptimized,
                                      ndp::Function::Crc32);
    const auto second = pipelineDigest(workload::Design::SwOptimized,
                                       ndp::Function::Crc32);
    EXPECT_TRUE(first == second)
        << "sw-opt pipeline event traces diverged between runs";
}

TEST(Determinism, SwiftWorkload)
{
    for (const bool dcs : {false, true}) {
        const auto first = swiftDigest(dcs, 1);
        const auto second = swiftDigest(dcs, 1);
        EXPECT_GT(first.events, 1000u);
        EXPECT_TRUE(first == second)
            << "swift (dcs=" << dcs << ") traces diverged between runs";
    }
}

TEST(Determinism, HdfsWorkload)
{
    for (const bool dcs : {false, true}) {
        const auto first = hdfsDigest(dcs);
        const auto second = hdfsDigest(dcs);
        EXPECT_GT(first.events, 1000u);
        EXPECT_TRUE(first == second)
            << "hdfs (dcs=" << dcs << ") traces diverged between runs";
    }
}

TEST(Determinism, DropboxMixSampling)
{
    EXPECT_TRUE(mixDigest(3) == mixDigest(3));
    // The digest must actually discriminate different streams.
    EXPECT_FALSE(mixDigest(3) == mixDigest(4));
}

TEST(Determinism, DifferentSeedsProduceDifferentTraces)
{
    // Guard against a degenerate hasher that maps everything to the
    // same digest: distinct request streams must fingerprint apart.
    const auto s1 = swiftDigest(false, 1);
    const auto s2 = swiftDigest(false, 2);
    EXPECT_NE(s1.digest, s2.digest);
}

} // namespace
} // namespace dcs
