/**
 * @file
 * NIC feature tests: header-split receive (paper ref [39]) and
 * receive-interrupt coalescing.
 */

#include <cstring>
#include <gtest/gtest.h>

#include "fixtures.hh"

namespace dcs {
namespace {

/** Drives a NIC pair with a hand-rolled split-descriptor consumer. */
class HeaderSplitTest : public ::testing::Test
{
  protected:
    HeaderSplitTest()
        : fabA(eq, "pcieA"), fabB(eq, "pcieB"), hostA(eq, "hostA", fabA),
          hostB(eq, "hostB", fabB),
          nicA(eq, "nicA", 0x21000000, {2, 0, 0, 0, 0, 0xaa}),
          nicB(eq, "nicB", 0x21000000, {2, 0, 0, 0, 0, 0xbb}),
          wire(eq, "wire"), drvA(eq, hostA, nicA)
    {
        fabA.attach(nicA);
        fabB.attach(nicB);
        wire.attach(nicA, nicB);
        bool up = false;
        drvA.init([&] { up = true; });
        eq.run();
        EXPECT_TRUE(up);
    }

    /** Program nicB's rings by hand, posting split descriptors. */
    void
    configureSplitReceiver(std::uint32_t entries)
    {
        recvRing = hostB.allocDma(entries * sizeof(nic::RecvDesc));
        recvCpl = hostB.allocDma(entries * sizeof(nic::CplEntry));
        payloadArena = hostB.allocDma(entries * 16384);
        hdrArena = hostB.allocDma(entries * 64);

        auto w = [&](Addr reg, std::uint64_t v, unsigned n) {
            std::vector<std::uint8_t> raw(n);
            std::memcpy(raw.data(), &v, n);
            hostB.fabric().memWrite(hostB.bridge(),
                                    nicB.bar0() + reg, std::move(raw),
                                    {});
        };
        w(nic::reg::recvRingBase, recvRing, 8);
        w(nic::reg::recvRingSize, entries, 4);
        w(nic::reg::recvCplBase, recvCpl, 8);
        w(nic::reg::msiRecvAddr, 0, 8); // poll mode
        // Also park the send side so regWrite does not warn.
        w(nic::reg::sendRingBase, hostB.allocDma(4096), 8);
        w(nic::reg::sendRingSize, entries, 4);
        w(nic::reg::sendCplBase, hostB.allocDma(4096), 8);

        for (std::uint32_t i = 0; i < entries; ++i) {
            nic::RecvDesc d;
            d.bufAddr = payloadArena + std::uint64_t(i) * 16384;
            d.bufLen = 16384;
            d.flags = 1; // header split
            d.hdrAddr = hdrArena + std::uint64_t(i) * 64;
            hostB.dram().write(hostB.dramOffset(recvRing) +
                                   i * sizeof(nic::RecvDesc),
                               &d, sizeof(d));
        }
        w(nic::reg::recvDoorbell, entries, 4);
        eq.run();
    }

    EventQueue eq;
    pcie::Fabric fabA, fabB;
    host::Host hostA, hostB;
    nic::Nic nicA, nicB;
    net::Wire wire;
    host::NicHostDriver drvA;
    Addr recvRing = 0, recvCpl = 0, payloadArena = 0, hdrArena = 0;
};

TEST_F(HeaderSplitTest, PayloadAndHeadersLandSeparately)
{
    configureSplitReceiver(64);

    // Sender uses the ordinary kernel path with two LSO segments.
    host::TcpStack tcpA(eq, hostA, drvA);
    net::FlowInfo flow;
    flow.srcMac = {2, 0, 0, 0, 0, 0xaa};
    flow.dstMac = {2, 0, 0, 0, 0, 0xbb};
    flow.srcPort = 7;
    flow.dstPort = 8;
    flow.seq = 500;
    auto &conn = tcpA.establish(flow, 0);

    auto payload = test::randomBytes(12000, 130);
    const Addr buf = hostA.allocDma(payload.size());
    hostA.dram().write(hostA.dramOffset(buf), payload.data(),
                       payload.size());
    bool sent = false;
    tcpA.send(conn, buf, static_cast<std::uint32_t>(payload.size()),
              8192, nullptr, [&] { sent = true; });
    eq.run();
    ASSERT_TRUE(sent);

    // Two frames: 8192 + 3808 payload bytes, split into the arenas.
    std::vector<std::uint8_t> got;
    std::uint32_t frames = 0;
    for (std::uint32_t i = 0; i < 64; ++i) {
        nic::CplEntry e;
        hostB.dram().read(hostB.dramOffset(recvCpl) +
                              i * sizeof(nic::CplEntry),
                          &e, sizeof(e));
        if (e.seqNo != i + 1)
            break;
        ++frames;
        EXPECT_EQ(e.hdrLen, net::fullHeaderLen);
        std::vector<std::uint8_t> piece(e.value);
        hostB.dram().read(hostB.dramOffset(payloadArena) + i * 16384,
                          piece.data(), piece.size());
        got.insert(got.end(), piece.begin(), piece.end());

        // The header buffer holds a parseable Eth/IP/TCP header.
        std::vector<std::uint8_t> hdr(net::fullHeaderLen);
        hostB.dram().read(hostB.dramOffset(hdrArena) + i * 64,
                          hdr.data(), hdr.size());
        const auto f = net::parseHeaderTemplate(hdr);
        EXPECT_EQ(f.srcPort, 7);
        EXPECT_EQ(f.dstPort, 8);
    }
    EXPECT_EQ(frames, 2u);
    EXPECT_EQ(got, payload)
        << "payload must be contiguous without header stripping";
}

class CoalescingTest : public test::TwoNodeFixture
{
};

TEST_F(CoalescingTest, FewerInterruptsSameBytes)
{
    // Receiver coalesces 8 completions per MSI.
    sys::NodeParams pb;
    pb.nic.intrCoalesce = 8;
    sys = std::make_unique<sys::TwoNodeSystem>(eq, sys::NodeParams{}, pb);
    bool a = false, b = false;
    nodeA().bringUpHostStack([&] { a = true; });
    nodeB().bringUpHostStack([&] { b = true; });
    eq.run();
    ASSERT_TRUE(a && b);
    auto [ca, cb] = host::establishPair(nodeA().tcp(), nodeB().tcp());
    connA = ca;
    connB = cb;
    sinkAtB();

    const std::uint32_t len = 400000; // ~49 frames at 8 KiB MSS
    auto content = test::randomBytes(len, 131);
    const Addr buf = nodeA().host().allocDma(len);
    nodeA().host().dram().write(nodeA().host().dramOffset(buf),
                                content.data(), len);
    bool sent = false;
    nodeA().tcp().send(*connA, buf, len, 8192, nullptr,
                       [&] { sent = true; });
    eq.run();
    ASSERT_TRUE(sent);
    EXPECT_EQ(received, content);

    const auto frames = nodeB().nic().framesReceived();
    const auto msis = nodeB().nic().recvMsisRaised();
    EXPECT_GT(frames, 40u);
    EXPECT_LT(msis, frames / 4)
        << "coalescing must batch interrupts";
    EXPECT_GT(msis, 0u);
}

TEST_F(CoalescingTest, HoldoffFlushesTrailingFrame)
{
    sys::NodeParams pb;
    pb.nic.intrCoalesce = 16; // far more than the frames we send
    sys = std::make_unique<sys::TwoNodeSystem>(eq, sys::NodeParams{}, pb);
    bool a = false, b = false;
    nodeA().bringUpHostStack([&] { a = true; });
    nodeB().bringUpHostStack([&] { b = true; });
    eq.run();
    ASSERT_TRUE(a && b);
    auto [ca, cb] = host::establishPair(nodeA().tcp(), nodeB().tcp());
    connA = ca;
    connB = cb;
    sinkAtB();

    auto content = test::randomBytes(3000, 132); // one frame
    const Addr buf = nodeA().host().allocDma(content.size());
    nodeA().host().dram().write(nodeA().host().dramOffset(buf),
                                content.data(), content.size());
    nodeA().tcp().send(*connA, buf,
                       static_cast<std::uint32_t>(content.size()), 8192,
                       nullptr, {});
    eq.run();
    // Without the hold-off timer this frame would never be delivered.
    EXPECT_EQ(received, content);
    EXPECT_EQ(nodeB().nic().recvMsisRaised(), 1u);
}

} // namespace
} // namespace dcs
