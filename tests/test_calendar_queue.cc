/**
 * @file
 * Calendar-queue edge cases and the queue-swap determinism pin.
 *
 * The EventQueue moved from a binary heap to a two-level calendar
 * (ready group + bucketed window + far overflow). These tests pin the
 * behaviors the swap must not change: exact (tick, sequence) firing
 * order through every storage path (ready appends, dense buckets that
 * trigger a re-tighten, window rebuilds from `far`), O(1)-style
 * cancellation with no residue, and — via golden digests — that the
 * full simulator's event trace is bit-identical to the pre-swap queue.
 */
// dcslint: allow-file(callback-lifetime): the test drains the queue in the
// same stack frame, so by-reference captures of locals cannot dangle.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/parallel_runner.hh"
#include "sim/check.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "workload/experiment.hh"

namespace dcs {
namespace {

using FiringTrace = std::vector<std::pair<Tick, std::uint64_t>>;

/** Record the (tick, seq) firing stream into @p out. */
void
attachTrace(EventQueue &eq, FiringTrace &out)
{
    eq.setTraceHook([&out](Tick t, std::uint64_t seq,
                           std::string_view) {
        out.emplace_back(t, seq);
    });
}

TEST(CalendarQueue, SameTickGroupFiresFifoThroughBuckets)
{
    EventQueue eq;
    std::vector<int> order;
    // One far tick, many events: lands in a bucket, extracted as a
    // single sorted group.
    for (int i = 0; i < 500; ++i)
        eq.schedule(12345, [&order, i] { order.push_back(i); });
    eq.run();
    ASSERT_EQ(order.size(), 500u);
    for (int i = 0; i < 500; ++i)
        EXPECT_EQ(order[i], i) << "same-tick FIFO broken at " << i;
}

TEST(CalendarQueue, FarFutureEventsCrossWindowEpochs)
{
    EventQueue eq;
    std::vector<Tick> fired;
    // Spans many window rebuilds: the initial window is ~256K ticks
    // wide, so each decade past that forces a rebuild from `far`,
    // including one beyond the adaptive width cap.
    const Tick ticks[] = {1,       100,        50'000,     400'000,
                          9'000'000, 1'000'000'000, 7'000'000'000'000};
    for (const Tick t : ticks)
        eq.scheduleAt(t, [&fired, &eq] { fired.push_back(eq.now()); });
    eq.run();
    ASSERT_EQ(fired.size(), std::size(ticks));
    for (std::size_t i = 0; i < std::size(ticks); ++i)
        EXPECT_EQ(fired[i], ticks[i]);
    EXPECT_EQ(eq.now(), ticks[std::size(ticks) - 1]);
}

TEST(CalendarQueue, DenseBucketRetightenPreservesOrder)
{
    // 5000 events over a 999-tick span all land in one bucket of the
    // initial wide window — exactly the shape that triggers the
    // re-tighten path. Firing must still be (tick, then FIFO).
    EventQueue eq;
    FiringTrace trace;
    attachTrace(eq, trace);
    Rng rng(11);
    FiringTrace expected;
    for (std::uint64_t i = 0; i < 5000; ++i) {
        const Tick when = rng.uniformInt(1, 999);
        eq.scheduleAt(when, [] {});
        expected.emplace_back(when, i + 1); // seq is 1-based
    }
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    eq.run();
    ASSERT_EQ(trace.size(), expected.size());
    EXPECT_EQ(trace, expected);
}

TEST(CalendarQueue, CancelThenDrainLeavesNoResidue)
{
    EventQueue eq;
    int fired = 0;
    std::vector<EventId> ids;
    for (int i = 0; i < 2000; ++i)
        ids.push_back(eq.schedule(100 + i % 7, [&fired] { ++fired; }));
    for (std::size_t i = 0; i < ids.size(); i += 2)
        eq.deschedule(ids[i]);
    EXPECT_EQ(eq.pending(), 1000u);
    eq.run();
    EXPECT_EQ(fired, 1000);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.scheduled(), eq.executed() + eq.cancelledPopped());
    EXPECT_TRUE(eq.empty());
}

TEST(CalendarQueue, CancelledEventReleasesItsCaptureImmediately)
{
    // The deschedule satellite: cancelling must free the callback's
    // resources right away, not when simulated time reaches the
    // tombstone (the old queue held them until pop).
    EventQueue eq;
    auto guard = std::make_shared<int>(7);
    std::weak_ptr<int> watch = guard;
    const EventId id =
        eq.schedule(1'000'000'000, [g = std::move(guard)] { (void)g; });
    ASSERT_FALSE(watch.expired());
    eq.deschedule(id);
    EXPECT_TRUE(watch.expired())
        << "cancelled event kept its capture alive";
    eq.run();
}

TEST(CalendarQueue, RunUntilMidWindowThenEarlierScheduleStaysOrdered)
{
    // Stop between tick groups, then schedule an event earlier than
    // everything still pending: the unconsumed ready group must have
    // been re-bucketed so global order is preserved.
    EventQueue eq;
    FiringTrace trace;
    attachTrace(eq, trace);
    eq.scheduleAt(100, [] {});
    eq.scheduleAt(100, [] {});
    eq.scheduleAt(300, [] {});
    eq.runUntil(50);
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_TRUE(trace.empty());
    eq.scheduleAt(60, [] {}); // earlier than the pending tick-100 pair
    eq.run();
    const FiringTrace expected = {
        {60, 4}, {100, 1}, {100, 2}, {300, 3}};
    EXPECT_EQ(trace, expected);
}

TEST(CalendarQueue, ScheduleBelowRebuiltWindowAfterEarlyRunUntil)
{
    // runUntil() can return with windowStart above the limit: the
    // only pending event was far-future, so the window was rebuilt
    // around it. A subsequent schedule between the limit and that
    // minimum lands below the window and must re-anchor it (this
    // used to panic in DCS_CHECKED builds and index below bucket 0
    // in unchecked ones).
    EventQueue eq;
    FiringTrace trace;
    attachTrace(eq, trace);
    eq.scheduleAt(1'000'000, [] {});
    eq.runUntil(100);
    EXPECT_EQ(eq.now(), 100u);
    EXPECT_TRUE(trace.empty());
    eq.scheduleAt(200, [] {}); // below the rebuilt windowStart
    eq.scheduleAt(500'000, [] {});
    eq.run();
    const FiringTrace expected = {
        {200, 2}, {500'000, 3}, {1'000'000, 1}};
    EXPECT_EQ(trace, expected);
}

TEST(CalendarQueue, RepeatedBelowWindowSchedulesStayOrdered)
{
    // Interleave early runUntil stops with schedules ever further
    // below the rebuilt window, with far-overflow events pending
    // throughout, and check the full firing order and conservation.
    EventQueue eq;
    FiringTrace trace;
    attachTrace(eq, trace);
    eq.scheduleAt(10'000'000, [] {});   // seq 1
    eq.scheduleAt(9'000'000, [] {});    // seq 2
    eq.runUntil(1'000);                 // window now starts at 9M
    eq.scheduleAt(2'000, [] {});        // seq 3, below window
    eq.runUntil(1'500);                 // window re-anchored at 2'000
    EXPECT_EQ(eq.now(), 1'500u);
    eq.scheduleAt(1'600, [] {});        // seq 4, below window again
    eq.run();
    const FiringTrace expected = {
        {1'600, 4}, {2'000, 3}, {9'000'000, 2}, {10'000'000, 1}};
    EXPECT_EQ(trace, expected);
    EXPECT_EQ(eq.scheduled(), eq.executed());
    EXPECT_TRUE(eq.empty());
}

TEST(CalendarQueue, SameTickCascadeDuringFiringAppendsToReadyGroup)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] {
        order.push_back(0);
        // Scheduled while tick 10 is firing: joins the live group...
        eq.schedule(0, [&] { order.push_back(2); });
        // ...after the already-queued same-tick successor.
    });
    eq.schedule(10, [&order] { order.push_back(1); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(eq.now(), 10u);
}

// --- Barrier-round support queries --------------------------------

TEST(CalendarQueue, NextPendingTickTracksEveryStoragePath)
{
    EventQueue eq;
    EXPECT_EQ(eq.nextPendingTick(), maxTick) << "empty queue";

    // Far-overflow only: minimum comes from `far`.
    eq.scheduleAt(7'000'000'000'000, [] {});
    EXPECT_EQ(eq.nextPendingTick(), 7'000'000'000'000u);

    // In-window bucket beats it.
    eq.scheduleAt(5'000, [] {});
    EXPECT_EQ(eq.nextPendingTick(), 5'000u);
    eq.scheduleAt(300, [] {});
    EXPECT_EQ(eq.nextPendingTick(), 300u);

    // Partially-consumed ready group: runUntil stops mid-window and
    // the unconsumed tick-300 event must still be reported.
    eq.runUntil(200);
    EXPECT_EQ(eq.nextPendingTick(), 300u);
    eq.run();
    EXPECT_EQ(eq.nextPendingTick(), maxTick);
}

TEST(CalendarQueue, NextPendingTickIsConservativeForCancelledEntries)
{
    // A cancelled tombstone may be reported (lower bound, never an
    // overestimate): pop-time discovers the cancellation.
    EventQueue eq;
    const EventId id = eq.schedule(100, [] {});
    eq.schedule(900, [] {});
    eq.deschedule(id);
    EXPECT_LE(eq.nextPendingTick(), 900u);
    EXPECT_GE(eq.nextPendingTick(), 100u);
    eq.run();
    EXPECT_EQ(eq.now(), 900u);
}

TEST(CalendarQueue, AdvanceToAlignsDrainedClock)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_EQ(eq.now(), 100u);
    eq.advanceTo(5'000);
    EXPECT_EQ(eq.now(), 5'000u);
    eq.advanceTo(4'000); // backward: no-op, time never rewinds
    EXPECT_EQ(eq.now(), 5'000u);
    // Scheduling keeps working relative to the aligned clock.
    Tick fired = 0;
    eq.schedule(10, [&] { fired = eq.now(); });
    eq.run();
    EXPECT_EQ(fired, 5'010u);
}

TEST(CalendarQueue, AdvanceToWithPendingEntriesPanics)
{
    if (!kCheckedBuild)
        GTEST_SKIP() << "drained-queue contract is DCS_CHECKED-only";
    EventQueue eq;
    eq.schedule(100, [] {});
    EXPECT_DEATH(eq.advanceTo(50'000), "advanceTo on a queue");
}

// --- Queue-swap determinism pin -----------------------------------

/** One run's event-trace fingerprint. */
struct RunDigest
{
    std::uint64_t digest = 0;
    std::uint64_t events = 0;
    Tick end = 0;

    bool
    operator==(const RunDigest &o) const
    {
        return digest == o.digest && events == o.events && end == o.end;
    }
};

/**
 * Fig. 11a-style pipeline digest: 256 KiB sendFile on a fresh
 * testbed. Mirrors the probe used to freeze the golden values below.
 */
RunDigest
pipelineDigest(workload::Design design, ndp::Function fn)
{
    workload::Testbed tb(design);
    TraceHasher th;
    th.attach(tb.eq());

    auto [ca, cb] = tb.connect();
    cb->onPayload = [](std::uint32_t, BufChain) {};

    Rng rng(7);
    std::vector<std::uint8_t> content(256 * 1024);
    rng.fill(content.data(), content.size());
    const int fd = tb.nodeA().fs().create("obj", content);

    bool done = false;
    tb.pathA().sendFile(fd, ca->fd, 0, content.size(), fn, {}, nullptr,
                        [&](const baselines::PathResult &) {
                            done = true;
                        });
    tb.eq().run();
    EXPECT_TRUE(done);
    return {th.digest(), th.events(), tb.eq().now()};
}

TEST(QueueSwapDeterminism, GoldenDigestsMatchPreSwapQueue)
{
    // Frozen from the std::function + binary-heap queue immediately
    // before the calendar/InlineCallback swap (same workloads, same
    // seeds). If a queue change alters any of these, it changed the
    // simulation's event order — regenerate only for an intentional
    // model change, never for a queue/storage refactor.
    const RunDigest dcsNone = pipelineDigest(workload::Design::DcsCtrl,
                                             ndp::Function::None);
    EXPECT_EQ(dcsNone.digest, 0x66eccaff5410501cull);
    EXPECT_EQ(dcsNone.events, 620ull);
    EXPECT_EQ(dcsNone.end, 441434854ull);

    const RunDigest dcsMd5 = pipelineDigest(workload::Design::DcsCtrl,
                                            ndp::Function::Md5);
    EXPECT_EQ(dcsMd5.digest, 0x4d61b62c80f49315ull);
    EXPECT_EQ(dcsMd5.events, 634ull);
    EXPECT_EQ(dcsMd5.end, 2414612170ull);

    const RunDigest swCrc = pipelineDigest(
        workload::Design::SwOptimized, ndp::Function::Crc32);
    EXPECT_EQ(swCrc.digest, 0xcb53babeee5210a9ull);
    EXPECT_EQ(swCrc.events, 585ull);
    EXPECT_EQ(swCrc.end, 912919727ull);
}

TEST(QueueSwapDeterminism, ParallelSweepMatchesSerialExecution)
{
    // The bench parallel runner must not perturb results: the same
    // six sweep points, executed serially and on four threads, must
    // produce identical digests slot for slot.
    struct PointSpec
    {
        workload::Design design;
        ndp::Function fn;
    };
    const std::vector<PointSpec> points = {
        {workload::Design::SwOptimized, ndp::Function::None},
        {workload::Design::SwP2p, ndp::Function::None},
        {workload::Design::DcsCtrl, ndp::Function::None},
        {workload::Design::SwOptimized, ndp::Function::Crc32},
        {workload::Design::SwP2p, ndp::Function::Md5},
        {workload::Design::DcsCtrl, ndp::Function::Md5},
    };
    auto sweep = [&points](int threads) {
        const bench::ParallelRunner runner(threads);
        return runner.map<RunDigest>(
            points.size(), [&points](std::size_t i) {
                return pipelineDigest(points[i].design, points[i].fn);
            });
    };
    const auto serial = sweep(1);
    const auto parallel = sweep(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_GT(serial[i].events, 0u);
        EXPECT_TRUE(serial[i] == parallel[i])
            << "sweep point " << i
            << " diverged between serial and parallel execution";
    }
}

} // namespace
} // namespace dcs
