/**
 * @file
 * Rack-scale cluster: sharded-vs-serial determinism, the barrier-window
 * machinery, and the node accessor guards.
 *
 * The load-bearing test here is the digest equality: the same ring
 * workload run on a single shared event queue and run sharded across
 * 1, 2, and 4 worker threads must produce the identical merged trace
 * digest, event count, and final tick (the contract documented in
 * docs/PERFORMANCE.md §5).
 */
// dcslint: allow-file(callback-lifetime): each test runs its cluster to
// drain in the same stack frame, so by-reference captures cannot dangle.

#include <gtest/gtest.h>

#include "baselines/dcs_path.hh"
#include "sim/shard.hh"
#include "sys/cluster.hh"
#include "tests/fixtures.hh"

namespace dcs {
namespace {

// ---------------------------------------------------------------------
// Raw shard machinery: executor phases + mesh ping-pong.

TEST(ShardMesh, PingPongCrossesShardsAtLookaheadSpacing)
{
    constexpr Tick kLook = 100;
    constexpr int kHops = 8;

    for (unsigned threads : {1u, 2u}) {
        std::vector<std::unique_ptr<EventQueue>> qs;
        qs.push_back(std::make_unique<EventQueue>());
        qs.push_back(std::make_unique<EventQueue>());
        sim::ShardExecutor exec(2, threads);
        sim::ShardMesh mesh(kLook);
        const std::size_t e0 = mesh.addEndpoint(*qs[0]);
        const std::size_t e1 = mesh.addEndpoint(*qs[1]);

        // Per-shard hop logs (each written only by its owner thread).
        std::vector<Tick> hops[2];
        std::function<void(int)> hop = [&](int side) {
            EventQueue &q = *qs[side];
            hops[side].push_back(q.now());
            const int total = static_cast<int>(hops[0].size() +
                                               hops[1].size());
            if (total >= kHops)
                return;
            mesh.post(side == 0 ? e0 : e1, side == 0 ? e1 : e0,
                      q.now() + kLook, [&hop, side] { hop(1 - side); });
        };
        exec.on(0, [&] { qs[0]->schedule(0, [&hop] { hop(0); }); });

        sim::ShardedSim sim(exec, mesh,
                            {qs[0].get(), qs[1].get()});
        const Tick end = sim.run();

        // Hop k fires at k * lookahead, alternating sides.
        ASSERT_EQ(hops[0].size(), std::size_t(kHops) / 2);
        ASSERT_EQ(hops[1].size(), std::size_t(kHops) / 2);
        for (int k = 0; k < kHops; ++k)
            EXPECT_EQ(hops[k % 2][std::size_t(k) / 2],
                      Tick(k) * kLook);
        EXPECT_EQ(mesh.messagesPosted(), std::uint64_t(kHops) - 1);
        EXPECT_GE(sim.windows(), std::uint64_t(kHops) - 1);
        // Clocks aligned to the global max after the run.
        EXPECT_EQ(qs[0]->now(), end);
        EXPECT_EQ(qs[1]->now(), end);

        // Queues drained; tear down on owner threads like Cluster does.
        exec.forEach([&](std::size_t s) { qs[s].reset(); });
    }
}

TEST(ShardMesh, PostInsideLookaheadPanics)
{
    if (!kCheckedBuild)
        GTEST_SKIP() << "lookahead contract is DCS_CHECKED-only";
    EventQueue q0, q1;
    sim::ShardExecutor exec(2, 1);
    sim::ShardMesh mesh(100);
    const std::size_t e0 = mesh.addEndpoint(q0);
    const std::size_t e1 = mesh.addEndpoint(q1);
    // `when` must be >= src now() + lookahead; 99 violates it.
    EXPECT_DEATH(mesh.post(e0, e1, 99, [] {}), "lookahead");
}

// ---------------------------------------------------------------------
// Ring workload: every node DCS-sends one object to its right-hand
// neighbour while receiving one from its left — all wires, both switch
// directions, and every shard active at once.

struct RingOutcome
{
    std::uint64_t digest;
    std::uint64_t events;
    Tick end;
};

RingOutcome
runRing(sys::ClusterParams p, std::size_t bytes = 64 * 1024)
{
    sys::Cluster cl(p);
    cl.attachHasher();
    cl.bringUpDcs();

    const std::size_t n = cl.size();
    std::vector<sys::Cluster::ConnFds> conns;
    for (std::size_t i = 0; i < n; ++i)
        conns.push_back(cl.connect(i, (i + 1) % n));

    // Receivers arm first (Crc32 on arrival), then senders ship; both
    // digests of a transfer must agree at the end.
    std::vector<std::vector<std::uint8_t>> rxDigest(n), txDigest(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t dst = (i + 1) % n;
        const int conn_fd = conns[i].dst;
        auto *slot = &rxDigest[i];
        cl.onNode(dst, [conn_fd, slot, bytes](sys::Node &nd) {
            const int fd = nd.fs().createEmpty("in", bytes);
            baselines::DcsCtrlPath(nd).receiveToFile(
                conn_fd, fd, 0, bytes, ndp::Function::Crc32, {},
                nullptr, [slot](const baselines::PathResult &r) {
                    *slot = r.digest;
                });
        });
    }
    for (std::size_t i = 0; i < n; ++i) {
        const int conn_fd = conns[i].src;
        auto *slot = &txDigest[i];
        cl.onNode(i, [conn_fd, slot, bytes, i](sys::Node &nd) {
            const auto content = test::randomBytes(bytes, 42 + i);
            const int fd = nd.fs().create("out", content);
            baselines::DcsCtrlPath(nd).sendFile(
                fd, conn_fd, 0, bytes, ndp::Function::Crc32, {},
                nullptr, [slot](const baselines::PathResult &r) {
                    *slot = r.digest;
                });
        });
    }

    const Tick end = cl.run();
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_FALSE(txDigest[i].empty()) << "send " << i << " hung";
        EXPECT_FALSE(rxDigest[i].empty()) << "recv " << i << " hung";
        EXPECT_EQ(txDigest[i], rxDigest[i]) << "edge " << i;
    }
    return {cl.digest(), cl.traceEvents(), end};
}

TEST(Cluster, RingDigestInvariantAcrossShardingAndThreads)
{
    sys::ClusterParams base;
    base.nodes = 3;

    sys::ClusterParams serial = base;
    serial.sharded = false;
    const RingOutcome ref = runRing(serial);
    EXPECT_GT(ref.events, 0u);

    for (unsigned threads : {1u, 2u, 4u}) {
        sys::ClusterParams sharded = base;
        sharded.sharded = true;
        sharded.threads = threads;
        const RingOutcome got = runRing(sharded);
        EXPECT_EQ(got.digest, ref.digest) << threads << " threads";
        EXPECT_EQ(got.events, ref.events) << threads << " threads";
        EXPECT_EQ(got.end, ref.end) << threads << " threads";
    }
}

TEST(Cluster, BringUpSmoke)
{
    sys::ClusterParams p;
    p.nodes = 4;
    p.threads = 2;
    sys::Cluster cl(p);
    EXPECT_EQ(cl.size(), 4u);
    EXPECT_EQ(cl.queueCount(), 5u); // one per node + the switch
    EXPECT_EQ(cl.threadCount(), 2u);
    EXPECT_EQ(cl.tor().portCount(), 4u);
    cl.bringUpDcs();
    // Bring-up is node-local: nothing should have crossed the rack.
    for (std::size_t i = 0; i < cl.size(); ++i)
        EXPECT_EQ(cl.wire(i).framesCarried(), 0u);
    EXPECT_GT(cl.windows(), 0u);
}

TEST(Cluster, SerialModeUsesOneQueue)
{
    sys::ClusterParams p;
    p.sharded = false;
    sys::Cluster cl(p);
    EXPECT_EQ(cl.queueCount(), 1u);
    EXPECT_EQ(&cl.nodeQueue(0), &cl.nodeQueue(1));
    EXPECT_EQ(&cl.nodeQueue(0), &cl.switchQueue());
}

TEST(Cluster, NodeAccessorOutOfRangePanics)
{
    if (!kCheckedBuild)
        GTEST_SKIP() << "accessor guards are DCS_CHECKED-only";
    EventQueue eq;
    sys::Node node(eq, "lone");
    EXPECT_DEATH(node.ssd(1), "out of range");
    EXPECT_DEATH(node.nvmeDriver(2), "out of range");
    EXPECT_DEATH(node.fs(3), "out of range");
}

} // namespace
} // namespace dcs
