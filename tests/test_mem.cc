/**
 * @file
 * Unit tests for the sparse memory and the chunk allocator.
 */

#include <gtest/gtest.h>

#include "mem/chunk_allocator.hh"
#include "mem/memory.hh"

namespace dcs {
namespace {

TEST(Memory, ReadsZeroWhenUntouched)
{
    Memory m(1 << 20);
    auto v = m.readBytes(12345, 64);
    for (auto b : v)
        EXPECT_EQ(b, 0);
    EXPECT_EQ(m.pagesAllocated(), 0u);
}

TEST(Memory, RoundTripAcrossPageBoundary)
{
    Memory m(1 << 20);
    std::vector<std::uint8_t> data(100000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    m.write(60000, data.data(), data.size()); // crosses 64 KiB boundary
    EXPECT_EQ(m.readBytes(60000, data.size()), data);
}

TEST(Memory, LittleEndianAccessors)
{
    Memory m(4096);
    m.writeLe<std::uint32_t>(100, 0xdeadbeef);
    EXPECT_EQ(m.readLe<std::uint32_t>(100), 0xdeadbeefu);
    EXPECT_EQ(m.readLe<std::uint8_t>(100), 0xef);
    m.writeLe<std::uint64_t>(200, 0x0123456789abcdefull);
    EXPECT_EQ(m.readLe<std::uint64_t>(200), 0x0123456789abcdefull);
}

TEST(Memory, FillAndSparseness)
{
    Memory m(10ull << 30, "big"); // 10 GiB costs nothing until touched
    m.fill(5ull << 30, 0xab, 128);
    EXPECT_EQ(m.readLe<std::uint8_t>(5ull << 30), 0xab);
    EXPECT_EQ(m.pagesAllocated(), 1u);
}

TEST(MemoryDeath, OutOfBoundsPanics)
{
    Memory m(4096, "small");
    std::uint8_t b = 0;
    EXPECT_DEATH(m.read(4096, &b, 1), "out of bounds");
    EXPECT_DEATH(m.write(4000, &b, 200), "out of bounds");
}

TEST(ChunkAllocator, AllocatesAllThenExhausts)
{
    ChunkAllocator a({0x1000, 8 * 64}, 64);
    EXPECT_EQ(a.totalChunks(), 8u);
    std::vector<Addr> got;
    for (int i = 0; i < 8; ++i) {
        auto c = a.alloc();
        ASSERT_TRUE(c.has_value());
        got.push_back(*c);
    }
    EXPECT_FALSE(a.alloc().has_value());
    EXPECT_EQ(a.usedChunks(), 8u);
    EXPECT_EQ(a.peakUsed(), 8u);
    // Lowest address first, all aligned, all distinct.
    EXPECT_EQ(got.front(), 0x1000u);
    std::sort(got.begin(), got.end());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], 0x1000u + i * 64);
}

TEST(ChunkAllocator, FreeMakesReusable)
{
    ChunkAllocator a({0, 128}, 64);
    const Addr c1 = *a.alloc();
    const Addr c2 = *a.alloc();
    EXPECT_FALSE(a.alloc());
    a.free(c1);
    EXPECT_EQ(*a.alloc(), c1);
    a.free(c1);
    a.free(c2);
    EXPECT_EQ(a.freeChunks(), 2u);
}

TEST(ChunkAllocatorDeath, BadFrees)
{
    ChunkAllocator a({0x1000, 256}, 64);
    EXPECT_DEATH(a.free(0x0), "not owned");
    EXPECT_DEATH(a.free(0x1001), "not owned");
    EXPECT_DEATH(a.free(0x1000), "double free");
}

TEST(ChunkAllocatorDeath, MisalignedSize)
{
    EXPECT_EXIT(ChunkAllocator({0, 100}, 64),
                ::testing::ExitedWithCode(1), "does not divide");
}

} // namespace
} // namespace dcs
