/**
 * @file
 * HDC Engine component tests: scoreboard scheduling, NDP pool
 * streaming, resource model, and engine pipelines on a single node.
 */
// dcslint: allow-file(callback-lifetime): the test drains the queue in the
// same stack frame, so by-reference captures of locals cannot dangle.

#include <gtest/gtest.h>

#include "fixtures.hh"
#include "hdc/scoreboard.hh"
#include "hdc/timing.hh"
#include "ndp/hash.hh"

namespace dcs {
namespace hdc {
namespace {

// ---------------------------------------------------------------------
// Scoreboard in isolation.
// ---------------------------------------------------------------------

class ScoreboardTest : public ::testing::Test
{
  protected:
    ScoreboardTest() : sb(eq, "sb", timing) {}

    /** Register a controller that completes after @p service time. */
    void
    autoController(DevClass dev, int slots, Tick service,
                   std::vector<std::uint32_t> *log = nullptr)
    {
        sb.registerController(
            dev,
            [this, service, log](const Entry &e) {
                if (log)
                    log->push_back(e.id);
                eq.schedule(service, [this, id = e.id] { sb.complete(id); });
            },
            slots);
    }

    EventQueue eq;
    HdcTiming timing;
    Scoreboard sb;
};

TEST_F(ScoreboardTest, DependenciesGateIssue)
{
    std::vector<std::uint32_t> order;
    autoController(DevClass::SsdCtrl, 8, microseconds(5), &order);
    autoController(DevClass::NicCtrl, 8, microseconds(5), &order);

    Entry read;
    read.cmdId = 1;
    read.dev = DevClass::SsdCtrl;
    const auto r = sb.addEntry(read);
    Entry send;
    send.cmdId = 1;
    send.dev = DevClass::NicCtrl;
    const auto s = sb.addEntry(send);
    sb.addDependency(r, s);
    sb.declareCommand(1, 2);

    bool cmd_done = false;
    sb.setCommandDone([&](std::uint32_t id) { cmd_done = id == 1; });
    sb.arm();
    eq.run();

    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], r);
    EXPECT_EQ(order[1], s);
    EXPECT_TRUE(cmd_done);
    EXPECT_EQ(sb.entriesLive(), 0u);
}

TEST_F(ScoreboardTest, SlotLimitThrottlesConcurrency)
{
    int in_flight = 0, peak = 0;
    sb.registerController(
        DevClass::SsdCtrl,
        [&](const Entry &e) {
            peak = std::max(peak, ++in_flight);
            eq.schedule(microseconds(10), [this, &in_flight, id = e.id] {
                --in_flight;
                sb.complete(id);
            });
        },
        3);

    sb.declareCommand(1, 10);
    for (int i = 0; i < 10; ++i) {
        Entry e;
        e.cmdId = 1;
        e.dev = DevClass::SsdCtrl;
        sb.addEntry(e);
    }
    sb.setCommandDone([](std::uint32_t) {});
    sb.arm();
    eq.run();
    EXPECT_EQ(peak, 3);
    EXPECT_EQ(sb.entriesIssued(), 10u);
}

TEST_F(ScoreboardTest, ChainedPipelineRunsInOrder)
{
    std::vector<std::uint32_t> order;
    autoController(DevClass::SsdCtrl, 8, microseconds(3), &order);
    autoController(DevClass::NdpUnit, 8, microseconds(1), &order);
    autoController(DevClass::NicCtrl, 8, microseconds(2), &order);

    // Three chunks: read_i -> ndp_i -> send_i, ndp and send chained.
    std::uint32_t prev_ndp = 0, prev_send = 0;
    std::vector<std::uint32_t> sends;
    sb.declareCommand(7, 9);
    for (int i = 0; i < 3; ++i) {
        Entry r;
        r.cmdId = 7;
        r.dev = DevClass::SsdCtrl;
        const auto rid = sb.addEntry(r);
        Entry n;
        n.cmdId = 7;
        n.dev = DevClass::NdpUnit;
        const auto nid = sb.addEntry(n);
        Entry s;
        s.cmdId = 7;
        s.dev = DevClass::NicCtrl;
        const auto sid = sb.addEntry(s);
        sb.addDependency(rid, nid);
        sb.addDependency(nid, sid);
        if (prev_ndp)
            sb.addDependency(prev_ndp, nid);
        if (prev_send)
            sb.addDependency(prev_send, sid);
        prev_ndp = nid;
        prev_send = sid;
        sends.push_back(sid);
    }
    bool done = false;
    sb.setCommandDone([&](std::uint32_t) { done = true; });
    sb.arm();
    eq.run();
    ASSERT_TRUE(done);
    // Sends must appear in chunk order.
    std::vector<std::uint32_t> send_order;
    for (auto id : order)
        if (std::find(sends.begin(), sends.end(), id) != sends.end())
            send_order.push_back(id);
    EXPECT_EQ(send_order, sends);
}

TEST_F(ScoreboardTest, SetEntryLenBeforeIssue)
{
    std::uint64_t seen_len = 0;
    sb.registerController(
        DevClass::NicCtrl,
        [&](const Entry &e) {
            seen_len = e.len;
            sb.complete(e.id);
        },
        4);
    autoController(DevClass::NdpUnit, 4, microseconds(1));

    Entry n;
    n.cmdId = 2;
    n.dev = DevClass::NdpUnit;
    const auto nid = sb.addEntry(n);
    Entry s;
    s.cmdId = 2;
    s.dev = DevClass::NicCtrl;
    s.len = 1000;
    const auto sid = sb.addEntry(s);
    sb.addDependency(nid, sid);
    sb.declareCommand(2, 2);
    sb.setCommandDone([](std::uint32_t) {});
    // Shrink the dependent before the producer completes.
    sb.setEntryLen(sid, 420);
    sb.arm();
    eq.run();
    EXPECT_EQ(seen_len, 420u);
}

// ---------------------------------------------------------------------
// Table III / Table IV resource model.
// ---------------------------------------------------------------------

TEST(NdpSpecs, TableIiiThroughputs)
{
    EXPECT_DOUBLE_EQ(ndpSpec(ndp::Function::Md5).perUnitGbps, 0.97);
    EXPECT_DOUBLE_EQ(ndpSpec(ndp::Function::Aes256).perUnitGbps, 40.90);
    EXPECT_DOUBLE_EQ(ndpSpec(ndp::Function::Gzip).perUnitGbps, 100.0);
    // Units needed for 10 Gbps.
    EXPECT_EQ(ndpUnitsFor(ndp::Function::Md5), 11);
    EXPECT_EQ(ndpUnitsFor(ndp::Function::Sha1), 10);
    EXPECT_EQ(ndpUnitsFor(ndp::Function::Sha256), 13);
    EXPECT_EQ(ndpUnitsFor(ndp::Function::Aes256), 1);
    EXPECT_EQ(ndpUnitsFor(ndp::Function::Crc32), 1);
    EXPECT_EQ(ndpUnitsFor(ndp::Function::Gzip), 1);
}

TEST(Resources, TableIvBaseEngine)
{
    const auto r = baseEngineResources();
    EXPECT_EQ(r.luts, 116344u);
    EXPECT_EQ(r.regs, 91005u);
    EXPECT_EQ(r.brams, 442u);
    EXPECT_NEAR(100.0 * r.luts / virtex7Luts, 38.0, 0.5);
    EXPECT_NEAR(100.0 * r.regs / virtex7Regs, 15.0, 0.5);
    EXPECT_NEAR(100.0 * r.brams / virtex7Brams, 43.0, 0.5);
}

TEST(Resources, NdpUnitsFitBesideEngine)
{
    // Paper: the FPGA has enough remaining resources for NDP units.
    auto total = baseEngineResources();
    for (auto fn : {ndp::Function::Md5, ndp::Function::Aes256,
                    ndp::Function::Crc32, ndp::Function::Gzip}) {
        const auto r = ndpResources(fn);
        total.luts += r.luts;
        total.regs += r.regs;
    }
    EXPECT_LT(total.luts, virtex7Luts);
    EXPECT_LT(total.regs, virtex7Regs);
}

// ---------------------------------------------------------------------
// Engine pipelines on one DCS node (loopback via HdcBuffer endpoints).
// ---------------------------------------------------------------------

class EngineTest : public test::TwoNodeFixture
{
};

TEST_F(EngineTest, FileToBufferWithDigest)
{
    bringUp(true);
    auto content = test::randomBytes(200000, 11);
    const int fd = nodeA().fs().create("f", content);

    bool done = false;
    hdclib::D2dResult res;
    nodeA().hdcLib().readFileToBuffer(
        fd, 0, content.size(), 32ull << 20, ndp::Function::Sha256, {},
        true, nullptr, [&](const hdclib::D2dResult &r) {
            res = r;
            done = true;
        });
    eq.run();
    ASSERT_TRUE(done);

    // Bytes landed in engine DRAM at the requested offset.
    auto got = nodeA().engine().dram().readBytes(32ull << 20,
                                                 content.size());
    EXPECT_EQ(got, content);
    EXPECT_EQ(res.digest,
              ndp::makeHash("sha256")->oneShot(content));
}

TEST_F(EngineTest, BuffersAreRecycled)
{
    bringUp(true);
    auto content = test::randomBytes(1 << 20, 12);
    const int fd = nodeA().fs().create("f", content);
    sinkAtB();

    bool done = false;
    nodeA().hdcLib().sendFile(fd, connA->fd, 0, content.size(),
                              ndp::Function::None, {}, false, nullptr,
                              [&](const hdclib::D2dResult &) {
                                  done = true;
                              });
    eq.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(received, content);
    const auto &alloc = nodeA().engine().bufferAllocator();
    EXPECT_EQ(alloc.usedChunks(), 0u) << "all chunks returned";
    EXPECT_GT(alloc.peakUsed(), 0u);
    EXPECT_LT(alloc.peakUsed(), 64u) << "pipeline reuses buffers";
}

TEST_F(EngineTest, ScoreboardDrainsAndP2pDominates)
{
    bringUp(true);
    auto content = test::randomBytes(512 * 1024, 13);
    const int fd = nodeA().fs().create("f", content);
    sinkAtB();

    const std::uint64_t host_bytes_before =
        nodeA().host().bridge().hostDmaBytes();
    bool done = false;
    nodeA().hdcLib().sendFile(fd, connA->fd, 0, content.size(),
                              ndp::Function::Crc32, {}, true, nullptr,
                              [&](const hdclib::D2dResult &) {
                                  done = true;
                              });
    eq.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(received, content);
    EXPECT_EQ(nodeA().engine().scoreboard().entriesLive(), 0u);

    // The payload moved SSD -> HDC -> NIC without touching host DRAM.
    const std::uint64_t host_bytes =
        nodeA().host().bridge().hostDmaBytes() - host_bytes_before;
    EXPECT_LT(host_bytes, 8192u) << "only command/metadata traffic";
    EXPECT_GT(nodeA().fabric().p2pBytes(), content.size());
}

TEST_F(EngineTest, InOrderCompletionAcrossCommands)
{
    bringUp(true);
    // A big slow command (MD5-throttled) then a small fast one: the
    // engine must still notify in submission order.
    auto big = test::randomBytes(1 << 20, 14);
    auto small = test::randomBytes(4096, 15);
    const int fd_big = nodeA().fs().create("big", big);
    const int fd_small = nodeA().fs().create("small", small);
    sinkAtB();

    std::vector<int> completion_order;
    nodeA().hdcLib().sendFile(fd_big, connA->fd, 0, big.size(),
                              ndp::Function::Md5, {}, false, nullptr,
                              [&](const hdclib::D2dResult &) {
                                  completion_order.push_back(1);
                              });
    nodeA().hdcLib().sendFile(fd_small, connA->fd, 0, small.size(),
                              ndp::Function::None, {}, false, nullptr,
                              [&](const hdclib::D2dResult &) {
                                  completion_order.push_back(2);
                              });
    eq.run();
    ASSERT_EQ(completion_order.size(), 2u);
    EXPECT_EQ(completion_order[0], 1);
    EXPECT_EQ(completion_order[1], 2);
    // Stream bytes arrive in command order too.
    std::vector<std::uint8_t> expect = big;
    expect.insert(expect.end(), small.begin(), small.end());
    EXPECT_EQ(received, expect);
}

} // namespace
} // namespace hdc
} // namespace dcs
