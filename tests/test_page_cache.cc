/**
 * @file
 * Page-cache consistency tests (paper §IV-B): D2D commands must see
 * the latest application writes even when those writes are still in
 * host page cache.
 */

#include <gtest/gtest.h>

#include "fixtures.hh"
#include "host/page_cache.hh"

namespace dcs {
namespace {

class PageCacheTest : public test::TwoNodeFixture
{
};

TEST_F(PageCacheTest, BufferedWritesAreNotOnFlash)
{
    bringUp(true);
    auto content = test::randomBytes(64 * 1024, 120);
    const int fd = nodeA().fs().create("doc", content);

    std::vector<std::uint8_t> update(8192, 0xEE);
    bool wrote = false;
    nodeA().pageCache().write(fd, 4096, update, [&] { wrote = true; });
    eq.run();
    ASSERT_TRUE(wrote);

    EXPECT_TRUE(nodeA().pageCache().dirty(fd));
    EXPECT_EQ(nodeA().pageCache().dirtyPages(), 2u);
    // Flash still holds the old bytes until writeback.
    EXPECT_EQ(nodeA().fs().readContents(fd), content);
}

TEST_F(PageCacheTest, FlushWritesBackThroughTheDevice)
{
    bringUp(true);
    auto content = test::randomBytes(64 * 1024, 121);
    const int fd = nodeA().fs().create("doc", content);

    std::vector<std::uint8_t> update(4096, 0xAB);
    nodeA().pageCache().write(fd, 12288, update, {});
    eq.run();

    const auto writes_before = nodeA().ssd().bytesWritten();
    bool flushed = false;
    nodeA().pageCache().flush(fd, nullptr, [&] { flushed = true; });
    eq.run();
    ASSERT_TRUE(flushed);
    EXPECT_FALSE(nodeA().pageCache().dirty(fd));
    EXPECT_GT(nodeA().ssd().bytesWritten(), writes_before);

    auto expect = content;
    std::fill(expect.begin() + 12288, expect.begin() + 16384, 0xAB);
    EXPECT_EQ(nodeA().fs().readContents(fd), expect);
}

TEST_F(PageCacheTest, D2dSeesLatestDataAutomatically)
{
    // The paper's consistency scenario: app updates a file through
    // the kernel, then sends it D2D. The driver must reconcile with
    // the page cache or the receiver gets stale bytes.
    bringUp(true);
    auto content = test::randomBytes(128 * 1024, 122);
    const int fd = nodeA().fs().create("doc", content);
    sinkAtB();

    // Overwrite the middle through the buffered path.
    std::vector<std::uint8_t> update = test::randomBytes(20480, 123);
    nodeA().pageCache().write(fd, 65536, update, {});
    eq.run();
    ASSERT_TRUE(nodeA().pageCache().dirty(fd));

    bool done = false;
    nodeA().hdcLib().sendFile(fd, connA->fd, 0, content.size(),
                              ndp::Function::Md5, {}, true, nullptr,
                              [&](const hdclib::D2dResult &) {
                                  done = true;
                              });
    eq.run();
    ASSERT_TRUE(done);

    auto expect = content;
    std::copy(update.begin(), update.end(), expect.begin() + 65536);
    EXPECT_EQ(received, expect) << "receiver must see the update";
    EXPECT_FALSE(nodeA().pageCache().dirty(fd))
        << "driver flushed before issuing the command";
    EXPECT_GT(nodeA().pageCache().writebacks(), 0u);
}

TEST_F(PageCacheTest, PartialPageWritePreservesNeighbours)
{
    bringUp(true);
    auto content = test::randomBytes(8192, 124);
    const int fd = nodeA().fs().create("doc", content);

    std::vector<std::uint8_t> update(100, 0x55);
    nodeA().pageCache().write(fd, 4000, update, {});
    eq.run();
    nodeA().pageCache().flush(fd, nullptr, {});
    eq.run();

    auto expect = content;
    std::fill(expect.begin() + 4000, expect.begin() + 4100, 0x55);
    EXPECT_EQ(nodeA().fs().readContents(fd), expect);
}

TEST_F(PageCacheTest, CleanFileFlushIsFree)
{
    bringUp(true);
    const int fd = nodeA().fs().createEmpty("empty", 4096);
    const auto writes_before = nodeA().ssd().bytesWritten();
    bool done = false;
    nodeA().pageCache().flush(fd, nullptr, [&] { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(nodeA().ssd().bytesWritten(), writes_before);
}

} // namespace
} // namespace dcs
