/**
 * @file
 * Shared test fixtures: assembled single- and two-node systems.
 */

#ifndef DCS_TESTS_FIXTURES_HH
#define DCS_TESTS_FIXTURES_HH

#include <gtest/gtest.h>

#include "baselines/dcs_path.hh"
#include "baselines/sw_paths.hh"
#include "ndp/hash.hh"
#include "sim/rng.hh"
#include "sys/node.hh"

namespace dcs {
namespace test {

/** Deterministic payload bytes. */
inline std::vector<std::uint8_t>
randomBytes(std::size_t n, std::uint64_t seed = 1234)
{
    Rng rng(seed);
    std::vector<std::uint8_t> v(n);
    rng.fill(v.data(), n);
    return v;
}

/** Two nodes on a wire with a connection pair; A's mode is a knob. */
class TwoNodeFixture : public ::testing::Test
{
  protected:
    void
    bringUp(bool a_dcs, bool b_dcs = false)
    {
        sys = std::make_unique<sys::TwoNodeSystem>(eq);
        bool a_up = false, b_up = false;
        if (a_dcs)
            nodeA().bringUpDcs([&] { a_up = true; });
        else
            nodeA().bringUpHostStack([&] { a_up = true; });
        if (b_dcs)
            nodeB().bringUpDcs([&] { b_up = true; });
        else
            nodeB().bringUpHostStack([&] { b_up = true; });
        eq.run();
        ASSERT_TRUE(a_up);
        ASSERT_TRUE(b_up);
        auto [ca, cb] = host::establishPair(nodeA().tcp(), nodeB().tcp());
        connA = ca;
        connB = cb;
    }

    sys::Node &nodeA() { return sys->nodeA(); }
    sys::Node &nodeB() { return sys->nodeB(); }

    /** Collect everything B's host stack receives on connB. */
    void
    sinkAtB()
    {
        connB->onPayload = [this](std::uint32_t, BufChain p) {
            const auto bytes = p.toVector();
            received.insert(received.end(), bytes.begin(), bytes.end());
        };
    }

    EventQueue eq;
    std::unique_ptr<sys::TwoNodeSystem> sys;
    host::Connection *connA = nullptr;
    host::Connection *connB = nullptr;
    std::vector<std::uint8_t> received;
};

} // namespace test
} // namespace dcs

#endif // DCS_TESTS_FIXTURES_HH
