/**
 * @file
 * Additional device-level coverage: NVMe admin operations, NIC
 * non-LSO sends and counters, GPU kernel timing, and PCIe link
 * timing properties.
 */

#include <cstring>
#include <gtest/gtest.h>

#include "fixtures.hh"
#include "gpu/gpu.hh"
#include "pcie/link.hh"

namespace dcs {
namespace {

// ---------------------------------------------------------------------
// NVMe admin path (via the host driver's building blocks).
// ---------------------------------------------------------------------

class NvmeAdminTest : public ::testing::Test
{
  protected:
    NvmeAdminTest()
        : fabric(eq, "pcie"), h(eq, "host", fabric),
          ssd(eq, "ssd", 0x20000000), driver(eq, h, ssd)
    {
        fabric.attach(ssd);
        bool up = false;
        driver.init([&] { up = true; });
        eq.run();
        EXPECT_TRUE(up);
    }

    EventQueue eq;
    pcie::Fabric fabric;
    host::Host h;
    nvme::NvmeSsd ssd;
    host::NvmeHostDriver driver;
};

TEST_F(NvmeAdminTest, DedicatedQueuePairWorksStandalone)
{
    // Create a queue pair whose SQ/CQ live in plain host memory and
    // drive it by hand — exactly what the HDC controller does from
    // BRAM, proving the device does not care who owns the queues.
    const Addr sq = h.allocDma(64 * 64);
    const Addr cq = h.allocDma(64 * 16);
    bool created = false;
    driver.createDedicatedQueuePair(3, 64, sq, cq,
                                    [&] { created = true; });
    eq.run();
    ASSERT_TRUE(created);

    // Hand-build a read SQE for LBA 5 into the new queue.
    auto content = test::randomBytes(4096, 70);
    ssd.flash().write(5 * 4096, content.data(), content.size());
    const Addr buf = h.allocDma(4096);

    nvme::SqEntry sqe{};
    sqe.opcode = static_cast<std::uint8_t>(nvme::IoOp::Read);
    sqe.nsid = 1;
    sqe.cid = 0x77;
    sqe.prp1 = buf;
    sqe.cdw10 = 5;
    sqe.cdw12 = 0;
    h.dram().write(h.dramOffset(sq), &sqe, sizeof(sqe));
    std::vector<std::uint8_t> db(4, 0);
    db[0] = 1;
    h.fabric().memWrite(h.bridge(), ssd.bar0() + nvme::sqDoorbell(3),
                        std::move(db), {});
    eq.run();

    // Poll the CQ functionally (no interrupt was requested).
    nvme::CqEntry cqe;
    h.dram().read(h.dramOffset(cq), &cqe, sizeof(cqe));
    EXPECT_EQ(cqe.cid, 0x77);
    EXPECT_EQ(cqe.statusPhase & 1, 1);       // phase bit set
    EXPECT_EQ(cqe.statusPhase >> 1, 0);      // success
    EXPECT_EQ(h.dram().readBytes(h.dramOffset(buf), 4096), content);
}

TEST_F(NvmeAdminTest, FlushCompletesQuickly)
{
    const Addr dst = h.allocDma(4096);
    (void)dst;
    // Issue a flush through the IO queue using the raw entry path.
    bool done = false;
    // Reuse readBlocks' machinery by writing then flushing: the
    // public driver path exposes read/write; flush is device-level.
    driver.writeBlocks(1, 1, h.allocDma(4096), nullptr,
                       [&] { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_GE(ssd.commandsCompleted(), 3u);
}

TEST_F(NvmeAdminTest, ControllerDisableClearsQueues)
{
    // CC.EN=0 tears down queues; a doorbell afterwards dies.
    std::vector<std::uint8_t> zero(4, 0);
    h.fabric().memWrite(h.bridge(), ssd.bar0() + nvme::reg::cc,
                        std::move(zero), {});
    eq.run();
    EXPECT_DEATH(
        {
            std::vector<std::uint8_t> db(4, 1);
            h.fabric().memWrite(h.bridge(),
                                ssd.bar0() + nvme::sqDoorbell(1),
                                std::move(db), {});
            eq.run();
        },
        "doorbell while disabled");
}

// ---------------------------------------------------------------------
// NIC details.
// ---------------------------------------------------------------------

class NicDetailTest : public test::TwoNodeFixture
{
};

TEST_F(NicDetailTest, NonLsoSingleFrame)
{
    bringUp(false);
    sinkAtB();
    // A sub-MSS payload produces exactly one frame even with LSO on.
    const Addr buf = nodeA().host().allocDma(4096);
    auto content = test::randomBytes(1200, 71);
    nodeA().host().dram().write(nodeA().host().dramOffset(buf),
                                content.data(), content.size());
    const auto frames_before = nodeA().nic().framesSent();
    bool sent = false;
    nodeA().tcp().send(*connA, buf, 1200, 8960, nullptr,
                       [&] { sent = true; });
    eq.run();
    EXPECT_TRUE(sent);
    EXPECT_EQ(nodeA().nic().framesSent() - frames_before, 1u);
    EXPECT_EQ(received, content);
}

TEST_F(NicDetailTest, CountersAreConsistent)
{
    bringUp(false);
    sinkAtB();
    const std::uint32_t len = 200000;
    const Addr buf = nodeA().host().allocDma(len);
    bool sent = false;
    nodeA().tcp().send(*connA, buf, len, 8192, nullptr,
                       [&] { sent = true; });
    eq.run();
    ASSERT_TRUE(sent);
    EXPECT_EQ(nodeA().nic().framesSent(), nodeB().nic().framesReceived());
    EXPECT_EQ(nodeB().nic().framesDropped(), 0u);
    EXPECT_EQ(nodeA().nic().payloadBytesSent(), len);
    EXPECT_EQ(sys->wire().framesCarried(), nodeA().nic().framesSent());
    EXPECT_GT(sys->wire().bytesCarried(), len); // headers add up
}

// ---------------------------------------------------------------------
// GPU timing model.
// ---------------------------------------------------------------------

TEST(GpuModel, ComputeTimeScalesWithSizeAndFunction)
{
    EventQueue eq;
    pcie::Fabric fabric(eq, "pcie");
    gpu::Gpu g(eq, "gpu", 0x400000000ull);
    fabric.attach(g);

    const Tick md5_small = g.computeTime(ndp::Function::Md5, 4096);
    const Tick md5_big = g.computeTime(ndp::Function::Md5, 65536);
    EXPECT_NEAR(double(md5_big) / double(md5_small), 16.0, 0.5);
    // CRC is far cheaper than SHA-256 per byte on the model.
    EXPECT_LT(g.computeTime(ndp::Function::Crc32, 65536),
              g.computeTime(ndp::Function::Sha256, 65536));
}

TEST(GpuModel, KernelsSerializeOnTheEngine)
{
    EventQueue eq;
    pcie::Fabric fabric(eq, "pcie");
    gpu::Gpu g(eq, "gpu", 0x400000000ull);
    fabric.attach(g);

    Rng rng(72);
    std::vector<std::uint8_t> data(65536);
    rng.fill(data.data(), data.size());
    g.mem().write(0, data.data(), data.size());

    Tick first = 0, second = 0;
    g.launchKernel(ndp::Function::Md5, 0, 65536, 0, 1 << 20, {},
                   [&](std::uint64_t) { first = eq.now(); });
    g.launchKernel(ndp::Function::Md5, 0, 65536, 0, 1 << 20, {},
                   [&](std::uint64_t) { second = eq.now(); });
    eq.run();
    EXPECT_GT(second, first);
    EXPECT_GE(second - first, g.computeTime(ndp::Function::Md5, 65536));
    EXPECT_EQ(g.kernelsLaunched(), 2u);
}

// ---------------------------------------------------------------------
// PCIe link properties.
// ---------------------------------------------------------------------

TEST(LinkProperties, MonotoneInPayloadAndGen)
{
    for (auto gen : {pcie::Gen::Gen1, pcie::Gen::Gen2, pcie::Gen::Gen3}) {
        pcie::Link l(pcie::LinkParams{gen, 8, nanoseconds(100), 256, 26});
        Tick prev = 0;
        for (std::uint64_t bytes : {0ull, 64ull, 4096ull, 65536ull}) {
            const Tick t = l.serializationTime(bytes);
            EXPECT_GE(t, prev);
            prev = t;
        }
    }
    // Higher generation is never slower.
    pcie::Link g2(pcie::LinkParams{pcie::Gen::Gen2, 8});
    pcie::Link g3(pcie::LinkParams{pcie::Gen::Gen3, 8});
    EXPECT_LT(g3.serializationTime(65536), g2.serializationTime(65536));
}

TEST(LinkProperties, BusyTimeAccumulates)
{
    pcie::Link l(pcie::LinkParams{});
    l.reserve(0, 4096);
    l.reserve(0, 4096);
    EXPECT_EQ(l.busyTime(), 2 * l.serializationTime(4096));
    EXPECT_EQ(l.bytesCarried(), 8192u);
}

} // namespace
} // namespace dcs
