/**
 * @file
 * NDP pool behaviour at the unit level: Table III throughput maps to
 * simulated time, streams pin to units while independent streams
 * parallelize, and compression length propagation reaches the
 * dependent device command.
 */

#include <gtest/gtest.h>

#include "fixtures.hh"
#include "hdc/timing.hh"

namespace dcs {
namespace {

class NdpPoolTest : public test::TwoNodeFixture
{
  protected:
    /** Time one buffer-to-buffer transform of @p size bytes. */
    Tick
    timeTransform(ndp::Function fn, std::uint64_t size,
                  std::uint64_t src_off, std::uint64_t dst_off,
                  std::vector<std::uint8_t> aux = {})
    {
        auto content = test::randomBytes(size, 160);
        nodeA().engine().dram().write(src_off, content.data(), size);
        hdclib::D2dRequest req;
        req.src = hdc::Endpoint::HdcBuffer;
        req.dst = hdc::Endpoint::HdcBuffer;
        req.srcBufOff = src_off;
        req.dstBufOff = dst_off;
        req.len = size;
        req.fn = fn;
        req.aux = std::move(aux);
        const Tick start = eq.now();
        Tick end = 0;
        nodeA().hdcDriver().submit(req, nullptr,
                                   [&](const hdclib::D2dResult &) {
                                       end = eq.now();
                                   });
        eq.run();
        EXPECT_GT(end, start);
        return end - start;
    }
};

TEST_F(NdpPoolTest, ComputeTimeTracksTableIii)
{
    bringUp(true);
    // Buffer-to-buffer ops isolate the NDP unit from device timing.
    const std::uint64_t size = 256 * 1024;
    const Tick md5 = timeTransform(ndp::Function::Md5, size, 100 << 20,
                                   120 << 20);
    const Tick crc = timeTransform(ndp::Function::Crc32, size,
                                   140 << 20, 160 << 20);
    // MD5 at 0.97 Gbps vs CRC32 at 10 Gbps: about a 10x gap.
    const double ratio = double(md5) / double(crc);
    EXPECT_GT(ratio, 5.0);
    EXPECT_LT(ratio, 15.0);
    // Absolute: 256 KiB at 0.97 Gbps ~ 2.16 ms of unit time.
    EXPECT_NEAR(toMilliseconds(md5), 2.16, 0.5);
}

TEST_F(NdpPoolTest, IndependentStreamsUseSeparateUnits)
{
    bringUp(true);
    // Two concurrent MD5 commands must round-robin onto different
    // units: together they take about one command's time, not two.
    const std::uint64_t size = 512 * 1024;
    auto c1 = test::randomBytes(size, 161);
    auto c2 = test::randomBytes(size, 162);
    nodeA().engine().dram().write(100 << 20, c1.data(), size);
    nodeA().engine().dram().write(140 << 20, c2.data(), size);

    int done = 0;
    const Tick start = eq.now();
    Tick end = 0;
    for (int i = 0; i < 2; ++i) {
        hdclib::D2dRequest req;
        req.src = hdc::Endpoint::HdcBuffer;
        req.dst = hdc::Endpoint::HdcBuffer;
        req.srcBufOff = (i == 0 ? 100ull : 140ull) << 20;
        req.dstBufOff = (i == 0 ? 120ull : 160ull) << 20;
        req.len = size;
        req.fn = ndp::Function::Md5;
        nodeA().hdcDriver().submit(req, nullptr,
                                   [&](const hdclib::D2dResult &) {
                                       if (++done == 2)
                                           end = eq.now();
                                   });
    }
    eq.run();
    ASSERT_EQ(done, 2);
    const double one_ms = 512.0 * 1024 * 8 / 0.97e9 * 1e3;
    EXPECT_LT(toMilliseconds(end - start), 1.5 * one_ms)
        << "two units must overlap the two streams";
}

TEST_F(NdpPoolTest, DigestArrivesForBufferOps)
{
    bringUp(true);
    const std::uint64_t size = 100000;
    auto content = test::randomBytes(size, 163);
    nodeA().engine().dram().write(100 << 20, content.data(), size);

    hdclib::D2dRequest req;
    req.src = hdc::Endpoint::HdcBuffer;
    req.dst = hdc::Endpoint::HdcBuffer;
    req.srcBufOff = 100ull << 20;
    req.dstBufOff = 120ull << 20;
    req.len = size;
    req.fn = ndp::Function::Sha1;
    req.wantDigest = true;
    hdclib::D2dResult res;
    bool fin = false;
    nodeA().hdcDriver().submit(req, nullptr,
                               [&](const hdclib::D2dResult &r) {
                                   res = r;
                                   fin = true;
                               });
    eq.run();
    ASSERT_TRUE(fin);
    EXPECT_EQ(res.digest, ndp::makeHash("sha1")->oneShot(content));
    // Pass-through hashes on buffer endpoints are digest-only (the
    // engine hashes in place); the source must be untouched.
    auto src_after = nodeA().engine().dram().readBytes(100ull << 20,
                                                       size);
    EXPECT_EQ(src_after, content);
}

TEST_F(NdpPoolTest, GzipShrinksWireBytesProportionally)
{
    // Length inheritance: the NIC send must carry the compressed
    // length per chunk, so wire bytes track compressibility.
    bringUp(true);
    sinkAtB();
    std::vector<std::uint8_t> text(300000);
    for (std::size_t i = 0; i < text.size(); ++i)
        text[i] = static_cast<std::uint8_t>("zxcv "[i % 5]);
    const int fd = nodeA().fs().create("text", text);

    const auto wire_before = sys->wire().bytesCarried();
    bool fin = false;
    nodeA().hdcLib().sendFile(fd, connA->fd, 0, text.size(),
                              ndp::Function::Gzip, {}, false, nullptr,
                              [&](const hdclib::D2dResult &) {
                                  fin = true;
                              });
    eq.run();
    ASSERT_TRUE(fin);
    const auto wire_bytes = sys->wire().bytesCarried() - wire_before;
    EXPECT_LT(wire_bytes, text.size() / 5)
        << "highly repetitive text must compress on the wire";
    EXPECT_EQ(received.size(), wire_bytes -
                                   sys->wire().framesCarried() *
                                       net::fullHeaderLen);
}

} // namespace
} // namespace dcs
