/**
 * @file
 * Packet codec, NIC (LSO, rings, completions) and TCP-layer tests.
 */

#include <gtest/gtest.h>

#include "host/nic_driver.hh"
#include "host/tcp.hh"
#include "net/packet.hh"
#include "net/wire.hh"
#include "nic/nic.hh"
#include "sim/rng.hh"

namespace dcs {
namespace {

net::FlowInfo
sampleFlow()
{
    net::FlowInfo f;
    f.srcMac = {2, 0, 0, 0, 0, 1};
    f.dstMac = {2, 0, 0, 0, 0, 2};
    f.srcIp = net::ipv4(10, 0, 0, 1);
    f.dstIp = net::ipv4(10, 0, 0, 2);
    f.srcPort = 40000;
    f.dstPort = 8080;
    f.seq = 1000;
    f.ack = 5000;
    return f;
}

TEST(Packet, BuildParseRoundTrip)
{
    Rng rng(3);
    std::vector<std::uint8_t> payload(1400);
    rng.fill(payload.data(), payload.size());

    const auto frame = net::buildFrame(sampleFlow(), payload, 42);
    EXPECT_EQ(frame.size(), net::fullHeaderLen + payload.size());

    auto parsed = net::parseFrame(frame);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->flow.srcPort, 40000);
    EXPECT_EQ(parsed->flow.dstPort, 8080);
    EXPECT_EQ(parsed->flow.seq, 1000u);
    EXPECT_EQ(parsed->ipId, 42);
    EXPECT_EQ(parsed->payloadLen, payload.size());
    const std::vector<std::uint8_t> got(
        frame.begin() + static_cast<long>(parsed->payloadOffset),
        frame.end());
    EXPECT_EQ(got, payload);
}

TEST(Packet, ChecksumsDetectCorruption)
{
    std::vector<std::uint8_t> payload(100, 0x55);
    auto frame = net::buildFrame(sampleFlow(), payload, 1);
    ASSERT_TRUE(net::parseFrame(frame).has_value());

    auto bad_ip = frame;
    bad_ip[net::ethHeaderLen + 8] ^= 0xff; // TTL
    EXPECT_FALSE(net::parseFrame(bad_ip).has_value());

    auto bad_payload = frame;
    bad_payload.back() ^= 0x01;
    EXPECT_FALSE(net::parseFrame(bad_payload).has_value());
}

TEST(Packet, EmptyPayloadFrame)
{
    auto frame = net::buildFrame(sampleFlow(), {}, 9);
    auto parsed = net::parseFrame(frame);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->payloadLen, 0u);
}

TEST(Packet, HeaderTemplateExtraction)
{
    const auto hdr = net::buildHeaders(
        sampleFlow(), std::span<const std::uint8_t>{}, 0);
    const auto f = net::parseHeaderTemplate(hdr);
    EXPECT_EQ(f.srcIp, net::ipv4(10, 0, 0, 1));
    EXPECT_EQ(f.dstPort, 8080);
    EXPECT_EQ(f.seq, 1000u);
}

TEST(Packet, NonIpv4Rejected)
{
    auto frame = net::buildFrame(sampleFlow(), {}, 1);
    frame[12] = 0x86; // not 0x0800
    frame[13] = 0xdd;
    EXPECT_FALSE(net::parseFrame(frame).has_value());
}

// ---------------------------------------------------------------------
// NIC + wire + host driver.
// ---------------------------------------------------------------------

class NicPairTest : public ::testing::Test
{
  protected:
    NicPairTest()
        : fabA(eq, "pcieA"), fabB(eq, "pcieB"),
          hostA(eq, "hostA", fabA), hostB(eq, "hostB", fabB),
          nicA(eq, "nicA", 0x21000000, {2, 0, 0, 0, 0, 0xaa}),
          nicB(eq, "nicB", 0x21000000, {2, 0, 0, 0, 0, 0xbb}),
          wire(eq, "wire"), drvA(eq, hostA, nicA), drvB(eq, hostB, nicB),
          tcpA(eq, hostA, drvA), tcpB(eq, hostB, drvB)
    {
        fabA.attach(nicA);
        fabB.attach(nicB);
        wire.attach(nicA, nicB);
    }

    void
    init()
    {
        bool a = false, b = false;
        drvA.init([&] { a = true; });
        drvB.init([&] { b = true; });
        eq.run();
        ASSERT_TRUE(a && b);
    }

    EventQueue eq;
    pcie::Fabric fabA, fabB;
    host::Host hostA, hostB;
    nic::Nic nicA, nicB;
    net::Wire wire;
    host::NicHostDriver drvA, drvB;
    host::TcpStack tcpA, tcpB;
};

TEST_F(NicPairTest, LsoSegmentsLargePayload)
{
    init();
    auto [ca, cb] = host::establishPair(tcpA, tcpB);

    Rng rng(4);
    const std::uint32_t len = 100000;
    std::vector<std::uint8_t> payload(len);
    rng.fill(payload.data(), payload.size());
    const Addr buf = hostA.allocDma(len);
    hostA.dram().write(hostA.dramOffset(buf), payload.data(), len);

    std::vector<std::uint8_t> got;
    cb->onPayload = [&](std::uint32_t, BufChain p) {
        const auto bytes = p.toVector();
        got.insert(got.end(), bytes.begin(), bytes.end());
    };

    bool sent = false;
    tcpA.send(*ca, buf, len, 8192, nullptr, [&] { sent = true; });
    eq.run();

    EXPECT_TRUE(sent);
    EXPECT_EQ(got, payload);
    // 100000 / 8192 = 13 frames.
    EXPECT_EQ(nicA.framesSent(), 13u);
    EXPECT_EQ(nicB.framesReceived(), 13u);
    EXPECT_EQ(nicB.framesDropped(), 0u);
    EXPECT_EQ(tcpB.bytesReceived(), len);
}

TEST_F(NicPairTest, WireRateBoundsThroughput)
{
    init();
    auto [ca, cb] = host::establishPair(tcpA, tcpB);
    cb->onPayload = [](std::uint32_t, BufChain) {};

    const std::uint32_t len = 4 << 20; // 4 MiB
    const Addr buf = hostA.allocDma(len);
    const Tick start = eq.now();
    Tick end = 0;
    tcpA.send(*ca, buf, len, 8960, nullptr, [&] { end = eq.now(); });
    eq.run();
    const double gbps = double(len) * 8 / toSeconds(end - start) / 1e9;
    EXPECT_LT(gbps, 10.0);
    EXPECT_GT(gbps, 6.0); // effective ~9 minus DMA pipeline overhead
}

TEST_F(NicPairTest, SequencesAdvanceAcrossSends)
{
    init();
    auto [ca, cb] = host::establishPair(tcpA, tcpB);
    std::vector<std::uint32_t> seqs;
    cb->onPayload = [&](std::uint32_t seq, BufChain p) {
        seqs.push_back(seq);
        seqs.push_back(static_cast<std::uint32_t>(p.size()));
    };
    const Addr buf = hostA.allocDma(8192);
    bool done = false;
    tcpA.send(*ca, buf, 4096, 8960, nullptr, [&] {
        tcpA.send(*ca, buf, 4096, 8960, nullptr, [&] { done = true; });
    });
    eq.run();
    ASSERT_TRUE(done);
    ASSERT_EQ(seqs.size(), 4u);
    EXPECT_EQ(seqs[0] + seqs[1], seqs[2]); // contiguous stream
}

TEST_F(NicPairTest, BidirectionalTrafficIsIndependent)
{
    init();
    auto [ca, cb] = host::establishPair(tcpA, tcpB);
    std::uint64_t a_got = 0, b_got = 0;
    ca->onPayload = [&](std::uint32_t, BufChain p) {
        a_got += p.size();
    };
    cb->onPayload = [&](std::uint32_t, BufChain p) {
        b_got += p.size();
    };
    const Addr bufA = hostA.allocDma(65536);
    const Addr bufB = hostB.allocDma(65536);
    tcpA.send(*ca, bufA, 65536, 8960, nullptr, {});
    tcpB.send(*cb, bufB, 32768, 8960, nullptr, {});
    eq.run();
    EXPECT_EQ(b_got, 65536u);
    EXPECT_EQ(a_got, 32768u);
}

} // namespace
} // namespace dcs
