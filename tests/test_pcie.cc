/**
 * @file
 * Unit tests for the PCIe fabric: links, routing, DMA, P2P, MSI.
 */

#include <cstring>
#include <gtest/gtest.h>

#include "mem/memory.hh"
#include "pcie/fabric.hh"
#include "pcie/host_bridge.hh"
#include "pcie/link.hh"

namespace dcs {
namespace pcie {
namespace {

TEST(Link, LaneRates)
{
    EXPECT_DOUBLE_EQ(laneGbps(Gen::Gen1), 2.0);
    EXPECT_DOUBLE_EQ(laneGbps(Gen::Gen2), 4.0);
    EXPECT_NEAR(laneGbps(Gen::Gen3), 7.877, 0.001);
}

TEST(Link, SerializationScalesWithPayload)
{
    Link l(LinkParams{Gen::Gen2, 8, nanoseconds(100), 256, 26});
    const Tick t1 = l.serializationTime(4096);
    const Tick t2 = l.serializationTime(8192);
    EXPECT_GT(t2, t1);
    EXPECT_NEAR(double(t2) / double(t1), 2.0, 0.05);
    // Gen2 x8 = 32 Gbps raw; 4 KiB + 16 TLP headers ~ 1.13 us.
    EXPECT_NEAR(toMicroseconds(t1), 1.13, 0.1);
}

TEST(Link, BackToBackTransfersQueue)
{
    Link l(LinkParams{});
    const Tick end1 = l.reserve(0, 4096);
    const Tick end2 = l.reserve(0, 4096);
    EXPECT_EQ(end2, 2 * end1); // second waits for the first
    EXPECT_EQ(l.bytesCarried(), 8192u);
}

TEST(Link, EmptyPayloadStillCostsOneTlp)
{
    Link l(LinkParams{});
    EXPECT_GT(l.serializationTime(0), 0u);
}

/** A trivial memory-backed endpoint for fabric tests. */
class MemDevice : public Device
{
  public:
    MemDevice(EventQueue &eq, std::string name, Addr base,
              std::uint64_t size)
        : Device(eq, std::move(name)), mem(size), base(base)
    {
        claimRange({base, size});
    }

    void
    busWrite(Addr addr, std::span<const std::uint8_t> data) override
    {
        ++writes;
        mem.write(addr - base, data.data(), data.size());
    }

    void
    busRead(Addr addr, std::span<std::uint8_t> data) override
    {
        mem.read(addr - base, data.data(), data.size());
    }

    Memory mem;
    Addr base;
    int writes = 0;
};

class FabricTest : public ::testing::Test
{
  protected:
    FabricTest()
        : fabric(eq, "switch"),
          devA(eq, "devA", 0x1000000, 1 << 20),
          devB(eq, "devB", 0x2000000, 1 << 20),
          hostMem(1 << 20),
          bridge(eq, "bridge", hostMem, 0x100000000ull, 0xfee00000ull)
    {
        fabric.attach(bridge);
        fabric.attach(devA);
        fabric.attach(devB);
    }

    EventQueue eq;
    Fabric fabric;
    MemDevice devA;
    MemDevice devB;
    Memory hostMem;
    HostBridge bridge;
};

TEST_F(FabricTest, RoutesByAddress)
{
    EXPECT_EQ(fabric.route(0x1000010), &devA);
    EXPECT_EQ(fabric.route(0x2000010), &devB);
    EXPECT_EQ(fabric.route(0x100000000ull), &bridge);
    EXPECT_EQ(fabric.route(0x9999999999ull), nullptr);
}

TEST_F(FabricTest, PeerToPeerWriteDelivers)
{
    std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
    bool done = false;
    fabric.memWrite(devA, 0x2000100, payload, [&] { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(devB.mem.readBytes(0x100, 5), payload);
    EXPECT_EQ(fabric.p2pBytes(), 5u);
    EXPECT_GT(eq.now(), 0u); // transfers take time
}

TEST_F(FabricTest, ReadReturnsData)
{
    devB.mem.writeLe<std::uint32_t>(0x40, 0xfeedface);
    std::uint32_t got = 0;
    fabric.memRead(devA, 0x2000040, 4, [&](BufChain d) {
        d.copyOut(0, &got, 4);
    });
    eq.run();
    EXPECT_EQ(got, 0xfeedfaceu);
}

TEST_F(FabricTest, HostTransfersAreNotP2p)
{
    fabric.memWrite(devA, 0x100000000ull + 0x10,
                    std::vector<std::uint8_t>(64, 0xaa), {});
    eq.run();
    EXPECT_EQ(fabric.p2pBytes(), 0u);
    EXPECT_EQ(fabric.totalBytes(), 64u);
    EXPECT_EQ(bridge.hostDmaBytes(), 64u);
    EXPECT_EQ(hostMem.readLe<std::uint8_t>(0x10), 0xaa);
}

TEST_F(FabricTest, MsiDispatch)
{
    std::uint16_t fired_vec = 0xffff;
    std::uint32_t fired_val = 0;
    bridge.registerMsi(3, [&](std::uint16_t v, std::uint32_t val) {
        fired_vec = v;
        fired_val = val;
    });
    std::vector<std::uint8_t> data(4);
    const std::uint32_t value = 77;
    std::memcpy(data.data(), &value, 4);
    fabric.memWrite(devA, bridge.msiAddr(3), std::move(data), {});
    eq.run();
    EXPECT_EQ(fired_vec, 3);
    EXPECT_EQ(fired_val, 77u);
}

TEST_F(FabricTest, BandwidthContention)
{
    // Two large writes from the same device serialize on its link.
    Tick t1 = 0, t2 = 0;
    fabric.memWrite(devA, 0x2000000, std::vector<std::uint8_t>(65536),
                    [&] { t1 = eq.now(); });
    fabric.memWrite(devA, 0x2010000, std::vector<std::uint8_t>(65536),
                    [&] { t2 = eq.now(); });
    eq.run();
    EXPECT_GT(t2, t1);
    EXPECT_GT(t1, transferTime(65536, 32.0)); // at least wire time
}

TEST_F(FabricTest, SlotLimitEnforced)
{
    FabricParams p;
    p.slots = 1;
    Fabric small(eq, "small", p);
    MemDevice d1(eq, "d1", 0x10000, 4096);
    MemDevice d2(eq, "d2", 0x20000, 4096);
    small.attach(d1);
    EXPECT_EXIT(small.attach(d2), ::testing::ExitedWithCode(1),
                "slots occupied");
}

TEST_F(FabricTest, BarOverlapRejected)
{
    MemDevice clash(eq, "clash", 0x1000800, 4096); // overlaps devA
    EXPECT_EXIT(fabric.attach(clash), ::testing::ExitedWithCode(1),
                "BAR overlap");
}

TEST_F(FabricTest, UnmappedAddressPanics)
{
    EXPECT_DEATH(
        {
            fabric.memWrite(devA, 0x9f00000000ull,
                            std::vector<std::uint8_t>(4), {});
            eq.run();
        },
        "unmapped");
}

} // namespace
} // namespace pcie
} // namespace dcs
