// Fixture: pointer-order. Any ordering, hashing, or keying derived
// from a raw pointer value follows the allocator and ASLR, not the
// model, so two runs diverge.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

struct Widget {
    int id = 0;
};

std::map<Widget *, int> rank; // FIRE(pointer-order)

std::set<const Widget *> seen; // FIRE(pointer-order)

std::size_t
hashWidget(Widget *w)
{
    return std::hash<Widget *>{}(w); // FIRE(pointer-order)
}

std::uintptr_t
asKey(Widget *w)
{
    return reinterpret_cast<std::uintptr_t>(w); // FIRE(pointer-order)
}

std::vector<Widget *> pool;

void
orderPool()
{
    std::sort(pool.begin(), pool.end()); // FIRE(pointer-order)
}

void
orderIds(std::vector<int> &ids)
{
    // Sorting a sequence of stable integer ids is the fix, not the
    // hazard.
    std::sort(ids.begin(), ids.end()); // CLEAN
}

std::map<int, Widget *> byId; // CLEAN (pointer value, stable int key)
