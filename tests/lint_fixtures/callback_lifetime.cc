// Fixture: callback-lifetime. A lambda handed to schedule()/
// scheduleAt()/InlineCallback runs later; by-reference captures of
// stack locals (or elements of a growable container) dangle if the
// referent dies first. Capture by value or by stable id.
#include <cstdint>
#include <vector>

struct Conn {
    int fd = 0;
};

struct EventQueue {
    template <typename F> void schedule(int delay, F &&fn);
    template <typename F> void scheduleAt(std::uint64_t tick, F &&fn);
};

template <typename F> struct InlineCallback {
    explicit InlineCallback(F &&fn);
};

struct Mover {
    EventQueue eq;
    std::vector<Conn> conns;

    void hazardLocal()
    {
        int budget = 8;
        eq.schedule(5, [&budget] { // FIRE(callback-lifetime)
            budget -= 1;
        });
    }

    void hazardElement(Conn &c)
    {
        eq.scheduleAt(90, [this, &c] { // FIRE(callback-lifetime)
            c.fd = -1;
        });
    }

    void hazardWrapped()
    {
        int total = 0;
        auto cb = InlineCallback([&total] { // FIRE(callback-lifetime)
            total += 1;
        });
        (void)cb;
    }

    void safeIndex(std::size_t idx)
    {
        // The fix shape: capture the index, re-derive the element when
        // the callback fires.
        eq.schedule(5, [this, idx] { // CLEAN
            conns[idx].fd = -1;
        });
    }

    void safeSubscript(std::vector<int> &slots)
    {
        // A subscript expression inside the argument list is not a
        // lambda introducer.
        eq.schedule(slots[0], [this] { // CLEAN (value capture)
            conns.clear();
        });
    }
};
