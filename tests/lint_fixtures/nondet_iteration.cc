// Fixture: nondet-iteration. Scheduling, emitting, or mutating
// external state from inside an unordered-container loop makes run
// order implementation-defined.
#include "nondet_iteration.hh"

#include <algorithm>
#include <cstdio>

struct EventQueue {
    void schedule(int delay, int ev);
};

extern EventQueue eq;
extern int makeEvent(int id);

void
Registry::scheduleAll()
{
    for (const auto &[id, w] : widgets_) { // FIRE(nondet-iteration)
        eq.schedule(w.delay, makeEvent(id));
    }
}

void
Registry::dump()
{
    // Wrapped head + this-> qualification: the engine works on tokens,
    // so line breaks must not hide the hazard.
    for (const auto &[id, w] : // FIRE(nondet-iteration)
         this->widgets_) {
        std::printf("%d %d\n", id, w.delay);
    }
}

void
Registry::retire()
{
    // Accessor-mediated iteration, body mutates a member that outlives
    // the loop.
    for (const auto &[id, w] : live()) { // FIRE(nondet-iteration)
        trace_.erase(id);
        (void)w;
    }
}

void
Registry::snapshotSorted()
{
    // Snapshot-and-sort: the loop only appends keys, and the vector is
    // sorted immediately after — order-independent by construction.
    std::vector<int> keys;
    for (const auto &[id, w] : widgets_) { // CLEAN
        keys.push_back(id);
        (void)w;
    }
    std::sort(keys.begin(), keys.end());
    order_ = keys;
}

long
Registry::checksum() const
{
    // Pure commutative accumulation: no scheduling, no emission, no
    // external mutation.
    long sum = 0;
    for (const auto &[id, w] : widgets_) { // CLEAN
        sum += id + w.delay;
    }
    return sum;
}
