// Fixture: silent-switch-default. A default: that only breaks
// swallows impossible enum values; impossible cases must panic().
enum class Op { Read, Write, Flush };

void panic(const char *fmt, ...);
int handleRead();
int handleWrite();

int
silentBreak(Op op)
{
    int r = 0;
    switch (op) {
      case Op::Read:
        r = handleRead();
        break;
      case Op::Write:
        r = handleWrite();
        break;
      default: // FIRE(silent-switch-default)
        break;
    }
    return r;
}

int
loudDefault(Op op)
{
    switch (op) {
      case Op::Read:
        return handleRead();
      case Op::Write:
        return handleWrite();
      default: // CLEAN (panics on the impossible case)
        panic("unhandled op %d", static_cast<int>(op));
        return 0;
    }
}

struct Plain {
    Plain() = default; // CLEAN (defaulted special member)
};
