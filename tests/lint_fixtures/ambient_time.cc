// Fixture: ambient-time-randomness. Wall-clock and ambient-randomness
// sources make runs irreproducible; simulated time comes from
// EventQueue::now() and randomness from dcs::Rng.
//
// The CLEAN half pins the false positives the old regex lint had:
// identifiers merely *containing* "time", member calls, and
// user-namespace functions must not fire.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace util {
int time(int ticks);
} // namespace util

struct Stopwatch {
    long time() const;
};

long
wallSeconds()
{
    return ::time(nullptr); // FIRE(ambient-time-randomness)
}

long
wallNanos()
{
    auto t = std::chrono::steady_clock::now(); // FIRE(ambient-time-randomness) x2
    return t.time_since_epoch().count();
}

int
diceRoll()
{
    return rand() % 6; // FIRE(ambient-time-randomness)
}

unsigned
seedFromHardware()
{
    std::random_device rd; // FIRE(ambient-time-randomness)
    std::mt19937 gen(rd()); // FIRE(ambient-time-randomness)
    return gen();
}

constexpr int kDefaultTimeout = 250;

int
pickTimeout(int timeout)
{
    // Identifiers containing "time" are not time sources. // CLEAN
    return timeout > 0 ? timeout : kDefaultTimeout;
}

long
readStopwatch(const Stopwatch &sw)
{
    return sw.time(); // CLEAN (member call on an object)
}

int
scaledTicks()
{
    return util::time(3); // CLEAN (user function in a namespace)
}
