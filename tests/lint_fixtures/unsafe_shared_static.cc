// Fixture: unsafe-shared-static. Mutable statics and anon-namespace
// globals are shared across the parallel bench-runner threads; they
// must be atomic, thread_local, const, or carry a justified
// DCS_THREAD_SAFE annotation.
#include <atomic>
#include <string>

#define DCS_THREAD_SAFE(why)

namespace {

int g_calls = 0; // FIRE(unsafe-shared-static)

std::atomic<int> g_atomicCalls{0}; // CLEAN

thread_local int g_perThread = 0; // CLEAN

const std::string g_label = "fixture"; // CLEAN

DCS_THREAD_SAFE("written only by the driver thread before any worker "
                "is spawned; read-only afterwards")
std::string g_annotated = "ok"; // CLEAN (annotated)

} // namespace

int
bump()
{
    static int counter = 0; // FIRE(unsafe-shared-static)
    return ++counter;
}

int
bumpAtomic()
{
    static std::atomic<int> counter{0}; // CLEAN
    return ++counter;
}

int
shortReason()
{
    DCS_THREAD_SAFE("trust me") // FIRE(bad-waiver) reason too short
    static int oops = 0;
    return ++oops;
}

const int &
magicConst()
{
    static const int table = 42; // CLEAN (const magic static)
    return table;
}
