// Fixture header: container declarations the paired .cc iterates.
// The index must resolve these across the file boundary.
#ifndef LINT_FIXTURE_NONDET_ITERATION_HH
#define LINT_FIXTURE_NONDET_ITERATION_HH

#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Widget {
    int delay = 0;
};

class Registry {
  public:
    // Accessor returning a mutable reference to an unordered
    // container: iterating through it is as hazardous as iterating
    // the member directly.
    std::unordered_map<int, Widget> &live() { return live_; }

    void scheduleAll();
    void dump();
    void retire();
    void snapshotSorted();
    long checksum() const;

  private:
    std::unordered_map<int, Widget> widgets_;
    std::unordered_map<int, Widget> live_;
    std::unordered_set<int> trace_;
    std::vector<int> order_;
};

#endif
