// Fixture: a pre-existing finding suppressed by the checked-in
// fixture baseline (tests/lint_fixtures/baseline.json) rather than a
// waiver comment — the adoption path for legacy code.
#include <cstdlib>

int
legacyDiceRoll()
{
    return rand() % 6; // BASELINED (key in baseline.json)
}
