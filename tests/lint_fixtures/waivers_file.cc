// Fixture: a file-wide waiver. Everything ambient in here is waived
// by the one directive below, as in the host-timing benches.
//
// dcslint: allow-file(ambient-time-randomness): fixture models a host timing loop
#include <chrono>

double
elapsedSeconds()
{
    const auto t0 = std::chrono::steady_clock::now(); // WAIVED
    const auto t1 = std::chrono::steady_clock::now(); // WAIVED
    return std::chrono::duration<double>(t1 - t0).count(); // WAIVED
}
