// Fixture: raw-new-delete. Manual new/delete in model code leaks on
// the panic() paths; use std::make_unique or value members.
#include <cstddef>

struct Node {
    Node *next = nullptr;
};

Node *
makeNode()
{
    return new Node; // FIRE(raw-new-delete)
}

void
freeNode(Node *n)
{
    delete n; // FIRE(raw-new-delete)
}

struct Pinned {
    Pinned(const Pinned &) = delete; // CLEAN (deleted copy)
    void *operator new(std::size_t) = delete; // CLEAN (operator form)
};
