// Fixture: idiomatic simulator code that must produce zero findings.
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

struct Event {
    std::uint64_t tick = 0;
    std::uint32_t seq = 0;
};

class Model {
  public:
    void post(Event e) { pending_.push_back(e); }

    // Ordered container keyed by a stable integer id.
    void bind(std::uint32_t id, int fd) { fds_[id] = fd; }

    std::uint64_t drain()
    {
        std::uint64_t sum = 0;
        for (const auto &e : pending_)
            sum += e.tick + e.seq;
        pending_.clear();
        return sum;
    }

  private:
    std::vector<Event> pending_;
    std::map<std::uint32_t, int> fds_;
    std::unique_ptr<Event> last_ = std::make_unique<Event>();
};
