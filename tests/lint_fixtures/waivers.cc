// Fixture: the waiver comment forms.
struct Blob {
    int v = 0;
};

Blob *
allocBlob()
{
    // dcslint: allow(raw-new-delete): fixture proving a justified waiver suppresses
    return new Blob; // WAIVED
}

Blob *
allocUnjustified()
{
    // dcslint: allow(raw-new-delete)
    return new Blob; // FIRE(raw-new-delete) — waiver above lacks a reason
}

int
unknownRule()
{
    // dcslint: allow(no-such-rule): this rule id does not exist
    return 0;
}
