/**
 * @file
 * Span-tracer unit tests plus the tracing determinism guard: the
 * tracer must capture exactly what the macros record (pairing,
 * overflow accounting, flow chaining) while never perturbing the
 * simulation it observes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "fixtures.hh"
#include "sim/tracing.hh"
#include "workload/experiment.hh"

namespace dcs {
namespace {

trace::Config
enabledConfig()
{
    trace::Config c;
    c.enabled = true;
    return c;
}

TEST(Tracing, SpanPairingAndNesting)
{
    trace::Tracer tr;
    tr.configure(enabledConfig());

    // Two nested spans plus a sibling distinguished only by key.
    tr.beginSpan(100, "drv", "io", /*key=*/1, /*flow=*/7);
    tr.beginSpan(150, "drv", "dma", /*key=*/1);
    tr.endSpan(400, "drv", "dma", /*key=*/1);
    tr.beginSpan(200, "drv", "io", /*key=*/2, /*flow=*/8);
    tr.endSpan(500, "drv", "io", /*key=*/1);
    tr.endSpan(600, "drv", "io", /*key=*/2);

    auto d = tr.snapshot(1000);
    ASSERT_EQ(d.records.size(), 3u);
    EXPECT_EQ(d.openSpans, 0u);

    // Pairs close in end order, each with the begin's ts and flow.
    const auto &dma = d.records[0];
    EXPECT_EQ(dma.ts, 150u);
    EXPECT_EQ(dma.dur, 250u);
    EXPECT_EQ(dma.flow, 0u);
    EXPECT_EQ(d.records[1].ts, 100u);
    EXPECT_EQ(d.records[1].dur, 400u);
    EXPECT_EQ(d.records[1].flow, 7u);
    EXPECT_EQ(d.records[2].ts, 200u);
    EXPECT_EQ(d.records[2].dur, 400u);
    EXPECT_EQ(d.records[2].flow, 8u);
    for (const auto &r : d.records)
        EXPECT_EQ(r.kind, trace::Kind::AsyncSpan);
}

TEST(Tracing, UnmatchedSpansAreAccounted)
{
    trace::Tracer tr;
    tr.configure(enabledConfig());

    tr.beginSpan(10, "t", "never-ends");
    tr.endSpan(20, "t", "never-began"); // dropped silently
    tr.beginSpan(30, "t", "closed");
    tr.endSpan(40, "t", "closed");

    auto d = tr.snapshot(100);
    EXPECT_EQ(d.records.size(), 1u);
    EXPECT_EQ(d.openSpans, 1u);
}

TEST(Tracing, RingOverflowDropsOldest)
{
    trace::Config cfg = enabledConfig();
    cfg.maxRecords = 8;
    trace::Tracer tr;
    tr.configure(cfg);

    for (Tick t = 0; t < 20; ++t)
        tr.instant(t, "track", "tick");

    EXPECT_EQ(tr.recorded(), 20u);
    EXPECT_EQ(tr.droppedRecords(), 12u);

    auto d = tr.snapshot(100);
    EXPECT_EQ(d.dropped, 12u);
    ASSERT_EQ(d.records.size(), 8u);
    // The survivors are the newest 8, still in push order.
    for (std::size_t i = 0; i < d.records.size(); ++i)
        EXPECT_EQ(d.records[i].ts, 12 + i);
}

TEST(Tracing, DisabledTracerRecordsNothing)
{
    trace::Tracer tr; // default config: disabled

    tr.beginSpan(1, "t", "a");
    tr.endSpan(2, "t", "a");
    tr.span(3, 4, "t", "b");
    tr.instant(5, "t", "c");
    tr.bindFlow(42, 7);

    EXPECT_EQ(tr.recorded(), 0u);
    EXPECT_EQ(tr.flowOf(42), 0u); // bindings are off too
    auto d = tr.snapshot(10);
    EXPECT_TRUE(d.records.empty());
    EXPECT_TRUE(d.tracks.empty());
}

TEST(Tracing, CounterSampling)
{
    trace::Config cfg = enabledConfig();
    cfg.counterPeriod = 4;
    trace::Tracer tr;
    tr.configure(cfg);

    double gauge = 0;
    tr.addCounter("q", "depth", [&] { return gauge; });

    for (Tick t = 1; t <= 8; ++t) {
        gauge = static_cast<double>(t);
        tr.instant(t, "track", "tick");
    }

    auto d = tr.snapshot(100);
    std::vector<double> samples;
    for (const auto &r : d.records)
        if (r.kind == trace::Kind::Counter)
            samples.push_back(r.value);
    // Every 4th push plus the final snapshot sample.
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_EQ(samples[0], 4.0);
    EXPECT_EQ(samples[1], 8.0);
    EXPECT_EQ(samples[2], 8.0);
}

TEST(Tracing, FlowBindingsFollowBindAndUnbind)
{
    trace::Tracer tr;
    tr.configure(enabledConfig());

    const auto k = trace::key("nvme", 0x1234);
    EXPECT_EQ(tr.flowOf(k), 0u);
    tr.bindFlow(k, 9);
    EXPECT_EQ(tr.flowOf(k), 9u);
    tr.unbindFlow(k);
    EXPECT_EQ(tr.flowOf(k), 0u);

    // Keys mix the scope name, so equal ids in different scopes do
    // not collide.
    EXPECT_NE(trace::key("nvme", 1), trace::key("nic", 1));
}

TEST(Tracing, ChromeJsonShape)
{
    trace::Tracer tr;
    tr.configure(enabledConfig());
    tr.span(1000000, 2000000, "drv", "io", /*flow=*/3);
    tr.instant(1500000, "dev", "doorbell", /*flow=*/3);
    tr.span(500000, 250000, "cpu/core0", "syscall", 0,
            /*lane_exclusive=*/true);

    std::vector<std::pair<std::string, trace::Dump>> dumps;
    dumps.emplace_back("dcs-ctrl", tr.snapshot(3000000));
    const std::string doc = trace::writeChromeJson(dumps);

    EXPECT_NE(doc.find("\"schema\":\"dcs-trace-1\""), std::string::npos);
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"process_name\""), std::string::npos);
    // The async pair, the lane slice, and the flow stitching.
    EXPECT_NE(doc.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"e\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"f\""), std::string::npos);
    // Deterministic emission: same input, byte-identical output.
    EXPECT_EQ(doc, trace::writeChromeJson(dumps));
}

// The end-to-end tests below exercise the TRACE_* call sites in the
// models, which -DDCS_TRACING=OFF compiles out entirely.
#ifdef DCS_TRACING

/** Records of @p d grouped by flow id (0 excluded). */
std::map<std::uint64_t, std::vector<trace::Record>>
byFlow(const trace::Dump &d)
{
    std::map<std::uint64_t, std::vector<trace::Record>> out;
    for (const auto &r : d.records)
        if (r.flow != 0)
            out[r.flow].push_back(r);
    return out;
}

/**
 * Acceptance criterion: one 4 KiB DCS read-and-send must form a
 * single connected flow from the hdclib submit through scoreboard,
 * NVMe controller, SSD media, and back to the driver's completion.
 */
TEST(Tracing, FlowContinuityAcrossComponents)
{
    trace::Dump dump;
    workload::measureSendLatency(
        workload::Design::DcsCtrl, ndp::Function::None, 4096, 2,
        [&](workload::Testbed &tb) {
            dump = tb.eq().tracer().snapshot(tb.eq().now());
        },
        [&](workload::Testbed &tb) {
            tb.eq().tracer().configure(enabledConfig());
        });

    const auto flows = byFlow(dump);
    ASSERT_EQ(flows.size(), 2u) << "one flow per measured iteration";
    for (const auto &[flow, records] : flows) {
        std::set<std::string> tracks;
        for (const auto &r : records)
            tracks.insert(dump.tracks[r.track]);
        EXPECT_GE(tracks.size(), 6u)
            << "flow " << flow << " only crossed " << tracks.size()
            << " tracks";
        auto has = [&](const char *suffix) {
            return std::any_of(tracks.begin(), tracks.end(),
                               [&](const std::string &t) {
                                   return t.find(suffix) !=
                                          std::string::npos;
                               });
        };
        EXPECT_TRUE(has("hdclib")) << "missing library ioctl span";
        EXPECT_TRUE(has("hdcdrv")) << "missing driver submit span";
        EXPECT_TRUE(has("scoreboard")) << "missing scoreboard spans";
        EXPECT_TRUE(has(".nvmec")) << "missing NVMe controller span";
        EXPECT_TRUE(has(".ssd")) << "missing SSD media span";
        EXPECT_TRUE(has("harness")) << "missing harness request span";
    }
}

TEST(Tracing, SwBaselineFlowsAreConnectedToo)
{
    trace::Dump dump;
    workload::measureSendLatency(
        workload::Design::SwOptimized, ndp::Function::None, 4096, 1,
        [&](workload::Testbed &tb) {
            dump = tb.eq().tracer().snapshot(tb.eq().now());
        },
        [&](workload::Testbed &tb) {
            tb.eq().tracer().configure(enabledConfig());
        });

    const auto flows = byFlow(dump);
    ASSERT_EQ(flows.size(), 1u);
    std::set<std::string> tracks;
    for (const auto &r : flows.begin()->second)
        tracks.insert(dump.tracks[r.track]);
    // sw path: harness + NVMe host driver + SSD + TCP at minimum.
    EXPECT_GE(tracks.size(), 4u);
}

#endif // DCS_TRACING

/**
 * LatencyTrace::merge on a chunked multi-extent request: component
 * totals sum, and the parent adopts the first sub-trace's flow
 * identity without overwriting an existing one.
 */
TEST(Tracing, LatencyTraceMergeChunked)
{
    host::LatencyTrace agg;
    // Three chunks, as a 192 KiB request split at 64 KiB would make.
    for (int chunk = 0; chunk < 3; ++chunk) {
        host::LatencyTrace sub;
        sub.add(host::LatComp::Read, 1000 * (chunk + 1));
        sub.add(host::LatComp::NetworkSend, 500);
        sub.flow = 42;
        agg.merge(sub);
    }
    EXPECT_DOUBLE_EQ(agg.get(host::LatComp::Read), 6000.0);
    EXPECT_DOUBLE_EQ(agg.get(host::LatComp::NetworkSend), 1500.0);
    EXPECT_DOUBLE_EQ(agg.total(), 7500.0);
    EXPECT_EQ(agg.flow, 42u) << "parent adopts the sub-trace flow";

    host::LatencyTrace other;
    other.flow = 7;
    agg.merge(other);
    EXPECT_EQ(agg.flow, 42u) << "an assigned flow is never overwritten";
}

#ifdef DCS_TRACING

/** Fig. 11a pipeline digest with the tracer as the only knob. */
std::pair<std::uint64_t, std::uint64_t>
pipelineDigest(bool tracing)
{
    workload::Testbed tb(workload::Design::DcsCtrl);
    if (tracing)
        tb.eq().tracer().configure(enabledConfig());
    TraceHasher th;
    th.attach(tb.eq());

    auto [ca, cb] = tb.connect();
    cb->onPayload = [](std::uint32_t, BufChain) {};
    const auto content = test::randomBytes(256 * 1024, 7);
    const int fd = tb.nodeA().fs().create("obj", content);

    auto trace = host::makeTrace();
    if (tracing)
        trace->flow = tb.eq().tracer().nextFlowId();
    bool done = false;
    tb.pathA().sendFile(fd, ca->fd, 0, content.size(),
                        ndp::Function::None, {}, trace,
                        [&](const baselines::PathResult &) {
                            done = true;
                        });
    tb.eq().run();
    EXPECT_TRUE(done);
    if (tracing) {
        EXPECT_GT(tb.eq().tracer().recorded(), 0u);
    }
    return {th.digest(), th.events()};
}

/**
 * Determinism guard: the tracer is a pure observer, so turning it on
 * must not change the simulation's event stream in any way.
 */
TEST(Tracing, TracingDoesNotPerturbSimulation)
{
    const auto off = pipelineDigest(false);
    const auto on = pipelineDigest(true);
    EXPECT_GT(off.second, 0u);
    EXPECT_EQ(off.first, on.first)
        << "enabling tracing changed the event digest";
    EXPECT_EQ(off.second, on.second)
        << "enabling tracing changed the event count";
}

#endif // DCS_TRACING

} // namespace
} // namespace dcs
