/**
 * @file
 * NVMe SSD model tests, driven through the host driver (the full
 * register/queue/doorbell/MSI path) and directly at the queue level.
 */

#include <gtest/gtest.h>

#include "host/host.hh"
#include "host/nvme_driver.hh"
#include "nvme/nvme_ssd.hh"
#include "sim/rng.hh"

namespace dcs {
namespace {

class NvmeTest : public ::testing::Test
{
  protected:
    NvmeTest()
        : fabric(eq, "pcie"), host(eq, "host", fabric),
          ssd(eq, "ssd", 0x20000000, nvme::SsdParams{}),
          driver(eq, host, ssd)
    {
        fabric.attach(ssd);
    }

    void
    init()
    {
        bool up = false;
        driver.init([&] { up = true; });
        eq.run();
        ASSERT_TRUE(up);
        ASSERT_TRUE(driver.ready());
    }

    EventQueue eq;
    pcie::Fabric fabric;
    host::Host host;
    nvme::NvmeSsd ssd;
    host::NvmeHostDriver driver;
};

TEST_F(NvmeTest, BringUpCreatesQueues)
{
    init();
    EXPECT_GE(ssd.commandsCompleted(), 2u); // the two admin commands
}

TEST_F(NvmeTest, SingleBlockReadRoundTrip)
{
    init();
    Rng rng(1);
    std::vector<std::uint8_t> block(4096);
    rng.fill(block.data(), block.size());
    ssd.flash().write(100 * 4096, block.data(), block.size());

    const Addr dst = host.allocDma(4096);
    bool done = false;
    driver.readBlocks(100, 1, dst, nullptr, [&] { done = true; });
    eq.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(host.dram().readBytes(host.dramOffset(dst), 4096), block);
}

TEST_F(NvmeTest, MultiBlockWriteWithPrpList)
{
    init();
    Rng rng(2);
    const std::uint32_t nblocks = 16; // 64 KiB: needs a PRP list
    std::vector<std::uint8_t> data(nblocks * 4096);
    rng.fill(data.data(), data.size());

    const Addr src = host.allocDma(data.size());
    host.dram().write(host.dramOffset(src), data.data(), data.size());
    bool done = false;
    driver.writeBlocks(500, nblocks, src, nullptr, [&] { done = true; });
    eq.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(ssd.flash().readBytes(500 * 4096, data.size()), data);
    EXPECT_EQ(ssd.bytesWritten(), data.size());
}

TEST_F(NvmeTest, ReadLatencyMatchesMediaModel)
{
    init();
    const Addr dst = host.allocDma(4096);
    const Tick start = eq.now();
    Tick end = 0;
    driver.readBlocks(0, 1, dst, nullptr, [&] { end = eq.now(); });
    eq.run();
    const double us = toMicroseconds(end - start);
    // 82 us media + transfer + queue mechanics: must land nearby.
    EXPECT_GT(us, 80.0);
    EXPECT_LT(us, 110.0);
}

TEST_F(NvmeTest, ChannelsOverlapConcurrentReads)
{
    init();
    const int n = 8; // matches the channel count
    int finished = 0;
    const Tick start = eq.now();
    Tick last = 0;
    for (int i = 0; i < n; ++i) {
        const Addr dst = host.allocDma(4096);
        driver.readBlocks(std::uint64_t(i) * 16, 1, dst, nullptr, [&] {
            ++finished;
            last = eq.now();
        });
    }
    eq.run();
    EXPECT_EQ(finished, n);
    // With 8 channels, 8 reads take ~1 media latency, not 8.
    EXPECT_LT(toMicroseconds(last - start), 2.5 * 82.0);
}

TEST_F(NvmeTest, SequentialThroughputApproachesSpec)
{
    init();
    // Stream 8 MiB with 1 MiB commands.
    const std::uint64_t total = 8ull << 20;
    const std::uint32_t per_cmd = 256;
    int outstanding = 0;
    const Tick start = eq.now();
    Tick end = 0;
    for (std::uint64_t b = 0; b < total / 4096; b += per_cmd) {
        const Addr dst = host.allocDma(per_cmd * 4096);
        ++outstanding;
        driver.readBlocks(b, per_cmd, dst, nullptr, [&] {
            if (--outstanding == 0)
                end = eq.now();
        });
    }
    eq.run();
    const double gbps = double(total) * 8 / toSeconds(end - start) / 1e9;
    EXPECT_GT(gbps, 10.0); // spec is 17.2; PCIe + queueing eat a bit
    EXPECT_LT(gbps, 17.2);
}

TEST_F(NvmeTest, TracesAttributeComponents)
{
    init();
    auto trace = host::makeTrace();
    const Addr dst = host.allocDma(4096);
    bool done = false;
    driver.readBlocks(7, 1, dst, trace, [&] { done = true; });
    eq.run();
    ASSERT_TRUE(done);
    EXPECT_GT(trace->get(host::LatComp::DeviceControl), 0.0);
    EXPECT_GT(trace->get(host::LatComp::Read), 0.0);
    EXPECT_GT(trace->get(host::LatComp::RequestCompletion), 0.0);
    // Read (media) dominates control overheads for a single block.
    EXPECT_GT(trace->get(host::LatComp::Read),
              trace->get(host::LatComp::DeviceControl));
}

TEST_F(NvmeTest, OutOfRangeReadDies)
{
    init();
    const Addr dst = host.allocDma(4096);
    const std::uint64_t beyond = ssd.params().capacityBytes / 4096 + 10;
    EXPECT_DEATH(
        {
            driver.readBlocks(beyond, 1, dst, nullptr, [] {});
            eq.run();
        },
        "error status");
}

} // namespace
} // namespace dcs
