/**
 * @file
 * Statistics layer tests: virtual-dispatch safety of the Distribution
 * hierarchy, interpolated quantiles, the JSON writer, and the
 * hierarchical stats registry (docs/OBSERVABILITY.md).
 */

#include <cstdint>
#include <gtest/gtest.h>
#include <limits>
#include <string>

#include "sim/event_queue.hh"
#include "sim/json.hh"
#include "sim/rng.hh"
#include "sim/sim_object.hh"
#include "sim/stats_registry.hh"

namespace dcs {
namespace {

// ---------------------------------------------------------------------
// Distribution / SampledDistribution (satellite: shadowing bugfix).
// ---------------------------------------------------------------------

TEST(SampledDistribution, SamplesThroughBaseReferenceAreStored)
{
    stats::SampledDistribution sd;
    stats::Distribution &base = sd;

    // Regression: sample() used to be non-virtual, so feeding the base
    // reference skipped the derived sample storage and quantiles were
    // silently computed over an empty population.
    base.sample(10.0);
    base.sample(30.0);
    base.sample(20.0);

    EXPECT_EQ(sd.count(), 3u);
    EXPECT_EQ(sd.storedSamples(), 3u);
    EXPECT_DOUBLE_EQ(sd.quantile(0.5), 20.0);

    base.reset();
    EXPECT_EQ(sd.count(), 0u);
    EXPECT_EQ(sd.storedSamples(), 0u);
    EXPECT_DOUBLE_EQ(sd.quantile(0.5), 0.0);
}

TEST(SampledDistribution, QuantileInterpolatesBetweenOrderStatistics)
{
    stats::SampledDistribution sd;
    // Deliberately unsorted.
    for (double v : {40.0, 10.0, 30.0, 20.0})
        sd.sample(v);

    EXPECT_DOUBLE_EQ(sd.quantile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(sd.quantile(1.0), 40.0);
    // pos = q * (n-1): 0.5 * 3 = 1.5 -> halfway between 20 and 30.
    EXPECT_DOUBLE_EQ(sd.quantile(0.5), 25.0);
    // 0.25 * 3 = 0.75 -> 10 + 0.75 * 10.
    EXPECT_DOUBLE_EQ(sd.quantile(0.25), 17.5);
    // 0.99 * 3 = 2.97 -> 30 + 0.97 * 10 (nearest-rank would truncate
    // to 30 — the old bias this fix removes).
    EXPECT_NEAR(sd.quantile(0.99), 39.7, 1e-9);
    // Out-of-range clamps.
    EXPECT_DOUBLE_EQ(sd.quantile(-1.0), 10.0);
    EXPECT_DOUBLE_EQ(sd.quantile(2.0), 40.0);
}

TEST(SampledDistribution, SingleSampleQuantiles)
{
    stats::SampledDistribution sd;
    sd.sample(7.0);
    for (double q : {0.0, 0.25, 0.5, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(sd.quantile(q), 7.0) << "q=" << q;
}

TEST(SampledDistribution, PopulationsAtOrBelowCapAreStoredExactly)
{
    stats::SampledDistribution sd(100);
    for (int i = 0; i < 100; ++i)
        sd.sample(static_cast<double>(i));
    // No reservoir replacement happened: every sample is present and
    // quantiles are exact order statistics.
    EXPECT_EQ(sd.storedSamples(), 100u);
    EXPECT_DOUBLE_EQ(sd.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(sd.quantile(1.0), 99.0);
    EXPECT_NEAR(sd.quantile(0.999), 98.901, 1e-9);
}

TEST(SampledDistribution, ReservoirIsDeterministicAndBounded)
{
    // Past the cap the store becomes a fixed-seed Algorithm R
    // reservoir: identical input streams must yield identical stored
    // sets regardless of when/where the instance was constructed.
    stats::SampledDistribution a(64), b(64);
    Rng ra(42), rb(42);
    for (int i = 0; i < 50'000; ++i) {
        a.sample(static_cast<double>(ra.uniformInt(0, 1'000'000)));
        b.sample(static_cast<double>(rb.uniformInt(0, 1'000'000)));
    }
    EXPECT_EQ(a.storedSamples(), 64u);
    EXPECT_EQ(a.count(), 50'000u);
    for (double q : {0.0, 0.5, 0.99, 0.999, 1.0})
        EXPECT_DOUBLE_EQ(a.quantile(q), b.quantile(q)) << "q=" << q;
    // Exact summary stays exact: max comes from the stream, not the
    // reservoir.
    EXPECT_DOUBLE_EQ(a.max(), b.max());

    // reset() restores the fixed seed, so a refilled instance matches
    // a fresh one sample-for-sample.
    a.reset();
    Rng rc(42);
    for (int i = 0; i < 50'000; ++i)
        a.sample(static_cast<double>(rc.uniformInt(0, 1'000'000)));
    for (double q : {0.25, 0.5, 0.999})
        EXPECT_DOUBLE_EQ(a.quantile(q), b.quantile(q)) << "q=" << q;
}

TEST(SampledDistribution, QuantileCacheSurvivesInterleavedMutation)
{
    // quantile() memoizes the sorted view per mutation epoch. The
    // cache must be (a) invisible — interleaving reads with writes
    // yields bit-identical answers to an uncached twin fed the same
    // stream, both below the cap and through reservoir overwrites —
    // and (b) actually reused: repeated reads at quiesce cannot
    // disturb later sampling or each other.
    stats::SampledDistribution cached(64), twin(64);
    Rng rc(11), rt(11);
    for (int i = 0; i < 10'000; ++i) {
        cached.sample(static_cast<double>(rc.uniformInt(0, 1'000'000)));
        twin.sample(static_cast<double>(rt.uniformInt(0, 1'000'000)));
        // Probe mid-stream every so often: each probe forces a fresh
        // sort epoch on `cached` while `twin` is only read at the end.
        if (i % 997 == 0) {
            const double p = cached.quantile(0.5);
            EXPECT_EQ(p, p);
        }
    }
    for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
        EXPECT_DOUBLE_EQ(cached.quantile(q), twin.quantile(q))
            << "q=" << q;
        // Back-to-back reads of one instance hit the cache: repeat the
        // whole ladder and re-ask out of order.
        EXPECT_DOUBLE_EQ(cached.quantile(q), cached.quantile(q))
            << "q=" << q;
    }
    EXPECT_DOUBLE_EQ(cached.quantile(0.5), twin.quantile(0.5));

    // reset() drops the cache along with the samples.
    cached.reset();
    EXPECT_DOUBLE_EQ(cached.quantile(0.5), 0.0);
    cached.sample(3.0);
    EXPECT_DOUBLE_EQ(cached.quantile(0.5), 3.0);
}

TEST(SampledDistribution, ReservoirQuantilesTrackTheTail)
{
    // Uniform 0..1e6 stream against a small reservoir: p999 must land
    // in the far tail (rank stderr is sqrt(q(1-q)/k) of the range).
    stats::SampledDistribution sd(4096);
    Rng rng(7);
    for (int i = 0; i < 200'000; ++i)
        sd.sample(static_cast<double>(rng.uniformInt(0, 1'000'000)));
    EXPECT_GT(sd.quantile(0.999), 0.98e6);
    EXPECT_GT(sd.quantile(0.99), sd.quantile(0.5));
}

// ---------------------------------------------------------------------
// JsonWriter.
// ---------------------------------------------------------------------

TEST(JsonWriter, BuildsNestedDocument)
{
    json::JsonWriter w;
    w.beginObject();
    w.key("a");
    w.value(1.5);
    w.key("list");
    w.beginArray();
    w.value(std::uint64_t{2});
    w.value(true);
    w.null();
    w.endArray();
    w.key("s");
    w.value("x");
    w.endObject();
    EXPECT_EQ(w.str(), R"({"a":1.5,"list":[2,true,null],"s":"x"})");
}

TEST(JsonWriter, EscapesStringsAndNonFiniteDoubles)
{
    json::JsonWriter w;
    w.beginObject();
    w.key("quote\"backslash\\newline\n");
    w.value(std::numeric_limits<double>::quiet_NaN());
    w.key("inf");
    w.value(std::numeric_limits<double>::infinity());
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"quote\\\"backslash\\\\newline\\n\":null,\"inf\":null}");
}

TEST(JsonWriter, RawValueEmbedsFragmentVerbatim)
{
    json::JsonWriter w;
    w.beginObject();
    w.key("inner");
    w.rawValue(R"({"x":1})");
    w.endObject();
    EXPECT_EQ(w.str(), R"({"inner":{"x":1}})");
}

// ---------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------

TEST(StatsRegistry, DumpIsSortedByPathAndSkipsEmptyGroups)
{
    stats::Registry reg;
    stats::Group b, a, empty;
    std::uint64_t nb = 2, na = 1;
    reg.attach(b, "zeta");
    reg.attach(a, "alpha");
    reg.attach(empty, "empty");
    b.addCounter("n", nb);
    a.addCounter("n", na);

    EXPECT_EQ(reg.dumpJsonString(),
              R"({"alpha":{"n":1},"zeta":{"n":2}})");
}

TEST(StatsRegistry, DuplicatePathsGetDeterministicSuffixes)
{
    stats::Registry reg;
    stats::Group g1, g2, g3;
    reg.attach(g1, "dev");
    reg.attach(g2, "dev");
    reg.attach(g3, "dev");
    EXPECT_EQ(g1.path(), "dev");
    EXPECT_EQ(g2.path(), "dev#2");
    EXPECT_EQ(g3.path(), "dev#3");
    EXPECT_NE(reg.find("dev#2"), nullptr);
}

TEST(StatsRegistry, GroupDetachesOnDestruction)
{
    stats::Registry reg;
    {
        stats::Group g;
        reg.attach(g, "transient");
        EXPECT_EQ(reg.groupCount(), 1u);
    }
    EXPECT_EQ(reg.groupCount(), 0u);
    EXPECT_EQ(reg.find("transient"), nullptr);
    EXPECT_EQ(reg.dumpJsonString(), "{}");
}

TEST(StatsRegistry, ValueAndDistributionLeaves)
{
    stats::Registry reg;
    stats::Group g;
    reg.attach(g, "m");
    stats::SampledDistribution lat;
    lat.sample(1.0);
    lat.sample(3.0);
    double knob = 4.0;
    g.addSampled("lat", lat);
    g.addValue("knob", [&knob] { return knob; });

    const std::string dump = reg.dumpJsonString();
    EXPECT_NE(dump.find("\"count\":2"), std::string::npos) << dump;
    EXPECT_NE(dump.find("\"p50\":2"), std::string::npos) << dump;
    // The standard quantile set includes the far tail.
    EXPECT_NE(dump.find("\"p999\":"), std::string::npos) << dump;
    EXPECT_NE(dump.find("\"knob\":4"), std::string::npos) << dump;
}

// ---------------------------------------------------------------------
// EventQueue / SimObject integration.
// ---------------------------------------------------------------------

class Widget : public SimObject
{
  public:
    Widget(EventQueue &eq, std::string name)
        : SimObject(eq, std::move(name))
    {
        statsGroup().addCounter("ops", ops);
    }

    std::uint64_t ops = 0;
};

TEST(StatsRegistry, SimObjectsAutoRegisterUnderInstanceName)
{
    EventQueue eq;
    Widget w1(eq, "node0.widget");
    Widget w2(eq, "node1.widget");
    w1.ops = 5;

    EXPECT_NE(eq.stats().find("node0.widget"), nullptr);
    const std::string dump = eq.stats().dumpJsonString();
    EXPECT_NE(dump.find("\"node0.widget\":{\"ops\":5}"),
              std::string::npos)
        << dump;
    EXPECT_NE(dump.find("\"node1.widget\":{\"ops\":0}"),
              std::string::npos)
        << dump;
    // The queue exposes its own counters too.
    EXPECT_NE(eq.stats().find("eventq"), nullptr);
}

TEST(StatsRegistry, SeparateEventQueuesAreIndependent)
{
    EventQueue eq1, eq2;
    Widget w1(eq1, "w");
    EXPECT_NE(eq1.stats().find("w"), nullptr);
    EXPECT_EQ(eq2.stats().find("w"), nullptr);
}

} // namespace
} // namespace dcs
