/**
 * @file
 * Wire attachment rules and delivery-time accounting.
 *
 * Regression coverage for the attachment bugfix sweep: double-attach
 * and endpoint re-wiring used to be silently accepted (stale ends
 * kept receiving frames), and framesCarried()/bytesCarried() used to
 * count at enqueue, over-reporting while frames were mid-flight.
 */
// dcslint: allow-file(callback-lifetime): each test drains the queue in
// the same stack frame, so by-reference captures of locals cannot dangle.

#include <gtest/gtest.h>

#include "net/wire.hh"
#include "sim/check.hh"

namespace dcs {
namespace {

/** Minimal endpoint: records delivered frames and their ticks. */
class SinkEndpoint : public net::WireEndpoint
{
  public:
    SinkEndpoint(EventQueue &eq, std::string name,
                 const net::MacAddr *mac = nullptr)
        : eq(eq), _name(std::move(name)), mac(mac)
    {
    }

    void
    receiveFrame(BufChain frame) override
    {
        sizes.push_back(frame.size());
        ticks.push_back(eq.now());
    }

    const std::string &endpointName() const override { return _name; }
    const net::MacAddr *endpointMac() const override { return mac; }

    EventQueue &eq;
    std::string _name;
    const net::MacAddr *mac;
    std::vector<std::size_t> sizes;
    std::vector<Tick> ticks;
};

std::vector<std::uint8_t>
frameBytes(std::size_t n)
{
    return std::vector<std::uint8_t>(n, 0xee);
}

TEST(Wire, CountersAccountAtDeliveryNotEnqueue)
{
    EventQueue eq;
    SinkEndpoint a(eq, "a"), b(eq, "b");
    net::Wire wire(eq, "wire", microseconds(2));
    wire.attach(a, b);

    eq.schedule(0, [&] { wire.transmit(a, frameBytes(1500)); });
    // Sample mid-propagation: the frame is in flight, not carried.
    eq.runUntil(microseconds(1));
    EXPECT_EQ(wire.framesCarried(), 0u);
    EXPECT_EQ(wire.bytesCarried(), 0u);
    EXPECT_EQ(wire.framesInFlight(), 1u);
    EXPECT_TRUE(b.sizes.empty());

    eq.run();
    EXPECT_EQ(wire.framesCarried(), 1u);
    EXPECT_EQ(wire.bytesCarried(), 1500u);
    EXPECT_EQ(wire.framesInFlight(), 0u);
    ASSERT_EQ(b.sizes.size(), 1u);
    EXPECT_EQ(b.sizes[0], 1500u);
    EXPECT_EQ(b.ticks[0], microseconds(2));
    // Full duplex: the reverse direction accounts independently.
    eq.schedule(0, [&] { wire.transmit(b, frameBytes(100)); });
    eq.run();
    EXPECT_EQ(wire.framesCarried(), 2u);
    EXPECT_EQ(wire.bytesCarried(), 1600u);
    ASSERT_EQ(a.sizes.size(), 1u);
}

TEST(Wire, DoubleAttachPanics)
{
    if (!kCheckedBuild)
        GTEST_SKIP() << "attachment rules are DCS_CHECKED-only";
    EventQueue eq;
    SinkEndpoint a(eq, "a"), b(eq, "b"), c(eq, "c"), d(eq, "d");
    net::Wire wire(eq, "wire");
    wire.attach(a, b);
    EXPECT_DEATH(wire.attach(c, d), "already-attached wire");
}

TEST(Wire, RewiringAnEndpointPanics)
{
    if (!kCheckedBuild)
        GTEST_SKIP() << "attachment rules are DCS_CHECKED-only";
    EventQueue eq;
    SinkEndpoint a(eq, "a"), b(eq, "b"), c(eq, "c");
    net::Wire w1(eq, "w1"), w2(eq, "w2");
    w1.attach(a, b);
    // `a` is already cabled to w1; cabling it into w2 as well would
    // leave w1 holding a stale endpoint.
    EXPECT_DEATH(w2.attach(a, c), "re-wiring");
}

TEST(Wire, DuplicateMacAcrossEndsPanics)
{
    if (!kCheckedBuild)
        GTEST_SKIP() << "attachment rules are DCS_CHECKED-only";
    EventQueue eq;
    const net::MacAddr mac{0x02, 0, 0, 0, 0, 0x42};
    SinkEndpoint a(eq, "a", &mac), b(eq, "b", &mac);
    net::Wire wire(eq, "wire");
    EXPECT_DEATH(wire.attach(a, b), "duplicate MAC");
}

TEST(Wire, TransmitFromForeignEndpointPanics)
{
    if (!kCheckedBuild)
        GTEST_SKIP() << "attachment rules are DCS_CHECKED-only";
    EventQueue eq;
    SinkEndpoint a(eq, "a"), b(eq, "b"), c(eq, "c");
    net::Wire wire(eq, "wire");
    wire.attach(a, b);
    EXPECT_DEATH(wire.transmit(c, frameBytes(64)), "unattached");
}

} // namespace
} // namespace dcs
