/**
 * @file
 * Latency attribution and timeline telemetry tests.
 *
 * The load-bearing properties:
 *   - the boundary chain partitions [arrive, done] exactly, so the
 *     per-stage sums reconcile with end-to-end latency by
 *     construction (including carry-forward for unseen boundaries and
 *     the monotonic clamp for out-of-order stamps);
 *   - Attribution is a pure observer: enabling it leaves the event
 *     digest bit-identical;
 *   - Timeline samples read state "at the start of tick T", bound
 *     their ring by dropping oldest rows, and merge column-wise so a
 *     cluster's merged series is identical serial vs sharded.
 */
// dcslint: allow-file(callback-lifetime): every test runs its queues to
// drain in the same stack frame, so by-reference captures cannot dangle.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "baselines/dcs_path.hh"
#include "sim/attribution.hh"
#include "sim/timeline.hh"
#include "sim/tracing.hh"
#include "sys/cluster.hh"
#include "tests/fixtures.hh"
#include "workload/experiment.hh"
#include "workload/loadgen.hh"

namespace dcs {
namespace {

using trace::Stage;

double
stageMean(const trace::Attribution &at, Stage s)
{
    return at.stage(s).mean();
}

// ---------------------------------------------------------------------
// Boundary-chain unit tests (records fed directly).
// ---------------------------------------------------------------------

TEST(Attribution, StageNamesAreStableSnakeCase)
{
    ASSERT_EQ(trace::kNumStages, 10u);
    const char *expected[] = {
        "client_backlog",  "driver_submit",  "doorbell_holdoff",
        "sq_wait",         "engine_parse",   "scoreboard_queue",
        "device_service",  "wire",           "msi_holdoff",
        "completion_drain"};
    for (std::size_t i = 0; i < trace::kNumStages; ++i)
        EXPECT_STREQ(trace::stageName(static_cast<Stage>(i)),
                     expected[i]);
}

TEST(Attribution, BoundaryChainPartitionsEndToEnd)
{
    EventQueue eq;
    auto &at = eq.attribution();
    at.enable(eq.stats());
    EXPECT_TRUE(at.enabled());

    const std::uint64_t f = 42;
    at.observeInstant(100, "lg_arrive", f);
    at.observeSpan(200, 260, "ioctl", f);
    at.observeInstant(240, "db_post", f);
    at.observeInstant(300, "doorbell", f);
    at.observeSpan(350, 380, "parse", f);
    at.observeSpan(400, 500, "exec:sha256", f);
    at.observeSpan(450, 600, "send", f);
    at.observeInstant(620, "cpl_queued", f);
    at.observeInstant(700, "msi", f);
    EXPECT_EQ(at.ledgerSize(), 1u);
    at.observeInstant(800, "lg_done", f);

    EXPECT_EQ(at.finalized(), 1u);
    EXPECT_EQ(at.abandoned(), 0u);
    EXPECT_EQ(at.ledgerSize(), 0u);

    // Each stage is the gap to the next boundary in chain order.
    EXPECT_DOUBLE_EQ(stageMean(at, Stage::ClientBacklog),
                     toMicroseconds(100)); // 100 -> 200
    EXPECT_DOUBLE_EQ(stageMean(at, Stage::DriverSubmit),
                     toMicroseconds(40)); // 200 -> 240
    EXPECT_DOUBLE_EQ(stageMean(at, Stage::DoorbellHoldoff),
                     toMicroseconds(60)); // 240 -> 300
    EXPECT_DOUBLE_EQ(stageMean(at, Stage::SqWait),
                     toMicroseconds(50)); // 300 -> 350
    EXPECT_DOUBLE_EQ(stageMean(at, Stage::EngineParse),
                     toMicroseconds(30)); // 350 -> 380
    EXPECT_DOUBLE_EQ(stageMean(at, Stage::ScoreboardQueue),
                     toMicroseconds(20)); // 380 -> 400
    EXPECT_DOUBLE_EQ(stageMean(at, Stage::DeviceService),
                     toMicroseconds(50)); // 400 -> 450
    EXPECT_DOUBLE_EQ(stageMean(at, Stage::Wire),
                     toMicroseconds(170)); // 450 -> 620
    EXPECT_DOUBLE_EQ(stageMean(at, Stage::MsiHoldoff),
                     toMicroseconds(80)); // 620 -> 700
    EXPECT_DOUBLE_EQ(stageMean(at, Stage::CompletionDrain),
                     toMicroseconds(100)); // 700 -> 800

    double sum = 0.0;
    for (std::size_t i = 0; i < trace::kNumStages; ++i)
        sum += stageMean(at, static_cast<Stage>(i));
    EXPECT_NEAR(sum, at.endToEnd().mean(), 1e-12);
    EXPECT_DOUBLE_EQ(at.endToEnd().mean(), toMicroseconds(700));
}

TEST(Attribution, UnseenBoundariesCarryForwardToZeroWidthStages)
{
    // A software-baseline request: no doorbell batching, no engine
    // parse, no NDP scoreboard. Unseen boundaries must not break the
    // partition — their stages read zero and the tail stage absorbs
    // the rest.
    EventQueue eq;
    auto &at = eq.attribution();
    at.enable(eq.stats());

    const std::uint64_t f = 7;
    at.observeInstant(1000, "lg_arrive", f);
    at.observeSpan(1100, 1150, "io", f);
    at.observeInstant(2000, "lg_done", f);

    EXPECT_EQ(at.finalized(), 1u);
    EXPECT_DOUBLE_EQ(stageMean(at, Stage::ClientBacklog),
                     toMicroseconds(100));
    for (const Stage s :
         {Stage::DriverSubmit, Stage::DoorbellHoldoff, Stage::SqWait,
          Stage::EngineParse, Stage::ScoreboardQueue,
          Stage::DeviceService, Stage::Wire, Stage::MsiHoldoff})
        EXPECT_DOUBLE_EQ(stageMean(at, s), 0.0)
            << trace::stageName(s);
    EXPECT_DOUBLE_EQ(stageMean(at, Stage::CompletionDrain),
                     toMicroseconds(900));
    EXPECT_DOUBLE_EQ(at.endToEnd().mean(), toMicroseconds(1000));
}

TEST(Attribution, OutOfOrderBoundariesClampMonotonically)
{
    // A boundary stamped earlier than its predecessor (completion
    // racing the doorbell under coalescing) must clamp, never produce
    // a negative stage, and keep the sum exact.
    EventQueue eq;
    auto &at = eq.attribution();
    at.enable(eq.stats());

    const std::uint64_t f = 9;
    at.observeInstant(100, "lg_arrive", f);
    at.observeSpan(300, 310, "submit", f);
    at.observeInstant(250, "db_post", f); // before Submit: clamps
    at.observeInstant(900, "lg_done", f);

    EXPECT_EQ(at.finalized(), 1u);
    for (std::size_t i = 0; i < trace::kNumStages; ++i)
        EXPECT_GE(stageMean(at, static_cast<Stage>(i)), 0.0);
    double sum = 0.0;
    for (std::size_t i = 0; i < trace::kNumStages; ++i)
        sum += stageMean(at, static_cast<Stage>(i));
    EXPECT_NEAR(sum, at.endToEnd().mean(), 1e-12);
    EXPECT_DOUBLE_EQ(at.endToEnd().mean(), toMicroseconds(800));
}

TEST(Attribution, AbandonedFlowsLeaveNoLedgerEntryOrSample)
{
    EventQueue eq;
    auto &at = eq.attribution();
    at.enable(eq.stats());

    at.observeInstant(100, "lg_arrive", 5);
    at.observeInstant(400, "lg_abort", 5);
    EXPECT_EQ(at.finalized(), 0u);
    EXPECT_EQ(at.abandoned(), 1u);
    EXPECT_EQ(at.ledgerSize(), 0u);
    EXPECT_EQ(at.endToEnd().count(), 0u);

    // A completion for a flow that was never tracked (e.g. arrived
    // before enable) is counted as abandoned, not attributed.
    at.observeInstant(500, "lg_done", 6);
    EXPECT_EQ(at.finalized(), 0u);
    EXPECT_EQ(at.abandoned(), 2u);
}

TEST(Attribution, LedgerOverflowDropsNewFlowsAndCounts)
{
    EventQueue eq;
    auto &at = eq.attribution();
    at.enable(eq.stats());

    const std::size_t extra = 10;
    for (std::uint64_t f = 1;
         f <= trace::Attribution::maxLedger + extra; ++f)
        at.observeInstant(Tick(f), "lg_arrive", f);
    EXPECT_EQ(at.ledgerSize(), trace::Attribution::maxLedger);
    EXPECT_EQ(at.ledgerOverflow(), extra);
}

// ---------------------------------------------------------------------
// Pure-observer guarantee + loadgen integration.
// ---------------------------------------------------------------------

struct DigestRun
{
    std::uint64_t digest = 0;
    std::uint64_t events = 0;
    Tick end = 0;
};

DigestRun
sendFileDigest(bool attribute)
{
    workload::Testbed tb(workload::Design::DcsCtrl);
    if (attribute)
        tb.eq().attribution().enable(tb.eq().stats());
    TraceHasher th;
    th.attach(tb.eq());

    auto [ca, cb] = tb.connect();
    cb->onPayload = [](std::uint32_t, BufChain) {};
    const auto content = test::randomBytes(128 * 1024, 7);
    const int fd = tb.nodeA().fs().create("obj", content);
    bool done = false;
    tb.pathA().sendFile(fd, ca->fd, 0, content.size(),
                        ndp::Function::Sha256, {}, nullptr,
                        [&](const baselines::PathResult &) {
                            done = true;
                        });
    tb.eq().run();
    EXPECT_TRUE(done);
    return {th.digest(), th.events(), tb.eq().now()};
}

TEST(Attribution, EnablingIsInvisibleToTheEventDigest)
{
    const DigestRun off = sendFileDigest(false);
    const DigestRun on = sendFileDigest(true);
    EXPECT_EQ(off.digest, on.digest);
    EXPECT_EQ(off.events, on.events);
    EXPECT_EQ(off.end, on.end);
}

TEST(Attribution, LoadgenStagesReconcileWithEndToEnd)
{
    workload::Testbed tb(workload::Design::DcsCtrl);
    auto &at = tb.eq().attribution();
    at.enable(tb.eq().stats());

    workload::LoadGenParams p;
    p.clients = 400;
    p.offeredRps = 20'000;
    p.requestBytes = 4 * 1024;
    p.connections = 8;
    p.slo = microseconds(500);
    p.warmup = milliseconds(1);
    p.measure = milliseconds(5);
    p.preloadObjects = 4;

    workload::LoadGen gen(tb.eq(), tb.nodeA(), tb.nodeB(),
                          tb.pathA(), p);
    workload::LoadGenStats stats;
    bool fin = false;
    gen.run([&](const workload::LoadGenStats &s) {
        stats = s;
        fin = true;
    });
    tb.eq().run();
    ASSERT_TRUE(fin);
    ASSERT_GT(stats.completed, 0u);

#ifdef DCS_TRACING
    // Exactly the measurement-window completions are attributed, and
    // they see the same latencies the generator sampled.
    EXPECT_EQ(at.finalized(), stats.completed);
    EXPECT_EQ(at.endToEnd().count(), stats.completed);
    EXPECT_NEAR(at.endToEnd().mean(), stats.latencyUs.mean(),
                stats.latencyUs.mean() * 1e-9);

    // The partition property, end to end through the real pipeline.
    double sum = 0.0;
    for (std::size_t i = 0; i < trace::kNumStages; ++i)
        sum += stageMean(at, static_cast<Stage>(i));
    EXPECT_NEAR(sum, at.endToEnd().mean(),
                at.endToEnd().mean() * 1e-9);

    // The DCS pipeline actually crosses the engine/device stages.
    EXPECT_GT(stageMean(at, Stage::DriverSubmit), 0.0);
    EXPECT_GT(stageMean(at, Stage::CompletionDrain), 0.0);
    EXPECT_EQ(at.ledgerSize(), 0u); // every flow resolved

    // The registry carries the attribution group and the tracer's
    // ring counters (observability satellites).
    const std::string blob = tb.eq().stats().dumpJsonString();
    EXPECT_NE(blob.find("attribution"), std::string::npos);
    EXPECT_NE(blob.find("trace_dropped"), std::string::npos);
#else
    // Instrumentation compiled out: attribution stays silent but the
    // accounting is still well-formed (schema-valid empty stages).
    EXPECT_EQ(at.finalized(), 0u);
    EXPECT_EQ(at.endToEnd().count(), 0u);
#endif

    // Derived overload rates are populated either way.
    const double off = static_cast<double>(stats.offered);
    EXPECT_DOUBLE_EQ(stats.clientDropRate,
                     static_cast<double>(stats.droppedClient) / off);
    EXPECT_DOUBLE_EQ(stats.rejectRate,
                     static_cast<double>(stats.rejectedServer) / off);
    EXPECT_DOUBLE_EQ(stats.sloViolationRate,
                     static_cast<double>(stats.sloViolations) / off);
}

TEST(Attribution, EnableTurnsInstrumentationOnWithoutRecording)
{
    EventQueue eq;
#ifdef DCS_TRACING
    EXPECT_FALSE(eq.tracer().enabled());
    eq.attribution().enable(eq.stats());
    EXPECT_TRUE(eq.tracer().enabled());    // macros fire
    EXPECT_FALSE(eq.tracer().recording()); // ring stays off
    EXPECT_EQ(eq.tracer().recorded(), 0u);
#else
    eq.attribution().enable(eq.stats());
    EXPECT_TRUE(eq.attribution().enabled());
#endif
}

// ---------------------------------------------------------------------
// Timelines.
// ---------------------------------------------------------------------

TEST(Timeline, SamplesReadStateAtTheStartOfTheirTick)
{
    EventQueue eq;
    int counter = 0;
    stats::Timeline tl;
    tl.addColumn("counter",
                 [&] { return static_cast<double>(counter); });

    stats::Timeline::Params p;
    p.start = 0;
    p.period = 100;
    p.samples = 4;
    tl.arm(eq, p);
    EXPECT_TRUE(tl.armed());

    // Model events on the *same ticks* as samples: the sample wins
    // (scheduled up front), so each row reads the pre-event value.
    eq.scheduleAt(100, [&] { ++counter; });
    eq.scheduleAt(200, [&] { ++counter; });
    eq.run();

    const auto d = tl.dump("t");
    ASSERT_EQ(d.ticks.size(), 4u);
    ASSERT_EQ(d.columns.size(), 1u);
    EXPECT_EQ(d.ticks[0], 0u);
    EXPECT_EQ(d.ticks[3], 300u);
    EXPECT_DOUBLE_EQ(d.values[0], 0.0);
    EXPECT_DOUBLE_EQ(d.values[1], 0.0); // before the tick-100 event
    EXPECT_DOUBLE_EQ(d.values[2], 1.0); // before the tick-200 event
    EXPECT_DOUBLE_EQ(d.values[3], 2.0);
    EXPECT_EQ(d.droppedRows, 0u);
}

TEST(Timeline, RingDropsOldestRowsBeyondTheBound)
{
    EventQueue eq;
    stats::Timeline tl;
    Tick seen = 0;
    tl.addColumn("t", [&] { return static_cast<double>(seen += 1); });

    stats::Timeline::Params p;
    p.period = 10;
    p.samples = 6;
    p.maxRows = 2;
    tl.arm(eq, p);
    eq.run();

    EXPECT_EQ(tl.rows(), 2u);
    const auto d = tl.dump("t");
    ASSERT_EQ(d.ticks.size(), 2u);
    EXPECT_EQ(d.droppedRows, 4u);
    // Oldest-first unroll of the two surviving (newest) rows.
    EXPECT_EQ(d.ticks[0], 40u);
    EXPECT_EQ(d.ticks[1], 50u);
    EXPECT_DOUBLE_EQ(d.values[0], 5.0);
    EXPECT_DOUBLE_EQ(d.values[1], 6.0);
}

TEST(Timeline, MergeSumsSameShapeDumps)
{
    stats::Timeline::Dump a;
    a.name = "node0";
    a.period = 100;
    a.columns = {"x", "y"};
    a.ticks = {0, 100};
    a.values = {1.0, 2.0, 3.0, 4.0};
    stats::Timeline::Dump b = a;
    b.name = "node1";
    b.values = {10.0, 20.0, 30.0, 40.0};
    b.droppedRows = 2;

    const auto m = stats::Timeline::merge("cluster", {a, b});
    EXPECT_EQ(m.name, "cluster");
    EXPECT_EQ(m.period, 100u);
    ASSERT_EQ(m.values.size(), 4u);
    EXPECT_DOUBLE_EQ(m.values[0], 11.0);
    EXPECT_DOUBLE_EQ(m.values[3], 44.0);
    EXPECT_EQ(m.droppedRows, 2u);
}

/** The cluster_bench --timeline recipe, shrunk: per-node samplers on
 *  a ring transfer, merged after the run. */
stats::Timeline::Dump
ringTimeline(bool sharded, unsigned threads)
{
    sys::ClusterParams cp;
    cp.nodes = 3;
    cp.sharded = sharded;
    cp.threads = threads;
    sys::Cluster cl(cp);
    cl.bringUpDcs();

    const std::size_t n = cl.size();
    const std::uint64_t bytes = 64 * 1024;
    std::vector<sys::Cluster::ConnFds> conns(n);
    for (std::size_t i = 0; i < n; ++i)
        conns[i] = cl.connect(i, (i + 1) % n);

    std::vector<stats::Timeline> tls(n);
    stats::Timeline::Params tp;
    tp.period = microseconds(50);
    tp.samples = 32;
    Tick base = cl.switchQueue().now();
    for (std::size_t i = 0; i < n; ++i)
        base = std::max(base, cl.nodeQueue(i).now());
    tp.start = (base / tp.period + 2) * tp.period;
    for (std::size_t i = 0; i < n; ++i) {
        stats::Timeline *tl = &tls[i];
        cl.onNode(i, [tl, tp](sys::Node &nd) {
            sys::Node *np = &nd;
            tl->addColumn("active_cmds", [np] {
                return static_cast<double>(
                    np->engine().activeCommands());
            });
            tl->arm(np->host().eventq(), tp);
        });
    }

    std::vector<int> done(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t dst = (i + 1) % n;
        const int rx_fd = conns[i].dst;
        int *flag = &done[i];
        cl.onNode(dst, [rx_fd, flag, bytes, i](sys::Node &nd) {
            const int fd = nd.fs().createEmpty(
                "in" + std::to_string(i), bytes);
            baselines::DcsCtrlPath(nd).receiveToFile(
                rx_fd, fd, 0, bytes, ndp::Function::None, {}, nullptr,
                [flag](const baselines::PathResult &) { *flag = 1; });
        });
    }
    for (std::size_t i = 0; i < n; ++i) {
        const int tx_fd = conns[i].src;
        cl.onNode(i, [tx_fd, bytes](sys::Node &nd) {
            const int fd = nd.fs().create(
                "out", test::randomBytes(bytes, 3));
            baselines::DcsCtrlPath(nd).sendFile(
                fd, tx_fd, 0, bytes, ndp::Function::None, {}, nullptr,
                [](const baselines::PathResult &) {});
        });
    }
    cl.run();
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(done[i], 1) << "transfer " << i;

    std::vector<stats::Timeline::Dump> parts;
    for (std::size_t i = 0; i < n; ++i)
        parts.push_back(tls[i].dump("node" + std::to_string(i)));
    return stats::Timeline::merge("cluster", parts);
}

TEST(Timeline, ClusterMergeIsInvariantAcrossShardingAndThreads)
{
    const auto serial = ringTimeline(false, 0);
    ASSERT_EQ(serial.ticks.size(), 32u);
    for (unsigned threads : {1u, 2u}) {
        const auto sharded = ringTimeline(true, threads);
        EXPECT_EQ(serial.period, sharded.period) << threads;
        EXPECT_EQ(serial.columns, sharded.columns) << threads;
        EXPECT_EQ(serial.ticks, sharded.ticks) << threads;
        EXPECT_EQ(serial.values, sharded.values) << threads;
        EXPECT_EQ(serial.droppedRows, sharded.droppedRows) << threads;
    }
}

} // namespace
} // namespace dcs
