/**
 * @file
 * Tests for the DCS_INVARIANT / DCS_CHECK_* macro family and for the
 * invariants threaded through the device models. Violation tests run
 * only in checked builds (kCheckedBuild); no-op semantics are verified
 * in unchecked builds.
 */

#include <gtest/gtest.h>

#include "mem/chunk_allocator.hh"
#include "sim/check.hh"

namespace dcs {
namespace {

TEST(CheckMacros, TrueConditionsAreSilent)
{
    DCS_INVARIANT(1 + 1 == 2);
    DCS_INVARIANT(true, "with %s message", "formatted");
    DCS_CHECK_EQ(4, 4);
    DCS_CHECK_NE(4, 5);
    DCS_CHECK_LT(4, 5);
    DCS_CHECK_LE(5, 5);
    DCS_CHECK_GT(5, 4);
    DCS_CHECK_GE(5, 5, "counters %d", 5);
    const int x = 1;
    DCS_CHECK_NOTNULL(&x);
}

TEST(CheckMacrosDeath, ViolationsPanicInCheckedBuilds)
{
    if (!kCheckedBuild)
        GTEST_SKIP() << "unchecked build: macros compile to nothing";
    EXPECT_DEATH(DCS_INVARIANT(false, "ctx %d", 42), "invariant");
    EXPECT_DEATH(DCS_INVARIANT(false, "ctx %d", 42), "ctx 42");
    // Comparison forms print both operand values.
    EXPECT_DEATH(DCS_CHECK_EQ(3, 4), "lhs=3");
    EXPECT_DEATH(DCS_CHECK_EQ(3, 4), "rhs=4");
    EXPECT_DEATH(DCS_CHECK_LE(9, 7, "queue depth"), "queue depth");
    const int *null_ptr = nullptr;
    EXPECT_DEATH(DCS_CHECK_NOTNULL(null_ptr), "nullptr");
}

TEST(CheckMacros, UncheckedBuildDoesNotEvaluateOperands)
{
    if (kCheckedBuild)
        GTEST_SKIP() << "checked build: operands are evaluated";
    int evaluations = 0;
    DCS_INVARIANT([&] {
        ++evaluations;
        return false;
    }());
    EXPECT_EQ(evaluations, 0);
}

TEST(CheckedAllocatorDeath, PreciseDoubleFreeDetection)
{
    if (!kCheckedBuild)
        GTEST_SKIP() << "precise tracking requires the checked build";
    ChunkAllocator a({0x1000, 4 * 64}, 64);
    const Addr c1 = *a.alloc();
    ASSERT_TRUE(a.alloc().has_value());
    a.free(c1);
    // Freeing c1 again is caught immediately, even though the free
    // list is nowhere near full (the unchecked build only catches
    // more frees than allocations).
    EXPECT_DEATH(a.free(c1), "double free");
}

TEST(CheckedAllocator, AuditDetectsLeaks)
{
    ChunkAllocator a({0, 2 * 64}, 64);
    a.auditLive(0); // nothing outstanding: passes
    const Addr c = *a.alloc();
    a.auditLive(1); // the right count: passes
    EXPECT_DEATH(a.auditLive(0), "audit");
    a.free(c);
    a.auditLive(0);
}

} // namespace
} // namespace dcs
