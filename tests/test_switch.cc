/**
 * @file
 * ToR switch model: forwarding, flooding, egress queueing, and the
 * duplicate-MAC guard.
 */
// dcslint: allow-file(callback-lifetime): each test drains the queue in
// the same stack frame, so by-reference captures of locals cannot dangle.

#include <gtest/gtest.h>

#include <algorithm>

#include "net/switch.hh"
#include "net/wire.hh"
#include "sim/check.hh"

namespace dcs {
namespace {

/** Station on the far side of a port's wire. */
class Station : public net::WireEndpoint
{
  public:
    Station(EventQueue &eq, std::string name, net::MacAddr mac)
        : eq(eq), _name(std::move(name)), mac(mac)
    {
    }

    void
    receiveFrame(BufChain frame) override
    {
        sizes.push_back(frame.size());
        ticks.push_back(eq.now());
    }

    const std::string &endpointName() const override { return _name; }
    const net::MacAddr *endpointMac() const override { return &mac; }

    EventQueue &eq;
    std::string _name;
    net::MacAddr mac;
    std::vector<std::size_t> sizes;
    std::vector<Tick> ticks;
};

net::MacAddr
macOf(std::uint8_t i)
{
    return {0x02, 0, 0, 0, 0, i};
}

std::vector<std::uint8_t>
frameTo(const net::MacAddr &dst, std::size_t size = 64)
{
    std::vector<std::uint8_t> f(std::max<std::size_t>(size, 14), 0xab);
    std::copy(dst.begin(), dst.end(), f.begin());
    return f;
}

/** Three stations cabled to a 3-port switch on one queue. */
struct SwitchBed
{
    explicit SwitchBed(net::SwitchParams p = makeParams())
        : sw(eq, "tor", p)
    {
        for (std::size_t i = 0; i < 3; ++i) {
            stations.push_back(std::make_unique<Station>(
                eq, "st" + std::to_string(i), macOf(i + 1)));
            wires.push_back(std::make_unique<net::Wire>(
                eq, "w" + std::to_string(i), kProp));
            wires[i]->attach(*stations[i], sw.port(i));
            sw.learn(stations[i]->mac, i);
        }
    }

    static net::SwitchParams
    makeParams()
    {
        net::SwitchParams p;
        p.ports = 3;
        return p;
    }

    void
    send(std::size_t from, std::vector<std::uint8_t> frame)
    {
        eq.schedule(0, [this, from, frame = std::move(frame)]() mutable {
            wires[from]->transmit(*stations[from], std::move(frame));
        });
    }

    static constexpr Tick kProp = microseconds(1);

    EventQueue eq;
    net::Switch sw;
    std::vector<std::unique_ptr<Station>> stations;
    std::vector<std::unique_ptr<net::Wire>> wires;
};

TEST(Switch, UnicastReachesOnlyItsDestination)
{
    SwitchBed bed;
    bed.send(0, frameTo(macOf(2), 200));
    bed.eq.run();

    ASSERT_EQ(bed.stations[1]->sizes.size(), 1u);
    EXPECT_EQ(bed.stations[1]->sizes[0], 200u);
    EXPECT_TRUE(bed.stations[0]->sizes.empty());
    EXPECT_TRUE(bed.stations[2]->sizes.empty());
    EXPECT_EQ(bed.sw.framesForwarded(), 1u);
    EXPECT_EQ(bed.sw.framesFlooded(), 0u);
    EXPECT_EQ(bed.sw.framesDropped(), 0u);

    // Store-and-forward timing: wire in, pipeline, re-serialize,
    // wire out.
    const net::SwitchParams p;
    const Tick expect = SwitchBed::kProp + p.forwardLatency +
                        transferTime(200 + p.frameOverhead, p.portGbps) +
                        SwitchBed::kProp;
    EXPECT_EQ(bed.stations[1]->ticks[0], expect);
}

TEST(Switch, EgressSerializesFifoWithLineSpacing)
{
    SwitchBed bed;
    // Two frames contend for station 2's egress line in the same tick;
    // ingress-port order (0 before 1) decides who serializes first.
    bed.send(0, frameTo(macOf(3), 1500));
    bed.send(1, frameTo(macOf(3), 300));
    bed.eq.run();

    ASSERT_EQ(bed.stations[2]->sizes.size(), 2u);
    EXPECT_EQ(bed.stations[2]->sizes[0], 1500u);
    EXPECT_EQ(bed.stations[2]->sizes[1], 300u);
    // The second frame waits for the first to clear the line, then
    // follows exactly one serialization time behind.
    const net::SwitchParams p;
    const Tick gap = bed.stations[2]->ticks[1] - bed.stations[2]->ticks[0];
    EXPECT_EQ(gap, transferTime(300 + p.frameOverhead, p.portGbps));
}

TEST(Switch, BroadcastFloodsAllButIngress)
{
    SwitchBed bed;
    bed.send(0, frameTo({0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, 100));
    bed.eq.run();

    EXPECT_TRUE(bed.stations[0]->sizes.empty());
    EXPECT_EQ(bed.stations[1]->sizes.size(), 1u);
    EXPECT_EQ(bed.stations[2]->sizes.size(), 1u);
    EXPECT_EQ(bed.sw.framesFlooded(), 1u);
    EXPECT_EQ(bed.sw.framesForwarded(), 0u);
}

TEST(Switch, UnknownUnicastFloods)
{
    SwitchBed bed;
    bed.send(1, frameTo(macOf(0x77), 100)); // not in the FDB
    bed.eq.run();

    EXPECT_EQ(bed.stations[0]->sizes.size(), 1u);
    EXPECT_TRUE(bed.stations[1]->sizes.empty());
    EXPECT_EQ(bed.stations[2]->sizes.size(), 1u);
    EXPECT_EQ(bed.sw.framesFlooded(), 1u);
}

TEST(Switch, HairpinToSourcePortIsFiltered)
{
    SwitchBed bed;
    bed.send(0, frameTo(macOf(1), 100)); // station 0's own MAC
    bed.eq.run();

    for (auto &st : bed.stations)
        EXPECT_TRUE(st->sizes.empty());
    EXPECT_EQ(bed.sw.framesDropped(), 1u);
}

TEST(Switch, RuntFrameIsDropped)
{
    SwitchBed bed;
    bed.send(0, std::vector<std::uint8_t>{0x01, 0x02, 0x03});
    bed.eq.run();

    EXPECT_EQ(bed.sw.framesDropped(), 1u);
    EXPECT_EQ(bed.sw.port(0).framesIn(), 1u);
}

TEST(Switch, FullEgressQueueTailDrops)
{
    net::SwitchParams p = SwitchBed::makeParams();
    p.egressQueueFrames = 1;
    SwitchBed bed(p);
    // Three same-tick frames for one egress port: one queues, two drop.
    for (int i = 0; i < 3; ++i)
        bed.send(0, frameTo(macOf(2), 1500));
    bed.eq.run();

    EXPECT_EQ(bed.stations[1]->sizes.size(), 1u);
    EXPECT_EQ(bed.sw.port(1).framesDropped(), 2u);
    EXPECT_EQ(bed.sw.framesDropped(), 2u);
    EXPECT_EQ(bed.sw.framesForwarded(), 3u); // forwarded, then dropped
}

TEST(Switch, DarkPortDropsInsteadOfForwarding)
{
    // Station 2's port has no wire at all: frames to it vanish,
    // counted, without crashing.
    EventQueue eq;
    net::Switch sw(eq, "tor", SwitchBed::makeParams());
    Station st0(eq, "st0", macOf(1));
    net::Wire w0(eq, "w0", SwitchBed::kProp);
    w0.attach(st0, sw.port(0));
    sw.learn(st0.mac, 0);
    sw.learn(macOf(2), 1); // known MAC, dark port

    eq.schedule(0, [&] { w0.transmit(st0, frameTo(macOf(2), 100)); });
    eq.run();
    EXPECT_EQ(sw.framesDropped(), 1u);
    EXPECT_EQ(sw.framesForwarded(), 1u);
}

TEST(Switch, DuplicateMacInFdbPanics)
{
    EventQueue eq;
    net::Switch sw(eq, "tor", SwitchBed::makeParams());
    sw.learn(macOf(1), 0);
    sw.learn(macOf(1), 0); // same binding again: fine (idempotent)
    EXPECT_DEATH(sw.learn(macOf(1), 2), "duplicate MAC");
}

} // namespace
} // namespace dcs
