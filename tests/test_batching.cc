/**
 * @file
 * Control-path batching tests: doorbell write batching, MSI
 * coalescing, admission control, and the open-loop load generator.
 *
 * The central contract is that every knob at 0 is byte-identical to
 * the pre-batching control path (pinned digests below); with knobs on
 * the data plane stays byte-correct while MMIO writes and interrupts
 * drop multiplicatively.
 */

#include <gtest/gtest.h>

#include <map>

#include "fixtures.hh"
#include "hdc/scoreboard.hh"
#include "pcie/doorbell.hh"
#include "workload/experiment.hh"
#include "workload/loadgen.hh"

namespace dcs {
namespace {

// ---------------------------------------------------------------------
// DoorbellBatcher: the shared batching primitive.
// ---------------------------------------------------------------------

struct BatcherHarness
{
    EventQueue eq;
    pcie::DoorbellBatcher db;
    std::vector<std::pair<std::uint32_t, Tick>> writes;

    explicit BatcherHarness(std::uint32_t max, Tick holdoff)
    {
        db.configure(
            max, holdoff,
            [this](std::uint32_t v, std::uint64_t) {
                writes.emplace_back(v, eq.now());
            },
            [this](Tick d, std::function<void()> fn) {
                eq.schedule(d, std::move(fn));
            });
    }
};

TEST(DoorbellBatcher, DisabledWritesThroughImmediately)
{
    BatcherHarness h(0, 0);
    h.db.post(1, 0);
    h.db.post(2, 0);
    h.db.post(3, 0);
    ASSERT_EQ(h.writes.size(), 3u);
    EXPECT_EQ(h.writes[2].first, 3u);
    EXPECT_EQ(h.db.updatesPosted(), 3u);
    EXPECT_EQ(h.db.mmioWrites(), 3u);
}

TEST(DoorbellBatcher, ThresholdFlushWritesOnlyNewestValue)
{
    BatcherHarness h(4, milliseconds(10));
    for (std::uint32_t v = 1; v <= 4; ++v)
        h.db.post(v, 0);
    // Producer doorbells are idempotent: one write of the newest tail
    // commits all four updates.
    ASSERT_EQ(h.writes.size(), 1u);
    EXPECT_EQ(h.writes[0].first, 4u);
    EXPECT_EQ(h.db.updatesPosted(), 4u);
    EXPECT_EQ(h.db.mmioWrites(), 1u);
    // The armed holdoff timer finds nothing pending and stays silent.
    h.eq.run();
    EXPECT_EQ(h.db.mmioWrites(), 1u);
}

TEST(DoorbellBatcher, HoldoffSweepsStragglers)
{
    BatcherHarness h(4, microseconds(10));
    h.db.post(1, 0);
    h.db.post(2, 0);
    EXPECT_TRUE(h.writes.empty());
    h.eq.run();
    ASSERT_EQ(h.writes.size(), 1u);
    EXPECT_EQ(h.writes[0].first, 2u);
    EXPECT_EQ(h.writes[0].second, microseconds(10));
}

TEST(DoorbellBatcher, RearmsAfterHoldoffFlush)
{
    BatcherHarness h(8, microseconds(5));
    h.db.post(1, 0);
    h.eq.run();
    ASSERT_EQ(h.writes.size(), 1u);
    h.db.post(2, 0);
    h.eq.run();
    ASSERT_EQ(h.writes.size(), 2u);
    EXPECT_EQ(h.writes[1].first, 2u);
    EXPECT_EQ(h.db.mmioWrites(), 2u);
}

// ---------------------------------------------------------------------
// Knobs-off digest pins: with every batching/admission knob at its
// default 0, the full fig11 pipeline must replay the pre-batching
// event stream bit-for-bit — same digest, same event count, same end
// time. These constants were captured on the tree immediately before
// the batching changes landed.
// ---------------------------------------------------------------------

struct RunDigest
{
    std::uint64_t digest = 0;
    std::uint64_t events = 0;
    Tick end = 0;
};

RunDigest
pipelineDigest(ndp::Function fn)
{
    workload::Testbed tb(workload::Design::DcsCtrl);
    TraceHasher th;
    th.attach(tb.eq());

    auto [ca, cb] = tb.connect();
    cb->onPayload = [](std::uint32_t, BufChain) {};

    const auto content = test::randomBytes(256 * 1024, 7);
    const int fd = tb.nodeA().fs().create("obj", content);

    bool done = false;
    tb.pathA().sendFile(fd, ca->fd, 0, content.size(), fn, {}, nullptr,
                        [&](const baselines::PathResult &) {
                            done = true;
                        });
    tb.eq().run();
    EXPECT_TRUE(done);
    return {th.digest(), th.events(), tb.eq().now()};
}

TEST(ControlPathBatching, DisabledKnobsPreserveLegacyDigestPlain)
{
    const RunDigest d = pipelineDigest(ndp::Function::None);
    EXPECT_EQ(d.digest, 7416525884348190748ull)
        << "knobs-off control path diverged from the pre-batching tree";
    EXPECT_EQ(d.events, 620ull);
    EXPECT_EQ(d.end, 441434854ull);
}

TEST(ControlPathBatching, DisabledKnobsPreserveLegacyDigestCrc32)
{
    const RunDigest d = pipelineDigest(ndp::Function::Crc32);
    EXPECT_EQ(d.digest, 3439977895646111129ull)
        << "knobs-off control path diverged from the pre-batching tree";
    EXPECT_EQ(d.events, 634ull);
    EXPECT_EQ(d.end, 499620622ull);
}

// ---------------------------------------------------------------------
// MSI coalescing and batching end-to-end on the DCS path.
// ---------------------------------------------------------------------

/** Testbed with batching knobs on and one payload sink per conn. */
struct BatchedRun
{
    workload::Testbed tb;
    std::map<int, std::vector<std::uint8_t>> received;
    std::map<int, std::uint32_t> statuses;
    int completions = 0;

    explicit BatchedRun(sys::NodeParams pa)
        : tb(workload::Design::DcsCtrl, false, pa)
    {
    }

    /** Issue one GET of @p content over its own connection. */
    void
    get(int idx, const std::vector<std::uint8_t> &content)
    {
        auto [ca, cb] = tb.connect(static_cast<std::uint16_t>(idx));
        cb->onPayload = [this, idx](std::uint32_t, BufChain p) {
            const auto bytes = p.toVector();
            auto &sink = received[idx];
            sink.insert(sink.end(), bytes.begin(), bytes.end());
        };
        const int fd = tb.nodeA().fs().create("o" + std::to_string(idx),
                                              content);
        tb.pathA().sendFile(fd, ca->fd, 0, content.size(),
                            ndp::Function::None, {}, nullptr,
                            [this, idx](const baselines::PathResult &r) {
                                statuses[idx] = r.status;
                                ++completions;
                            });
    }
};

sys::NodeParams
batchedParams()
{
    sys::NodeParams pa;
    pa.hdc.doorbellBatch = 4;
    pa.hdc.doorbellHoldoff = microseconds(5);
    pa.hdc.msiCoalesce = 4;
    pa.hdc.msiHoldoff = milliseconds(5);
    pa.hdc.maxActiveCmds = 16;
    pa.hdc.maxLiveEntries = 256;
    return pa;
}

TEST(MsiCoalescing, ThresholdFlushCoversABurstWithOneInterrupt)
{
    BatchedRun run(batchedParams());
    run.tb.nodeA().hdcDriver().setDoorbellBatch(4, microseconds(5));

    const auto content = test::randomBytes(16 * 1024, 5);
    for (int i = 0; i < 4; ++i)
        run.get(i, content);
    run.tb.eq().run();

    ASSERT_EQ(run.completions, 4);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(run.statuses[i], 0u);
        EXPECT_EQ(run.received[i], content) << "conn " << i;
    }
    // All four completions land inside the 5 ms holdoff, so the
    // window fills and exactly one threshold-flush MSI covers them;
    // the armed holdoff timer then fires over an empty ring and must
    // stay silent (no interrupt, no spurious driver drain).
    EXPECT_EQ(run.tb.nodeA().engine().interruptsRaised(), 1u);
    EXPECT_EQ(run.tb.nodeA().engine().commandsCompleted(), 4u);
}

TEST(MsiCoalescing, HoldoffFlushesTheLastCompletionAtQuiesce)
{
    sys::NodeParams pa = batchedParams();
    pa.hdc.msiHoldoff = microseconds(50);
    BatchedRun run(pa);

    // A single request never fills the window: only the holdoff timer
    // delivers its completion. Termination proves the flush happened.
    const auto content = test::randomBytes(16 * 1024, 6);
    run.get(0, content);
    run.tb.eq().run();

    ASSERT_EQ(run.completions, 1);
    EXPECT_EQ(run.statuses[0], 0u);
    EXPECT_EQ(run.received[0], content);
    EXPECT_EQ(run.tb.nodeA().engine().interruptsRaised(), 1u);
}

TEST(MsiCoalescing, BatchedPathMovesCorrectBytesUnderLoad)
{
    BatchedRun run(batchedParams());
    run.tb.nodeA().hdcDriver().setDoorbellBatch(4, microseconds(5));

    // Distinct payloads so cross-wiring between connections would be
    // caught, enough requests for several coalescing windows.
    std::vector<std::vector<std::uint8_t>> contents;
    for (int i = 0; i < 10; ++i)
        contents.push_back(test::randomBytes(
            8 * 1024 + 512 * static_cast<std::size_t>(i),
            100 + static_cast<std::uint64_t>(i)));
    for (int i = 0; i < 10; ++i)
        run.get(i, contents[static_cast<std::size_t>(i)]);
    run.tb.eq().run();

    ASSERT_EQ(run.completions, 10);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(run.statuses[i], 0u);
        EXPECT_EQ(run.received[i], contents[static_cast<std::size_t>(i)])
            << "conn " << i;
    }
    const auto &engine = run.tb.nodeA().engine();
    EXPECT_LT(engine.interruptsRaised(), engine.commandsCompleted());
    // Host-side command doorbells batched too.
    EXPECT_LT(run.tb.nodeA().hdcDriver().doorbellWrites(),
              run.tb.nodeA().hdcDriver().commandsSubmitted());
}

// ---------------------------------------------------------------------
// Admission control: overload completes as 429, not as silent queueing.
// ---------------------------------------------------------------------

TEST(AdmissionControl, EngineRejectsBeyondActiveCommandBound)
{
    sys::NodeParams pa;
    pa.hdc.maxActiveCmds = 2;
    BatchedRun run(pa);
    run.tb.nodeA().hdcDriver().setRejectOnFull(true);

    const auto content = test::randomBytes(16 * 1024, 9);
    for (int i = 0; i < 6; ++i)
        run.get(i, content);
    run.tb.eq().run();

    ASSERT_EQ(run.completions, 6);
    int ok = 0, rejected = 0;
    for (int i = 0; i < 6; ++i) {
        if (run.statuses[i] == 0) {
            ++ok;
            EXPECT_EQ(run.received[i], content) << "conn " << i;
        } else {
            EXPECT_EQ(run.statuses[i], 429u) << "conn " << i;
            ++rejected;
            EXPECT_TRUE(run.received[i].empty()) << "conn " << i;
        }
    }
    EXPECT_GE(ok, 2);
    EXPECT_GE(rejected, 1);
    EXPECT_EQ(run.tb.nodeA().engine().commandsRejected(),
              static_cast<std::uint64_t>(rejected));
    // Rejected commands must leave no residue: after the drain the
    // engine's pooled command records, scoreboard slots, NDP streams
    // and buffer chunks all audit to exactly zero.
    EXPECT_TRUE(run.tb.nodeA().engine().checkQuiesce());
}

TEST(AdmissionControl, DriverRejectsLocallyWhenCommandQueueIsFull)
{
    // No engine bounds: overflow the driver's own 63-outstanding
    // command queue. With reject-on-full the excess completes as a
    // local 429 instead of dying on the legacy full-queue panic.
    BatchedRun run(sys::NodeParams{});
    run.tb.nodeA().hdcDriver().setRejectOnFull(true);

    // Large objects: service time (~ms) dwarfs the submission spread,
    // so the 63-outstanding window genuinely fills.
    const auto content = test::randomBytes(256 * 1024, 11);
    const int n = 70;
    for (int i = 0; i < n; ++i)
        run.get(i, content);
    run.tb.eq().run();

    ASSERT_EQ(run.completions, n);
    int ok = 0, rejected = 0;
    for (int i = 0; i < n; ++i) {
        if (run.statuses[i] == 0)
            ++ok;
        else
            ++rejected;
    }
    EXPECT_EQ(run.tb.nodeA().hdcDriver().rejectedLocal(),
              static_cast<std::uint64_t>(rejected));
    EXPECT_GE(rejected, n - 63);
    EXPECT_GE(ok, 63);
    EXPECT_TRUE(run.tb.nodeA().engine().checkQuiesce());
}

TEST(AdmissionControl, OverloadThenDrainLeavesEngineQuiescent)
{
    // Sustained overload against both engine bounds at once: a burst
    // several times the active-command cap, tight enough live-entry
    // headroom that the scoreboard-level estimate also rejects. After
    // the storm drains, the exact-occupancy audit must pass — with
    // the pooled command records and the slot-slab freelist, a leaked
    // record, slot, edge, stream or buffer chunk is directly
    // countable, so a 429 path that forgets to roll anything back
    // fails here instead of as slow growth at scale.
    // One 64 KiB-chunk command estimates at 2*(64Ki/4Ki)+2 = 34 live
    // entries, so a 40-entry bound admits one command against an empty
    // scoreboard and turns the next away until the first drains.
    sys::NodeParams pa;
    pa.hdc.maxActiveCmds = 3;
    pa.hdc.maxLiveEntries = 40;
    BatchedRun run(pa);
    run.tb.nodeA().hdcDriver().setRejectOnFull(true);

    const int n = 24;
    std::vector<std::vector<std::uint8_t>> contents;
    for (int i = 0; i < n; ++i)
        contents.push_back(test::randomBytes(
            12 * 1024 + 1024 * static_cast<std::size_t>(i % 5),
            200 + static_cast<std::uint64_t>(i)));
    for (int i = 0; i < n; ++i)
        run.get(i, contents[static_cast<std::size_t>(i)]);
    run.tb.eq().run();

    ASSERT_EQ(run.completions, n);
    int ok = 0, rejected = 0;
    for (int i = 0; i < n; ++i) {
        if (run.statuses[i] == 0) {
            ++ok;
            EXPECT_EQ(run.received[i],
                      contents[static_cast<std::size_t>(i)])
                << "conn " << i;
        } else {
            EXPECT_EQ(run.statuses[i], 429u) << "conn " << i;
            ++rejected;
        }
    }
    // The bounds must genuinely bite and admitted work must survive.
    EXPECT_GE(ok, 3);
    EXPECT_GE(rejected, 1);
    EXPECT_EQ(ok + rejected, n);

    const auto &engine = run.tb.nodeA().engine();
    EXPECT_EQ(engine.commandsCompleted() + engine.commandsRejected(),
              static_cast<std::uint64_t>(n) -
                  run.tb.nodeA().hdcDriver().rejectedLocal());
    EXPECT_TRUE(engine.checkQuiesce());
}

TEST(AdmissionControl, ScoreboardCapacityAccounting)
{
    EventQueue eq;
    hdc::HdcTiming timing;
    hdc::Scoreboard sb(eq, "sb", timing);
    sb.setLiveBound(2);
    EXPECT_TRUE(sb.hasCapacity(2));
    EXPECT_FALSE(sb.hasCapacity(3));

    hdc::Entry e;
    e.dev = hdc::DevClass::SsdCtrl;
    sb.addEntry(e);
    EXPECT_TRUE(sb.hasCapacity(1));
    EXPECT_FALSE(sb.hasCapacity(2));

    sb.noteReject();
    sb.noteReject();
    EXPECT_EQ(sb.rejects(), 2u);
    EXPECT_EQ(sb.liveBoundValue(), 2u);
}

#ifdef DCS_CHECKED
TEST(AdmissionControlDeathTest, LiveBoundBypassDiesUnderChecks)
{
    // The bound is enforced by construction (callers must consult
    // hasCapacity first); slipping an entry past it is a checked
    // invariant violation, never a silent overflow.
    EventQueue eq;
    hdc::HdcTiming timing;
    hdc::Scoreboard sb(eq, "sb", timing);
    sb.setLiveBound(1);
    hdc::Entry e;
    e.dev = hdc::DevClass::SsdCtrl;
    sb.addEntry(e);
    EXPECT_DEATH(sb.addEntry(e), "exceeds live bound");
}
#endif

// ---------------------------------------------------------------------
// The open-loop load generator.
// ---------------------------------------------------------------------

workload::LoadGenParams
smallLoad()
{
    workload::LoadGenParams p;
    p.clients = 500;
    p.offeredRps = 20'000;
    p.requestBytes = 4 * 1024;
    p.connections = 8;
    p.warmup = milliseconds(1);
    p.measure = milliseconds(5);
    p.preloadObjects = 4;
    return p;
}

struct LoadRun
{
    workload::LoadGenStats stats;
    std::uint64_t digest = 0;
};

LoadRun
runLoad(workload::Design design, const workload::LoadGenParams &p,
        sys::NodeParams pa = {}, bool reject_on_full = false)
{
    workload::Testbed tb(design, false, pa);
    if (reject_on_full)
        tb.nodeA().hdcDriver().setRejectOnFull(true);
    TraceHasher th;
    th.attach(tb.eq());
    workload::LoadGen gen(tb.eq(), tb.nodeA(), tb.nodeB(), tb.pathA(), p);
    LoadRun out;
    bool fin = false;
    gen.run([&](const workload::LoadGenStats &s) {
        out.stats = s;
        fin = true;
    });
    tb.eq().run();
    EXPECT_TRUE(fin) << "load generator did not drain";
    out.digest = th.digest();
    return out;
}

TEST(LoadGen, RunsAreDeterministic)
{
    const auto a = runLoad(workload::Design::DcsCtrl, smallLoad());
    const auto b = runLoad(workload::Design::DcsCtrl, smallLoad());
    EXPECT_GT(a.stats.offered, 20u);
    EXPECT_GT(a.stats.completed, 0u);
    EXPECT_EQ(a.stats.offered, b.stats.offered);
    EXPECT_EQ(a.stats.completed, b.stats.completed);
    EXPECT_EQ(a.stats.droppedClient, b.stats.droppedClient);
    EXPECT_EQ(a.stats.rejectedServer, b.stats.rejectedServer);
    EXPECT_EQ(a.digest, b.digest)
        << "load-generator event traces diverged between runs";
}

TEST(LoadGen, SeedsAndArrivalShapesProduceDistinctStreams)
{
    auto p = smallLoad();
    const auto base = runLoad(workload::Design::DcsCtrl, p);
    p.seed = 2;
    const auto reseeded = runLoad(workload::Design::DcsCtrl, p);
    EXPECT_NE(base.digest, reseeded.digest);

    p.seed = 1;
    p.bursty = true;
    const auto bursty = runLoad(workload::Design::DcsCtrl, p);
    EXPECT_NE(base.digest, bursty.digest);
    EXPECT_GT(bursty.stats.completed, 0u);
}

TEST(LoadGen, OverloadDropsAtTheClientWhenBacklogIsFull)
{
    auto p = smallLoad();
    p.offeredRps = 200'000; // far past a 2-conn pool's capacity
    p.connections = 2;
    p.maxBacklog = 4;
    const auto r = runLoad(workload::Design::DcsCtrl, p);
    EXPECT_GT(r.stats.droppedClient, 0u);
    EXPECT_GT(r.stats.completed, 0u);
    EXPECT_GE(r.stats.offered,
              r.stats.completed + r.stats.droppedClient);
}

TEST(LoadGen, ConnectionChurnIsAccounted)
{
    auto p = smallLoad();
    p.requestsPerConn = 4;
    const auto r = runLoad(workload::Design::DcsCtrl, p);
    EXPECT_GT(r.stats.churns, 0u);
    // Every churn covers requestsPerConn completions-or-rejects.
    EXPECT_LE(r.stats.churns * p.requestsPerConn,
              r.stats.completed + r.stats.rejectedServer +
                  p.requestsPerConn * 8 /* warmup slack per conn */);
}

TEST(LoadGen, ServerRejectsSurfaceAs429s)
{
    auto p = smallLoad();
    p.offeredRps = 120'000;
    p.rejectBackoff = microseconds(50);
    sys::NodeParams pa;
    pa.hdc.maxActiveCmds = 4;
    pa.hdc.maxLiveEntries = 64;
    const auto r = runLoad(workload::Design::DcsCtrl, p, pa, true);
    EXPECT_GT(r.stats.rejectedServer, 0u);
    EXPECT_GT(r.stats.completed, 0u);
    // Rejected requests move no payload bytes.
    EXPECT_EQ(r.stats.bytesMoved,
              r.stats.completed * p.requestBytes);
}

} // namespace
} // namespace dcs
