/**
 * @file
 * Flexibility-path tests: multiple SSDs behind one HDC Engine
 * (disaggregate standard controllers, paper §III-C), SSD->SSD D2D
 * copies, and the in-order-completion ablation.
 */

#include <gtest/gtest.h>

#include "fixtures.hh"

namespace dcs {
namespace {

class MultiSsdTest : public ::testing::Test
{
  protected:
    void
    bringUp(int extra_ssds)
    {
        sys::NodeParams pa;
        pa.extraSsds = extra_ssds;
        sysm = std::make_unique<sys::TwoNodeSystem>(eq, pa,
                                                    sys::NodeParams{});
        bool a = false, b = false;
        sysm->nodeA().bringUpDcs([&] { a = true; });
        sysm->nodeB().bringUpHostStack([&] { b = true; });
        eq.run();
        ASSERT_TRUE(a && b);
    }

    sys::Node &nodeA() { return sysm->nodeA(); }

    EventQueue eq;
    std::unique_ptr<sys::TwoNodeSystem> sysm;
};

TEST_F(MultiSsdTest, EngineBindsAllControllers)
{
    bringUp(2);
    EXPECT_EQ(nodeA().ssdCount(), 3u);
    EXPECT_EQ(nodeA().engine().ssdCount(), 3u);
    // Each controller has its own queue pair in engine BRAM.
    EXPECT_NE(nodeA().engine().nvmeSqBus(0),
              nodeA().engine().nvmeSqBus(1));
    EXPECT_NE(nodeA().engine().nvmeSqBus(1),
              nodeA().engine().nvmeSqBus(2));
}

TEST_F(MultiSsdTest, CrossSsdCopyWithDigest)
{
    bringUp(1);
    auto content = test::randomBytes(700000, 61);
    const int src = nodeA().fs(0).create("src.bin", content);
    const int dst = nodeA().fs(1).createEmpty("dst.bin", content.size());

    bool done = false;
    hdclib::D2dResult res;
    nodeA().hdcLib().copyFile(src, dst, 0, 0, content.size(),
                              ndp::Function::Sha256, {}, true,
                              /*src_ssd=*/0, /*dst_ssd=*/1, nullptr,
                              [&](const hdclib::D2dResult &r) {
                                  res = r;
                                  done = true;
                              });
    eq.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(nodeA().fs(1).readContents(dst), content);
    EXPECT_EQ(res.digest,
              ndp::makeHash("sha256")->oneShot(content));
    // Both controllers did real work.
    EXPECT_GT(nodeA().engine().nvmeCtrl(0).commandsIssued(), 0u);
    EXPECT_GT(nodeA().engine().nvmeCtrl(1).commandsIssued(), 0u);
}

TEST_F(MultiSsdTest, CopyNeverTouchesHostDram)
{
    bringUp(1);
    auto content = test::randomBytes(2 << 20, 62);
    const int src = nodeA().fs(0).create("big.bin", content);
    const int dst = nodeA().fs(1).createEmpty("copy.bin", content.size());

    const std::uint64_t host_before =
        nodeA().host().bridge().hostDmaBytes();
    bool done = false;
    nodeA().hdcLib().copyFile(src, dst, 0, 0, content.size(),
                              ndp::Function::None, {}, false, 0, 1,
                              nullptr,
                              [&](const hdclib::D2dResult &) {
                                  done = true;
                              });
    eq.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(nodeA().fs(1).readContents(dst), content);
    EXPECT_LT(nodeA().host().bridge().hostDmaBytes() - host_before,
              8192u);
}

TEST_F(MultiSsdTest, SameSsdCopy)
{
    bringUp(0);
    auto content = test::randomBytes(300000, 63);
    const int src = nodeA().fs().create("orig", content);
    const int dst = nodeA().fs().createEmpty("dup", content.size());

    bool done = false;
    nodeA().hdcLib().copyFile(src, dst, 0, 0, content.size(),
                              ndp::Function::None, {}, false, 0, 0,
                              nullptr,
                              [&](const hdclib::D2dResult &) {
                                  done = true;
                              });
    eq.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(nodeA().fs().readContents(dst), content);
    EXPECT_EQ(nodeA().fs().readContents(src), content)
        << "source untouched";
}

TEST_F(MultiSsdTest, ParallelSsdsOutpaceOne)
{
    // Aggregate write bandwidth should scale with controller count:
    // two copies to two different SSDs finish faster than two copies
    // to the same SSD.
    auto run_pair = [&](int dst_a, int dst_b) {
        bringUp(2);
        auto content = test::randomBytes(4 << 20, 64);
        const int s1 = nodeA().fs(0).create("s1", content);
        const int s2 = nodeA().fs(0).create("s2", content);
        const int d1 = nodeA()
                           .fs(static_cast<std::size_t>(dst_a))
                           .createEmpty("d1", content.size());
        const int d2 = nodeA()
                           .fs(static_cast<std::size_t>(dst_b))
                           .createEmpty("d2", content.size());
        int done = 0;
        const Tick start = eq.now();
        Tick end = 0;
        auto cb = [&](const hdclib::D2dResult &) {
            if (++done == 2)
                end = eq.now();
        };
        nodeA().hdcLib().copyFile(s1, d1, 0, 0, content.size(),
                                  ndp::Function::None, {}, false, 0,
                                  static_cast<std::uint8_t>(dst_a),
                                  nullptr, cb);
        nodeA().hdcLib().copyFile(s2, d2, 0, 0, content.size(),
                                  ndp::Function::None, {}, false, 0,
                                  static_cast<std::uint8_t>(dst_b),
                                  nullptr, cb);
        eq.run();
        EXPECT_EQ(done, 2);
        return end - start;
    };

    const Tick same = run_pair(1, 1);
    const Tick split = run_pair(1, 2);
    EXPECT_LT(split, same)
        << "independent write media should overlap";
}

class CompletionOrderTest : public test::TwoNodeFixture
{
};

TEST_F(CompletionOrderTest, OutOfOrderAblationUnblocksSmallCommands)
{
    // A slow MD5-bound command followed by a tiny plain one: with the
    // paper's in-order notification the small one waits; with the
    // ablation it completes first.
    auto run_once = [&](bool in_order) {
        sys::NodeParams pa;
        sys = std::make_unique<sys::TwoNodeSystem>(eq, pa,
                                                   sys::NodeParams{});
        bool up_a = false, up_b = false;
        // Patch the config through a custom driver bring-up: the knob
        // lives in HdcDeviceConfig, which HdcDriver fills — so tweak
        // the engine's copy after init via configureDevices is not
        // possible; instead rebuild with a param patch.
        nodeA().bringUpDcs([&] { up_a = true; });
        nodeB().bringUpHostStack([&] { up_b = true; });
        eq.run();
        EXPECT_TRUE(up_a && up_b);
        if (!in_order) {
            // Flip the engine's ordering knob (modelled config bit).
            nodeA().engine().setInOrderCompletion(false);
        }
        // Two connections: TCP byte-stream ordering legitimately
        // chains same-connection sends, so the ablation is visible
        // only across independent flows.
        host::ConnPairParams cp1, cp2;
        cp2.portA = 9100;
        cp2.portB = 40100;
        auto [ca1, cb1] = host::establishPair(nodeA().tcp(),
                                              nodeB().tcp(), cp1);
        auto [ca2, cb2] = host::establishPair(nodeA().tcp(),
                                              nodeB().tcp(), cp2);
        cb1->onPayload = [](std::uint32_t, BufChain) {};
        cb2->onPayload = [](std::uint32_t, BufChain) {};

        auto big = test::randomBytes(1 << 20, 65);
        auto small = test::randomBytes(4096, 66);
        const int fd_big = nodeA().fs().create("big", big);
        const int fd_small = nodeA().fs().create("small", small);

        std::vector<int> order;
        nodeA().hdcLib().sendFile(fd_big, ca1->fd, 0, big.size(),
                                  ndp::Function::Md5, {}, false, nullptr,
                                  [&](const hdclib::D2dResult &) {
                                      order.push_back(1);
                                  });
        nodeA().hdcLib().sendFile(fd_small, ca2->fd, 0, small.size(),
                                  ndp::Function::None, {}, false,
                                  nullptr,
                                  [&](const hdclib::D2dResult &) {
                                      order.push_back(2);
                                  });
        eq.run();
        EXPECT_EQ(order.size(), 2u);
        return order;
    };

    const auto strict = run_once(true);
    EXPECT_EQ(strict.front(), 1) << "paper semantics: in order";
    const auto relaxed = run_once(false);
    EXPECT_EQ(relaxed.front(), 2)
        << "ablation: the small command no longer waits";
}

} // namespace
} // namespace dcs
