/**
 * @file
 * Property tests for the scoreboard scheduler: random dependency DAGs
 * must execute in topological order, never exceed controller slot
 * limits, and always drain completely.
 */
// dcslint: allow-file(callback-lifetime): the test drains the queue in the
// same stack frame, so by-reference captures of locals cannot dangle.

#include <algorithm>
#include <gtest/gtest.h>

#include "hdc/scoreboard.hh"
#include "sim/rng.hh"

namespace dcs {
namespace hdc {
namespace {

class RandomDagTest : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomDagTest, TopologicalExecutionUnderSlotPressure)
{
    const int seed = GetParam();
    Rng rng(3000 + static_cast<std::uint64_t>(seed));
    EventQueue eq;
    HdcTiming timing;
    Scoreboard sb(eq, "sb", timing);

    // Random slot limits and service times per class.
    struct ClassCfg
    {
        int slots;
        Tick service;
        int inUse = 0;
        int peak = 0;
    };
    std::array<ClassCfg, 4> cfg;
    for (auto &c : cfg) {
        c.slots = 1 + static_cast<int>(rng.uniformInt(0, 5));
        c.service = microseconds(1 + rng.uniformInt(0, 20));
    }

    std::vector<std::uint32_t> started;
    for (int k = 0; k < 4; ++k) {
        const auto dev = static_cast<DevClass>(k);
        sb.registerController(
            dev,
            [&, k](const Entry &e) {
                auto &c = cfg[static_cast<std::size_t>(k)];
                c.peak = std::max(c.peak, ++c.inUse);
                started.push_back(e.id);
                eq.schedule(c.service, [&, k, id = e.id] {
                    --cfg[static_cast<std::size_t>(k)].inUse;
                    sb.complete(id);
                });
            },
            cfg[static_cast<std::size_t>(k)].slots);
    }

    // Random DAG: each entry may depend on a few earlier entries.
    const int n = 40 + static_cast<int>(rng.uniformInt(0, 60));
    std::vector<std::uint32_t> ids;
    std::vector<std::vector<std::uint32_t>> deps_of(
        static_cast<std::size_t>(n));
    sb.declareCommand(1, static_cast<std::uint32_t>(n));
    for (int i = 0; i < n; ++i) {
        Entry e;
        e.cmdId = 1;
        e.dev = static_cast<DevClass>(rng.uniformInt(0, 3));
        const auto id = sb.addEntry(e);
        ids.push_back(id);
        const int ndeps =
            i == 0 ? 0 : static_cast<int>(rng.uniformInt(0, 3));
        for (int d = 0; d < ndeps; ++d) {
            const auto dep =
                ids[rng.uniformInt(0, static_cast<std::uint64_t>(i) - 1)];
            // Avoid duplicate edges (double-count of pendingDeps is
            // legal but keep the reference model simple).
            auto &dv = deps_of[static_cast<std::size_t>(i)];
            if (std::find(dv.begin(), dv.end(), dep) == dv.end()) {
                sb.addDependency(dep, id);
                dv.push_back(dep);
            }
        }
    }

    bool all_done = false;
    sb.setCommandDone([&](std::uint32_t) { all_done = true; });
    sb.arm();
    eq.run();

    ASSERT_TRUE(all_done) << "DAG must drain";
    ASSERT_EQ(started.size(), static_cast<std::size_t>(n));
    EXPECT_EQ(sb.entriesLive(), 0u);

    // Topological order: every entry starts after its deps started
    // (deps complete before dependents issue, so start order is a
    // valid witness).
    std::vector<std::size_t> start_pos(
        static_cast<std::size_t>(n) + ids.back() + 1, 0);
    for (std::size_t p = 0; p < started.size(); ++p)
        start_pos[started[p]] = p;
    for (int i = 0; i < n; ++i)
        for (auto dep : deps_of[static_cast<std::size_t>(i)])
            EXPECT_LT(start_pos[dep],
                      start_pos[ids[static_cast<std::size_t>(i)]]);

    // Slot limits respected.
    for (const auto &c : cfg)
        EXPECT_LE(c.peak, c.slots);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagTest, ::testing::Range(0, 10));

TEST(ScoreboardEdge, MultipleCommandsInterleave)
{
    EventQueue eq;
    HdcTiming timing;
    Scoreboard sb(eq, "sb", timing);
    sb.registerController(
        DevClass::SsdCtrl,
        [&](const Entry &e) {
            eq.schedule(microseconds(2), [&, id = e.id] {
                sb.complete(id);
            });
        },
        2);

    std::vector<std::uint32_t> done_cmds;
    sb.setCommandDone(
        [&](std::uint32_t cmd) { done_cmds.push_back(cmd); });

    for (std::uint32_t cmd = 10; cmd < 14; ++cmd) {
        sb.declareCommand(cmd, 3);
        for (int i = 0; i < 3; ++i) {
            Entry e;
            e.cmdId = cmd;
            e.dev = DevClass::SsdCtrl;
            sb.addEntry(e);
        }
    }
    sb.arm();
    eq.run();
    ASSERT_EQ(done_cmds.size(), 4u);
    std::sort(done_cmds.begin(), done_cmds.end());
    EXPECT_EQ(done_cmds, (std::vector<std::uint32_t>{10, 11, 12, 13}));
}

TEST(ScoreboardEdge, QueuedEntryIssuesAtCompletionNotRetire)
{
    EventQueue eq;
    HdcTiming timing;
    // Make the completion-bookkeeping window unmissably long so the
    // test can tell "issued at completion" from "issued at retire".
    timing.scoreboardCompleteCycles = 100000;
    Scoreboard sb(eq, "sb", timing);

    std::vector<std::pair<std::uint32_t, Tick>> issued_at;
    sb.registerController(
        DevClass::SsdCtrl,
        [&](const Entry &e) {
            issued_at.emplace_back(e.id, eq.now());
            eq.schedule(microseconds(10), [&, id = e.id] {
                sb.complete(id);
            });
        },
        /*slots=*/1);

    sb.declareCommand(1, 2);
    Entry t;
    t.cmdId = 1;
    t.dev = DevClass::SsdCtrl;
    const auto first = sb.addEntry(t);
    const auto second = sb.addEntry(t);
    bool done = false;
    sb.setCommandDone([&](std::uint32_t) { done = true; });
    sb.arm();
    eq.run();

    ASSERT_TRUE(done);
    ASSERT_EQ(issued_at.size(), 2u);
    EXPECT_EQ(issued_at[0].first, first);
    EXPECT_EQ(issued_at[1].first, second);

    // First entry completes 10 us after its issue callback ran. The
    // freed slot must re-issue the queued second entry immediately
    // (one issue-cycle delay), NOT after the retire continuation's
    // scoreboardCompleteCycles.
    const Tick completion =
        issued_at[0].second + microseconds(10);
    const Tick expected =
        completion + timing.cycles(timing.scoreboardIssueCycles);
    EXPECT_EQ(issued_at[1].second, expected);
    EXPECT_LT(issued_at[1].second,
              completion + timing.cycles(timing.scoreboardCompleteCycles));
}

TEST(ScoreboardEdge, DiamondDependency)
{
    EventQueue eq;
    HdcTiming timing;
    Scoreboard sb(eq, "sb", timing);
    std::vector<std::uint32_t> order;
    sb.registerController(
        DevClass::NdpUnit,
        [&](const Entry &e) {
            order.push_back(e.id);
            eq.schedule(microseconds(1), [&, id = e.id] {
                sb.complete(id);
            });
        },
        8);

    // a -> {b, c} -> d
    Entry t;
    t.cmdId = 5;
    t.dev = DevClass::NdpUnit;
    const auto a = sb.addEntry(t);
    const auto b = sb.addEntry(t);
    const auto c = sb.addEntry(t);
    const auto d = sb.addEntry(t);
    sb.addDependency(a, b);
    sb.addDependency(a, c);
    sb.addDependency(b, d);
    sb.addDependency(c, d);
    sb.declareCommand(5, 4);
    bool fin = false;
    sb.setCommandDone([&](std::uint32_t) { fin = true; });
    sb.arm();
    eq.run();
    ASSERT_TRUE(fin);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order.front(), a);
    EXPECT_EQ(order.back(), d);
}

} // namespace
} // namespace hdc
} // namespace dcs
