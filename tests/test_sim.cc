/**
 * @file
 * Unit tests for the discrete-event kernel, RNG, and stats.
 */
// dcslint: allow-file(callback-lifetime): the test drains the queue in the
// same stack frame, so by-reference captures of locals cannot dangle.

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

namespace dcs {
namespace {

TEST(Ticks, UnitConversions)
{
    EXPECT_EQ(nanoseconds(1), 1000u);
    EXPECT_EQ(microseconds(1), 1000000u);
    EXPECT_EQ(milliseconds(1), 1000000000ull);
    EXPECT_DOUBLE_EQ(toMicroseconds(microseconds(42)), 42.0);
    EXPECT_DOUBLE_EQ(toSeconds(seconds(2)), 2.0);
}

TEST(Ticks, TransferTimeMatchesBandwidth)
{
    // 1 KiB at 8 Gbps = 1.024 us.
    const Tick t = transferTime(1024, 8.0);
    EXPECT_NEAR(toMicroseconds(t), 1.024, 0.001);
    // Zero bytes still rounds up to a nonzero tick (never free).
    EXPECT_GE(transferTime(0, 10.0), 1u);
}

TEST(Ticks, CyclesAtClock)
{
    // 250 cycles at 250 MHz = 1 us.
    EXPECT_EQ(cyclesAt(250, 250.0), microseconds(1));
}

TEST(EventQueue, FifoAtSameTick)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(100, [&] { order.push_back(1); });
    eq.schedule(100, [&] { order.push_back(2); });
    eq.schedule(50, [&] { order.push_back(0); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, NestedScheduling)
{
    EventQueue eq;
    Tick inner_fired = 0;
    eq.schedule(10, [&] {
        eq.schedule(5, [&] { inner_fired = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(inner_fired, 15u);
}

TEST(EventQueue, Deschedule)
{
    EventQueue eq;
    bool fired = false;
    const EventId id = eq.schedule(10, [&] { fired = true; });
    eq.deschedule(id);
    eq.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(eq.executed(), 0u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int count = 0;
    for (int i = 1; i <= 10; ++i)
        eq.schedule(Tick(i) * 100, [&] { ++count; });
    eq.runUntil(500);
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 500u);
    eq.run();
    EXPECT_EQ(count, 10);
}

TEST(EventQueue, EmptyAndStep)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.step());
    eq.schedule(1, [] {});
    EXPECT_FALSE(eq.empty());
    EXPECT_TRUE(eq.step());
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, DescheduleAfterFireIsNoOp)
{
    EventQueue eq;
    int hits = 0;
    const EventId early = eq.schedule(10, [&] { ++hits; });
    eq.schedule(20, [&] { ++hits; });
    EXPECT_TRUE(eq.step()); // fires `early`
    eq.deschedule(early);   // documented no-op
    eq.run();
    EXPECT_EQ(hits, 2);
    EXPECT_EQ(eq.executed(), 2u);
    EXPECT_EQ(eq.cancelledPopped(), 0u);
}

TEST(EventQueue, DescheduleTwiceCancelsOnlyOnce)
{
    EventQueue eq;
    bool fired = false;
    const EventId id = eq.schedule(10, [&] { fired = true; });
    eq.deschedule(id);
    eq.deschedule(id);
    eq.schedule(20, [] {});
    eq.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(eq.executed(), 1u);
    EXPECT_EQ(eq.cancelledPopped(), 1u);
}

TEST(EventQueue, ScheduleAtNowFiresThisTick)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    ASSERT_EQ(eq.now(), 100u);

    // Zero-delay / at-now events are legal and fire without advancing
    // time, after already-pending same-tick events (FIFO by id).
    std::vector<int> order;
    eq.scheduleAt(eq.now(), [&] {
        order.push_back(1);
        eq.schedule(0, [&] { order.push_back(2); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(50, [] {});
    eq.run();
    ASSERT_EQ(eq.now(), 50u);
    EXPECT_DEATH(eq.scheduleAt(10, [] {}), "scheduling into the past");
}

TEST(EventQueue, ConservationCounters)
{
    EventQueue eq;
    std::vector<EventId> ids;
    for (int i = 0; i < 100; ++i)
        ids.push_back(eq.schedule(Tick(i + 1), [] {}));
    for (int i = 0; i < 100; i += 2)
        eq.deschedule(ids[static_cast<std::size_t>(i)]);
    eq.run();
    EXPECT_EQ(eq.scheduled(), 100u);
    EXPECT_EQ(eq.executed(), 50u);
    EXPECT_EQ(eq.cancelledPopped(), 50u);
}

TEST(EventQueue, DescheduleHeavyWorkloadStaysFast)
{
    // Regression for the O(n·m) lazy-deletion scan: with the linear
    // search this took minutes; with set-based cancellation it is
    // instant. A timeout here means the scan regressed.
    EventQueue eq;
    const int waves = 40;
    const int per_wave = 5000;
    std::uint64_t fired = 0;
    for (int w = 0; w < waves; ++w) {
        std::vector<EventId> ids;
        ids.reserve(per_wave);
        const Tick base = Tick(w + 1) * 1000;
        for (int i = 0; i < per_wave; ++i)
            ids.push_back(eq.scheduleAt(base + Tick(i), [&] { ++fired; }));
        // Cancel all but one event per wave (retransmit-timer pattern).
        for (int i = 0; i < per_wave - 1; ++i)
            eq.deschedule(ids[static_cast<std::size_t>(i)]);
    }
    eq.run();
    EXPECT_EQ(fired, static_cast<std::uint64_t>(waves));
    EXPECT_EQ(eq.cancelledPopped(),
              static_cast<std::uint64_t>(waves) * (per_wave - 1));
}

TEST(TraceHasher, IdenticalStreamsMatchDivergentStreamsDiffer)
{
    const auto run = [](Tick skew) {
        EventQueue eq;
        TraceHasher th;
        th.attach(eq);
        eq.schedule(10 + skew, [] {});
        eq.schedule(20, [] {}, "label");
        eq.run();
        return th.digest();
    };
    EXPECT_EQ(run(0), run(0));
    EXPECT_NE(run(0), run(1));
}

TEST(TraceHasher, LabelsEnterTheDigest)
{
    TraceHasher a, b;
    a.observe(1, 1, "nodeA.ssd");
    b.observe(1, 1, "nodeA.nic");
    EXPECT_NE(a.digest(), b.digest());
    EXPECT_EQ(a.events(), 1u);
}

TEST(Rng, DeterministicStreams)
{
    Rng a(99), b(99), c(100);
    bool all_equal = true, any_diff = false;
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next();
        all_equal &= va == b.next();
        any_diff |= va != c.next();
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformBounds)
{
    Rng r(5);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        const auto v = r.uniformInt(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Rng, ExponentialMean)
{
    Rng r(17);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, DiscreteRespectsWeights)
{
    Rng r(3);
    std::vector<double> w = {1.0, 0.0, 3.0};
    int counts[3] = {};
    for (int i = 0; i < 40000; ++i)
        ++counts[r.discrete(w)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(double(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(Stats, DistributionMoments)
{
    stats::Distribution d;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    EXPECT_NEAR(d.stddev(), 2.138, 0.001);
}

TEST(Stats, BreakdownTotals)
{
    enum class K { A, B, NumCategories };
    stats::Breakdown<K> b;
    b.add(K::A, 1.5);
    b.add(K::B, 2.0);
    b.add(K::A, 0.5);
    EXPECT_DOUBLE_EQ(b.get(K::A), 2.0);
    EXPECT_DOUBLE_EQ(b.total(), 4.0);
    b.reset();
    EXPECT_DOUBLE_EQ(b.total(), 0.0);
}

} // namespace
} // namespace dcs
