/**
 * @file
 * HDC Library / Driver unit-level tests: connection attachment,
 * command accounting, digest result slots, buffer-endpoint calls,
 * and the driver's boundary-crossing footprint.
 */

#include <cstring>
#include <gtest/gtest.h>

#include "fixtures.hh"

namespace dcs {
namespace {

class HdclibTest : public test::TwoNodeFixture
{
};

TEST_F(HdclibTest, AttachConnectionIsIdempotent)
{
    bringUp(true);
    const int c1 = nodeA().hdcDriver().attachConnection(connA->fd);
    const int c2 = nodeA().hdcDriver().attachConnection(connA->fd);
    EXPECT_GT(c1, 0);
    EXPECT_EQ(c1, c2) << "same fd must map to the same connection id";
    EXPECT_EQ(nodeA().hdcDriver().attachConnection(123456), -1);
}

TEST_F(HdclibTest, CommandCountingAndIds)
{
    bringUp(true);
    sinkAtB();
    auto content = test::randomBytes(8192, 140);
    const int fd = nodeA().fs().create("f", content);

    std::vector<std::uint32_t> ids;
    int done = 0;
    for (int i = 0; i < 3; ++i)
        nodeA().hdcLib().sendFile(fd, connA->fd, 0, content.size(),
                                  ndp::Function::None, {}, false,
                                  nullptr,
                                  [&](const hdclib::D2dResult &r) {
                                      ids.push_back(r.cmdId);
                                      ++done;
                                  });
    eq.run();
    EXPECT_EQ(done, 3);
    EXPECT_EQ(nodeA().hdcDriver().commandsSubmitted(), 3u);
    EXPECT_EQ(nodeA().engine().commandsCompleted(), 3u);
    // Ids are unique and increasing (submission order).
    for (std::size_t i = 1; i < ids.size(); ++i)
        EXPECT_GT(ids[i], ids[i - 1]);
}

TEST_F(HdclibTest, BufferRoundTripViaEngineDram)
{
    bringUp(true);
    sinkAtB();
    auto content = test::randomBytes(150000, 141);
    const int fd = nodeA().fs().create("f", content);
    const std::uint64_t buf_off = 64ull << 20;

    // Stage to the on-board buffer, then send the buffer.
    bool staged = false;
    nodeA().hdcLib().readFileToBuffer(fd, 0, content.size(), buf_off,
                                      ndp::Function::None, {}, false,
                                      nullptr,
                                      [&](const hdclib::D2dResult &) {
                                          staged = true;
                                      });
    eq.run();
    ASSERT_TRUE(staged);

    bool sent = false;
    nodeA().hdcLib().sendBuffer(buf_off, connA->fd, content.size(),
                                ndp::Function::None, {}, false, nullptr,
                                [&](const hdclib::D2dResult &) {
                                    sent = true;
                                });
    eq.run();
    ASSERT_TRUE(sent);
    EXPECT_EQ(received, content);
}

TEST_F(HdclibTest, DigestResultSlotsSurviveConcurrency)
{
    bringUp(true);
    sinkAtB();
    // Several digest-bearing commands in flight: each must get its
    // own digest back (result slots are per command id).
    const int n = 6;
    int done = 0;
    for (int i = 0; i < n; ++i) {
        auto content =
            test::randomBytes(20000 + 1000 * i, 150 + i);
        const int fd = nodeA().fs().create("f" + std::to_string(i),
                                           content);
        auto want = ndp::makeHash("md5")->oneShot(content);
        nodeA().hdcLib().sendFile(
            fd, connA->fd, 0, content.size(), ndp::Function::Md5, {},
            true, nullptr, [&, want](const hdclib::D2dResult &r) {
                EXPECT_EQ(r.digest, want);
                ++done;
            });
    }
    eq.run();
    EXPECT_EQ(done, n);
}

TEST_F(HdclibTest, BoundaryCrossingsPerOperation)
{
    bringUp(true);
    sinkAtB();
    auto content = test::randomBytes(65536, 142);
    const int fd = nodeA().fs().create("f", content);

    // Warm up once (connection attach etc.).
    bool warm = false;
    nodeA().hdcLib().sendFile(fd, connA->fd, 0, content.size(),
                              ndp::Function::None, {}, false, nullptr,
                              [&](const hdclib::D2dResult &) {
                                  warm = true;
                              });
    eq.run();
    ASSERT_TRUE(warm);

    const auto mmio0 = nodeA().fabric().hostMmioWrites();
    const auto msi0 = nodeA().host().bridge().msisDelivered();
    bool done = false;
    nodeA().hdcLib().sendFile(fd, connA->fd, 0, content.size(),
                              ndp::Function::None, {}, false, nullptr,
                              [&](const hdclib::D2dResult &) {
                                  done = true;
                              });
    eq.run();
    ASSERT_TRUE(done);
    // One doorbell in, one interrupt out — the paper's whole point.
    EXPECT_EQ(nodeA().fabric().hostMmioWrites() - mmio0, 1u);
    EXPECT_EQ(nodeA().host().bridge().msisDelivered() - msi0, 1u);
}

TEST_F(HdclibTest, TraceAttributionSumsBelowTotal)
{
    bringUp(true);
    sinkAtB();
    auto content = test::randomBytes(32768, 143);
    const int fd = nodeA().fs().create("f", content);
    auto trace = host::makeTrace();
    const Tick start = eq.now();
    Tick end = 0;
    nodeA().hdcLib().sendFile(fd, connA->fd, 0, content.size(),
                              ndp::Function::Crc32, {}, true, trace,
                              [&](const hdclib::D2dResult &) {
                                  end = eq.now();
                              });
    eq.run();
    ASSERT_GT(end, start);
    EXPECT_LE(trace->total(), double(end - start) * 1.01);
    EXPECT_GT(trace->get(host::LatComp::Read), 0.0);
}

} // namespace
} // namespace dcs
