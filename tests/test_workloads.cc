/**
 * @file
 * Workload-layer tests: request mix statistics, Swift and HDFS
 * drivers, and the cross-design CPU-utilization orderings that
 * Figures 12/13 depend on.
 */

#include <gtest/gtest.h>

#include "fixtures.hh"
#include "workload/dropbox_mix.hh"
#include "workload/hdfs.hh"
#include "workload/swift.hh"

namespace dcs {
namespace workload {
namespace {

TEST(DropboxMix, SamplesFollowWeights)
{
    Rng rng(1);
    MixParams p;
    std::size_t small = 0, total = 20000;
    for (std::size_t i = 0; i < total; ++i)
        if (sampleSize(rng, p) <= 64 * 1024)
            ++small;
    // Buckets <= 64 KiB carry 0.55 weight.
    EXPECT_NEAR(double(small) / double(total), 0.55, 0.02);

    std::size_t gets = 0;
    for (std::size_t i = 0; i < total; ++i)
        if (sampleIsGet(rng, p))
            ++gets;
    EXPECT_NEAR(double(gets) / double(total), p.getFraction, 0.02);
}

TEST(DropboxMix, MeanSizeMatchesWeights)
{
    MixParams p;
    p.sizeBuckets = {{100, 1.0}, {300, 1.0}};
    EXPECT_DOUBLE_EQ(meanSize(p), 200.0);
}

class WorkloadFixture : public test::TwoNodeFixture
{
  protected:
    struct Result
    {
        SwiftStats swift;
        HdfsStats hdfs;
    };

    SwiftStats
    runSwift(const std::string &design, double offered_gbps = 2.0)
    {
        const bool dcs = design == "dcs-ctrl";
        bringUp(dcs);
        path = makePath(design, nodeA());
        SwiftParams p;
        p.offeredGbps = offered_gbps;
        p.warmup = milliseconds(3);
        p.measure = milliseconds(40);
        p.connections = 12;
        // Cap object sizes so queueing stays stable at this load.
        p.mix.sizeBuckets = {{16 * 1024, 0.3},
                             {128 * 1024, 0.4},
                             {1024 * 1024, 0.3}};
        SwiftWorkload wl(eq, nodeA(), nodeB(), *path, p);
        SwiftStats out;
        bool fin = false;
        wl.run([&](const SwiftStats &s) {
            out = s;
            fin = true;
        });
        eq.run();
        EXPECT_TRUE(fin) << design << " swift run did not drain";
        return out;
    }

    HdfsStats
    runHdfs(const std::string &design)
    {
        const bool dcs = design == "dcs-ctrl";
        bringUp(dcs, dcs);
        path = makePath(design, nodeA());
        rpath = makePath(design, nodeB());
        HdfsParams p;
        p.blocks = 8;
        p.streams = 4;
        p.blockBytes = 4ull << 20;
        HdfsBalancer wl(eq, nodeA(), nodeB(), *path, *rpath, p);
        HdfsStats out;
        bool fin = false;
        wl.run([&](const HdfsStats &s) {
            out = s;
            fin = true;
        });
        eq.run();
        EXPECT_TRUE(fin) << design << " hdfs run did not drain";
        return out;
    }

    std::unique_ptr<baselines::DataPath>
    makePath(const std::string &design, sys::Node &node)
    {
        if (design == "sw-opt")
            return std::make_unique<baselines::SwOptimizedPath>(node);
        if (design == "sw-p2p")
            return std::make_unique<baselines::SwP2pPath>(node);
        return std::make_unique<baselines::DcsCtrlPath>(node);
    }

    std::unique_ptr<baselines::DataPath> path;
    std::unique_ptr<baselines::DataPath> rpath;
};

TEST_F(WorkloadFixture, SwiftCompletesRequestsUnderAllDesigns)
{
    for (const char *d : {"sw-opt", "sw-p2p", "dcs-ctrl"}) {
        const auto s = runSwift(d);
        EXPECT_GT(s.getsDone + s.putsDone, 10u) << d;
        EXPECT_GT(s.throughputGbps, 0.5) << d;
        EXPECT_GT(s.latencyUs.count(), 0u) << d;
    }
}

TEST_F(WorkloadFixture, SwiftDcsUsesFarLessCpuAtSameLoad)
{
    const auto swo = runSwift("sw-opt");
    const auto dcs = runSwift("dcs-ctrl");
    // Comparable served throughput...
    EXPECT_NEAR(dcs.throughputGbps, swo.throughputGbps,
                0.5 * swo.throughputGbps);
    // ...at a fraction of the CPU (paper: ~52% reduction; our thin
    // D2D path removes even more of this workload's kernel time).
    EXPECT_LT(dcs.cpuUtilization, 0.5 * swo.cpuUtilization);
}

TEST_F(WorkloadFixture, HdfsMovesEveryBlockOnAllDesigns)
{
    for (const char *d : {"sw-opt", "sw-p2p", "dcs-ctrl"}) {
        const auto s = runHdfs(d);
        EXPECT_EQ(s.blocksMoved, 8u) << d;
        EXPECT_GT(s.bandwidthGbps, 3.0) << d;
    }
}

TEST_F(WorkloadFixture, HdfsShapesMatchPaper)
{
    const auto swo = runHdfs("sw-opt");
    const auto swp = runHdfs("sw-p2p");
    const auto dcs = runHdfs("dcs-ctrl");

    // Paper §V-C2: software-controlled P2P cannot improve HDFS
    // (sender has no GPU work; receiver has the gathering problem).
    EXPECT_NEAR(swp.receiverCpuUtil, swo.receiverCpuUtil,
                0.15 * swo.receiverCpuUtil + 1e-3);
    // DCS-ctrl slashes CPU use on both sides.
    EXPECT_LT(dcs.senderCpuUtil, 0.3 * swo.senderCpuUtil + 1e-3);
    EXPECT_LT(dcs.receiverCpuUtil, 0.3 * swo.receiverCpuUtil + 1e-3);
    // And does not sacrifice bandwidth.
    EXPECT_GE(dcs.bandwidthGbps, 0.9 * swo.bandwidthGbps);
}

TEST_F(WorkloadFixture, SwiftStableAcrossSeeds)
{
    // Property: different seeds give different request sequences but
    // the same broad behaviour (throughput within a band).
    std::vector<double> tputs;
    for (std::uint64_t seed : {1ull, 2ull}) {
        bringUp(false);
        path = makePath("sw-opt", nodeA());
        SwiftParams p;
        p.offeredGbps = 1.5;
        p.warmup = milliseconds(3);
        p.measure = milliseconds(30);
        p.seed = seed;
        p.mix.sizeBuckets = {{64 * 1024, 0.5}, {256 * 1024, 0.5}};
        SwiftWorkload wl(eq, nodeA(), nodeB(), *path, p);
        bool fin = false;
        double tput = 0;
        wl.run([&](const SwiftStats &s) {
            tput = s.throughputGbps;
            fin = true;
        });
        eq.run();
        ASSERT_TRUE(fin);
        tputs.push_back(tput);
    }
    EXPECT_NEAR(tputs[0], tputs[1], 0.8);
}

} // namespace
} // namespace workload
} // namespace dcs
