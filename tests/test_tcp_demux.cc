/**
 * @file
 * TCP receive-demux and teardown tests: duplicate flow keys resolve
 * deterministically (first-established wins, earliest survivor
 * promoted on close), and closing a connection mid-send aborts the
 * rest of the write without touching freed state.
 */
// dcslint: allow-file(callback-lifetime): the test drains the queue in the
// same stack frame, so by-reference captures of locals cannot dangle.

#include <gtest/gtest.h>

#include "fixtures.hh"

namespace dcs {
namespace {

class TcpDemuxTest : public test::TwoNodeFixture
{
};

TEST_F(TcpDemuxTest, DuplicateFlowKeyDeliversToFirstEstablished)
{
    bringUp(false);
    // A second pair on the SAME ports: both B-side connections have
    // an identical flow key. Delivery must go to whichever was
    // established first — by rule, not by container iteration order.
    auto [ca2, cb2] =
        host::establishPair(nodeA().tcp(), nodeB().tcp());

    std::uint64_t to_first = 0, to_second = 0;
    connB->onPayload = [&](std::uint32_t, BufChain p) {
        to_first += p.size();
    };
    cb2->onPayload = [&](std::uint32_t, BufChain p) {
        to_second += p.size();
    };

    const std::uint32_t len = 3000;
    const Addr buf = nodeA().host().allocDma(len);
    bool sent = false;
    nodeA().tcp().send(*connA, buf, len, 1448, nullptr,
                       [&] { sent = true; });
    eq.run();

    ASSERT_TRUE(sent);
    EXPECT_EQ(to_first, len);
    EXPECT_EQ(to_second, 0u);
    EXPECT_EQ(nodeB().tcp().framesUnmatched(), 0u);

    // Sending on the *second* A-side connection also lands on the
    // first-established B-side connection: receive demux keys on the
    // endpoint pair, which both connections share.
    sent = false;
    nodeA().tcp().send(*ca2, buf, len, 1448, nullptr,
                       [&] { sent = true; });
    eq.run();
    ASSERT_TRUE(sent);
    EXPECT_EQ(to_first, 2 * std::uint64_t{len});
    EXPECT_EQ(to_second, 0u);
}

TEST_F(TcpDemuxTest, CloseVictimPromotesEarliestSurvivor)
{
    bringUp(false);
    auto [ca2, cb2] =
        host::establishPair(nodeA().tcp(), nodeB().tcp());
    (void)ca2;

    std::uint64_t to_second = 0;
    cb2->onPayload = [&](std::uint32_t, BufChain p) {
        to_second += p.size();
    };

    ASSERT_EQ(nodeB().tcp().connectionCount(), 2u);
    ASSERT_TRUE(nodeB().tcp().close(connB->fd));
    EXPECT_EQ(nodeB().tcp().connectionCount(), 1u);
    // Double-close reports failure instead of corrupting state.
    EXPECT_FALSE(nodeB().tcp().close(connB->fd));
    connB = nullptr; // freed by close

    const std::uint32_t len = 2000;
    const Addr buf = nodeA().host().allocDma(len);
    bool sent = false;
    nodeA().tcp().send(*connA, buf, len, 1448, nullptr,
                       [&] { sent = true; });
    eq.run();

    ASSERT_TRUE(sent);
    EXPECT_EQ(to_second, len);
    EXPECT_EQ(nodeB().tcp().framesUnmatched(), 0u);
}

TEST_F(TcpDemuxTest, FrameForClosedConnectionCountsUnmatched)
{
    bringUp(false);
    sinkAtB();
    ASSERT_TRUE(nodeB().tcp().close(connB->fd));
    connB = nullptr;

    const std::uint32_t len = 1000;
    const Addr buf = nodeA().host().allocDma(len);
    bool sent = false;
    nodeA().tcp().send(*connA, buf, len, 1448, nullptr,
                       [&] { sent = true; });
    eq.run();

    ASSERT_TRUE(sent); // send-side completion is local to A
    EXPECT_EQ(received.size(), 0u);
    EXPECT_GE(nodeB().tcp().framesUnmatched(), 1u);
}

TEST_F(TcpDemuxTest, CloseDuringMultiPassSendAbortsQuietly)
{
    bringUp(false);
    sinkAtB();

    // 200000 bytes = four GSO passes through the stack. Close the
    // sending connection while the write is in flight: the fd-based
    // continuation must drop the remainder instead of touching the
    // freed connection.
    const std::uint32_t len = 200000;
    const Addr buf = nodeA().host().allocDma(len);
    bool done = false;
    nodeA().tcp().send(*connA, buf, len, 8192, nullptr,
                       [&] { done = true; });
    const int fd = connA->fd;
    eq.schedule(microseconds(50), [&, fd] {
        ASSERT_TRUE(nodeA().tcp().close(fd));
        connA = nullptr;
    });
    eq.run();

    EXPECT_FALSE(done) << "aborted send must not report completion";
    EXPECT_LT(received.size(), len);
    EXPECT_EQ(nodeA().tcp().connectionCount(), 0u);
}

} // namespace
} // namespace dcs
