/**
 * @file
 * DCS-ctrl datapath: the DataPath interface over HDC Library.
 */

#ifndef DCS_BASELINES_DCS_PATH_HH
#define DCS_BASELINES_DCS_PATH_HH

#include "baselines/datapath.hh"
#include "sys/node.hh"

namespace dcs {
namespace baselines {

/** The paper's design: single API call, hardware device control. */
class DcsCtrlPath : public DataPath
{
  public:
    explicit DcsCtrlPath(sys::Node &node) : node(node) {}

    std::string label() const override { return "dcs-ctrl"; }

    void
    sendFile(int file_fd, int sock_fd, std::uint64_t offset,
             std::uint64_t len, ndp::Function fn,
             std::vector<std::uint8_t> aux, host::TracePtr trace,
             PathCallback done) override
    {
        const bool digest = digestBearing(fn);
        node.hdcLib().sendFile(file_fd, sock_fd, offset, len, fn,
                               std::move(aux), digest, trace,
                               [done = std::move(done)](
                                   const hdclib::D2dResult &r) {
                                   done(PathResult{r.digest, r.status});
                               });
    }

    void
    receiveToFile(int sock_fd, int file_fd, std::uint64_t offset,
                  std::uint64_t len, ndp::Function fn,
                  std::vector<std::uint8_t> aux, host::TracePtr trace,
                  PathCallback done) override
    {
        const bool digest = digestBearing(fn);
        node.hdcLib().recvFile(sock_fd, file_fd, offset, len, fn,
                               std::move(aux), digest, trace,
                               [done = std::move(done)](
                                   const hdclib::D2dResult &r) {
                                   done(PathResult{r.digest, r.status});
                               });
    }

  private:
    static bool
    digestBearing(ndp::Function fn)
    {
        switch (fn) {
          case ndp::Function::Md5:
          case ndp::Function::Sha1:
          case ndp::Function::Sha256:
          case ndp::Function::Crc32:
            return true;
          default:
            return false;
        }
    }

    sys::Node &node;
};

} // namespace baselines
} // namespace dcs

#endif // DCS_BASELINES_DCS_PATH_HH
