/**
 * @file
 * The common datapath interface all designs implement.
 *
 * Every experiment sweeps the same operations over the paper's three
 * designs (software optimization, software-controlled P2P, DCS-ctrl),
 * so the workloads are written once against this interface.
 */

#ifndef DCS_BASELINES_DATAPATH_HH
#define DCS_BASELINES_DATAPATH_HH

#include <functional>
#include <string>
#include <vector>

#include "host/trace.hh"
#include "ndp/transform.hh"

namespace dcs {
namespace baselines {

/** Completion of a datapath operation. */
struct PathResult
{
    std::vector<std::uint8_t> digest; //!< set for integrity functions
    /** 0 = completed; 429 = rejected under overload (admission control
     *  or a full submission queue). Software paths always complete. */
    std::uint32_t status = 0;
};

using PathCallback = std::function<void(const PathResult &)>;

/** One design's implementation of the multi-device operations. */
class DataPath
{
  public:
    virtual ~DataPath() = default;

    /** Design name for reports ("sw-opt", "sw-p2p", "dcs-ctrl"). */
    virtual std::string label() const = 0;

    /**
     * Send file bytes [offset, offset+len) of @p file_fd on socket
     * @p sock_fd, applying @p fn in flight (digest returned when
     * @p fn is an integrity function).
     */
    virtual void sendFile(int file_fd, int sock_fd, std::uint64_t offset,
                          std::uint64_t len, ndp::Function fn,
                          std::vector<std::uint8_t> aux,
                          host::TracePtr trace, PathCallback done) = 0;

    /**
     * Receive @p len stream bytes from @p sock_fd, apply @p fn, and
     * store the (post-transform) bytes into @p file_fd at @p offset.
     */
    virtual void receiveToFile(int sock_fd, int file_fd,
                               std::uint64_t offset, std::uint64_t len,
                               ndp::Function fn,
                               std::vector<std::uint8_t> aux,
                               host::TracePtr trace, PathCallback done) = 0;
};

} // namespace baselines
} // namespace dcs

#endif // DCS_BASELINES_DATAPATH_HH
