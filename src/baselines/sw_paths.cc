#include "baselines/sw_paths.hh"

#include <memory>

#include "sim/logging.hh"

namespace dcs {
namespace baselines {

using host::CpuCat;
using host::LatComp;

namespace {

std::size_t
digestSizeOf(ndp::Function fn)
{
    switch (fn) {
      case ndp::Function::Md5:
        return 16;
      case ndp::Function::Sha1:
        return 20;
      case ndp::Function::Sha256:
        return 32;
      case ndp::Function::Crc32:
        return 4;
      default:
        return 0;
    }
}

constexpr std::uint32_t kMaxBlocksPerCmd = 256; // 1 MiB NVMe commands
constexpr std::uint32_t kMss = 8960;

} // namespace

SwBasePath::SwBasePath(sys::Node &node, bool gpu_p2p, bool vanilla,
                       int staging_slots, std::uint64_t slot_bytes)
    : node(node), gpuP2p(gpu_p2p), vanilla(vanilla),
      staging(node.host(), staging_slots, slot_bytes)
{
}

void
SwBasePath::chargeVanilla(std::uint64_t len, host::TracePtr trace,
                          std::function<void()> done)
{
    if (!vanilla) {
        done();
        return;
    }
    auto &host = node.host();
    const std::uint64_t chunks = (len + 65535) / 65536;
    const Tick pc = host.costs().pageCachePer64k *
                    std::max<std::uint64_t>(chunks, 1);
    const Tick t0 = host.cpu().now();
    host.cpu().run(CpuCat::PageCache, pc, [this, &host, len, trace, t0,
                                           done = std::move(done)]() mutable {
        // Extra user<->kernel copy the optimized paths avoid.
        host.cpu().run(CpuCat::DataCopy,
                       host::copyTime(len, host.costs().copyGBps),
                       [trace, t0, &host, done = std::move(done)] {
                           if (trace)
                               trace->add(LatComp::DataCopy,
                                          host.cpu().now() - t0);
                           done();
                       });
    });
}

std::uint64_t
SwBasePath::gpuSlot()
{
    const std::uint64_t off =
        std::uint64_t(gpuSlotCursor % gpuSlots) * gpuSlotBytes;
    ++gpuSlotCursor;
    return off;
}

void
SwBasePath::readFileToBus(int fd, std::uint64_t offset, std::uint64_t len,
                          Addr dst, host::TracePtr trace,
                          std::function<void()> done)
{
    const auto extents = node.fs().resolve(fd, offset, len);
    auto remaining = std::make_shared<int>(0);
    auto fire = std::make_shared<std::function<void()>>(std::move(done));

    std::uint64_t bus_off = 0;
    for (const auto &e : extents) {
        std::uint64_t lba = e.lba;
        std::uint32_t blocks = e.blocks;
        while (blocks > 0) {
            const std::uint32_t n = std::min(blocks, kMaxBlocksPerCmd);
            ++*remaining;
            node.nvmeDriver().readBlocks(
                lba, n, dst + bus_off, trace, [remaining, fire] {
                    if (--*remaining == 0)
                        (*fire)();
                });
            lba += n;
            blocks -= n;
            bus_off += std::uint64_t(n) * nvme::lbaSize;
        }
    }
    if (extents.empty())
        (*fire)();
}

void
SwBasePath::writeBusToFile(int fd, std::uint64_t offset, std::uint64_t len,
                           Addr src, host::TracePtr trace,
                           std::function<void()> done)
{
    const auto extents = node.fs().resolve(fd, offset, len);
    auto remaining = std::make_shared<int>(0);
    auto fire = std::make_shared<std::function<void()>>(std::move(done));

    std::uint64_t bus_off = 0;
    for (const auto &e : extents) {
        std::uint64_t lba = e.lba;
        std::uint32_t blocks = e.blocks;
        while (blocks > 0) {
            const std::uint32_t n = std::min(blocks, kMaxBlocksPerCmd);
            ++*remaining;
            node.nvmeDriver().writeBlocks(
                lba, n, src + bus_off, trace, [remaining, fire] {
                    if (--*remaining == 0)
                        (*fire)();
                });
            lba += n;
            blocks -= n;
            bus_off += std::uint64_t(n) * nvme::lbaSize;
        }
    }
    if (extents.empty())
        (*fire)();
}

void
SwBasePath::gpuProcess(ndp::Function fn, Addr data_bus, std::uint64_t len,
                       bool in_gpu, bool copy_back,
                       std::span<const std::uint8_t> aux,
                       host::TracePtr trace,
                       std::function<void(std::vector<std::uint8_t>,
                                          std::uint64_t, std::uint64_t)>
                           done)
{
    auto &host = node.host();
    auto &gpu = node.gpu();
    const bool passthrough = ndp::isPassThrough(fn);
    const std::uint64_t gpu_in =
        in_gpu ? data_bus - gpu.memBase() : gpuSlot();
    const std::uint64_t gpu_out =
        passthrough ? gpu_in : gpu_in + gpuSlotBytes / 2;
    const std::uint64_t digest_off = gpu_in + gpuSlotBytes - 64;
    if (len > gpuSlotBytes / 2)
        fatal("sw-path: request larger than GPU staging slot");

    std::vector<std::uint8_t> aux_copy(aux.begin(), aux.end());

    auto launch = [this, &host, &gpu, fn, len, gpu_in, gpu_out, digest_off,
                   aux_copy = std::move(aux_copy), copy_back, passthrough,
                   data_bus, trace, done = std::move(done)]() mutable {
        const Tick t_launch = host.cpu().now();
        host.cpu().run(
            CpuCat::GpuControl, host.costs().gpuLaunchCpu,
            [this, &host, &gpu, fn, len, gpu_in, gpu_out, digest_off,
             aux_copy = std::move(aux_copy), copy_back, passthrough,
             data_bus, trace, t_launch, done = std::move(done)]() mutable {
                if (trace)
                    trace->add(LatComp::GpuControl,
                               host.cpu().now() - t_launch);
                const Tick t_kernel = host.cpu().now();
                gpu.launchKernel(
                    fn, gpu_in, len, gpu_out, digest_off, aux_copy,
                    [this, &host, &gpu, fn, gpu_in, gpu_out, digest_off,
                     copy_back, passthrough, data_bus, trace, t_kernel,
                     done = std::move(done)](std::uint64_t out_len) mutable {
                        if (trace)
                            trace->add(LatComp::Hash,
                                       host.cpu().now() - t_kernel);
                        const Tick t_sync = host.cpu().now();
                        host.cpu().run(
                            CpuCat::GpuControl, host.costs().gpuSyncCpu,
                            [this, &host, &gpu, fn, gpu_out, digest_off,
                             copy_back, passthrough, data_bus, trace,
                             t_sync, out_len,
                             done = std::move(done)]() mutable {
                                if (trace)
                                    trace->add(LatComp::GpuControl,
                                               host.cpu().now() - t_sync);
                                std::vector<std::uint8_t> digest(
                                    digestSizeOf(fn));
                                if (!digest.empty())
                                    gpu.mem().read(digest_off,
                                                   digest.data(),
                                                   digest.size());
                                if (!copy_back || passthrough) {
                                    done(std::move(digest), out_len,
                                         gpu_out);
                                    return;
                                }
                                // D2H staging copy of the output.
                                const Tick t_d2h = host.cpu().now();
                                host.cpu().run(
                                    CpuCat::GpuCopy,
                                    host.costs().gpuCopySetup,
                                    [this, &host, &gpu, gpu_out, data_bus,
                                     out_len, trace, t_d2h,
                                     digest = std::move(digest),
                                     done = std::move(done)]() mutable {
                                        host.fabric().memRead(
                                            host.bridge(),
                                            gpu.memBase() + gpu_out,
                                            out_len,
                                            [&host, data_bus, trace, t_d2h,
                                             digest = std::move(digest),
                                             out_len, gpu_out,
                                             done = std::move(done)](
                                                BufChain bytes) mutable {
                                                host.dram().adopt(
                                                    host.dramOffset(
                                                        data_bus),
                                                    bytes);
                                                if (trace)
                                                    trace->add(
                                                        LatComp::GpuCopy,
                                                        host.cpu().now() -
                                                            t_d2h);
                                                done(std::move(digest),
                                                     out_len, gpu_out);
                                            });
                                    });
                            });
                    });
            });
    };

    if (in_gpu) {
        launch();
        return;
    }

    // H2D staging copy first.
    const Tick t_h2d = host.cpu().now();
    host.cpu().run(CpuCat::GpuCopy, host.costs().gpuCopySetup,
                   [this, &host, &gpu, data_bus, len, gpu_in, trace, t_h2d,
                    launch = std::move(launch)]() mutable {
                       std::vector<std::uint8_t> bytes(len);
                       host.dram().read(host.dramOffset(data_bus),
                                        bytes.data(), len);
                       host.fabric().memWrite(
                           host.bridge(), gpu.memBase() + gpu_in,
                           std::move(bytes),
                           [&host, trace, t_h2d,
                            launch = std::move(launch)]() mutable {
                               if (trace)
                                   trace->add(LatComp::GpuCopy,
                                              host.cpu().now() - t_h2d);
                               launch();
                           });
                   });
}

void
SwBasePath::sendFile(int file_fd, int sock_fd, std::uint64_t offset,
                     std::uint64_t len, ndp::Function fn,
                     std::vector<std::uint8_t> aux, host::TracePtr trace,
                     PathCallback done)
{
    auto &host = node.host();
    host::Connection *conn = node.tcp().findByFd(sock_fd);
    if (!conn)
        fatal("sw-path: sendFile on unknown socket fd %d", sock_fd);

    const Tick t0 = host.cpu().now();
    host.cpu().run(CpuCat::User, host.costs().syscall, [this, &host,
                                                        file_fd, conn,
                                                        offset, len, fn,
                                                        aux =
                                                            std::move(aux),
                                                        trace, t0,
                                                        done = std::move(
                                                            done)]() mutable {
        host.cpu().run(
            CpuCat::FileSystem, host.costs().vfsLookup,
            [this, &host, file_fd, conn, offset, len, fn,
             aux = std::move(aux), trace, t0,
             done = std::move(done)]() mutable {
                if (trace)
                    trace->add(LatComp::FileSystem, host.cpu().now() - t0);

                const bool p2p = gpuP2p && fn != ndp::Function::None;
                if (p2p) {
                    // SSD -> GPU (P2P) -> NIC (P2P): no host staging.
                    const std::uint64_t gpu_off = gpuSlot();
                    const Addr gpu_bus = node.gpu().memBase() + gpu_off;
                    readFileToBus(
                        file_fd, offset, len, gpu_bus, trace,
                        [this, &host, conn, len, fn, gpu_bus,
                         aux = std::move(aux), trace,
                         done = std::move(done)]() mutable {
                            gpuProcess(
                                fn, gpu_bus, len, true, false, aux, trace,
                                [this, &host, conn, trace,
                                 done = std::move(done)](
                                    std::vector<std::uint8_t> digest,
                                    std::uint64_t out_len,
                                    std::uint64_t gpu_out) mutable {
                                    const Addr payload =
                                        node.gpu().memBase() + gpu_out;
                                    node.tcp().send(
                                        *conn, payload,
                                        static_cast<std::uint32_t>(
                                            out_len),
                                        kMss, trace,
                                        [digest = std::move(digest),
                                         done = std::move(done)]() mutable {
                                            done(PathResult{
                                                std::move(digest)});
                                        });
                                });
                        });
                    return;
                }

                // Through host DRAM.
                staging.acquire([this, &host, file_fd, conn, offset, len,
                                 fn, aux = std::move(aux), trace,
                                 done = std::move(done)](Addr slot) mutable {
                    if (len > staging.slotSize())
                        fatal("sw-path: request exceeds staging slot");
                    readFileToBus(
                        file_fd, offset, len, slot, trace,
                        [this, &host, conn, len, fn, slot,
                         aux = std::move(aux), trace,
                         done = std::move(done)]() mutable {
                            auto send_from_host =
                                [this, &host, conn, slot, trace,
                                 done = std::move(done)](
                                    std::uint64_t n,
                                    std::vector<std::uint8_t>
                                        digest) mutable {
                                    // Residual staging copy into the
                                    // transmit path.
                                    const Tick t_copy = host.cpu().now();
                                    host.cpu().run(
                                        CpuCat::DataCopy,
                                        host::copyTime(
                                            n, host.costs().copyGBps),
                                        [this, &host, conn, slot, n,
                                         trace, t_copy,
                                         digest = std::move(digest),
                                         done = std::move(done)]() mutable {
                                            if (trace)
                                                trace->add(
                                                    LatComp::DataCopy,
                                                    host.cpu().now() -
                                                        t_copy);
                                            node.tcp().send(
                                                *conn, slot,
                                                static_cast<std::uint32_t>(
                                                    n),
                                                kMss, trace,
                                                [this, slot,
                                                 digest = std::move(digest),
                                                 done = std::move(
                                                     done)]() mutable {
                                                    staging.release(slot);
                                                    done(PathResult{
                                                        std::move(digest)});
                                                });
                                        });
                                };

                            chargeVanilla(len, trace, [this, len, fn,
                                                       slot, aux, trace,
                                                       send_from_host =
                                                           std::move(
                                                               send_from_host)]() mutable {
                                if (fn == ndp::Function::None) {
                                    send_from_host(len, {});
                                    return;
                                }
                                gpuProcess(fn, slot, len, false,
                                           !ndp::isPassThrough(fn), aux,
                                           trace,
                                           [send_from_host = std::move(
                                                send_from_host)](
                                               std::vector<std::uint8_t>
                                                   digest,
                                               std::uint64_t out_len,
                                               std::uint64_t) mutable {
                                               send_from_host(
                                                   out_len,
                                                   std::move(digest));
                                           });
                            });
                        });
                });
            });
    });
}

void
SwBasePath::installRxHook(int sock_fd)
{
    if (rxHooked[sock_fd])
        return;
    rxHooked[sock_fd] = true;
    host::Connection *conn = node.tcp().findByFd(sock_fd);
    if (!conn)
        fatal("sw-path: receive on unknown socket fd %d", sock_fd);
    conn->onPayload = [this, sock_fd](std::uint32_t, BufChain bytes) {
        auto &q = rxQueues[sock_fd];
        if (q.empty()) {
            warn("sw-path: payload with no pending receive; dropping");
            return;
        }
        RxOp &op = q.front();
        auto &host = node.host();
        // Copy from the packet buffer into the staging buffer (the
        // software baseline really pays this copy).
        host.cpu().run(CpuCat::DataCopy,
                       host::copyTime(bytes.size(),
                                      host.costs().copyGBps));
        host.dram().adopt(host.dramOffset(op.staging) + op.cursor,
                          bytes);
        op.cursor += bytes.size();
        if (op.cursor >= op.remaining) {
            auto fire = std::move(op.done);
            const Addr slot = op.staging;
            q.pop_front();
            fire(slot);
        }
    };
}

void
SwBasePath::receiveToFile(int sock_fd, int file_fd, std::uint64_t offset,
                          std::uint64_t len, ndp::Function fn,
                          std::vector<std::uint8_t> aux,
                          host::TracePtr trace, PathCallback done)
{
    auto &host = node.host();
    installRxHook(sock_fd);

    host.cpu().run(CpuCat::User, host.costs().syscall, [this, &host,
                                                        sock_fd, file_fd,
                                                        offset, len, fn,
                                                        aux =
                                                            std::move(aux),
                                                        trace,
                                                        done = std::move(
                                                            done)]() mutable {
        staging.acquire([this, &host, sock_fd, file_fd, offset, len, fn,
                         aux = std::move(aux), trace,
                         done = std::move(done)](Addr slot) mutable {
            if (len > staging.slotSize())
                fatal("sw-path: request exceeds staging slot");
            RxOp op;
            op.remaining = len;
            op.staging = slot;
            op.trace = trace;
            op.done = [this, &host, file_fd, offset, len, fn,
                       aux = std::move(aux), trace,
                       done = std::move(done)](Addr slot_in) mutable {
                auto store = [this, &host, file_fd, offset, slot_in, trace,
                              done = std::move(done)](
                                 std::uint64_t n,
                                 std::vector<std::uint8_t>
                                     digest) mutable {
                    chargeVanilla(n, trace, [] {});
                    host.cpu().run(
                        CpuCat::FileSystem, host.costs().vfsLookup,
                        [this, &host, file_fd, offset, slot_in, n, trace,
                         digest = std::move(digest),
                         done = std::move(done)]() mutable {
                            writeBusToFile(
                                file_fd, offset, n, slot_in, trace,
                                [this, slot_in,
                                 digest = std::move(digest),
                                 done = std::move(done)]() mutable {
                                    staging.release(slot_in);
                                    done(PathResult{std::move(digest)});
                                });
                        });
                };
                if (fn == ndp::Function::None) {
                    store(len, {});
                    return;
                }
                // Receive side always stages through host memory: the
                // data-gathering problem prevents NIC->GPU P2P.
                gpuProcess(fn, slot_in, len, false,
                           !ndp::isPassThrough(fn), aux, trace,
                           [store = std::move(store)](
                               std::vector<std::uint8_t> digest,
                               std::uint64_t out_len,
                               std::uint64_t) mutable {
                               store(out_len, std::move(digest));
                           });
            };
            rxQueues[sock_fd].push_back(std::move(op));
        });
    });
}

} // namespace baselines
} // namespace dcs
