/**
 * @file
 * The two software-controlled baseline designs (paper §V-A).
 *
 * SwOptimizedPath ("Software optimization"): optimized kernel stack,
 * but all data transits host DRAM and any intermediate processing is
 * offloaded to the GPU with explicit staging copies.
 *
 * SwP2pPath ("Software-controlled P2P"): same software control path,
 * but the data path is peer-to-peer where the hardware allows it —
 * the SSD DMA-writes directly into GPU memory and the NIC reads the
 * payload from the GPU BAR (GPUDirect-style). Two hard limits from
 * the paper are modelled faithfully: (1) SSD->NIC without an
 * intermediate device cannot be P2P (neither device exposes its
 * internal memory), so it degenerates to the host path; (2) the
 * receive side suffers the data-gathering problem, so it also
 * degenerates to the host path.
 */

#ifndef DCS_BASELINES_SW_PATHS_HH
#define DCS_BASELINES_SW_PATHS_HH

#include <deque>
#include <unordered_map>

#include "baselines/datapath.hh"
#include "baselines/staging.hh"
#include "sys/node.hh"

namespace dcs {
namespace baselines {

/** Shared machinery of the two software designs. */
class SwBasePath : public DataPath
{
  public:
    /**
     * @param gpu_p2p true for SwP2pPath: eligible data moves
     *        device-to-device instead of through host DRAM.
     * @param vanilla model an unoptimized Linux stack: page-cache
     *        management and an extra user/kernel copy on each side
     *        (the "Linux" bar of paper Fig. 8).
     */
    SwBasePath(sys::Node &node, bool gpu_p2p, bool vanilla = false,
               int staging_slots = 32,
               std::uint64_t slot_bytes = 16ull << 20);

    void sendFile(int file_fd, int sock_fd, std::uint64_t offset,
                  std::uint64_t len, ndp::Function fn,
                  std::vector<std::uint8_t> aux, host::TracePtr trace,
                  PathCallback done) override;

    void receiveToFile(int sock_fd, int file_fd, std::uint64_t offset,
                       std::uint64_t len, ndp::Function fn,
                       std::vector<std::uint8_t> aux, host::TracePtr trace,
                       PathCallback done) override;

  protected:
    /** Read file bytes into bus address @p dst (host or GPU BAR). */
    void readFileToBus(int fd, std::uint64_t offset, std::uint64_t len,
                       Addr dst, host::TracePtr trace,
                       std::function<void()> done);

    /** Write bytes at bus address @p src into a file's extents. */
    void writeBusToFile(int fd, std::uint64_t offset, std::uint64_t len,
                        Addr src, host::TracePtr trace,
                        std::function<void()> done);

    /**
     * Offload @p fn over data at @p data_bus to the GPU.
     * @param in_gpu the data already sits in GPU memory.
     * @param copy_back return transformed payload to @p data_bus.
     * Calls @p done(digest, out_len, gpu_off_of_output).
     */
    void gpuProcess(ndp::Function fn, Addr data_bus, std::uint64_t len,
                    bool in_gpu, bool copy_back,
                    std::span<const std::uint8_t> aux,
                    host::TracePtr trace,
                    std::function<void(std::vector<std::uint8_t>,
                                       std::uint64_t, std::uint64_t)>
                        done);

    /** Next GPU arena slot (ring of fixed slots). */
    std::uint64_t gpuSlot();

    /** Charge the vanilla-kernel extras (page cache + user copy). */
    void chargeVanilla(std::uint64_t len, host::TracePtr trace,
                       std::function<void()> done);

    sys::Node &node;
    bool gpuP2p;
    bool vanilla;
    StagingPool staging;

    static constexpr std::uint64_t gpuSlotBytes = 32ull << 20;
    static constexpr int gpuSlots = 48;
    int gpuSlotCursor = 0;

  private:
    struct RxOp
    {
        std::uint64_t remaining = 0;
        Addr staging = 0;
        std::uint64_t cursor = 0;
        host::TracePtr trace;
        std::function<void(Addr)> done; //!< staging addr handed back
    };

    /** Per-socket in-order receive queues. */
    std::unordered_map<int, std::deque<RxOp>> rxQueues;
    void installRxHook(int sock_fd);
    std::unordered_map<int, bool> rxHooked;
};

/** "Software optimization" design. */
class SwOptimizedPath : public SwBasePath
{
  public:
    explicit SwOptimizedPath(sys::Node &node) : SwBasePath(node, false) {}
    std::string label() const override { return "sw-opt"; }
};

/** Unoptimized Linux stack (paper Fig. 8 "Linux" bar). */
class LinuxVanillaPath : public SwBasePath
{
  public:
    explicit LinuxVanillaPath(sys::Node &node)
        : SwBasePath(node, false, true)
    {
    }
    std::string label() const override { return "linux"; }
};

/** "Software-controlled P2P" design. */
class SwP2pPath : public SwBasePath
{
  public:
    explicit SwP2pPath(sys::Node &node) : SwBasePath(node, true) {}
    std::string label() const override { return "sw-p2p"; }
};

} // namespace baselines
} // namespace dcs

#endif // DCS_BASELINES_SW_PATHS_HH
