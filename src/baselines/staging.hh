/**
 * @file
 * Host-DRAM staging-buffer pool for the software datapaths.
 *
 * The baseline designs stage data in host memory (or GPU memory);
 * this pool hands out fixed-size DMA-able slots and queues requests
 * when all slots are busy — which is itself a realistic source of
 * backpressure at high load.
 */

#ifndef DCS_BASELINES_STAGING_HH
#define DCS_BASELINES_STAGING_HH

#include <deque>
#include <functional>
#include <vector>

#include "host/host.hh"

namespace dcs {
namespace baselines {

/** Fixed-slot staging pool carved from host DRAM. */
class StagingPool
{
  public:
    StagingPool(host::Host &host, int slots, std::uint64_t slot_bytes)
        : slotBytes(slot_bytes)
    {
        for (int i = 0; i < slots; ++i)
            freeSlots.push_back(host.allocDma(slot_bytes));
    }

    std::uint64_t slotSize() const { return slotBytes; }

    /** Acquire a slot (bus address); may defer under pressure. */
    void
    acquire(std::function<void(Addr)> fn)
    {
        if (!freeSlots.empty()) {
            const Addr a = freeSlots.back();
            freeSlots.pop_back();
            fn(a);
        } else {
            waiters.push_back(std::move(fn));
        }
    }

    /** Return a slot. */
    void
    release(Addr a)
    {
        if (!waiters.empty()) {
            auto fn = std::move(waiters.front());
            waiters.pop_front();
            fn(a);
        } else {
            freeSlots.push_back(a);
        }
    }

  private:
    std::uint64_t slotBytes;
    std::vector<Addr> freeSlots;
    std::deque<std::function<void(Addr)>> waiters;
};

} // namespace baselines
} // namespace dcs

#endif // DCS_BASELINES_STAGING_HH
