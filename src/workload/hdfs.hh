/**
 * @file
 * HDFS-balancer workload (paper §V-C2).
 *
 * The balancer redistributes skewed data: a sender reads blocks from
 * its SSD and ships them without an integrity check; the receiver
 * computes CRC32 over the arriving data and stores it to its SSD.
 * Both nodes' CPU utilization is measured at the same achieved
 * bandwidth.
 */

#ifndef DCS_WORKLOAD_HDFS_HH
#define DCS_WORKLOAD_HDFS_HH

#include <functional>
#include <vector>

#include "baselines/datapath.hh"
#include "sim/stats.hh"
#include "sys/node.hh"

namespace dcs {
namespace workload {

/** Balancer configuration. */
struct HdfsParams
{
    std::uint64_t blockBytes = 8ull << 20; //!< HDFS block size
    int blocks = 24;                       //!< blocks to move
    int streams = 6;                       //!< parallel mover threads
    std::uint64_t seed = 2;
    Tick moverTurnaround = microseconds(50); //!< protocol RTT
    /** Datanode/balancer application CPU per block. The bench sets
     *  these per design: the Java services keep per-block work even
     *  when the data plane is offloaded. */
    double senderAppUsPerBlock = 0.0;
    double receiverAppUsPerBlock = 0.0;
};

/** Results of one balancer run. */
struct HdfsStats
{
    std::uint64_t blocksMoved = 0;
    std::uint64_t bytesMoved = 0;
    double bandwidthGbps = 0.0;
    Tick elapsed = 0;
    double senderCpuUtil = 0.0;
    double receiverCpuUtil = 0.0;
    stats::Breakdown<host::CpuCat> senderBusy;
    stats::Breakdown<host::CpuCat> receiverBusy;
};

/** The driver: sender/receiver nodes with their own datapaths. */
class HdfsBalancer
{
  public:
    HdfsBalancer(EventQueue &eq, sys::Node &sender, sys::Node &receiver,
                 baselines::DataPath &sender_path,
                 baselines::DataPath &receiver_path, HdfsParams p = {});

    /** Move all blocks; @p done receives the stats. */
    void run(std::function<void(const HdfsStats &)> done);

  private:
    struct Stream
    {
        host::Connection *senderConn = nullptr;
        host::Connection *receiverConn = nullptr;
    };

    void moveNext(std::size_t stream_idx);
    void blockDone(std::uint64_t size);

    EventQueue &eq;
    sys::Node &sender;
    sys::Node &receiver;
    baselines::DataPath &senderPath;
    baselines::DataPath &receiverPath;
    HdfsParams params;

    std::vector<Stream> streams;
    std::vector<int> blockFds; //!< source blocks on the sender
    int nextBlock = 0;
    int storeSeq = 0;
    int streamsActive = 0;
    Tick startTick = 0;

    HdfsStats stats;
    std::function<void(const HdfsStats &)> onDone;
};

} // namespace workload
} // namespace dcs

#endif // DCS_WORKLOAD_HDFS_HH
