#include "workload/hdfs.hh"

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace dcs {
namespace workload {

HdfsBalancer::HdfsBalancer(EventQueue &eq, sys::Node &sender,
                           sys::Node &receiver,
                           baselines::DataPath &sender_path,
                           baselines::DataPath &receiver_path,
                           HdfsParams p)
    : eq(eq), sender(sender), receiver(receiver), senderPath(sender_path),
      receiverPath(receiver_path), params(p)
{
    streams.resize(static_cast<std::size_t>(params.streams));
    for (int i = 0; i < params.streams; ++i) {
        host::ConnPairParams cp;
        cp.portA = static_cast<std::uint16_t>(50010 + i);
        cp.portB = static_cast<std::uint16_t>(51000 + i);
        auto [cs, cr] =
            host::establishPair(sender.tcp(), receiver.tcp(), cp);
        streams[static_cast<std::size_t>(i)].senderConn = cs;
        streams[static_cast<std::size_t>(i)].receiverConn = cr;
    }

    // Source blocks on the sender's SSD (the "skewed" node).
    Rng fill(params.seed);
    std::vector<std::uint8_t> content(params.blockBytes);
    for (int i = 0; i < params.blocks; ++i) {
        fill.fill(content.data(), content.size());
        blockFds.push_back(sender.fs().create(
            "blk_" + std::to_string(i), content));
    }
}

void
HdfsBalancer::run(std::function<void(const HdfsStats &)> done)
{
    onDone = std::move(done);
    startTick = eq.now();
    sender.host().cpu().beginWindow();
    receiver.host().cpu().beginWindow();
    streamsActive = params.streams;
    for (std::size_t i = 0; i < streams.size(); ++i)
        moveNext(i);
}

void
HdfsBalancer::moveNext(std::size_t stream_idx)
{
    if (nextBlock >= params.blocks) {
        if (--streamsActive == 0) {
            stats.elapsed = eq.now() - startTick;
            stats.bandwidthGbps = static_cast<double>(stats.bytesMoved) *
                                  8.0 / toSeconds(stats.elapsed) / 1e9;
            stats.senderCpuUtil = sender.host().cpu().utilization();
            stats.receiverCpuUtil = receiver.host().cpu().utilization();
            stats.senderBusy = sender.host().cpu().busy();
            stats.receiverBusy = receiver.host().cpu().busy();
            if (onDone) {
                auto cb = std::move(onDone);
                onDone = nullptr;
                cb(stats);
            }
        }
        return;
    }
    const int block = nextBlock++;
    Stream &st = streams[stream_idx];

    // Receiver arms its store first (CRC32 on arrival), then the
    // sender ships the block after the mover-protocol turnaround.
    const int dst_fd = receiver.fs().createEmpty(
        "stored_" + std::to_string(storeSeq++), params.blockBytes);
    receiver.host().cpu().run(
        host::CpuCat::User,
        microseconds(params.receiverAppUsPerBlock));
    receiverPath.receiveToFile(
        st.receiverConn->fd, dst_fd, 0, params.blockBytes,
        ndp::Function::Crc32, {}, nullptr,
        [this, stream_idx](const baselines::PathResult &) {
            blockDone(params.blockBytes);
            moveNext(stream_idx);
        });

    // Captures the stream index, not a reference into `streams`: the
    // callback re-derives the element when it fires, so it cannot
    // dangle if the vector ever reallocates.
    eq.schedule(params.moverTurnaround, [this, stream_idx, block] {
        Stream &stream = streams[stream_idx];
        sender.host().cpu().run(
            host::CpuCat::User,
            microseconds(params.senderAppUsPerBlock));
        senderPath.sendFile(blockFds[static_cast<std::size_t>(block)],
                            stream.senderConn->fd, 0, params.blockBytes,
                            ndp::Function::None, {}, nullptr,
                            [](const baselines::PathResult &) {});
    });
}

void
HdfsBalancer::blockDone(std::uint64_t size)
{
    ++stats.blocksMoved;
    stats.bytesMoved += size;
}

} // namespace workload
} // namespace dcs
