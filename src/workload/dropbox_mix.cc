#include "workload/dropbox_mix.hh"

namespace dcs {
namespace workload {

std::uint64_t
sampleSize(Rng &rng, const MixParams &p)
{
    std::vector<double> weights;
    weights.reserve(p.sizeBuckets.size());
    for (const auto &[size, w] : p.sizeBuckets)
        weights.push_back(w);
    return p.sizeBuckets[rng.discrete(weights)].first;
}

bool
sampleIsGet(Rng &rng, const MixParams &p)
{
    return rng.uniform() < p.getFraction;
}

double
meanSize(const MixParams &p)
{
    double total_w = 0.0, sum = 0.0;
    for (const auto &[size, w] : p.sizeBuckets) {
        total_w += w;
        sum += static_cast<double>(size) * w;
    }
    return total_w > 0 ? sum / total_w : 0.0;
}

} // namespace workload
} // namespace dcs
