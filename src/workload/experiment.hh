/**
 * @file
 * Experiment harness shared by the bench binaries: assembles the
 * paper's two-node testbed under a chosen design, runs microbenchmark
 * transfers with latency attribution, and formats result tables.
 */

#ifndef DCS_WORKLOAD_EXPERIMENT_HH
#define DCS_WORKLOAD_EXPERIMENT_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/dcs_path.hh"
#include "baselines/sw_paths.hh"
#include "sys/node.hh"

namespace dcs {
namespace workload {

/** The compared designs (paper Table I / §V-A). */
enum class Design
{
    SwOptimized, //!< optimized software, data through host DRAM
    SwP2p,       //!< software control, peer-to-peer data
    DcsCtrl,     //!< hardware device control (the paper)
};

const char *designName(Design d);

/** Construct the matching DataPath for @p node. */
std::unique_ptr<baselines::DataPath> makePath(Design d, sys::Node &node);

/** A ready two-node testbed under one design. */
class Testbed
{
  public:
    /**
     * @param receiver_dcs bring node B up in DCS mode too (needed
     *        when the receiver-side datapath is DCS-ctrl).
     */
    Testbed(Design design, bool receiver_dcs = false,
            sys::NodeParams params_a = {}, sys::NodeParams params_b = {});

    EventQueue &eq() { return _eq; }
    sys::Node &nodeA() { return sys->nodeA(); }
    sys::Node &nodeB() { return sys->nodeB(); }
    baselines::DataPath &pathA() { return *_pathA; }
    baselines::DataPath &pathB() { return *_pathB; }
    Design design() const { return _design; }

    /** Establish a connection pair on distinct ports. */
    std::pair<host::Connection *, host::Connection *>
    connect(std::uint16_t port_index = 0);

  private:
    Design _design;
    EventQueue _eq;
    std::unique_ptr<sys::TwoNodeSystem> sys;
    std::unique_ptr<baselines::DataPath> _pathA;
    std::unique_ptr<baselines::DataPath> _pathB;
    int connIndex = 0;
};

/** Averaged latency breakdown over repeated single transfers. */
struct LatencyResult
{
    Design design{};
    double totalUs = 0.0;
    stats::Breakdown<host::LatComp> componentsUs;
    /** Sum of the software-attributable components. */
    double softwareUs = 0.0;
    /** Engine/device time not attributable to software. */
    double deviceUs = 0.0;
    /** Measured boundary crossings per operation (Fig. 2's story):
     *  host MMIO writes (SW->HW) and MSIs (HW->SW). */
    double hostMmioPerOp = 0.0;
    double msiPerOp = 0.0;
};

/**
 * Fig. 11 microbenchmark: repeated sendFile of @p size bytes with
 * @p fn applied, cold pipeline each iteration (latency, not
 * throughput). @p inspect, if given, runs against the testbed after
 * the measurement loop — e.g. to snapshot its stats registry before
 * the testbed is torn down. @p setup, if given, runs right after
 * construction, before any measurement — e.g. to configure the
 * testbed's span tracer. When tracing is enabled each measured
 * iteration gets a fresh flow id, and the harness records a
 * "request" span whose duration is exactly the iteration latency
 * that feeds the headline mean (tools/trace_analyze.py cross-checks
 * the two).
 */
LatencyResult measureSendLatency(
    Design d, ndp::Function fn, std::uint64_t size, int iterations = 8,
    const std::function<void(Testbed &)> &inspect = {},
    const std::function<void(Testbed &)> &setup = {});

/** Print a stacked-bar style table of latency results. */
void printLatencyTable(const std::string &title,
                       const std::vector<LatencyResult> &rows);

/** Print a CPU-utilization breakdown table (Fig. 3b/8/12 style). */
struct CpuRow
{
    std::string label;
    stats::Breakdown<host::CpuCat> busy;
    double window = 1.0; //!< core-ticks denominator
};
void printCpuTable(const std::string &title,
                   const std::vector<CpuRow> &rows);

} // namespace workload
} // namespace dcs

#endif // DCS_WORKLOAD_EXPERIMENT_HH
