/**
 * @file
 * Open-loop load generator: drive a node to its knee.
 *
 * Models a large population of independent clients (10^5+ scales
 * fine: each client is one pending event plus ~100 bytes of state)
 * issuing GET requests against a storage server through a bounded
 * keep-alive connection pool. Arrivals are open-loop — a slow server
 * does not slow the clients down — so offered load beyond the
 * saturation point shows up as queueing, drops, and rejects rather
 * than as a silently throttled request rate (the closed-loop
 * failure mode of SwiftWorkload-style drivers).
 *
 * Each client owns a deterministic PRNG stream and an arrival
 * process (Poisson or bursty on/off), making runs reproducible and
 * independent of event-queue sharding. Overload is surfaced three
 * ways, all accounted separately:
 *   - droppedClient: the pool backlog was full, the request never
 *     reached the server (client-side drop);
 *   - rejectedServer: the server returned 429 (engine admission
 *     control or a full driver queue);
 *   - latency: per-request p50/p99/p999 over the measurement window.
 */

#ifndef DCS_WORKLOAD_LOADGEN_HH
#define DCS_WORKLOAD_LOADGEN_HH

#include <deque>
#include <functional>
#include <vector>

#include "baselines/datapath.hh"
#include "sim/stats.hh"
#include "sim/timeline.hh"
#include "sys/node.hh"
#include "workload/arrivals.hh"

namespace dcs {
namespace workload {

/** Load-generator configuration. */
struct LoadGenParams
{
    /** Simulated client population; each has its own PRNG stream. */
    std::uint64_t clients = 1000;
    /** Aggregate offered request rate (spread across clients). */
    double offeredRps = 50'000.0;
    /** Bursty (on/off) arrivals instead of Poisson. The mean rate is
     *  kept at offeredRps; bursts concentrate it into ON phases. */
    bool bursty = false;
    Tick onMean = microseconds(200);
    Tick offMean = microseconds(800);
    /** GET object size (fixed so offered Gbps is exact). */
    std::uint64_t requestBytes = 64 * 1024;
    /** Keep-alive connection pool between client and server node. */
    int connections = 32;
    /** Connection churn: retire a pooled connection after this many
     *  requests and pay reconnectDelay before reuse (0 = no churn). */
    std::uint32_t requestsPerConn = 0;
    Tick reconnectDelay = microseconds(30);
    /** Requests queued waiting for a pooled connection beyond this
     *  are dropped at the client (open-loop backpressure). */
    std::size_t maxBacklog = 4096;
    /** After a server 429, rest the pool slot this long before it
     *  serves again (Retry-After semantics; 0 = immediate reuse,
     *  which can spin the reject path at full speed). */
    Tick rejectBackoff = 0;
    /** Latency SLO; completions slower than this are counted as
     *  violations (0 = no SLO accounting). */
    Tick slo = 0;
    Tick warmup = milliseconds(5);
    Tick measure = milliseconds(50);
    std::uint64_t seed = 1;
    int preloadObjects = 16;
};

/** Results of one load-generator run (measurement window only). */
struct LoadGenStats
{
    std::uint64_t offered = 0;        //!< client arrivals
    std::uint64_t completed = 0;      //!< good completions
    std::uint64_t rejectedServer = 0; //!< server 429s
    std::uint64_t droppedClient = 0;  //!< backlog-full client drops
    std::uint64_t sloViolations = 0;
    std::uint64_t churns = 0;         //!< pool connections recycled
    std::uint64_t bytesMoved = 0;     //!< completed request payload
    double goodputRps = 0.0;          //!< completed / window
    double goodputGbps = 0.0;
    double offeredRps = 0.0;          //!< measured, not configured
    /** @name Overload fractions of the offered arrivals (0 when no
     *  arrivals landed in the window). @{ */
    double clientDropRate = 0.0; //!< droppedClient / offered
    double rejectRate = 0.0;     //!< rejectedServer / offered
    double sloViolationRate = 0.0;
    /** @} */
    Tick window = 0;
    stats::SampledDistribution latencyUs;
};

/** The generator: a client population against one server datapath. */
class LoadGen
{
  public:
    LoadGen(EventQueue &eq, sys::Node &server, sys::Node &client,
            baselines::DataPath &server_path, LoadGenParams p = {});

    /** Kick off; @p done receives the stats once traffic drains. */
    void run(std::function<void(const LoadGenStats &)> done);

    /**
     * Register this generator's live gauges as timeline columns
     * (sim/timeline.hh): cumulative arrivals/completions/drops/429s,
     * instantaneous backlog and in-flight depth, and a rolling-window
     * p99 over the most recent completions. Call before arm().
     */
    void exportTimeline(stats::Timeline &tl) const;

    /** p99 latency (us) over the last rollWindow completions. */
    double rollingP99() const;

  private:
    /** Completions the rolling p99 gauge looks back over. */
    static constexpr std::size_t rollWindow = 512;
    struct Client
    {
        Rng rng;
        ArrivalProcess proc;
        Client(std::uint64_t seed, ArrivalProcess p)
            : rng(seed), proc(p) {}
    };

    struct Session
    {
        host::Connection *serverConn = nullptr;
        host::Connection *clientConn = nullptr;
        bool busy = false;
        std::uint32_t served = 0; //!< requests since (re)connect
    };

    /** One queued arrival: issue tick plus span-tracer identity. */
    struct Queued
    {
        Tick issued = 0;
        std::uint64_t flow = 0;
    };

    void scheduleClient(std::size_t idx);
    void arrive();
    void startRequest(std::size_t session_idx, Queued q);
    void finishRequest(std::size_t session_idx, Queued q,
                       std::uint32_t status);
    void releaseSession(std::size_t session_idx);
    void maybeFinish();
    bool inWindow() const;

    EventQueue &eq;
    sys::Node &server;
    sys::Node &client;
    baselines::DataPath &path;
    LoadGenParams params;

    std::vector<Client> population;
    std::vector<Session> sessions;
    std::deque<std::size_t> freeSessions;
    std::deque<Queued> backlog; //!< arrivals awaiting a session
    std::vector<int> objectFds;
    std::vector<double> rollBuf; //!< rolling-p99 latency ring (us)
    std::size_t rollHead = 0;

    Tick measureStart = 0;
    Tick measureEnd = 0;
    std::uint64_t clientsDone = 0;
    std::uint64_t nextObj = 0; //!< round-robin object pick
    int inFlight = 0;

    LoadGenStats stats;
    std::function<void(const LoadGenStats &)> onDone;
};

} // namespace workload
} // namespace dcs

#endif // DCS_WORKLOAD_LOADGEN_HH
