#include "workload/experiment.hh"

#include <cstdio>

#include "hdc/timing.hh"
#include "ndp/hash.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace dcs {
namespace workload {

const char *
designName(Design d)
{
    switch (d) {
      case Design::SwOptimized:
        return "sw-opt";
      case Design::SwP2p:
        return "sw-p2p";
      case Design::DcsCtrl:
        return "dcs-ctrl";
    }
    panic("bad design");
}

std::unique_ptr<baselines::DataPath>
makePath(Design d, sys::Node &node)
{
    switch (d) {
      case Design::SwOptimized:
        return std::make_unique<baselines::SwOptimizedPath>(node);
      case Design::SwP2p:
        return std::make_unique<baselines::SwP2pPath>(node);
      case Design::DcsCtrl:
        return std::make_unique<baselines::DcsCtrlPath>(node);
    }
    panic("bad design");
}

Testbed::Testbed(Design design, bool receiver_dcs, sys::NodeParams pa,
                 sys::NodeParams pb)
    : _design(design)
{
    sys = std::make_unique<sys::TwoNodeSystem>(_eq, pa, pb);
    bool a_up = false, b_up = false;
    if (design == Design::DcsCtrl)
        sys->nodeA().bringUpDcs([&] { a_up = true; });
    else
        sys->nodeA().bringUpHostStack([&] { a_up = true; });
    if (receiver_dcs && design == Design::DcsCtrl)
        sys->nodeB().bringUpDcs([&] { b_up = true; });
    else
        sys->nodeB().bringUpHostStack([&] { b_up = true; });
    _eq.run();
    if (!a_up || !b_up)
        fatal("testbed bring-up failed");
    _pathA = makePath(design, sys->nodeA());
    _pathB = makePath(design, sys->nodeB());
}

std::pair<host::Connection *, host::Connection *>
Testbed::connect(std::uint16_t port_index)
{
    host::ConnPairParams cp;
    cp.portA = static_cast<std::uint16_t>(9000 + port_index);
    cp.portB = static_cast<std::uint16_t>(40000 + port_index);
    return host::establishPair(nodeA().tcp(), nodeB().tcp(), cp);
}

namespace {

/** Components executed by host software. */
bool
isSoftwareComponent(host::LatComp c)
{
    switch (c) {
      case host::LatComp::FileSystem:
      case host::LatComp::DeviceControl:
      case host::LatComp::NetworkStack:
      case host::LatComp::RequestCompletion:
      case host::LatComp::GpuControl:
      case host::LatComp::GpuCopy:
      case host::LatComp::DataCopy:
        return true;
      default:
        return false;
    }
}

} // namespace

LatencyResult
measureSendLatency(Design d, ndp::Function fn, std::uint64_t size,
                   int iterations,
                   const std::function<void(Testbed &)> &inspect,
                   const std::function<void(Testbed &)> &setup)
{
    constexpr std::uint64_t tb_chunk = 64 * 1024;
    Testbed tb(d);
    if (setup)
        setup(tb);
    auto [ca, cb] = tb.connect();
    cb->onPayload = [](std::uint32_t, BufChain) {};

    Rng rng(99);
    std::vector<int> fds;
    for (int i = 0; i < iterations; ++i) {
        std::vector<std::uint8_t> content(size);
        rng.fill(content.data(), size);
        fds.push_back(
            tb.nodeA().fs().create("iter" + std::to_string(i), content));
    }

    LatencyResult out;
    out.design = d;
    std::vector<std::uint8_t> aux;
    if (fn == ndp::Function::Aes256)
        aux.assign(40, 0x5c);

    double total_us = 0.0;
    auto agg = host::makeTrace();
    const std::uint64_t mmio_before =
        tb.nodeA().fabric().hostMmioWrites();
    const std::uint64_t msi_before =
        tb.nodeA().host().bridge().msisDelivered();
    for (int i = 0; i < iterations; ++i) {
        auto trace = host::makeTrace();
        // Give each measured request a flow identity up front, so
        // every span along its path chains to the harness span below.
        trace::Tracer &tr = tb.eq().tracer();
        if (tr.enabled())
            trace->flow = tr.nextFlowId();
        const Tick start = tb.eq().now();
        Tick end = 0;
        tb.pathA().sendFile(fds[static_cast<std::size_t>(i)], ca->fd, 0,
                            size, fn, aux, trace,
                            [&](const baselines::PathResult &) {
                                end = tb.eq().now();
                            });
        tb.eq().run();
        if (end == 0)
            fatal("latency iteration did not complete");
        TRACE_SPAN(tr, start, end - start, "harness", "request",
                   trace->flow);
        total_us += toMicroseconds(end - start);
        agg->merge(*trace);
    }

    out.totalUs = total_us / iterations;
    out.hostMmioPerOp =
        double(tb.nodeA().fabric().hostMmioWrites() - mmio_before) /
        iterations;
    out.msiPerOp =
        double(tb.nodeA().host().bridge().msisDelivered() - msi_before) /
        iterations;
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(host::LatComp::NumCategories); ++i) {
        const auto c = static_cast<host::LatComp>(i);
        const double us = agg->get(c) / 1e6 / iterations;
        out.componentsUs.add(c, us);
        if (isSoftwareComponent(c))
            out.softwareUs += us;
    }
    out.deviceUs = out.totalUs - out.softwareUs;

    if (d == Design::DcsCtrl) {
        // Attribute the engine's command-handling cycles (parse,
        // per-entry issue/complete, interrupt generation) to the
        // scoreboard component, as Fig. 11 does. For one chunk the
        // pipeline has a read, an optional NDP step and a send.
        const hdc::HdcTiming t{};
        const std::uint64_t chunks =
            (size + tb_chunk - 1) / tb_chunk;
        const std::uint64_t n_entries =
            chunks * (fn == ndp::Function::None ? 2 : 3);
        const double sb_us = toMicroseconds(t.cycles(
            t.cmdParseCycles +
            n_entries * (t.scoreboardIssueCycles +
                         t.scoreboardCompleteCycles) +
            t.irqGenCycles));
        const double read_us = out.componentsUs.get(host::LatComp::Read);
        const double moved = std::min(sb_us, read_us);
        out.componentsUs.add(host::LatComp::Scoreboard, moved);
        out.componentsUs.add(host::LatComp::Read, -moved);
    }
    if (inspect)
        inspect(tb);
    return out;
}

void
printLatencyTable(const std::string &title,
                  const std::vector<LatencyResult> &rows)
{
    std::printf("\n%s\n", title.c_str());
    std::printf("%-10s %10s %10s %10s |", "design", "total_us",
                "sw_us", "device_us");
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(host::LatComp::NumCategories); ++i)
        std::printf(" %9s", host::latCompName(static_cast<host::LatComp>(i)));
    std::printf("\n");
    for (const auto &r : rows) {
        std::printf("%-10s %10.1f %10.1f %10.1f |", designName(r.design),
                    r.totalUs, r.softwareUs, r.deviceUs);
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(host::LatComp::NumCategories);
             ++i)
            std::printf(" %9.1f",
                        r.componentsUs.get(static_cast<host::LatComp>(i)));
        std::printf("\n");
    }
}

void
printCpuTable(const std::string &title, const std::vector<CpuRow> &rows)
{
    std::printf("\n%s\n", title.c_str());
    std::printf("%-16s %8s |", "config", "total%");
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(host::CpuCat::NumCategories); ++i)
        std::printf(" %9s", host::cpuCatName(static_cast<host::CpuCat>(i)));
    std::printf("\n");
    for (const auto &r : rows) {
        std::printf("%-16s %8.2f |", r.label.c_str(),
                    100.0 * r.busy.total() / r.window);
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(host::CpuCat::NumCategories);
             ++i)
            std::printf(
                " %9.3f",
                100.0 * r.busy.get(static_cast<host::CpuCat>(i)) /
                    r.window);
        std::printf("\n");
    }
}

} // namespace workload
} // namespace dcs
