/**
 * @file
 * Request mix modelled on the Dropbox measurement study the paper
 * cites for realistic user behaviour (Drago et al., IMC 2012 [42]):
 * a heavy-tailed file-size distribution and a PUT/GET split, with
 * Poisson request arrivals.
 */

#ifndef DCS_WORKLOAD_DROPBOX_MIX_HH
#define DCS_WORKLOAD_DROPBOX_MIX_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"

namespace dcs {
namespace workload {

/** Parameters of the request generator. */
struct MixParams
{
    /**
     * Heavy-tailed size buckets (bytes, weight). The IMC'12 study
     * reports most stored files under 100 KiB with a long tail of
     * multi-megabyte objects dominating bytes transferred.
     */
    std::vector<std::pair<std::uint64_t, double>> sizeBuckets = {
        {4 * 1024, 0.18},    {16 * 1024, 0.17},  {64 * 1024, 0.20},
        {256 * 1024, 0.18},  {1024 * 1024, 0.14}, {4096 * 1024, 0.09},
        {8192 * 1024, 0.04},
    };

    /** Fraction of requests that are GETs (rest are PUTs). */
    double getFraction = 0.6;
};

/** Sample one request size (bucket value, no intra-bucket jitter —
 *  keeps flash image pre-population simple and deterministic). */
std::uint64_t sampleSize(Rng &rng, const MixParams &p);

/** Sample request type. @return true for GET. */
bool sampleIsGet(Rng &rng, const MixParams &p);

/** Mean request size in bytes (for arrival-rate calibration). */
double meanSize(const MixParams &p);

} // namespace workload
} // namespace dcs

#endif // DCS_WORKLOAD_DROPBOX_MIX_HH
