#include "workload/swift.hh"

#include "sim/logging.hh"

namespace dcs {
namespace workload {

SwiftWorkload::SwiftWorkload(EventQueue &eq, sys::Node &server,
                             sys::Node &client,
                             baselines::DataPath &server_path,
                             SwiftParams p)
    : eq(eq), server(server), client(client), path(server_path), params(p),
      rng(p.seed),
      arrivals(arrivalRatePerSec(p.offeredGbps, meanSize(p.mix)))
{
    // Connection pool: one server/client pair per session, with
    // distinct ports so flows stay separable on the wire.
    sessions.resize(static_cast<std::size_t>(params.connections));
    for (int i = 0; i < params.connections; ++i) {
        host::ConnPairParams cp;
        cp.portA = static_cast<std::uint16_t>(9000 + i);
        cp.portB = static_cast<std::uint16_t>(40000 + i);
        cp.seqA = 1000;
        cp.seqB = 7000;
        auto [cs, cc] =
            host::establishPair(server.tcp(), client.tcp(), cp);
        sessions[static_cast<std::size_t>(i)].serverConn = cs;
        sessions[static_cast<std::size_t>(i)].clientConn = cc;
        // Client side discards GET payloads (it "downloads" them).
        cc->onPayload = [](std::uint32_t, BufChain) {};
    }

    // Pre-populate the object store.
    Rng fill(params.seed + 17);
    for (int i = 0; i < params.preloadObjects; ++i) {
        const std::uint64_t size = sampleSize(rng, params.mix);
        std::vector<std::uint8_t> content(size);
        fill.fill(content.data(), content.size());
        objectFds.push_back(
            server.fs().create("obj" + std::to_string(i), content));
        objectSizes.push_back(size);
    }

    // Client-side scratch data for PUT uploads.
    const std::uint64_t max_size =
        params.mix.sizeBuckets.back().first;
    clientScratch = client.host().allocDma(max_size);
}

void
SwiftWorkload::run(std::function<void(const SwiftStats &)> done)
{
    onDone = std::move(done);
    startTick = eq.now();
    measureStart = startTick + params.warmup;
    measureEnd = measureStart + params.measure;

    eq.scheduleAt(measureStart, [this] {
        server.host().cpu().beginWindow();
        windowOpen = true;
    });
    // Snapshot CPU accounting exactly at the window edge so the drain
    // tail does not dilute utilization.
    eq.scheduleAt(measureEnd, [this] {
        stats.window = params.measure;
        stats.cpuUtilization = server.host().cpu().utilization();
        stats.cpuBusy = server.host().cpu().busy();
        windowOpen = false;
    });

    scheduleNextArrival();
}

void
SwiftWorkload::scheduleNextArrival()
{
    const Tick when = eq.now() + arrivals.nextGap(rng);
    if (when >= measureEnd) {
        arrivalsDone = true;
        maybeFinish();
        return;
    }
    eq.scheduleAt(when, [this] {
        const bool is_get = sampleIsGet(rng, params.mix);
        const std::uint64_t size =
            is_get ? objectSizes[rng.uniformInt(0, objectSizes.size() - 1)]
                   : sampleSize(rng, params.mix);
        dispatch(is_get, size);
        scheduleNextArrival();
    });
}

void
SwiftWorkload::dispatch(bool is_get, std::uint64_t size)
{
    for (auto &s : sessions) {
        if (!s.busy) {
            s.busy = true;
            ++inFlight;
            const Tick issued = eq.now();
            if (is_get)
                startGet(s, size, issued);
            else
                startPut(s, size, issued);
            return;
        }
    }
    backlog.emplace_back(is_get, size);
}

Tick
SwiftWorkload::appWork(std::uint64_t size) const
{
    return microseconds(params.appFixedUs +
                        params.appPerMbUs * static_cast<double>(size) /
                            (1 << 20));
}

void
SwiftWorkload::startGet(Session &s, std::uint64_t size, Tick issued)
{
    // Pick an object of this size class (first match; contents are
    // equivalent for the datapath).
    int fd = objectFds.front();
    for (std::size_t i = 0; i < objectSizes.size(); ++i) {
        if (objectSizes[i] == size) {
            fd = objectFds[i];
            break;
        }
    }
    // Application-level request handling on the server.
    server.host().cpu().run(
        host::CpuCat::User, appWork(size),
        [this, &s, fd, size, issued] {
            path.sendFile(fd, s.serverConn->fd, 0, size,
                          ndp::Function::Md5, {}, nullptr,
                          [this, &s, size, issued](
                              const baselines::PathResult &) {
                              finishRequest(s, true, size, issued);
                          });
        });
}

void
SwiftWorkload::startPut(Session &s, std::uint64_t size, Tick issued)
{
    const int fd = server.fs().createEmpty(
        "put" + std::to_string(putSeq++), size);
    server.host().cpu().run(
        host::CpuCat::User, appWork(size),
        [this, &s, fd, size, issued] {
            path.receiveToFile(s.serverConn->fd, fd, 0, size,
                               ndp::Function::Md5, {}, nullptr,
                               [this, &s, size, issued](
                                   const baselines::PathResult &) {
                                   finishRequest(s, false, size, issued);
                               });
            // After the REST turnaround, the client uploads the body
            // through its own kernel stack. The deferred callback
            // captures the session index, not the reference: it
            // re-derives the element at fire time, so it cannot
            // dangle if `sessions` ever reallocates.
            const auto session_idx =
                static_cast<std::size_t>(&s - sessions.data());
            eq.schedule(params.clientTurnaround,
                        [this, session_idx, size] {
                Session &sess = sessions[session_idx];
                client.tcp().send(*sess.clientConn, clientScratch,
                                  static_cast<std::uint32_t>(size), 8192,
                                  nullptr, {});
            });
        });
}

void
SwiftWorkload::finishRequest(Session &s, bool is_get, std::uint64_t size,
                             Tick issued)
{
    if (eq.now() >= measureStart && eq.now() <= measureEnd) {
        stats.bytesMoved += size;
        if (is_get)
            ++stats.getsDone;
        else
            ++stats.putsDone;
        stats.latencyUs.sample(toMicroseconds(eq.now() - issued));
    }
    s.busy = false;
    --inFlight;
    if (!backlog.empty()) {
        auto [g, sz] = backlog.front();
        backlog.pop_front();
        dispatch(g, sz);
    }
    maybeFinish();
}

void
SwiftWorkload::maybeFinish()
{
    if (!arrivalsDone || inFlight > 0 || !backlog.empty())
        return;
    if (eq.now() < measureEnd) {
        // Traffic drained early; wait for the window snapshot.
        eq.scheduleAt(measureEnd, [this] { maybeFinish(); });
        return;
    }
    if (stats.window == 0)
        stats.window = params.measure;
    stats.throughputGbps = static_cast<double>(stats.bytesMoved) * 8.0 /
                           toSeconds(stats.window) / 1e9;
    if (onDone) {
        auto cb = std::move(onDone);
        onDone = nullptr;
        cb(stats);
    }
}

} // namespace workload
} // namespace dcs
