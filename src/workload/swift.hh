/**
 * @file
 * OpenStack-Swift-like object-store workload (paper §V-C1).
 *
 * A storage server holds objects on its SSD; clients issue GET and
 * PUT requests over pre-established connections. Every transfer
 * carries the MD5 integrity check Swift computes for object etags
 * (paper Table II). Request sizes and the PUT/GET split follow the
 * Dropbox-derived mix; arrivals are a Poisson process whose rate is
 * set from a target offered load (paper: "carefully scale the
 * arrival rate until it saturates the bandwidth of target servers").
 */

#ifndef DCS_WORKLOAD_SWIFT_HH
#define DCS_WORKLOAD_SWIFT_HH

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "baselines/datapath.hh"
#include "sim/stats.hh"
#include "sys/node.hh"
#include "workload/arrivals.hh"
#include "workload/dropbox_mix.hh"

namespace dcs {
namespace workload {

/** Swift experiment configuration. */
struct SwiftParams
{
    MixParams mix{};
    int connections = 16;      //!< concurrent client sessions
    int preloadObjects = 48;   //!< objects created before the run
    double offeredGbps = 6.0;  //!< target offered load
    Tick warmup = milliseconds(10);
    Tick measure = milliseconds(150);
    std::uint64_t seed = 1;
    Tick clientTurnaround = microseconds(50); //!< REST handshake RTT
    /** Application-level (proxy + object server) CPU per request. */
    double appFixedUs = 200.0;
    /** Application-level CPU per MiB of object payload. The bench
     *  sets this per design: the Python services keep some per-byte
     *  work even when the data plane is offloaded. */
    double appPerMbUs = 0.0;
};

/** Results of one Swift run. */
struct SwiftStats
{
    std::uint64_t getsDone = 0;
    std::uint64_t putsDone = 0;
    std::uint64_t bytesMoved = 0; //!< completed inside the window
    double throughputGbps = 0.0;
    double cpuUtilization = 0.0; //!< server cores, measurement window
    stats::Breakdown<host::CpuCat> cpuBusy; //!< busy ticks by category
    Tick window = 0;
    stats::SampledDistribution latencyUs;
};

/**
 * The workload driver: binds a server node + datapath and a client
 * node (host-stack mode) and runs the request mix.
 */
class SwiftWorkload
{
  public:
    SwiftWorkload(EventQueue &eq, sys::Node &server, sys::Node &client,
                  baselines::DataPath &server_path, SwiftParams p = {});

    /** Kick off; @p done receives the stats once traffic drains. */
    void run(std::function<void(const SwiftStats &)> done);

  private:
    struct Session
    {
        host::Connection *serverConn = nullptr;
        host::Connection *clientConn = nullptr;
        bool busy = false;
    };

    Tick appWork(std::uint64_t size) const;
    void scheduleNextArrival();
    void dispatch(bool is_get, std::uint64_t size);
    void startGet(Session &s, std::uint64_t size, Tick issued);
    void startPut(Session &s, std::uint64_t size, Tick issued);
    void finishRequest(Session &s, bool is_get, std::uint64_t size,
                       Tick issued);
    void maybeFinish();

    EventQueue &eq;
    sys::Node &server;
    sys::Node &client;
    baselines::DataPath &path;
    SwiftParams params;
    Rng rng;
    PoissonProcess arrivals;

    std::vector<Session> sessions;
    std::deque<std::pair<bool, std::uint64_t>> backlog;
    std::vector<int> objectFds;
    std::vector<std::uint64_t> objectSizes;
    Addr clientScratch = 0;

    Tick startTick = 0;
    Tick measureStart = 0;
    Tick measureEnd = 0;
    bool windowOpen = false;
    bool arrivalsDone = false;
    int inFlight = 0;
    int putSeq = 0;

    SwiftStats stats;
    std::function<void(const SwiftStats &)> onDone;
};

} // namespace workload
} // namespace dcs

#endif // DCS_WORKLOAD_SWIFT_HH
