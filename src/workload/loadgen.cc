#include "workload/loadgen.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/tracing.hh"

namespace dcs {
namespace workload {

LoadGen::LoadGen(EventQueue &eq, sys::Node &server, sys::Node &client,
                 baselines::DataPath &server_path, LoadGenParams p)
    : eq(eq), server(server), client(client), path(server_path), params(p)
{
    if (params.clients == 0)
        panic("loadgen: zero clients");
    if (params.connections <= 0)
        panic("loadgen: empty connection pool");

    // Keep-alive pool: one pre-established server/client connection
    // pair per slot, distinct ports so flows stay separable.
    sessions.resize(static_cast<std::size_t>(params.connections));
    for (int i = 0; i < params.connections; ++i) {
        host::ConnPairParams cp;
        cp.portA = static_cast<std::uint16_t>(9000 + i);
        cp.portB = static_cast<std::uint16_t>(40000 + i);
        cp.seqA = 1000;
        cp.seqB = 7000;
        auto [cs, cc] =
            host::establishPair(server.tcp(), client.tcp(), cp);
        sessions[static_cast<std::size_t>(i)].serverConn = cs;
        sessions[static_cast<std::size_t>(i)].clientConn = cc;
        // The client side discards GET payloads (it "downloads" them).
        cc->onPayload = [](std::uint32_t, BufChain) {};
        freeSessions.push_back(static_cast<std::size_t>(i));
    }

    // Pre-populate the object store with fixed-size objects so the
    // offered load in bytes is exact.
    Rng fill(params.seed + 17);
    for (int i = 0; i < params.preloadObjects; ++i) {
        std::vector<std::uint8_t> content(params.requestBytes);
        fill.fill(content.data(), content.size());
        objectFds.push_back(
            server.fs().create("lg" + std::to_string(i), content));
    }

    // The client population. Each client draws from its own PRNG
    // stream (seeded from the run seed and its index only, so runs
    // are reproducible under any event-queue sharding) and its own
    // arrival process carrying 1/clients of the offered rate.
    const double per_client =
        params.offeredRps / static_cast<double>(params.clients);
    population.reserve(params.clients);
    for (std::uint64_t i = 0; i < params.clients; ++i) {
        const std::uint64_t cseed =
            params.seed ^ (0x9e3779b97f4a7c15ull * (i + 1));
        if (params.bursty) {
            // Concentrate the mean rate into ON phases.
            const double duty =
                toSeconds(params.onMean) /
                (toSeconds(params.onMean) + toSeconds(params.offMean));
            population.emplace_back(
                cseed, ArrivalProcess::onOff(per_client / duty,
                                             params.onMean,
                                             params.offMean));
        } else {
            population.emplace_back(cseed,
                                    ArrivalProcess::poisson(per_client));
        }
    }
}

void
LoadGen::run(std::function<void(const LoadGenStats &)> done)
{
    onDone = std::move(done);
    measureStart = eq.now() + params.warmup;
    measureEnd = measureStart + params.measure;
    stats.window = params.measure;

    for (std::size_t i = 0; i < population.size(); ++i)
        scheduleClient(i);
}

bool
LoadGen::inWindow() const
{
    return eq.now() >= measureStart && eq.now() <= measureEnd;
}

void
LoadGen::scheduleClient(std::size_t idx)
{
    Client &c = population[idx];
    const Tick when = eq.now() + c.proc.nextGap(c.rng);
    if (when >= measureEnd) {
        // This client stops generating; the run drains.
        ++clientsDone;
        maybeFinish();
        return;
    }
    eq.scheduleAt(when, [this, idx] {
        arrive();
        scheduleClient(idx);
    });
}

void
LoadGen::arrive()
{
    if (inWindow())
        ++stats.offered;
    Queued q;
    q.issued = eq.now();
    if (eq.tracer().enabled()) {
        // Give every arrival a flow id at birth so latency
        // attribution can charge backlog wait to the client, not to
        // the driver the request eventually reaches.
        q.flow = eq.tracer().nextFlowId();
        TRACE_FLOW(eq.tracer(), q.issued, "loadgen", "lg_arrive",
                   q.flow);
    }
    if (!freeSessions.empty()) {
        const std::size_t si = freeSessions.front();
        freeSessions.pop_front();
        startRequest(si, q);
        return;
    }
    if (backlog.size() >= params.maxBacklog) {
        // Open-loop drop: the client gives up, the server never
        // sees the request.
        if (inWindow())
            ++stats.droppedClient;
        if (q.flow != 0)
            TRACE_FLOW(eq.tracer(), eq.now(), "loadgen", "lg_abort",
                       q.flow);
        return;
    }
    backlog.push_back(q);
}

void
LoadGen::startRequest(std::size_t session_idx, Queued q)
{
    Session &s = sessions[session_idx];
    s.busy = true;
    ++inFlight;
    const int fd = objectFds[nextObj++ % objectFds.size()];
    host::TracePtr trace;
    if (q.flow != 0) {
        // Thread the arrival's flow id through the datapath so every
        // span and instant under this request joins its ledger.
        trace = host::makeTrace();
        trace->flow = q.flow;
    }
    path.sendFile(fd, s.serverConn->fd, 0, params.requestBytes,
                  ndp::Function::None, {}, trace,
                  [this, session_idx, q](
                      const baselines::PathResult &r) {
                      finishRequest(session_idx, q, r.status);
                  });
}

void
LoadGen::finishRequest(std::size_t session_idx, Queued q,
                       std::uint32_t status)
{
    Session &s = sessions[session_idx];
    s.busy = false;
    --inFlight;
    ++s.served;

    const bool good = inWindow() && status == 0;
    if (inWindow()) {
        if (status != 0) {
            ++stats.rejectedServer;
        } else {
            ++stats.completed;
            stats.bytesMoved += params.requestBytes;
            const Tick lat = eq.now() - q.issued;
            const double us = toMicroseconds(lat);
            stats.latencyUs.sample(us);
            if (rollBuf.size() < rollWindow) {
                rollBuf.push_back(us);
            } else {
                rollBuf[rollHead] = us;
                rollHead = (rollHead + 1) % rollWindow;
            }
            if (params.slo != 0 && lat > params.slo)
                ++stats.sloViolations;
        }
    }
    if (q.flow != 0) {
        // lg_done finalizes the attribution ledger entry only for the
        // completions that also land in latencyUs, so the stage sums
        // and the e2e distribution describe the same population.
        TRACE_FLOW(eq.tracer(), eq.now(), "loadgen",
                   good ? "lg_done" : "lg_abort", q.flow);
    }

    if (status != 0 && params.rejectBackoff != 0) {
        // 429: honor the server's backpressure before this slot
        // serves again.
        eq.schedule(params.rejectBackoff, [this, session_idx] {
            releaseSession(session_idx);
        });
    } else if (params.requestsPerConn != 0 &&
               s.served >= params.requestsPerConn) {
        // Churn: retire the connection, pay the reconnect cost
        // before this pool slot serves again.
        s.served = 0;
        ++stats.churns;
        eq.schedule(params.reconnectDelay, [this, session_idx] {
            releaseSession(session_idx);
        });
    } else {
        releaseSession(session_idx);
    }
    maybeFinish();
}

void
LoadGen::releaseSession(std::size_t session_idx)
{
    if (!backlog.empty()) {
        const Queued q = backlog.front();
        backlog.pop_front();
        startRequest(session_idx, q);
        return;
    }
    freeSessions.push_back(session_idx);
    maybeFinish();
}

void
LoadGen::maybeFinish()
{
    if (clientsDone < population.size() || inFlight > 0 ||
        !backlog.empty())
        return;
    if (eq.now() < measureEnd) {
        // Traffic drained early; wait out the window.
        eq.scheduleAt(measureEnd, [this] { maybeFinish(); });
        return;
    }
    const double secs = toSeconds(stats.window);
    stats.offeredRps = static_cast<double>(stats.offered) / secs;
    stats.goodputRps = static_cast<double>(stats.completed) / secs;
    stats.goodputGbps =
        static_cast<double>(stats.bytesMoved) * 8.0 / secs / 1e9;
    if (stats.offered != 0) {
        const double off = static_cast<double>(stats.offered);
        stats.clientDropRate =
            static_cast<double>(stats.droppedClient) / off;
        stats.rejectRate =
            static_cast<double>(stats.rejectedServer) / off;
        stats.sloViolationRate =
            static_cast<double>(stats.sloViolations) / off;
    }
    if (onDone) {
        auto cb = std::move(onDone);
        onDone = nullptr;
        cb(stats);
    }
}

double
LoadGen::rollingP99() const
{
    if (rollBuf.empty())
        return 0.0;
    std::vector<double> v(rollBuf);
    const std::size_t k = (v.size() - 1) * 99 / 100;
    std::nth_element(v.begin(),
                     v.begin() + static_cast<std::ptrdiff_t>(k),
                     v.end());
    return v[k];
}

void
LoadGen::exportTimeline(stats::Timeline &tl) const
{
    tl.addColumn("offered",
                 [this] { return static_cast<double>(stats.offered); });
    tl.addColumn("completed", [this] {
        return static_cast<double>(stats.completed);
    });
    tl.addColumn("rejected_429", [this] {
        return static_cast<double>(stats.rejectedServer);
    });
    tl.addColumn("dropped_client", [this] {
        return static_cast<double>(stats.droppedClient);
    });
    tl.addColumn("slo_violations", [this] {
        return static_cast<double>(stats.sloViolations);
    });
    tl.addColumn("backlog",
                 [this] { return static_cast<double>(backlog.size()); });
    tl.addColumn("in_flight",
                 [this] { return static_cast<double>(inFlight); });
    tl.addColumn("rolling_p99_us", [this] { return rollingP99(); });
}

} // namespace workload
} // namespace dcs
