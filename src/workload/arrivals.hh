/**
 * @file
 * Open-loop arrival processes shared by the workload generators.
 *
 * Every generator used to carry its own inline pacing math; these
 * classes centralize it so Swift, the load generator, and the benches
 * draw gaps the exact same way. Each process is a pure function of
 * the caller's Rng stream: one process per client plus one Rng per
 * client gives deterministic, interleaving-independent arrivals.
 */

#ifndef DCS_WORKLOAD_ARRIVALS_HH
#define DCS_WORKLOAD_ARRIVALS_HH

#include <algorithm>
#include <optional>

#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace dcs {
namespace workload {

/** Requests per second that offer @p gbps of @p mean_bytes objects. */
inline double
arrivalRatePerSec(double gbps, double mean_bytes)
{
    return gbps * 1e9 / 8.0 / mean_bytes;
}

/**
 * Memoryless open-loop arrivals: independent exponential gaps at a
 * fixed rate. One exponential draw per gap — the historical Swift
 * pacing sequence, bit-for-bit.
 */
class PoissonProcess
{
  public:
    explicit PoissonProcess(double rate_per_sec) : rate(rate_per_sec) {}

    Tick
    nextGap(Rng &rng)
    {
        return seconds(rng.exponential(1.0 / rate));
    }

    double ratePerSec() const { return rate; }

  private:
    double rate;
};

/**
 * Bursty arrivals: a two-state modulated Poisson process. ON phases
 * emit exponential gaps at @p on_rate; OFF phases emit nothing. Phase
 * durations are themselves exponential, so the long-run offered rate
 * is on_rate * onMean / (onMean + offMean). A gap that would overrun
 * the current ON phase is re-drawn after the OFF dwell (memoryless,
 * so the statistics are unchanged and the draw count stays a pure
 * function of the Rng stream).
 */
class OnOffProcess
{
  public:
    OnOffProcess(double on_rate, Tick on_mean, Tick off_mean)
        : rate(on_rate), onMean(on_mean), offMean(off_mean)
    {
    }

    Tick
    nextGap(Rng &rng)
    {
        Tick offset = 0;
        for (;;) {
            if (phaseLeft == 0)
                phaseLeft = std::max<Tick>(
                    1, seconds(rng.exponential(
                           toSeconds(on ? onMean : offMean))));
            if (!on) {
                offset += phaseLeft;
                phaseLeft = 0;
                on = true;
                continue;
            }
            const Tick gap = seconds(rng.exponential(1.0 / rate));
            if (gap <= phaseLeft) {
                phaseLeft -= gap;
                return offset + gap;
            }
            offset += phaseLeft;
            phaseLeft = 0;
            on = false;
        }
    }

    double
    meanRatePerSec() const
    {
        return rate * toSeconds(onMean) /
               (toSeconds(onMean) + toSeconds(offMean));
    }

  private:
    double rate;
    Tick onMean;
    Tick offMean;
    bool on = true;
    Tick phaseLeft = 0;
};

/** Tagged union of the processes, for knob-selected generators. */
class ArrivalProcess
{
  public:
    static ArrivalProcess
    poisson(double rate_per_sec)
    {
        ArrivalProcess p;
        p.pois = PoissonProcess(rate_per_sec);
        return p;
    }

    static ArrivalProcess
    onOff(double on_rate, Tick on_mean, Tick off_mean)
    {
        ArrivalProcess p;
        p.bursty = OnOffProcess(on_rate, on_mean, off_mean);
        return p;
    }

    Tick
    nextGap(Rng &rng)
    {
        return bursty ? bursty->nextGap(rng) : pois->nextGap(rng);
    }

  private:
    ArrivalProcess() = default;
    std::optional<PoissonProcess> pois;
    std::optional<OnOffProcess> bursty;
};

} // namespace workload
} // namespace dcs

#endif // DCS_WORKLOAD_ARRIVALS_HH
