/**
 * @file
 * 10-GbE NIC model (Broadcom BCM57711 class).
 *
 * Send and receive descriptor rings live wherever the driver points
 * them — host DRAM for the kernel path, HDC Engine BRAM for the
 * hardware-controlled path — and all queue accesses are DMA through
 * the PCIe fabric, so the same device works under both control
 * schemes. Large send offload (LSO) segments a TCP payload into
 * MTU-sized frames in the NIC, recomputing IP/TCP checksums per
 * segment (paper §IV-C exploits LSO for bulk D2D transfers).
 */

#ifndef DCS_NIC_NIC_HH
#define DCS_NIC_NIC_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "net/packet.hh"
#include "net/wire.hh"
#include "pcie/device.hh"

namespace dcs {
namespace nic {

/** Register offsets in BAR0. */
namespace reg {
constexpr std::uint64_t sendRingBase = 0x00;
constexpr std::uint64_t sendRingSize = 0x08;
constexpr std::uint64_t sendCplBase = 0x10;
constexpr std::uint64_t recvRingBase = 0x18;
constexpr std::uint64_t recvRingSize = 0x20;
constexpr std::uint64_t recvCplBase = 0x28;
constexpr std::uint64_t msiSendAddr = 0x30; //!< 0 => poll (no interrupt)
constexpr std::uint64_t msiRecvAddr = 0x38;
constexpr std::uint64_t mtu = 0x48;
constexpr std::uint64_t sendDoorbell = 0x40;
constexpr std::uint64_t recvDoorbell = 0x44;
} // namespace reg

/** Send descriptor: 32 bytes in ring memory. */
struct SendDesc
{
    std::uint64_t hdrAddr = 0;     //!< template Eth/IP/TCP headers
    std::uint64_t payloadAddr = 0; //!< contiguous payload
    std::uint32_t payloadLen = 0;
    std::uint16_t hdrLen = 0;
    std::uint16_t flags = 0; //!< bit0: LSO
    std::uint32_t mss = 0;   //!< max TCP payload per frame when LSO
    std::uint32_t rsvd = 0;
};
static_assert(sizeof(SendDesc) == 32, "SendDesc must be 32 bytes");

/**
 * Receive descriptor: a posted buffer. 32 bytes in ring memory.
 * With flags bit0 (header split, paper ref [39]) the NIC writes the
 * Eth/IP/TCP headers to hdrAddr and only the TCP payload to bufAddr,
 * so the consumer receives a contiguous payload without stripping.
 */
struct RecvDesc
{
    std::uint64_t bufAddr = 0;
    std::uint32_t bufLen = 0;
    std::uint32_t flags = 0;   //!< bit0: header split
    std::uint64_t hdrAddr = 0; //!< header destination when splitting
    std::uint64_t rsvd = 0;
};
static_assert(sizeof(RecvDesc) == 32, "RecvDesc must be 32 bytes");

/**
 * Completion entry: 16 bytes. The seqNo is a 1-based global counter
 * per completion ring; consumers accept a slot only when it carries
 * exactly the next expected number, which disambiguates freshly
 * written completions from stale contents after the ring wraps.
 */
struct CplEntry
{
    std::uint32_t descIndex = 0;
    std::uint32_t seqNo = 0;
    std::uint32_t value = 0;  //!< send: status; recv: bytes at bufAddr
    std::uint32_t hdrLen = 0; //!< recv w/ header split: header bytes
};
static_assert(sizeof(CplEntry) == 16, "CplEntry must be 16 bytes");

/** Timing knobs (defaults ~ 10-GbE with ~9 Gbps effective goodput). */
struct NicParams
{
    double wireGbps = 10.0;
    std::uint32_t frameOverhead = 24; //!< preamble + CRC + IFG bytes
    Tick perFrameProcessing = nanoseconds(500);
    std::uint32_t defaultMtu = 9000; //!< jumbo frames
    std::size_t rxFifoFrames = 1024; //!< internal RX FIFO depth
    /** Raise the receive MSI only every Nth completion (interrupt
     *  moderation); the final frame of a lull still interrupts via
     *  the hold-off timer. 1 = interrupt per frame. */
    std::uint32_t intrCoalesce = 1;
    Tick intrHoldoff = microseconds(20);
};

/** The NIC endpoint. */
class Nic : public pcie::Device, public net::WireEndpoint
{
  public:
    Nic(EventQueue &eq, std::string name, Addr bar0, net::MacAddr mac,
        NicParams p = {});

    void busWrite(Addr addr, std::span<const std::uint8_t> data) override;
    void busRead(Addr addr, std::span<std::uint8_t> data) override;

    Addr bar0() const { return _bar0; }
    const net::MacAddr &mac() const { return _mac; }

    /** Called by the Wire when a frame arrives. */
    void receiveFrame(BufChain frame) override;
    void
    receiveFrame(std::vector<std::uint8_t> frame)
    {
        receiveFrame(BufChain(Buffer::fromVector(std::move(frame))));
    }

    const std::string &endpointName() const override { return name(); }
    const net::MacAddr *endpointMac() const override { return &_mac; }

    /** @name Introspection counters. */
    /** @{ */
    std::uint64_t framesSent() const { return _framesSent; }
    std::uint64_t framesReceived() const { return _framesReceived; }
    std::uint64_t framesDropped() const { return _framesDropped; }
    std::uint64_t payloadBytesSent() const { return _payloadSent; }
    std::uint64_t recvMsisRaised() const { return _recvMsis; }
    /** @} */

  private:
    void regWrite(std::uint64_t off, std::uint64_t value);
    void pumpSend();
    void fetchRecvDescs();
    void drainRxPending();
    void processSend(const SendDesc &desc, std::uint32_t index);
    void transmitSegments(BufChain hdr, const SendDesc &desc,
                          std::uint32_t index);
    void postCompletion(Addr cpl_base, std::uint32_t ring_size,
                        std::uint32_t &cpl_tail, std::uint32_t desc_index,
                        std::uint32_t value, std::uint32_t hdr_len,
                        Addr msi, bool coalesce);
    void deliverRx(BufChain frame);
    void raiseRecvMsiIfDue(bool force);

    Addr _bar0;
    net::MacAddr _mac;
    NicParams _params;

    // Ring configuration (driver-programmed).
    Addr sendBase = 0, sendCpl = 0, recvBase = 0, recvCpl = 0;
    std::uint32_t sendSize = 0, recvSize = 0;
    Addr msiSend = 0, msiRecv = 0;
    std::uint32_t mtuBytes;

    // Ring state.
    std::uint32_t sendPidx = 0, sendCidx = 0;
    std::uint32_t recvPidx = 0, recvFetched = 0;
    std::uint32_t sendCplTail = 0, recvCplTail = 0;
    bool sendBusy = false;
    bool recvFetchInFlight = false;
    std::deque<std::pair<RecvDesc, std::uint32_t>> recvCache;
    std::deque<BufChain> rxPending;

    Tick txNextFree = 0;
    std::uint16_t ipIdCounter = 1;

    std::uint64_t _framesSent = 0;
    std::uint64_t _framesReceived = 0;
    std::uint64_t _framesDropped = 0;
    std::uint64_t _payloadSent = 0;
    std::uint32_t cplSinceMsi = 0;
    EventId holdoffEvent = 0;
    std::uint64_t _recvMsis = 0;
};

} // namespace nic
} // namespace dcs

#endif // DCS_NIC_NIC_HH
