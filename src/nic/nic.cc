#include "nic/nic.hh"

#include <cstring>

#include "pcie/fabric.hh"
#include "sim/logging.hh"

namespace dcs {
namespace nic {

Nic::Nic(EventQueue &eq, std::string name, Addr bar0, net::MacAddr mac,
         NicParams p)
    : pcie::Device(eq, std::move(name)), _bar0(bar0), _mac(mac), _params(p),
      mtuBytes(p.defaultMtu)
{
    claimRange({bar0, 0x1000});
    statsGroup().addCounter("frames_sent", _framesSent, "frames on the wire");
    statsGroup().addCounter("frames_received", _framesReceived,
                            "frames accepted from the wire");
    statsGroup().addCounter("frames_dropped", _framesDropped,
                            "frames dropped (RX FIFO overflow)");
    statsGroup().addCounter("payload_bytes_sent", _payloadSent,
                            "TCP payload bytes transmitted");
    statsGroup().addCounter("recv_msis", _recvMsis,
                            "receive interrupts raised");
    tracer().addCounter(this->name(), "frames_sent", [this] {
        return static_cast<double>(_framesSent);
    });
    tracer().addCounter(this->name(), "frames_received", [this] {
        return static_cast<double>(_framesReceived);
    });
}

void
Nic::busRead(Addr addr, std::span<std::uint8_t> data)
{
    const std::uint64_t off = addr - _bar0;
    std::uint64_t value = 0;
    switch (off) {
      case reg::sendDoorbell:
        value = sendPidx;
        break;
      case reg::recvDoorbell:
        value = recvPidx;
        break;
      case reg::mtu:
        value = mtuBytes;
        break;
      // Reads of unmodelled registers return zero, as NvmeSsd does.
      // dcslint: allow(silent-switch-default): unmodelled regs read zero
      default:
        break;
    }
    std::memcpy(data.data(), &value,
                std::min<std::size_t>(data.size(), sizeof(value)));
}

void
Nic::busWrite(Addr addr, std::span<const std::uint8_t> data)
{
    const std::uint64_t off = addr - _bar0;
    std::uint64_t value = 0;
    std::memcpy(&value, data.data(),
                std::min<std::size_t>(data.size(), sizeof(value)));
    regWrite(off, value);
}

void
Nic::regWrite(std::uint64_t off, std::uint64_t value)
{
    switch (off) {
      case reg::sendRingBase:
        sendBase = value;
        return;
      case reg::sendRingSize:
        sendSize = static_cast<std::uint32_t>(value);
        return;
      case reg::sendCplBase:
        sendCpl = value;
        return;
      case reg::recvRingBase:
        recvBase = value;
        return;
      case reg::recvRingSize:
        recvSize = static_cast<std::uint32_t>(value);
        return;
      case reg::recvCplBase:
        recvCpl = value;
        return;
      case reg::msiSendAddr:
        msiSend = value;
        return;
      case reg::msiRecvAddr:
        msiRecv = value;
        return;
      case reg::mtu:
        mtuBytes = static_cast<std::uint32_t>(value);
        return;
      case reg::sendDoorbell:
        sendPidx = static_cast<std::uint32_t>(value);
        pumpSend();
        return;
      case reg::recvDoorbell:
        recvPidx = static_cast<std::uint32_t>(value);
        fetchRecvDescs();
        return;
      default:
        warn("%s: write to unmodelled register 0x%llx", name().c_str(),
             (unsigned long long)off);
    }
}

void
Nic::pumpSend()
{
    if (sendBusy || sendCidx == sendPidx)
        return;
    if (sendSize == 0)
        panic("%s: send doorbell before ring configuration",
              name().c_str());
    sendBusy = true;
    const std::uint32_t index = sendCidx % sendSize;
    const Addr slot = sendBase + std::uint64_t(index) * sizeof(SendDesc);
    dmaRead(slot, sizeof(SendDesc),
            [this, index](BufChain raw) {
                SendDesc desc;
                raw.copyOut(&desc);
                processSend(desc, index);
            });
}

void
Nic::processSend(const SendDesc &desc, std::uint32_t index)
{
    // Fetch the header template first; payload is then fetched in
    // MSS-sized pieces so DMA overlaps wire transmission (cut-through
    // rather than store-and-forward).
    dmaRead(desc.hdrAddr, desc.hdrLen,
            [this, desc, index](BufChain hdr) {
                transmitSegments(std::move(hdr), desc, index);
            });
}

void
Nic::transmitSegments(BufChain hdr, const SendDesc &desc,
                      std::uint32_t index)
{
    if (hdr.size() < net::fullHeaderLen)
        panic("%s: header template shorter than Eth/IP/TCP",
              name().c_str());
    const Buffer hdr_flat = hdr.flatten();
    const net::FlowInfo base = net::parseHeaderTemplate(hdr_flat.span());

    const bool lso = (desc.flags & 1) != 0;
    const std::uint32_t max_seg =
        lso ? (desc.mss ? desc.mss
                        : mtuBytes - net::ipHeaderLen - net::tcpHeaderLen)
            : desc.payloadLen;
    if (!lso &&
        desc.payloadLen + net::ipHeaderLen + net::tcpHeaderLen > mtuBytes)
        panic("%s: oversized frame without LSO", name().c_str());

    // Segment boundaries.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> segs;
    if (desc.payloadLen == 0) {
        segs.emplace_back(0, 0);
    } else {
        std::uint32_t off = 0;
        while (off < desc.payloadLen) {
            const std::uint32_t n =
                std::min(std::max<std::uint32_t>(max_seg, 1),
                         desc.payloadLen - off);
            segs.emplace_back(off, n);
            off += n;
        }
    }

    auto remaining = std::make_shared<std::size_t>(segs.size());
    _payloadSent += desc.payloadLen;

    auto tx_one = [this, base, index,
                   remaining](std::uint32_t seg_off, BufChain payload) {
        net::FlowInfo flow = base;
        flow.seq = base.seq + seg_off;
        // Zero-copy LSO: the frame chain shares the payload's slabs;
        // only the 54 header bytes are freshly written per segment.
        BufChain frame =
            net::buildFrameChain(flow, std::move(payload), ipIdCounter++);

        const Tick ready = now() + _params.perFrameProcessing;
        const Tick start = std::max(ready, txNextFree);
        const Tick done =
            start + transferTime(frame.size() + _params.frameOverhead,
                                 _params.wireGbps);
        txNextFree = done;
        ++_framesSent;
#ifdef DCS_TRACING
        // Frames serialize on the MAC (txNextFree), so the TX path is
        // an exclusive lane.
        if (tracer().enabled())
            tracer().span(start, done - start, name() + ".tx", "frame", 0,
                          /*lane_exclusive=*/true);
#endif
        schedule(done - now(), [this, frame = std::move(frame)]() mutable {
            if (!wire())
                panic("%s: transmit with no wire attached",
                      name().c_str());
            wire()->transmit(*this, std::move(frame));
        });
        if (--*remaining == 0) {
            // Completion after the final segment leaves the MAC.
            schedule(done - now(), [this, index] {
                postCompletion(sendCpl, sendSize, sendCplTail, index, 0,
                               0, msiSend, false);
            });
        }
    };

    for (auto [seg_off, seg_len] : segs) {
        if (seg_len == 0) {
            tx_one(seg_off, {});
            continue;
        }
        dmaRead(desc.payloadAddr + seg_off, seg_len,
                [tx_one, seg_off](BufChain payload) {
                    tx_one(seg_off, std::move(payload));
                });
    }

    ++sendCidx;
    sendBusy = false;
    pumpSend();
}

void
Nic::fetchRecvDescs()
{
    if (recvFetchInFlight || recvFetched == recvPidx)
        return;
    if (recvSize == 0)
        panic("%s: recv doorbell before ring configuration",
              name().c_str());
    // Fetch up to the ring-wrap boundary in one DMA.
    const std::uint32_t index = recvFetched % recvSize;
    const std::uint32_t n =
        std::min(recvPidx - recvFetched, recvSize - index);
    recvFetchInFlight = true;
    const Addr slot = recvBase + std::uint64_t(index) * sizeof(RecvDesc);
    dmaRead(slot, std::uint64_t(n) * sizeof(RecvDesc),
            [this, index, n](BufChain raw) {
                for (std::uint32_t i = 0; i < n; ++i) {
                    RecvDesc d;
                    raw.copyOut(i * sizeof(RecvDesc), &d, sizeof(d));
                    recvCache.emplace_back(d, index + i);
                }
                recvFetched += n;
                recvFetchInFlight = false;
                drainRxPending();
                fetchRecvDescs();
            });
}

void
Nic::receiveFrame(BufChain frame)
{
    ++_framesReceived;
    TRACE_INSTANT(tracer(), now(), name(), "rx_frame");
    schedule(_params.perFrameProcessing,
             [this, frame = std::move(frame)]() mutable {
                 if (recvCache.empty() || !rxPending.empty()) {
                     // Hold the frame in the internal RX FIFO until a
                     // buffer is posted; drop only on FIFO overflow.
                     if (rxPending.size() < _params.rxFifoFrames) {
                         rxPending.push_back(std::move(frame));
                         drainRxPending();
                     } else {
                         ++_framesDropped;
                         warn("%s: RX drop, FIFO overflow",
                              name().c_str());
                     }
                     return;
                 }
                 deliverRx(std::move(frame));
             });
}

void
Nic::drainRxPending()
{
    while (!rxPending.empty() && !recvCache.empty()) {
        auto f = std::move(rxPending.front());
        rxPending.pop_front();
        deliverRx(std::move(f));
    }
}

void
Nic::deliverRx(BufChain frame)
{
    auto [desc, index] = recvCache.front();
    recvCache.pop_front();

    if (desc.flags & 1) {
        // Header split: steer headers and payload separately so the
        // consumer gets a contiguous payload (paper ref [39]). Both
        // halves are shared views of the arriving frame.
        auto parsed = net::parseFrame(frame);
        if (!parsed) {
            ++_framesDropped;
            warn("%s: unparseable frame on split descriptor",
                 name().c_str());
            return;
        }
        const auto hdr_len =
            static_cast<std::uint32_t>(parsed->payloadOffset);
        const auto pay_len =
            static_cast<std::uint32_t>(parsed->payloadLen);
        if (pay_len > desc.bufLen)
            panic("%s: split payload larger than posted buffer",
                  name().c_str());
        dmaWrite(desc.hdrAddr, frame.slice(0, hdr_len), {});
        dmaWrite(desc.bufAddr, frame.slice(hdr_len, pay_len),
                 [this, index, pay_len, hdr_len] {
                     postCompletion(recvCpl, recvSize, recvCplTail,
                                    index, pay_len, hdr_len, msiRecv,
                                    true);
                 });
        return;
    }

    if (frame.size() > desc.bufLen)
        panic("%s: frame (%zu) larger than posted buffer (%u) "
              "[idx=%u fetched=%u pidx=%u cache=%zu pending=%zu]",
              name().c_str(), frame.size(), desc.bufLen, index,
              recvFetched, recvPidx, recvCache.size(),
              rxPending.size());
    const auto len = static_cast<std::uint32_t>(frame.size());
    dmaWrite(desc.bufAddr, std::move(frame), [this, index, len] {
        postCompletion(recvCpl, recvSize, recvCplTail, index, len, 0,
                       msiRecv, true);
    });
}

void
Nic::raiseRecvMsiIfDue(bool force)
{
    if (msiRecv == 0)
        return;
    ++cplSinceMsi;
    if (!force && _params.intrCoalesce > 1 &&
        cplSinceMsi < _params.intrCoalesce) {
        // Arm (or re-arm) the hold-off timer so a trailing frame is
        // never stranded without an interrupt.
        if (holdoffEvent)
            eventq().deschedule(holdoffEvent);
        holdoffEvent = schedule(_params.intrHoldoff, [this] {
            holdoffEvent = 0;
            if (cplSinceMsi > 0) {
                cplSinceMsi = 0;
                ++_recvMsis;
                mmioWrite(msiRecv, 1, 4);
            }
        });
        return;
    }
    cplSinceMsi = 0;
    if (holdoffEvent) {
        eventq().deschedule(holdoffEvent);
        holdoffEvent = 0;
    }
    ++_recvMsis;
    mmioWrite(msiRecv, 1, 4);
}

void
Nic::postCompletion(Addr cpl_base, std::uint32_t ring_size,
                    std::uint32_t &cpl_tail, std::uint32_t desc_index,
                    std::uint32_t value, std::uint32_t hdr_len, Addr msi,
                    bool coalesce)
{
    if (cpl_base == 0)
        panic("%s: completion ring not configured", name().c_str());
    const Addr slot =
        cpl_base + std::uint64_t(cpl_tail % ring_size) * sizeof(CplEntry);
    CplEntry e;
    e.descIndex = desc_index;
    e.seqNo = cpl_tail + 1;
    e.value = value;
    e.hdrLen = hdr_len;
    ++cpl_tail;
    std::vector<std::uint8_t> raw(sizeof(CplEntry));
    std::memcpy(raw.data(), &e, sizeof(e));
    dmaWrite(slot, std::move(raw), [this, msi, coalesce] {
        if (msi == 0)
            return;
        if (coalesce)
            raiseRecvMsiIfDue(false);
        else {
            mmioWrite(msi, 1, 4);
        }
    });
}

} // namespace nic
} // namespace dcs
