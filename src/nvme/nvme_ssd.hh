/**
 * @file
 * Functional + timing model of an NVMe SSD (Intel 750-class).
 *
 * The device is driven purely through its PCIe interface: register
 * writes bring the controller up, doorbell writes trigger SQ fetches
 * (DMA reads from wherever the queue lives — host DRAM or HDC Engine
 * BRAM), data moves via PRP-addressed DMA, and completions are posted
 * to the CQ followed by an optional MSI. Because every access goes
 * through the fabric, a queue pair owned by the HDC Engine works with
 * no host involvement, exactly as in the paper (§III-C, §IV-B).
 */

#ifndef DCS_NVME_NVME_SSD_HH
#define DCS_NVME_NVME_SSD_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "mem/memory.hh"
#include "nvme/nvme_defs.hh"
#include "pcie/device.hh"

namespace dcs {
namespace nvme {

/** Media/controller timing knobs (defaults ~ Intel 750 400GB). */
struct SsdParams
{
    std::uint64_t capacityBytes = 4ull << 30;
    double readGbps = 17.2;            //!< streaming read bandwidth
    double writeGbps = 7.2;            //!< streaming write bandwidth
    Tick readLatency = microseconds(82);  //!< 4K media read latency
    Tick writeLatency = microseconds(18); //!< write-cache ack latency
    int channels = 8;                  //!< internal parallelism
    Tick commandDecode = nanoseconds(700); //!< controller front-end
    std::uint16_t maxQueues = 16;      //!< IO queue pairs supported
    /** MSI coalescing (per CQ): raise one interrupt per @c msiCoalesce
     *  completions or per @c msiHoldoff window, whichever first.
     *  0 = interrupt per completion (legacy, bit-identical). Mirrors
     *  the NVMe Interrupt Coalescing feature (aggregation threshold +
     *  time). */
    std::uint32_t msiCoalesce = 0;
    Tick msiHoldoff = 0;
};

/** An NVMe SSD endpoint on the PCIe fabric. */
class NvmeSsd : public pcie::Device
{
  public:
    NvmeSsd(EventQueue &eq, std::string name, Addr bar0, SsdParams p = {});

    void busWrite(Addr addr, std::span<const std::uint8_t> data) override;
    void busRead(Addr addr, std::span<std::uint8_t> data) override;

    /** Bus address of BAR0 (registers + doorbells). */
    Addr bar0() const { return _bar0; }

    /**
     * Program the MSI address for interrupt vector @p iv (the model's
     * stand-in for MSI capability configuration). A CQ created with
     * interrupts enabled writes 4 bytes to this address on completion.
     */
    void setMsiAddress(std::uint16_t iv, Addr addr);

    /** Direct functional access to the flash contents (for tests and
     *  for pre-populating filesystem images without simulating every
     *  installation write). */
    Memory &flash() { return _flash; }

    const SsdParams &params() const { return _params; }

    /** @name Introspection counters. */
    /** @{ */
    std::uint64_t commandsCompleted() const { return _completed; }
    std::uint64_t bytesRead() const { return _bytesRead; }
    std::uint64_t bytesWritten() const { return _bytesWritten; }
    std::uint64_t msisRaised() const { return _msisRaised; }
    /** @} */

  private:
    struct Queue
    {
        Addr base = 0;
        std::uint16_t size = 0; //!< entries
        std::uint16_t head = 0;
        std::uint16_t tail = 0;
        // CQ only:
        bool phase = true;
        bool ien = false;
        std::uint16_t iv = 0;
        std::uint16_t cqId = 0; //!< SQ only: target CQ
        bool fetchInFlight = false;
        // CQ only, MSI coalescing state:
        std::uint32_t msiPending = 0;
        bool msiTimerArmed = false;
    };

    void regWrite(std::uint64_t off, std::uint64_t value);
    void doorbellWrite(std::uint64_t off, std::uint32_t value);

    void pumpSq(std::uint16_t qid);
    void executeAdmin(const SqEntry &sqe);
    void executeIo(std::uint16_t sqid, const SqEntry &sqe);
    void finishCommand(std::uint16_t sqid, const SqEntry &sqe,
                       Status status, std::uint32_t dw0 = 0);

    /** Raise (and reset) CQ @p cq_id's coalesced interrupt now. */
    void raiseCqMsi(std::uint16_t cq_id, std::uint64_t tflow);

    /** Resolve the PRP pair/list of @p sqe into page-sized segments. */
    void resolvePrps(const SqEntry &sqe, std::uint64_t len,
                     std::function<void(std::vector<Addr>)> done);

    /** Pick the channel that frees earliest and occupy it. */
    Tick acquireChannel(Tick busy_for);

    /** Serialize a media transfer on the shared flash bus. */
    Tick acquireMedia(Tick earliest, std::uint64_t len, bool is_read);

    Addr _bar0;
    SsdParams _params;
    Memory _flash;

    // Controller state.
    bool enabled = false;
    std::uint64_t regAqa = 0, regAsq = 0, regAcq = 0;

    std::unordered_map<std::uint16_t, Queue> sqs; //!< includes admin (0)
    std::unordered_map<std::uint16_t, Queue> cqs;
    std::unordered_map<std::uint16_t, Addr> msiAddrs;
    std::vector<Tick> channelFree;
    Tick mediaFree = 0;

    std::uint64_t _completed = 0;
    std::uint64_t _bytesRead = 0;
    std::uint64_t _bytesWritten = 0;
    std::uint64_t _msisRaised = 0;
};

} // namespace nvme
} // namespace dcs

#endif // DCS_NVME_NVME_SSD_HH
