/**
 * @file
 * NVM Express 1.2 wire-format subset: commands, completions, registers.
 *
 * Only the structures the DCS-ctrl prototype exercises are modelled:
 * admin queue bring-up (CC/AQA/ASQ/ACQ), IO queue-pair creation (so a
 * queue pair can be placed in HDC Engine BRAM, as the paper's extended
 * driver does), PRP lists, and the read/write/flush IO commands.
 */

#ifndef DCS_NVME_NVME_DEFS_HH
#define DCS_NVME_NVME_DEFS_HH

#include <cstdint>

#include "sim/tracing.hh"

namespace dcs {
namespace nvme {

/** Submission-queue entry: 64 bytes on the wire. */
struct SqEntry
{
    std::uint8_t opcode = 0;
    std::uint8_t flags = 0;
    std::uint16_t cid = 0;
    std::uint32_t nsid = 0;
    std::uint64_t rsvd = 0;
    std::uint64_t mptr = 0;
    std::uint64_t prp1 = 0;
    std::uint64_t prp2 = 0;
    std::uint32_t cdw10 = 0;
    std::uint32_t cdw11 = 0;
    std::uint32_t cdw12 = 0;
    std::uint32_t cdw13 = 0;
    std::uint32_t cdw14 = 0;
    std::uint32_t cdw15 = 0;
};
static_assert(sizeof(SqEntry) == 64, "NVMe SQE must be 64 bytes");

/** Completion-queue entry: 16 bytes on the wire. */
struct CqEntry
{
    std::uint32_t dw0 = 0;     //!< command-specific result
    std::uint32_t rsvd = 0;
    std::uint16_t sqHead = 0;  //!< SQ head pointer at completion time
    std::uint16_t sqId = 0;
    std::uint16_t cid = 0;
    std::uint16_t statusPhase = 0; //!< status[15:1] | phase[0]
};
static_assert(sizeof(CqEntry) == 16, "NVMe CQE must be 16 bytes");

/** Admin opcodes (subset). */
enum class AdminOp : std::uint8_t
{
    DeleteIoSq = 0x00,
    CreateIoSq = 0x01,
    DeleteIoCq = 0x04,
    CreateIoCq = 0x05,
    Identify = 0x06,
};

/** NVM IO opcodes (subset). */
enum class IoOp : std::uint8_t
{
    Flush = 0x00,
    Write = 0x01,
    Read = 0x02,
};

/** Generic command status codes (subset). */
enum class Status : std::uint16_t
{
    Success = 0x0,
    InvalidOpcode = 0x1,
    InvalidField = 0x2,
    LbaOutOfRange = 0x80,
};

/** Controller register offsets within BAR0. */
namespace reg {
constexpr std::uint64_t cap = 0x00;  //!< controller capabilities (RO)
constexpr std::uint64_t cc = 0x14;   //!< controller configuration
constexpr std::uint64_t csts = 0x1c; //!< controller status
constexpr std::uint64_t aqa = 0x24;  //!< admin queue attributes
constexpr std::uint64_t asq = 0x28;  //!< admin SQ base address
constexpr std::uint64_t acq = 0x30;  //!< admin CQ base address
constexpr std::uint64_t doorbellBase = 0x1000;
constexpr std::uint64_t doorbellStride = 4;
} // namespace reg

/** Memory page / LBA geometry used throughout the model. */
constexpr std::uint64_t pageSize = 4096;
constexpr std::uint64_t lbaSize = 4096;

/** Doorbell address of SQ @p qid (tail) within BAR0. */
constexpr std::uint64_t
sqDoorbell(std::uint16_t qid)
{
    return reg::doorbellBase + (2 * qid) * reg::doorbellStride;
}

/** Doorbell address of CQ @p qid (head) within BAR0. */
constexpr std::uint64_t
cqDoorbell(std::uint16_t qid)
{
    return reg::doorbellBase + (2 * qid + 1) * reg::doorbellStride;
}

/**
 * Span-tracer flow-binding key for one outstanding NVMe command.
 * Submitters (HDC's NVMe controller, the host driver) bind the
 * request's flow id under this key; the SSD looks it up to stamp its
 * media spans and completion MSI. Both ends know (bar0, qid, cid), so
 * the 64-byte wire format needs no extra field.
 */
inline std::uint64_t
traceFlowKey(std::uint64_t bar0, std::uint16_t qid, std::uint16_t cid)
{
    return trace::key("nvme", bar0 + (std::uint64_t(qid) << 16) + cid);
}

} // namespace nvme
} // namespace dcs

#endif // DCS_NVME_NVME_DEFS_HH
