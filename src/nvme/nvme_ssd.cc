#include "nvme/nvme_ssd.hh"

#include <algorithm>
#include <cstring>

#include "pcie/fabric.hh"
#include "sim/check.hh"
#include "sim/logging.hh"

namespace dcs {
namespace nvme {

NvmeSsd::NvmeSsd(EventQueue &eq, std::string name, Addr bar0, SsdParams p)
    : pcie::Device(eq, std::move(name)), _bar0(bar0), _params(p),
      _flash(p.capacityBytes, this->name() + ".flash"),
      channelFree(static_cast<std::size_t>(p.channels), 0)
{
    claimRange({bar0, 0x2000});
    statsGroup().addCounter("commands", _completed,
                            "IO commands completed");
    statsGroup().addCounter("bytes_read", _bytesRead,
                            "payload bytes read from media");
    statsGroup().addCounter("bytes_written", _bytesWritten,
                            "payload bytes written to media");
}

void
NvmeSsd::setMsiAddress(std::uint16_t iv, Addr addr)
{
    msiAddrs[iv] = addr;
}

void
NvmeSsd::busRead(Addr addr, std::span<std::uint8_t> data)
{
    const std::uint64_t off = addr - _bar0;
    std::uint64_t value = 0;
    if (off == reg::csts)
        value = enabled ? 1 : 0;
    else if (off == reg::cap)
        value = (std::uint64_t(1) << 37) /* NVM cmd set */ | 1023 /* MQES */;
    std::memcpy(data.data(), &value,
                std::min<std::size_t>(data.size(), sizeof(value)));
}

void
NvmeSsd::busWrite(Addr addr, std::span<const std::uint8_t> data)
{
    const std::uint64_t off = addr - _bar0;
    std::uint64_t value = 0;
    std::memcpy(&value, data.data(),
                std::min<std::size_t>(data.size(), sizeof(value)));
    if (off >= reg::doorbellBase)
        doorbellWrite(off, static_cast<std::uint32_t>(value));
    else
        regWrite(off, value);
}

void
NvmeSsd::regWrite(std::uint64_t off, std::uint64_t value)
{
    switch (off) {
      case reg::aqa:
        regAqa = value;
        return;
      case reg::asq:
        regAsq = value;
        return;
      case reg::acq:
        regAcq = value;
        return;
      case reg::cc:
        if ((value & 1) && !enabled) {
            enabled = true;
            Queue &sq0 = sqs[0];
            sq0 = Queue{};
            sq0.base = regAsq;
            sq0.size = static_cast<std::uint16_t>((regAqa & 0xfff) + 1);
            sq0.cqId = 0;
            Queue &cq0 = cqs[0];
            cq0 = Queue{};
            cq0.base = regAcq;
            cq0.size =
                static_cast<std::uint16_t>(((regAqa >> 16) & 0xfff) + 1);
            cq0.ien = true;
            cq0.iv = 0;
        } else if (!(value & 1)) {
            enabled = false;
            sqs.clear();
            cqs.clear();
        }
        return;
      default:
        warn("%s: write to unmodelled register 0x%llx", name().c_str(),
             (unsigned long long)off);
    }
}

void
NvmeSsd::doorbellWrite(std::uint64_t off, std::uint32_t value)
{
    if (!enabled)
        panic("%s: doorbell while disabled", name().c_str());
    const std::uint64_t idx =
        (off - reg::doorbellBase) / reg::doorbellStride;
    const auto qid = static_cast<std::uint16_t>(idx / 2);
    if (idx % 2 == 0) {
        auto it = sqs.find(qid);
        if (it == sqs.end())
            panic("%s: doorbell for unknown SQ %u", name().c_str(), qid);
        if (value >= it->second.size)
            panic("%s: SQ%u tail %u out of range", name().c_str(), qid,
                  value);
        it->second.tail = static_cast<std::uint16_t>(value);
        pumpSq(qid);
    } else {
        auto it = cqs.find(qid);
        if (it == cqs.end())
            panic("%s: doorbell for unknown CQ %u", name().c_str(), qid);
        if (value >= it->second.size)
            panic("%s: CQ%u head %u out of range", name().c_str(), qid,
                  value);
        it->second.head = static_cast<std::uint16_t>(value);
    }
}

void
NvmeSsd::pumpSq(std::uint16_t qid)
{
    Queue &sq = sqs[qid];
    DCS_CHECK_GT(sq.size, 0, "%s: SQ%u pumped before creation",
                 name().c_str(), qid);
    DCS_CHECK_LT(sq.head, sq.size, "%s: SQ%u head out of range",
                 name().c_str(), qid);
    DCS_CHECK_LT(sq.tail, sq.size, "%s: SQ%u tail out of range",
                 name().c_str(), qid);
    if (sq.fetchInFlight || sq.head == sq.tail)
        return;
    sq.fetchInFlight = true;
    const Addr slot = sq.base + std::uint64_t(sq.head) * sizeof(SqEntry);
    dmaRead(slot, sizeof(SqEntry),
            [this, qid](BufChain raw) {
                Queue &q = sqs[qid];
                SqEntry sqe;
                raw.copyOut(&sqe);
                q.head = static_cast<std::uint16_t>((q.head + 1) % q.size);
                q.fetchInFlight = false;
                schedule(_params.commandDecode, [this, qid, sqe] {
                    if (qid == 0)
                        executeAdmin(sqe);
                    else
                        executeIo(qid, sqe);
                });
                // Keep draining the queue concurrently with execution.
                pumpSq(qid);
            });
}

void
NvmeSsd::executeAdmin(const SqEntry &sqe)
{
    switch (static_cast<AdminOp>(sqe.opcode)) {
      case AdminOp::CreateIoCq: {
        const auto qid = static_cast<std::uint16_t>(sqe.cdw10 & 0xffff);
        if (qid == 0 || qid > _params.maxQueues) {
            finishCommand(0, sqe, Status::InvalidField);
            return;
        }
        Queue cq;
        cq.base = sqe.prp1;
        cq.size = static_cast<std::uint16_t>((sqe.cdw10 >> 16) + 1);
        cq.ien = (sqe.cdw11 & 0x2) != 0;
        cq.iv = static_cast<std::uint16_t>(sqe.cdw11 >> 16);
        cqs[qid] = cq;
        finishCommand(0, sqe, Status::Success);
        return;
      }
      case AdminOp::CreateIoSq: {
        const auto qid = static_cast<std::uint16_t>(sqe.cdw10 & 0xffff);
        const auto cqid = static_cast<std::uint16_t>(sqe.cdw11 >> 16);
        if (qid == 0 || qid > _params.maxQueues || !cqs.count(cqid)) {
            finishCommand(0, sqe, Status::InvalidField);
            return;
        }
        Queue sq;
        sq.base = sqe.prp1;
        sq.size = static_cast<std::uint16_t>((sqe.cdw10 >> 16) + 1);
        sq.cqId = cqid;
        sqs[qid] = sq;
        finishCommand(0, sqe, Status::Success);
        return;
      }
      case AdminOp::DeleteIoSq:
        sqs.erase(static_cast<std::uint16_t>(sqe.cdw10 & 0xffff));
        finishCommand(0, sqe, Status::Success);
        return;
      case AdminOp::DeleteIoCq:
        cqs.erase(static_cast<std::uint16_t>(sqe.cdw10 & 0xffff));
        finishCommand(0, sqe, Status::Success);
        return;
      case AdminOp::Identify: {
        // Fabricate a 4 KiB identify-controller page.
        std::vector<std::uint8_t> page(pageSize, 0);
        const char *model = "DCS-SIM NVMe SSD (Intel 750 class)";
        std::memcpy(page.data() + 24, model,
                    std::min<std::size_t>(std::strlen(model), 40));
        const std::uint64_t nsze = _flash.size() / lbaSize;
        std::memcpy(page.data() + 0x100, &nsze, 8);
        dmaWrite(sqe.prp1, std::move(page), [this, sqe] {
            finishCommand(0, sqe, Status::Success);
        });
        return;
      }
    }
    finishCommand(0, sqe, Status::InvalidOpcode);
}

Tick
NvmeSsd::acquireChannel(Tick busy_for)
{
    auto it = std::min_element(channelFree.begin(), channelFree.end());
    const Tick start = std::max(now(), *it);
    *it = start + busy_for;
    return start;
}

Tick
NvmeSsd::acquireMedia(Tick earliest, std::uint64_t len, bool is_read)
{
    // Per-command access latency overlaps across channels, but the
    // data transfer serializes on the shared flash/controller bus at
    // the device's rated streaming bandwidth.
    const double gbps = is_read ? _params.readGbps : _params.writeGbps;
    const Tick start = std::max(earliest, mediaFree);
    mediaFree = start + transferTime(len, gbps);
    return mediaFree;
}

void
NvmeSsd::resolvePrps(const SqEntry &sqe, std::uint64_t len,
                     std::function<void(std::vector<Addr>)> done)
{
    const std::uint64_t n_pages = (len + pageSize - 1) / pageSize;
    if (sqe.prp1 % pageSize != 0)
        panic("%s: unaligned PRP1 %llx (model requires page alignment)",
              name().c_str(), (unsigned long long)sqe.prp1);
    std::vector<Addr> pages{sqe.prp1};
    if (n_pages == 1) {
        done(std::move(pages));
        return;
    }
    if (n_pages == 2) {
        pages.push_back(sqe.prp2);
        done(std::move(pages));
        return;
    }
    // PRP list: (n_pages - 1) 8-byte entries at prp2.
    if (n_pages - 1 > pageSize / 8)
        panic("%s: transfer needs multi-page PRP list (unmodelled)",
              name().c_str());
    dmaRead(sqe.prp2, (n_pages - 1) * 8,
            [pages = std::move(pages),
             done = std::move(done)](BufChain chain) mutable {
                const auto raw = chain.toVector();
                for (std::size_t i = 0; i + 8 <= raw.size(); i += 8) {
                    Addr a;
                    std::memcpy(&a, raw.data() + i, 8);
                    pages.push_back(a);
                }
                done(std::move(pages));
            });
}

void
NvmeSsd::executeIo(std::uint16_t sqid, const SqEntry &sqe)
{
    const auto op = static_cast<IoOp>(sqe.opcode);
    if (op == IoOp::Flush) {
        finishCommand(sqid, sqe, Status::Success);
        return;
    }
    if (op != IoOp::Read && op != IoOp::Write) {
        finishCommand(sqid, sqe, Status::InvalidOpcode);
        return;
    }

    const std::uint64_t slba =
        sqe.cdw10 | (std::uint64_t(sqe.cdw11) << 32);
    const std::uint64_t nlb = (sqe.cdw12 & 0xffff) + 1ull;
    const std::uint64_t len = nlb * lbaSize;
    if ((slba + nlb) * lbaSize > _flash.size()) {
        finishCommand(sqid, sqe, Status::LbaOutOfRange);
        return;
    }

    const bool is_read = op == IoOp::Read;
    const Tick access = is_read ? _params.readLatency
                                : _params.writeLatency;
    const Tick start = acquireChannel(access);
    const Tick done_at = acquireMedia(start + access, len, is_read);
    TRACE_SPAN(tracer(), start, done_at - start, name(),
               is_read ? "media_read" : "media_write",
               tracer().flowOf(traceFlowKey(_bar0, sqid, sqe.cid)));

    schedule(done_at - now(), [this, sqid, sqe, slba, len, is_read] {
        resolvePrps(sqe, len, [this, sqid, sqe, slba, len,
                               is_read](std::vector<Addr> pages) {
            auto remaining = std::make_shared<std::size_t>(pages.size());
            for (std::size_t i = 0; i < pages.size(); ++i) {
                const std::uint64_t off = i * pageSize;
                const std::uint64_t take =
                    std::min<std::uint64_t>(pageSize, len - off);
                if (is_read) {
                    // Zero-copy: hand out refcounted views of the flash
                    // pages; the TLP structure (one dmaWrite per PRP
                    // page, same sizes) is unchanged.
                    dmaWrite(pages[i],
                             _flash.borrow(slba * lbaSize + off, take),
                             [this, sqid, sqe, remaining] {
                                 if (--*remaining == 0)
                                     finishCommand(sqid, sqe,
                                                   Status::Success);
                             });
                } else {
                    dmaRead(pages[i], take,
                            [this, sqid, sqe, slba, off, remaining](
                                BufChain buf) {
                                _flash.adopt(slba * lbaSize + off, buf);
                                if (--*remaining == 0)
                                    finishCommand(sqid, sqe,
                                                  Status::Success);
                            });
                }
            }
        });
    });

    if (is_read)
        _bytesRead += len;
    else
        _bytesWritten += len;
}

void
NvmeSsd::finishCommand(std::uint16_t sqid, const SqEntry &sqe,
                       Status status, std::uint32_t dw0)
{
    auto sq_it = sqs.find(sqid);
    const std::uint16_t cq_id =
        sq_it != sqs.end() ? sq_it->second.cqId : 0;
    auto cq_it = cqs.find(cq_id);
    if (cq_it == cqs.end())
        panic("%s: completion for missing CQ %u", name().c_str(), cq_id);
    Queue &cq = cq_it->second;
    DCS_CHECK_GT(cq.size, 0, "%s: completing into zero-size CQ %u",
                 name().c_str(), cq_id);
    DCS_CHECK_LT(cq.tail, cq.size, "%s: CQ%u tail out of range",
                 name().c_str(), cq_id);
    DCS_CHECK_LT(cq.head, cq.size, "%s: CQ%u head out of range",
                 name().c_str(), cq_id);

    CqEntry cqe;
    cqe.dw0 = dw0;
    cqe.sqHead = sq_it != sqs.end() ? sq_it->second.head : 0;
    cqe.sqId = sqid;
    cqe.cid = sqe.cid;
    cqe.statusPhase = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(status) << 1) | (cq.phase ? 1 : 0));

    const Addr slot = cq.base + std::uint64_t(cq.tail) * sizeof(CqEntry);
    cq.tail = static_cast<std::uint16_t>((cq.tail + 1) % cq.size);
    if (cq.tail == 0)
        cq.phase = !cq.phase;

    std::vector<std::uint8_t> raw(sizeof(CqEntry));
    std::memcpy(raw.data(), &cqe, sizeof(CqEntry));

    const bool ien = cq.ien;
    const std::uint16_t iv = cq.iv;
    ++_completed;
    const std::uint64_t tflow =
        tracer().enabled()
            ? tracer().flowOf(traceFlowKey(_bar0, sqid, sqe.cid))
            : 0;
    dmaWrite(slot, std::move(raw), [this, ien, iv, cq_id, tflow] {
        if (!ien)
            return;
        if (_params.msiCoalesce == 0) {
            // Interrupt per completion (legacy).
            ++_msisRaised;
            auto it = msiAddrs.find(iv);
            if (it == msiAddrs.end())
                panic("%s: MSI vector %u unconfigured", name().c_str(), iv);
            TRACE_FLOW(tracer(), now(), name(), "msi_raised", tflow);
            mmioWrite(it->second, 1, 4);
            return;
        }
        // Aggregate per CQ: raise at the threshold, or let the
        // holdoff timer sweep up a partial batch.
        Queue &cq = cqs.at(cq_id);
        ++cq.msiPending;
        if (cq.msiPending >= _params.msiCoalesce) {
            raiseCqMsi(cq_id, tflow);
        } else if (!cq.msiTimerArmed) {
            cq.msiTimerArmed = true;
            schedule(_params.msiHoldoff, [this, cq_id] {
                auto it = cqs.find(cq_id);
                if (it == cqs.end())
                    return; // CQ deleted while the timer was armed
                it->second.msiTimerArmed = false;
                if (it->second.msiPending != 0)
                    raiseCqMsi(cq_id, 0);
            });
        }
    });
}

void
NvmeSsd::raiseCqMsi(std::uint16_t cq_id, std::uint64_t tflow)
{
    Queue &cq = cqs.at(cq_id);
    cq.msiPending = 0;
    ++_msisRaised;
    auto it = msiAddrs.find(cq.iv);
    if (it == msiAddrs.end())
        panic("%s: MSI vector %u unconfigured", name().c_str(), cq.iv);
    TRACE_FLOW(tracer(), now(), name(), "msi_raised", tflow);
    mmioWrite(it->second, 1, 4);
}

} // namespace nvme
} // namespace dcs
