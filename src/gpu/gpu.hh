/**
 * @file
 * GPU accelerator model (NVIDIA Tesla K20m class), used by the
 * baseline designs to offload intermediate processing.
 *
 * The GPU exposes its device memory on a PCIe BAR (GPUDirect-RDMA
 * style), so the software-controlled P2P baseline can DMA data from
 * the SSD straight into GPU memory. Kernel launches charge a fixed
 * launch latency plus size-dependent compute time, and the functional
 * result is produced by the same ndp:: transforms the HDC Engine uses,
 * so both designs compute identical bytes.
 */

#ifndef DCS_GPU_GPU_HH
#define DCS_GPU_GPU_HH

#include <cstdint>
#include <functional>

#include "mem/memory.hh"
#include "ndp/transform.hh"
#include "pcie/device.hh"

namespace dcs {
namespace gpu {

/** Timing knobs (defaults ~ Tesla K20m for streaming byte kernels). */
struct GpuParams
{
    std::uint64_t memBytes = 4ull << 30;
    Tick kernelLaunch = microseconds(9); //!< driver->device launch cost
    double md5Gbps = 18.0;
    double sha1Gbps = 14.0;
    double sha256Gbps = 11.0;
    double crc32Gbps = 60.0;
    double aesGbps = 55.0;
    double gzipGbps = 8.0;
};

/** The GPU endpoint: BAR-exposed memory + a kernel execution engine. */
class Gpu : public pcie::Device
{
  public:
    Gpu(EventQueue &eq, std::string name, Addr mem_base, GpuParams p = {});

    void busWrite(Addr addr, std::span<const std::uint8_t> data) override;
    void busRead(Addr addr, std::span<std::uint8_t> data) override;

    /** Base bus address of the exposed device memory BAR. */
    Addr memBase() const { return _memBase; }

    /** Functional access to device memory (for host runtime models). */
    Memory &mem() { return _mem; }

    /**
     * Launch a data-processing kernel over device memory
     * [src_off, src_off+len). The transformed payload is written to
     * @p dst_off (pass-through functions copy the input), the digest
     * (if any) to @p digest_off. @p done fires at kernel completion.
     */
    void launchKernel(ndp::Function fn, std::uint64_t src_off,
                      std::uint64_t len, std::uint64_t dst_off,
                      std::uint64_t digest_off,
                      std::span<const std::uint8_t> aux,
                      std::function<void(std::uint64_t out_len)> done);

    /** Compute time for @p len bytes of @p fn (excludes launch cost). */
    Tick computeTime(ndp::Function fn, std::uint64_t len) const;

    const GpuParams &params() const { return _params; }
    std::uint64_t kernelsLaunched() const { return _kernels; }

  private:
    Addr _memBase;
    GpuParams _params;
    Memory _mem;
    Tick engineFree = 0;
    std::uint64_t _kernels = 0;
};

} // namespace gpu
} // namespace dcs

#endif // DCS_GPU_GPU_HH
