#include "gpu/gpu.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dcs {
namespace gpu {

Gpu::Gpu(EventQueue &eq, std::string name, Addr mem_base, GpuParams p)
    : pcie::Device(eq, std::move(name)), _memBase(mem_base), _params(p),
      _mem(p.memBytes, this->name() + ".mem")
{
    claimRange({mem_base, p.memBytes});
}

void
Gpu::busWrite(Addr addr, std::span<const std::uint8_t> data)
{
    _mem.write(addr - _memBase, data.data(), data.size());
}

void
Gpu::busRead(Addr addr, std::span<std::uint8_t> data)
{
    _mem.read(addr - _memBase, data.data(), data.size());
}

Tick
Gpu::computeTime(ndp::Function fn, std::uint64_t len) const
{
    double gbps;
    switch (fn) {
      case ndp::Function::Md5:
        gbps = _params.md5Gbps;
        break;
      case ndp::Function::Sha1:
        gbps = _params.sha1Gbps;
        break;
      case ndp::Function::Sha256:
        gbps = _params.sha256Gbps;
        break;
      case ndp::Function::Crc32:
        gbps = _params.crc32Gbps;
        break;
      case ndp::Function::Aes256:
        gbps = _params.aesGbps;
        break;
      case ndp::Function::Gzip:
      case ndp::Function::Gunzip:
        gbps = _params.gzipGbps;
        break;
      case ndp::Function::None:
        return nanoseconds(0);
      default:
        panic("gpu: unknown function");
    }
    return transferTime(len, gbps);
}

void
Gpu::launchKernel(ndp::Function fn, std::uint64_t src_off, std::uint64_t len,
                  std::uint64_t dst_off, std::uint64_t digest_off,
                  std::span<const std::uint8_t> aux,
                  std::function<void(std::uint64_t)> done)
{
    ++_kernels;
    // Serialize on the (single) compute engine.
    const Tick start = std::max(now() + _params.kernelLaunch, engineFree);
    const Tick finish = start + computeTime(fn, len);
    engineFree = finish;
#ifdef DCS_TRACING
    // One compute engine == one exclusive lane.
    if (tracer().enabled())
        tracer().span(start, finish - start, name(),
                      ndp::functionName(fn), 0, /*lane_exclusive=*/true);
#endif

    std::vector<std::uint8_t> aux_copy(aux.begin(), aux.end());
    schedule(finish - now(), [this, fn, src_off, len, dst_off, digest_off,
                              aux_copy = std::move(aux_copy),
                              done = std::move(done)] {
        std::vector<std::uint8_t> input(len);
        _mem.read(src_off, input.data(), len);
        ndp::TransformResult r =
            ndp::applyTransform(fn, input, aux_copy);
        _mem.write(dst_off, r.data.data(), r.data.size());
        if (!r.digest.empty())
            _mem.write(digest_off, r.digest.data(), r.digest.size());
        done(r.data.size());
    });
}

} // namespace gpu
} // namespace dcs
