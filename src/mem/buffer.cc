#include "mem/buffer.hh"

#include <cstring>

#include "sim/logging.hh"

namespace dcs {

namespace bufstat {

Counters &
local()
{
    thread_local Counters c;
    return c;
}

} // namespace bufstat

namespace {

/**
 * Backing for Buffer::zeros(): absent sparse-memory pages hand out
 * views of this slab instead of materializing. Shared by every
 * thread; strictly read-only (mutableData() on a zero view copies).
 */
alignas(64) const std::uint8_t kZeroSlab[Buffer::zeroCapacity] = {};

} // namespace

Buffer
Buffer::allocate(std::size_t n)
{
    if (n == 0)
        return {};
    // dcslint: allow(raw-new-delete): intrusive refcount owns the slab
    auto *s = new Slab;
    s->bytes.assign(n, 0);
    return Buffer(s, s->bytes.data(), n);
}

Buffer
Buffer::copyOf(const void *src, std::size_t n)
{
    if (n == 0)
        return {};
    // dcslint: allow(raw-new-delete): intrusive refcount owns the slab
    auto *s = new Slab;
    s->bytes.resize(n);
    std::memcpy(s->bytes.data(), src, n);
    bufstat::noteCopy(n);
    return Buffer(s, s->bytes.data(), n);
}

Buffer
Buffer::fromVector(std::vector<std::uint8_t> v)
{
    if (v.empty())
        return {};
    // dcslint: allow(raw-new-delete): intrusive refcount owns the slab
    auto *s = new Slab;
    s->bytes = std::move(v);
    return Buffer(s, s->bytes.data(), s->bytes.size());
}

Buffer
Buffer::zeros(std::size_t n)
{
    if (n > zeroCapacity)
        panic("Buffer::zeros(%zu) exceeds capacity %zu", n,
              zeroCapacity);
    return Buffer(nullptr, kZeroSlab, n);
}

Buffer
Buffer::slice(std::size_t off, std::size_t n) const
{
    if (off > len || n > len - off)
        panic("Buffer::slice [%zu, +%zu) out of bounds (size %zu)", off,
              n, len);
    if (n == 0)
        return {};
    acquire();
    return Buffer(slab, ptr + off, n);
}

std::uint8_t *
Buffer::mutableData()
{
    if (len == 0)
        return nullptr;
    if (slab && slab->refs.load(std::memory_order_acquire) == 1)
        return const_cast<std::uint8_t *>(ptr);
    // Shared (or non-owning): copy-on-write into a private slab.
    // dcslint: allow(raw-new-delete): intrusive refcount owns the slab
    auto *s = new Slab;
    s->bytes.resize(len);
    std::memcpy(s->bytes.data(), ptr, len);
    bufstat::noteCopy(len);
    release();
    slab = s;
    ptr = s->bytes.data();
    return s->bytes.data();
}

std::uint32_t
Buffer::refCount() const
{
    return slab ? slab->refs.load(std::memory_order_relaxed) : 0;
}

BufChain
BufChain::slice(std::size_t off, std::size_t n) const
{
    if (off > total || n > total - off)
        panic("BufChain::slice [%zu, +%zu) out of bounds (size %zu)",
              off, n, total);
    BufChain out;
    for (const Buffer &seg : segs) {
        if (n == 0)
            break;
        if (off >= seg.size()) {
            off -= seg.size();
            continue;
        }
        const std::size_t take = std::min(n, seg.size() - off);
        out.append(seg.slice(off, take));
        off = 0;
        n -= take;
    }
    return out;
}

void
BufChain::copyOut(void *dst) const
{
    auto *out = static_cast<std::uint8_t *>(dst);
    for (const Buffer &seg : segs) {
        std::memcpy(out, seg.data(), seg.size());
        out += seg.size();
    }
    if (total)
        bufstat::noteCopy(total);
}

void
BufChain::copyOut(std::size_t off, void *dst, std::size_t n) const
{
    if (off > total || n > total - off)
        panic("BufChain::copyOut [%zu, +%zu) out of bounds (size %zu)",
              off, n, total);
    auto *out = static_cast<std::uint8_t *>(dst);
    const std::size_t want = n;
    for (const Buffer &seg : segs) {
        if (n == 0)
            break;
        if (off >= seg.size()) {
            off -= seg.size();
            continue;
        }
        const std::size_t take = std::min(n, seg.size() - off);
        std::memcpy(out, seg.data() + off, take);
        out += take;
        off = 0;
        n -= take;
    }
    if (want)
        bufstat::noteCopy(want);
}

std::vector<std::uint8_t>
BufChain::toVector() const
{
    std::vector<std::uint8_t> v(total);
    if (total) {
        auto *out = v.data();
        for (const Buffer &seg : segs) {
            std::memcpy(out, seg.data(), seg.size());
            out += seg.size();
        }
        bufstat::noteCopy(total);
    }
    return v;
}

Buffer
BufChain::flatten() const
{
    if (segs.empty())
        return {};
    if (segs.size() == 1)
        return segs.front();
    Buffer flat = Buffer::allocate(total);
    auto *out = flat.mutableData();
    for (const Buffer &seg : segs) {
        std::memcpy(out, seg.data(), seg.size());
        out += seg.size();
    }
    bufstat::noteCopy(total);
    return flat;
}

} // namespace dcs
