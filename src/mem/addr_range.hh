/**
 * @file
 * Physical address ranges used by the PCIe address map.
 */

#ifndef DCS_MEM_ADDR_RANGE_HH
#define DCS_MEM_ADDR_RANGE_HH

#include <cstdint>

namespace dcs {

/** Physical / bus address type. */
using Addr = std::uint64_t;

/** A half-open address interval [base, base + size). */
struct AddrRange
{
    Addr base = 0;
    std::uint64_t size = 0;

    bool
    contains(Addr a) const
    {
        return a >= base && a - base < size;
    }

    bool
    contains(Addr a, std::uint64_t len) const
    {
        return len <= size && a >= base && a - base <= size - len;
    }

    bool
    overlaps(const AddrRange &o) const
    {
        return base < o.base + o.size && o.base < base + size;
    }

    Addr end() const { return base + size; }
};

} // namespace dcs

#endif // DCS_MEM_ADDR_RANGE_HH
