/**
 * @file
 * Ref-counted, immutable-by-default payload buffers for the zero-copy
 * data plane.
 *
 * A Buffer is a cheap view (pointer + length) into a shared,
 * atomically ref-counted slab. slice() produces sub-views without
 * copying; mutableData() applies copy-on-write when the slab is
 * shared, so holders of other views never observe the mutation. A
 * BufChain strings Buffers together into one logical byte sequence —
 * the scatter-gather shape of a DMA transfer or a segmented network
 * frame — and re-coalesces adjacent views of the same slab.
 *
 * These types replace std::vector<uint8_t> across the bulk-data APIs
 * (Memory::borrow/adopt, Device::dmaRead/dmaWrite, NVMe media reads,
 * NDP inputs, NIC rings, net framing) so a payload traverses the
 * simulated SSD -> engine DRAM -> NDP -> NIC path without the
 * per-hop memcpy the previous vector plumbing performed. See
 * docs/PERFORMANCE.md ("Zero-copy data plane") for the ownership and
 * copy-on-write rules.
 *
 * Ref-counts are atomic: the parallel bench runner moves whole
 * testbeds (and therefore live Buffers) across task boundaries, and
 * shared content slabs may be referenced from more than one worker.
 */

#ifndef DCS_MEM_BUFFER_HH
#define DCS_MEM_BUFFER_HH

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dcs {

/**
 * Process-wide (per-thread) transfer accounting. Every payload
 * memcpy performed by the buffer layer or by Memory's byte paths
 * bumps these, so a bench can prove a code path is copy-free by
 * taking a delta around it. Borrow/adopt record the zero-copy
 * traffic for the same window.
 */
namespace bufstat {

struct Counters
{
    std::uint64_t copyOps = 0;       //!< discrete payload memcpy calls
    std::uint64_t bytesCopied = 0;   //!< payload bytes memcpy'd
    std::uint64_t bytesBorrowed = 0; //!< bytes handed out as views
    std::uint64_t bytesAdopted = 0;  //!< bytes installed as views
};

/** The calling thread's counters (testbeds are single-threaded). */
Counters &local();

inline void
noteCopy(std::uint64_t bytes)
{
    Counters &c = local();
    ++c.copyOps;
    c.bytesCopied += bytes;
}

inline void noteBorrow(std::uint64_t bytes) { local().bytesBorrowed += bytes; }
inline void noteAdopt(std::uint64_t bytes) { local().bytesAdopted += bytes; }

} // namespace bufstat

/**
 * An immutable-by-default view into a shared slab of bytes.
 *
 * Copying a Buffer bumps the slab's ref-count; destroying the last
 * view frees the slab. data() is read-only; the only mutation door is
 * mutableData(), which copies first whenever any other view could
 * observe the write.
 */
class Buffer
{
  public:
    Buffer() = default;
    ~Buffer() { release(); }

    Buffer(const Buffer &o) : slab(o.slab), ptr(o.ptr), len(o.len)
    {
        acquire();
    }

    Buffer &
    operator=(const Buffer &o)
    {
        if (this != &o) {
            o.acquire();
            release();
            slab = o.slab;
            ptr = o.ptr;
            len = o.len;
        }
        return *this;
    }

    Buffer(Buffer &&o) noexcept : slab(o.slab), ptr(o.ptr), len(o.len)
    {
        o.slab = nullptr;
        o.ptr = nullptr;
        o.len = 0;
    }

    Buffer &
    operator=(Buffer &&o) noexcept
    {
        if (this != &o) {
            release();
            slab = o.slab;
            ptr = o.ptr;
            len = o.len;
            o.slab = nullptr;
            o.ptr = nullptr;
            o.len = 0;
        }
        return *this;
    }

    /** A fresh zero-initialized slab of @p n bytes. */
    static Buffer allocate(std::size_t n);

    /** A fresh slab holding a copy of @p n bytes (counted as a copy). */
    static Buffer copyOf(const void *src, std::size_t n);
    static Buffer
    copyOf(std::span<const std::uint8_t> src)
    {
        return copyOf(src.data(), src.size());
    }

    /** Adopt @p v's storage without copying. */
    static Buffer fromVector(std::vector<std::uint8_t> v);

    /**
     * A view of the shared all-zeros slab (absent sparse-memory
     * pages read as zero without materializing). @p n is capped by
     * zeroCapacity, the largest Memory page size.
     */
    static Buffer zeros(std::size_t n);
    static constexpr std::size_t zeroCapacity = 1ull << 16;

    const std::uint8_t *data() const { return ptr; }
    std::size_t size() const { return len; }
    bool empty() const { return len == 0; }
    std::span<const std::uint8_t> span() const { return {ptr, len}; }

    /** A sub-view; shares the slab, never copies. */
    Buffer slice(std::size_t off, std::size_t n) const;

    /**
     * Writable access to the viewed bytes. If any other view shares
     * the slab (or the view is non-owning, e.g. the zero slab), the
     * bytes are first copied into a fresh private slab so no other
     * holder observes the mutation.
     */
    std::uint8_t *mutableData();

    /** True when another view could observe an in-place write. */
    bool
    shared() const
    {
        return slab ? refCount() > 1 : len > 0;
    }

    /** Slab ref-count (0 for empty / non-owning views; for tests). */
    std::uint32_t refCount() const;

    /** True when @p next continues this view in the same slab. */
    bool
    contiguousWith(const Buffer &next) const
    {
        return slab && slab == next.slab && ptr + len == next.ptr;
    }

  private:
    friend class BufChain;

    /**
     * This view grown by @p n bytes. Only valid when the slab really
     * contains them — i.e. after contiguousWith() accepted the
     * successor view being merged in.
     */
    Buffer
    extended(std::size_t n) const
    {
        Buffer b(*this);
        b.len += n;
        return b;
    }

    struct Slab
    {
        std::atomic<std::uint32_t> refs{1};
        std::vector<std::uint8_t> bytes;
    };

    Buffer(Slab *s, const std::uint8_t *p, std::size_t n)
        : slab(s), ptr(p), len(n)
    {
    }

    void
    acquire() const
    {
        if (slab)
            slab->refs.fetch_add(1, std::memory_order_relaxed);
    }

    void
    release()
    {
        if (slab &&
            slab->refs.fetch_sub(1, std::memory_order_acq_rel) == 1)
            delete slab; // dcslint: allow(raw-new-delete): last ref frees the slab
        slab = nullptr;
    }

    Slab *slab = nullptr; //!< null: empty view or the static zero slab
    const std::uint8_t *ptr = nullptr;
    std::size_t len = 0;
};

/**
 * A scatter-gather sequence of Buffers forming one logical payload.
 * append() re-coalesces views that are adjacent in the same slab, so
 * a payload that was split across pages of one slab comes back as a
 * single segment.
 */
class BufChain
{
  public:
    BufChain() = default;
    BufChain(Buffer b) { append(std::move(b)); }

    void
    append(Buffer b)
    {
        if (b.empty())
            return;
        total += b.size();
        if (!segs.empty() && segs.back().contiguousWith(b)) {
            segs.back() = segs.back().extended(b.size());
            return;
        }
        segs.push_back(std::move(b));
    }

    void
    append(const BufChain &c)
    {
        for (const Buffer &b : c.segs)
            append(b);
    }

    std::size_t size() const { return total; }
    bool empty() const { return total == 0; }
    const std::vector<Buffer> &segments() const { return segs; }

    /** A sub-range as a new chain of (sliced) views; never copies. */
    BufChain slice(std::size_t off, std::size_t n) const;

    /** Copy the whole chain to @p dst (counted as one copy). */
    void copyOut(void *dst) const;

    /** Copy @p n bytes starting at @p off to @p dst. */
    void copyOut(std::size_t off, void *dst, std::size_t n) const;

    /** Materialize as a vector (counted as a copy). */
    std::vector<std::uint8_t> toVector() const;

    /**
     * The chain as one contiguous Buffer: the single segment itself
     * (zero-copy) when the chain is already contiguous, otherwise a
     * fresh slab holding a copy.
     */
    Buffer flatten() const;

    /** A chain holding a private copy of @p src. */
    static BufChain
    copyOf(std::span<const std::uint8_t> src)
    {
        return BufChain(Buffer::copyOf(src));
    }

  private:
    std::vector<Buffer> segs;
    std::size_t total = 0;
};

} // namespace dcs

#endif // DCS_MEM_BUFFER_HH
