/**
 * @file
 * Sparse byte-addressable backing store.
 *
 * Every memory in the system — host DRAM, SSD flash array, NIC packet
 * buffers, HDC Engine BRAM and on-board DDR3 — is an instance of this
 * class. Storage is allocated lazily in fixed pages so multi-gigabyte
 * address spaces cost nothing until touched.
 *
 * Pages are ref-counted Buffers, which is what makes the zero-copy
 * data plane work: borrow() hands out page-backed views (a BufChain)
 * instead of copying bytes out, and adopt() installs views as whole
 * pages instead of copying bytes in. write() applies copy-on-write
 * when a page is still referenced by outstanding views, so a borrow
 * behaves exactly like the snapshot the old copying read produced.
 */

#ifndef DCS_MEM_MEMORY_HH
#define DCS_MEM_MEMORY_HH

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/buffer.hh"

namespace dcs {

/** Lazily-allocated sparse memory of a fixed logical size. */
class Memory
{
  public:
    /**
     * @param size logical capacity in bytes; accesses beyond it panic.
     * @param name used in error messages.
     * @param page_bits log2 of the allocation page size. DRAMs that
     *        receive page-granular DMA (engine DDR3, host DRAM) use
     *        12 (4 KiB, the PRP page size) so adopt() can install
     *        whole pages; bulk stores default to 16 (64 KiB).
     */
    explicit Memory(std::uint64_t size, std::string name = "mem",
                    std::uint32_t page_bits = 16);

    std::uint64_t size() const { return _size; }
    const std::string &name() const { return _name; }
    std::uint64_t pageSize() const { return _pageSize; }

    /** Copy @p n bytes at @p addr into @p dst. Untouched pages read 0. */
    void read(std::uint64_t addr, void *dst, std::uint64_t n) const;

    /** Copy @p n bytes from @p src to @p addr. */
    void write(std::uint64_t addr, const void *src, std::uint64_t n);

    /** Convenience: read @p n bytes into a fresh vector. */
    std::vector<std::uint8_t> readBytes(std::uint64_t addr,
                                        std::uint64_t n) const;

    /** Convenience: write a byte span. */
    void writeBytes(std::uint64_t addr, std::span<const std::uint8_t> src);

    /** Set @p n bytes at @p addr to @p value. Zero-filling ranges
     *  whose pages were never touched is a no-op (absent pages
     *  already read as zero) and materializes nothing. */
    void fill(std::uint64_t addr, std::uint8_t value, std::uint64_t n);

    /**
     * Zero-copy read: the range as views of the resident pages.
     * Absent pages yield views of the shared zero slab. The result
     * is a snapshot — a later write() to the range copies-on-write
     * rather than disturbing it.
     */
    BufChain borrow(std::uint64_t addr, std::uint64_t n) const;

    /**
     * Zero-copy write: install @p data at @p addr. Every whole page
     * of the range that one source segment fully covers is adopted
     * as a view (no copy); partially-covered pages fall back to a
     * byte copy. Equivalent to write() for every reader.
     */
    void adopt(std::uint64_t addr, const BufChain &data);

    /** @name Little-endian scalar accessors. */
    /** @{ */
    template <typename T>
    T
    readLe(std::uint64_t addr) const
    {
        T v{};
        read(addr, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    writeLe(std::uint64_t addr, T v)
    {
        write(addr, &v, sizeof(T));
    }
    /** @} */

    /** Number of pages actually materialized (for tests). */
    std::size_t pagesAllocated() const { return pages.size(); }

    /**
     * Transfer accounting for this memory, registered into the
     * owning SimObject's stats group: bulk bytes that were memcpy'd
     * versus moved as views.
     */
    struct Transfers
    {
        std::uint64_t copyOps = 0;       //!< discrete memcpy calls
        std::uint64_t bytesCopied = 0;   //!< bytes memcpy'd in/out
        std::uint64_t bytesBorrowed = 0; //!< bytes read as views
        std::uint64_t bytesAdopted = 0;  //!< bytes written as views
    };

    const Transfers &transfers() const { return _xfer; }

  private:
    void boundsCheck(std::uint64_t addr, std::uint64_t n) const;
    /** Writable page storage; materializes and applies CoW. */
    std::uint8_t *pageForMut(std::uint64_t addr);
    const Buffer *pageIfPresent(std::uint64_t addr) const;

    void
    noteCopy(std::uint64_t n) const
    {
        ++_xfer.copyOps;
        _xfer.bytesCopied += n;
        bufstat::noteCopy(n);
    }

    std::uint64_t _size;
    std::string _name;
    std::uint32_t _pageBits;
    std::uint64_t _pageSize;
    mutable Transfers _xfer;
    mutable std::unordered_map<std::uint64_t, Buffer> pages;
};

} // namespace dcs

#endif // DCS_MEM_MEMORY_HH
