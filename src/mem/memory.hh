/**
 * @file
 * Sparse byte-addressable backing store.
 *
 * Every memory in the system — host DRAM, SSD flash array, NIC packet
 * buffers, HDC Engine BRAM and on-board DDR3 — is an instance of this
 * class. Storage is allocated lazily in fixed pages so multi-gigabyte
 * address spaces cost nothing until touched.
 */

#ifndef DCS_MEM_MEMORY_HH
#define DCS_MEM_MEMORY_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace dcs {

/** Lazily-allocated sparse memory of a fixed logical size. */
class Memory
{
  public:
    /**
     * @param size logical capacity in bytes; accesses beyond it panic.
     * @param name used in error messages.
     */
    explicit Memory(std::uint64_t size, std::string name = "mem");

    std::uint64_t size() const { return _size; }
    const std::string &name() const { return _name; }

    /** Copy @p n bytes at @p addr into @p dst. Untouched pages read 0. */
    void read(std::uint64_t addr, void *dst, std::uint64_t n) const;

    /** Copy @p n bytes from @p src to @p addr. */
    void write(std::uint64_t addr, const void *src, std::uint64_t n);

    /** Convenience: read @p n bytes into a fresh vector. */
    std::vector<std::uint8_t> readBytes(std::uint64_t addr,
                                        std::uint64_t n) const;

    /** Convenience: write a byte span. */
    void writeBytes(std::uint64_t addr, std::span<const std::uint8_t> src);

    /** Set @p n bytes at @p addr to @p value. */
    void fill(std::uint64_t addr, std::uint8_t value, std::uint64_t n);

    /** @name Little-endian scalar accessors. */
    /** @{ */
    template <typename T>
    T
    readLe(std::uint64_t addr) const
    {
        T v{};
        read(addr, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    writeLe(std::uint64_t addr, T v)
    {
        write(addr, &v, sizeof(T));
    }
    /** @} */

    /** Number of pages actually materialized (for tests). */
    std::size_t pagesAllocated() const { return pages.size(); }

  private:
    static constexpr std::uint64_t pageBits = 16; // 64 KiB pages
    static constexpr std::uint64_t pageSize = 1ull << pageBits;

    using Page = std::unique_ptr<std::uint8_t[]>;

    void boundsCheck(std::uint64_t addr, std::uint64_t n) const;
    std::uint8_t *pageFor(std::uint64_t addr);
    const std::uint8_t *pageIfPresent(std::uint64_t addr) const;

    std::uint64_t _size;
    std::string _name;
    mutable std::unordered_map<std::uint64_t, Page> pages;
};

} // namespace dcs

#endif // DCS_MEM_MEMORY_HH
