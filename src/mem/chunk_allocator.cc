#include "mem/chunk_allocator.hh"

#include <algorithm>

#include "sim/check.hh"
#include "sim/logging.hh"

namespace dcs {

ChunkAllocator::ChunkAllocator(AddrRange r, std::uint64_t chunk_size)
    : range(r), _chunkSize(chunk_size),
      total(static_cast<std::size_t>(r.size / chunk_size))
{
    if (chunk_size == 0 || r.size % chunk_size != 0)
        fatal("chunk size %llu does not divide range size %llu",
              (unsigned long long)chunk_size, (unsigned long long)r.size);
    freeList.reserve(total);
    // Push in reverse so the lowest address is handed out first.
    for (std::size_t i = total; i-- > 0;)
        freeList.push_back(range.base + i * _chunkSize);
    if (kCheckedBuild)
        chunkIsFree.assign(total, true);
}

std::optional<Addr>
ChunkAllocator::alloc()
{
    if (freeList.empty())
        return std::nullopt;
    const Addr a = freeList.back();
    freeList.pop_back();
    if (kCheckedBuild) {
        const auto idx =
            static_cast<std::size_t>((a - range.base) / _chunkSize);
        DCS_INVARIANT(chunkIsFree[idx],
                      "allocator handed out live chunk %llx",
                      (unsigned long long)a);
        chunkIsFree[idx] = false;
    }
    _peakUsed = std::max(_peakUsed, usedChunks());
    return a;
}

void
ChunkAllocator::free(Addr addr)
{
    if (!range.contains(addr) || (addr - range.base) % _chunkSize != 0)
        panic("freeing address %llx not owned by this allocator",
              (unsigned long long)addr);
    if (kCheckedBuild) {
        const auto idx =
            static_cast<std::size_t>((addr - range.base) / _chunkSize);
        if (chunkIsFree[idx])
            panic("double free of chunk %llx", (unsigned long long)addr);
        chunkIsFree[idx] = true;
    } else if (freeList.size() >= total) {
        // Unchecked builds only catch the gross case: more frees than
        // allocations.
        panic("double free of chunk %llx", (unsigned long long)addr);
    }
    freeList.push_back(addr);
    DCS_CHECK_LE(freeList.size(), total, "free list larger than arena");
}

void
ChunkAllocator::auditLive(std::size_t expected_live) const
{
    if (usedChunks() == expected_live)
        return;
    if (kCheckedBuild) {
        for (std::size_t i = 0; i < chunkIsFree.size(); ++i) {
            if (!chunkIsFree[i])
                panic("chunk audit: %llu live (expected %llu), first "
                      "live chunk %llx",
                      (unsigned long long)usedChunks(),
                      (unsigned long long)expected_live,
                      (unsigned long long)(range.base + i * _chunkSize));
        }
    }
    panic("chunk audit: %llu live chunks, expected %llu",
          (unsigned long long)usedChunks(),
          (unsigned long long)expected_live);
}

} // namespace dcs
