#include "mem/chunk_allocator.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dcs {

ChunkAllocator::ChunkAllocator(AddrRange r, std::uint64_t chunk_size)
    : range(r), _chunkSize(chunk_size),
      total(static_cast<std::size_t>(r.size / chunk_size))
{
    if (chunk_size == 0 || r.size % chunk_size != 0)
        fatal("chunk size %llu does not divide range size %llu",
              (unsigned long long)chunk_size, (unsigned long long)r.size);
    freeList.reserve(total);
    // Push in reverse so the lowest address is handed out first.
    for (std::size_t i = total; i-- > 0;)
        freeList.push_back(range.base + i * _chunkSize);
}

std::optional<Addr>
ChunkAllocator::alloc()
{
    if (freeList.empty())
        return std::nullopt;
    const Addr a = freeList.back();
    freeList.pop_back();
    _peakUsed = std::max(_peakUsed, usedChunks());
    return a;
}

void
ChunkAllocator::free(Addr addr)
{
    if (!range.contains(addr) || (addr - range.base) % _chunkSize != 0)
        panic("freeing address %llx not owned by this allocator",
              (unsigned long long)addr);
    if (freeList.size() >= total)
        panic("double free of chunk %llx", (unsigned long long)addr);
    freeList.push_back(addr);
}

} // namespace dcs
