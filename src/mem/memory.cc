#include "mem/memory.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace dcs {

Memory::Memory(std::uint64_t size, std::string name,
               std::uint32_t page_bits)
    : _size(size), _name(std::move(name)), _pageBits(page_bits),
      _pageSize(1ull << page_bits)
{
    if (_pageSize > Buffer::zeroCapacity)
        panic("%s: page size %llu exceeds zero-slab capacity %zu",
              _name.c_str(), (unsigned long long)_pageSize,
              Buffer::zeroCapacity);
}

void
Memory::boundsCheck(std::uint64_t addr, std::uint64_t n) const
{
    if (n > _size || addr > _size - n)
        panic("%s: access [%llu, +%llu) out of bounds (size %llu)",
              _name.c_str(), (unsigned long long)addr,
              (unsigned long long)n, (unsigned long long)_size);
}

std::uint8_t *
Memory::pageForMut(std::uint64_t addr)
{
    Buffer &p = pages[addr >> _pageBits];
    if (p.empty())
        p = Buffer::allocate(_pageSize);
    // Copy-on-write: outstanding borrow() views of this page (or a
    // shared adopted slab) keep their snapshot.
    return p.mutableData();
}

const Buffer *
Memory::pageIfPresent(std::uint64_t addr) const
{
    auto it = pages.find(addr >> _pageBits);
    return it == pages.end() ? nullptr : &it->second;
}

void
Memory::read(std::uint64_t addr, void *dst, std::uint64_t n) const
{
    boundsCheck(addr, n);
    if (n)
        noteCopy(n);
    auto *out = static_cast<std::uint8_t *>(dst);
    while (n > 0) {
        const std::uint64_t off = addr & (_pageSize - 1);
        const std::uint64_t take = std::min(n, _pageSize - off);
        if (const Buffer *p = pageIfPresent(addr))
            std::memcpy(out, p->data() + off, take);
        else
            std::memset(out, 0, take);
        out += take;
        addr += take;
        n -= take;
    }
}

void
Memory::write(std::uint64_t addr, const void *src, std::uint64_t n)
{
    boundsCheck(addr, n);
    if (n)
        noteCopy(n);
    auto *in = static_cast<const std::uint8_t *>(src);
    while (n > 0) {
        const std::uint64_t off = addr & (_pageSize - 1);
        const std::uint64_t take = std::min(n, _pageSize - off);
        std::memcpy(pageForMut(addr) + off, in, take);
        in += take;
        addr += take;
        n -= take;
    }
}

std::vector<std::uint8_t>
Memory::readBytes(std::uint64_t addr, std::uint64_t n) const
{
    std::vector<std::uint8_t> v(n);
    read(addr, v.data(), n);
    return v;
}

void
Memory::writeBytes(std::uint64_t addr, std::span<const std::uint8_t> src)
{
    write(addr, src.data(), src.size());
}

void
Memory::fill(std::uint64_t addr, std::uint8_t value, std::uint64_t n)
{
    boundsCheck(addr, n);
    while (n > 0) {
        const std::uint64_t off = addr & (_pageSize - 1);
        const std::uint64_t take = std::min(n, _pageSize - off);
        // Zero-filling an untouched page is a no-op: absent pages
        // already read as zero, so don't materialize 64 KiB just to
        // memset it.
        if (value != 0 || pageIfPresent(addr))
            std::memset(pageForMut(addr) + off, value, take);
        addr += take;
        n -= take;
    }
}

BufChain
Memory::borrow(std::uint64_t addr, std::uint64_t n) const
{
    boundsCheck(addr, n);
    _xfer.bytesBorrowed += n;
    bufstat::noteBorrow(n);
    BufChain out;
    while (n > 0) {
        const std::uint64_t off = addr & (_pageSize - 1);
        const std::uint64_t take = std::min(n, _pageSize - off);
        if (const Buffer *p = pageIfPresent(addr))
            out.append(p->slice(off, take));
        else
            out.append(Buffer::zeros(take));
        addr += take;
        n -= take;
    }
    return out;
}

void
Memory::adopt(std::uint64_t addr, const BufChain &data)
{
    const std::uint64_t n = data.size();
    boundsCheck(addr, n);
    const auto &segs = data.segments();
    std::size_t segIdx = 0;    // first segment overlapping the cursor
    std::uint64_t segBase = 0; // chain offset of segs[segIdx]
    std::uint64_t pos = 0;     // chain offset of the cursor
    while (pos < n) {
        const std::uint64_t a = addr + pos;
        const std::uint64_t off = a & (_pageSize - 1);
        const std::uint64_t take = std::min(n - pos, _pageSize - off);
        while (segIdx < segs.size() &&
               segBase + segs[segIdx].size() <= pos)
            segBase += segs[segIdx++].size();
        // Adopt when this write covers the page completely and one
        // source segment supplies all of it: the page becomes a view
        // of the source slab instead of a copy.
        if (off == 0 && take == _pageSize && segIdx < segs.size() &&
            pos - segBase + _pageSize <= segs[segIdx].size()) {
            pages[a >> _pageBits] =
                segs[segIdx].slice(pos - segBase, _pageSize);
            _xfer.bytesAdopted += take;
            bufstat::noteAdopt(take);
        } else {
            std::uint8_t *dst = pageForMut(a) + off;
            data.copyOut(pos, dst, take);
            ++_xfer.copyOps;
            _xfer.bytesCopied += take;
        }
        pos += take;
    }
}

} // namespace dcs
