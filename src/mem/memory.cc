#include "mem/memory.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace dcs {

Memory::Memory(std::uint64_t size, std::string name)
    : _size(size), _name(std::move(name))
{
}

void
Memory::boundsCheck(std::uint64_t addr, std::uint64_t n) const
{
    if (n > _size || addr > _size - n)
        panic("%s: access [%llu, +%llu) out of bounds (size %llu)",
              _name.c_str(), (unsigned long long)addr,
              (unsigned long long)n, (unsigned long long)_size);
}

std::uint8_t *
Memory::pageFor(std::uint64_t addr)
{
    Page &p = pages[addr >> pageBits];
    if (!p) {
        p = std::make_unique<std::uint8_t[]>(pageSize);
        std::memset(p.get(), 0, pageSize);
    }
    return p.get();
}

const std::uint8_t *
Memory::pageIfPresent(std::uint64_t addr) const
{
    auto it = pages.find(addr >> pageBits);
    return it == pages.end() ? nullptr : it->second.get();
}

void
Memory::read(std::uint64_t addr, void *dst, std::uint64_t n) const
{
    boundsCheck(addr, n);
    auto *out = static_cast<std::uint8_t *>(dst);
    while (n > 0) {
        const std::uint64_t off = addr & (pageSize - 1);
        const std::uint64_t take = std::min(n, pageSize - off);
        if (const std::uint8_t *p = pageIfPresent(addr))
            std::memcpy(out, p + off, take);
        else
            std::memset(out, 0, take);
        out += take;
        addr += take;
        n -= take;
    }
}

void
Memory::write(std::uint64_t addr, const void *src, std::uint64_t n)
{
    boundsCheck(addr, n);
    auto *in = static_cast<const std::uint8_t *>(src);
    while (n > 0) {
        const std::uint64_t off = addr & (pageSize - 1);
        const std::uint64_t take = std::min(n, pageSize - off);
        std::memcpy(pageFor(addr) + off, in, take);
        in += take;
        addr += take;
        n -= take;
    }
}

std::vector<std::uint8_t>
Memory::readBytes(std::uint64_t addr, std::uint64_t n) const
{
    std::vector<std::uint8_t> v(n);
    read(addr, v.data(), n);
    return v;
}

void
Memory::writeBytes(std::uint64_t addr, std::span<const std::uint8_t> src)
{
    write(addr, src.data(), src.size());
}

void
Memory::fill(std::uint64_t addr, std::uint8_t value, std::uint64_t n)
{
    boundsCheck(addr, n);
    while (n > 0) {
        const std::uint64_t off = addr & (pageSize - 1);
        const std::uint64_t take = std::min(n, pageSize - off);
        std::memset(pageFor(addr) + off, value, take);
        addr += take;
        n -= take;
    }
}

} // namespace dcs
