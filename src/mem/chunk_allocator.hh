/**
 * @file
 * Fixed-size chunk allocator.
 *
 * The HDC Engine manages its 1 GiB on-board DDR3 as fixed 64 KiB blocks
 * for intermediate buffers and packet receive buffers (paper §IV-C).
 * This allocator hands out chunk-aligned addresses from a base range.
 */

#ifndef DCS_MEM_CHUNK_ALLOCATOR_HH
#define DCS_MEM_CHUNK_ALLOCATOR_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/addr_range.hh"

namespace dcs {

/** O(1) allocator of fixed-size chunks over a contiguous range. */
class ChunkAllocator
{
  public:
    /**
     * @param range address range to carve into chunks.
     * @param chunk_size chunk granularity (must divide range.size).
     */
    ChunkAllocator(AddrRange range, std::uint64_t chunk_size);

    /** Allocate one chunk; std::nullopt when exhausted. */
    std::optional<Addr> alloc();

    /** Return a chunk obtained from alloc(). */
    void free(Addr addr);

    std::uint64_t chunkSize() const { return _chunkSize; }
    std::size_t totalChunks() const { return total; }
    std::size_t freeChunks() const { return freeList.size(); }
    std::size_t usedChunks() const { return total - freeList.size(); }

    /** High-water mark of simultaneously live chunks. */
    std::size_t peakUsed() const { return _peakUsed; }

    /**
     * Leak accounting: panics unless exactly @p expected_live chunks
     * are outstanding (checked builds name the first leaked chunk).
     */
    void auditLive(std::size_t expected_live = 0) const;

  private:
    AddrRange range;
    std::uint64_t _chunkSize;
    std::size_t total;
    std::vector<Addr> freeList;
    std::size_t _peakUsed = 0;
    /** Checked builds: per-chunk free bit for precise double-free
     *  detection (indexed by chunk number; deterministic). */
    std::vector<bool> chunkIsFree;
};

} // namespace dcs

#endif // DCS_MEM_CHUNK_ALLOCATOR_HH
