#include "sys/cluster.hh"

#include <cstdlib>

#include "sim/check.hh"
#include "sim/logging.hh"

namespace dcs {
namespace sys {

namespace {

unsigned
resolveThreads(unsigned requested)
{
    if (requested != 0)
        return requested;
    if (const char *env = std::getenv("DCS_SIM_THREADS")) {
        const int v = std::atoi(env);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return 1;
}

} // namespace

Cluster::Cluster(ClusterParams p) : params(std::move(p))
{
    const std::size_t n = params.nodes;
    DCS_CHECK_GE(n, std::size_t(2), "a cluster needs at least 2 nodes");
    DCS_CHECK_GE(params.wireLatency, Tick(1),
                 "zero wire latency gives no lookahead");
    const std::size_t shards = params.sharded ? n + 1 : 1;
    queues.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s)
        queues.push_back(std::make_unique<EventQueue>());
    exec = std::make_unique<sim::ShardExecutor>(
        shards, resolveThreads(params.threads));
    mesh = std::make_unique<sim::ShardMesh>(params.wireLatency);

    // Logical endpoint ids in a fixed order independent of sharding:
    // (node0, port0, node1, port1, …). They feed the cross-shard
    // delivery sort key, so this order is part of the determinism
    // contract between the serial and sharded configurations.
    std::vector<std::size_t> ep_node(n), ep_port(n);
    for (std::size_t i = 0; i < n; ++i) {
        ep_node[i] = mesh->addEndpoint(nodeQueue(i));
        ep_port[i] = mesh->addEndpoint(switchQueue());
    }

    // Build each shard's models on its owner thread: everything a
    // shard ever schedules — including during construction — must
    // stay on one thread (sim/event_pool.hh).
    params.tor.ports = n;
    exec->on(switchShard(), [this] {
        tor_ = std::make_unique<net::Switch>(switchQueue(), "tor",
                                             params.tor);
    });
    nodes_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        exec->on(nodeShard(i), [this, i] {
            NodeParams np = params.node;
            np.mac = macOf(i);
            nodes_[i] = std::make_unique<Node>(
                nodeQueue(i), "node" + std::to_string(i), np);
        });
    }

    // Cabling and the forwarding database (workers are parked: plain
    // data wiring, no events). learn() panics on duplicate MACs.
    wires_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        auto w = std::make_unique<net::Wire>(
            switchQueue(), "wire" + std::to_string(i),
            params.wireLatency);
        w->attach(nodes_[i]->nic(), tor_->port(i));
        w->routeVia(*mesh, ep_node[i], nodeQueue(i), ep_port[i],
                    switchQueue());
        tor_->learn(macOf(i), i);
        wires_.push_back(std::move(w));
    }

    std::vector<EventQueue *> qs;
    qs.reserve(queues.size());
    for (auto &q : queues)
        qs.push_back(q.get());
    sim_ = std::make_unique<sim::ShardedSim>(*exec, *mesh,
                                             std::move(qs));
}

Cluster::~Cluster()
{
    // Tear down in reverse, each shard's models on its owner thread
    // (callback captures may hold thread-local pool storage).
    const std::size_t n = nodes_.size();
    exec->forEach([this, n](std::size_t s) {
        for (std::size_t i = 0; i < n; ++i) {
            if (nodeShard(i) == s)
                nodes_[i].reset();
        }
        if (s == switchShard())
            tor_.reset();
    });
    wires_.clear();
    exec->forEach([this](std::size_t s) { queues[s].reset(); });
}

std::size_t
Cluster::nodeShard(std::size_t i) const
{
    return params.sharded ? i : 0;
}

std::size_t
Cluster::switchShard() const
{
    return params.sharded ? params.nodes : 0;
}

EventQueue &
Cluster::nodeQueue(std::size_t i)
{
    return *queues.at(nodeShard(i));
}

EventQueue &
Cluster::switchQueue()
{
    return *queues.at(switchShard());
}

net::MacAddr
Cluster::macOf(std::size_t i)
{
    const auto v = static_cast<std::uint16_t>(i + 1);
    return {0x02, 0, 0, 0, static_cast<std::uint8_t>(v >> 8),
            static_cast<std::uint8_t>(v & 0xff)};
}

std::uint32_t
Cluster::ipOf(std::size_t i)
{
    DCS_CHECK_LT(i, std::size_t(254), "node index exceeds the subnet");
    return net::ipv4(10, 0, 0, static_cast<std::uint8_t>(i + 1));
}

void
Cluster::onNode(std::size_t i, const std::function<void(Node &)> &fn)
{
    exec->on(nodeShard(i), [this, i, &fn] { fn(*nodes_[i]); });
}

void
Cluster::bringUpDcs()
{
    const std::size_t n = nodes_.size();
    std::vector<std::uint8_t> up(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        onNode(i, [&up, i](Node &nd) {
            nd.bringUpDcs([&up, i] { up[i] = 1; });
        });
    }
    run();
    for (std::size_t i = 0; i < n; ++i) {
        if (!up[i])
            panic("cluster: node %zu never finished DCS bring-up", i);
    }
}

void
Cluster::bringUpHostStack()
{
    const std::size_t n = nodes_.size();
    std::vector<std::uint8_t> up(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        onNode(i, [&up, i](Node &nd) {
            nd.bringUpHostStack([&up, i] { up[i] = 1; });
        });
    }
    run();
    for (std::size_t i = 0; i < n; ++i) {
        if (!up[i])
            panic("cluster: node %zu never finished bring-up", i);
    }
}

Cluster::ConnFds
Cluster::connect(std::size_t src, std::size_t dst)
{
    DCS_INVARIANT(src != dst, "cluster: cannot connect node %zu to "
                              "itself", src);
    const int idx = connCounter++;
    // Mirrors host::establishPair, but each side is installed on its
    // own shard's thread. Unique ports per pair keep flow keys
    // distinct across the whole rack.
    net::FlowInfo out_src;
    out_src.srcMac = macOf(src);
    out_src.dstMac = macOf(dst);
    out_src.srcIp = ipOf(src);
    out_src.dstIp = ipOf(dst);
    out_src.srcPort = static_cast<std::uint16_t>(40000 + idx);
    out_src.dstPort = static_cast<std::uint16_t>(9000 + idx);
    out_src.seq = 1000;
    out_src.ack = 5000;

    net::FlowInfo out_dst;
    out_dst.srcMac = out_src.dstMac;
    out_dst.dstMac = out_src.srcMac;
    out_dst.srcIp = out_src.dstIp;
    out_dst.dstIp = out_src.srcIp;
    out_dst.srcPort = out_src.dstPort;
    out_dst.dstPort = out_src.srcPort;
    out_dst.seq = 5000;
    out_dst.ack = 1000;

    ConnFds fds{-1, -1};
    onNode(src, [&fds, &out_src](Node &nd) {
        fds.src = nd.tcp().establish(out_src, 5000).fd;
    });
    onNode(dst, [&fds, &out_dst](Node &nd) {
        fds.dst = nd.tcp().establish(out_dst, 1000).fd;
    });
    return fds;
}

Tick
Cluster::run()
{
    return sim_->run();
}

void
Cluster::attachHasher()
{
    for (auto &q : queues)
        hasher.attach(*q);
}

} // namespace sys
} // namespace dcs
