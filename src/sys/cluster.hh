/**
 * @file
 * Rack-scale assembly: N server nodes behind one top-of-rack switch,
 * simulated either on a single event queue (the reference
 * configuration) or sharded — one queue per node plus one for the
 * switch — across worker threads with conservative barrier-window
 * synchronization (sim/shard.hh).
 *
 * The wire propagation latency is the lookahead: every cross-node
 * interaction crosses at least one wire, so each shard can always run
 * `wireLatency` ticks beyond the global minimum pending tick without
 * hearing from anyone. Deliveries are injected at barriers in a
 * logical (when, source, sequence) order, which makes the event
 * stream of every node identical between the serial and sharded
 * configurations, at any thread count — the property the cluster
 * determinism tests pin.
 *
 * Node i's identity is derived from its index: MAC 02:00:00:00:hh:ll
 * (hh:ll = i+1) and IP 10.0.0.(i+1). The switch's forwarding database
 * is populated at construction, so two nodes with colliding MACs
 * panic at build time instead of silently stealing traffic.
 */

#ifndef DCS_SYS_CLUSTER_HH
#define DCS_SYS_CLUSTER_HH

#include <functional>
#include <memory>
#include <vector>

#include "net/switch.hh"
#include "sim/shard.hh"
#include "sys/node.hh"

namespace dcs {
namespace sys {

/** Rack configuration. */
struct ClusterParams
{
    std::size_t nodes = 2;
    /** Template for every node (mac is overridden per index). */
    NodeParams node{};
    /** Node <-> switch cable latency; doubles as the lookahead. */
    Tick wireLatency = microseconds(2);
    /** ToR knobs; `ports` is forced to `nodes`. */
    net::SwitchParams tor{};
    /** One queue per node + one for the switch when true; a single
     *  shared queue when false. Results are identical either way. */
    bool sharded = true;
    /** Worker threads; 0 = $DCS_SIM_THREADS, defaulting to 1. */
    unsigned threads = 0;
};

/** N nodes + ToR switch, ready to shard across cores. */
class Cluster
{
  public:
    explicit Cluster(ClusterParams p = {});
    ~Cluster();
    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    std::size_t size() const { return nodes_.size(); }
    Node &node(std::size_t i) { return *nodes_.at(i); }
    net::Switch &tor() { return *tor_; }
    net::Wire &wire(std::size_t i) { return *wires_.at(i); }

    /** The queue node @p i's models live on. */
    EventQueue &nodeQueue(std::size_t i);
    EventQueue &switchQueue();
    std::size_t queueCount() const { return queues.size(); }
    unsigned threadCount() const { return exec->threads(); }

    static net::MacAddr macOf(std::size_t i);
    static std::uint32_t ipOf(std::size_t i);

    /**
     * Run @p fn on node @p i's owner thread. Everything that
     * schedules events on a node — workload kick-offs, callbacks into
     * its drivers — must go through here (or run inside an event on
     * its queue); see the thread discipline note in sim/shard.hh.
     */
    void onNode(std::size_t i, const std::function<void(Node &)> &fn);

    /** @name Whole-rack bring-up (runs the simulation to drain). */
    /** @{ */
    void bringUpDcs();
    void bringUpHostStack();
    /** @} */

    /**
     * Establish a TCP connection pair from node @p src to node
     * @p dst, on unique ports. Returns the two fds (src side, dst
     * side); resolve them with node(i).tcp().findByFd() on the
     * owning shard.
     */
    struct ConnFds
    {
        int src;
        int dst;
    };
    ConnFds connect(std::size_t src, std::size_t dst);

    /** Barrier-window run to global drain; returns the final tick. */
    Tick run();

    /** Barrier rounds executed so far. */
    std::uint64_t windows() const { return sim_->windows(); }

    /** Cross-shard messages carried so far. */
    std::uint64_t meshMessages() const { return mesh->messagesPosted(); }

    /**
     * Attach a shard-count-invariant digest over all queues. Call
     * before the first run(); read with digest()/traceEvents() after.
     */
    void attachHasher();
    std::uint64_t digest() const { return hasher.digest(); }
    std::uint64_t traceEvents() const { return hasher.events(); }

  private:
    std::size_t nodeShard(std::size_t i) const;
    std::size_t switchShard() const;

    ClusterParams params;
    std::vector<std::unique_ptr<EventQueue>> queues;
    std::unique_ptr<sim::ShardExecutor> exec;
    std::unique_ptr<sim::ShardMesh> mesh;
    std::unique_ptr<sim::ShardedSim> sim_;
    std::unique_ptr<net::Switch> tor_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::vector<std::unique_ptr<net::Wire>> wires_;
    sim::MergedTraceHasher hasher;
    int connCounter = 0;
};

} // namespace sys
} // namespace dcs

#endif // DCS_SYS_CLUSTER_HH
