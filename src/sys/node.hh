/**
 * @file
 * Full-node assembly: one DCS-ctrl server.
 *
 * Mirrors the paper's prototype (Fig. 9/10, Table V): a host (Xeon
 * E5-2630-class, 6 cores) whose root port, an Intel-750-class NVMe
 * SSD, a Broadcom-class 10-GbE NIC, a Tesla-K20m-class GPU and the
 * VC707 HDC Engine all hang off one 5-slot PCIe Gen2 switch.
 *
 * A node can be brought up in baseline mode (the host's kernel
 * drivers own the NIC) or DCS mode (the HDC Engine owns the NIC's
 * rings and a dedicated NVMe queue pair).
 */

#ifndef DCS_SYS_NODE_HH
#define DCS_SYS_NODE_HH

#include <functional>
#include <memory>

#include "gpu/gpu.hh"
#include "hdc/hdc_engine.hh"
#include "hdclib/hdc_driver.hh"
#include "hdclib/hdc_library.hh"
#include "host/extent_fs.hh"
#include "host/host.hh"
#include "host/nic_driver.hh"
#include "host/nvme_driver.hh"
#include "host/page_cache.hh"
#include "host/tcp.hh"
#include "net/wire.hh"
#include "sim/check.hh"
#include "nic/nic.hh"
#include "nvme/nvme_ssd.hh"
#include "pcie/fabric.hh"

namespace dcs {
namespace sys {

/** Per-node configuration. */
struct NodeParams
{
    host::HostParams host{};
    nvme::SsdParams ssd{};
    nic::NicParams nic{};
    gpu::GpuParams gpu{};
    hdc::HdcEngineParams hdc{};
    pcie::FabricParams fabric{};
    net::MacAddr mac{0x02, 0, 0, 0, 0, 0x01};
    bool withGpu = true;
    bool withHdc = true;
    /** Additional SSDs beyond the first (the switch gains a slot per
     *  device — the flexibility the paper's disaggregate controllers
     *  buy). Each gets its own host driver and filesystem. */
    int extraSsds = 0;
};

/** One assembled server node. */
class Node
{
  public:
    Node(EventQueue &eq, const std::string &name, NodeParams p = {});

    /** @name Bring-up (pick exactly one). */
    /** @{ */

    /** Baseline modes: host kernel drivers own SSD + NIC. */
    void bringUpHostStack(std::function<void()> done);

    /** DCS-ctrl mode: HDC Engine owns the NIC and a dedicated NVMe
     *  queue pair; the host also keeps its own NVMe IO queue (for
     *  metadata/journaling-style traffic). */
    void bringUpDcs(std::function<void()> done);
    /** @} */

    /** This node's name (prefixes every component's name). */
    const std::string &name() const { return _name; }

    pcie::Fabric &fabric() { return *_fabric; }
    host::Host &host() { return *_host; }
    nvme::NvmeSsd &ssd(std::size_t idx = 0)
    {
        DCS_INVARIANT(idx <= extraSsdDevs.size(),
                      "%s: ssd(%zu) out of range (node has %zu)",
                      _name.c_str(), idx, extraSsdDevs.size() + 1);
        return idx == 0 ? *_ssd : *extraSsdDevs.at(idx - 1);
    }
    nic::Nic &nic() { return *_nic; }
    gpu::Gpu &gpu() { return *_gpu; }
    hdc::HdcEngine &engine() { return *_engine; }
    host::NvmeHostDriver &nvmeDriver(std::size_t idx = 0)
    {
        DCS_INVARIANT(idx <= extraNvmeDrvs.size(),
                      "%s: nvmeDriver(%zu) out of range (node has %zu)",
                      _name.c_str(), idx, extraNvmeDrvs.size() + 1);
        return idx == 0 ? *_nvmeDrv : *extraNvmeDrvs.at(idx - 1);
    }
    host::NicHostDriver &nicDriver() { return *_nicDrv; }
    host::TcpStack &tcp() { return *_tcp; }
    host::ExtentFs &fs(std::size_t idx = 0)
    {
        DCS_INVARIANT(idx <= extraFss.size(),
                      "%s: fs(%zu) out of range (node has %zu)",
                      _name.c_str(), idx, extraFss.size() + 1);
        return idx == 0 ? *_fs : *extraFss.at(idx - 1);
    }
    host::PageCache &pageCache() { return *_pageCache; }
    std::size_t ssdCount() const { return 1 + extraSsdDevs.size(); }
    hdclib::HdcDriver &hdcDriver() { return *_hdcDrv; }
    hdclib::HdcLibrary &hdcLib() { return *_hdcLib; }

    /** Standard bus-address map (documented for tests). */
    static constexpr Addr ssdBar = 0x20000000ull;
    static constexpr Addr nicBar = 0x21000000ull;
    static constexpr Addr gpuMemBase = 0x400000000ull;
    static constexpr Addr hdcBar = 0x800000000ull;

  private:
    void initNvmeDrivers(std::function<void()> done);

    std::string _name;
    std::unique_ptr<pcie::Fabric> _fabric;
    std::unique_ptr<host::Host> _host;
    std::unique_ptr<nvme::NvmeSsd> _ssd;
    std::unique_ptr<nic::Nic> _nic;
    std::unique_ptr<gpu::Gpu> _gpu;
    std::unique_ptr<hdc::HdcEngine> _engine;
    std::unique_ptr<host::NvmeHostDriver> _nvmeDrv;
    std::unique_ptr<host::NicHostDriver> _nicDrv;
    std::unique_ptr<host::TcpStack> _tcp;
    std::unique_ptr<host::ExtentFs> _fs;
    std::unique_ptr<host::PageCache> _pageCache;
    std::unique_ptr<hdclib::HdcDriver> _hdcDrv;
    std::unique_ptr<hdclib::HdcLibrary> _hdcLib;
    std::vector<std::unique_ptr<nvme::NvmeSsd>> extraSsdDevs;
    std::vector<std::unique_ptr<host::NvmeHostDriver>> extraNvmeDrvs;
    std::vector<std::unique_ptr<host::ExtentFs>> extraFss;
};

/** Two nodes joined by a wire (the paper's two-node setup). */
class TwoNodeSystem
{
  public:
    TwoNodeSystem(EventQueue &eq, NodeParams a = {}, NodeParams b = {});

    Node &nodeA() { return *a; }
    Node &nodeB() { return *b; }
    net::Wire &wire() { return *_wire; }

  private:
    std::unique_ptr<Node> a;
    std::unique_ptr<Node> b;
    std::unique_ptr<net::Wire> _wire;
};

} // namespace sys
} // namespace dcs

#endif // DCS_SYS_NODE_HH
