#include "sys/node.hh"

namespace dcs {
namespace sys {

Node::Node(EventQueue &eq, const std::string &name, NodeParams p)
    : _name(name)
{
    // Each extra SSD occupies one more switch slot.
    p.fabric.slots += p.extraSsds;
    _fabric = std::make_unique<pcie::Fabric>(eq, name + ".pcie", p.fabric);
    _host = std::make_unique<host::Host>(eq, name + ".host", *_fabric,
                                         p.host);
    _ssd = std::make_unique<nvme::NvmeSsd>(eq, name + ".ssd", ssdBar,
                                           p.ssd);
    _nic = std::make_unique<nic::Nic>(eq, name + ".nic", nicBar, p.mac,
                                      p.nic);
    _fabric->attach(*_ssd);
    _fabric->attach(*_nic);
    if (p.withGpu) {
        _gpu = std::make_unique<gpu::Gpu>(eq, name + ".gpu", gpuMemBase,
                                          p.gpu);
        _fabric->attach(*_gpu);
    }
    if (p.withHdc) {
        _engine = std::make_unique<hdc::HdcEngine>(eq, name + ".hdc",
                                                   hdcBar, p.hdc);
        _fabric->attach(*_engine);
    }

    for (int i = 0; i < p.extraSsds; ++i) {
        auto dev = std::make_unique<nvme::NvmeSsd>(
            eq, name + ".ssd" + std::to_string(i + 1),
            ssdBar + Addr(i + 1) * 0x100000, p.ssd);
        _fabric->attach(*dev);
        extraSsdDevs.push_back(std::move(dev));
    }

    _nvmeDrv = std::make_unique<host::NvmeHostDriver>(eq, *_host, *_ssd);
    _nicDrv = std::make_unique<host::NicHostDriver>(eq, *_host, *_nic);
    _tcp = std::make_unique<host::TcpStack>(eq, *_host, *_nicDrv);
    _fs = std::make_unique<host::ExtentFs>(*_host, *_ssd);
    _pageCache =
        std::make_unique<host::PageCache>(*_host, *_fs, *_nvmeDrv);
    for (auto &dev : extraSsdDevs) {
        extraNvmeDrvs.push_back(
            std::make_unique<host::NvmeHostDriver>(eq, *_host, *dev));
        extraFss.push_back(
            std::make_unique<host::ExtentFs>(*_host, *dev));
    }
    if (p.withHdc) {
        _hdcDrv = std::make_unique<hdclib::HdcDriver>(
            eq, *_host, *_engine, *_nvmeDrv, *_fs, *_tcp);
        _hdcDrv->setPageCache(_pageCache.get());
        for (std::size_t i = 0; i < extraSsdDevs.size(); ++i)
            _hdcDrv->addSsd(*extraNvmeDrvs[i], *extraFss[i],
                            extraSsdDevs[i]->bar0());
        _hdcLib = std::make_unique<hdclib::HdcLibrary>(*_host, *_hdcDrv);
    }
}

void
Node::bringUpHostStack(std::function<void()> done)
{
    initNvmeDrivers([this, done = std::move(done)] {
        _nicDrv->init(std::move(done));
    });
}

void
Node::bringUpDcs(std::function<void()> done)
{
    initNvmeDrivers([this, done = std::move(done)] {
        _hdcDrv->init(ssdBar, nicBar, std::move(done));
    });
}

void
Node::initNvmeDrivers(std::function<void()> done)
{
    // The stored body must not capture its own shared_ptr — that cycle
    // would keep the chain alive forever. The pending continuations
    // hold the strong reference instead.
    auto next = std::make_shared<std::function<void(std::size_t)>>();
    *next = [this, done = std::move(done),
             weak = std::weak_ptr(next)](std::size_t idx) mutable {
        if (idx > extraNvmeDrvs.size()) {
            done();
            return;
        }
        host::NvmeHostDriver &drv =
            idx == 0 ? *_nvmeDrv : *extraNvmeDrvs[idx - 1];
        drv.init([next = weak.lock(), idx] { (*next)(idx + 1); });
    };
    (*next)(0);
}

TwoNodeSystem::TwoNodeSystem(EventQueue &eq, NodeParams pa, NodeParams pb)
{
    pa.mac = {0x02, 0, 0, 0, 0, 0xaa};
    pb.mac = {0x02, 0, 0, 0, 0, 0xbb};
    a = std::make_unique<Node>(eq, "nodeA", pa);
    b = std::make_unique<Node>(eq, "nodeB", pb);
    _wire = std::make_unique<net::Wire>(eq, "wire");
    _wire->attach(a->nic(), b->nic());
}

} // namespace sys
} // namespace dcs
