#include "net/switch.hh"

#include <algorithm>

#include "net/wire.hh"
#include "sim/check.hh"
#include "sim/logging.hh"

namespace dcs {
namespace net {

Switch::Switch(EventQueue &eq, std::string name, SwitchParams p)
    : SimObject(eq, std::move(name)), params(p)
{
    DCS_CHECK_GE(params.ports, std::size_t(1), "switch needs a port");
    _ports.reserve(params.ports);
    for (std::size_t i = 0; i < params.ports; ++i)
        _ports.push_back(std::make_unique<Port>(*this, i));
    statsGroup().addCounter("frames_forwarded", forwarded,
                            "unicast frames forwarded");
    statsGroup().addCounter("frames_flooded", flooded,
                            "broadcast/unknown-dst frames flooded");
    statsGroup().addCounter("frames_dropped", dropped,
                            "frames dropped (egress queue full or no "
                            "egress wire)");
}

Switch::Port &
Switch::port(std::size_t i)
{
    DCS_CHECK_LT(i, _ports.size(), "%s: no such port", name().c_str());
    return *_ports.at(i);
}

const Switch::Port &
Switch::port(std::size_t i) const
{
    DCS_CHECK_LT(i, _ports.size(), "%s: no such port", name().c_str());
    return *_ports.at(i);
}

void
Switch::learn(const MacAddr &mac, std::size_t port_idx)
{
    DCS_CHECK_LT(port_idx, _ports.size(), "%s: learn on missing port",
                 name().c_str());
    const auto [it, inserted] = fdb.emplace(mac, port_idx);
    if (!inserted && it->second != port_idx)
        panic("%s: duplicate MAC %02x:%02x:%02x:%02x:%02x:%02x on "
              "ports %zu and %zu — every node needs a distinct MAC",
              name().c_str(), mac[0], mac[1], mac[2], mac[3], mac[4],
              mac[5], it->second, port_idx);
}

void
Switch::ingress(std::size_t port_idx, BufChain frame)
{
    Port &in = *_ports[port_idx];
    ++in.rxFrames;
    if (frame.size() < 6) {
        ++dropped;
        return; // runt: can't even address it
    }
    MacAddr dst{};
    frame.copyOut(0, dst.data(), dst.size());
    // Multicast/broadcast bit, or a destination we have no entry for:
    // flood everywhere except the ingress port.
    const bool multicast = (dst[0] & 1) != 0;
    const auto it = multicast ? fdb.end() : fdb.find(dst);
    if (it != fdb.end()) {
        if (it->second == port_idx) {
            ++dropped; // hairpin to its own source: filtered
            return;
        }
        ++forwarded;
        egress(it->second, std::move(frame));
        return;
    }
    ++flooded;
    for (std::size_t i = 0; i < _ports.size(); ++i) {
        if (i == port_idx)
            continue;
        egress(i, frame);
    }
}

void
Switch::egress(std::size_t port_idx, BufChain frame)
{
    Port *out = _ports[port_idx].get();
    if (!out->wire()) {
        ++dropped; // dark port
        return;
    }
    if (out->queued >= params.egressQueueFrames) {
        ++out->drops;
        ++dropped;
        return;
    }
    // Store-and-forward: the frame is fully buffered (the wire
    // delivers whole frames), crosses the pipeline in forwardLatency,
    // then re-serializes once the egress line frees up.
    const Tick ready = now() + params.forwardLatency;
    const Tick start = std::max(ready, out->txNextFree);
    const Tick done =
        start + transferTime(frame.size() + params.frameOverhead,
                             params.portGbps);
    out->txNextFree = done;
    ++out->queued;
    schedule(done - now(), [out, frame = std::move(frame)]() mutable {
        --out->queued;
        ++out->txFrames;
        out->wire()->transmit(*out, std::move(frame));
    });
}

} // namespace net
} // namespace dcs
