/**
 * @file
 * Attachment point for one end of a net::Wire.
 *
 * Historically a Wire could only join two NICs; the rack-scale
 * topology also hangs wires off switch ports, so the wire now talks
 * to this minimal interface. The base class owns the back-pointer to
 * the wire and enforces the single-attachment rule: silently
 * re-wiring an endpoint was a long-standing footgun (the old
 * Nic::setWire accepted anything), and with a shared switch in the
 * picture a stale attachment turns into cross-talk between nodes.
 */

#ifndef DCS_NET_ENDPOINT_HH
#define DCS_NET_ENDPOINT_HH

#include <string>

#include "mem/buffer.hh"
#include "net/packet.hh"

namespace dcs {
namespace net {

class Wire;

/** One attachable end of a wire: a NIC or a switch port. */
class WireEndpoint
{
  public:
    virtual ~WireEndpoint() = default;

    /** Frame fully propagated; runs on this endpoint's shard. */
    virtual void receiveFrame(BufChain frame) = 0;

    /** Stable name for diagnostics and panics. */
    virtual const std::string &endpointName() const = 0;

    /**
     * The MAC this endpoint answers to, or nullptr for transparent
     * endpoints (switch ports). Wire::attach uses it to reject
     * duplicate-MAC links at build time.
     */
    virtual const MacAddr *endpointMac() const { return nullptr; }

    /** The wire this endpoint is attached to (nullptr if none). */
    Wire *wire() const { return _wire; }

    /**
     * Record the attachment. Re-wiring an already-attached endpoint
     * is a DCS_CHECKED panic; pass nullptr to detach explicitly
     * first if a model genuinely needs to re-cable.
     */
    void setWire(Wire *w);

  private:
    Wire *_wire = nullptr;
};

} // namespace net
} // namespace dcs

#endif // DCS_NET_ENDPOINT_HH
