#include "net/packet.hh"

#include <cstring>

namespace dcs {
namespace net {

namespace {

void
put16(std::uint8_t *p, std::uint16_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 8);
    p[1] = static_cast<std::uint8_t>(v);
}

void
put32(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v);
}

std::uint16_t
get16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t
get32(const std::uint8_t *p)
{
    return (std::uint32_t(p[0]) << 24) | (std::uint32_t(p[1]) << 16) |
           (std::uint32_t(p[2]) << 8) | p[3];
}

/**
 * Ones-complement accumulator that preserves 16-bit word alignment
 * across feed() calls, so a payload scattered over chain segments
 * checksums identically to the same bytes fed contiguously.
 */
struct ChecksumAcc
{
    std::uint32_t sum = 0;
    bool odd = false; //!< next byte is the low half of a 16-bit word

    void
    feed(std::span<const std::uint8_t> d)
    {
        std::size_t i = 0;
        if (odd && !d.empty()) {
            sum += d[0];
            i = 1;
            odd = false;
        }
        for (; i + 1 < d.size(); i += 2)
            sum += (std::uint32_t(d[i]) << 8) | d[i + 1];
        if (i < d.size()) {
            sum += std::uint32_t(d[i]) << 8;
            odd = true;
        }
    }

    void
    feed(const BufChain &c)
    {
        for (const Buffer &seg : c.segments())
            feed(seg.span());
    }

    std::uint16_t
    finish() const
    {
        std::uint32_t s = sum;
        while (s >> 16)
            s = (s & 0xffff) + (s >> 16);
        return static_cast<std::uint16_t>(~s);
    }
};

} // namespace

std::uint16_t
inetChecksum(std::span<const std::uint8_t> data, std::uint32_t seed)
{
    ChecksumAcc acc;
    acc.sum = seed;
    acc.feed(data);
    return acc.finish();
}

std::uint16_t
inetChecksum(const BufChain &data, std::uint32_t seed)
{
    ChecksumAcc acc;
    acc.sum = seed;
    acc.feed(data);
    return acc.finish();
}

namespace {

/**
 * Header construction shared by the span and chain entry points: the
 * payload contributes only its length and its checksum-feed.
 */
template <typename FeedPayload>
std::array<std::uint8_t, fullHeaderLen>
buildHeadersImpl(const FlowInfo &flow, std::size_t payload_len,
                 std::uint16_t ip_id, FeedPayload &&feed_payload)
{
    std::array<std::uint8_t, fullHeaderLen> h{};
    std::uint8_t *eth = h.data();
    std::uint8_t *ip = eth + ethHeaderLen;
    std::uint8_t *tcp = ip + ipHeaderLen;

    // Ethernet.
    std::memcpy(eth, flow.dstMac.data(), 6);
    std::memcpy(eth + 6, flow.srcMac.data(), 6);
    put16(eth + 12, 0x0800);

    // IPv4.
    ip[0] = 0x45; // version 4, IHL 5
    ip[1] = 0;
    const auto total_len =
        static_cast<std::uint16_t>(ipHeaderLen + tcpHeaderLen +
                                   payload_len);
    put16(ip + 2, total_len);
    put16(ip + 4, ip_id);
    put16(ip + 6, 0x4000); // DF
    ip[8] = 64;            // TTL
    ip[9] = 6;             // TCP
    put16(ip + 10, 0);     // checksum placeholder
    put32(ip + 12, flow.srcIp);
    put32(ip + 16, flow.dstIp);
    put16(ip + 10, inetChecksum({ip, ipHeaderLen}));

    // TCP.
    put16(tcp + 0, flow.srcPort);
    put16(tcp + 2, flow.dstPort);
    put32(tcp + 4, flow.seq);
    put32(tcp + 8, flow.ack);
    tcp[12] = 0x50; // data offset = 5 words
    tcp[13] = flow.flags;
    put16(tcp + 14, flow.window);
    put16(tcp + 16, 0); // checksum placeholder
    put16(tcp + 18, 0);

    // TCP checksum over pseudo-header + TCP header + payload.
    ChecksumAcc acc;
    acc.sum += (flow.srcIp >> 16) + (flow.srcIp & 0xffff);
    acc.sum += (flow.dstIp >> 16) + (flow.dstIp & 0xffff);
    acc.sum += 6; // protocol
    acc.sum += static_cast<std::uint32_t>(tcpHeaderLen + payload_len);
    acc.feed({tcp, tcpHeaderLen});
    feed_payload(acc);
    put16(tcp + 16, acc.finish());

    return h;
}

} // namespace

std::array<std::uint8_t, fullHeaderLen>
buildHeaders(const FlowInfo &flow, std::span<const std::uint8_t> payload,
             std::uint16_t ip_id)
{
    return buildHeadersImpl(flow, payload.size(), ip_id,
                            [&](ChecksumAcc &acc) { acc.feed(payload); });
}

std::array<std::uint8_t, fullHeaderLen>
buildHeaders(const FlowInfo &flow, const BufChain &payload,
             std::uint16_t ip_id)
{
    return buildHeadersImpl(flow, payload.size(), ip_id,
                            [&](ChecksumAcc &acc) { acc.feed(payload); });
}

std::vector<std::uint8_t>
buildFrame(const FlowInfo &flow, std::span<const std::uint8_t> payload,
           std::uint16_t ip_id)
{
    const auto h = buildHeaders(flow, payload, ip_id);
    std::vector<std::uint8_t> frame;
    frame.reserve(h.size() + payload.size());
    frame.assign(h.begin(), h.end());
    if (!payload.empty())
        frame.insert(frame.end(), payload.data(),
                     payload.data() + payload.size());
    return frame;
}

BufChain
buildFrameChain(const FlowInfo &flow, BufChain payload,
                std::uint16_t ip_id)
{
    const auto h = buildHeaders(flow, payload, ip_id);
    // Header synthesis, not a payload copy: write the fresh 54 bytes
    // through a privately owned slab so bufstat stays payload-only.
    Buffer hdr = Buffer::allocate(h.size());
    std::memcpy(hdr.mutableData(), h.data(), h.size());
    BufChain frame(std::move(hdr));
    frame.append(payload);
    return frame;
}

FlowInfo
parseHeaderTemplate(std::span<const std::uint8_t> hdr)
{
    FlowInfo f;
    const std::uint8_t *eth = hdr.data();
    const std::uint8_t *ip = eth + ethHeaderLen;
    const std::uint8_t *tcp = ip + ipHeaderLen;
    std::memcpy(f.dstMac.data(), eth, 6);
    std::memcpy(f.srcMac.data(), eth + 6, 6);
    f.srcIp = get32(ip + 12);
    f.dstIp = get32(ip + 16);
    f.srcPort = get16(tcp + 0);
    f.dstPort = get16(tcp + 2);
    f.seq = get32(tcp + 4);
    f.ack = get32(tcp + 8);
    f.flags = tcp[13];
    f.window = get16(tcp + 14);
    return f;
}

namespace {

/**
 * Field extraction and IP-header validation over a contiguous copy of
 * the first 54 bytes; the caller bounds-checks total_len against the
 * real frame length and verifies the TCP checksum.
 */
bool
parseHeader54(const std::uint8_t *eth, ParsedFrame &out,
              std::uint16_t &total_len)
{
    const std::uint8_t *ip = eth + ethHeaderLen;
    const std::uint8_t *tcp = ip + ipHeaderLen;

    if (get16(eth + 12) != 0x0800)
        return false; // not IPv4
    if ((ip[0] >> 4) != 4 || (ip[0] & 0xf) != 5 || ip[9] != 6)
        return false; // not simple IPv4/TCP
    if (inetChecksum({ip, ipHeaderLen}) != 0)
        return false; // bad IP checksum

    total_len = get16(ip + 2);

    std::memcpy(out.flow.dstMac.data(), eth, 6);
    std::memcpy(out.flow.srcMac.data(), eth + 6, 6);
    out.flow.srcIp = get32(ip + 12);
    out.flow.dstIp = get32(ip + 16);
    out.ipId = get16(ip + 4);
    out.flow.srcPort = get16(tcp + 0);
    out.flow.dstPort = get16(tcp + 2);
    out.flow.seq = get32(tcp + 4);
    out.flow.ack = get32(tcp + 8);
    out.flow.flags = tcp[13];
    out.flow.window = get16(tcp + 14);

    const std::size_t tcp_hdr = std::size_t(tcp[12] >> 4) * 4;
    out.payloadOffset = ethHeaderLen + ipHeaderLen + tcp_hdr;
    out.payloadLen = ethHeaderLen + total_len - out.payloadOffset;
    return true;
}

std::uint32_t
tcpPseudoSeed(const ParsedFrame &f, std::uint16_t total_len)
{
    std::uint32_t seed = 0;
    seed += (f.flow.srcIp >> 16) + (f.flow.srcIp & 0xffff);
    seed += (f.flow.dstIp >> 16) + (f.flow.dstIp & 0xffff);
    seed += 6;
    seed += static_cast<std::uint32_t>(total_len - ipHeaderLen);
    return seed;
}

} // namespace

std::optional<ParsedFrame>
parseFrame(std::span<const std::uint8_t> frame)
{
    if (frame.size() < fullHeaderLen)
        return std::nullopt;

    ParsedFrame out;
    std::uint16_t total_len = 0;
    if (!parseHeader54(frame.data(), out, total_len))
        return std::nullopt;
    if (total_len < ipHeaderLen + tcpHeaderLen ||
        ethHeaderLen + total_len > frame.size())
        return std::nullopt;

    // Verify the TCP checksum (pseudo-header seeded).
    const std::uint16_t csum = inetChecksum(
        frame.subspan(ethHeaderLen + ipHeaderLen, total_len - ipHeaderLen),
        tcpPseudoSeed(out, total_len));
    if (csum != 0)
        return std::nullopt;

    return out;
}

std::optional<ParsedFrame>
parseFrame(const BufChain &frame)
{
    if (frame.size() < fullHeaderLen)
        return std::nullopt;
    // Fast path: a contiguous frame parses in place.
    if (frame.segments().size() == 1)
        return parseFrame(frame.segments().front().span());

    std::array<std::uint8_t, fullHeaderLen> hdr;
    frame.copyOut(0, hdr.data(), hdr.size());

    ParsedFrame out;
    std::uint16_t total_len = 0;
    if (!parseHeader54(hdr.data(), out, total_len))
        return std::nullopt;
    if (total_len < ipHeaderLen + tcpHeaderLen ||
        ethHeaderLen + total_len > frame.size())
        return std::nullopt;

    const std::uint16_t csum = inetChecksum(
        frame.slice(ethHeaderLen + ipHeaderLen, total_len - ipHeaderLen),
        tcpPseudoSeed(out, total_len));
    if (csum != 0)
        return std::nullopt;

    return out;
}

} // namespace net
} // namespace dcs
