#include "net/packet.hh"

#include <cstring>

namespace dcs {
namespace net {

namespace {

void
put16(std::uint8_t *p, std::uint16_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 8);
    p[1] = static_cast<std::uint8_t>(v);
}

void
put32(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v);
}

std::uint16_t
get16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t
get32(const std::uint8_t *p)
{
    return (std::uint32_t(p[0]) << 24) | (std::uint32_t(p[1]) << 16) |
           (std::uint32_t(p[2]) << 8) | p[3];
}

} // namespace

std::uint16_t
inetChecksum(std::span<const std::uint8_t> data, std::uint32_t seed)
{
    std::uint32_t sum = seed;
    std::size_t i = 0;
    for (; i + 1 < data.size(); i += 2)
        sum += (std::uint32_t(data[i]) << 8) | data[i + 1];
    if (i < data.size())
        sum += std::uint32_t(data[i]) << 8;
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<std::uint16_t>(~sum);
}

std::array<std::uint8_t, fullHeaderLen>
buildHeaders(const FlowInfo &flow, std::span<const std::uint8_t> payload,
             std::uint16_t ip_id)
{
    std::array<std::uint8_t, fullHeaderLen> h{};
    std::uint8_t *eth = h.data();
    std::uint8_t *ip = eth + ethHeaderLen;
    std::uint8_t *tcp = ip + ipHeaderLen;

    // Ethernet.
    std::memcpy(eth, flow.dstMac.data(), 6);
    std::memcpy(eth + 6, flow.srcMac.data(), 6);
    put16(eth + 12, 0x0800);

    // IPv4.
    ip[0] = 0x45; // version 4, IHL 5
    ip[1] = 0;
    const auto total_len =
        static_cast<std::uint16_t>(ipHeaderLen + tcpHeaderLen +
                                   payload.size());
    put16(ip + 2, total_len);
    put16(ip + 4, ip_id);
    put16(ip + 6, 0x4000); // DF
    ip[8] = 64;            // TTL
    ip[9] = 6;             // TCP
    put16(ip + 10, 0);     // checksum placeholder
    put32(ip + 12, flow.srcIp);
    put32(ip + 16, flow.dstIp);
    put16(ip + 10, inetChecksum({ip, ipHeaderLen}));

    // TCP.
    put16(tcp + 0, flow.srcPort);
    put16(tcp + 2, flow.dstPort);
    put32(tcp + 4, flow.seq);
    put32(tcp + 8, flow.ack);
    tcp[12] = 0x50; // data offset = 5 words
    tcp[13] = flow.flags;
    put16(tcp + 14, flow.window);
    put16(tcp + 16, 0); // checksum placeholder
    put16(tcp + 18, 0);

    // TCP checksum over pseudo-header + TCP header + payload.
    std::uint32_t seed = 0;
    seed += (flow.srcIp >> 16) + (flow.srcIp & 0xffff);
    seed += (flow.dstIp >> 16) + (flow.dstIp & 0xffff);
    seed += 6; // protocol
    seed += static_cast<std::uint32_t>(tcpHeaderLen + payload.size());
    std::uint32_t sum = seed;
    auto accumulate = [&sum](std::span<const std::uint8_t> d, bool odd_tail) {
        std::size_t i = 0;
        for (; i + 1 < d.size(); i += 2)
            sum += (std::uint32_t(d[i]) << 8) | d[i + 1];
        if (i < d.size() && odd_tail)
            sum += std::uint32_t(d[i]) << 8;
    };
    accumulate({tcp, tcpHeaderLen}, true);
    accumulate(payload, true);
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    put16(tcp + 16, static_cast<std::uint16_t>(~sum));

    return h;
}

std::vector<std::uint8_t>
buildFrame(const FlowInfo &flow, std::span<const std::uint8_t> payload,
           std::uint16_t ip_id)
{
    const auto h = buildHeaders(flow, payload, ip_id);
    std::vector<std::uint8_t> frame;
    frame.reserve(h.size() + payload.size());
    frame.assign(h.begin(), h.end());
    if (!payload.empty())
        frame.insert(frame.end(), payload.data(),
                     payload.data() + payload.size());
    return frame;
}

FlowInfo
parseHeaderTemplate(std::span<const std::uint8_t> hdr)
{
    FlowInfo f;
    const std::uint8_t *eth = hdr.data();
    const std::uint8_t *ip = eth + ethHeaderLen;
    const std::uint8_t *tcp = ip + ipHeaderLen;
    std::memcpy(f.dstMac.data(), eth, 6);
    std::memcpy(f.srcMac.data(), eth + 6, 6);
    f.srcIp = get32(ip + 12);
    f.dstIp = get32(ip + 16);
    f.srcPort = get16(tcp + 0);
    f.dstPort = get16(tcp + 2);
    f.seq = get32(tcp + 4);
    f.ack = get32(tcp + 8);
    f.flags = tcp[13];
    f.window = get16(tcp + 14);
    return f;
}

std::optional<ParsedFrame>
parseFrame(std::span<const std::uint8_t> frame)
{
    if (frame.size() < fullHeaderLen)
        return std::nullopt;
    const std::uint8_t *eth = frame.data();
    const std::uint8_t *ip = eth + ethHeaderLen;
    const std::uint8_t *tcp = ip + ipHeaderLen;

    if (get16(eth + 12) != 0x0800)
        return std::nullopt; // not IPv4
    if ((ip[0] >> 4) != 4 || (ip[0] & 0xf) != 5 || ip[9] != 6)
        return std::nullopt; // not simple IPv4/TCP
    if (inetChecksum({ip, ipHeaderLen}) != 0)
        return std::nullopt; // bad IP checksum

    const std::uint16_t total_len = get16(ip + 2);
    if (total_len < ipHeaderLen + tcpHeaderLen ||
        ethHeaderLen + total_len > frame.size())
        return std::nullopt;

    ParsedFrame out;
    std::memcpy(out.flow.dstMac.data(), eth, 6);
    std::memcpy(out.flow.srcMac.data(), eth + 6, 6);
    out.flow.srcIp = get32(ip + 12);
    out.flow.dstIp = get32(ip + 16);
    out.ipId = get16(ip + 4);
    out.flow.srcPort = get16(tcp + 0);
    out.flow.dstPort = get16(tcp + 2);
    out.flow.seq = get32(tcp + 4);
    out.flow.ack = get32(tcp + 8);
    out.flow.flags = tcp[13];
    out.flow.window = get16(tcp + 14);

    const std::size_t tcp_hdr = std::size_t(tcp[12] >> 4) * 4;
    out.payloadOffset = ethHeaderLen + ipHeaderLen + tcp_hdr;
    out.payloadLen = ethHeaderLen + total_len - out.payloadOffset;

    // Verify the TCP checksum (pseudo-header seeded).
    std::uint32_t seed = 0;
    seed += (out.flow.srcIp >> 16) + (out.flow.srcIp & 0xffff);
    seed += (out.flow.dstIp >> 16) + (out.flow.dstIp & 0xffff);
    seed += 6;
    seed += static_cast<std::uint32_t>(total_len - ipHeaderLen);
    const std::uint16_t csum = inetChecksum(
        frame.subspan(ethHeaderLen + ipHeaderLen, total_len - ipHeaderLen),
        seed);
    if (csum != 0)
        return std::nullopt;

    return out;
}

} // namespace net
} // namespace dcs
