/**
 * @file
 * Ethernet / IPv4 / TCP frame construction and parsing with real bytes.
 *
 * The HDC Engine's NIC controller must generate protocol headers in
 * hardware and parse received packets to gather payloads (paper
 * §III-C/§IV-C), so the simulation works on genuine wire-format frames
 * with correct lengths and checksums, not abstract packet objects.
 */

#ifndef DCS_NET_PACKET_HH
#define DCS_NET_PACKET_HH

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "mem/buffer.hh"

namespace dcs {
namespace net {

using MacAddr = std::array<std::uint8_t, 6>;

/** Ethernet (14) + IPv4 (20) + TCP (20) header bytes. */
constexpr std::size_t ethHeaderLen = 14;
constexpr std::size_t ipHeaderLen = 20;
constexpr std::size_t tcpHeaderLen = 20;
constexpr std::size_t fullHeaderLen =
    ethHeaderLen + ipHeaderLen + tcpHeaderLen;

/** TCP flag bits. */
namespace tcpflags {
constexpr std::uint8_t fin = 0x01;
constexpr std::uint8_t syn = 0x02;
constexpr std::uint8_t rst = 0x04;
constexpr std::uint8_t psh = 0x08;
constexpr std::uint8_t ack = 0x10;
} // namespace tcpflags

/** Everything needed to frame one TCP segment. */
struct FlowInfo
{
    MacAddr srcMac{};
    MacAddr dstMac{};
    std::uint32_t srcIp = 0;
    std::uint32_t dstIp = 0;
    std::uint16_t srcPort = 0;
    std::uint16_t dstPort = 0;
    std::uint32_t seq = 0;
    std::uint32_t ack = 0;
    std::uint16_t window = 0xffff;
    std::uint8_t flags = tcpflags::ack;
};

/** Parsed view of a received frame. */
struct ParsedFrame
{
    FlowInfo flow;      //!< as seen on the wire (src = sender)
    std::size_t payloadOffset = 0;
    std::size_t payloadLen = 0;
    std::uint16_t ipId = 0;
};

/** RFC 1071 ones-complement checksum over @p data (+ optional seed). */
std::uint16_t inetChecksum(std::span<const std::uint8_t> data,
                           std::uint32_t seed = 0);

/**
 * Checksum over a scatter-gather chain, preserving 16-bit alignment
 * across segment boundaries (bit-identical to the contiguous form).
 */
std::uint16_t inetChecksum(const BufChain &data, std::uint32_t seed = 0);

/**
 * Build the 54-byte header block for a segment carrying
 * @p payload_len bytes of @p payload (needed for the TCP checksum).
 * The payload itself is NOT copied; callers append or DMA it.
 */
std::array<std::uint8_t, fullHeaderLen>
buildHeaders(const FlowInfo &flow, std::span<const std::uint8_t> payload,
             std::uint16_t ip_id);

/** As above, checksumming a scatter-gather payload without copying. */
std::array<std::uint8_t, fullHeaderLen>
buildHeaders(const FlowInfo &flow, const BufChain &payload,
             std::uint16_t ip_id);

/** Build a complete frame: headers + payload copy. */
std::vector<std::uint8_t> buildFrame(const FlowInfo &flow,
                                     std::span<const std::uint8_t> payload,
                                     std::uint16_t ip_id);

/**
 * Build a frame as a chain: one freshly written header segment
 * followed by the payload's segments as shared views (zero-copy).
 */
BufChain buildFrameChain(const FlowInfo &flow, BufChain payload,
                         std::uint16_t ip_id);

/**
 * Parse and validate @p frame. Returns std::nullopt for non-IPv4/TCP
 * frames or checksum failures.
 */
std::optional<ParsedFrame> parseFrame(std::span<const std::uint8_t> frame);

/** As above over a scatter-gather frame; contiguous chains parse in
 *  place, split chains copy only the 54 header bytes. */
std::optional<ParsedFrame> parseFrame(const BufChain &frame);

/**
 * Extract FlowInfo fields from a 54-byte header template without
 * validating checksums (used by the NIC's LSO engine, which rewrites
 * lengths and checksums per segment anyway).
 */
FlowInfo parseHeaderTemplate(std::span<const std::uint8_t> hdr);

/** Pack a dotted-quad IPv4 address. */
constexpr std::uint32_t
ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
{
    return (std::uint32_t(a) << 24) | (std::uint32_t(b) << 16) |
           (std::uint32_t(c) << 8) | d;
}

} // namespace net
} // namespace dcs

#endif // DCS_NET_PACKET_HH
