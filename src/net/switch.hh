/**
 * @file
 * Top-of-rack Ethernet switch model.
 *
 * Store-and-forward with a static forwarding database: each port is a
 * WireEndpoint, ingress reads the destination MAC from the frame's
 * first six bytes, and the frame is re-serialized onto the egress
 * port's line after a fixed forwarding latency. Per-port egress
 * queues bound buffering; a full queue tail-drops (counted).
 *
 * The FDB is populated up front by Cluster (learn() per node) rather
 * than learned from traffic — rack membership is static — which also
 * gives the duplicate-MAC bugfix its teeth: two nodes advertising the
 * same MAC is detected at build time instead of silently misrouting.
 *
 * In the sharded cluster the switch owns its own shard: every port's
 * wire crosses from a node shard to the switch shard, so the wire
 * propagation delay is the lookahead on both hops (node -> switch,
 * switch -> node), and the switch's internal queueing stays ordinary
 * single-threaded event scheduling on its own queue.
 */

#ifndef DCS_NET_SWITCH_HH
#define DCS_NET_SWITCH_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/endpoint.hh"
#include "net/packet.hh"
#include "sim/sim_object.hh"

namespace dcs {
namespace net {

/** Timing/capacity knobs (defaults ~ a 10-GbE cut-price ToR). */
struct SwitchParams
{
    std::size_t ports = 4;
    double portGbps = 10.0;
    std::uint32_t frameOverhead = 24; //!< preamble + CRC + IFG bytes
    /** Ingress-to-egress pipeline latency (lookup + crossbar). */
    Tick forwardLatency = nanoseconds(800);
    /** Egress queue bound, in frames; beyond it the tail drops. */
    std::size_t egressQueueFrames = 256;
};

/** The ToR switch. */
class Switch : public SimObject
{
  public:
    /** One switch port; attach a Wire between it and a NIC. */
    class Port : public WireEndpoint
    {
      public:
        Port(Switch &sw, std::size_t index)
            : sw(sw), index(index),
              _name(sw.name() + ".p" + std::to_string(index))
        {
        }

        void
        receiveFrame(BufChain frame) override
        {
            sw.ingress(index, std::move(frame));
        }

        const std::string &endpointName() const override { return _name; }

        /** @name Introspection counters. */
        /** @{ */
        std::uint64_t framesIn() const { return rxFrames; }
        std::uint64_t framesOut() const { return txFrames; }
        std::uint64_t framesDropped() const { return drops; }
        std::size_t queueDepth() const { return queued; }
        /** @} */

      private:
        friend class Switch;

        Switch &sw;
        std::size_t index;
        std::string _name;
        Tick txNextFree = 0;   //!< egress line busy until here
        std::size_t queued = 0;
        std::uint64_t rxFrames = 0;
        std::uint64_t txFrames = 0;
        std::uint64_t drops = 0;
    };

    Switch(EventQueue &eq, std::string name, SwitchParams p = {});

    std::size_t portCount() const { return _ports.size(); }
    Port &port(std::size_t i);
    const Port &port(std::size_t i) const;

    /**
     * Pin @p mac to @p port in the forwarding database. Registering a
     * MAC already owned by another port panics: duplicate MACs on one
     * switch silently steal each other's traffic.
     */
    void learn(const MacAddr &mac, std::size_t port);

    /** @name Aggregate counters. */
    /** @{ */
    std::uint64_t framesForwarded() const { return forwarded; }
    std::uint64_t framesFlooded() const { return flooded; }
    std::uint64_t framesDropped() const { return dropped; }
    /** @} */

  private:
    void ingress(std::size_t port, BufChain frame);
    /** Queue @p frame for (re)serialization out of @p port. */
    void egress(std::size_t port, BufChain frame);

    SwitchParams params;
    std::vector<std::unique_ptr<Port>> _ports; //!< stable addresses
    // Ordered map: FDB iteration order is part of flood determinism.
    std::map<MacAddr, std::size_t> fdb;
    std::uint64_t forwarded = 0;
    std::uint64_t flooded = 0;
    std::uint64_t dropped = 0;
};

} // namespace net
} // namespace dcs

#endif // DCS_NET_SWITCH_HH
