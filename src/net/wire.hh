/**
 * @file
 * Point-to-point Ethernet wire between two NICs.
 */

#ifndef DCS_NET_WIRE_HH
#define DCS_NET_WIRE_HH

#include <cstdint>
#include <vector>

#include "mem/buffer.hh"
#include "sim/sim_object.hh"

namespace dcs {
namespace nic {
class Nic;
}

namespace net {

/** Simple full-duplex cable with propagation delay. */
class Wire : public SimObject
{
  public:
    Wire(EventQueue &eq, std::string name,
         Tick propagation = microseconds(2))
        : SimObject(eq, std::move(name)), propagation(propagation)
    {
    }

    /** Connect both ends. */
    void attach(nic::Nic &a, nic::Nic &b);

    /** Deliver @p frame from @p from to the opposite end. */
    void transmit(nic::Nic &from, BufChain frame);
    void
    transmit(nic::Nic &from, std::vector<std::uint8_t> frame)
    {
        transmit(from, BufChain(Buffer::fromVector(std::move(frame))));
    }

    std::uint64_t framesCarried() const { return frames; }
    std::uint64_t bytesCarried() const { return bytes; }

  private:
    Tick propagation;
    nic::Nic *endA = nullptr;
    nic::Nic *endB = nullptr;
    std::uint64_t frames = 0;
    std::uint64_t bytes = 0;
};

} // namespace net
} // namespace dcs

#endif // DCS_NET_WIRE_HH
