/**
 * @file
 * Point-to-point Ethernet wire between two endpoints (NIC or switch
 * port), optionally crossing simulation shards.
 */

#ifndef DCS_NET_WIRE_HH
#define DCS_NET_WIRE_HH

#include <cstdint>
#include <vector>

#include "mem/buffer.hh"
#include "net/endpoint.hh"
#include "sim/sim_object.hh"

namespace dcs {
namespace sim {
class ShardMesh;
}

namespace net {

/**
 * Simple full-duplex cable with propagation delay.
 *
 * Two delivery paths:
 *  - same-queue (default): the delivery is an ordinary event on this
 *    wire's queue, labelled with the wire's name — byte-identical to
 *    the historical two-node event stream;
 *  - cross-shard (after routeVia()): the delivery is posted into the
 *    destination shard's mesh inbox and injected at the next barrier.
 *    The propagation delay doubles as the conservative lookahead.
 *
 * Frame/byte counters account at *delivery*: a frame mid-flight shows
 * up in framesInFlight(), not framesCarried(). (They used to count at
 * enqueue, which over-reported while frames were still propagating.)
 */
class Wire : public SimObject
{
  public:
    Wire(EventQueue &eq, std::string name,
         Tick propagation = microseconds(2))
        : SimObject(eq, std::move(name)), propagation(propagation)
    {
    }

    /**
     * Connect both ends. Attaching an already-attached wire or
     * endpoint, or two endpoints advertising the same MAC, is a
     * DCS_CHECKED panic.
     */
    void attach(WireEndpoint &a, WireEndpoint &b);

    /**
     * Route deliveries through @p mesh: endpoint a (first argument of
     * attach) lives on logical mesh endpoint @p idA whose owner queue
     * is @p eqA, likewise b. Call once, after attach(). transmit()
     * then stamps deliveries with the *sender's* clock and posts them
     * to the destination shard.
     */
    void routeVia(sim::ShardMesh &mesh, std::size_t idA, EventQueue &eqA,
                  std::size_t idB, EventQueue &eqB);

    /** Deliver @p frame from @p from to the opposite end. */
    void transmit(WireEndpoint &from, BufChain frame);
    void
    transmit(WireEndpoint &from, std::vector<std::uint8_t> frame)
    {
        transmit(from, BufChain(Buffer::fromVector(std::move(frame))));
    }

    /** Frames/bytes fully delivered to an endpoint. */
    std::uint64_t
    framesCarried() const
    {
        return ends[0].rxFrames + ends[1].rxFrames;
    }
    std::uint64_t
    bytesCarried() const
    {
        return ends[0].rxBytes + ends[1].rxBytes;
    }

    /** Frames transmitted but still propagating. */
    std::uint64_t
    framesInFlight() const
    {
        return (ends[0].txFrames + ends[1].txFrames) -
               (ends[0].rxFrames + ends[1].rxFrames);
    }

    Tick propagationDelay() const { return propagation; }

  private:
    /**
     * Per-end state. In cross-shard mode every field of ends[i] is
     * written only by end i's owner thread (it transmits from and
     * receives into the same shard), and the aggregate accessors are
     * read at quiescence — no locks needed.
     */
    struct End
    {
        WireEndpoint *ep = nullptr;
        EventQueue *eq = nullptr; //!< owner queue (cross-shard mode)
        std::size_t meshId = 0;
        std::uint64_t txFrames = 0;
        std::uint64_t txBytes = 0;
        std::uint64_t rxFrames = 0;
        std::uint64_t rxBytes = 0;
    };

    /** Runs on the destination end's thread. */
    void deliver(std::uint8_t dst_idx, BufChain frame);

    Tick propagation;
    sim::ShardMesh *mesh = nullptr;
    End ends[2];
};

} // namespace net
} // namespace dcs

#endif // DCS_NET_WIRE_HH
