#include "net/wire.hh"

#include "sim/check.hh"
#include "sim/logging.hh"
#include "sim/shard.hh"

namespace dcs {
namespace net {

void
WireEndpoint::setWire(Wire *w)
{
    DCS_INVARIANT(!w || !_wire,
                  "%s: already attached to wire %s — re-wiring is a bug",
                  endpointName().c_str(), _wire->name().c_str());
    _wire = w;
}

void
Wire::attach(WireEndpoint &a, WireEndpoint &b)
{
    DCS_INVARIANT(!ends[0].ep && !ends[1].ep,
                  "%s: attach on an already-attached wire",
                  name().c_str());
    DCS_INVARIANT(&a != &b, "%s: both ends are the same endpoint (%s)",
                  name().c_str(), a.endpointName().c_str());
    const MacAddr *ma = a.endpointMac();
    const MacAddr *mb = b.endpointMac();
    DCS_INVARIANT(!ma || !mb || *ma != *mb,
                  "%s: duplicate MAC on both ends (%s, %s)",
                  name().c_str(), a.endpointName().c_str(),
                  b.endpointName().c_str());
    ends[0].ep = &a;
    ends[1].ep = &b;
    a.setWire(this);
    b.setWire(this);
}

void
Wire::routeVia(sim::ShardMesh &new_mesh, std::size_t idA, EventQueue &eqA,
               std::size_t idB, EventQueue &eqB)
{
    DCS_INVARIANT(ends[0].ep && ends[1].ep,
                  "%s: routeVia before attach", name().c_str());
    DCS_INVARIANT(!mesh, "%s: routeVia called twice", name().c_str());
    DCS_CHECK_GE(propagation, new_mesh.lookahead(),
                 "%s: propagation below the mesh lookahead breaks the "
                 "conservative window",
                 name().c_str());
    mesh = &new_mesh;
    ends[0].meshId = idA;
    ends[0].eq = &eqA;
    ends[1].meshId = idB;
    ends[1].eq = &eqB;
}

void
Wire::transmit(WireEndpoint &from, BufChain frame)
{
    if (!ends[0].ep || !ends[1].ep)
        panic("%s: transmit before both ends attached", name().c_str());
    const std::uint8_t s = (&from == ends[0].ep) ? 0 : 1;
    DCS_INVARIANT(&from == ends[s].ep,
                  "%s: transmit from unattached endpoint %s",
                  name().c_str(), from.endpointName().c_str());
    const std::uint8_t d = 1 - s;
    End &src = ends[s];
    ++src.txFrames;
    src.txBytes += frame.size();
    if (mesh) {
        // Stamp with the sender's clock: in cross-shard mode this
        // wire's own queue is just a stats anchor and may lag.
        const Tick when = src.eq->now() + propagation;
        mesh->post(src.meshId, ends[d].meshId, when,
                   [this, d, frame = std::move(frame)]() mutable {
                       deliver(d, std::move(frame));
                   });
        return;
    }
    schedule(propagation, [this, d, frame = std::move(frame)]() mutable {
        deliver(d, std::move(frame));
    });
}

void
Wire::deliver(std::uint8_t dst_idx, BufChain frame)
{
    End &dst = ends[dst_idx];
    ++dst.rxFrames;
    dst.rxBytes += frame.size();
    dst.ep->receiveFrame(std::move(frame));
}

} // namespace net
} // namespace dcs
