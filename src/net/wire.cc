#include "net/wire.hh"

#include "nic/nic.hh"
#include "sim/logging.hh"

namespace dcs {
namespace net {

void
Wire::attach(nic::Nic &a, nic::Nic &b)
{
    endA = &a;
    endB = &b;
    a.setWire(this);
    b.setWire(this);
}

void
Wire::transmit(nic::Nic &from, BufChain frame)
{
    if (!endA || !endB)
        panic("%s: transmit before both ends attached", name().c_str());
    nic::Nic *to = (&from == endA) ? endB : endA;
    ++frames;
    bytes += frame.size();
    schedule(propagation, [to, frame = std::move(frame)]() mutable {
        to->receiveFrame(std::move(frame));
    });
}

} // namespace net
} // namespace dcs
