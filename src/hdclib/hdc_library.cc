#include "hdclib/hdc_library.hh"

namespace dcs {
namespace hdclib {

using host::CpuCat;

void
HdcLibrary::invoke(D2dRequest req, host::TracePtr trace, D2dCallback done)
{
    // Request identity for the span tracer: reuse the flow assigned
    // to this request's LatencyTrace, or mint one. The "ioctl" span
    // brackets the whole call — user entry to completion callback.
    trace::Tracer &tr = host.tracer();
    if (tr.enabled()) {
        if (trace && trace->flow != 0)
            req.traceFlow = trace->flow;
        else
            req.traceFlow = tr.nextFlowId();
        if (trace)
            trace->flow = req.traceFlow;
        TRACE_SPAN_BEGIN(tr, host.now(), trackName, "ioctl", req.traceFlow,
                         req.traceFlow);
        done = [this, flow = req.traceFlow,
                done = std::move(done)](const D2dResult &r) {
            TRACE_SPAN_END(host.tracer(), host.now(), trackName, "ioctl",
                           flow);
            if (done)
                done(r);
        };
    }

    // One user/kernel boundary crossing for the ioctl — the whole
    // point of the API: a single call replaces the read/process/send
    // pipeline.
    host.cpu().run(CpuCat::User, host.costs().syscall,
                   [this, req = std::move(req), trace,
                    done = std::move(done)]() mutable {
                       driver.submit(req, trace, std::move(done));
                   });
}

void
HdcLibrary::sendFile(int file_fd, int sock_fd, std::uint64_t offset,
                     std::uint64_t len, ndp::Function fn,
                     std::vector<std::uint8_t> aux, bool want_digest,
                     host::TracePtr trace, D2dCallback done)
{
    D2dRequest req;
    req.src = hdc::Endpoint::Ssd;
    req.dst = hdc::Endpoint::Nic;
    req.srcFd = file_fd;
    req.dstFd = sock_fd;
    req.srcOffset = offset;
    req.len = len;
    req.fn = fn;
    req.aux = std::move(aux);
    req.wantDigest = want_digest;
    invoke(std::move(req), std::move(trace), std::move(done));
}

void
HdcLibrary::recvFile(int sock_fd, int file_fd, std::uint64_t offset,
                     std::uint64_t len, ndp::Function fn,
                     std::vector<std::uint8_t> aux, bool want_digest,
                     host::TracePtr trace, D2dCallback done)
{
    D2dRequest req;
    req.src = hdc::Endpoint::Nic;
    req.dst = hdc::Endpoint::Ssd;
    req.srcFd = sock_fd;
    req.dstFd = file_fd;
    req.dstOffset = offset;
    req.len = len;
    req.fn = fn;
    req.aux = std::move(aux);
    req.wantDigest = want_digest;
    invoke(std::move(req), std::move(trace), std::move(done));
}

void
HdcLibrary::readFileToBuffer(int file_fd, std::uint64_t offset,
                             std::uint64_t len, std::uint64_t buf_off,
                             ndp::Function fn,
                             std::vector<std::uint8_t> aux,
                             bool want_digest, host::TracePtr trace,
                             D2dCallback done)
{
    D2dRequest req;
    req.src = hdc::Endpoint::Ssd;
    req.dst = hdc::Endpoint::HdcBuffer;
    req.srcFd = file_fd;
    req.srcOffset = offset;
    req.dstBufOff = buf_off;
    req.len = len;
    req.fn = fn;
    req.aux = std::move(aux);
    req.wantDigest = want_digest;
    invoke(std::move(req), std::move(trace), std::move(done));
}

void
HdcLibrary::copyFile(int src_fd, int dst_fd, std::uint64_t src_offset,
                     std::uint64_t dst_offset, std::uint64_t len,
                     ndp::Function fn, std::vector<std::uint8_t> aux,
                     bool want_digest, std::uint8_t src_ssd,
                     std::uint8_t dst_ssd, host::TracePtr trace,
                     D2dCallback done)
{
    D2dRequest req;
    req.src = hdc::Endpoint::Ssd;
    req.dst = hdc::Endpoint::Ssd;
    req.srcFd = src_fd;
    req.dstFd = dst_fd;
    req.srcOffset = src_offset;
    req.dstOffset = dst_offset;
    req.srcSsd = src_ssd;
    req.dstSsd = dst_ssd;
    req.len = len;
    req.fn = fn;
    req.aux = std::move(aux);
    req.wantDigest = want_digest;
    invoke(std::move(req), std::move(trace), std::move(done));
}

void
HdcLibrary::sendBuffer(std::uint64_t buf_off, int sock_fd,
                       std::uint64_t len, ndp::Function fn,
                       std::vector<std::uint8_t> aux, bool want_digest,
                       host::TracePtr trace, D2dCallback done)
{
    D2dRequest req;
    req.src = hdc::Endpoint::HdcBuffer;
    req.dst = hdc::Endpoint::Nic;
    req.srcBufOff = buf_off;
    req.dstFd = sock_fd;
    req.len = len;
    req.fn = fn;
    req.aux = std::move(aux);
    req.wantDigest = want_digest;
    invoke(std::move(req), std::move(trace), std::move(done));
}

} // namespace hdclib
} // namespace dcs
