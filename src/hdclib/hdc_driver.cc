#include "hdclib/hdc_driver.hh"

#include <algorithm>
#include <cstring>

#include "nic/nic.hh"
#include "sim/logging.hh"

namespace dcs {
namespace hdclib {

using host::CpuCat;
using host::LatComp;

HdcDriver::HdcDriver(EventQueue &eq, host::Host &host,
                     hdc::HdcEngine &engine,
                     host::NvmeHostDriver &nvme_driver, host::ExtentFs &fs,
                     host::TcpStack &tcp)
    : SimObject(eq, host.name() + ".hdcdrv"), host(host), engine(engine),
      nvmeDriver(nvme_driver), fs(fs), tcp(tcp)
{
    setDoorbellBatch(0, 0);
    statsGroup().addCounter("submitted", submitted,
                            "D2D commands submitted");
    statsGroup().addCounter("rejected_local", _localRejects,
                            "submissions 429ed at the full driver queue");
    statsGroup().addValue(
        "doorbell_writes",
        [this] { return static_cast<double>(dbBatch.mmioWrites()); },
        "engine command-queue doorbell MMIO writes");
}

void
HdcDriver::setDoorbellBatch(std::uint32_t max, Tick holdoff)
{
    dbBatch.configure(
        max, holdoff,
        [this](std::uint32_t id, std::uint64_t flow) {
            host.fabric().memWriteScalar(host.bridge(),
                                         engine.doorbellBus(), id, 4, {});
            TRACE_FLOW(tracer(), now(), name(), "doorbell", flow);
        },
        [this](Tick d, std::function<void()> fn) {
            schedule(d, std::move(fn));
        });
}

int
HdcDriver::addSsd(host::NvmeHostDriver &driver, host::ExtentFs &fs_ref,
                  Addr bar0)
{
    if (_ready)
        panic("%s: addSsd after init", name().c_str());
    extraSsds.push_back({&driver, &fs_ref, bar0});
    return static_cast<int>(extraSsds.size());
}

host::ExtentFs &
HdcDriver::fsOf(std::uint8_t ssd_idx)
{
    if (ssd_idx == 0)
        return fs;
    return *extraSsds.at(ssd_idx - 1).fs;
}

void
HdcDriver::init(Addr ssd_bar0, Addr nic_bar0, std::function<void()> done)
{
    extArena = host.allocDma(maxOutstanding * 4096);
    auxArena = host.allocDma(maxOutstanding * 256);

    hdc::HdcDeviceConfig cfg;
    cfg.ssdBar0 = ssd_bar0;
    cfg.nicBar0 = nic_bar0;
    for (const auto &x : extraSsds)
        cfg.extraSsds.push_back({x.bar0, 2, 64});
    engine.configureDevices(cfg);

    // Route the engine's completion interrupt.
    const std::uint16_t vec = host.allocMsiVector();
    host.bridge().registerMsi(vec,
                              [this](std::uint16_t, std::uint32_t value) {
                                  onMsi(value);
                              });
    engine.setMsiAddress(host.bridge().msiAddr(vec));

    // Hand the NIC's rings to the engine (MMIO writes): ring bases in
    // engine BRAM, receive buffers in engine DRAM, no MSIs — the
    // engine reacts to completion writes directly.
    auto &fab = host.fabric();
    auto &br = host.bridge();
    // Register programming rides in scalar TLPs — no per-write
    // payload vectors.
    auto w32 = [&](Addr a, std::uint32_t v) {
        fab.memWriteScalar(br, a, v, 4, {});
    };
    auto w64 = [&](Addr a, std::uint64_t v) {
        fab.memWriteScalar(br, a, v, 8, {});
    };
    const hdc::HdcDeviceConfig &c = cfg;
    w64(nic_bar0 + nic::reg::sendRingBase, engine.nicSendRingBus());
    w32(nic_bar0 + nic::reg::sendRingSize, c.nicRingEntries);
    w64(nic_bar0 + nic::reg::sendCplBase, engine.nicSendCplBus());
    w64(nic_bar0 + nic::reg::recvRingBase, engine.nicRecvRingBus());
    w32(nic_bar0 + nic::reg::recvRingSize, c.nicRingEntries);
    w64(nic_bar0 + nic::reg::recvCplBase, engine.nicRecvCplBus());
    w64(nic_bar0 + nic::reg::msiSendAddr, 0);
    // The last register write carries a completion callback so RX
    // only starts once the NIC knows where its rings live.
    fab.memWriteScalar(br, nic_bar0 + nic::reg::msiRecvAddr, 0, 8,
                       [this] { engine.startNicRx(); });

    // Dedicate the NVMe queue pairs living in engine BRAM — one per
    // bound SSD, each created through that SSD's own host driver.
    // The stored body must not capture its own shared_ptr — that cycle
    // would keep the chain alive forever. The pending continuations
    // hold the strong reference instead.
    auto create_next = std::make_shared<std::function<void(std::size_t)>>();
    *create_next = [this, cfg, done = std::move(done),
                    weak = std::weak_ptr(create_next)](std::size_t idx) mutable {
        if (idx > extraSsds.size()) {
            _ready = true;
            if (done)
                done();
            return;
        }
        host::NvmeHostDriver &drv =
            idx == 0 ? nvmeDriver : *extraSsds[idx - 1].driver;
        drv.createDedicatedQueuePair(
            cfg.ssdQid, cfg.ssdQdepth, engine.nvmeSqBus(idx),
            engine.nvmeCqBus(idx),
            [create_next = weak.lock(), idx] { (*create_next)(idx + 1); });
    };
    (*create_next)(0);
}

int
HdcDriver::attachConnection(int sock_fd)
{
    auto it = connOfFd.find(sock_fd);
    if (it != connOfFd.end())
        return static_cast<int>(it->second);
    host::Connection *conn = tcp.findByFd(sock_fd);
    if (!conn || !conn->permitted)
        return -1;
    const std::uint32_t id = nextConnId++;
    connOfFd[sock_fd] = id;
    engine.registerConnection(id, conn->out, conn->nextRxSeq);
    return static_cast<int>(id);
}

std::uint32_t
HdcDriver::stageExtents(const D2dRequest &req, hdc::D2dCommand &cmd)
{
    // Resolve file endpoints into extent lists and stage them in the
    // DMA arena for the engine to fetch.
    std::vector<hdc::ExtentRec> recs;
    auto add = [&](host::ExtentFs &f, int fd, std::uint64_t offset,
                   std::uint32_t &count) {
        const auto extents = f.resolve(fd, offset, req.len);
        count = static_cast<std::uint32_t>(extents.size());
        for (const auto &e : extents)
            recs.push_back({e.lba, e.blocks});
    };
    if (req.src == hdc::Endpoint::Ssd)
        add(fsOf(req.srcSsd), req.srcFd, req.srcOffset, cmd.srcExtents);
    if (req.dst == hdc::Endpoint::Ssd)
        add(fsOf(req.dstSsd), req.dstFd, req.dstOffset, cmd.dstExtents);
    if (recs.empty())
        return 0;
    if (recs.size() * sizeof(hdc::ExtentRec) > 4096)
        fatal("hdcdrv: extent list exceeds staging slot (too fragmented)");
    const Addr slot =
        extArena + std::uint64_t(cmd.id % maxOutstanding) * 4096;
    host.dram().write(host.dramOffset(slot), recs.data(),
                      recs.size() * sizeof(hdc::ExtentRec));
    cmd.extListAddr = slot;
    return static_cast<std::uint32_t>(recs.size());
}

void
HdcDriver::submit(const D2dRequest &req, host::TracePtr trace,
                  std::function<void(const D2dResult &)> done)
{
    if (!_ready)
        panic("%s: submit before init", name().c_str());
    // Count commands admitted but still in the deferred lookup stage:
    // a same-tick burst must not slip past the gate while inflight is
    // momentarily empty (the 64-slot command ring would wrap).
    if (inflight.size() + preparing >= maxOutstanding) {
        if (rejectOnFull) {
            // Load-generator posture: 429 instead of a panic. The
            // command never reaches the engine, so no queue slot, no
            // doorbell, no MSI.
            ++_localRejects;
            schedule(0, [done = std::move(done)] {
                D2dResult r;
                r.status = 429;
                if (done)
                    done(r);
            });
            return;
        }
        panic("%s: command queue oversubscribed (%zu outstanding)",
              name().c_str(), inflight.size());
    }

    const Tick t0 = now();
    // Page-cache flush re-entry re-begins the same key: the span then
    // covers only the post-flush submission, which is what the
    // flush's own spans leave uncovered.
    TRACE_SPAN_BEGIN(tracer(), t0, name(), "submit", req.traceFlow,
                     req.traceFlow);

    // Security model: validate descriptor permissions up front.
    if (req.src == hdc::Endpoint::Ssd) {
        host::ExtentFs &f = fsOf(req.srcSsd);
        if (!f.isOpen(req.srcFd) || !f.inode(req.srcFd).readable)
            fatal("hdcdrv: source file descriptor not readable");
    }
    if (req.dst == hdc::Endpoint::Ssd) {
        host::ExtentFs &f = fsOf(req.dstSsd);
        if (!f.isOpen(req.dstFd) || !f.inode(req.dstFd).writable)
            fatal("hdcdrv: destination file descriptor not writable");
    }

    // Data consistency (§IV-B): if the source file's latest bytes sit
    // in page cache, write them back before the engine reads flash.
    if (pageCache && req.src == hdc::Endpoint::Ssd && req.srcSsd == 0 &&
        pageCache->dirty(req.srcFd)) {
        pageCache->flush(req.srcFd, trace,
                         [this, req, trace,
                          done = std::move(done)]() mutable {
                             submit(req, trace, std::move(done));
                         });
        return;
    }

    ++preparing;

    // Metadata retrieval: VFS extent lookup for file endpoints
    // (also covers the page-cache consistency check, §IV-B).
    const bool touches_fs =
        req.src == hdc::Endpoint::Ssd || req.dst == hdc::Endpoint::Ssd;
    const Tick meta_cost =
        touches_fs ? host.costs().vfsLookup : nanoseconds(200);

    host.cpu().run(CpuCat::FileSystem, meta_cost, [this, req, trace, t0,
                                                   done =
                                                       std::move(done)]() mutable {
        if (trace)
            trace->add(LatComp::FileSystem, now() - t0);
        const Tick t1 = now();

        hdc::D2dCommand cmd{};
        cmd.id = nextCmdId++;
        cmd.srcDev = static_cast<std::uint8_t>(req.src);
        cmd.dstDev = static_cast<std::uint8_t>(req.dst);
        cmd.fn = static_cast<std::uint8_t>(req.fn);
        cmd.flags = req.wantDigest ? hdc::d2dflags::wantDigest : 0;
        cmd.len = req.len;
        cmd.srcDevIdx = req.srcSsd;
        cmd.dstDevIdx = req.dstSsd;

        switch (req.src) {
          case hdc::Endpoint::Nic: {
            const int cid = attachConnection(req.srcFd);
            if (cid < 0)
                fatal("hdcdrv: source socket not attachable");
            cmd.srcAddr = static_cast<std::uint64_t>(cid);
            break;
          }
          case hdc::Endpoint::HdcBuffer:
            cmd.srcAddr = req.srcBufOff;
            break;
          case hdc::Endpoint::Ssd:
          case hdc::Endpoint::HostMem:
            // Addressed through the staged extent list below.
            break;
          default:
            fatal("hdcdrv: invalid source endpoint %d",
                  static_cast<int>(req.src));
        }
        switch (req.dst) {
          case hdc::Endpoint::Nic: {
            const int cid = attachConnection(req.dstFd);
            if (cid < 0)
                fatal("hdcdrv: destination socket not attachable");
            cmd.dstAddr = static_cast<std::uint64_t>(cid);
            break;
          }
          case hdc::Endpoint::HdcBuffer:
            cmd.dstAddr = req.dstBufOff;
            break;
          case hdc::Endpoint::Ssd:
          case hdc::Endpoint::HostMem:
            // Addressed through the staged extent list below.
            break;
          default:
            fatal("hdcdrv: invalid destination endpoint %d",
                  static_cast<int>(req.dst));
        }

        stageExtents(req, cmd);

        if (!req.aux.empty()) {
            const Addr slot =
                auxArena + std::uint64_t(cmd.id % maxOutstanding) * 256;
            host.dram().write(host.dramOffset(slot), req.aux.data(),
                              req.aux.size());
            cmd.auxAddr = slot;
            cmd.auxLen = static_cast<std::uint32_t>(req.aux.size());
        }

        // The wire command has no room for the flow id: bind it in
        // the tracer so the engine can recover it from cmd.id.
        if (req.traceFlow != 0)
            tracer().bindFlow(trace::key(engine.name(), cmd.id),
                              req.traceFlow);

        --preparing;
        inflight[cmd.id] = Pending{trace, std::move(done), req.wantDigest,
                                   now(), req.traceFlow};
        ++submitted;

        // Driver submit: build + forward the command (one 64-byte
        // posted MMIO write) and ring the doorbell.
        host.cpu().run(CpuCat::HdcDriver, host.costs().hdcSubmit,
                       [this, cmd, trace, t1, flow = req.traceFlow] {
                           if (trace)
                               trace->add(LatComp::DeviceControl,
                                          now() - t1);
                           std::vector<std::uint8_t> raw(sizeof(cmd));
                           std::memcpy(raw.data(), &cmd, sizeof(cmd));
                           const std::uint32_t slot_idx =
                               (cmd.id - 1) %
                               hdc::HdcEngine::cmdQueueEntries;
                           host.fabric().memWrite(host.bridge(),
                                                  engine.cmdSlotBus(
                                                      slot_idx),
                                                  std::move(raw), {});
                           // Attribution boundary: the doorbell value
                           // is posted here; the batcher's "doorbell"
                           // instant marks the actual MMIO write, so
                           // the gap is the batch-holdoff stage.
                           TRACE_FLOW(tracer(), now(), name(),
                                      "db_post", flow);
                           dbBatch.post(cmd.id, flow);
                           TRACE_SPAN_END(tracer(), now(), name(),
                                          "submit", flow);
                       });
    });
}

void
HdcDriver::onMsi(std::uint32_t value)
{
    const Tick t_irq = now();
    if (engine.params().msiCoalesce != 0) {
        // Coalesced mode: the MSI's value is the completion ring's
        // producer count; one interrupt covers a whole batch.
        host.cpu().run(CpuCat::Interrupt, host.costs().irqEntry,
                       [this, value, t_irq] {
                           drainCplRing(value, t_irq);
                       });
        return;
    }
    // Per-command mode: the value is the command id (bit 31 = NACK).
    host.cpu().run(CpuCat::Interrupt, host.costs().irqEntry,
                   [this, value, t_irq] {
                       finishCommand(value & ~hdc::HdcEngine::cplNackBit,
                                     (value & hdc::HdcEngine::cplNackBit) !=
                                         0,
                                     t_irq);
                   });
}

void
HdcDriver::drainCplRing(std::uint32_t produced, Tick t_irq)
{
    // Holdoff timers can fire after a threshold flush already raised
    // the MSI for the same entries; the counter comparison makes the
    // duplicate a no-op.
    if (static_cast<std::int32_t>(produced - cplConsumed) <= 0)
        return;
    const std::uint32_t span = produced - cplConsumed;
    if (span > hdc::HdcEngine::cmdQueueEntries)
        panic("%s: completion ring overrun (%u entries behind)",
              name().c_str(), span);
    const std::uint32_t start =
        cplConsumed % hdc::HdcEngine::cmdQueueEntries;
    cplConsumed = produced;

    // The window may wrap the ring: at most two contiguous bulk reads
    // replace per-command MSIs — that is the point of coalescing.
    const std::uint32_t first =
        std::min(span, hdc::HdcEngine::cmdQueueEntries - start);
    const Addr ring = engine.bar() + hdc::HdcEngine::cplRingOff;
    auto handle = [this, t_irq](const BufChain &raw, std::uint32_t n) {
        for (std::uint32_t i = 0; i < n; ++i) {
            std::uint32_t value = 0;
            raw.copyOut(std::uint64_t(i) * 4, &value, 4);
            finishCommand(value & ~hdc::HdcEngine::cplNackBit,
                          (value & hdc::HdcEngine::cplNackBit) != 0, t_irq);
        }
    };
    host.fabric().memRead(host.bridge(), ring + std::uint64_t(start) * 4,
                          std::uint64_t(first) * 4,
                          [handle, first](BufChain raw) {
                              handle(raw, first);
                          });
    if (span > first) {
        const std::uint32_t rest = span - first;
        host.fabric().memRead(host.bridge(), ring, std::uint64_t(rest) * 4,
                              [handle, rest](BufChain raw) {
                                  handle(raw, rest);
                              });
    }
}

void
HdcDriver::finishCommand(std::uint32_t cmd_id, bool rejected, Tick t_irq)
{
    auto it = inflight.find(cmd_id);
    if (it == inflight.end())
        panic("%s: completion for unknown command %u", name().c_str(),
              cmd_id);
    Pending p = std::move(it->second);
    inflight.erase(it);
    TRACE_FLOW(tracer(), t_irq, name(), "msi", p.flow);
    tracer().unbindFlow(trace::key(engine.name(), cmd_id));

    host.cpu().run(
        CpuCat::HdcDriver, host.costs().hdcComplete,
        [this, cmd_id, rejected, p = std::move(p), t_irq] {
            if (p.trace) {
                // Engine-side time: submit end -> IRQ.
                const Tick submit_end =
                    p.submitTick + host.costs().hdcSubmit;
                if (t_irq > submit_end)
                    p.trace->add(LatComp::Read, t_irq - submit_end);
                p.trace->add(LatComp::RequestCompletion, now() - t_irq);
            }
            if (rejected) {
                // Admission NACK: no data moved, no result slot.
                TRACE_SPAN(tracer(), t_irq, now() - t_irq, name(),
                           "complete", p.flow);
                D2dResult r;
                r.cmdId = cmd_id;
                r.status = 429;
                if (p.done)
                    p.done(r);
                return;
            }
            if (!p.wantDigest) {
                TRACE_SPAN(tracer(), t_irq, now() - t_irq, name(),
                           "complete", p.flow);
                if (p.done)
                    p.done(D2dResult{cmd_id, {}});
                return;
            }
            // Fetch the digest from the engine's result slot.
            host.fabric().memRead(
                host.bridge(), engine.resultSlotBus(cmd_id),
                hdc::HdcEngine::resultSlotSize,
                [this, cmd_id, t_irq, flow = p.flow,
                 done = std::move(p.done)](BufChain raw) {
                    std::uint32_t status = 0, len = 0;
                    raw.copyOut(0, &status, 4);
                    raw.copyOut(4, &len, 4);
                    D2dResult r;
                    r.cmdId = cmd_id;
                    if (status == 1 && len <= raw.size() - 8) {
                        r.digest.resize(len);
                        raw.copyOut(8, r.digest.data(), len);
                    }
                    TRACE_SPAN(tracer(), t_irq, now() - t_irq, name(),
                               "complete", flow);
                    if (done)
                        done(r);
                });
        });
}

} // namespace hdclib
} // namespace dcs
