#include "hdclib/hdc_driver.hh"

#include <cstring>

#include "nic/nic.hh"
#include "sim/logging.hh"

namespace dcs {
namespace hdclib {

using host::CpuCat;
using host::LatComp;

HdcDriver::HdcDriver(EventQueue &eq, host::Host &host,
                     hdc::HdcEngine &engine,
                     host::NvmeHostDriver &nvme_driver, host::ExtentFs &fs,
                     host::TcpStack &tcp)
    : SimObject(eq, host.name() + ".hdcdrv"), host(host), engine(engine),
      nvmeDriver(nvme_driver), fs(fs), tcp(tcp)
{
}

int
HdcDriver::addSsd(host::NvmeHostDriver &driver, host::ExtentFs &fs_ref,
                  Addr bar0)
{
    if (_ready)
        panic("%s: addSsd after init", name().c_str());
    extraSsds.push_back({&driver, &fs_ref, bar0});
    return static_cast<int>(extraSsds.size());
}

host::ExtentFs &
HdcDriver::fsOf(std::uint8_t ssd_idx)
{
    if (ssd_idx == 0)
        return fs;
    return *extraSsds.at(ssd_idx - 1).fs;
}

void
HdcDriver::init(Addr ssd_bar0, Addr nic_bar0, std::function<void()> done)
{
    extArena = host.allocDma(maxOutstanding * 4096);
    auxArena = host.allocDma(maxOutstanding * 256);

    hdc::HdcDeviceConfig cfg;
    cfg.ssdBar0 = ssd_bar0;
    cfg.nicBar0 = nic_bar0;
    for (const auto &x : extraSsds)
        cfg.extraSsds.push_back({x.bar0, 2, 64});
    engine.configureDevices(cfg);

    // Route the engine's completion interrupt.
    const std::uint16_t vec = host.allocMsiVector();
    host.bridge().registerMsi(vec,
                              [this](std::uint16_t, std::uint32_t value) {
                                  onMsi(value);
                              });
    engine.setMsiAddress(host.bridge().msiAddr(vec));

    // Hand the NIC's rings to the engine (MMIO writes): ring bases in
    // engine BRAM, receive buffers in engine DRAM, no MSIs — the
    // engine reacts to completion writes directly.
    auto &fab = host.fabric();
    auto &br = host.bridge();
    // Register programming rides in scalar TLPs — no per-write
    // payload vectors.
    auto w32 = [&](Addr a, std::uint32_t v) {
        fab.memWriteScalar(br, a, v, 4, {});
    };
    auto w64 = [&](Addr a, std::uint64_t v) {
        fab.memWriteScalar(br, a, v, 8, {});
    };
    const hdc::HdcDeviceConfig &c = cfg;
    w64(nic_bar0 + nic::reg::sendRingBase, engine.nicSendRingBus());
    w32(nic_bar0 + nic::reg::sendRingSize, c.nicRingEntries);
    w64(nic_bar0 + nic::reg::sendCplBase, engine.nicSendCplBus());
    w64(nic_bar0 + nic::reg::recvRingBase, engine.nicRecvRingBus());
    w32(nic_bar0 + nic::reg::recvRingSize, c.nicRingEntries);
    w64(nic_bar0 + nic::reg::recvCplBase, engine.nicRecvCplBus());
    w64(nic_bar0 + nic::reg::msiSendAddr, 0);
    // The last register write carries a completion callback so RX
    // only starts once the NIC knows where its rings live.
    fab.memWriteScalar(br, nic_bar0 + nic::reg::msiRecvAddr, 0, 8,
                       [this] { engine.startNicRx(); });

    // Dedicate the NVMe queue pairs living in engine BRAM — one per
    // bound SSD, each created through that SSD's own host driver.
    // The stored body must not capture its own shared_ptr — that cycle
    // would keep the chain alive forever. The pending continuations
    // hold the strong reference instead.
    auto create_next = std::make_shared<std::function<void(std::size_t)>>();
    *create_next = [this, cfg, done = std::move(done),
                    weak = std::weak_ptr(create_next)](std::size_t idx) mutable {
        if (idx > extraSsds.size()) {
            _ready = true;
            if (done)
                done();
            return;
        }
        host::NvmeHostDriver &drv =
            idx == 0 ? nvmeDriver : *extraSsds[idx - 1].driver;
        drv.createDedicatedQueuePair(
            cfg.ssdQid, cfg.ssdQdepth, engine.nvmeSqBus(idx),
            engine.nvmeCqBus(idx),
            [create_next = weak.lock(), idx] { (*create_next)(idx + 1); });
    };
    (*create_next)(0);
}

int
HdcDriver::attachConnection(int sock_fd)
{
    auto it = connOfFd.find(sock_fd);
    if (it != connOfFd.end())
        return static_cast<int>(it->second);
    host::Connection *conn = tcp.findByFd(sock_fd);
    if (!conn || !conn->permitted)
        return -1;
    const std::uint32_t id = nextConnId++;
    connOfFd[sock_fd] = id;
    engine.registerConnection(id, conn->out, conn->nextRxSeq);
    return static_cast<int>(id);
}

std::uint32_t
HdcDriver::stageExtents(const D2dRequest &req, hdc::D2dCommand &cmd)
{
    // Resolve file endpoints into extent lists and stage them in the
    // DMA arena for the engine to fetch.
    std::vector<hdc::ExtentRec> recs;
    auto add = [&](host::ExtentFs &f, int fd, std::uint64_t offset,
                   std::uint32_t &count) {
        const auto extents = f.resolve(fd, offset, req.len);
        count = static_cast<std::uint32_t>(extents.size());
        for (const auto &e : extents)
            recs.push_back({e.lba, e.blocks});
    };
    if (req.src == hdc::Endpoint::Ssd)
        add(fsOf(req.srcSsd), req.srcFd, req.srcOffset, cmd.srcExtents);
    if (req.dst == hdc::Endpoint::Ssd)
        add(fsOf(req.dstSsd), req.dstFd, req.dstOffset, cmd.dstExtents);
    if (recs.empty())
        return 0;
    if (recs.size() * sizeof(hdc::ExtentRec) > 4096)
        fatal("hdcdrv: extent list exceeds staging slot (too fragmented)");
    const Addr slot =
        extArena + std::uint64_t(cmd.id % maxOutstanding) * 4096;
    host.dram().write(host.dramOffset(slot), recs.data(),
                      recs.size() * sizeof(hdc::ExtentRec));
    cmd.extListAddr = slot;
    return static_cast<std::uint32_t>(recs.size());
}

void
HdcDriver::submit(const D2dRequest &req, host::TracePtr trace,
                  std::function<void(const D2dResult &)> done)
{
    if (!_ready)
        panic("%s: submit before init", name().c_str());
    if (inflight.size() >= maxOutstanding)
        panic("%s: command queue oversubscribed (%zu outstanding)",
              name().c_str(), inflight.size());

    const Tick t0 = now();
    // Page-cache flush re-entry re-begins the same key: the span then
    // covers only the post-flush submission, which is what the
    // flush's own spans leave uncovered.
    TRACE_SPAN_BEGIN(tracer(), t0, name(), "submit", req.traceFlow,
                     req.traceFlow);

    // Security model: validate descriptor permissions up front.
    if (req.src == hdc::Endpoint::Ssd) {
        host::ExtentFs &f = fsOf(req.srcSsd);
        if (!f.isOpen(req.srcFd) || !f.inode(req.srcFd).readable)
            fatal("hdcdrv: source file descriptor not readable");
    }
    if (req.dst == hdc::Endpoint::Ssd) {
        host::ExtentFs &f = fsOf(req.dstSsd);
        if (!f.isOpen(req.dstFd) || !f.inode(req.dstFd).writable)
            fatal("hdcdrv: destination file descriptor not writable");
    }

    // Data consistency (§IV-B): if the source file's latest bytes sit
    // in page cache, write them back before the engine reads flash.
    if (pageCache && req.src == hdc::Endpoint::Ssd && req.srcSsd == 0 &&
        pageCache->dirty(req.srcFd)) {
        pageCache->flush(req.srcFd, trace,
                         [this, req, trace,
                          done = std::move(done)]() mutable {
                             submit(req, trace, std::move(done));
                         });
        return;
    }

    // Metadata retrieval: VFS extent lookup for file endpoints
    // (also covers the page-cache consistency check, §IV-B).
    const bool touches_fs =
        req.src == hdc::Endpoint::Ssd || req.dst == hdc::Endpoint::Ssd;
    const Tick meta_cost =
        touches_fs ? host.costs().vfsLookup : nanoseconds(200);

    host.cpu().run(CpuCat::FileSystem, meta_cost, [this, req, trace, t0,
                                                   done =
                                                       std::move(done)]() mutable {
        if (trace)
            trace->add(LatComp::FileSystem, now() - t0);
        const Tick t1 = now();

        hdc::D2dCommand cmd{};
        cmd.id = nextCmdId++;
        cmd.srcDev = static_cast<std::uint8_t>(req.src);
        cmd.dstDev = static_cast<std::uint8_t>(req.dst);
        cmd.fn = static_cast<std::uint8_t>(req.fn);
        cmd.flags = req.wantDigest ? hdc::d2dflags::wantDigest : 0;
        cmd.len = req.len;
        cmd.srcDevIdx = req.srcSsd;
        cmd.dstDevIdx = req.dstSsd;

        switch (req.src) {
          case hdc::Endpoint::Nic: {
            const int cid = attachConnection(req.srcFd);
            if (cid < 0)
                fatal("hdcdrv: source socket not attachable");
            cmd.srcAddr = static_cast<std::uint64_t>(cid);
            break;
          }
          case hdc::Endpoint::HdcBuffer:
            cmd.srcAddr = req.srcBufOff;
            break;
          case hdc::Endpoint::Ssd:
          case hdc::Endpoint::HostMem:
            // Addressed through the staged extent list below.
            break;
          default:
            fatal("hdcdrv: invalid source endpoint %d",
                  static_cast<int>(req.src));
        }
        switch (req.dst) {
          case hdc::Endpoint::Nic: {
            const int cid = attachConnection(req.dstFd);
            if (cid < 0)
                fatal("hdcdrv: destination socket not attachable");
            cmd.dstAddr = static_cast<std::uint64_t>(cid);
            break;
          }
          case hdc::Endpoint::HdcBuffer:
            cmd.dstAddr = req.dstBufOff;
            break;
          case hdc::Endpoint::Ssd:
          case hdc::Endpoint::HostMem:
            // Addressed through the staged extent list below.
            break;
          default:
            fatal("hdcdrv: invalid destination endpoint %d",
                  static_cast<int>(req.dst));
        }

        stageExtents(req, cmd);

        if (!req.aux.empty()) {
            const Addr slot =
                auxArena + std::uint64_t(cmd.id % maxOutstanding) * 256;
            host.dram().write(host.dramOffset(slot), req.aux.data(),
                              req.aux.size());
            cmd.auxAddr = slot;
            cmd.auxLen = static_cast<std::uint32_t>(req.aux.size());
        }

        // The wire command has no room for the flow id: bind it in
        // the tracer so the engine can recover it from cmd.id.
        if (req.traceFlow != 0)
            tracer().bindFlow(trace::key(engine.name(), cmd.id),
                              req.traceFlow);

        inflight[cmd.id] = Pending{trace, std::move(done), req.wantDigest,
                                   now(), req.traceFlow};
        ++submitted;

        // Driver submit: build + forward the command (one 64-byte
        // posted MMIO write) and ring the doorbell.
        host.cpu().run(CpuCat::HdcDriver, host.costs().hdcSubmit,
                       [this, cmd, trace, t1, flow = req.traceFlow] {
                           if (trace)
                               trace->add(LatComp::DeviceControl,
                                          now() - t1);
                           std::vector<std::uint8_t> raw(sizeof(cmd));
                           std::memcpy(raw.data(), &cmd, sizeof(cmd));
                           const std::uint32_t slot_idx =
                               (cmd.id - 1) %
                               hdc::HdcEngine::cmdQueueEntries;
                           host.fabric().memWrite(host.bridge(),
                                                  engine.cmdSlotBus(
                                                      slot_idx),
                                                  std::move(raw), {});
                           host.fabric().memWriteScalar(
                               host.bridge(), engine.doorbellBus(),
                               cmd.id, 4, {});
                           TRACE_FLOW(tracer(), now(), name(), "doorbell",
                                      flow);
                           TRACE_SPAN_END(tracer(), now(), name(),
                                          "submit", flow);
                       });
    });
}

void
HdcDriver::onMsi(std::uint32_t cmd_id)
{
    const Tick t_irq = now();
    host.cpu().run(CpuCat::Interrupt, host.costs().irqEntry, [this, cmd_id,
                                                              t_irq] {
        auto it = inflight.find(cmd_id);
        if (it == inflight.end())
            panic("%s: completion for unknown command %u", name().c_str(),
                  cmd_id);
        Pending p = std::move(it->second);
        inflight.erase(it);
        TRACE_FLOW(tracer(), t_irq, name(), "msi", p.flow);
        tracer().unbindFlow(trace::key(engine.name(), cmd_id));

        host.cpu().run(
            CpuCat::HdcDriver, host.costs().hdcComplete,
            [this, cmd_id, p = std::move(p), t_irq] {
                if (p.trace) {
                    // Engine-side time: submit end -> IRQ.
                    const Tick submit_end =
                        p.submitTick + host.costs().hdcSubmit;
                    if (t_irq > submit_end)
                        p.trace->add(LatComp::Read, t_irq - submit_end);
                    p.trace->add(LatComp::RequestCompletion, now() - t_irq);
                }
                if (!p.wantDigest) {
                    TRACE_SPAN(tracer(), t_irq, now() - t_irq, name(),
                               "complete", p.flow);
                    if (p.done)
                        p.done(D2dResult{cmd_id, {}});
                    return;
                }
                // Fetch the digest from the engine's result slot.
                host.fabric().memRead(
                    host.bridge(), engine.resultSlotBus(cmd_id),
                    hdc::HdcEngine::resultSlotSize,
                    [this, cmd_id, t_irq, flow = p.flow,
                     done = std::move(p.done)](BufChain raw) {
                        std::uint32_t status = 0, len = 0;
                        raw.copyOut(0, &status, 4);
                        raw.copyOut(4, &len, 4);
                        D2dResult r;
                        r.cmdId = cmd_id;
                        if (status == 1 && len <= raw.size() - 8) {
                            r.digest.resize(len);
                            raw.copyOut(8, r.digest.data(), len);
                        }
                        TRACE_SPAN(tracer(), t_irq, now() - t_irq, name(),
                                   "complete", flow);
                        if (done)
                            done(r);
                    });
            });
    });
}

} // namespace hdclib
} // namespace dcs
