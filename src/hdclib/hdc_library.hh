/**
 * @file
 * HDC Library: the user-level API of DCS-ctrl (paper §IV-A).
 *
 * Linux sendfile-like calls over file and socket descriptors, each of
 * which replaces a whole user-level read/process/send pipeline with a
 * single ioctl into HDC Driver. Function identifiers and auxiliary
 * data select the intermediate processing performed by NDP units.
 */

#ifndef DCS_HDCLIB_HDC_LIBRARY_HH
#define DCS_HDCLIB_HDC_LIBRARY_HH

#include <functional>

#include "hdclib/hdc_driver.hh"

namespace dcs {
namespace hdclib {

/** Completion callback: digest is filled for integrity functions. */
using D2dCallback = std::function<void(const D2dResult &)>;

/** The user-level library. */
class HdcLibrary
{
  public:
    explicit HdcLibrary(host::Host &host, HdcDriver &driver)
        : host(host), driver(driver), trackName(host.name() + ".hdclib")
    {
    }

    /**
     * hdc_send_file(): transmit file bytes [offset, offset+len) of
     * @p file_fd on socket @p sock_fd, applying @p fn in flight
     * (SSD -> [NDP] -> NIC, all device-controlled).
     */
    void sendFile(int file_fd, int sock_fd, std::uint64_t offset,
                  std::uint64_t len, ndp::Function fn,
                  std::vector<std::uint8_t> aux, bool want_digest,
                  host::TracePtr trace, D2dCallback done);

    /**
     * hdc_recv_file(): receive len stream bytes from @p sock_fd into
     * @p file_fd at @p offset, applying @p fn in flight
     * (NIC -> [NDP] -> SSD).
     */
    void recvFile(int sock_fd, int file_fd, std::uint64_t offset,
                  std::uint64_t len, ndp::Function fn,
                  std::vector<std::uint8_t> aux, bool want_digest,
                  host::TracePtr trace, D2dCallback done);

    /**
     * hdc_read_file(): stage file bytes into an HDC DRAM buffer
     * (SSD -> [NDP] -> on-board buffer).
     */
    void readFileToBuffer(int file_fd, std::uint64_t offset,
                          std::uint64_t len, std::uint64_t buf_off,
                          ndp::Function fn, std::vector<std::uint8_t> aux,
                          bool want_digest, host::TracePtr trace,
                          D2dCallback done);

    /**
     * hdc_copy_file(): storage-to-storage D2D, optionally across two
     * SSDs bound to the engine and with in-flight processing
     * (SSD[src] -> [NDP] -> SSD[dst]) — local rebuild/backup without
     * host data movement.
     */
    void copyFile(int src_fd, int dst_fd, std::uint64_t src_offset,
                  std::uint64_t dst_offset, std::uint64_t len,
                  ndp::Function fn, std::vector<std::uint8_t> aux,
                  bool want_digest, std::uint8_t src_ssd,
                  std::uint8_t dst_ssd, host::TracePtr trace,
                  D2dCallback done);

    /**
     * hdc_send_buffer(): transmit an HDC DRAM buffer on a socket
     * (on-board buffer -> [NDP] -> NIC).
     */
    void sendBuffer(std::uint64_t buf_off, int sock_fd, std::uint64_t len,
                    ndp::Function fn, std::vector<std::uint8_t> aux,
                    bool want_digest, host::TracePtr trace,
                    D2dCallback done);

  private:
    /** Shared syscall/ioctl wrapper charging the user-side costs. */
    void invoke(D2dRequest req, host::TracePtr trace, D2dCallback done);

    host::Host &host;
    HdcDriver &driver;
    std::string trackName; //!< span-tracer track (stable storage)
};

} // namespace hdclib
} // namespace dcs

#endif // DCS_HDCLIB_HDC_LIBRARY_HH
