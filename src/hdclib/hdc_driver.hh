/**
 * @file
 * HDC Driver: the thin kernel module of DCS-ctrl (paper §IV-B).
 *
 * Retrieves metadata from the kernel (file block addresses from the
 * extent filesystem, TCP connection state from the TCP stack), checks
 * descriptor permissions, builds 64-byte D2D commands and forwards
 * them to HDC Engine's command queue, and handles the engine's
 * completion interrupts. It deliberately bypasses page-cache and
 * socket-buffer management (the paper's software optimization, §III-E);
 * the remaining host work per D2D operation is a metadata lookup, one
 * MMIO burst, and one interrupt.
 */

#ifndef DCS_HDCLIB_HDC_DRIVER_HH
#define DCS_HDCLIB_HDC_DRIVER_HH

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "hdc/hdc_engine.hh"
#include "host/extent_fs.hh"
#include "host/host.hh"
#include "host/nvme_driver.hh"
#include "host/page_cache.hh"
#include "host/tcp.hh"
#include "host/trace.hh"
#include "ndp/transform.hh"
#include "pcie/doorbell.hh"

namespace dcs {
namespace hdclib {

/** What the user asked for (one HDC Library call). */
struct D2dRequest
{
    hdc::Endpoint src = hdc::Endpoint::None;
    hdc::Endpoint dst = hdc::Endpoint::None;
    int srcFd = -1;            //!< file/socket fd when src is Ssd/Nic
    int dstFd = -1;
    std::uint8_t srcSsd = 0;   //!< SSD index for Ssd endpoints
    std::uint8_t dstSsd = 0;
    std::uint64_t srcOffset = 0; //!< byte offset into the file
    std::uint64_t dstOffset = 0;
    std::uint64_t srcBufOff = 0; //!< HdcBuffer endpoints: DRAM offset
    std::uint64_t dstBufOff = 0;
    std::uint64_t len = 0;
    ndp::Function fn = ndp::Function::None;
    std::vector<std::uint8_t> aux; //!< e.g. AES key || nonce
    bool wantDigest = false;
    /** Span-tracer flow id (sim/tracing.hh); 0 when tracing is off.
     *  The 64-byte D2dCommand has no room for it, so the driver binds
     *  cmd.id -> flow in the tracer instead. */
    std::uint64_t traceFlow = 0;
};

/** Completion data returned to the library. */
struct D2dResult
{
    std::uint32_t cmdId = 0;
    std::vector<std::uint8_t> digest;
    /** 0 = completed; 429 = rejected (engine admission NACK or the
     *  driver's own reject-on-full), HTTP-style. */
    std::uint32_t status = 0;
};

/** The driver. One per DCS-ctrl node. */
class HdcDriver : public SimObject
{
  public:
    HdcDriver(EventQueue &eq, host::Host &host, hdc::HdcEngine &engine,
              host::NvmeHostDriver &nvme_driver, host::ExtentFs &fs,
              host::TcpStack &tcp);

    /**
     * Bring-up: configure the engine, dedicate an NVMe queue pair in
     * engine BRAM, hand the NIC's rings to the engine, route the
     * completion MSI. Requires the host NVMe driver to be ready.
     */
    void init(Addr ssd_bar0, Addr nic_bar0, std::function<void()> done);

    /**
     * Bind an additional SSD (its own host driver + filesystem) to
     * the engine. Call before init(); the extra dedicated queue
     * pairs are created during bring-up. @return the SSD index to
     * use in D2dRequest::srcSsd/dstSsd.
     */
    int addSsd(host::NvmeHostDriver &driver, host::ExtentFs &fs,
               Addr bar0);

    /**
     * Register a kernel TCP connection for hardware use; returns the
     * connection id to place in D2D commands. Fails (-1) if the fd is
     * unknown or not permitted.
     */
    int attachConnection(int sock_fd);

    /**
     * Bind the host page cache: before any D2D command whose source
     * file has dirty pages, the driver writes them back so the SSD
     * holds the latest data (§IV-B consistency).
     */
    void setPageCache(host::PageCache *pc) { pageCache = pc; }

    /**
     * The ioctl entry point used by HDC Library. Charges driver CPU
     * costs, builds + forwards the D2D command, completes via IRQ.
     */
    void submit(const D2dRequest &req, host::TracePtr trace,
                std::function<void(const D2dResult &)> done);

    bool ready() const { return _ready; }
    std::uint64_t commandsSubmitted() const { return submitted; }

    /** @name Overload behavior. */
    /** @{ */

    /**
     * When the command queue is full, complete new submissions with
     * status 429 instead of panicking — the posture a load generator
     * needs. Defaults off so misuse still trips loudly.
     */
    void setRejectOnFull(bool on) { rejectOnFull = on; }

    /**
     * Batch the engine's command-queue doorbell: ring once per
     * @p max submissions or @p holdoff, whichever first (0 = every
     * submission, the legacy behavior).
     */
    void setDoorbellBatch(std::uint32_t max, Tick holdoff);

    std::uint64_t doorbellWrites() const { return dbBatch.mmioWrites(); }
    std::uint64_t rejectedLocal() const { return _localRejects; }
    /** @} */

  private:
    void onMsi(std::uint32_t value);
    /** Per-command completion work shared by both MSI modes. */
    void finishCommand(std::uint32_t cmd_id, bool rejected, Tick t_irq);
    /** Drain the engine's coalesced-completion ring up to @p produced. */
    void drainCplRing(std::uint32_t produced, Tick t_irq);

    /** Resolve + stage the extent lists of file endpoints. */
    std::uint32_t stageExtents(const D2dRequest &req, hdc::D2dCommand &cmd);

    host::ExtentFs &fsOf(std::uint8_t ssd_idx);

    host::Host &host;
    hdc::HdcEngine &engine;
    host::NvmeHostDriver &nvmeDriver;
    host::ExtentFs &fs;
    host::TcpStack &tcp;
    host::PageCache *pageCache = nullptr;

    struct ExtraSsd
    {
        host::NvmeHostDriver *driver = nullptr;
        host::ExtentFs *fs = nullptr;
        Addr bar0 = 0;
    };
    std::vector<ExtraSsd> extraSsds;

    struct Pending
    {
        host::TracePtr trace;
        std::function<void(const D2dResult &)> done;
        bool wantDigest = false;
        Tick submitTick = 0;
        std::uint64_t flow = 0; //!< span-tracer request identity
    };
    std::unordered_map<std::uint32_t, Pending> inflight;
    std::unordered_map<int, std::uint32_t> connOfFd;

    Addr extArena = 0;  //!< DMA arena for staged extent lists
    Addr auxArena = 0;  //!< DMA arena for aux payloads (keys)
    std::uint32_t nextCmdId = 1;
    std::uint32_t nextConnId = 1;
    std::uint64_t submitted = 0;
    std::uint64_t _localRejects = 0;
    std::uint32_t preparing = 0;   //!< admitted, not yet in inflight
    std::uint32_t cplConsumed = 0; //!< coalesced-ring consumer count
    bool rejectOnFull = false;
    pcie::DoorbellBatcher dbBatch;
    bool _ready = false;

    static constexpr std::uint32_t maxOutstanding =
        hdc::HdcEngine::cmdQueueEntries - 1;
};

} // namespace hdclib
} // namespace dcs

#endif // DCS_HDCLIB_HDC_DRIVER_HH
