/**
 * @file
 * Common incremental-hash interface for NDP data-integrity units.
 *
 * The paper's NDP units implement MD5, SHA-1, SHA-256 and CRC32 in
 * FPGA logic (Table III). Here the same algorithms are implemented
 * functionally; the hdc::NdpUnit wrapper adds the FPGA timing model.
 */

#ifndef DCS_NDP_HASH_HH
#define DCS_NDP_HASH_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace dcs {
namespace ndp {

/** Incremental message-digest computation. */
class HashFunction
{
  public:
    virtual ~HashFunction() = default;

    /** Absorb more message bytes. */
    virtual void update(std::span<const std::uint8_t> data) = 0;

    /** Finalize and return the digest; the object must be reset() next. */
    virtual std::vector<std::uint8_t> finish() = 0;

    /** Digest length in bytes. */
    virtual std::size_t digestSize() const = 0;

    /** Restore the initial state for a new message. */
    virtual void reset() = 0;

    /** Algorithm name, e.g. "md5". */
    virtual std::string algorithm() const = 0;

    /** One-shot convenience. */
    std::vector<std::uint8_t>
    oneShot(std::span<const std::uint8_t> data)
    {
        reset();
        update(data);
        return finish();
    }
};

/** Render a digest as lowercase hex. */
std::string toHex(std::span<const std::uint8_t> digest);

/** Factory by name: "md5", "sha1", "sha256", "crc32". */
std::unique_ptr<HashFunction> makeHash(const std::string &algorithm);

} // namespace ndp
} // namespace dcs

#endif // DCS_NDP_HASH_HH
