/**
 * @file
 * DEFLATE (RFC 1951) and gzip (RFC 1952) codec, from scratch.
 *
 * The compressor performs LZ77 matching over a 32 KiB window with hash
 * chains and emits fixed-Huffman blocks (or stored blocks at level 0).
 * The decompressor handles all three RFC 1951 block types, including
 * dynamic Huffman, so it can also inflate externally produced streams.
 *
 * This backs the paper's GZIP NDP unit (Table III) and the HDFS
 * compression intermediate processing (Table II).
 */

#ifndef DCS_NDP_DEFLATE_HH
#define DCS_NDP_DEFLATE_HH

#include <cstdint>
#include <span>
#include <vector>

namespace dcs {
namespace ndp {

/**
 * Compress @p input into a raw DEFLATE stream.
 * @param level 0 = stored blocks (no compression), 1..9 = LZ77 +
 *        fixed Huffman with increasing match effort.
 */
std::vector<std::uint8_t> deflateCompress(std::span<const std::uint8_t> input,
                                          int level = 6);

/** Inflate a raw DEFLATE stream. Throws std::runtime_error on bad data. */
std::vector<std::uint8_t>
deflateDecompress(std::span<const std::uint8_t> input);

/** Wrap deflateCompress in a gzip container (header + CRC32/ISIZE). */
std::vector<std::uint8_t> gzipCompress(std::span<const std::uint8_t> input,
                                       int level = 6);

/** Unwrap and inflate a gzip stream, verifying CRC32 and ISIZE. */
std::vector<std::uint8_t> gzipDecompress(std::span<const std::uint8_t> input);

} // namespace ndp
} // namespace dcs

#endif // DCS_NDP_DEFLATE_HH
