/**
 * @file
 * MD5 message digest (RFC 1321), implemented from scratch.
 *
 * Used by the Swift workload for object etags and by the
 * SSD->Processing->NIC microbenchmark (paper Fig. 11b).
 */

#ifndef DCS_NDP_MD5_HH
#define DCS_NDP_MD5_HH

#include <array>
#include <cstdint>

#include "ndp/hash.hh"

namespace dcs {
namespace ndp {

/** Incremental MD5. */
class Md5 : public HashFunction
{
  public:
    Md5() { reset(); }

    void update(std::span<const std::uint8_t> data) override;
    std::vector<std::uint8_t> finish() override;
    std::size_t digestSize() const override { return 16; }
    void reset() override;
    std::string algorithm() const override { return "md5"; }

  private:
    void processBlock(const std::uint8_t *block);

    std::array<std::uint32_t, 4> state{};
    std::array<std::uint8_t, 64> buffer{};
    std::uint64_t totalBytes = 0;
};

} // namespace ndp
} // namespace dcs

#endif // DCS_NDP_MD5_HH
