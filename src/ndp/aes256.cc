#include "ndp/aes256.hh"

#include <cstring>

#include "sim/logging.hh"

namespace dcs {
namespace ndp {

namespace {

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67,
    0x2b, 0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59,
    0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7,
    0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1,
    0x71, 0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05,
    0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83,
    0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29,
    0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b,
    0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa,
    0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c,
    0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc,
    0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19,
    0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee,
    0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4,
    0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6,
    0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70,
    0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9,
    0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e,
    0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf, 0x8c, 0xa1,
    0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0,
    0x54, 0xbb, 0x16,
};

constexpr std::uint8_t
xtime(std::uint8_t x)
{
    return static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0));
}

/**
 * T-tables: Te_r[x] is MixColumns applied to S[x] sitting in row r,
 * packed as a big-endian column word (row 0 in the MSB). One round
 * then reduces to four table lookups + XORs per output column,
 * replacing the per-byte SubBytes/ShiftRows/MixColumns passes.
 */
struct TeTables
{
    std::uint32_t t0[256], t1[256], t2[256], t3[256];
};

constexpr TeTables
makeTe()
{
    TeTables te{};
    for (int x = 0; x < 256; ++x) {
        const std::uint8_t s = kSbox[x];
        const std::uint8_t s2 = xtime(s);
        const std::uint8_t s3 = static_cast<std::uint8_t>(s2 ^ s);
        te.t0[x] = (std::uint32_t(s2) << 24) | (std::uint32_t(s) << 16) |
                   (std::uint32_t(s) << 8) | s3;
        te.t1[x] = (std::uint32_t(s3) << 24) | (std::uint32_t(s2) << 16) |
                   (std::uint32_t(s) << 8) | s;
        te.t2[x] = (std::uint32_t(s) << 24) | (std::uint32_t(s3) << 16) |
                   (std::uint32_t(s2) << 8) | s;
        te.t3[x] = (std::uint32_t(s) << 24) | (std::uint32_t(s) << 16) |
                   (std::uint32_t(s3) << 8) | s2;
    }
    return te;
}

constexpr TeTables kTe = makeTe();

std::uint32_t
loadBe32(const std::uint8_t *p)
{
    return (std::uint32_t(p[0]) << 24) | (std::uint32_t(p[1]) << 16) |
           (std::uint32_t(p[2]) << 8) | p[3];
}

void
storeBe32(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v);
}

} // namespace

Aes256::Aes256(std::span<const std::uint8_t> key)
{
    if (key.size() != keySize)
        fatal("AES-256 key must be 32 bytes, got %zu", key.size());

    // Key expansion: Nk = 8 words, Nr = 14 rounds, 60 words total.
    std::uint8_t w[60][4];
    std::memcpy(w, key.data(), 32);
    std::uint8_t rcon = 1;
    for (int i = 8; i < 60; ++i) {
        std::uint8_t t[4];
        std::memcpy(t, w[i - 1], 4);
        if (i % 8 == 0) {
            const std::uint8_t tmp = t[0];
            t[0] = static_cast<std::uint8_t>(kSbox[t[1]] ^ rcon);
            t[1] = kSbox[t[2]];
            t[2] = kSbox[t[3]];
            t[3] = kSbox[tmp];
            rcon = xtime(rcon);
        } else if (i % 8 == 4) {
            for (auto &b : t)
                b = kSbox[b];
        }
        for (int j = 0; j < 4; ++j)
            w[i][j] = w[i - 8][j] ^ t[j];
    }
    // Pack each schedule word big-endian; AddRoundKey then XORs whole
    // column words.
    for (int i = 0; i < 60; ++i)
        roundKeys[static_cast<std::size_t>(i)] = loadBe32(w[i]);
}

void
Aes256::encryptBlock(std::uint8_t s[blockSize]) const
{
    const std::uint32_t *rk = roundKeys.data();

    std::uint32_t w0 = loadBe32(s) ^ rk[0];
    std::uint32_t w1 = loadBe32(s + 4) ^ rk[1];
    std::uint32_t w2 = loadBe32(s + 8) ^ rk[2];
    std::uint32_t w3 = loadBe32(s + 12) ^ rk[3];

    for (int round = 1; round < 14; ++round) {
        const std::uint32_t *k = rk + 4 * round;
        // Output column c reads row r from input column c+r
        // (ShiftRows folded into the indexing).
        const std::uint32_t t0 = kTe.t0[w0 >> 24] ^
                                 kTe.t1[(w1 >> 16) & 0xff] ^
                                 kTe.t2[(w2 >> 8) & 0xff] ^
                                 kTe.t3[w3 & 0xff] ^ k[0];
        const std::uint32_t t1 = kTe.t0[w1 >> 24] ^
                                 kTe.t1[(w2 >> 16) & 0xff] ^
                                 kTe.t2[(w3 >> 8) & 0xff] ^
                                 kTe.t3[w0 & 0xff] ^ k[1];
        const std::uint32_t t2 = kTe.t0[w2 >> 24] ^
                                 kTe.t1[(w3 >> 16) & 0xff] ^
                                 kTe.t2[(w0 >> 8) & 0xff] ^
                                 kTe.t3[w1 & 0xff] ^ k[2];
        const std::uint32_t t3 = kTe.t0[w3 >> 24] ^
                                 kTe.t1[(w0 >> 16) & 0xff] ^
                                 kTe.t2[(w1 >> 8) & 0xff] ^
                                 kTe.t3[w2 & 0xff] ^ k[3];
        w0 = t0;
        w1 = t1;
        w2 = t2;
        w3 = t3;
    }

    // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
    const std::uint32_t *k = rk + 4 * 14;
    const std::uint32_t o0 =
        ((std::uint32_t(kSbox[w0 >> 24]) << 24) |
         (std::uint32_t(kSbox[(w1 >> 16) & 0xff]) << 16) |
         (std::uint32_t(kSbox[(w2 >> 8) & 0xff]) << 8) |
         kSbox[w3 & 0xff]) ^
        k[0];
    const std::uint32_t o1 =
        ((std::uint32_t(kSbox[w1 >> 24]) << 24) |
         (std::uint32_t(kSbox[(w2 >> 16) & 0xff]) << 16) |
         (std::uint32_t(kSbox[(w3 >> 8) & 0xff]) << 8) |
         kSbox[w0 & 0xff]) ^
        k[1];
    const std::uint32_t o2 =
        ((std::uint32_t(kSbox[w2 >> 24]) << 24) |
         (std::uint32_t(kSbox[(w3 >> 16) & 0xff]) << 16) |
         (std::uint32_t(kSbox[(w0 >> 8) & 0xff]) << 8) |
         kSbox[w1 & 0xff]) ^
        k[2];
    const std::uint32_t o3 =
        ((std::uint32_t(kSbox[w3 >> 24]) << 24) |
         (std::uint32_t(kSbox[(w0 >> 16) & 0xff]) << 16) |
         (std::uint32_t(kSbox[(w1 >> 8) & 0xff]) << 8) |
         kSbox[w2 & 0xff]) ^
        k[3];

    storeBe32(s, o0);
    storeBe32(s + 4, o1);
    storeBe32(s + 8, o2);
    storeBe32(s + 12, o3);
}

Aes256Ctr::Aes256Ctr(std::span<const std::uint8_t> key, std::uint64_t nonce)
    : cipher(key), nonce(nonce)
{
}

void
Aes256Ctr::refill()
{
    // Counter block: 8-byte big-endian nonce || 8-byte big-endian counter.
    for (int i = 0; i < 8; ++i)
        keystream[i] = static_cast<std::uint8_t>(nonce >> (56 - 8 * i));
    for (int i = 0; i < 8; ++i)
        keystream[8 + i] = static_cast<std::uint8_t>(counter >> (56 - 8 * i));
    cipher.encryptBlock(keystream.data());
    ++counter;
    ksUsed = 0;
}

void
Aes256Ctr::seek(std::uint64_t byte_offset)
{
    counter = byte_offset / 16;
    const std::size_t skip = byte_offset % 16;
    if (skip) {
        refill(); // produces the block for `counter`, then advances it
        ksUsed = skip;
    } else {
        ksUsed = 16; // force a refill at the next byte
    }
}

void
Aes256Ctr::transformInto(std::span<const std::uint8_t> in,
                         std::uint8_t *out)
{
    const std::uint8_t *p = in.data();
    const std::size_t n = in.size();
    std::size_t i = 0;

    // Drain a partially consumed keystream block byte-wise.
    while (i < n && ksUsed < 16) {
        out[i] = static_cast<std::uint8_t>(p[i] ^ keystream[ksUsed++]);
        ++i;
    }

    // Aligned middle: one block encryption per 16 bytes, XOR'd as two
    // 64-bit words (memcpy keeps it alignment-safe).
    while (n - i >= 16) {
        refill();
        std::uint64_t a, b, ka, kb;
        std::memcpy(&a, p + i, 8);
        std::memcpy(&b, p + i + 8, 8);
        std::memcpy(&ka, keystream.data(), 8);
        std::memcpy(&kb, keystream.data() + 8, 8);
        a ^= ka;
        b ^= kb;
        std::memcpy(out + i, &a, 8);
        std::memcpy(out + i + 8, &b, 8);
        ksUsed = 16;
        i += 16;
    }

    // Tail.
    while (i < n) {
        if (ksUsed == 16)
            refill();
        out[i] = static_cast<std::uint8_t>(p[i] ^ keystream[ksUsed++]);
        ++i;
    }
}

void
Aes256Ctr::transformInPlace(std::span<std::uint8_t> buf)
{
    transformInto(buf, buf.data());
}

std::vector<std::uint8_t>
Aes256Ctr::transform(std::span<const std::uint8_t> in)
{
    std::vector<std::uint8_t> out(in.begin(), in.end());
    transformInPlace(out);
    return out;
}

} // namespace ndp
} // namespace dcs
