#include "ndp/crc32.hh"

#include <array>

namespace dcs {
namespace ndp {

namespace {

/**
 * Slice-by-8 tables: table 0 is the classic byte table; table k folds
 * a byte sitting k positions ahead of the CRC register, so eight
 * bytes advance with eight independent lookups per iteration instead
 * of eight serially dependent ones.
 */
std::array<std::array<std::uint32_t, 256>, 8>
makeTables()
{
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        t[0][i] = c;
    }
    for (std::size_t k = 1; k < 8; ++k)
        for (std::uint32_t i = 0; i < 256; ++i)
            t[k][i] = t[0][t[k - 1][i] & 0xff] ^ (t[k - 1][i] >> 8);
    return t;
}

const std::array<std::array<std::uint32_t, 256>, 8> &
tables()
{
    static const auto t = makeTables();
    return t;
}

} // namespace

void
Crc32::update(std::span<const std::uint8_t> data)
{
    const auto &t = tables();
    std::uint32_t c = crc;
    const std::uint8_t *p = data.data();
    std::size_t n = data.size();

    // Bulk: fold 8 bytes per iteration (little-endian composition is
    // endian-portable and compiles to plain loads on LE targets).
    while (n >= 8) {
        const std::uint32_t lo =
            (std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) |
             (std::uint32_t(p[2]) << 16) | (std::uint32_t(p[3]) << 24)) ^
            c;
        const std::uint32_t hi =
            std::uint32_t(p[4]) | (std::uint32_t(p[5]) << 8) |
            (std::uint32_t(p[6]) << 16) | (std::uint32_t(p[7]) << 24);
        c = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^
            t[5][(lo >> 16) & 0xff] ^ t[4][lo >> 24] ^ t[3][hi & 0xff] ^
            t[2][(hi >> 8) & 0xff] ^ t[1][(hi >> 16) & 0xff] ^
            t[0][hi >> 24];
        p += 8;
        n -= 8;
    }

    // Tail.
    for (; n; --n, ++p)
        c = t[0][(c ^ *p) & 0xff] ^ (c >> 8);
    crc = c;
}

std::vector<std::uint8_t>
Crc32::finish()
{
    const std::uint32_t v = value();
    return {static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
            static_cast<std::uint8_t>(v >> 16),
            static_cast<std::uint8_t>(v >> 24)};
}

std::uint32_t
Crc32::compute(std::span<const std::uint8_t> data)
{
    Crc32 c;
    c.update(data);
    return c.value();
}

} // namespace ndp
} // namespace dcs
