#include "ndp/crc32.hh"

#include <array>

namespace dcs {
namespace ndp {

namespace {

std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        t[i] = c;
    }
    return t;
}

const std::array<std::uint32_t, 256> &
table()
{
    static const auto t = makeTable();
    return t;
}

} // namespace

void
Crc32::update(std::span<const std::uint8_t> data)
{
    const auto &t = table();
    std::uint32_t c = crc;
    for (std::uint8_t b : data)
        c = t[(c ^ b) & 0xff] ^ (c >> 8);
    crc = c;
}

std::vector<std::uint8_t>
Crc32::finish()
{
    const std::uint32_t v = value();
    return {static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
            static_cast<std::uint8_t>(v >> 16),
            static_cast<std::uint8_t>(v >> 24)};
}

std::uint32_t
Crc32::compute(std::span<const std::uint8_t> data)
{
    Crc32 c;
    c.update(data);
    return c.value();
}

} // namespace ndp
} // namespace dcs
