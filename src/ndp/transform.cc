#include "ndp/transform.hh"

#include "ndp/aes256.hh"
#include "ndp/crc32.hh"
#include "ndp/deflate.hh"
#include "ndp/hash.hh"
#include "sim/logging.hh"

namespace dcs {
namespace ndp {

std::string
functionName(Function fn)
{
    switch (fn) {
      case Function::None:
        return "none";
      case Function::Md5:
        return "md5";
      case Function::Sha1:
        return "sha1";
      case Function::Sha256:
        return "sha256";
      case Function::Crc32:
        return "crc32";
      case Function::Aes256:
        return "aes256";
      case Function::Gzip:
        return "gzip";
      case Function::Gunzip:
        return "gunzip";
    }
    panic("unknown NDP function");
}

Function
functionFromName(const std::string &name)
{
    for (Function fn : {Function::None, Function::Md5, Function::Sha1,
                        Function::Sha256, Function::Crc32, Function::Aes256,
                        Function::Gzip, Function::Gunzip}) {
        if (functionName(fn) == name)
            return fn;
    }
    fatal("unknown NDP function '%s'", name.c_str());
}

bool
isPassThrough(Function fn)
{
    switch (fn) {
      case Function::None:
      case Function::Md5:
      case Function::Sha1:
      case Function::Sha256:
      case Function::Crc32:
        return true;
      case Function::Aes256:
      case Function::Gzip:
      case Function::Gunzip:
        return false;
    }
    panic("unknown NDP function");
}

TransformResult
applyTransform(Function fn, std::span<const std::uint8_t> input,
               std::span<const std::uint8_t> aux)
{
    TransformResult r;
    switch (fn) {
      case Function::None:
        r.data.assign(input.begin(), input.end());
        return r;
      case Function::Md5:
      case Function::Sha1:
      case Function::Sha256:
      case Function::Crc32: {
        auto h = makeHash(functionName(fn));
        r.digest = h->oneShot(input);
        r.data.assign(input.begin(), input.end());
        return r;
      }
      case Function::Aes256: {
        if (aux.size() < Aes256::keySize + 8)
            fatal("aes256 transform needs 32-byte key + 8-byte nonce aux");
        std::uint64_t nonce = 0;
        for (int i = 0; i < 8; ++i)
            nonce |= std::uint64_t(aux[Aes256::keySize + i]) << (8 * i);
        Aes256Ctr ctr(aux.subspan(0, Aes256::keySize), nonce);
        r.data = ctr.transform(input);
        return r;
      }
      case Function::Gzip:
        r.data = gzipCompress(input);
        return r;
      case Function::Gunzip:
        r.data = gzipDecompress(input);
        return r;
    }
    panic("unknown NDP function");
}

} // namespace ndp
} // namespace dcs
