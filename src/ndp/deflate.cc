#include "ndp/deflate.hh"

#include <algorithm>
#include <array>
#include <cstring>
#include <stdexcept>

#include "ndp/crc32.hh"

namespace dcs {
namespace ndp {

namespace {

// ---------------------------------------------------------------------
// Bit I/O. DEFLATE packs data LSB-first; Huffman codes are written with
// their most-significant code bit first, which we achieve by reversing
// the code bits once and then writing LSB-first.
// ---------------------------------------------------------------------

class BitWriter
{
  public:
    void
    writeBits(std::uint32_t value, int count)
    {
        acc |= static_cast<std::uint64_t>(value) << used;
        used += count;
        while (used >= 8) {
            out.push_back(static_cast<std::uint8_t>(acc));
            acc >>= 8;
            used -= 8;
        }
    }

    /** Write a Huffman code of @p len bits, MSB of the code first. */
    void
    writeCode(std::uint32_t code, int len)
    {
        std::uint32_t rev = 0;
        for (int i = 0; i < len; ++i)
            rev |= ((code >> i) & 1u) << (len - 1 - i);
        writeBits(rev, len);
    }

    void
    alignToByte()
    {
        if (used > 0) {
            out.push_back(static_cast<std::uint8_t>(acc));
            acc = 0;
            used = 0;
        }
    }

    void
    writeByte(std::uint8_t b)
    {
        out.push_back(b);
    }

    std::vector<std::uint8_t> take() { return std::move(out); }

  private:
    std::vector<std::uint8_t> out;
    std::uint64_t acc = 0;
    int used = 0;
};

class BitReader
{
  public:
    explicit BitReader(std::span<const std::uint8_t> data) : data(data) {}

    std::uint32_t
    readBits(int count)
    {
        while (used < count) {
            if (pos >= data.size())
                throw std::runtime_error("deflate: truncated stream");
            acc |= static_cast<std::uint64_t>(data[pos++]) << used;
            used += 8;
        }
        const std::uint32_t v =
            static_cast<std::uint32_t>(acc & ((1ull << count) - 1));
        acc >>= count;
        used -= count;
        return v;
    }

    void
    alignToByte()
    {
        acc = 0;
        used = 0;
    }

    std::uint8_t
    readByte()
    {
        if (used != 0)
            alignToByte();
        if (pos >= data.size())
            throw std::runtime_error("deflate: truncated stream");
        return data[pos++];
    }

    std::size_t bytePos() const { return pos; }

  private:
    std::span<const std::uint8_t> data;
    std::size_t pos = 0;
    std::uint64_t acc = 0;
    int used = 0;
};

// ---------------------------------------------------------------------
// RFC 1951 symbol tables.
// ---------------------------------------------------------------------

struct LengthCode
{
    int symbol;
    int extraBits;
    int base;
};

constexpr int kLengthBase[29] = {3,  4,  5,  6,  7,  8,  9,  10, 11, 13,
                                 15, 17, 19, 23, 27, 31, 35, 43, 51, 59,
                                 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr int kLengthExtra[29] = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2,
                                  2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5,
                                  0};
constexpr int kDistBase[30] = {1,    2,    3,    4,    5,    7,     9,
                               13,   17,   25,   33,   49,   65,    97,
                               129,  193,  257,  385,  513,  769,   1025,
                               1537, 2049, 3073, 4097, 6145, 8193,  12289,
                               16385, 24577};
constexpr int kDistExtra[30] = {0, 0, 0, 0, 1, 1, 2, 2,  3,  3,  4,  4,  5,
                                5, 6, 6, 7, 7, 8, 8, 9,  9,  10, 10, 11, 11,
                                12, 12, 13, 13};

/** Map a match length (3..258) to (symbol, extra bits, extra value). */
LengthCode
lengthToCode(int len)
{
    for (int i = 28; i >= 0; --i) {
        if (len >= kLengthBase[i])
            return {257 + i, kLengthExtra[i], kLengthBase[i]};
    }
    throw std::runtime_error("deflate: bad match length");
}

/** Map a distance (1..32768) to (symbol, extra bits, base). */
LengthCode
distToCode(int dist)
{
    for (int i = 29; i >= 0; --i) {
        if (dist >= kDistBase[i])
            return {i, kDistExtra[i], kDistBase[i]};
    }
    throw std::runtime_error("deflate: bad match distance");
}

/** Fixed literal/length code (RFC 1951 §3.2.6). */
void
fixedLitCode(int sym, std::uint32_t &code, int &len)
{
    if (sym <= 143) {
        code = 0x30 + sym;
        len = 8;
    } else if (sym <= 255) {
        code = 0x190 + (sym - 144);
        len = 9;
    } else if (sym <= 279) {
        code = sym - 256;
        len = 7;
    } else {
        code = 0xc0 + (sym - 280);
        len = 8;
    }
}

// ---------------------------------------------------------------------
// Canonical Huffman decoding.
// ---------------------------------------------------------------------

/** Decode table built from code lengths (canonical Huffman). */
struct HuffTable
{
    // For each code length 1..15: count of codes and first code value,
    // plus symbols ordered by (length, symbol).
    std::array<int, 16> count{};
    std::vector<int> symbols;

    static HuffTable
    fromLengths(std::span<const std::uint8_t> lengths)
    {
        HuffTable t;
        for (std::uint8_t l : lengths)
            ++t.count[l];
        t.count[0] = 0;
        std::array<int, 16> offs{};
        for (int l = 1; l < 16; ++l)
            offs[l] = offs[l - 1] + t.count[l - 1];
        t.symbols.resize(lengths.size());
        for (std::size_t s = 0; s < lengths.size(); ++s)
            if (lengths[s] != 0)
                t.symbols[offs[lengths[s]]++] = static_cast<int>(s);
        return t;
    }

    int
    decode(BitReader &br) const
    {
        int code = 0;
        int first = 0;
        int index = 0;
        for (int len = 1; len < 16; ++len) {
            code |= static_cast<int>(br.readBits(1));
            const int cnt = count[len];
            if (code - first < cnt)
                return symbols[index + (code - first)];
            index += cnt;
            first = (first + cnt) << 1;
            code <<= 1;
        }
        throw std::runtime_error("deflate: invalid Huffman code");
    }
};

HuffTable
fixedLitTable()
{
    std::vector<std::uint8_t> lens(288);
    for (int i = 0; i <= 143; ++i)
        lens[i] = 8;
    for (int i = 144; i <= 255; ++i)
        lens[i] = 9;
    for (int i = 256; i <= 279; ++i)
        lens[i] = 7;
    for (int i = 280; i <= 287; ++i)
        lens[i] = 8;
    return HuffTable::fromLengths(lens);
}

HuffTable
fixedDistTable()
{
    std::vector<std::uint8_t> lens(30, 5);
    return HuffTable::fromLengths(lens);
}

// ---------------------------------------------------------------------
// LZ77 matcher with hash chains.
// ---------------------------------------------------------------------

constexpr int kWindowSize = 32768;
constexpr int kMinMatch = 3;
constexpr int kMaxMatch = 258;
constexpr int kHashBits = 15;
constexpr int kHashSize = 1 << kHashBits;

std::uint32_t
hash3(const std::uint8_t *p)
{
    const std::uint32_t v = p[0] | (std::uint32_t(p[1]) << 8) |
                            (std::uint32_t(p[2]) << 16);
    return (v * 2654435761u) >> (32 - kHashBits);
}

} // namespace

std::vector<std::uint8_t>
deflateCompress(std::span<const std::uint8_t> input, int level)
{
    BitWriter bw;

    if (level <= 0) {
        // Stored blocks of at most 65535 bytes.
        std::size_t pos = 0;
        do {
            const std::size_t take =
                std::min<std::size_t>(input.size() - pos, 65535);
            const bool final = pos + take == input.size();
            bw.writeBits(final ? 1 : 0, 1);
            bw.writeBits(0, 2); // BTYPE=00
            bw.alignToByte();
            const auto len = static_cast<std::uint16_t>(take);
            bw.writeByte(static_cast<std::uint8_t>(len));
            bw.writeByte(static_cast<std::uint8_t>(len >> 8));
            bw.writeByte(static_cast<std::uint8_t>(~len));
            bw.writeByte(static_cast<std::uint8_t>(~len >> 8));
            for (std::size_t i = 0; i < take; ++i)
                bw.writeByte(input[pos + i]);
            pos += take;
        } while (pos < input.size());
        return bw.take();
    }

    // Single fixed-Huffman block.
    bw.writeBits(1, 1); // BFINAL
    bw.writeBits(1, 2); // BTYPE=01 fixed

    const int max_chain = 8 << std::min(level, 9); // effort knob

    std::vector<int> head(kHashSize, -1);
    std::vector<int> prev(input.size(), -1);

    auto emit_literal = [&](std::uint8_t b) {
        std::uint32_t code;
        int len;
        fixedLitCode(b, code, len);
        bw.writeCode(code, len);
    };
    auto emit_match = [&](int length, int dist) {
        const LengthCode lc = lengthToCode(length);
        std::uint32_t code;
        int clen;
        fixedLitCode(lc.symbol, code, clen);
        bw.writeCode(code, clen);
        if (lc.extraBits)
            bw.writeBits(static_cast<std::uint32_t>(length - lc.base),
                         lc.extraBits);
        const LengthCode dc = distToCode(dist);
        bw.writeCode(static_cast<std::uint32_t>(dc.symbol), 5);
        if (dc.extraBits)
            bw.writeBits(static_cast<std::uint32_t>(dist - dc.base),
                         dc.extraBits);
    };

    const std::size_t n = input.size();
    std::size_t i = 0;
    while (i < n) {
        int best_len = 0;
        int best_dist = 0;
        if (i + kMinMatch <= n) {
            const std::uint32_t h = hash3(input.data() + i);
            int cand = head[h];
            int chain = max_chain;
            const int max_len =
                static_cast<int>(std::min<std::size_t>(kMaxMatch, n - i));
            while (cand >= 0 && chain-- > 0 &&
                   i - static_cast<std::size_t>(cand) <= kWindowSize) {
                int len = 0;
                const std::uint8_t *a = input.data() + i;
                const std::uint8_t *b = input.data() + cand;
                while (len < max_len && a[len] == b[len])
                    ++len;
                if (len > best_len) {
                    best_len = len;
                    best_dist = static_cast<int>(i) - cand;
                    if (len >= max_len)
                        break;
                }
                cand = prev[cand];
            }
            prev[i] = head[h];
            head[h] = static_cast<int>(i);
        }

        if (best_len >= kMinMatch) {
            emit_match(best_len, best_dist);
            // Insert the skipped positions into the hash chains so
            // later matches can reference them.
            for (int k = 1; k < best_len && i + k + kMinMatch <= n; ++k) {
                const std::uint32_t h = hash3(input.data() + i + k);
                prev[i + k] = head[h];
                head[h] = static_cast<int>(i + k);
            }
            i += static_cast<std::size_t>(best_len);
        } else {
            emit_literal(input[i]);
            ++i;
        }
    }

    // End-of-block symbol 256.
    std::uint32_t code;
    int clen;
    fixedLitCode(256, code, clen);
    bw.writeCode(code, clen);
    bw.alignToByte();
    return bw.take();
}

std::vector<std::uint8_t>
deflateDecompress(std::span<const std::uint8_t> input)
{
    BitReader br(input);
    std::vector<std::uint8_t> out;

    for (;;) {
        const bool final = br.readBits(1) != 0;
        const std::uint32_t btype = br.readBits(2);

        if (btype == 0) {
            br.alignToByte();
            const std::uint32_t len =
                br.readByte() | (std::uint32_t(br.readByte()) << 8);
            const std::uint32_t nlen =
                br.readByte() | (std::uint32_t(br.readByte()) << 8);
            if ((len ^ nlen) != 0xffff)
                throw std::runtime_error("deflate: bad stored length");
            for (std::uint32_t k = 0; k < len; ++k)
                out.push_back(br.readByte());
        } else if (btype == 1 || btype == 2) {
            HuffTable lit, dist;
            if (btype == 1) {
                lit = fixedLitTable();
                dist = fixedDistTable();
            } else {
                const int hlit = static_cast<int>(br.readBits(5)) + 257;
                const int hdist = static_cast<int>(br.readBits(5)) + 1;
                const int hclen = static_cast<int>(br.readBits(4)) + 4;
                static constexpr int kOrder[19] = {16, 17, 18, 0, 8,  7, 9,
                                                   6,  10, 5,  11, 4, 12, 3,
                                                   13, 2,  14, 1,  15};
                std::vector<std::uint8_t> cl_lens(19, 0);
                for (int k = 0; k < hclen; ++k)
                    cl_lens[kOrder[k]] =
                        static_cast<std::uint8_t>(br.readBits(3));
                const HuffTable cl = HuffTable::fromLengths(cl_lens);

                std::vector<std::uint8_t> lens;
                lens.reserve(static_cast<std::size_t>(hlit + hdist));
                while (static_cast<int>(lens.size()) < hlit + hdist) {
                    const int sym = cl.decode(br);
                    if (sym < 16) {
                        lens.push_back(static_cast<std::uint8_t>(sym));
                    } else if (sym == 16) {
                        if (lens.empty())
                            throw std::runtime_error(
                                "deflate: repeat with no previous length");
                        const int rep =
                            3 + static_cast<int>(br.readBits(2));
                        lens.insert(lens.end(), rep, lens.back());
                    } else if (sym == 17) {
                        const int rep =
                            3 + static_cast<int>(br.readBits(3));
                        lens.insert(lens.end(), rep, 0);
                    } else {
                        const int rep =
                            11 + static_cast<int>(br.readBits(7));
                        lens.insert(lens.end(), rep, 0);
                    }
                }
                if (static_cast<int>(lens.size()) != hlit + hdist)
                    throw std::runtime_error("deflate: bad length counts");
                lit = HuffTable::fromLengths(
                    {lens.data(), static_cast<std::size_t>(hlit)});
                dist = HuffTable::fromLengths(
                    {lens.data() + hlit, static_cast<std::size_t>(hdist)});
            }

            for (;;) {
                const int sym = lit.decode(br);
                if (sym < 256) {
                    out.push_back(static_cast<std::uint8_t>(sym));
                } else if (sym == 256) {
                    break;
                } else {
                    const int li = sym - 257;
                    if (li >= 29)
                        throw std::runtime_error("deflate: bad length sym");
                    const int length =
                        kLengthBase[li] +
                        static_cast<int>(br.readBits(kLengthExtra[li]));
                    const int dsym = dist.decode(br);
                    if (dsym >= 30)
                        throw std::runtime_error("deflate: bad dist sym");
                    const int d =
                        kDistBase[dsym] +
                        static_cast<int>(br.readBits(kDistExtra[dsym]));
                    if (static_cast<std::size_t>(d) > out.size())
                        throw std::runtime_error(
                            "deflate: distance beyond output");
                    const std::size_t start = out.size() - d;
                    for (int k = 0; k < length; ++k)
                        out.push_back(out[start + k]);
                }
            }
        } else {
            throw std::runtime_error("deflate: reserved block type");
        }

        if (final)
            break;
    }
    return out;
}

std::vector<std::uint8_t>
gzipCompress(std::span<const std::uint8_t> input, int level)
{
    std::vector<std::uint8_t> out = {0x1f, 0x8b, 8, 0, 0, 0,
                                     0,    0,    0, 0xff};
    std::vector<std::uint8_t> body = deflateCompress(input, level);
    out.insert(out.end(), body.begin(), body.end());
    const std::uint32_t crc = Crc32::compute(input);
    const auto isize = static_cast<std::uint32_t>(input.size());
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(isize >> (8 * i)));
    return out;
}

std::vector<std::uint8_t>
gzipDecompress(std::span<const std::uint8_t> input)
{
    if (input.size() < 18 || input[0] != 0x1f || input[1] != 0x8b ||
        input[2] != 8)
        throw std::runtime_error("gzip: bad header");
    const std::uint8_t flags = input[3];
    std::size_t off = 10;
    if (flags & 0x04) { // FEXTRA
        const std::size_t xlen = input[off] | (input[off + 1] << 8);
        off += 2 + xlen;
    }
    if (flags & 0x08) { // FNAME
        while (off < input.size() && input[off] != 0)
            ++off;
        ++off;
    }
    if (flags & 0x10) { // FCOMMENT
        while (off < input.size() && input[off] != 0)
            ++off;
        ++off;
    }
    if (flags & 0x02) // FHCRC
        off += 2;
    if (off + 8 > input.size())
        throw std::runtime_error("gzip: truncated");

    std::vector<std::uint8_t> out =
        deflateDecompress(input.subspan(off, input.size() - off - 8));

    const std::uint8_t *tail = input.data() + input.size() - 8;
    std::uint32_t crc = 0, isize = 0;
    for (int i = 0; i < 4; ++i) {
        crc |= std::uint32_t(tail[i]) << (8 * i);
        isize |= std::uint32_t(tail[4 + i]) << (8 * i);
    }
    if (crc != Crc32::compute(out))
        throw std::runtime_error("gzip: CRC mismatch");
    if (isize != static_cast<std::uint32_t>(out.size()))
        throw std::runtime_error("gzip: ISIZE mismatch");
    return out;
}

} // namespace ndp
} // namespace dcs
