/**
 * @file
 * SHA-256 message digest (FIPS 180-4), from scratch.
 */

#ifndef DCS_NDP_SHA256_HH
#define DCS_NDP_SHA256_HH

#include <array>
#include <cstdint>

#include "ndp/hash.hh"

namespace dcs {
namespace ndp {

/** Incremental SHA-256. */
class Sha256 : public HashFunction
{
  public:
    Sha256() { reset(); }

    void update(std::span<const std::uint8_t> data) override;
    std::vector<std::uint8_t> finish() override;
    std::size_t digestSize() const override { return 32; }
    void reset() override;
    std::string algorithm() const override { return "sha256"; }

  private:
    void processBlock(const std::uint8_t *block);

    std::array<std::uint32_t, 8> state{};
    std::array<std::uint8_t, 64> buffer{};
    std::uint64_t totalBytes = 0;
};

} // namespace ndp
} // namespace dcs

#endif // DCS_NDP_SHA256_HH
