/**
 * @file
 * The set of intermediate-processing functions (paper Table II/III)
 * and a functional evaluator shared by NDP units, GPU kernels and
 * CPU fallback paths — all three execute the identical byte-level
 * transform, only their timing models differ.
 */

#ifndef DCS_NDP_TRANSFORM_HH
#define DCS_NDP_TRANSFORM_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dcs {
namespace ndp {

/** Intermediate data-processing functions offloadable to NDP units. */
enum class Function
{
    None,   //!< pass-through (plain D2D copy)
    Md5,    //!< data integrity (Swift, S3, Azure)
    Sha1,   //!< data integrity
    Sha256, //!< data integrity
    Crc32,  //!< data integrity (HDFS)
    Aes256, //!< encryption (CTR mode; aux = 32-byte key)
    Gzip,   //!< compression (HDFS, S3)
    Gunzip, //!< decompression
};

/** Human-readable name, e.g. for bench output rows. */
std::string functionName(Function fn);

/** Parse the inverse of functionName(). */
Function functionFromName(const std::string &name);

/** Result of an intermediate-processing step. */
struct TransformResult
{
    /** Payload to forward to the next device (may equal the input). */
    std::vector<std::uint8_t> data;
    /** Digest for integrity functions; empty otherwise. */
    std::vector<std::uint8_t> digest;
};

/**
 * Execute @p fn over @p input.
 * @param aux function-specific auxiliary data (AES key, etc).
 */
TransformResult applyTransform(Function fn,
                               std::span<const std::uint8_t> input,
                               std::span<const std::uint8_t> aux = {});

/** True if @p fn leaves the payload bytes unmodified. */
bool isPassThrough(Function fn);

} // namespace ndp
} // namespace dcs

#endif // DCS_NDP_TRANSFORM_HH
