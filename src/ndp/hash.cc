#include "ndp/hash.hh"

#include "ndp/crc32.hh"
#include "ndp/md5.hh"
#include "ndp/sha1.hh"
#include "ndp/sha256.hh"
#include "sim/logging.hh"

namespace dcs {
namespace ndp {

std::string
toHex(std::span<const std::uint8_t> digest)
{
    static const char *hex = "0123456789abcdef";
    std::string s;
    s.reserve(digest.size() * 2);
    for (std::uint8_t b : digest) {
        s.push_back(hex[b >> 4]);
        s.push_back(hex[b & 0xf]);
    }
    return s;
}

std::unique_ptr<HashFunction>
makeHash(const std::string &algorithm)
{
    if (algorithm == "md5")
        return std::make_unique<Md5>();
    if (algorithm == "sha1")
        return std::make_unique<Sha1>();
    if (algorithm == "sha256")
        return std::make_unique<Sha256>();
    if (algorithm == "crc32")
        return std::make_unique<Crc32>();
    fatal("unknown hash algorithm '%s'", algorithm.c_str());
}

} // namespace ndp
} // namespace dcs
