/**
 * @file
 * CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320), from scratch.
 *
 * Used by the HDFS workload's receiver-side block integrity check and
 * by the gzip container trailer.
 */

#ifndef DCS_NDP_CRC32_HH
#define DCS_NDP_CRC32_HH

#include <cstdint>

#include "ndp/hash.hh"

namespace dcs {
namespace ndp {

/** Streaming CRC-32 over a byte sequence. */
class Crc32 : public HashFunction
{
  public:
    Crc32() { reset(); }

    void update(std::span<const std::uint8_t> data) override;
    std::vector<std::uint8_t> finish() override;
    std::size_t digestSize() const override { return 4; }
    void reset() override { crc = 0xffffffffu; }
    std::string algorithm() const override { return "crc32"; }

    /** Current CRC value (finalized). */
    std::uint32_t value() const { return crc ^ 0xffffffffu; }

    /** One-shot helper. */
    static std::uint32_t compute(std::span<const std::uint8_t> data);

  private:
    std::uint32_t crc = 0xffffffffu;
};

} // namespace ndp
} // namespace dcs

#endif // DCS_NDP_CRC32_HH
