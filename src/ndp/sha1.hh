/**
 * @file
 * SHA-1 message digest (RFC 3174 / FIPS 180-4), from scratch.
 */

#ifndef DCS_NDP_SHA1_HH
#define DCS_NDP_SHA1_HH

#include <array>
#include <cstdint>

#include "ndp/hash.hh"

namespace dcs {
namespace ndp {

/** Incremental SHA-1. */
class Sha1 : public HashFunction
{
  public:
    Sha1() { reset(); }

    void update(std::span<const std::uint8_t> data) override;
    std::vector<std::uint8_t> finish() override;
    std::size_t digestSize() const override { return 20; }
    void reset() override;
    std::string algorithm() const override { return "sha1"; }

  private:
    void processBlock(const std::uint8_t *block);

    std::array<std::uint32_t, 5> state{};
    std::array<std::uint8_t, 64> buffer{};
    std::uint64_t totalBytes = 0;
};

} // namespace ndp
} // namespace dcs

#endif // DCS_NDP_SHA1_HH
