#include "ndp/sha1.hh"

#include <cstring>

namespace dcs {
namespace ndp {

namespace {
std::uint32_t
rotl(std::uint32_t x, int c)
{
    return (x << c) | (x >> (32 - c));
}
} // namespace

void
Sha1::reset()
{
    state = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u,
             0xc3d2e1f0u};
    buffer.fill(0);
    totalBytes = 0;
}

void
Sha1::processBlock(const std::uint8_t *block)
{
    std::uint32_t w[80];
    for (int i = 0; i < 16; ++i) {
        w[i] = (std::uint32_t(block[4 * i]) << 24) |
               (std::uint32_t(block[4 * i + 1]) << 16) |
               (std::uint32_t(block[4 * i + 2]) << 8) |
               std::uint32_t(block[4 * i + 3]);
    }
    for (int i = 16; i < 80; ++i)
        w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3],
                  e = state[4];
    for (int i = 0; i < 80; ++i) {
        std::uint32_t f, k;
        if (i < 20) {
            f = (b & c) | (~b & d);
            k = 0x5a827999;
        } else if (i < 40) {
            f = b ^ c ^ d;
            k = 0x6ed9eba1;
        } else if (i < 60) {
            f = (b & c) | (b & d) | (c & d);
            k = 0x8f1bbcdc;
        } else {
            f = b ^ c ^ d;
            k = 0xca62c1d6;
        }
        const std::uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
        e = d;
        d = c;
        c = rotl(b, 30);
        b = a;
        a = tmp;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
}

void
Sha1::update(std::span<const std::uint8_t> data)
{
    std::size_t fill = totalBytes % 64;
    totalBytes += data.size();
    std::size_t i = 0;
    if (fill) {
        const std::size_t take = std::min<std::size_t>(64 - fill,
                                                       data.size());
        std::memcpy(buffer.data() + fill, data.data(), take);
        i = take;
        if (fill + take == 64)
            processBlock(buffer.data());
        else
            return;
    }
    for (; i + 64 <= data.size(); i += 64)
        processBlock(data.data() + i);
    if (i < data.size())
        std::memcpy(buffer.data(), data.data() + i, data.size() - i);
}

std::vector<std::uint8_t>
Sha1::finish()
{
    // Single padded-block update: 0x80 marker, zeros to the length
    // field, then the big-endian bit count — at most 72 bytes.
    const std::uint64_t bit_len = totalBytes * 8;
    const std::size_t fill = totalBytes % 64;
    std::uint8_t pad[72] = {0x80};
    const std::size_t pad_len = fill < 56 ? 56 - fill : 120 - fill;
    for (int i = 0; i < 8; ++i)
        pad[pad_len + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
    update({pad, pad_len + 8});

    std::vector<std::uint8_t> out(20);
    for (int i = 0; i < 5; ++i) {
        out[4 * i] = static_cast<std::uint8_t>(state[i] >> 24);
        out[4 * i + 1] = static_cast<std::uint8_t>(state[i] >> 16);
        out[4 * i + 2] = static_cast<std::uint8_t>(state[i] >> 8);
        out[4 * i + 3] = static_cast<std::uint8_t>(state[i]);
    }
    return out;
}

} // namespace ndp
} // namespace dcs
