#include "ndp/sha256.hh"

#include <cstring>

namespace dcs {
namespace ndp {

namespace {

constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
    0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
    0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
    0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
    0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
    0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
    0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
    0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

std::uint32_t
rotr(std::uint32_t x, int c)
{
    return (x >> c) | (x << (32 - c));
}

} // namespace

void
Sha256::reset()
{
    state = {0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
             0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u};
    buffer.fill(0);
    totalBytes = 0;
}

void
Sha256::processBlock(const std::uint8_t *block)
{
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
        w[i] = (std::uint32_t(block[4 * i]) << 24) |
               (std::uint32_t(block[4 * i + 1]) << 16) |
               (std::uint32_t(block[4 * i + 2]) << 8) |
               std::uint32_t(block[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
        const std::uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^
                                 (w[i - 15] >> 3);
        const std::uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^
                                 (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
    for (int i = 0; i < 64; ++i) {
        const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        const std::uint32_t ch = (e & f) ^ (~e & g);
        const std::uint32_t t1 = h + s1 + ch + kK[i] + w[i];
        const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        const std::uint32_t t2 = s0 + maj;
        h = g;
        g = f;
        f = e;
        e = d + t1;
        d = c;
        c = b;
        b = a;
        a = t1 + t2;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
}

void
Sha256::update(std::span<const std::uint8_t> data)
{
    std::size_t fill = totalBytes % 64;
    totalBytes += data.size();
    std::size_t i = 0;
    if (fill) {
        const std::size_t take = std::min<std::size_t>(64 - fill,
                                                       data.size());
        std::memcpy(buffer.data() + fill, data.data(), take);
        i = take;
        if (fill + take == 64)
            processBlock(buffer.data());
        else
            return;
    }
    for (; i + 64 <= data.size(); i += 64)
        processBlock(data.data() + i);
    if (i < data.size())
        std::memcpy(buffer.data(), data.data() + i, data.size() - i);
}

std::vector<std::uint8_t>
Sha256::finish()
{
    // Single padded-block update: 0x80 marker, zeros to the length
    // field, then the big-endian bit count — at most 72 bytes.
    const std::uint64_t bit_len = totalBytes * 8;
    const std::size_t fill = totalBytes % 64;
    std::uint8_t pad[72] = {0x80};
    const std::size_t pad_len = fill < 56 ? 56 - fill : 120 - fill;
    for (int i = 0; i < 8; ++i)
        pad[pad_len + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
    update({pad, pad_len + 8});

    std::vector<std::uint8_t> out(32);
    for (int i = 0; i < 8; ++i) {
        out[4 * i] = static_cast<std::uint8_t>(state[i] >> 24);
        out[4 * i + 1] = static_cast<std::uint8_t>(state[i] >> 16);
        out[4 * i + 2] = static_cast<std::uint8_t>(state[i] >> 8);
        out[4 * i + 3] = static_cast<std::uint8_t>(state[i]);
    }
    return out;
}

} // namespace ndp
} // namespace dcs
