/**
 * @file
 * AES-256 block cipher with CTR-mode streaming (FIPS 197 / SP 800-38A),
 * from scratch.
 *
 * The paper's NDP encryption unit is an AES-256 IP core (Table III);
 * scale-out storage applications (Swift, HDFS, S3, Azure Blob) apply
 * AES-256 as intermediate processing. CTR mode is used so encryption
 * and decryption are the same length-preserving transform, matching a
 * streaming FPGA datapath.
 */

#ifndef DCS_NDP_AES256_HH
#define DCS_NDP_AES256_HH

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace dcs {
namespace ndp {

/** AES-256 key schedule + single-block encryption. */
class Aes256
{
  public:
    static constexpr std::size_t keySize = 32;
    static constexpr std::size_t blockSize = 16;

    /** Expand @p key (32 bytes) into the round-key schedule. */
    explicit Aes256(std::span<const std::uint8_t> key);

    /** Encrypt one 16-byte block in place. */
    void encryptBlock(std::uint8_t block[blockSize]) const;

  private:
    // 15 round keys of 4 big-endian words each (Nr = 14), packed for
    // the T-table round function.
    std::array<std::uint32_t, 4 * 15> roundKeys{};
};

/**
 * CTR-mode stream: out[i] = in[i] XOR AES(key, counter_block(i)).
 * Calling it twice with the same key/nonce restores the plaintext.
 */
class Aes256Ctr
{
  public:
    Aes256Ctr(std::span<const std::uint8_t> key, std::uint64_t nonce);

    /** Transform a buffer (encrypt == decrypt). */
    std::vector<std::uint8_t> transform(std::span<const std::uint8_t> in);

    /** In-place variant for large buffers. */
    void transformInPlace(std::span<std::uint8_t> buf);

    /**
     * Transform @p in into @p out (which must hold in.size() bytes;
     * in.data() == out is allowed). The keystream position carries
     * across calls, so segmented input transforms bit-identically to
     * one contiguous call.
     */
    void transformInto(std::span<const std::uint8_t> in,
                       std::uint8_t *out);

    /**
     * Position the keystream at an absolute byte offset of the
     * stream, enabling independent chunk-wise processing.
     */
    void seek(std::uint64_t byte_offset);

  private:
    Aes256 cipher;
    std::uint64_t nonce;
    std::uint64_t counter = 0;
    std::array<std::uint8_t, 16> keystream{};
    std::size_t ksUsed = 16;

    void refill();
};

} // namespace ndp
} // namespace dcs

#endif // DCS_NDP_AES256_HH
