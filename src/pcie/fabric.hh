/**
 * @file
 * PCIe switch fabric: address routing + transaction timing.
 *
 * Models a multi-slot PCIe switch (the prototype uses a Cyclone
 * PCIe2-2707: Gen2, five slots, 80 Gbps backplane). Each attached
 * device gets a full-duplex link; transactions serialize on the source
 * link's upstream direction, the shared backplane, and the target
 * link's downstream direction, then complete functionally at the
 * target device. Peer-to-peer transfers never touch the host.
 */

#ifndef DCS_PCIE_FABRIC_HH
#define DCS_PCIE_FABRIC_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mem/buffer.hh"
#include "pcie/device.hh"
#include "pcie/link.hh"
#include "sim/sim_object.hh"

namespace dcs {
namespace pcie {

/** Switch-level configuration. */
struct FabricParams
{
    int slots = 5;
    double backplaneGbps = 80.0;
    Tick switchLatency = nanoseconds(150);
    LinkParams defaultLink{};
};

/** The switch: owns per-slot links and routes TLPs by address. */
class Fabric : public SimObject
{
  public:
    Fabric(EventQueue &eq, std::string name, FabricParams p = {});

    /**
     * Attach @p dev to the next free slot (or @p link-specific
     * parameters). The device's claimed ranges become routable.
     */
    int attach(Device &dev);
    int attach(Device &dev, LinkParams link);

    /** @name Transactions, issued on behalf of @p src. */
    /** @{ */

    /** Posted memory write; @p done fires when the TLP has landed.
     *  The payload travels as shared views — no copy is taken unless
     *  the target device's busWriteBulk falls back to one. */
    void memWrite(Device &src, Addr addr, BufChain data,
                  std::function<void()> done);

    /** Compatibility overload: adopts the vector's storage (no copy). */
    void
    memWrite(Device &src, Addr addr, std::vector<std::uint8_t> data,
             std::function<void()> done)
    {
        memWrite(src, addr, BufChain(Buffer::fromVector(std::move(data))),
                 std::move(done));
    }

    /**
     * Posted scalar write (register/doorbell/MSI, @p size <= 8): the
     * value rides in the TLP itself, with no payload allocation.
     * Timing and statistics match a memWrite of the same size.
     */
    void memWriteScalar(Device &src, Addr addr, std::uint64_t value,
                        unsigned size, std::function<void()> done);

    /** Non-posted read; @p done receives the data with the completion. */
    void memRead(Device &src, Addr addr, std::uint64_t len,
                 std::function<void(BufChain)> done);

    /** Non-posted scalar read (@p size <= 8), little-endian. */
    void memReadScalar(Device &src, Addr addr, unsigned size,
                       std::function<void(std::uint64_t)> done);
    /** @} */

    /** Device decoding @p addr, or nullptr. */
    Device *route(Addr addr) const;

    /** Total payload bytes moved device-to-device without host transit. */
    std::uint64_t p2pBytes() const { return _p2pBytes; }
    std::uint64_t totalBytes() const { return _totalBytes; }

    /** Small host-initiated MMIO writes (doorbells/registers): each is
     *  one software->hardware boundary crossing. */
    std::uint64_t hostMmioWrites() const { return _hostMmio; }

    /** Transactions issued but not yet landed at their target. */
    std::uint64_t outstandingWrites() const { return _writesInFlight; }
    std::uint64_t outstandingReads() const { return _readsInFlight; }

    const FabricParams &params() const { return _params; }

  private:
    struct Slot
    {
        Device *dev = nullptr;
        std::unique_ptr<Link> up;   //!< device -> switch
        std::unique_ptr<Link> down; //!< switch -> device
    };

    /**
     * Common TLP movement: serialize on src-up, backplane, dst-down.
     * @return arrival tick at the target device.
     */
    Tick moveTlp(Device &src, Device &dst, std::uint64_t payload);

    /** Expose slot @p slot_id's link counters in the stats tree. */
    void registerLinkStats(int slot_id);

    Slot &slotOf(Device &dev);

    FabricParams _params;
    std::vector<Slot> slotsInUse;
    Link backplane;
    std::uint64_t _p2pBytes = 0;
    std::uint64_t _totalBytes = 0;
    std::uint64_t _hostMmio = 0;
    std::uint64_t _writesInFlight = 0;
    std::uint64_t _readsInFlight = 0;
};

} // namespace pcie
} // namespace dcs

#endif // DCS_PCIE_FABRIC_HH
