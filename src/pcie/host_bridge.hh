/**
 * @file
 * Root-complex / host-bridge endpoint.
 *
 * Exposes host DRAM to the fabric (so devices can DMA into it) and an
 * MSI window: a posted write into the MSI range is delivered to a
 * registered interrupt handler, modelling message-signalled interrupts.
 */

#ifndef DCS_PCIE_HOST_BRIDGE_HH
#define DCS_PCIE_HOST_BRIDGE_HH

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "mem/memory.hh"
#include "pcie/device.hh"

namespace dcs {
namespace pcie {

/** Bridges the PCIe fabric to host DRAM and host interrupts. */
class HostBridge : public Device
{
  public:
    /** MSI delivery callback: (vector, payload value). */
    using MsiHandler = std::function<void(std::uint16_t, std::uint32_t)>;

    /**
     * @param dram host memory backing store.
     * @param dram_base bus address where host DRAM is mapped.
     * @param msi_base bus address of the MSI doorbell window.
     */
    HostBridge(EventQueue &eq, std::string name, Memory &dram,
               Addr dram_base, Addr msi_base);

    bool isHostBridge() const override { return true; }

    void busWrite(Addr addr, std::span<const std::uint8_t> data) override;
    void busRead(Addr addr, std::span<std::uint8_t> data) override;

    /** Zero-copy DMA into/out of host DRAM (adopt/borrow views). */
    void busWriteBulk(Addr addr, const BufChain &data) override;
    BufChain busReadBulk(Addr addr, std::uint64_t len) override;

    /** Install the handler invoked on MSI writes to @p vec. */
    void registerMsi(std::uint16_t vec, MsiHandler handler);

    Addr dramBase() const { return _dramBase; }

    /** Bus address a device must write to signal MSI vector @p vec. */
    Addr msiAddr(std::uint16_t vec) const { return _msiBase + vec * 4; }

    /** Bytes DMA'd into/out of host DRAM (indirect-path traffic). */
    std::uint64_t hostDmaBytes() const { return _hostDmaBytes; }

    /** MSIs delivered (hardware->software boundary crossings). */
    std::uint64_t msisDelivered() const { return _msis; }

  private:
    Memory &dram;
    Addr _dramBase;
    Addr _msiBase;
    static constexpr std::uint64_t msiWindow = 4096;
    std::unordered_map<std::uint16_t, MsiHandler> handlers;
    std::uint64_t _hostDmaBytes = 0;
    std::uint64_t _msis = 0;
};

} // namespace pcie
} // namespace dcs

#endif // DCS_PCIE_HOST_BRIDGE_HH
