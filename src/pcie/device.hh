/**
 * @file
 * Base class for PCIe endpoint devices.
 *
 * A Device claims bus address ranges (its BARs / exposed memory) and
 * implements functional busRead/busWrite to service TLPs that arrive
 * for those ranges — from the host or from peer devices (P2P). It can
 * itself master the bus with dmaRead/dmaWrite/mmio helpers.
 */

#ifndef DCS_PCIE_DEVICE_HH
#define DCS_PCIE_DEVICE_HH

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "mem/addr_range.hh"
#include "mem/buffer.hh"
#include "sim/sim_object.hh"

namespace dcs {
namespace pcie {

class Fabric;

/** A PCIe endpoint: slot occupant with BARs and bus mastering. */
class Device : public SimObject
{
  public:
    Device(EventQueue &eq, std::string name) : SimObject(eq, std::move(name))
    {
    }

    /**
     * Functional write of @p data at bus address @p addr (inside one
     * of this device's claimed ranges). Called by the fabric when a
     * MemWr TLP arrives; side effects (doorbells!) happen here.
     */
    virtual void busWrite(Addr addr, std::span<const std::uint8_t> data) = 0;

    /** Functional read servicing an arriving MemRd TLP. */
    virtual void busRead(Addr addr, std::span<std::uint8_t> data) = 0;

    /**
     * Bulk write delivery for the zero-copy data plane. The default
     * flattens the chain and forwards to busWrite (one copy when the
     * chain is segmented); devices backed by a Memory override this
     * to adopt() the views directly.
     */
    virtual void busWriteBulk(Addr addr, const BufChain &data);

    /**
     * Bulk read servicing. The default allocates and fills through
     * busRead (one copy); Memory-backed devices override it to
     * borrow() page views instead.
     */
    virtual BufChain busReadBulk(Addr addr, std::uint64_t len);

    /** Ranges this device decodes. */
    const std::vector<AddrRange> &claimedRanges() const { return ranges; }

    /**
     * True for the root-complex/host-bridge device. Used by the
     * fabric to classify transfers as P2P (neither endpoint is the
     * host) for the data-path statistics.
     */
    virtual bool isHostBridge() const { return false; }

    /** Fabric attachment point; set by Fabric::attach(). */
    void setFabric(Fabric *f, int slot_id);
    Fabric *fabric() const { return _fabric; }
    int slot() const { return _slot; }

  protected:
    /** Register a decoded range (call before attach). */
    void claimRange(AddrRange r) { ranges.push_back(r); }

    /** @name Bus-mastering helpers (implemented via the fabric). */
    /** @{ */
    /** Posted write whose payload moves as shared views. */
    void dmaWrite(Addr addr, BufChain data, std::function<void()> done);
    void
    dmaWrite(Addr addr, std::vector<std::uint8_t> data,
             std::function<void()> done)
    {
        dmaWrite(addr, BufChain(Buffer::fromVector(std::move(data))),
                 std::move(done));
    }
    void dmaRead(Addr addr, std::uint64_t len,
                 std::function<void(BufChain)> done);
    /** Small posted write (doorbell / MSI); no payload allocation. */
    void mmioWrite(Addr addr, std::uint64_t value, unsigned size,
                   std::function<void()> done = {});
    /** @} */

  private:
    std::vector<AddrRange> ranges;
    Fabric *_fabric = nullptr;
    int _slot = -1;
};

} // namespace pcie
} // namespace dcs

#endif // DCS_PCIE_DEVICE_HH
