/**
 * @file
 * Doorbell write batching.
 *
 * Producer-index doorbells (NVMe SQ tails, NIC ring pidx, the HDC
 * command-queue tail) are idempotent: writing only the latest value
 * commits every update before it. Under load that makes one MMIO
 * write per burst window equivalent to one per command — the
 * control-path traffic drops multiplicatively while the ring contents
 * are untouched.
 *
 * A batcher accumulates posted values and flushes the newest one when
 * either @p max updates are pending or @p holdoff has elapsed since
 * the first pending update. Disabled (max == 0) it writes through
 * immediately, bit-identical to the unbatched path.
 */

#ifndef DCS_PCIE_DOORBELL_HH
#define DCS_PCIE_DOORBELL_HH

#include <cstdint>
#include <functional>

#include "sim/event_queue.hh"

namespace dcs {
namespace pcie {

class DoorbellBatcher
{
  public:
    /** Performs the MMIO write of @p val (and any tracing). */
    using WriteFn = std::function<void(std::uint32_t val,
                                       std::uint64_t flow)>;
    /** Schedules @p fn after @p delay (the owner's event queue). */
    using DeferFn = std::function<void(Tick delay,
                                       std::function<void()> fn)>;

    /** Unconfigured batchers write through (never batch). */
    void
    configure(std::uint32_t max_updates, Tick holdoff, WriteFn write,
              DeferFn defer)
    {
        max = max_updates;
        holdoffTicks = holdoff;
        writeFn = std::move(write);
        deferFn = std::move(defer);
    }

    /** Record a new producer value; flushes per the batching policy. */
    void
    post(std::uint32_t val, std::uint64_t flow)
    {
        ++posted;
        if (max == 0) {
            ++writes;
            writeFn(val, flow);
            return;
        }
        pendingVal = val;
        pendingFlow = flow;
        ++pendingCount;
        if (pendingCount >= max) {
            flush();
            return;
        }
        if (!armed) {
            armed = true;
            deferFn(holdoffTicks, [this] {
                armed = false;
                flush();
            });
        }
    }

    /** Write the newest pending value now; no-op when none pending. */
    void
    flush()
    {
        if (pendingCount == 0)
            return;
        pendingCount = 0;
        ++writes;
        writeFn(pendingVal, pendingFlow);
    }

    /** @name Introspection: posted updates vs actual MMIO writes. */
    /** @{ */
    std::uint64_t updatesPosted() const { return posted; }
    std::uint64_t mmioWrites() const { return writes; }
    /** @} */

  private:
    std::uint32_t max = 0;
    Tick holdoffTicks = 0;
    WriteFn writeFn;
    DeferFn deferFn;

    std::uint32_t pendingVal = 0;
    std::uint64_t pendingFlow = 0;
    std::uint32_t pendingCount = 0;
    bool armed = false;

    std::uint64_t posted = 0;
    std::uint64_t writes = 0;
};

} // namespace pcie
} // namespace dcs

#endif // DCS_PCIE_DOORBELL_HH
