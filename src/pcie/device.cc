#include "pcie/device.hh"

#include <cstring>

#include "pcie/fabric.hh"
#include "sim/logging.hh"

namespace dcs {
namespace pcie {

void
Device::setFabric(Fabric *f, int slot_id)
{
    _fabric = f;
    _slot = slot_id;
}

void
Device::busWriteBulk(Addr addr, const BufChain &data)
{
    // Generic fallback: deliver as one contiguous write so devices
    // that react to write extents (BRAM doorbell windows, MSI ranges)
    // see exactly the same (addr, size) they always did. flatten() is
    // zero-copy for single-segment chains.
    const Buffer flat = data.flatten();
    busWrite(addr, flat.span());
}

BufChain
Device::busReadBulk(Addr addr, std::uint64_t len)
{
    Buffer b = Buffer::allocate(len);
    busRead(addr, {b.mutableData(), static_cast<std::size_t>(len)});
    return BufChain(std::move(b));
}

void
Device::dmaWrite(Addr addr, BufChain data, std::function<void()> done)
{
    if (!_fabric)
        panic("%s: DMA before fabric attach", name().c_str());
    _fabric->memWrite(*this, addr, std::move(data), std::move(done));
}

void
Device::dmaRead(Addr addr, std::uint64_t len,
                std::function<void(BufChain)> done)
{
    if (!_fabric)
        panic("%s: DMA before fabric attach", name().c_str());
    _fabric->memRead(*this, addr, len, std::move(done));
}

void
Device::mmioWrite(Addr addr, std::uint64_t value, unsigned size,
                  std::function<void()> done)
{
    if (size > 8)
        panic("%s: MMIO write wider than 8 bytes", name().c_str());
    if (!_fabric)
        panic("%s: DMA before fabric attach", name().c_str());
    _fabric->memWriteScalar(*this, addr, value, size, std::move(done));
}

} // namespace pcie
} // namespace dcs
