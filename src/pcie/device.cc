#include "pcie/device.hh"

#include <cstring>

#include "pcie/fabric.hh"
#include "sim/logging.hh"

namespace dcs {
namespace pcie {

void
Device::setFabric(Fabric *f, int slot_id)
{
    _fabric = f;
    _slot = slot_id;
}

void
Device::dmaWrite(Addr addr, std::vector<std::uint8_t> data,
                 std::function<void()> done)
{
    if (!_fabric)
        panic("%s: DMA before fabric attach", name().c_str());
    _fabric->memWrite(*this, addr, std::move(data), std::move(done));
}

void
Device::dmaRead(Addr addr, std::uint64_t len,
                std::function<void(std::vector<std::uint8_t>)> done)
{
    if (!_fabric)
        panic("%s: DMA before fabric attach", name().c_str());
    _fabric->memRead(*this, addr, len, std::move(done));
}

void
Device::mmioWrite(Addr addr, std::uint64_t value, unsigned size,
                  std::function<void()> done)
{
    if (size > 8)
        panic("%s: MMIO write wider than 8 bytes", name().c_str());
    std::vector<std::uint8_t> payload(size);
    std::memcpy(payload.data(), &value, size);
    dmaWrite(addr, std::move(payload), std::move(done));
}

} // namespace pcie
} // namespace dcs
