#include "pcie/host_bridge.hh"

#include <cstring>

#include "sim/logging.hh"

namespace dcs {
namespace pcie {

HostBridge::HostBridge(EventQueue &eq, std::string name, Memory &dram,
                       Addr dram_base, Addr msi_base)
    : Device(eq, std::move(name)), dram(dram), _dramBase(dram_base),
      _msiBase(msi_base)
{
    claimRange({dram_base, dram.size()});
    claimRange({msi_base, msiWindow});
}

void
HostBridge::busWrite(Addr addr, std::span<const std::uint8_t> data)
{
    if (addr >= _msiBase && addr < _msiBase + msiWindow) {
        const auto vec = static_cast<std::uint16_t>((addr - _msiBase) / 4);
        std::uint32_t value = 0;
        std::memcpy(&value, data.data(),
                    std::min<std::size_t>(data.size(), sizeof(value)));
        auto it = handlers.find(vec);
        if (it == handlers.end())
            panic("%s: MSI to unregistered vector %u", name().c_str(), vec);
        ++_msis;
        TRACE_INSTANT(tracer(), now(), name(), "msi_dispatch");
        it->second(vec, value);
        return;
    }
    _hostDmaBytes += data.size();
    dram.write(addr - _dramBase, data.data(), data.size());
}

void
HostBridge::busRead(Addr addr, std::span<std::uint8_t> data)
{
    if (addr >= _msiBase && addr < _msiBase + msiWindow)
        panic("%s: read from MSI window", name().c_str());
    _hostDmaBytes += data.size();
    dram.read(addr - _dramBase, data.data(), data.size());
}

void
HostBridge::busWriteBulk(Addr addr, const BufChain &data)
{
    if (addr >= _msiBase && addr < _msiBase + msiWindow) {
        Device::busWriteBulk(addr, data); // scalar MSI path
        return;
    }
    _hostDmaBytes += data.size();
    dram.adopt(addr - _dramBase, data);
}

BufChain
HostBridge::busReadBulk(Addr addr, std::uint64_t len)
{
    if (addr >= _msiBase && addr < _msiBase + msiWindow)
        panic("%s: read from MSI window", name().c_str());
    _hostDmaBytes += len;
    return dram.borrow(addr - _dramBase, len);
}

void
HostBridge::registerMsi(std::uint16_t vec, MsiHandler handler)
{
    handlers[vec] = std::move(handler);
}

} // namespace pcie
} // namespace dcs
