#include "pcie/fabric.hh"

#include <algorithm>
#include <cstring>

#include "sim/check.hh"
#include "sim/logging.hh"

namespace dcs {
namespace pcie {

Fabric::Fabric(EventQueue &eq, std::string name, FabricParams p)
    : SimObject(eq, std::move(name)), _params(p),
      backplane(LinkParams{Gen::Gen3, 16, nanoseconds(0), 512, 16})
{
    // Configure the backplane as a single serialization resource at
    // the advertised aggregate rate by scaling lane count. We reuse
    // Link for its cursor logic; the exact gen/lane split is
    // irrelevant as long as effective bandwidth matches.
    const double per_lane = laneGbps(Gen::Gen3);
    const int lanes =
        std::max(1, static_cast<int>(p.backplaneGbps / per_lane + 0.5));
    backplane = Link(LinkParams{Gen::Gen3, lanes, nanoseconds(0), 512, 16});

    statsGroup().addCounter("p2p_bytes", _p2pBytes,
                            "payload bytes moved device-to-device");
    statsGroup().addCounter("total_bytes", _totalBytes,
                            "payload bytes across the switch");
    statsGroup().addCounter("host_mmio_writes", _hostMmio,
                            "host-initiated register/doorbell writes");
    statsGroup().addValue(
        "backplane_bytes",
        [this] { return static_cast<double>(backplane.bytesCarried()); },
        "payload bytes over the shared backplane");
    statsGroup().addValue(
        "backplane_busy_us",
        [this] { return toMicroseconds(backplane.busyTime()); },
        "backplane occupancy");
    statsGroup().addValue(
        "backplane_tlps",
        [this] { return static_cast<double>(backplane.tlpsCarried()); },
        "TLPs over the shared backplane");

    // Mirror the headline byte counters as trace counter tracks so a
    // trace shows fabric load next to the request spans.
    tracer().addCounter(this->name(), "p2p_bytes", [this] {
        return static_cast<double>(_p2pBytes);
    });
    tracer().addCounter(this->name(), "total_bytes", [this] {
        return static_cast<double>(_totalBytes);
    });
    tracer().addCounter(this->name(), "host_mmio_writes", [this] {
        return static_cast<double>(_hostMmio);
    });
    tracer().addCounter(this->name(), "backplane_busy_us", [this] {
        return toMicroseconds(backplane.busyTime());
    });
}

void
Fabric::registerLinkStats(int slot_id)
{
    // Per-slot link stats live under the fabric's group as
    // `slotN_*` leaves: Links are passive (not SimObjects) and the
    // slot vector never shrinks, so the references stay valid.
    const Slot &s = slotsInUse.at(static_cast<std::size_t>(slot_id));
    const std::string prefix =
        "slot" + std::to_string(slot_id) + "_" + s.dev->name();
    const Link *up = s.up.get();
    const Link *down = s.down.get();
    statsGroup().addValue(
        prefix + "_up_bytes",
        [up] { return static_cast<double>(up->bytesCarried()); },
        "device->switch payload bytes");
    statsGroup().addValue(
        prefix + "_down_bytes",
        [down] { return static_cast<double>(down->bytesCarried()); },
        "switch->device payload bytes");
    statsGroup().addValue(
        prefix + "_up_busy_us",
        [up] { return toMicroseconds(up->busyTime()); },
        "upstream link occupancy");
    statsGroup().addValue(
        prefix + "_down_busy_us",
        [down] { return toMicroseconds(down->busyTime()); },
        "downstream link occupancy");
}

int
Fabric::attach(Device &dev)
{
    return attach(dev, _params.defaultLink);
}

int
Fabric::attach(Device &dev, LinkParams link)
{
    if (static_cast<int>(slotsInUse.size()) >= _params.slots)
        fatal("%s: all %d slots occupied", name().c_str(), _params.slots);
    for (const auto &s : slotsInUse)
        for (const auto &r_new : dev.claimedRanges())
            for (const auto &r_old : s.dev->claimedRanges())
                if (r_new.overlaps(r_old))
                    fatal("%s: BAR overlap between %s and %s",
                          name().c_str(), dev.name().c_str(),
                          s.dev->name().c_str());
    Slot s;
    s.dev = &dev;
    s.up = std::make_unique<Link>(link);
    s.down = std::make_unique<Link>(link);
    slotsInUse.push_back(std::move(s));
    const int id = static_cast<int>(slotsInUse.size()) - 1;
    dev.setFabric(this, id);
    registerLinkStats(id);
    return id;
}

Device *
Fabric::route(Addr addr) const
{
    for (const auto &s : slotsInUse)
        for (const auto &r : s.dev->claimedRanges())
            if (r.contains(addr))
                return s.dev;
    return nullptr;
}

Fabric::Slot &
Fabric::slotOf(Device &dev)
{
    for (auto &s : slotsInUse)
        if (s.dev == &dev)
            return s;
    panic("%s: device %s is not attached", name().c_str(),
          dev.name().c_str());
}

Tick
Fabric::moveTlp(Device &src, Device &dst, std::uint64_t payload)
{
    Slot &s_src = slotOf(src);
    Slot &s_dst = slotOf(dst);
    const Tick t_up = s_src.up->reserve(now(), payload);
    const Tick t_bp =
        backplane.reserve(t_up + _params.switchLatency, payload);
    const Tick t_down = s_dst.down->reserve(t_bp, payload);
    const Tick arrival = t_down + s_dst.down->propagation() +
                         s_src.up->propagation();
    DCS_CHECK_GE(arrival, now(), "%s: TLP arrives before it was sent",
                 name().c_str());
    return arrival;
}

void
Fabric::memWrite(Device &src, Addr addr, BufChain data,
                 std::function<void()> done)
{
    Device *dst = route(addr);
    if (!dst)
        panic("%s: MemWr to unmapped address %llx", name().c_str(),
              (unsigned long long)addr);
    _totalBytes += data.size();
    if (!src.isHostBridge() && !dst->isHostBridge())
        _p2pBytes += data.size();
    if (src.isHostBridge() && data.size() <= 8) {
        ++_hostMmio;
        // Small host-initiated writes are register/doorbell MMIO: the
        // host->device boundary crossing worth marking in a trace.
        TRACE_INSTANT(tracer(), now(), name(), "host_mmio");
    }
    const Tick arrival = moveTlp(src, *dst, data.size());
    ++_writesInFlight;
    schedule(arrival - now(),
             [this, dst, addr, payload = std::move(data),
              cb = std::move(done)]() mutable {
                 DCS_CHECK_GT(_writesInFlight, 0u,
                              "%s: write landed but none in flight",
                              name().c_str());
                 --_writesInFlight;
                 dst->busWriteBulk(addr, payload);
                 if (cb)
                     cb();
             });
}

void
Fabric::memWriteScalar(Device &src, Addr addr, std::uint64_t value,
                       unsigned size, std::function<void()> done)
{
    if (size > 8)
        panic("%s: scalar write wider than 8 bytes", name().c_str());
    Device *dst = route(addr);
    if (!dst)
        panic("%s: MemWr to unmapped address %llx", name().c_str(),
              (unsigned long long)addr);
    _totalBytes += size;
    if (!src.isHostBridge() && !dst->isHostBridge())
        _p2pBytes += size;
    if (src.isHostBridge()) {
        ++_hostMmio;
        TRACE_INSTANT(tracer(), now(), name(), "host_mmio");
    }
    const Tick arrival = moveTlp(src, *dst, size);
    ++_writesInFlight;
    schedule(arrival - now(),
             [this, dst, addr, value, size, cb = std::move(done)]() mutable {
                 DCS_CHECK_GT(_writesInFlight, 0u,
                              "%s: write landed but none in flight",
                              name().c_str());
                 --_writesInFlight;
                 std::uint8_t raw[8];
                 std::memcpy(raw, &value, sizeof(raw));
                 dst->busWrite(addr, {raw, size});
                 if (cb)
                     cb();
             });
}

void
Fabric::memRead(Device &src, Addr addr, std::uint64_t len,
                std::function<void(BufChain)> done)
{
    Device *dst = route(addr);
    if (!dst)
        panic("%s: MemRd to unmapped address %llx", name().c_str(),
              (unsigned long long)addr);
    _totalBytes += len;
    if (!src.isHostBridge() && !dst->isHostBridge())
        _p2pBytes += len;
    // Request TLP (no payload) to the target...
    const Tick req_arrival = moveTlp(src, *dst, 0);
    ++_readsInFlight;
    // ...then completion-with-data TLPs back to the requester.
    Device *requester = &src;
    schedule(req_arrival - now(), [this, dst, requester, addr, len,
                                   cb = std::move(done)]() mutable {
        BufChain data = dst->busReadBulk(addr, len);
        const Tick cpl_arrival = moveTlp(*dst, *requester, len);
        schedule(cpl_arrival - now(),
                 [this, payload = std::move(data),
                  cb = std::move(cb)]() mutable {
                     DCS_CHECK_GT(_readsInFlight, 0u,
                                  "%s: completion without outstanding "
                                  "read",
                                  name().c_str());
                     --_readsInFlight;
                     cb(std::move(payload));
                 });
    });
}

void
Fabric::memReadScalar(Device &src, Addr addr, unsigned size,
                      std::function<void(std::uint64_t)> done)
{
    if (size > 8)
        panic("%s: scalar read wider than 8 bytes", name().c_str());
    Device *dst = route(addr);
    if (!dst)
        panic("%s: MemRd to unmapped address %llx", name().c_str(),
              (unsigned long long)addr);
    _totalBytes += size;
    if (!src.isHostBridge() && !dst->isHostBridge())
        _p2pBytes += size;
    const Tick req_arrival = moveTlp(src, *dst, 0);
    ++_readsInFlight;
    Device *requester = &src;
    schedule(req_arrival - now(), [this, dst, requester, addr, size,
                                   cb = std::move(done)]() mutable {
        std::uint8_t raw[8] = {};
        dst->busRead(addr, {raw, size});
        std::uint64_t value = 0;
        std::memcpy(&value, raw, sizeof(raw));
        const Tick cpl_arrival = moveTlp(*dst, *requester, size);
        schedule(cpl_arrival - now(),
                 [this, value, cb = std::move(cb)]() mutable {
                     DCS_CHECK_GT(_readsInFlight, 0u,
                                  "%s: completion without outstanding "
                                  "read",
                                  name().c_str());
                     --_readsInFlight;
                     cb(value);
                 });
    });
}

} // namespace pcie
} // namespace dcs
