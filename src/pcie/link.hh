/**
 * @file
 * Serializing PCIe link model.
 *
 * A link carries TLPs at the effective data rate of its generation and
 * width, charging per-TLP framing overhead (header + DLLP/framing, with
 * the payload split at maxPayload granularity). Occupancy is modelled
 * with a next-free cursor: back-to-back transfers queue behind each
 * other, which is what produces bandwidth saturation effects.
 */

#ifndef DCS_PCIE_LINK_HH
#define DCS_PCIE_LINK_HH

#include <cstdint>

#include "sim/ticks.hh"

namespace dcs {
namespace pcie {

/** PCIe generation: determines per-lane raw rate and encoding. */
enum class Gen
{
    Gen1, //!< 2.5 GT/s, 8b/10b
    Gen2, //!< 5.0 GT/s, 8b/10b
    Gen3, //!< 8.0 GT/s, 128b/130b
    Gen4, //!< 16 GT/s, 128b/130b
};

/** Effective per-lane data rate in Gbps after encoding overhead. */
double laneGbps(Gen gen);

/** Static configuration of one link. */
struct LinkParams
{
    Gen gen = Gen::Gen2;
    int lanes = 8;
    /** One-way propagation + PHY/logic latency. */
    Tick propagation = nanoseconds(120);
    /** Max TLP payload per packet. */
    std::uint32_t maxPayload = 256;
    /** TLP header + framing + DLLP amortized overhead per packet. */
    std::uint32_t tlpOverhead = 26;
};

/**
 * One direction of a PCIe link (full duplex = two Link instances).
 */
class Link
{
  public:
    explicit Link(LinkParams p) : params(p) {}

    /**
     * Reserve the link to move @p payload_bytes starting no earlier
     * than @p earliest.
     * @return the tick at which the last byte has been serialized
     *         (propagation not yet added).
     */
    Tick reserve(Tick earliest, std::uint64_t payload_bytes);

    /** Serialization time of @p payload_bytes including TLP overhead. */
    Tick serializationTime(std::uint64_t payload_bytes) const;

    Tick propagation() const { return params.propagation; }

    /** Effective payload bandwidth in Gbps (for reporting). */
    double effectiveGbps() const;

    /** Total bytes (payload only) carried so far. */
    std::uint64_t bytesCarried() const { return carried; }

    /** Total time this link spent busy. */
    Tick busyTime() const { return busy; }

    /** Total TLPs reserved on this link. */
    std::uint64_t tlpsCarried() const { return tlps; }

  private:
    LinkParams params;
    Tick nextFree = 0;
    Tick busy = 0;
    std::uint64_t carried = 0;
    std::uint64_t tlps = 0;
};

} // namespace pcie
} // namespace dcs

#endif // DCS_PCIE_LINK_HH
