#include "pcie/link.hh"

#include <algorithm>

#include "sim/check.hh"
#include "sim/logging.hh"

namespace dcs {
namespace pcie {

double
laneGbps(Gen gen)
{
    switch (gen) {
      case Gen::Gen1:
        return 2.5 * 0.8;
      case Gen::Gen2:
        return 5.0 * 0.8;
      case Gen::Gen3:
        return 8.0 * (128.0 / 130.0);
      case Gen::Gen4:
        return 16.0 * (128.0 / 130.0);
    }
    panic("unknown PCIe generation");
}

Tick
Link::serializationTime(std::uint64_t payload_bytes) const
{
    const double raw_gbps = laneGbps(params.gen) * params.lanes;
    // Every maxPayload-sized piece pays the TLP framing overhead;
    // a zero-payload packet (pure read request / doorbell) pays one.
    const std::uint64_t tlps =
        std::max<std::uint64_t>(1, (payload_bytes + params.maxPayload - 1) /
                                       params.maxPayload);
    const std::uint64_t wire_bytes =
        payload_bytes + tlps * params.tlpOverhead;
    return transferTime(wire_bytes, raw_gbps);
}

Tick
Link::reserve(Tick earliest, std::uint64_t payload_bytes)
{
    const Tick start = std::max(earliest, nextFree);
    const Tick dur = serializationTime(payload_bytes);
    DCS_CHECK_GT(dur, 0u, "zero-duration TLP serialization");
    DCS_CHECK_GE(start + dur, start, "link cursor overflow");
    nextFree = start + dur;
    busy += dur;
    carried += payload_bytes;
    ++tlps;
    // The cursor only moves forward, and cumulative busy time can
    // never exceed the span the cursor has covered.
    DCS_CHECK_LE(busy, nextFree, "link busy time exceeds cursor span");
    return nextFree;
}

double
Link::effectiveGbps() const
{
    const double raw = laneGbps(params.gen) * params.lanes;
    const double eff = static_cast<double>(params.maxPayload) /
                       (params.maxPayload + params.tlpOverhead);
    return raw * eff;
}

} // namespace pcie
} // namespace dcs
