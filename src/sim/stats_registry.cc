#include "sim/stats_registry.hh"

#include "sim/check.hh"
#include "sim/logging.hh"

namespace dcs {
namespace stats {

Group::~Group()
{
    if (reg)
        reg->detach(*this);
}

void
Group::add(std::string name, std::string desc,
           std::function<void(json::JsonWriter &)> emit)
{
    for (const Stat &s : stats)
        if (s.name == name)
            panic("stats group %s: duplicate stat `%s'", _path.c_str(),
                  name.c_str());
    stats.push_back(
        Stat{std::move(name), std::move(desc), std::move(emit)});
}

void
Group::addScalar(std::string name, const Scalar &s, std::string desc)
{
    add(std::move(name), std::move(desc),
        [&s](json::JsonWriter &w) { w.value(s.value()); });
}

void
Group::addCounter(std::string name, const std::uint64_t &v,
                  std::string desc)
{
    add(std::move(name), std::move(desc),
        [&v](json::JsonWriter &w) { w.value(v); });
}

void
Group::addValue(std::string name, std::function<double()> get,
                std::string desc)
{
    add(std::move(name), std::move(desc),
        [get = std::move(get)](json::JsonWriter &w) { w.value(get()); });
}

namespace {

void
emitDistributionFields(json::JsonWriter &w, const Distribution &d)
{
    w.key("count");
    w.value(static_cast<std::uint64_t>(d.count()));
    w.key("mean");
    w.value(d.mean());
    w.key("stddev");
    w.value(d.stddev());
    w.key("min");
    w.value(d.min());
    w.key("max");
    w.value(d.max());
    w.key("sum");
    w.value(d.sum());
}

} // namespace

void
Group::addDistribution(std::string name, const Distribution &d,
                       std::string desc)
{
    add(std::move(name), std::move(desc), [&d](json::JsonWriter &w) {
        w.beginObject();
        emitDistributionFields(w, d);
        w.endObject();
    });
}

void
Group::addSampled(std::string name, const SampledDistribution &d,
                  std::string desc)
{
    add(std::move(name), std::move(desc), [&d](json::JsonWriter &w) {
        w.beginObject();
        emitDistributionFields(w, d);
        w.key("p50");
        w.value(d.quantile(0.5));
        w.key("p90");
        w.value(d.quantile(0.9));
        w.key("p99");
        w.value(d.quantile(0.99));
        w.key("p999");
        w.value(d.quantile(0.999));
        w.endObject();
    });
}

void
Registry::attach(Group &g, std::string path)
{
    DCS_INVARIANT(!g.reg, "stats group %s attached twice", path.c_str());
    std::string unique = path;
    for (int suffix = 2; groups.count(unique); ++suffix)
        unique = path + "#" + std::to_string(suffix);
    g.reg = this;
    g._path = unique;
    groups.emplace(std::move(unique), &g);
}

void
Registry::detach(Group &g)
{
    if (g.reg != this)
        return;
    groups.erase(g._path);
    g.reg = nullptr;
}

const Group *
Registry::find(const std::string &path) const
{
    auto it = groups.find(path);
    return it == groups.end() ? nullptr : it->second;
}

void
Registry::dumpJson(json::JsonWriter &w) const
{
    w.beginObject();
    // std::map iteration: sorted by path, deterministic.
    for (const auto &[path, group] : groups) {
        if (group->stats.empty())
            continue;
        w.key(path);
        w.beginObject();
        for (const Group::Stat &s : group->stats) {
            w.key(s.name);
            s.emit(w);
        }
        w.endObject();
    }
    w.endObject();
}

std::string
Registry::dumpJsonString() const
{
    json::JsonWriter w;
    dumpJson(w);
    return w.str();
}

} // namespace stats
} // namespace dcs
