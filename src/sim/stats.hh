/**
 * @file
 * Minimal statistics primitives for experiment readouts.
 */

#ifndef DCS_SIM_STATS_HH
#define DCS_SIM_STATS_HH

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "sim/rng.hh"

namespace dcs {
namespace stats {

/** A running scalar accumulator. */
class Scalar
{
  public:
    void add(double v = 1.0) { total += v; }
    void reset() { total = 0.0; }
    double value() const { return total; }

  private:
    double total = 0.0;
};

/**
 * Streaming summary of a sample population (Welford mean/variance).
 *
 * sample()/reset() are virtual so refinements (SampledDistribution)
 * behave identically through a `Distribution &`: a caller feeding a
 * base reference must never silently bypass the derived bookkeeping.
 */
class Distribution
{
  public:
    Distribution() = default;
    virtual ~Distribution() = default;
    Distribution(const Distribution &) = default;
    Distribution &operator=(const Distribution &) = default;

    virtual void
    sample(double v)
    {
        ++n;
        const double delta = v - mu;
        mu += delta / static_cast<double>(n);
        m2 += delta * (v - mu);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
        total += v;
    }

    virtual void
    reset()
    {
        n = 0;
        mu = 0.0;
        m2 = 0.0;
        total = 0.0;
        lo = std::numeric_limits<double>::infinity();
        hi = -std::numeric_limits<double>::infinity();
    }

    std::size_t count() const { return n; }
    double mean() const { return n ? mu : 0.0; }
    double sum() const { return total; }
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }

    double
    stddev() const
    {
        return n > 1 ? std::sqrt(m2 / static_cast<double>(n - 1)) : 0.0;
    }

  private:
    std::size_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double total = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
};

/**
 * A fixed set of named accumulators indexed by an enum whose last
 * enumerator is NumCategories. Used for latency and CPU-time breakdowns.
 */
template <typename Enum, std::size_t N = static_cast<std::size_t>(
                             Enum::NumCategories)>
class Breakdown
{
  public:
    void
    add(Enum c, double v)
    {
        vals[static_cast<std::size_t>(c)] += v;
    }

    double
    get(Enum c) const
    {
        return vals[static_cast<std::size_t>(c)];
    }

    double
    total() const
    {
        double t = 0.0;
        for (double v : vals)
            t += v;
        return t;
    }

    void reset() { vals.fill(0.0); }

    static constexpr std::size_t size() { return N; }

  private:
    std::array<double, N> vals{};
};

/**
 * A Distribution that additionally stores samples (up to a cap) so
 * quantiles can be reported. Sized for per-request latency series.
 *
 * Beyond the cap the store becomes a uniform reservoir (Vitter's
 * Algorithm R) driven by a private fixed-seed Rng, so results are
 * deterministic across runs and thread counts: the same sample
 * sequence always yields the same reservoir. Populations at or below
 * the cap are stored exactly (no Rng draw happens until the reservoir
 * is full), so existing small-sample workloads are bit-unchanged.
 *
 * Bias bounds: a size-k uniform reservoir makes quantile(q) an
 * unbiased order-statistic estimate whose rank standard error is
 * sqrt(q(1-q)/k) of the population. At the default k = 65536 that is
 * ~0.2% of rank at p50 and ~0.012% at p999 — i.e. the reported p999
 * sits between the true p99.88 and p99.92 at one sigma. min/max/
 * mean/stddev come from the exact streaming summary, never the
 * reservoir.
 */
class SampledDistribution : public Distribution
{
  public:
    explicit SampledDistribution(std::size_t max_samples = 1 << 16)
        : maxSamples(max_samples), rng(0x5eedc0defeedULL)
    {
    }

    void
    sample(double v) override
    {
        Distribution::sample(v);
        if (samples.size() < maxSamples) {
            samples.push_back(v);
            sortedDirty = true;
            return;
        }
        if (maxSamples == 0)
            return;
        // Algorithm R: keep the new sample with probability k/n.
        const std::uint64_t j =
            rng.uniformInt(0, static_cast<std::uint64_t>(count()) - 1);
        if (j < maxSamples) {
            samples[static_cast<std::size_t>(j)] = v;
            sortedDirty = true;
        }
    }

    /**
     * Quantile in [0, 1]; 0.5 = median. Linear interpolation between
     * the two nearest order statistics of the stored sample set, so
     * small populations are not biased low the way truncating
     * nearest-rank is.
     */
    double
    quantile(double q) const
    {
        if (samples.empty())
            return 0.0;
        // Reporting paths ask for whole ladders of quantiles (p50/p90/
        // p99/p999/...) against an unchanged sample set; sort once per
        // mutation epoch, not once per question. The cache holds a
        // copy so the insertion-ordered reservoir (which the sampling
        // algorithm keeps overwriting in place) stays untouched.
        if (sortedDirty) {
            sortedCache = samples;
            std::sort(sortedCache.begin(), sortedCache.end());
            sortedDirty = false;
        }
        const std::vector<double> &sorted = sortedCache;
        if (q <= 0.0)
            return sorted.front();
        if (q >= 1.0)
            return sorted.back();
        const double pos = q * static_cast<double>(sorted.size() - 1);
        const std::size_t idx = static_cast<std::size_t>(pos);
        if (idx + 1 >= sorted.size())
            return sorted.back();
        const double frac = pos - static_cast<double>(idx);
        return sorted[idx] + frac * (sorted[idx + 1] - sorted[idx]);
    }

    std::size_t storedSamples() const { return samples.size(); }

    void
    reset() override
    {
        Distribution::reset();
        samples.clear();
        sortedCache.clear();
        sortedDirty = true;
        rng = Rng(0x5eedc0defeedULL);
    }

  private:
    std::size_t maxSamples;
    std::vector<double> samples;
    mutable std::vector<double> sortedCache;
    mutable bool sortedDirty = true;
    Rng rng;
};

} // namespace stats
} // namespace dcs

#endif // DCS_SIM_STATS_HH
