#include "sim/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace dcs {

namespace {
// Atomic so the parallel bench runner can flip verbosity from its
// driver thread while workers log.
std::atomic<bool> verboseEnabled{true};
thread_local const std::uint64_t *logTick = nullptr;

void
emit(const char *tag, const char *fmt, std::va_list args)
{
    if (logTick)
        std::fprintf(stderr, "[tick %llu] %s: ",
                     (unsigned long long)*logTick, tag);
    else
        std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
}
} // namespace

const std::uint64_t *
setLogTickSource(const std::uint64_t *tick)
{
    const std::uint64_t *prev = logTick;
    logTick = tick;
    return prev;
}

std::string
vcsprintf(const char *fmt, std::va_list args)
{
    std::va_list copy;
    va_copy(copy, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (n <= 0)
        return {};
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
csprintf(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vcsprintf(fmt, args);
    va_end(args);
    return s;
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    emit("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    emit("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    emit("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (!verboseEnabled.load(std::memory_order_relaxed))
        return;
    std::va_list args;
    va_start(args, fmt);
    emit("info", fmt, args);
    va_end(args);
}

void
setVerbose(bool verbose)
{
    verboseEnabled.store(verbose, std::memory_order_relaxed);
}

} // namespace dcs
