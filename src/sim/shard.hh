/**
 * @file
 * Sharded simulation core: run one simulation across several event
 * queues (shards) on several threads, conservatively synchronized.
 *
 * The scheme is classic conservative parallel discrete-event
 * simulation with link-latency lookahead (SimBricks-style):
 *
 *  - every cross-shard interaction travels over a modelled link whose
 *    propagation delay is at least `lookahead` ticks, so a message a
 *    shard sends at tick t cannot take effect elsewhere before
 *    t + lookahead;
 *  - the run loop therefore alternates barrier rounds: compute the
 *    global minimum pending tick `gmin` (earliest queued event or
 *    undelivered cross-shard message anywhere), then let every shard
 *    run freely through the window [gmin, gmin + lookahead - 1] —
 *    nothing produced inside the window can land inside it;
 *  - cross-shard messages are not handed to the destination queue
 *    directly (that would race); they sit in per-destination inboxes
 *    and are injected at the next barrier, sorted by
 *    (when, source-endpoint, per-source sequence). The sort key is
 *    *logical*, so the injection order — and hence every downstream
 *    event sequence — is independent of thread count, thread
 *    interleaving, and even of how logical endpoints are packed onto
 *    physical queues. That is what keeps a 1-queue and an N-queue run
 *    of the same topology event-stream identical per node.
 *
 * Thread discipline (see sim/event_pool.hh): an EventQueue and every
 * callback scheduled on it must live on a single thread. ShardExecutor
 * pins shard i to worker i % T for the executor's whole lifetime, and
 * all touching of a shard's objects — construction, bring-up, run
 * windows, teardown — goes through it. With T == 1 everything runs
 * inline on the caller.
 *
 * docs/PERFORMANCE.md §5 documents the lookahead math and the
 * determinism argument in full.
 */

#ifndef DCS_SIM_SHARD_HH
#define DCS_SIM_SHARD_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/ticks.hh"

namespace dcs {
namespace sim {

/**
 * Pins N shards onto T worker threads (shard i on worker i % T) and
 * runs phases: a phase applies one function to every shard, each on
 * its owning thread, and returns when all are done. The mutex/condvar
 * handoff at each phase boundary gives the coordinator thread a
 * happens-before edge to every shard's state, so it may inspect
 * queues between phases without extra synchronization.
 */
class ShardExecutor
{
  public:
    /** @param threads 0 or 1 = run inline on the caller. */
    ShardExecutor(std::size_t shards, unsigned threads);
    ~ShardExecutor();
    ShardExecutor(const ShardExecutor &) = delete;
    ShardExecutor &operator=(const ShardExecutor &) = delete;

    std::size_t shards() const { return nShards; }
    unsigned threads() const { return nThreads; }

    /** Run fn(shard) for every shard on its owner thread; blocks. */
    void forEach(const std::function<void(std::size_t)> &fn);

    /** Run fn on shard @p shard's owner thread; blocks. */
    void on(std::size_t shard, const std::function<void()> &fn);

  private:
    void workerMain(unsigned worker);

    const std::size_t nShards;
    const unsigned nThreads;

    std::mutex mu;
    std::condition_variable cvPhase; //!< workers wait for a new phase
    std::condition_variable cvDone;  //!< coordinator waits for drain
    const std::function<void(std::size_t)> *phaseFn = nullptr;
    std::uint64_t phaseGen = 0;
    unsigned phasePending = 0;
    bool stopping = false;
    std::vector<std::thread> workers;
};

/**
 * Mailboxes for cross-shard event handoff. Endpoints are *logical*:
 * several may map onto one EventQueue (node-grouping, or the serial
 * 1-queue configuration), and the delivery order key never mentions
 * the physical queue.
 */
class ShardMesh
{
  public:
    explicit ShardMesh(Tick lookahead) : _lookahead(lookahead) {}
    ShardMesh(const ShardMesh &) = delete;
    ShardMesh &operator=(const ShardMesh &) = delete;

    Tick lookahead() const { return _lookahead; }

    /** Register a logical endpoint living on @p eq; returns its id. */
    std::size_t addEndpoint(EventQueue &eq);

    /**
     * Post @p fn to run at absolute tick @p when on @p dst's queue.
     * Must be called from @p src's owner thread, and @p when must
     * honour the lookahead contract (>= src-queue now() + lookahead).
     * The callback is injected at the next barrier; it runs on the
     * destination shard's thread.
     */
    void post(std::size_t src, std::size_t dst, Tick when,
              std::function<void()> fn);

    /**
     * Inject every undelivered message bound for endpoints living on
     * @p eq, in (when, src, seq) order. Call at a barrier, on the
     * shard's owner thread.
     */
    void deliverTo(EventQueue &eq);

    /**
     * Earliest undelivered `when` bound for endpoints on @p eq
     * (maxTick if none). Coordinator-side, between phases only.
     */
    Tick inboxMin(const EventQueue &eq) const;

    /** Total messages ever posted (diagnostics). */
    std::uint64_t messagesPosted() const { return posted; }

  private:
    struct Msg
    {
        Tick when;
        std::uint32_t src;
        std::uint64_t seq;
        std::function<void()> fn;
    };

    struct Endpoint
    {
        EventQueue *eq;
        std::uint64_t outSeq = 0; //!< touched only by owner thread
        mutable std::mutex mu;
        std::vector<Msg> inbox;
    };

    const Tick _lookahead;
    std::deque<Endpoint> endpoints;      //!< deque: stable addresses
    std::atomic<std::uint64_t> posted{0};
};

/**
 * The barrier-window run loop over a set of shard queues. Queue i is
 * owned by executor shard i; the mesh's endpoints must all map onto
 * queues in the set.
 */
class ShardedSim
{
  public:
    ShardedSim(ShardExecutor &exec, ShardMesh &mesh,
               std::vector<EventQueue *> queues);

    /**
     * Run until every queue and every mesh inbox drains, then align
     * all shard clocks to the global maximum (so follow-up work
     * scheduled from any shard cannot land in another shard's past).
     * @return the common final tick.
     */
    Tick run();

    /** Barrier rounds executed so far (diagnostics). */
    std::uint64_t windows() const { return rounds; }

  private:
    ShardExecutor &exec;
    ShardMesh &mesh;
    std::vector<EventQueue *> queues;
    std::uint64_t rounds = 0;
};

/**
 * Digest over the union of several shards' firing streams, invariant
 * to how the simulation was sharded.
 *
 * A plain TraceHasher folds (tick, seq, label) in firing order, which
 * is only meaningful within one queue: the same topology run as one
 * queue or as N queues interleaves per-node streams differently and
 * assigns different seq values. This hasher drops seq and folds
 * same-tick events commutatively (an unordered sum of per-event
 * hash(tick, label) plus a count), then folds the per-tick
 * aggregates in tick order. Two runs of the same topology match iff
 * every tick fires the same multiset of labels — which the mesh's
 * logical-order injection guarantees across shard and thread counts.
 */
class MergedTraceHasher
{
  public:
    /** Add @p eq's firing stream to the digest (one lane per queue). */
    void attach(EventQueue &eq);

    /** Merge all lanes and fold; call only after runs complete. */
    std::uint64_t digest() const;

    /** Total events observed across all lanes. */
    std::uint64_t events() const;

  private:
    /** One maximal run of same-tick firings within a lane. */
    struct Run
    {
        Tick tick;
        std::uint64_t sum;
        std::uint64_t count;
    };

    struct Lane
    {
        std::vector<Run> runs; //!< tick-sorted: queue time is monotone
    };

    static std::uint64_t hashEvent(Tick t, std::string_view label);

    std::deque<Lane> lanes; //!< deque: stable addresses for the hooks
};

} // namespace sim
} // namespace dcs

#endif // DCS_SIM_SHARD_HH
