/**
 * @file
 * Allocation-avoiding sequence containers for the control-plane model.
 *
 * SmallVec keeps the first N elements in inline storage and spills to
 * the heap only beyond that, so per-command records sized for the
 * common case never allocate in steady state. RingDeque is a growable
 * power-of-two ring that replaces std::deque on FIFO hot paths (a
 * deque allocates and frees map blocks even when its population is
 * bounded). Both are restricted to trivially copyable element types:
 * growth is a memcpy and clear() is O(1), which is exactly the
 * contract the pooled command/scoreboard records need.
 */

#ifndef DCS_SIM_SMALL_VEC_HH
#define DCS_SIM_SMALL_VEC_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>

#include "sim/check.hh"

namespace dcs {

/**
 * Vector with N elements of inline storage and heap spill beyond.
 * clear() keeps any spilled capacity, so a pooled record that spilled
 * once serves later occupants without further allocation.
 */
template <typename T, std::size_t N>
class SmallVec
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "SmallVec is restricted to trivially copyable types");

  public:
    SmallVec() = default;

    SmallVec(const SmallVec &o) { assign(o.data(), o.n); }

    SmallVec &
    operator=(const SmallVec &o)
    {
        if (this != &o)
            assign(o.data(), o.n);
        return *this;
    }

    SmallVec(SmallVec &&o) noexcept
    {
        if (o.heap) {
            heap = std::move(o.heap);
            cap = o.cap;
            n = o.n;
            o.cap = N;
            o.n = 0;
        } else {
            assign(o.data(), o.n);
            o.n = 0;
        }
    }

    SmallVec &
    operator=(SmallVec &&o) noexcept
    {
        if (this == &o)
            return *this;
        if (o.heap) {
            heap = std::move(o.heap);
            cap = o.cap;
            n = o.n;
            o.cap = N;
            o.n = 0;
        } else {
            assign(o.data(), o.n);
            o.n = 0;
        }
        return *this;
    }

    void
    push_back(const T &v)
    {
        if (n == cap)
            grow(cap * 2);
        data()[n++] = v;
    }

    void
    append(const T *src, std::size_t count)
    {
        reserve(n + count);
        std::memcpy(data() + n, src, count * sizeof(T));
        n += count;
    }

    void
    assign(const T *src, std::size_t count)
    {
        n = 0;
        reserve(count);
        std::memcpy(data(), src, count * sizeof(T));
        n = count;
    }

    void
    reserve(std::size_t want)
    {
        if (want > cap)
            grow(want);
    }

    /**
     * Set the size to @p count. New elements are uninitialized — the
     * caller fills them (e.g. BufChain::copyOut into data()).
     */
    void
    resize(std::size_t count)
    {
        reserve(count);
        n = count;
    }

    /** Drop all elements; spilled capacity is retained. */
    void clear() { n = 0; }

    /**
     * Remove every element equal to @p v, preserving the order of the
     * survivors (matches std::erase on a std::vector).
     */
    void
    eraseValue(const T &v)
    {
        std::size_t out = 0;
        T *d = data();
        for (std::size_t i = 0; i < n; ++i) {
            if (!(d[i] == v))
                d[out++] = d[i];
        }
        n = out;
    }

    T &operator[](std::size_t i) { return data()[i]; }
    const T &operator[](std::size_t i) const { return data()[i]; }

    T *data() { return heap ? heap.get() : reinterpret_cast<T *>(inl); }
    const T *
    data() const
    {
        return heap ? heap.get() : reinterpret_cast<const T *>(inl);
    }

    std::size_t size() const { return n; }
    bool empty() const { return n == 0; }
    std::size_t capacity() const { return cap; }
    bool spilled() const { return static_cast<bool>(heap); }

    T *begin() { return data(); }
    T *end() { return data() + n; }
    const T *begin() const { return data(); }
    const T *end() const { return data() + n; }
    T &back() { return data()[n - 1]; }
    const T &back() const { return data()[n - 1]; }

  private:
    void
    grow(std::size_t want)
    {
        std::size_t newcap = cap;
        while (newcap < want)
            newcap *= 2;
        auto bigger = std::make_unique<T[]>(newcap);
        std::memcpy(bigger.get(), data(), n * sizeof(T));
        heap = std::move(bigger);
        cap = newcap;
    }

    alignas(T) unsigned char inl[N * sizeof(T)];
    std::unique_ptr<T[]> heap;
    std::size_t cap = N;
    std::size_t n = 0;
};

/**
 * Growable power-of-two ring buffer with deque semantics on the FIFO
 * hot path (push_back / front / pop_front are O(1) and allocation-free
 * at steady population) plus positional access and order-preserving
 * mid-erase for the rare out-of-order consumer.
 */
template <typename T>
class RingDeque
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "RingDeque is restricted to trivially copyable types");

  public:
    void
    push_back(const T &v)
    {
        if (n == cap)
            grow();
        buf[(head + n) & (cap - 1)] = v;
        ++n;
    }

    T &
    front()
    {
        DCS_CHECK_GT(n, std::size_t{0}, "RingDeque::front on empty ring");
        return buf[head];
    }

    void
    pop_front()
    {
        DCS_CHECK_GT(n, std::size_t{0}, "RingDeque::pop_front on empty");
        head = (head + 1) & (cap - 1);
        --n;
    }

    /** Logical element @p i (0 = front). */
    T &operator[](std::size_t i) { return buf[(head + i) & (cap - 1)]; }
    const T &
    operator[](std::size_t i) const
    {
        return buf[(head + i) & (cap - 1)];
    }

    /** Remove logical element @p i, preserving order (O(n - i)). */
    void
    erase(std::size_t i)
    {
        DCS_CHECK_LT(i, n, "RingDeque::erase out of range");
        for (std::size_t j = i; j + 1 < n; ++j)
            (*this)[j] = (*this)[j + 1];
        --n;
    }

    std::size_t size() const { return n; }
    bool empty() const { return n == 0; }
    void clear() { head = 0; n = 0; }

  private:
    void
    grow()
    {
        const std::size_t newcap = cap ? cap * 2 : 16;
        auto bigger = std::make_unique<T[]>(newcap);
        for (std::size_t i = 0; i < n; ++i)
            bigger[i] = (*this)[i];
        buf = std::move(bigger);
        cap = newcap;
        head = 0;
    }

    std::unique_ptr<T[]> buf;
    std::size_t cap = 0;
    std::size_t head = 0;
    std::size_t n = 0;
};

} // namespace dcs

#endif // DCS_SIM_SMALL_VEC_HH
