/**
 * @file
 * Common base class for named simulation components.
 */

#ifndef DCS_SIM_SIM_OBJECT_HH
#define DCS_SIM_SIM_OBJECT_HH

#include <string>
#include <utility>

#include "sim/event_queue.hh"

namespace dcs {

/**
 * A named component attached to an event queue.
 *
 * SimObjects are neither copyable nor movable: models hold stable
 * pointers to each other for the lifetime of a simulation.
 */
class SimObject
{
  public:
    SimObject(EventQueue &eq, std::string name)
        : _eventq(eq), _name(std::move(name))
    {
        eq.stats().attach(_statsGroup, _name);
    }

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return _name; }
    EventQueue &eventq() const { return _eventq; }
    Tick now() const { return _eventq.now(); }

    /** This simulation's span tracer (sim/tracing.hh). */
    trace::Tracer &tracer() const { return _eventq.tracer(); }

    /**
     * This object's node in the stats tree, registered under name().
     * Models attach their counters here (docs/OBSERVABILITY.md).
     */
    stats::Group &statsGroup() { return _statsGroup; }

    /**
     * Schedule a member continuation @p delay ticks in the future.
     * The object's name labels the event in determinism traces.
     * Accepts any void() callable; captures up to
     * InlineCallback::kInlineSize bytes stay allocation-free.
     */
    EventId
    schedule(Tick delay, InlineCallback fn)
    {
        return _eventq.schedule(delay, std::move(fn), _name);
    }

  private:
    EventQueue &_eventq;
    std::string _name;
    stats::Group _statsGroup;
};

} // namespace dcs

#endif // DCS_SIM_SIM_OBJECT_HH
