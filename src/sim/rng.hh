/**
 * @file
 * Deterministic pseudo-random number generation for workloads.
 *
 * A small xoshiro256** implementation: the standard library engines are
 * not guaranteed to produce identical streams across implementations,
 * and reproducibility of every experiment is a hard requirement.
 */

#ifndef DCS_SIM_RNG_HH
#define DCS_SIM_RNG_HH

#include <cmath>
#include <cstdint>
#include <vector>

namespace dcs {

/** Seedable, portable, fast PRNG (xoshiro256**). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize the state from @p seed via splitmix64. */
    void
    reseed(std::uint64_t seed)
    {
        for (auto &w : s) {
            seed += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            w = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    uniformInt(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + next() % (hi - lo + 1);
    }

    /** Exponentially distributed value with the given mean. */
    double
    exponential(double mean)
    {
        double u = uniform();
        while (u <= 0.0)
            u = uniform();
        return -mean * std::log(u);
    }

    /**
     * Sample an index from a discrete distribution given by
     * (unnormalized) weights.
     */
    std::size_t
    discrete(const std::vector<double> &weights)
    {
        double total = 0.0;
        for (double w : weights)
            total += w;
        double x = uniform() * total;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            x -= weights[i];
            if (x < 0.0)
                return i;
        }
        return weights.empty() ? 0 : weights.size() - 1;
    }

    /** Fill @p n bytes of @p dst with pseudo-random data. */
    void
    fill(void *dst, std::size_t n)
    {
        auto *p = static_cast<std::uint8_t *>(dst);
        while (n >= 8) {
            const std::uint64_t v = next();
            for (int i = 0; i < 8; ++i)
                p[i] = static_cast<std::uint8_t>(v >> (8 * i));
            p += 8;
            n -= 8;
        }
        if (n) {
            const std::uint64_t v = next();
            for (std::size_t i = 0; i < n; ++i)
                p[i] = static_cast<std::uint8_t>(v >> (8 * i));
        }
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s[4] = {};
};

} // namespace dcs

#endif // DCS_SIM_RNG_HH
