#include "sim/attribution.hh"

#include "sim/tracing.hh"

namespace dcs {
namespace trace {

const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::ClientBacklog:
        return "client_backlog";
      case Stage::DriverSubmit:
        return "driver_submit";
      case Stage::DoorbellHoldoff:
        return "doorbell_holdoff";
      case Stage::SqWait:
        return "sq_wait";
      case Stage::EngineParse:
        return "engine_parse";
      case Stage::ScoreboardQueue:
        return "scoreboard_queue";
      case Stage::DeviceService:
        return "device_service";
      case Stage::Wire:
        return "wire";
      case Stage::MsiHoldoff:
        return "msi_holdoff";
      case Stage::CompletionDrain:
        return "completion_drain";
      default:
        return "?";
    }
}

void
Attribution::enable(stats::Registry &reg, std::string path)
{
    if (_enabled)
        return;
    _enabled = true;
    if (tracer)
        tracer->setAttributionActive(true);
    reg.attach(group, std::move(path));
    for (std::size_t i = 0; i < kNumStages; ++i)
        group.addSampled(stageName(static_cast<Stage>(i)), stages[i],
                         "per-request stage latency (us)");
    group.addSampled("e2e", e2e,
                     "end-to-end latency over the attributed population "
                     "(us); equals the sum of the stage columns");
    group.addCounter("finalized", _finalized,
                     "requests fully attributed");
    group.addCounter("abandoned", _abandoned,
                     "flows dropped before completion "
                     "(client drop / 429 / out of window)");
    group.addCounter("ledger_overflow", _overflow,
                     "flows not tracked because the ledger was full");
}

Attribution::Entry *
Attribution::entryFor(std::uint64_t flow)
{
    const auto it = ledger.find(flow);
    if (it != ledger.end())
        return &it->second;
    if (ledger.size() >= maxLedger) {
        ++_overflow;
        return nullptr;
    }
    return &ledger[flow];
}

void
Attribution::mark(std::uint64_t flow, Boundary b, Tick ts, bool take_max)
{
    Entry *e = entryFor(flow);
    if (!e)
        return;
    const auto bi = static_cast<std::size_t>(b);
    const std::uint32_t bit = 1u << bi;
    if (!(e->seen & bit)) {
        e->seen |= bit;
        e->t[bi] = ts;
    } else if (take_max ? ts > e->t[bi] : ts < e->t[bi]) {
        e->t[bi] = ts;
    }
}

void
Attribution::finalize(std::uint64_t flow, Tick done)
{
    const auto it = ledger.find(flow);
    if (it == ledger.end()) {
        // Completion for a flow we never saw arrive (attribution
        // enabled mid-request): nothing to decompose.
        ++_abandoned;
        return;
    }
    const Entry e = it->second;
    ledger.erase(it);
    const auto arrive = static_cast<std::size_t>(Boundary::Arrive);
    if (!(e.seen & 1u)) {
        ++_abandoned;
        return;
    }

    // Walk the boundary chain with a monotonic clamp; unseen
    // boundaries carry the previous timestamp forward (zero-width
    // stage). The stages therefore partition [arrive, done] exactly.
    Tick prev = e.t[arrive];
    const Tick t0 = prev;
    for (std::size_t b = arrive + 1; b < kNumBoundaries; ++b) {
        Tick tb = prev;
        if (e.seen & (1u << b))
            tb = e.t[b] > prev ? e.t[b] : prev;
        stages[b - 1].sample(toMicroseconds(tb - prev));
        prev = tb;
    }
    const Tick end = done > prev ? done : prev;
    stages[static_cast<std::size_t>(Stage::CompletionDrain)].sample(
        toMicroseconds(end - prev));
    e2e.sample(toMicroseconds(end - t0));
    ++_finalized;
}

void
Attribution::abandon(std::uint64_t flow)
{
    if (ledger.erase(flow))
        ++_abandoned;
}

void
Attribution::observeInstant(Tick ts, std::string_view name,
                            std::uint64_t flow)
{
    if (flow == 0)
        return;
    // Classification table; tools/trace_analyze.py --attribute keeps
    // an identical copy — change both together.
    if (name == "lg_arrive")
        mark(flow, Boundary::Arrive, ts, false);
    else if (name == "db_post")
        mark(flow, Boundary::DbPost, ts, false);
    else if (name == "doorbell")
        mark(flow, Boundary::DbFlush, ts, false);
    else if (name == "cpl_queued" || name == "msi_raised")
        mark(flow, Boundary::CplQueued, ts, true);
    else if (name == "msi")
        mark(flow, Boundary::MsiDispatch, ts, true);
    else if (name == "lg_done")
        finalize(flow, ts);
    else if (name == "lg_abort")
        abandon(flow);
}

void
Attribution::observeSpan(Tick start, Tick end, std::string_view name,
                         std::uint64_t flow)
{
    if (flow == 0)
        return;
    if (name == "submit" || name == "ioctl" || name == "io") {
        mark(flow, Boundary::Submit, start, false);
    } else if (name == "parse") {
        mark(flow, Boundary::ParseBegin, start, false);
        mark(flow, Boundary::ParseEnd, end, true);
    } else if (name.rfind("exec:", 0) == 0 || name == "media_read") {
        mark(flow, Boundary::ExecBegin, start, false);
    } else if (name == "send" || name == "tcp_tx") {
        mark(flow, Boundary::WireBegin, start, false);
    }
}

} // namespace trace
} // namespace dcs
