/**
 * @file
 * Dependency-free streaming JSON writer.
 *
 * Backs the stats-registry dump and the bench `--json` reports
 * (docs/OBSERVABILITY.md). Output is deterministic: the writer emits
 * exactly what it is told, in the order it is told, and doubles are
 * rendered with std::to_chars (shortest round-trip form), so two runs
 * producing the same values produce byte-identical files.
 */

#ifndef DCS_SIM_JSON_HH
#define DCS_SIM_JSON_HH

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "sim/logging.hh"

namespace dcs {
namespace json {

/**
 * A push-style writer with validity checking. Usage:
 *
 *   JsonWriter w;
 *   w.beginObject();
 *   w.key("answer"); w.value(42.0);
 *   w.endObject();
 *   std::string out = w.str();
 *
 * Misuse (value without key inside an object, unbalanced begin/end)
 * panics — a malformed report is a bug, not a runtime condition.
 */
class JsonWriter
{
  public:
    void
    beginObject()
    {
        preValue();
        out.push_back('{');
        frames.push_back(Frame{Ctx::Object, true});
    }

    void
    endObject()
    {
        if (frames.empty() || frames.back().ctx != Ctx::Object)
            panic("JsonWriter: endObject outside an object");
        if (pendingKey)
            panic("JsonWriter: dangling key at endObject");
        frames.pop_back();
        out.push_back('}');
    }

    void
    beginArray()
    {
        preValue();
        out.push_back('[');
        frames.push_back(Frame{Ctx::Array, true});
    }

    void
    endArray()
    {
        if (frames.empty() || frames.back().ctx != Ctx::Array)
            panic("JsonWriter: endArray outside an array");
        frames.pop_back();
        out.push_back(']');
    }

    /** Name the next value inside the enclosing object. */
    void
    key(std::string_view k)
    {
        if (frames.empty() || frames.back().ctx != Ctx::Object)
            panic("JsonWriter: key outside an object");
        if (pendingKey)
            panic("JsonWriter: two keys in a row");
        comma();
        quoted(k);
        out.push_back(':');
        pendingKey = true;
    }

    /** Non-finite doubles have no JSON form; they become null. */
    void
    value(double v)
    {
        preValue();
        if (!std::isfinite(v)) {
            out += "null";
            return;
        }
        char buf[32];
        const auto r = std::to_chars(buf, buf + sizeof(buf), v);
        out.append(buf, r.ptr);
    }

    void
    value(std::uint64_t v)
    {
        preValue();
        char buf[24];
        const auto r = std::to_chars(buf, buf + sizeof(buf), v);
        out.append(buf, r.ptr);
    }

    void value(int v) { value(static_cast<std::int64_t>(v)); }

    void
    value(std::int64_t v)
    {
        preValue();
        char buf[24];
        const auto r = std::to_chars(buf, buf + sizeof(buf), v);
        out.append(buf, r.ptr);
    }

    void
    value(bool v)
    {
        preValue();
        out += v ? "true" : "false";
    }

    void
    value(std::string_view v)
    {
        preValue();
        quoted(v);
    }

    void value(const char *v) { value(std::string_view(v)); }

    void
    null()
    {
        preValue();
        out += "null";
    }

    /**
     * Embed an already-serialized JSON value verbatim (e.g. a
     * Registry dump captured earlier). The caller vouches for its
     * validity; an empty fragment panics.
     */
    void
    rawValue(std::string_view fragment)
    {
        if (fragment.empty())
            panic("JsonWriter: empty raw fragment");
        preValue();
        out += fragment;
    }

    /** Finish and take the document; panics if nesting is unbalanced. */
    std::string
    str() const
    {
        if (!frames.empty())
            panic("JsonWriter: %zu unclosed scope(s)", frames.size());
        return out;
    }

  private:
    enum class Ctx
    {
        Object,
        Array,
    };

    struct Frame
    {
        Ctx ctx;
        bool first;
    };

    void
    comma()
    {
        if (frames.empty())
            return;
        if (frames.back().first)
            frames.back().first = false;
        else
            out.push_back(',');
    }

    void
    preValue()
    {
        if (!frames.empty() && frames.back().ctx == Ctx::Object) {
            if (!pendingKey)
                panic("JsonWriter: value in object without a key");
            pendingKey = false;
            return; // key() already emitted the separator
        }
        comma();
    }

    void
    quoted(std::string_view s)
    {
        out.push_back('"');
        for (const char c : s) {
            switch (c) {
              case '"':
                out += "\\\"";
                break;
              case '\\':
                out += "\\\\";
                break;
              case '\n':
                out += "\\n";
                break;
              case '\t':
                out += "\\t";
                break;
              case '\r':
                out += "\\r";
                break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out.push_back(c);
                }
            }
        }
        out.push_back('"');
    }

    std::string out;
    std::vector<Frame> frames;
    bool pendingKey = false;
};

} // namespace json
} // namespace dcs

#endif // DCS_SIM_JSON_HH
