/**
 * @file
 * Simulation status and error reporting, in the gem5 tradition.
 *
 * panic()  — an internal simulator invariant was violated; aborts.
 * fatal()  — the user asked for something impossible; exits cleanly.
 * warn()   — something is modelled approximately; simulation continues.
 * inform() — plain status output.
 */

#ifndef DCS_SIM_LOGGING_HH
#define DCS_SIM_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <string>

namespace dcs {

/** Abort with a message: an internal simulator bug. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a message: unusable user configuration. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

/**
 * Register the live simulation clock for log stamping: while a source
 * is set, every log line is prefixed with `[tick N]` so logs
 * correlate with trace timestamps (the tracer shares the same clock).
 * Thread-local — each bench worker stamps with its own testbed's
 * clock. Returns the previous source so nested scopes (an EventQueue
 * constructed while another is live) can restore it.
 */
const std::uint64_t *setLogTickSource(const std::uint64_t *tick);

/** printf-style formatting into a std::string. */
std::string vcsprintf(const char *fmt, std::va_list args);
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace dcs

#endif // DCS_SIM_LOGGING_HH
