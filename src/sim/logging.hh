/**
 * @file
 * Simulation status and error reporting, in the gem5 tradition.
 *
 * panic()  — an internal simulator invariant was violated; aborts.
 * fatal()  — the user asked for something impossible; exits cleanly.
 * warn()   — something is modelled approximately; simulation continues.
 * inform() — plain status output.
 */

#ifndef DCS_SIM_LOGGING_HH
#define DCS_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace dcs {

/** Abort with a message: an internal simulator bug. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a message: unusable user configuration. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

/** printf-style formatting into a std::string. */
std::string vcsprintf(const char *fmt, std::va_list args);
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace dcs

#endif // DCS_SIM_LOGGING_HH
