/**
 * @file
 * Allocation-free callable for event continuations.
 *
 * std::function heap-allocates once a capture outgrows its ~16-byte
 * small-object buffer, which put one malloc/free pair on every
 * schedule -> fire in the simulator's hot loop. InlineCallback widens
 * the inline buffer to kInlineSize (48 bytes — enough for the typical
 * model continuation capturing `this` plus a handful of words) and
 * routes the rare larger capture to the thread-local EventPool slab
 * allocator instead of the system heap.
 *
 * Semantics: move-only (so move-only captures work), invocable as
 * void(), empty-testable. Unlike std::function it never copies the
 * target, and invoking an empty callback is a checked invariant
 * violation rather than an exception.
 */

#ifndef DCS_SIM_INLINE_CALLBACK_HH
#define DCS_SIM_INLINE_CALLBACK_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/check.hh"
#include "sim/event_pool.hh"

namespace dcs {

class InlineCallback
{
  public:
    /** Captures up to this many bytes live in the event record. */
    static constexpr std::size_t kInlineSize = 48;
    static constexpr std::size_t kAlign = alignof(std::max_align_t);

    InlineCallback() noexcept = default;

    /** Wrap any void() callable; spills to EventPool past kInlineSize. */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    InlineCallback(F &&f) // NOLINT: implicit by design (schedule sites)
    {
        using D = std::decay_t<F>;
        static_assert(alignof(D) <= kAlign,
                      "callback capture over-aligned for event storage");
        if constexpr (fitsInline<D>) {
            // Placement-new into the inline buffer; ops->destroy
            // handles destruction. dcslint: allow(raw-new-delete): placement-new
            ::new (static_cast<void *>(buf)) D(std::forward<F>(f));
            ops = &inlineOpsFor<D>;
        } else {
            void *mem = EventPool::local().allocate(sizeof(D));
            // Placement-new into a pool block; spillDestroy returns
            // it to the pool. dcslint: allow(raw-new-delete): pool-owned block
            ::new (mem) D(std::forward<F>(f));
            *reinterpret_cast<void **>(buf) = mem;
            ops = &spillOpsFor<D>;
        }
    }

    InlineCallback(InlineCallback &&o) noexcept { moveFrom(o); }

    InlineCallback &
    operator=(InlineCallback &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    ~InlineCallback() { reset(); }

    /** Invoke. The callback must be non-empty. */
    void
    operator()()
    {
        DCS_CHECK_NOTNULL(ops, "invoking an empty InlineCallback");
        ops->invoke(buf);
    }

    explicit operator bool() const noexcept { return ops != nullptr; }

    /** Destroy the target (freeing any pool block) and become empty. */
    void
    reset() noexcept
    {
        if (ops) {
            ops->destroy(buf);
            ops = nullptr;
        }
    }

    /** True if the target lives in a pool block (tests/bench). */
    bool
    spilled() const noexcept
    {
        return ops && ops->spilled;
    }

    /** Whether a callable of type F would be stored inline. */
    template <typename F>
    static constexpr bool fitsInline =
        sizeof(std::decay_t<F>) <= kInlineSize;

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct the target into @p dst, destroying @p src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
        bool spilled;
    };

    template <typename F>
    static void
    inlineInvoke(void *p)
    {
        (*std::launder(reinterpret_cast<F *>(p)))();
    }

    template <typename F>
    static void
    inlineRelocate(void *dst, void *src)
    {
        F *s = std::launder(reinterpret_cast<F *>(src));
        // dcslint: allow(raw-new-delete): placement-new move relocation
        ::new (dst) F(std::move(*s));
        s->~F();
    }

    template <typename F>
    static void
    inlineDestroy(void *p)
    {
        std::launder(reinterpret_cast<F *>(p))->~F();
    }

    template <typename F>
    static void
    spillInvoke(void *p)
    {
        (*static_cast<F *>(*reinterpret_cast<void **>(p)))();
    }

    static void
    spillRelocate(void *dst, void *src)
    {
        *reinterpret_cast<void **>(dst) = *reinterpret_cast<void **>(src);
    }

    template <typename F>
    static void
    spillDestroy(void *p)
    {
        F *f = static_cast<F *>(*reinterpret_cast<void **>(p));
        f->~F();
        EventPool::local().deallocate(f, sizeof(F));
    }

    template <typename F>
    static constexpr Ops inlineOpsFor = {&inlineInvoke<F>,
                                         &inlineRelocate<F>,
                                         &inlineDestroy<F>, false};

    template <typename F>
    static constexpr Ops spillOpsFor = {&spillInvoke<F>, &spillRelocate,
                                        &spillDestroy<F>, true};

    void
    moveFrom(InlineCallback &o) noexcept
    {
        if (o.ops) {
            o.ops->relocate(buf, o.buf);
            ops = o.ops;
            o.ops = nullptr;
        }
    }

    alignas(kAlign) unsigned char buf[kInlineSize];
    const Ops *ops = nullptr;
};

} // namespace dcs

#endif // DCS_SIM_INLINE_CALLBACK_HH
