/**
 * @file
 * Hierarchical statistics registry (docs/OBSERVABILITY.md).
 *
 * Every SimObject owns a stats::Group registered under its instance
 * name (e.g. `node0.hdc.scoreboard`); models attach named stats —
 * scalars, counters, distributions, breakdowns, or computed values —
 * to their group, and the registry can dump the whole tree as JSON in
 * one deterministic pass (groups sorted by path, stats in
 * registration order).
 *
 * Registration stores *references* to the model's own accumulators:
 * exposing a counter costs nothing on the hot path. Lifetime is tied
 * to the owning Group (RAII): a Group deregisters itself on
 * destruction, so a dump never touches a destroyed model.
 */

#ifndef DCS_SIM_STATS_REGISTRY_HH
#define DCS_SIM_STATS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/json.hh"
#include "sim/stats.hh"

namespace dcs {
namespace stats {

class Registry;

/**
 * A named set of stats owned by one component. Default-constructed
 * detached; the registry attaches it under a path. All add* overloads
 * keep a reference to the passed accumulator, which must therefore
 * outlive the group (in practice: both are members of the same
 * object).
 */
class Group
{
  public:
    Group() = default;
    ~Group();

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    bool attached() const { return reg != nullptr; }
    const std::string &path() const { return _path; }

    /** Generic leaf: @p emit writes the stat's JSON value. */
    void add(std::string name, std::string desc,
             std::function<void(json::JsonWriter &)> emit);

    /** A Scalar accumulator. */
    void addScalar(std::string name, const Scalar &s,
                   std::string desc = "");

    /** A raw monotonic counter member. */
    void addCounter(std::string name, const std::uint64_t &v,
                    std::string desc = "");

    /** A computed value, evaluated at dump time. */
    void addValue(std::string name, std::function<double()> get,
                  std::string desc = "");

    /** A Distribution: emits {count, mean, stddev, min, max, sum}. */
    void addDistribution(std::string name, const Distribution &d,
                         std::string desc = "");

    /** A SampledDistribution: distribution plus p50/p90/p99. */
    void addSampled(std::string name, const SampledDistribution &d,
                    std::string desc = "");

    /**
     * A Breakdown indexed by @p Enum: emits {category: value, ...}
     * using the model's category-name function.
     */
    template <typename Enum>
    void
    addBreakdown(std::string name, const Breakdown<Enum> &b,
                 const char *(*label)(Enum), std::string desc = "")
    {
        add(std::move(name), std::move(desc),
            [&b, label](json::JsonWriter &w) {
                w.beginObject();
                for (std::size_t i = 0; i < b.size(); ++i) {
                    const auto c = static_cast<Enum>(i);
                    w.key(label(c));
                    w.value(b.get(c));
                }
                w.endObject();
            });
    }

    std::size_t size() const { return stats.size(); }

  private:
    friend class Registry;

    struct Stat
    {
        std::string name;
        std::string desc;
        std::function<void(json::JsonWriter &)> emit;
    };

    Registry *reg = nullptr;
    std::string _path;
    std::vector<Stat> stats;
};

/**
 * The per-simulation stat tree. One Registry lives in each
 * EventQueue, so independent simulations (e.g. successive testbeds in
 * one bench binary) never mix state.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /**
     * Register @p g under @p path. A duplicate path gets a
     * deterministic `#2`, `#3`, ... suffix (same construction order
     * => same names).
     */
    void attach(Group &g, std::string path);

    /** Remove @p g (no-op if detached). Called by ~Group(). */
    void detach(Group &g);

    /** Number of registered groups. */
    std::size_t groupCount() const { return groups.size(); }

    /** Group registered under exactly @p path, or nullptr. */
    const Group *find(const std::string &path) const;

    /**
     * Dump every group as one JSON object keyed by path; groups with
     * no registered stats are skipped. Written into an open writer so
     * callers can embed the tree in a larger document.
     */
    void dumpJson(json::JsonWriter &w) const;

    /** Convenience: the dump as a standalone JSON document string. */
    std::string dumpJsonString() const;

  private:
    std::map<std::string, Group *> groups;
};

} // namespace stats
} // namespace dcs

#endif // DCS_SIM_STATS_REGISTRY_HH
