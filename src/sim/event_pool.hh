/**
 * @file
 * Slab allocator backing spilled event callbacks.
 *
 * InlineCallback stores captures up to its inline size in place; larger
 * captures spill here. The pool hands out fixed-size blocks carved from
 * 16 KiB slabs and recycles them through per-size-class free lists, so
 * the steady-state schedule -> fire path never touches the system
 * allocator: a block freed by one event is reused by the next.
 *
 * The pool is strictly thread-local (EventPool::local()). Each bench
 * worker thread — and the main thread — owns an independent instance,
 * which keeps the parallel sweep runner free of cross-thread
 * synchronization. The corollary is a lifetime rule: an InlineCallback
 * that spilled must be destroyed on the thread that created it. The
 * simulator honors this naturally because an EventQueue and everything
 * scheduled on it live and die on a single thread; DCS_CHECKED builds
 * enforce the rule by recording the owning thread and panicking on any
 * allocate/deallocate from another thread.
 */

#ifndef DCS_SIM_EVENT_POOL_HH
#define DCS_SIM_EVENT_POOL_HH

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "sim/check.hh"

namespace dcs {

class EventPool
{
  public:
    /** Block size classes. Oversize requests fall back to malloc. */
    static constexpr std::size_t kClassSizes[] = {64, 128, 256, 512, 1024};
    static constexpr std::size_t kNumClasses =
        sizeof(kClassSizes) / sizeof(kClassSizes[0]);
    static constexpr std::size_t kLargestClass =
        kClassSizes[kNumClasses - 1];
    /** Blocks are carved from slabs of this many bytes. */
    static constexpr std::size_t kSlabBytes = 16 * 1024;
    /** Every block is at least this aligned (slabs come from new[]). */
    static constexpr std::size_t kBlockAlign =
        alignof(std::max_align_t);

    /** The calling thread's pool. */
    static EventPool &
    local()
    {
        static thread_local EventPool pool;
        return pool;
    }

    EventPool() = default;
    EventPool(const EventPool &) = delete;
    EventPool &operator=(const EventPool &) = delete;

    ~EventPool()
    {
        DCS_CHECK_EQ(_allocated, _freed,
                     "event-pool blocks leaked at thread exit");
        for (void *p : oversize)
            std::free(p);
    }

    /** Get a block of at least @p bytes. Never returns nullptr. */
    void *
    allocate(std::size_t bytes)
    {
        checkOwner();
        ++_allocated;
        const int c = classFor(bytes);
        if (c < 0) [[unlikely]]
            return allocateOversize(bytes);
        FreeNode *&head = freeList[static_cast<std::size_t>(c)];
        if (!head) [[unlikely]]
            refill(static_cast<std::size_t>(c));
        FreeNode *node = head;
        head = node->next;
        return node;
    }

    /** Return a block obtained from allocate(@p bytes). */
    void
    deallocate(void *p, std::size_t bytes) noexcept
    {
        checkOwner();
        ++_freed;
        const int c = classFor(bytes);
        if (c < 0) [[unlikely]] {
            deallocateOversize(p);
            return;
        }
        FreeNode *node = static_cast<FreeNode *>(p);
        FreeNode *&head = freeList[static_cast<std::size_t>(c)];
        node->next = head;
        head = node;
    }

    /** @name Introspection (tests, sim_core_bench). */
    /** @{ */
    std::uint64_t allocated() const { return _allocated; }
    std::uint64_t freed() const { return _freed; }
    std::uint64_t outstanding() const { return _allocated - _freed; }
    std::uint64_t slabCount() const { return slabs.size(); }
    std::uint64_t oversizeAllocs() const { return _oversize; }
    /** @} */

  private:
    struct FreeNode
    {
        FreeNode *next;
    };

    /**
     * Fail fast on the must-destroy-on-owning-thread rule: a
     * cross-thread deallocate would push a block from one thread's
     * slab onto another's free list (corruption, use-after-free when
     * the owner exits), otherwise surfacing only as the
     * allocated == freed check at thread exit.
     */
    void
    checkOwner() const
    {
#ifdef DCS_CHECKED
        DCS_INVARIANT(std::this_thread::get_id() == _owner,
                      "event pool used from a thread other than "
                      "its owner");
#endif
    }

    static int
    classFor(std::size_t bytes)
    {
        for (std::size_t c = 0; c < kNumClasses; ++c)
            if (bytes <= kClassSizes[c])
                return static_cast<int>(c);
        return -1;
    }

    /** Carve a fresh slab into blocks of class @p c. */
    void
    refill(std::size_t c)
    {
        const std::size_t block = kClassSizes[c];
        slabs.push_back(std::make_unique<std::byte[]>(kSlabBytes));
        std::byte *base = slabs.back().get();
        FreeNode *&head = freeList[c];
        for (std::size_t off = 0; off + block <= kSlabBytes;
             off += block) {
            FreeNode *node = reinterpret_cast<FreeNode *>(base + off);
            node->next = head;
            head = node;
        }
    }

    void *
    allocateOversize(std::size_t bytes)
    {
        ++_oversize;
        void *p = std::malloc(bytes);
        DCS_CHECK_NOTNULL(p, "event-pool oversize allocation failed");
        oversize.push_back(p);
        return p;
    }

    void
    deallocateOversize(void *p) noexcept
    {
        for (std::size_t i = 0; i < oversize.size(); ++i) {
            if (oversize[i] == p) {
                oversize[i] = oversize.back();
                oversize.pop_back();
                std::free(p);
                return;
            }
        }
    }

    FreeNode *freeList[kNumClasses] = {};
    std::vector<std::unique_ptr<std::byte[]>> slabs;
    /** Outstanding oversize blocks (rare; linear bookkeeping is fine). */
    std::vector<void *> oversize;
    std::uint64_t _allocated = 0;
    std::uint64_t _freed = 0;
    std::uint64_t _oversize = 0;
#ifdef DCS_CHECKED
    const std::thread::id _owner = std::this_thread::get_id();
#endif
};

} // namespace dcs

#endif // DCS_SIM_EVENT_POOL_HH
