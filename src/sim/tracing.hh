/**
 * @file
 * Deterministic, sim-tick-clocked span tracing (docs/OBSERVABILITY.md).
 *
 * One trace::Tracer lives in each EventQueue (next to its stats
 * registry), so independent testbeds — including bench sweep tasks
 * running on parallel threads — record into fully isolated buffers.
 * Models push three kinds of records, all timestamped with the sim
 * clock, never wall time:
 *
 *  - spans: durations with known [start, start+dur) bounds, either
 *    closed directly (span()) or paired up from begin/end calls keyed
 *    by (track, name, key);
 *  - instants: point events (doorbells, MSIs, boundary crossings);
 *  - counters: registered gauges sampled every `counterPeriod`
 *    records and once more at snapshot time.
 *
 * Records carry an optional *flow id*: a per-tracer monotonically
 * allocated request identity threaded through the stack (D2dRequest /
 * LatencyTrace) so one request's hops across components form a single
 * connected chain in the exported trace.
 *
 * The tracer is a pure observer: it never schedules events, never
 * mutates model state, and its record ring is bounded (oldest records
 * are dropped and counted). Recording is off by default; a disabled
 * tracer costs one predictable branch per macro. With the CMake
 * option DCS_TRACING=OFF the macros compile to nothing.
 *
 * writeChromeJson() serializes captured dumps as Chrome trace_event
 * JSON (chrome://tracing and Perfetto both load it): one process per
 * dump, one named thread per track, 'X' slices for lane-exclusive
 * spans, 'b'/'e' async pairs for overlappable spans, 'i' instants,
 * 'C' counter tracks, and legacy 's'/'t'/'f' flow steps stitching a
 * request's hops. Emission order and number formatting are
 * deterministic, so equal inputs produce byte-identical files.
 */

#ifndef DCS_SIM_TRACING_HH
#define DCS_SIM_TRACING_HH

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/ticks.hh"

namespace dcs {
namespace trace {

class Attribution;

/** Runtime tracer configuration (bench --trace flags). */
struct Config
{
    bool enabled = false;
    /** Sample registered counters every N pushed records. */
    std::uint32_t counterPeriod = 64;
    /** Ring capacity; the oldest records beyond it are dropped. */
    std::size_t maxRecords = 1u << 20;
};

enum class Kind : std::uint8_t
{
    Span,      //!< lane-exclusive duration ('X' slice)
    AsyncSpan, //!< overlappable duration ('b'/'e' async pair)
    Instant,
    Counter,
};

/** One captured event. Strings are interned per tracer. */
struct Record
{
    Tick ts = 0;
    Tick dur = 0;            //!< spans only
    std::uint64_t flow = 0;  //!< 0 = not part of a request chain
    double value = 0;        //!< counters only
    std::uint32_t track = 0; //!< index into Dump::tracks
    std::uint32_t name = 0;  //!< index into Dump::names
    Kind kind = Kind::Instant;
};

/**
 * A tracer's captured state, detached from the live simulation: plain
 * data, safe to move across threads (bench workers snapshot while
 * their testbed is alive; the main thread merges serially).
 */
struct Dump
{
    std::vector<std::string> tracks;
    std::vector<std::string> names;
    std::vector<Record> records; //!< in push order
    std::uint64_t dropped = 0;   //!< records lost to the ring bound
    std::uint64_t openSpans = 0; //!< begun but never ended
};

/** Stable key for flow bindings: FNV-1a over scope name + id. */
inline std::uint64_t
key(std::string_view scope, std::uint64_t id)
{
    std::uint64_t h = 14695981039346656037ull;
    auto mix = [&h](std::uint8_t b) {
        h ^= b;
        h *= 1099511628211ull;
    };
    for (const char c : scope)
        mix(static_cast<std::uint8_t>(c));
    for (int i = 0; i < 8; ++i)
        mix(static_cast<std::uint8_t>(id >> (8 * i)));
    return h;
}

/** The per-EventQueue recorder. */
class Tracer
{
  public:
    void
    configure(const Config &c)
    {
        cfg = c;
    }

    /**
     * True when any observer wants the instrumentation stream:
     * record capture (--trace) or an active Attribution sink. Model
     * code gates flow-id allocation and the TRACE_* macros on this.
     */
    bool enabled() const { return cfg.enabled || attrOn; }

    /** True when records are captured into the ring (--trace). */
    bool recording() const { return cfg.enabled; }

    /**
     * Attach the per-queue Attribution sink (sim/attribution.hh).
     * Wired once by the owning EventQueue; the sink flips attrOn via
     * setAttributionActive() when it is enabled.
     */
    void setAttribution(Attribution *a);
    void setAttributionActive(bool on) { attrOn = on; }

    /** Spans begun but not yet ended (for the stats registry). */
    std::uint64_t openSpans() const { return open.size(); }

    /** Allocate a fresh request/flow identity (deterministic). */
    std::uint64_t nextFlowId() { return ++flowSeq; }

    /**
     * @name Flow binding: pure-observer map from a wire-level id
     * (e.g. hash of engine name + D2D command id) to the request's
     * flow id, for components the flow id cannot be threaded through.
     */
    /** @{ */
    void
    bindFlow(std::uint64_t k, std::uint64_t flow)
    {
        if (enabled())
            flowBindings[k] = flow;
    }

    std::uint64_t
    flowOf(std::uint64_t k) const
    {
        const auto it = flowBindings.find(k);
        return it == flowBindings.end() ? 0 : it->second;
    }

    void unbindFlow(std::uint64_t k) { flowBindings.erase(k); }
    /** @} */

    /** Open a span; paired by (track, name, key) with endSpan(). */
    void beginSpan(Tick ts, std::string_view track, std::string_view name,
                   std::uint64_t key = 0, std::uint64_t flow = 0);

    /** Close a span opened by beginSpan(); unmatched ends are counted. */
    void endSpan(Tick ts, std::string_view track, std::string_view name,
                 std::uint64_t key = 0);

    /**
     * Record a span with known bounds. @p lane_exclusive promises
     * spans on this track never overlap (they render as stacked
     * slices); otherwise the span is emitted as an async pair.
     */
    void span(Tick start, Tick dur, std::string_view track,
              std::string_view name, std::uint64_t flow = 0,
              bool lane_exclusive = false);

    /** Record a point event. */
    void instant(Tick ts, std::string_view track, std::string_view name,
                 std::uint64_t flow = 0);

    /**
     * Register a gauge sampled into a counter track. The closure must
     * stay valid until the final snapshot (register from objects that
     * outlive the measurement, as with stats::Group).
     */
    void addCounter(std::string track, std::string name,
                    std::function<double()> get);

    /** Sample every registered counter now (also runs periodically). */
    void sampleCounters(Tick ts);

    /**
     * Capture everything recorded so far (plus a final counter
     * sample) as plain data. Must run while registered counter owners
     * are alive. The tracer keeps recording afterwards.
     */
    Dump snapshot(Tick ts);

    std::uint64_t recorded() const { return pushed; }
    std::uint64_t droppedRecords() const { return dropped; }

  private:
    struct SpanKey
    {
        std::uint32_t track;
        std::uint32_t name;
        std::uint64_t key;
        bool operator==(const SpanKey &) const = default;
    };

    struct SpanKeyHash
    {
        std::size_t
        operator()(const SpanKey &k) const
        {
            std::uint64_t h = (std::uint64_t(k.track) << 32) | k.name;
            h ^= k.key + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
            return static_cast<std::size_t>(h);
        }
    };

    struct OpenSpan
    {
        Tick start;
        std::uint64_t flow;
    };

    struct CounterDef
    {
        std::uint32_t track;
        std::uint32_t name;
        std::function<double()> get;
    };

    std::uint32_t intern(std::vector<std::string> &table,
                         std::unordered_map<std::string, std::uint32_t> &idx,
                         std::string_view s);
    std::uint32_t internTrack(std::string_view s);
    std::uint32_t internName(std::string_view s);
    void push(const Record &r);

    Config cfg;
    std::vector<std::string> tracks;
    std::unordered_map<std::string, std::uint32_t> trackIdx;
    std::vector<std::string> names;
    std::unordered_map<std::string, std::uint32_t> nameIdx;

    std::vector<Record> ring;
    std::size_t head = 0; //!< oldest record once the ring wrapped
    std::uint64_t pushed = 0;
    std::uint64_t dropped = 0;
    std::uint32_t sinceSample = 0;

    std::unordered_map<SpanKey, OpenSpan, SpanKeyHash> open;
    std::unordered_map<std::uint64_t, std::uint64_t> flowBindings;
    std::vector<CounterDef> counters;
    std::uint64_t flowSeq = 0;
    Attribution *attr = nullptr;
    bool attrOn = false;
};

/**
 * Serialize labelled dumps as one Chrome trace_event JSON document.
 * Dump order fixes process ids, so merging task dumps in index order
 * yields byte-identical output at any bench thread count.
 */
std::string
writeChromeJson(const std::vector<std::pair<std::string, Dump>> &dumps);

} // namespace trace
} // namespace dcs

/**
 * Call-site macros. Compiled out entirely when DCS_TRACING is off;
 * otherwise one branch on Tracer::enabled() per site. @p tr is a
 * trace::Tracer lvalue (SimObjects: eventq().tracer()).
 */
#ifdef DCS_TRACING

#define TRACE_SPAN_BEGIN(tr, ts, track, name, spankey, flow)               \
    do {                                                                   \
        ::dcs::trace::Tracer &_dcs_tr = (tr);                              \
        if (_dcs_tr.enabled())                                             \
            _dcs_tr.beginSpan((ts), (track), (name), (spankey), (flow));   \
    } while (0)

#define TRACE_SPAN_END(tr, ts, track, name, spankey)                       \
    do {                                                                   \
        ::dcs::trace::Tracer &_dcs_tr = (tr);                              \
        if (_dcs_tr.enabled())                                             \
            _dcs_tr.endSpan((ts), (track), (name), (spankey));             \
    } while (0)

/** A span with known bounds (overlap-safe async emission). */
#define TRACE_SPAN(tr, start, dur, track, name, flow)                      \
    do {                                                                   \
        ::dcs::trace::Tracer &_dcs_tr = (tr);                              \
        if (_dcs_tr.enabled())                                             \
            _dcs_tr.span((start), (dur), (track), (name), (flow), false);  \
    } while (0)

/** A span on a lane-exclusive track (rendered as a stacked slice). */
#define TRACE_SPAN_LANE(tr, start, dur, track, name, flow)                 \
    do {                                                                   \
        ::dcs::trace::Tracer &_dcs_tr = (tr);                              \
        if (_dcs_tr.enabled())                                             \
            _dcs_tr.span((start), (dur), (track), (name), (flow), true);   \
    } while (0)

#define TRACE_INSTANT(tr, ts, track, name)                                 \
    do {                                                                   \
        ::dcs::trace::Tracer &_dcs_tr = (tr);                              \
        if (_dcs_tr.enabled())                                             \
            _dcs_tr.instant((ts), (track), (name));                        \
    } while (0)

/** An instant participating in a request's flow chain. */
#define TRACE_FLOW(tr, ts, track, name, flow)                              \
    do {                                                                   \
        ::dcs::trace::Tracer &_dcs_tr = (tr);                              \
        if (_dcs_tr.enabled())                                             \
            _dcs_tr.instant((ts), (track), (name), (flow));                \
    } while (0)

#else // !DCS_TRACING

#define TRACE_SPAN_BEGIN(tr, ts, track, name, spankey, flow) ((void)0)
#define TRACE_SPAN_END(tr, ts, track, name, spankey) ((void)0)
#define TRACE_SPAN(tr, start, dur, track, name, flow) ((void)0)
#define TRACE_SPAN_LANE(tr, start, dur, track, name, flow) ((void)0)
#define TRACE_INSTANT(tr, ts, track, name) ((void)0)
#define TRACE_FLOW(tr, ts, track, name, flow) ((void)0)

#endif // DCS_TRACING

#endif // DCS_SIM_TRACING_HH
