/**
 * @file
 * Simulated-time base types and unit helpers.
 *
 * The simulator counts time in integer picoseconds so that sub-nanosecond
 * quantities (e.g. a single 250 MHz FPGA cycle = 4000 ps, PCIe symbol
 * times) stay exact and the event queue remains fully deterministic.
 */

#ifndef DCS_SIM_TICKS_HH
#define DCS_SIM_TICKS_HH

#include <cstdint>

namespace dcs {

/** Simulated time, in picoseconds since simulation start. */
using Tick = std::uint64_t;

/** A sentinel "never" value for optional deadlines. */
constexpr Tick maxTick = ~Tick(0);

/** @name Unit constructors: build a Tick from human units. */
/** @{ */
constexpr Tick
picoseconds(double v)
{
    return static_cast<Tick>(v);
}

constexpr Tick
nanoseconds(double v)
{
    return static_cast<Tick>(v * 1e3);
}

constexpr Tick
microseconds(double v)
{
    return static_cast<Tick>(v * 1e6);
}

constexpr Tick
milliseconds(double v)
{
    return static_cast<Tick>(v * 1e9);
}

constexpr Tick
seconds(double v)
{
    return static_cast<Tick>(v * 1e12);
}
/** @} */

/** @name Unit extractors: convert a Tick back to human units. */
/** @{ */
constexpr double
toNanoseconds(Tick t)
{
    return static_cast<double>(t) / 1e3;
}

constexpr double
toMicroseconds(Tick t)
{
    return static_cast<double>(t) / 1e6;
}

constexpr double
toMilliseconds(Tick t)
{
    return static_cast<double>(t) / 1e9;
}

constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / 1e12;
}
/** @} */

/**
 * Time to move @p bytes at @p gbps (decimal gigabits per second).
 * Rounds up so a transfer never finishes early.
 */
constexpr Tick
transferTime(std::uint64_t bytes, double gbps)
{
    // bits / (Gbit/s) = ns * 1e... work in double then round up.
    const double ns = static_cast<double>(bytes) * 8.0 / gbps;
    return static_cast<Tick>(ns * 1e3) + 1;
}

/** Ticks consumed by @p cycles of a clock running at @p mhz. */
constexpr Tick
cyclesAt(std::uint64_t cycles, double mhz)
{
    return static_cast<Tick>(static_cast<double>(cycles) * 1e6 / mhz);
}

} // namespace dcs

#endif // DCS_SIM_TICKS_HH
