/**
 * @file
 * Runtime invariant checks for the simulator (the DCS_CHECKED build).
 *
 * DCS_INVARIANT(cond, ...)   — assert a model invariant; violation is a
 *                              simulator bug and panics with location,
 *                              the failed expression, and an optional
 *                              printf-style explanation.
 * DCS_CHECK_EQ/NE/LT/LE/GT/GE(a, b, ...)
 *                            — comparison forms that also print both
 *                              operand values.
 * DCS_CHECK_NOTNULL(p, ...)  — pointer form.
 *
 * All macros compile to nothing (operands unevaluated) unless the build
 * defines DCS_CHECKED (CMake: -DDCS_CHECKED=ON, the default). They are
 * for invariants of the *model* — conditions no input should ever be
 * able to violate. User-visible misconfiguration keeps using fatal(),
 * and conditions that must hold even in unchecked release builds keep
 * using panic() directly.
 */

#ifndef DCS_SIM_CHECK_HH
#define DCS_SIM_CHECK_HH

#include <cstdarg>
#include <string>
#include <type_traits>

#include "sim/logging.hh"

namespace dcs {

/** True when this build was compiled with invariant checking. */
#ifdef DCS_CHECKED
inline constexpr bool kCheckedBuild = true;
#else
inline constexpr bool kCheckedBuild = false;
#endif

/**
 * Annotation for mutable static/global state that is genuinely safe
 * to share across the parallel bench-runner threads (write-once
 * before threads start, guarded by a lock, or only ever touched from
 * one thread). Expands to nothing; tools/dcslint requires it — with a
 * non-trivial justification — on any mutable non-atomic,
 * non-thread_local static it would otherwise flag
 * (unsafe-shared-static).
 *
 *   DCS_THREAD_SAFE("initialized once under the magic-static lock; "
 *                   "read-only afterwards")
 *   static auto table = buildTable();
 */
#define DCS_THREAD_SAFE(why)

namespace detail {

/** Shared failure path: format and panic. Never returns. */
[[noreturn]] inline void
invariantFail(const char *file, int line, const char *expr,
              const std::string &values, const char *fmt = nullptr, ...)
{
    std::string msg;
    if (fmt) {
        std::va_list args;
        va_start(args, fmt);
        msg = vcsprintf(fmt, args);
        va_end(args);
    }
    panic("%s:%d: invariant `%s' violated%s%s%s", file, line, expr,
          values.c_str(), msg.empty() ? "" : ": ", msg.c_str());
}

/** Render " (lhs=…, rhs=…)" for the comparison forms. */
template <typename A, typename B>
std::string
operandValues(const A &a, const B &b)
{
    if constexpr (std::is_arithmetic_v<A> && std::is_arithmetic_v<B>) {
        return " (lhs=" + std::to_string(a) + ", rhs=" + std::to_string(b) +
               ")";
    } else {
        (void)a;
        (void)b;
        return {};
    }
}

} // namespace detail
} // namespace dcs

#ifdef DCS_CHECKED

#define DCS_INVARIANT(cond, ...)                                             \
    do {                                                                     \
        if (!(cond)) [[unlikely]]                                            \
            ::dcs::detail::invariantFail(__FILE__, __LINE__, #cond,          \
                                         std::string{}, ##__VA_ARGS__);      \
    } while (0)

#define DCS_CHECK_OP_(op, a, b, ...)                                         \
    do {                                                                     \
        const auto &dcs_chk_a_ = (a);                                        \
        const auto &dcs_chk_b_ = (b);                                        \
        if (!(dcs_chk_a_ op dcs_chk_b_)) [[unlikely]]                        \
            ::dcs::detail::invariantFail(                                    \
                __FILE__, __LINE__, #a " " #op " " #b,                       \
                ::dcs::detail::operandValues(dcs_chk_a_, dcs_chk_b_),        \
                ##__VA_ARGS__);                                              \
    } while (0)

#define DCS_CHECK_NOTNULL(p, ...)                                            \
    do {                                                                     \
        if ((p) == nullptr) [[unlikely]]                                     \
            ::dcs::detail::invariantFail(__FILE__, __LINE__,                 \
                                         #p " != nullptr", std::string{},    \
                                         ##__VA_ARGS__);                     \
    } while (0)

#else // !DCS_CHECKED: expand to nothing, but keep operands type-checked.

#define DCS_INVARIANT(cond, ...)                                             \
    do {                                                                     \
        (void)sizeof(!(cond));                                               \
    } while (0)

#define DCS_CHECK_OP_(op, a, b, ...)                                         \
    do {                                                                     \
        (void)sizeof((a) op (b));                                            \
    } while (0)

#define DCS_CHECK_NOTNULL(p, ...)                                            \
    do {                                                                     \
        (void)sizeof((p) == nullptr);                                        \
    } while (0)

#endif // DCS_CHECKED

#define DCS_CHECK_EQ(a, b, ...) DCS_CHECK_OP_(==, a, b, ##__VA_ARGS__)
#define DCS_CHECK_NE(a, b, ...) DCS_CHECK_OP_(!=, a, b, ##__VA_ARGS__)
#define DCS_CHECK_LT(a, b, ...) DCS_CHECK_OP_(<, a, b, ##__VA_ARGS__)
#define DCS_CHECK_LE(a, b, ...) DCS_CHECK_OP_(<=, a, b, ##__VA_ARGS__)
#define DCS_CHECK_GT(a, b, ...) DCS_CHECK_OP_(>, a, b, ##__VA_ARGS__)
#define DCS_CHECK_GE(a, b, ...) DCS_CHECK_OP_(>=, a, b, ##__VA_ARGS__)

#endif // DCS_SIM_CHECK_HH
