#include "sim/shard.hh"

#include <algorithm>

#include "sim/check.hh"
#include "sim/logging.hh"

namespace dcs {
namespace sim {

// --- ShardExecutor --------------------------------------------------------

ShardExecutor::ShardExecutor(std::size_t shards, unsigned threads)
    : nShards(shards),
      nThreads(std::max(1u, std::min<unsigned>(
                                threads, static_cast<unsigned>(
                                             std::max<std::size_t>(
                                                 1, shards)))))
{
    if (nThreads <= 1)
        return;
    workers.reserve(nThreads);
    for (unsigned w = 0; w < nThreads; ++w)
        workers.emplace_back([this, w] { workerMain(w); });
}

ShardExecutor::~ShardExecutor()
{
    if (nThreads <= 1)
        return;
    {
        std::lock_guard lk(mu);
        stopping = true;
    }
    cvPhase.notify_all();
    for (auto &t : workers)
        t.join();
}

void
ShardExecutor::workerMain(unsigned worker)
{
    std::uint64_t seen = 0;
    std::unique_lock lk(mu);
    for (;;) {
        cvPhase.wait(lk, [&] { return stopping || phaseGen != seen; });
        if (stopping)
            return;
        seen = phaseGen;
        const auto *fn = phaseFn;
        lk.unlock();
        // Fixed partition: worker w always owns shards w, w+T, w+2T …
        // so each shard's thread-local state (event pools, callback
        // captures) never migrates between threads.
        for (std::size_t s = worker; s < nShards; s += nThreads)
            (*fn)(s);
        lk.lock();
        if (--phasePending == 0)
            cvDone.notify_one();
    }
}

void
ShardExecutor::forEach(const std::function<void(std::size_t)> &fn)
{
    if (nThreads <= 1) {
        for (std::size_t s = 0; s < nShards; ++s)
            fn(s);
        return;
    }
    std::unique_lock lk(mu);
    phaseFn = &fn;
    phasePending = nThreads;
    ++phaseGen;
    cvPhase.notify_all();
    cvDone.wait(lk, [&] { return phasePending == 0; });
    phaseFn = nullptr;
}

void
ShardExecutor::on(std::size_t shard, const std::function<void()> &fn)
{
    DCS_CHECK_LT(shard, nShards, "executor phase on unknown shard");
    if (nThreads <= 1) {
        fn();
        return;
    }
    forEach([shard, &fn](std::size_t s) {
        if (s == shard)
            fn();
    });
}

// --- ShardMesh ------------------------------------------------------------

std::size_t
ShardMesh::addEndpoint(EventQueue &eq)
{
    endpoints.emplace_back();
    endpoints.back().eq = &eq;
    return endpoints.size() - 1;
}

void
ShardMesh::post(std::size_t src, std::size_t dst, Tick when,
                std::function<void()> fn)
{
    DCS_CHECK_LT(src, endpoints.size(),
                 "mesh post from unregistered endpoint");
    DCS_CHECK_LT(dst, endpoints.size(),
                 "mesh post to unregistered endpoint");
    Endpoint &s = endpoints[src];
    Endpoint &d = endpoints[dst];
    // The whole conservative scheme rests on this: nothing posted
    // during a window may land inside it.
    DCS_CHECK_GE(when, s.eq->now() + _lookahead,
                 "cross-shard post violates the lookahead contract");
    const std::uint64_t seq = ++s.outSeq;
    {
        std::lock_guard lk(d.mu);
        d.inbox.push_back(
            Msg{when, static_cast<std::uint32_t>(src), seq,
                std::move(fn)});
    }
    posted.fetch_add(1, std::memory_order_relaxed);
}

void
ShardMesh::deliverTo(EventQueue &eq)
{
    std::vector<Msg> batch;
    for (Endpoint &ep : endpoints) {
        if (ep.eq != &eq)
            continue;
        std::lock_guard lk(ep.mu);
        for (Msg &m : ep.inbox)
            batch.push_back(std::move(m));
        ep.inbox.clear();
    }
    if (batch.empty())
        return;
    // Logical order: independent of thread interleaving AND of how
    // endpoints are packed onto queues — the determinism keystone.
    std::sort(batch.begin(), batch.end(), [](const Msg &a, const Msg &b) {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.src != b.src)
            return a.src < b.src;
        return a.seq < b.seq;
    });
    static constexpr std::string_view kLabel = "mesh.deliver";
    for (Msg &m : batch)
        eq.scheduleAt(m.when, std::move(m.fn), kLabel);
}

Tick
ShardMesh::inboxMin(const EventQueue &eq) const
{
    Tick lo = maxTick;
    for (const Endpoint &ep : endpoints) {
        if (ep.eq != &eq)
            continue;
        std::lock_guard lk(ep.mu);
        for (const Msg &m : ep.inbox)
            lo = std::min(lo, m.when);
    }
    return lo;
}

// --- ShardedSim -----------------------------------------------------------

ShardedSim::ShardedSim(ShardExecutor &exec, ShardMesh &mesh,
                       std::vector<EventQueue *> queues)
    : exec(exec), mesh(mesh), queues(std::move(queues))
{
    DCS_CHECK_EQ(this->queues.size(), exec.shards(),
                 "one queue per executor shard");
    DCS_CHECK_GE(mesh.lookahead(), Tick(1),
                 "zero lookahead cannot make progress");
}

Tick
ShardedSim::run()
{
    const Tick L = mesh.lookahead();
    for (;;) {
        // Global minimum pending tick: earliest queued event or
        // undelivered message anywhere. Reading the queues here is
        // safe: the previous phase's barrier ordered their state
        // before us, and the workers are parked.
        Tick gmin = maxTick;
        for (EventQueue *q : queues) {
            gmin = std::min(gmin, q->nextPendingTick());
            gmin = std::min(gmin, mesh.inboxMin(*q));
        }
        if (gmin == maxTick)
            break;
        // Window [gmin, gmin+L-1]: anything produced inside arrives
        // at >= gmin+L, strictly after the window, so every shard can
        // burn through it without hearing from the others.
        const Tick horizon =
            (maxTick - gmin > L - 1) ? gmin + (L - 1) : maxTick;
        exec.forEach([this, horizon](std::size_t s) {
            EventQueue &q = *queues[s];
            mesh.deliverTo(q);
            q.runUntil(horizon);
        });
        ++rounds;
    }
    // Align clocks: without this, work seeded after run() from one
    // shard could target another shard whose clock stopped earlier —
    // scheduling into its past.
    Tick end = 0;
    for (EventQueue *q : queues)
        end = std::max(end, q->now());
    exec.forEach([this, end](std::size_t s) { queues[s]->advanceTo(end); });
    return end;
}

// --- MergedTraceHasher ----------------------------------------------------

std::uint64_t
MergedTraceHasher::hashEvent(Tick t, std::string_view label)
{
    std::uint64_t h = 14695981039346656037ull;
    const auto mixByte = [&h](std::uint8_t b) {
        h ^= b;
        h *= 1099511628211ull;
    };
    for (int i = 0; i < 8; ++i)
        mixByte(static_cast<std::uint8_t>(t >> (8 * i)));
    for (const char c : label)
        mixByte(static_cast<std::uint8_t>(c));
    return h;
}

void
MergedTraceHasher::attach(EventQueue &eq)
{
    lanes.emplace_back();
    Lane *lane = &lanes.back();
    eq.setTraceHook([lane](Tick t, std::uint64_t /*seq*/,
                           std::string_view label) {
        auto &runs = lane->runs;
        if (runs.empty() || runs.back().tick != t)
            runs.push_back(Run{t, 0, 0});
        runs.back().sum += hashEvent(t, label); // wraps mod 2^64
        ++runs.back().count;
    });
}

std::uint64_t
MergedTraceHasher::digest() const
{
    // Ordered map: the fold below must walk ticks in order for the
    // digest to be well-defined.
    std::map<Tick, std::pair<std::uint64_t, std::uint64_t>> merged;
    for (const Lane &lane : lanes) {
        for (const Run &r : lane.runs) {
            auto &agg = merged[r.tick];
            agg.first += r.sum;
            agg.second += r.count;
        }
    }
    std::uint64_t h = 14695981039346656037ull;
    const auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= static_cast<std::uint8_t>(v >> (8 * i));
            h *= 1099511628211ull;
        }
    };
    for (const auto &[tick, agg] : merged) {
        mix(tick);
        mix(agg.first);
        mix(agg.second);
    }
    return h;
}

std::uint64_t
MergedTraceHasher::events() const
{
    std::uint64_t n = 0;
    for (const Lane &lane : lanes)
        for (const Run &r : lane.runs)
            n += r.count;
    return n;
}

} // namespace sim
} // namespace dcs
