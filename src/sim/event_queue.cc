#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/check.hh"
#include "sim/logging.hh"

namespace dcs {

EventQueue::EventQueue()
{
    _stats.attach(statsGroup, "eventq");
    statsGroup.addCounter("executed", fired, "events fired");
    statsGroup.addCounter("scheduled", created, "events ever scheduled");
    statsGroup.addCounter("cancelled_popped", skipped,
                          "events cancelled while pending");
    statsGroup.addValue(
        "final_tick", [this] { return static_cast<double>(_now); },
        "simulated time at dump");
    // Surface trace-loss accounting in every stats dump: a trace
    // whose ring overflowed is silently incomplete otherwise.
    statsGroup.addValue(
        "trace_records",
        [this] { return static_cast<double>(_tracer.recorded()); },
        "span-trace records pushed");
    statsGroup.addValue(
        "trace_dropped",
        [this] { return static_cast<double>(_tracer.droppedRecords()); },
        "trace records lost to the drop-oldest ring bound");
    statsGroup.addValue(
        "trace_open_spans",
        [this] { return static_cast<double>(_tracer.openSpans()); },
        "trace spans begun but not yet ended");
    _tracer.setAttribution(&_attr);
    // Slot 0 is reserved so no valid handle is ever 0.
    records.emplace_back();
    // Stamp log output with this queue's clock while it is the live
    // simulation on this thread (sim/logging.hh).
    setLogTickSource(&_now);
}

EventQueue::~EventQueue()
{
    // Detach only if we are still the live source: a restored
    // "previous" pointer could dangle when queues die out of
    // construction order, so an outer queue simply loses its stamp.
    const std::uint64_t *cur = setLogTickSource(nullptr);
    if (cur != &_now)
        setLogTickSource(cur);
}

std::uint32_t
EventQueue::allocSlot()
{
    if (freeHead != kNoSlot) {
        const std::uint32_t slot = freeHead;
        freeHead = records[slot].nextFree;
        return slot;
    }
    records.emplace_back();
    return static_cast<std::uint32_t>(records.size() - 1);
}

void
EventQueue::freeSlot(std::uint32_t slot)
{
    Record &r = records[slot];
    r.seq = 0;
    ++r.gen;
    r.label = {};
    r.nextFree = freeHead;
    freeHead = slot;
}

void
EventQueue::insertEntry(const QEntry &e)
{
    if (readyValid && e.when == readyTick) {
        // Same-tick continuation while that tick is firing: O(1)
        // append; sequence order holds because seq grows monotonically.
        ready.push_back(e);
        return;
    }
    if (e.when >= windowEnd()) {
        far.push_back(e);
        return;
    }
    if (e.when < windowStart) [[unlikely]] {
        // runUntil() can return with the clock below the window:
        // rebuildWindow()/retighten() anchor windowStart at the
        // pending minimum, which may exceed the runUntil limit. A
        // later schedule between now() and windowStart would index
        // below bucket 0 — re-anchor the window around it instead.
        lowerWindow(e);
        return;
    }
    const auto idx =
        static_cast<std::size_t>((e.when - windowStart) >> widthShift);
    buckets[idx].push_back(e);
    bucketSorted[idx] = false;
    if (idx < curBucket)
        curBucket = idx; // rewind: bucket was empty until this entry
}

EventId
EventQueue::schedule(Tick delay, InlineCallback fn,
                     std::string_view label)
{
    return scheduleAt(_now + delay, std::move(fn), label);
}

EventId
EventQueue::scheduleAt(Tick when, InlineCallback fn,
                       std::string_view label)
{
    if (when < _now)
        panic("scheduling into the past (%llu < %llu)",
              (unsigned long long)when, (unsigned long long)_now);
    const std::uint32_t slot = allocSlot();
    Record &r = records[slot];
    r.fn = std::move(fn);
    r.label = label;
    r.seq = ++created;
    ++live;
    ++queued;
    insertEntry(QEntry{when, r.seq, slot});
    return (EventId(r.gen) << 32) | slot;
}

void
EventQueue::deschedule(EventId id)
{
    const auto slot = static_cast<std::uint32_t>(id);
    const auto gen = static_cast<std::uint32_t>(id >> 32);
    DCS_INVARIANT(slot != 0 && slot < records.size(),
                  "descheduling id %llu never issued",
                  (unsigned long long)id);
    if (slot == 0 || slot >= records.size())
        return;
    Record &r = records[slot];
    if (r.gen != gen || r.seq == 0)
        return; // already fired or cancelled: no-op, no residue
    r.fn.reset(); // release captured resources immediately
    freeSlot(slot);
    ++skipped;
    --live;
}

bool
EventQueue::refill()
{
    ready.clear();
    readyPos = 0;
    readyValid = false;
    for (;;) {
        while (curBucket < kNumBuckets) {
            auto &b = buckets[curBucket];
            if (b.empty()) {
                ++curBucket;
                continue;
            }
            if (!bucketSorted[curBucket]) {
                std::sort(b.begin(), b.end(),
                          [](const QEntry &x, const QEntry &y) {
                              return x.when != y.when ? x.when < y.when
                                                      : x.seq < y.seq;
                          });
                bucketSorted[curBucket] = true;
            }
            if (widthShift > 0 && b.size() > kRetightenThreshold &&
                b.back().when != b.front().when) {
                // The bucket width is too coarse for the pending
                // distribution: every insertion dirties this bucket
                // and forces an O(k log k) re-sort per tick group.
                // Re-spread around it and rescan.
                retighten();
                continue;
            }
            const Tick t = b.front().when;
            std::size_t k = 1;
            while (k < b.size() && b[k].when == t)
                ++k;
            ready.assign(b.begin(),
                         b.begin() + static_cast<std::ptrdiff_t>(k));
            b.erase(b.begin(),
                    b.begin() + static_cast<std::ptrdiff_t>(k));
            readyTick = t;
            readyValid = true;
            return true;
        }
        if (far.empty())
            return false;
        rebuildWindow();
    }
}

void
EventQueue::redistribute(Tick lo, Tick span)
{
    // Adapt bucket width to the observed span: smallest width whose
    // window covers it, capped so one distant timer cannot degrade
    // bucket resolution for everything in between.
    std::uint32_t shift = 0;
    while (shift < kMaxWidthShift && (Tick(kNumBuckets) << shift) <= span)
        ++shift;
    widthShift = shift;
    windowStart = lo;
    curBucket = 0;
    std::size_t w = 0;
    const Tick end = windowEnd();
    for (std::size_t r = 0; r < far.size(); ++r) {
        const QEntry e = far[r];
        if (e.when < end) {
            const auto idx = static_cast<std::size_t>(
                (e.when - windowStart) >> widthShift);
            buckets[idx].push_back(e);
            bucketSorted[idx] = false;
        } else {
            far[w++] = e;
        }
    }
    far.resize(w);
}

void
EventQueue::lowerWindow(const QEntry &e)
{
    // Dump the in-window buckets back into `far` (buckets before
    // curBucket are empty by invariant), add the new below-window
    // entry, and rebuild: rebuildWindow() re-anchors at the new
    // global minimum with a width sized to the full pending span.
    for (std::size_t i = curBucket; i < kNumBuckets; ++i) {
        auto &bk = buckets[i];
        if (bk.empty())
            continue;
        far.insert(far.end(), bk.begin(), bk.end());
        bk.clear();
    }
    far.push_back(e);
    rebuildWindow();
}

void
EventQueue::rebuildWindow()
{
    Tick lo = maxTick;
    Tick hi = 0;
    for (const QEntry &e : far) {
        lo = std::min(lo, e.when);
        hi = std::max(hi, e.when);
    }
    redistribute(lo, hi - lo);
}

void
EventQueue::retighten()
{
    // Called from refill() on the sorted front bucket: all earlier
    // buckets are empty, so its first entry is the global in-window
    // minimum and everything pending is at or after it. Dump the
    // window into `far` and re-spread with a width sized to the
    // front bucket's own span — the densest region of the calendar.
    const auto &b = buckets[curBucket];
    const Tick lo = b.front().when;
    const Tick span = b.back().when - lo;
    for (std::size_t i = curBucket; i < kNumBuckets; ++i) {
        auto &bk = buckets[i];
        if (bk.empty())
            continue;
        far.insert(far.end(), bk.begin(), bk.end());
        bk.clear();
    }
    redistribute(lo, span);
}

void
EventQueue::flushReady()
{
    readyValid = false;
    for (std::size_t i = readyPos; i < ready.size(); ++i)
        insertEntry(ready[i]);
    ready.clear();
    readyPos = 0;
}

Tick
EventQueue::nextPendingTick() const
{
    if (queued == 0)
        return maxTick;
    if (readyValid && readyPos < ready.size())
        return readyTick;
    // Bucket i covers strictly earlier ticks than bucket i+1, so the
    // first non-empty bucket holds the in-window minimum (the bucket
    // itself may be unsorted).
    for (std::size_t i = curBucket; i < kNumBuckets; ++i) {
        const auto &b = buckets[i];
        if (b.empty())
            continue;
        Tick lo = maxTick;
        for (const QEntry &e : b)
            lo = std::min(lo, e.when);
        return lo;
    }
    Tick lo = maxTick;
    for (const QEntry &e : far)
        lo = std::min(lo, e.when);
    return lo;
}

void
EventQueue::advanceTo(Tick t)
{
    DCS_CHECK_EQ(queued, std::uint64_t(0),
                 "advanceTo on a queue with pending entries");
    if (t > _now)
        _now = t;
}

bool
EventQueue::step()
{
    for (;;) {
        if (readyPos == ready.size()) {
            if (!refill()) {
                DCS_CHECK_EQ(queued, std::uint64_t(0),
                             "drained queue left entries unaccounted");
                return false;
            }
        }
        const QEntry e = ready[readyPos++];
        --queued;
        Record &r = records[e.slot];
        if (r.seq != e.seq)
            continue; // cancelled: stale calendar entry, drop
        DCS_CHECK_GE(e.when, _now, "event-queue time monotonicity");
        _now = e.when;
        ++fired;
        --live;
        DCS_CHECK_EQ(created, fired + skipped + live,
                     "event conservation: scheduled = fired + "
                     "cancelled + pending");
        InlineCallback fn = std::move(r.fn);
        const std::string_view label = r.label;
        freeSlot(e.slot);
        if (traceFn)
            traceFn(_now, e.seq, label);
        fn();
        return true;
    }
}

Tick
EventQueue::run()
{
    while (step()) {
    }
    // Live-event accounting must close at drain: every scheduled
    // event either fired or was cancelled, and none remain pending.
    DCS_CHECK_EQ(live, std::uint64_t(0),
                 "events still pending after drain");
    DCS_CHECK_EQ(created, fired + skipped,
                 "event conservation at drain: scheduled = fired + "
                 "cancelled");
    return _now;
}

Tick
EventQueue::runUntil(Tick limit)
{
    for (;;) {
        if (readyPos == ready.size() && !refill())
            return _now;
        if (ready[readyPos].when > limit) {
            _now = limit;
            flushReady();
            return _now;
        }
        step();
    }
}

} // namespace dcs
