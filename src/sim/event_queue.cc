#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dcs {

EventId
EventQueue::schedule(Tick delay, std::function<void()> fn)
{
    return scheduleAt(_now + delay, std::move(fn));
}

EventId
EventQueue::scheduleAt(Tick when, std::function<void()> fn)
{
    if (when < _now)
        panic("scheduling into the past (%llu < %llu)",
              (unsigned long long)when, (unsigned long long)_now);
    const EventId id = nextId++;
    pq.push(Entry{when, id, std::move(fn)});
    ++live;
    return id;
}

void
EventQueue::deschedule(EventId id)
{
    // Lazy deletion: remember the id and skip it when popped.
    cancelled.push_back(id);
}

bool
EventQueue::isCancelled(EventId id)
{
    auto it = std::find(cancelled.begin(), cancelled.end(), id);
    if (it == cancelled.end())
        return false;
    *it = cancelled.back();
    cancelled.pop_back();
    return true;
}

bool
EventQueue::step()
{
    while (!pq.empty()) {
        Entry e = pq.top();
        pq.pop();
        --live;
        if (isCancelled(e.id))
            continue;
        _now = e.when;
        ++fired;
        e.fn();
        return true;
    }
    return false;
}

Tick
EventQueue::run()
{
    while (step()) {
    }
    return _now;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!pq.empty()) {
        if (pq.top().when > limit) {
            _now = limit;
            return _now;
        }
        step();
    }
    return _now;
}

} // namespace dcs
