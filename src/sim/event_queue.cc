#include "sim/event_queue.hh"

#include "sim/check.hh"
#include "sim/logging.hh"

namespace dcs {

EventQueue::EventQueue()
{
    _stats.attach(statsGroup, "eventq");
    statsGroup.addCounter("executed", fired, "events fired");
    statsGroup.addCounter("scheduled", created, "events ever scheduled");
    statsGroup.addCounter("cancelled_popped", skipped,
                          "cancelled events skipped at pop time");
    statsGroup.addValue(
        "final_tick", [this] { return static_cast<double>(_now); },
        "simulated time at dump");
}

EventId
EventQueue::schedule(Tick delay, std::function<void()> fn,
                     std::string_view label)
{
    return scheduleAt(_now + delay, std::move(fn), label);
}

EventId
EventQueue::scheduleAt(Tick when, std::function<void()> fn,
                       std::string_view label)
{
    if (when < _now)
        panic("scheduling into the past (%llu < %llu)",
              (unsigned long long)when, (unsigned long long)_now);
    const EventId id = nextId++;
    pq.push(Entry{when, id, std::move(fn), label});
    ++created;
    ++live;
    DCS_CHECK_EQ(live, pq.size(), "live-count conservation on schedule");
    return id;
}

void
EventQueue::deschedule(EventId id)
{
    DCS_INVARIANT(id != 0 && id < nextId,
                  "descheduling id %llu never issued (next is %llu)",
                  (unsigned long long)id, (unsigned long long)nextId);
    // Lazy deletion: remember the id and skip it when popped.
    cancelled.insert(id);
}

bool
EventQueue::isCancelled(EventId id)
{
    return cancelled.erase(id) != 0;
}

bool
EventQueue::step()
{
    while (!pq.empty()) {
        Entry e = pq.top();
        DCS_CHECK_GE(e.when, _now, "event-queue time monotonicity");
        pq.pop();
        --live;
        DCS_CHECK_EQ(live, pq.size(), "live-count conservation on pop");
        if (isCancelled(e.id)) {
            ++skipped;
            continue;
        }
        _now = e.when;
        ++fired;
        DCS_CHECK_EQ(created, fired + skipped + live,
                     "event conservation: scheduled = fired + "
                     "cancelled + pending");
        if (traceFn)
            traceFn(e.when, e.id, e.label);
        e.fn();
        return true;
    }
    return false;
}

Tick
EventQueue::run()
{
    while (step()) {
    }
    return _now;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!pq.empty()) {
        if (pq.top().when > limit) {
            _now = limit;
            return _now;
        }
        step();
    }
    return _now;
}

} // namespace dcs
