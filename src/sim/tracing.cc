#include "sim/tracing.hh"

#include <algorithm>

#include "sim/attribution.hh"
#include "sim/json.hh"

namespace dcs {
namespace trace {

std::uint32_t
Tracer::intern(std::vector<std::string> &table,
               std::unordered_map<std::string, std::uint32_t> &idx,
               std::string_view s)
{
    const auto it = idx.find(std::string(s));
    if (it != idx.end())
        return it->second;
    const auto id = static_cast<std::uint32_t>(table.size());
    table.emplace_back(s);
    idx.emplace(table.back(), id);
    return id;
}

std::uint32_t
Tracer::internTrack(std::string_view s)
{
    return intern(tracks, trackIdx, s);
}

std::uint32_t
Tracer::internName(std::string_view s)
{
    return intern(names, nameIdx, s);
}

void
Tracer::push(const Record &r)
{
    ++pushed;
    if (ring.size() < cfg.maxRecords) {
        ring.push_back(r);
    } else if (cfg.maxRecords == 0) {
        ++dropped;
        return;
    } else {
        // Bounded ring: overwrite (and count) the oldest record.
        ring[head] = r;
        head = (head + 1) % cfg.maxRecords;
        ++dropped;
    }
    if (!counters.empty() && r.kind != Kind::Counter &&
        ++sinceSample >= cfg.counterPeriod) {
        sinceSample = 0;
        sampleCounters(r.ts);
    }
}

void
Tracer::setAttribution(Attribution *a)
{
    attr = a;
    if (a) {
        a->tracer = this;
        attrOn = a->enabled();
    } else {
        attrOn = false;
    }
}

void
Tracer::beginSpan(Tick ts, std::string_view track, std::string_view name,
                  std::uint64_t key, std::uint64_t flow)
{
    if (!enabled())
        return;
    const SpanKey k{internTrack(track), internName(name), key};
    open[k] = OpenSpan{ts, flow};
}

void
Tracer::endSpan(Tick ts, std::string_view track, std::string_view name,
                std::uint64_t key)
{
    if (!enabled())
        return;
    const SpanKey k{internTrack(track), internName(name), key};
    const auto it = open.find(k);
    if (it == open.end())
        return; // unmatched end (begin predates enabling): drop
    Record r;
    r.ts = it->second.start;
    r.dur = ts - it->second.start;
    r.flow = it->second.flow;
    r.track = k.track;
    r.name = k.name;
    r.kind = Kind::AsyncSpan;
    open.erase(it);
    if (attrOn)
        attr->observeSpan(r.ts, ts, name, r.flow);
    if (cfg.enabled)
        push(r);
}

void
Tracer::span(Tick start, Tick dur, std::string_view track,
             std::string_view name, std::uint64_t flow,
             bool lane_exclusive)
{
    if (!enabled())
        return;
    if (attrOn)
        attr->observeSpan(start, start + dur, name, flow);
    if (!cfg.enabled)
        return;
    Record r;
    r.ts = start;
    r.dur = dur;
    r.flow = flow;
    r.track = internTrack(track);
    r.name = internName(name);
    r.kind = lane_exclusive ? Kind::Span : Kind::AsyncSpan;
    push(r);
}

void
Tracer::instant(Tick ts, std::string_view track, std::string_view name,
                std::uint64_t flow)
{
    if (!enabled())
        return;
    if (attrOn)
        attr->observeInstant(ts, name, flow);
    if (!cfg.enabled)
        return;
    Record r;
    r.ts = ts;
    r.flow = flow;
    r.track = internTrack(track);
    r.name = internName(name);
    r.kind = Kind::Instant;
    push(r);
}

void
Tracer::addCounter(std::string track, std::string name,
                   std::function<double()> get)
{
    counters.push_back(
        CounterDef{internTrack(track), internName(name), std::move(get)});
}

void
Tracer::sampleCounters(Tick ts)
{
    if (!cfg.enabled)
        return;
    for (const CounterDef &c : counters) {
        Record r;
        r.ts = ts;
        r.value = c.get();
        r.track = c.track;
        r.name = c.name;
        r.kind = Kind::Counter;
        push(r);
    }
}

Dump
Tracer::snapshot(Tick ts)
{
    Dump d;
    if (!cfg.enabled)
        return d;
    sampleCounters(ts);
    d.tracks = tracks;
    d.names = names;
    d.records.reserve(ring.size());
    // Unroll the ring into push order: oldest surviving record first.
    for (std::size_t i = 0; i < ring.size(); ++i)
        d.records.push_back(ring[(head + i) % ring.size()]);
    d.dropped = dropped;
    d.openSpans = open.size();
    return d;
}

namespace {

double
toUs(Tick t)
{
    return static_cast<double>(t) / 1e6; // ticks are picoseconds
}

void
eventCommon(json::JsonWriter &w, std::string_view name,
            std::string_view cat, std::string_view ph, double ts,
            std::uint64_t pid, std::uint64_t tid)
{
    w.key("name");
    w.value(name);
    w.key("cat");
    w.value(cat);
    w.key("ph");
    w.value(ph);
    w.key("ts");
    w.value(ts);
    w.key("pid");
    w.value(pid);
    w.key("tid");
    w.value(tid);
}

void
flowArgs(json::JsonWriter &w, std::uint64_t flow)
{
    if (flow == 0)
        return;
    w.key("args");
    w.beginObject();
    w.key("flow");
    w.value(flow);
    w.endObject();
}

} // namespace

std::string
writeChromeJson(const std::vector<std::pair<std::string, Dump>> &dumps)
{
    json::JsonWriter w;
    w.beginObject();
    w.key("displayTimeUnit");
    w.value("ns");
    w.key("otherData");
    w.beginObject();
    w.key("schema");
    w.value("dcs-trace-1");
    w.endObject();
    w.key("traceEvents");
    w.beginArray();

    for (std::size_t di = 0; di < dumps.size(); ++di) {
        const auto &[label, d] = dumps[di];
        const std::uint64_t pid = di + 1;
        // Unique-id base for async pairs and flow chains: one
        // namespace per dump keeps parallel-task merges collision
        // free.
        const std::uint64_t base = (std::uint64_t(di) + 1) << 32;

        w.beginObject();
        eventCommon(w, "process_name", "__metadata", "M", 0, pid, 0);
        w.key("args");
        w.beginObject();
        w.key("name");
        w.value(label);
        w.endObject();
        w.endObject();

        for (std::size_t ti = 0; ti < d.tracks.size(); ++ti) {
            w.beginObject();
            eventCommon(w, "thread_name", "__metadata", "M", 0, pid,
                        ti + 1);
            w.key("args");
            w.beginObject();
            w.key("name");
            w.value(d.tracks[ti]);
            w.endObject();
            w.endObject();
            w.beginObject();
            eventCommon(w, "thread_sort_index", "__metadata", "M", 0, pid,
                        ti + 1);
            w.key("args");
            w.beginObject();
            w.key("sort_index");
            w.value(std::uint64_t(ti));
            w.endObject();
            w.endObject();
        }

        // First pass: the records themselves, in push order.
        for (std::size_t ri = 0; ri < d.records.size(); ++ri) {
            const Record &r = d.records[ri];
            const std::string_view name = d.names[r.name];
            const std::uint64_t tid = r.track + 1;
            switch (r.kind) {
              case Kind::Span:
                w.beginObject();
                eventCommon(w, name, "span", "X", toUs(r.ts), pid, tid);
                w.key("dur");
                w.value(toUs(r.dur));
                flowArgs(w, r.flow);
                w.endObject();
                break;
              case Kind::AsyncSpan:
                w.beginObject();
                eventCommon(w, name, "span", "b", toUs(r.ts), pid, tid);
                w.key("id");
                w.value(base + ri);
                flowArgs(w, r.flow);
                w.endObject();
                w.beginObject();
                eventCommon(w, name, "span", "e", toUs(r.ts + r.dur), pid,
                            tid);
                w.key("id");
                w.value(base + ri);
                w.endObject();
                break;
              case Kind::Instant:
                w.beginObject();
                eventCommon(w, name, "instant", "i", toUs(r.ts), pid, tid);
                w.key("s");
                w.value("t");
                flowArgs(w, r.flow);
                w.endObject();
                break;
              case Kind::Counter: {
                std::string cname = d.tracks[r.track];
                cname += '/';
                cname += name;
                w.beginObject();
                eventCommon(w, cname, "counter", "C", toUs(r.ts), pid,
                            tid);
                w.key("args");
                w.beginObject();
                w.key("value");
                w.value(r.value);
                w.endObject();
                w.endObject();
                break;
              }
            }
        }

        // Second pass: legacy flow steps stitching each request's
        // records, in first-appearance order of the flow id.
        std::vector<std::uint64_t> flowOrder;
        std::unordered_map<std::uint64_t, std::vector<std::size_t>> byFlow;
        for (std::size_t ri = 0; ri < d.records.size(); ++ri) {
            const Record &r = d.records[ri];
            if (r.flow == 0 || r.kind == Kind::Counter)
                continue;
            auto &v = byFlow[r.flow];
            if (v.empty())
                flowOrder.push_back(r.flow);
            v.push_back(ri);
        }
        for (const std::uint64_t flow : flowOrder) {
            const auto &idxs = byFlow[flow];
            if (idxs.size() < 2)
                continue;
            for (std::size_t j = 0; j < idxs.size(); ++j) {
                const Record &r = d.records[idxs[j]];
                const char *ph = j == 0 ? "s"
                                 : j == idxs.size() - 1 ? "f"
                                                        : "t";
                w.beginObject();
                eventCommon(w, "req", "flow", ph, toUs(r.ts), pid,
                            r.track + 1);
                w.key("id");
                w.value(base + flow);
                if (*ph == 'f') {
                    w.key("bp");
                    w.value("e");
                }
                w.endObject();
            }
        }
    }

    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace trace
} // namespace dcs
