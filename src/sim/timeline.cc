#include "sim/timeline.hh"

#include "sim/logging.hh"

namespace dcs {
namespace stats {

void
Timeline::arm(EventQueue &eq, Params p)
{
    if (_armed)
        panic("timeline: armed twice");
    if (p.period == 0 || p.samples == 0 || p.maxRows == 0)
        panic("timeline: zero period/samples/maxRows");
    _armed = true;
    _period = p.period;
    maxRows = p.maxRows;
    const Tick t0 = p.start > eq.now() ? p.start : eq.now();
    for (std::size_t k = 0; k < p.samples; ++k) {
        const Tick when = t0 + static_cast<Tick>(k) * p.period;
        eq.scheduleAt(when, [this, when] { sampleNow(when); },
                      "timeline");
    }
}

void
Timeline::sampleNow(Tick ts)
{
    if (ticks.size() < maxRows) {
        ticks.push_back(ts);
        for (const Column &c : cols)
            values.push_back(c.get());
        return;
    }
    // Bounded ring: overwrite (and count) the oldest row.
    ticks[head] = ts;
    for (std::size_t i = 0; i < cols.size(); ++i)
        values[head * cols.size() + i] = cols[i].get();
    head = (head + 1) % maxRows;
    ++dropped;
}

Timeline::Dump
Timeline::dump(std::string name) const
{
    Dump d;
    d.name = std::move(name);
    d.period = _period;
    d.columns.reserve(cols.size());
    for (const Column &c : cols)
        d.columns.push_back(c.name);
    const std::size_t n = ticks.size();
    d.ticks.reserve(n);
    d.values.reserve(n * cols.size());
    // Unroll the ring into sample order: oldest surviving row first.
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t r = (head + i) % n;
        d.ticks.push_back(ticks[r]);
        for (std::size_t c = 0; c < cols.size(); ++c)
            d.values.push_back(values[r * cols.size() + c]);
    }
    d.droppedRows = dropped;
    return d;
}

Timeline::Dump
Timeline::merge(std::string name, const std::vector<Dump> &parts)
{
    if (parts.empty())
        panic("timeline merge: no parts");
    Dump out = parts.front();
    out.name = std::move(name);
    for (std::size_t p = 1; p < parts.size(); ++p) {
        const Dump &d = parts[p];
        if (d.period != out.period || d.columns != out.columns ||
            d.ticks != out.ticks)
            panic("timeline merge: part %zu shape mismatch", p);
        for (std::size_t i = 0; i < out.values.size(); ++i)
            out.values[i] += d.values[i];
        out.droppedRows += d.droppedRows;
    }
    return out;
}

} // namespace stats
} // namespace dcs
